/**
 * @file
 * Figure 10: cumulative distribution of function service time on Jord.
 *
 * The paper reports that across the four workloads 75% of function
 * service times fall below ~5 µs, with Media and Social showing long
 * tails (one Social function, ComposePost, needs ~75 µs).
 */

#include <cstdlib>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fig10");
    std::uint64_t requests = args.quick ? 5000 : 20000;
    requests = sim::env::getU64("JORD_FIG10_REQUESTS", requests);

    bench::banner("Figure 10: CDF of function service time (Jord, "
                  "low load)");

    // Low load so queueing does not distort intrinsic service times.
    const double loads[] = {1.0, 0.7, 0.4, 0.08};
    const double percentiles[] = {10, 25, 50, 75, 90, 95, 99, 100};

    stats::Table table({"Workload", "P10 (us)", "P25 (us)", "P50 (us)",
                        "P75 (us)", "P90 (us)", "P95 (us)", "P99 (us)",
                        "Max (us)"});
    auto all = workloads::makeAll();
    // One host-parallel job per workload; each run owns its worker and
    // commits its result to its slot, printing follows in order.
    std::unique_ptr<par::ThreadPool> pool = args.makePool();
    std::vector<RunResult> results = par::orderedMap<RunResult>(
        pool.get(), all.size(), [&](std::size_t wi) {
            WorkerConfig cfg;
            WorkerServer worker(cfg, all[wi].registry);
            return worker.run(loads[wi], requests, all[wi].mix);
        });
    for (std::size_t wi = 0; wi < all.size(); ++wi) {
        workloads::Workload &w = all[wi];
        const RunResult &res = results[wi];

        std::vector<std::string> row{w.name};
        for (double p : percentiles)
            row.push_back(stats::Table::cell(
                res.serviceUs.percentile(p), "%.2f"));
        table.addRow(std::move(row));

        std::printf("--- %s: service-time CDF (16 points) ---\n",
                    w.name.c_str());
        for (auto [us, frac] : res.serviceUs.cdf(16))
            std::printf("  %6.2f us  %.3f\n", us, frac);
        std::printf("\n");
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: ~75%% of service times below ~5 us;\n"
                "Media and Social have long tails, Social reaching\n"
                "~75 us (ComposePost).\n");
    return 0;
}
