/**
 * @file
 * google-benchmark microbenchmarks of the library's building blocks:
 * host-side throughput of the simulation primitives (event queue,
 * coherence engine, VLB, tables) and modelled latencies of the PrivLib
 * operations. Useful to keep the simulator fast enough for the Fig. 9
 * load sweeps.
 */

#include <benchmark/benchmark.h>

#include "bench/common.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/sampler.hh"
#include "vm/page_table.hh"

using namespace jord;

namespace {

void
BM_EventQueueScheduleDispatch(benchmark::State &state)
{
    sim::EventQueue queue;
    std::uint64_t tick = 0;
    for (auto _ : state) {
        queue.schedule(++tick, [] {});
        queue.step();
    }
    benchmark::DoNotOptimize(queue.curTick());
}
BENCHMARK(BM_EventQueueScheduleDispatch);

void
BM_RngNext(benchmark::State &state)
{
    sim::Rng rng(1);
    std::uint64_t acc = 0;
    for (auto _ : state)
        acc ^= rng.next();
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngNext);

void
BM_RngExponential(benchmark::State &state)
{
    sim::Rng rng(1);
    double acc = 0;
    for (auto _ : state)
        acc += rng.exponential(250.0);
    benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_RngExponential);

void
BM_SamplerRecord(benchmark::State &state)
{
    stats::Sampler sampler(1 << 16);
    double v = 0;
    for (auto _ : state)
        sampler.record(v += 0.5);
    benchmark::DoNotOptimize(sampler.count());
}
BENCHMARK(BM_SamplerRecord);

void
BM_CoherenceL1Hit(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    stack.coherence->read(0, 0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(stack.coherence->read(0, 0x1000));
}
BENCHMARK(BM_CoherenceL1Hit);

void
BM_CoherencePingPong(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    unsigned core = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stack.coherence->write(core, 0x2000));
        core ^= 17; // bounce between two cores
    }
}
BENCHMARK(BM_CoherencePingPong);

void
BM_UatVlbHit(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    privlib::PrivResult vma =
        stack.privlib->mmap(0, 4096, uat::Perm::rw());
    stack.uat->dataAccess(0, vma.value, uat::Perm::r());
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            stack.uat->dataAccess(0, vma.value, uat::Perm::r()));
    }
}
BENCHMARK(BM_UatVlbHit);

void
BM_UatVtwWalk(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    privlib::PrivResult vma =
        stack.privlib->mmap(0, 4096, uat::Perm::rw());
    for (auto _ : state) {
        stack.uat->dvlb(0).invalidateAll();
        benchmark::DoNotOptimize(
            stack.uat->dataAccess(0, vma.value, uat::Perm::r()));
    }
}
BENCHMARK(BM_UatVtwWalk);

void
BM_PrivlibMmapMunmap(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    for (auto _ : state) {
        privlib::PrivResult res =
            stack.privlib->mmap(0, 4096, uat::Perm::rw());
        stack.privlib->munmap(0, res.value, 4096);
    }
}
BENCHMARK(BM_PrivlibMmapMunmap);

void
BM_PrivlibPdLifecycle(benchmark::State &state)
{
    bench::Stack stack(sim::MachineConfig::isca25Default());
    for (auto _ : state) {
        privlib::PrivResult pd = stack.privlib->cget(0);
        stack.privlib->ccall(0, static_cast<uat::PdId>(pd.value));
        stack.privlib->cexit(0);
        stack.privlib->cput(0, static_cast<uat::PdId>(pd.value));
    }
}
BENCHMARK(BM_PrivlibPdLifecycle);

void
BM_BTreeInsertRemove(benchmark::State &state)
{
    uat::VaEncoding enc;
    uat::BTreeVmaTable table(enc);
    for (std::uint64_t i = 0; i < 1000; ++i)
        table.noteInsert(enc.encode(0, i));
    std::uint64_t idx = 5000;
    for (auto _ : state) {
        table.noteInsert(enc.encode(0, idx % 30000 + 2000));
        table.noteRemove(enc.encode(0, (idx - 1) % 30000 + 2000));
        ++idx;
    }
}
BENCHMARK(BM_BTreeInsertRemove);

void
BM_PageTableTranslate(benchmark::State &state)
{
    vm::PageTable table;
    table.map(0x7f00'0000'0000ull, 0x1000'0000, 64 * vm::kPageBytes,
              vm::PagePerms::rw());
    std::uint64_t page = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(table.translate(
            0x7f00'0000'0000ull + (page++ % 64) * vm::kPageBytes));
    }
}
BENCHMARK(BM_PageTableTranslate);

} // namespace

BENCHMARK_MAIN();
