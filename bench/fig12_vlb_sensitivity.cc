/**
 * @file
 * Figure 12: sensitivity of performance to the number of I-VLB and
 * D-VLB entries.
 *
 * The paper varies entries in {1, 2, 4, 16} on the two most sensitive
 * workloads: Hipster for the I-VLB (two entries — the function's code
 * plus PrivLib's — already reach 99% of full throughput) and Media for
 * the D-VLB (eight entries cover the worst case of many live ArgBufs).
 *
 * Host-parallel: --jobs N runs the (workload, VLB-size) combinations
 * concurrently, each sweep fanning its own load points; output is
 * byte-identical to --jobs 1.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

struct Variant {
    const char *workload;
    bool vary_ivlb;
    double lo, hi;
};

/** One (variant, entries) table row, committed by its job. */
struct SizeRow {
    double tputUnderSlo = 0;
    double lowLoadP99Us = 0;
    double hitRate = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fig12");
    std::uint64_t requests = args.quick ? 1500 : 6000;
    requests = sim::env::getU64("JORD_FIG12_REQUESTS", requests);
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    bench::banner("Figure 12: VLB-size sensitivity "
                  "(Hipster I-VLB, Media D-VLB)");

    const unsigned sizes[] = {1, 2, 4, 16};
    constexpr std::size_t kNumSizes = 4;
    const Variant variants[] = {
        {"Hipster", true, 0.5, 13.0},
        {"Media", false, 0.25, 4.5},
    };
    constexpr std::size_t kNumVariants = 2;

    // Job graph: each variant's SLO measurement precedes its four
    // VLB-size jobs; rows commit to per-combination slots.
    std::vector<workloads::Workload> wls;
    std::vector<std::vector<double>> loads;
    for (const Variant &variant : variants) {
        wls.push_back(workloads::makeByName(variant.workload));
        loads.push_back(
            workloads::loadSeries(variant.lo, variant.hi, 10));
    }
    workloads::SweepConfig scfg;
    scfg.requestsPerPoint = requests;
    scfg.pool = pool.get();

    bench::Slots<double> slo(kNumVariants);
    bench::Slots<SizeRow> rows(kNumVariants * kNumSizes);
    par::JobGraph graph;
    for (std::size_t vi = 0; vi < kNumVariants; ++vi) {
        par::JobGraph::NodeId slo_node = graph.add([&, vi] {
            slo.set(vi, workloads::measureSloUs(wls[vi], scfg));
        });
        for (std::size_t si = 0; si < kNumSizes; ++si) {
            par::JobGraph::NodeId node = graph.add([&, vi, si] {
                const Variant &variant = variants[vi];
                unsigned entries = sizes[si];
                workloads::SweepConfig cfg = scfg;
                if (variant.vary_ivlb)
                    cfg.worker.machine.ivlbEntries = entries;
                else
                    cfg.worker.machine.dvlbEntries = entries;

                workloads::SweepResult res = workloads::sweepLoad(
                    wls[vi], SystemKind::Jord, loads[vi], slo.at(vi),
                    cfg);

                // Hit rate measured separately at a moderate load.
                WorkerConfig wc = cfg.worker;
                WorkerServer worker(wc, wls[vi].registry);
                RunResult run = worker.run(loads[vi][3], requests / 2,
                                           wls[vi].mix);
                double hits = 0, total = 0;
                for (unsigned core = 0; core < wc.machine.numCores;
                     ++core) {
                    const uat::VlbStats &s =
                        variant.vary_ivlb
                            ? worker.uat().ivlb(core).stats()
                            : worker.uat().dvlb(core).stats();
                    hits += static_cast<double>(s.hits);
                    total += static_cast<double>(s.hits + s.misses);
                }
                rows.set(vi * kNumSizes + si,
                         SizeRow{res.throughputUnderSlo,
                                 res.points.front().p99Us,
                                 total > 0 ? hits / total : 0});
            });
            graph.precede(slo_node, node);
        }
    }
    graph.run(pool.get());

    for (std::size_t vi = 0; vi < kNumVariants; ++vi) {
        const Variant &variant = variants[vi];
        std::printf("--- %s, varying %s (SLO = %.1f us) ---\n",
                    variant.workload,
                    variant.vary_ivlb ? "I-VLB" : "D-VLB", slo.at(vi));
        stats::Table table({"Entries", "Tput under SLO (MRPS)",
                            "P99 @ low load (us)", "VLB hit rate"});
        for (std::size_t si = 0; si < kNumSizes; ++si) {
            const SizeRow &row = rows.at(vi * kNumSizes + si);
            table.addRow(
                {stats::Table::cell(std::uint64_t(sizes[si])),
                 stats::Table::cell(row.tputUnderSlo, "%.2f"),
                 stats::Table::cell(row.lowLoadP99Us, "%.2f"),
                 stats::Table::cell(row.hitRate, "%.4f")});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: 2 I-VLB entries reach ~99%% of the\n"
                "16-entry throughput; 4-8 D-VLB entries suffice even\n"
                "for Media; a single entry degrades both.\n");
    return 0;
}
