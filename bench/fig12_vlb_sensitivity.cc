/**
 * @file
 * Figure 12: sensitivity of performance to the number of I-VLB and
 * D-VLB entries.
 *
 * The paper varies entries in {1, 2, 4, 16} on the two most sensitive
 * workloads: Hipster for the I-VLB (two entries — the function's code
 * plus PrivLib's — already reach 99% of full throughput) and Media for
 * the D-VLB (eight entries cover the worst case of many live ArgBufs).
 */

#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

struct Variant {
    const char *workload;
    bool vary_ivlb;
    double lo, hi;
};

} // namespace

int
main()
{
    std::uint64_t requests = 6000;
    if (const char *env = std::getenv("JORD_FIG12_REQUESTS"))
        requests = std::strtoull(env, nullptr, 10);

    bench::banner("Figure 12: VLB-size sensitivity "
                  "(Hipster I-VLB, Media D-VLB)");

    const unsigned sizes[] = {1, 2, 4, 16};
    const Variant variants[] = {
        {"Hipster", true, 0.5, 13.0},
        {"Media", false, 0.25, 4.5},
    };

    for (const Variant &variant : variants) {
        workloads::Workload w = workloads::makeByName(variant.workload);
        workloads::SweepConfig scfg;
        scfg.requestsPerPoint = requests;
        double slo_us = workloads::measureSloUs(w, scfg);
        std::vector<double> loads =
            workloads::loadSeries(variant.lo, variant.hi, 10);

        std::printf("--- %s, varying %s (SLO = %.1f us) ---\n",
                    variant.workload,
                    variant.vary_ivlb ? "I-VLB" : "D-VLB", slo_us);
        stats::Table table({"Entries", "Tput under SLO (MRPS)",
                            "P99 @ low load (us)", "VLB hit rate"});
        for (unsigned entries : sizes) {
            workloads::SweepConfig cfg = scfg;
            if (variant.vary_ivlb)
                cfg.worker.machine.ivlbEntries = entries;
            else
                cfg.worker.machine.dvlbEntries = entries;

            workloads::SweepResult res = workloads::sweepLoad(
                w, SystemKind::Jord, loads, slo_us, cfg);

            // Hit rate measured separately at a moderate load.
            WorkerConfig wc = cfg.worker;
            WorkerServer worker(wc, w.registry);
            RunResult run = worker.run(loads[3], requests / 2, w.mix);
            double hits = 0, total = 0;
            for (unsigned core = 0; core < wc.machine.numCores;
                 ++core) {
                const uat::VlbStats &s =
                    variant.vary_ivlb
                        ? worker.uat().ivlb(core).stats()
                        : worker.uat().dvlb(core).stats();
                hits += static_cast<double>(s.hits);
                total += static_cast<double>(s.hits + s.misses);
            }
            table.addRow(
                {stats::Table::cell(std::uint64_t(entries)),
                 stats::Table::cell(res.throughputUnderSlo, "%.2f"),
                 stats::Table::cell(res.points.front().p99Us, "%.2f"),
                 stats::Table::cell(total > 0 ? hits / total : 0,
                                    "%.4f")});
        }
        std::printf("%s\n", table.render().c_str());
    }
    std::printf("Expected shape: 2 I-VLB entries reach ~99%% of the\n"
                "16-entry throughput; 4-8 D-VLB entries suffice even\n"
                "for Media; a single entry degrades both.\n");
    return 0;
}
