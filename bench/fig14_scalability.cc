/**
 * @file
 * Figure 14: sensitivity of average function service time, VLB
 * shootdown latency and dispatch latency to the system scale
 * (16/64/128/256 cores and a 2-socket 2x128 configuration, §6.3).
 *
 * The paper's findings: service time and shootdown latency grow
 * sublinearly (ArgBuf traffic is ~15 blocks/request regardless of
 * scale; invalidations are parallelized in hardware so the shootdown
 * tracks the furthest core), while a *single* orchestrator's dispatch
 * scan grows with the executor count and cross-socket latency, reaching
 * ~12 µs on the 2-socket 256-core machine — motivating per-socket
 * orchestrators.
 *
 * Host-parallel: --jobs N runs the scale points (and their dispatch
 * scanners) concurrently — submitted largest-machine first so the
 * critical path drains early — with byte-identical output; the CI
 * parallel-determinism job also gates the wall-clock speedup here.
 */

#include <algorithm>
#include <cstdlib>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

struct Scale {
    const char *name;
    unsigned cores;
    unsigned sockets;
};

/** What one scale point contributes to the table. */
struct ScaleRow {
    double serviceUs = 0;
    double shootdownNs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fig14");
    std::uint64_t requests = args.quick ? 3000 : 12000;
    requests = sim::env::getU64("JORD_FIG14_REQUESTS", requests);
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    const Scale scales[] = {
        {"16-core", 16, 1},   {"64-core", 64, 1},
        {"128-core", 128, 1}, {"256-core", 256, 1},
        {"2-socket", 256, 2},
    };
    constexpr std::size_t kNumScales = 5;

    workloads::Workload w = workloads::makeHipster();

    // Two jobs per scale: the loaded run and the single-orchestrator
    // dispatch scanner. Jobs commit to per-scale slots and printing
    // follows in fixed order, so --jobs N output matches --jobs 1.
    bench::Slots<ScaleRow> rows(kNumScales);
    bench::Slots<double> dispatch_us(kNumScales);
    par::TaskGroup group(pool.get());
    // Largest machines first: they dominate wall-clock, so they must
    // not start in the last scheduling round. (Commit slots keep the
    // output order independent of this.)
    for (std::size_t n = kNumScales; n-- > 0;) {
        group.run([&, &scale = scales[n], n] {
            // Service time and shootdown latency come from a
            // realistically deployed worker (per-socket orchestrators)
            // at a fixed per-core load, so they reflect scale, not
            // utilization.
            WorkerConfig cfg;
            cfg.machine =
                sim::MachineConfig::scaled(scale.cores, scale.sockets);
            cfg.numOrchestrators = std::max(2u, scale.cores / 8);
            WorkerServer worker(cfg, w.registry);
            double load = 0.03 * scale.cores;
            RunResult res = worker.run(load, requests, w.mix);
            rows.set(n, ScaleRow{res.serviceUs.mean(),
                                 res.shootdownNs.mean()});
        });
        group.run([&, &scale = scales[n], n] {
            // The dispatch series is the paper's stress case: a single
            // orchestrator scanning every executor in the system, all
            // of whose queue-length lines changed since its last scan.
            WorkerConfig scan_cfg;
            scan_cfg.machine =
                sim::MachineConfig::scaled(scale.cores, scale.sockets);
            scan_cfg.numOrchestrators = 1;
            scan_cfg.perSocketOrchestrators = false;
            WorkerServer scanner(scan_cfg, w.registry);
            dispatch_us.set(n, scanner.measureDispatchScanNs() / 1000.0);
        });
    }
    group.wait();

    bench::banner("Figure 14: scalability with system size (Hipster)");

    stats::Table table({"Scale", "Avg service (us)",
                        "VLB shootdown (ns)", "Dispatch (us)"});
    std::map<std::string, double> json;
    for (std::size_t n = 0; n < kNumScales; ++n) {
        const ScaleRow &row = rows.at(n);
        table.addRow({scales[n].name,
                      stats::Table::cell(row.serviceUs, "%.2f"),
                      stats::Table::cell(row.shootdownNs, "%.1f"),
                      stats::Table::cell(dispatch_us.at(n), "%.2f")});
        std::string prefix = std::string("fig14.") + scales[n].name;
        json[prefix + ".service_us"] = row.serviceUs;
        json[prefix + ".shootdown_ns"] = row.shootdownNs;
        json[prefix + ".dispatch_us"] = dispatch_us.at(n);
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: service time and shootdown latency\n"
                "grow sublinearly with core count; the single\n"
                "orchestrator's dispatch latency grows steeply and\n"
                "jumps on the 2-socket machine (paper: ~12 us),\n"
                "motivating per-socket orchestrators (§6.3).\n");
    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
