/**
 * @file
 * Figure 14: sensitivity of average function service time, VLB
 * shootdown latency and dispatch latency to the system scale
 * (16/64/128/256 cores and a 2-socket 2x128 configuration, §6.3).
 *
 * The paper's findings: service time and shootdown latency grow
 * sublinearly (ArgBuf traffic is ~15 blocks/request regardless of
 * scale; invalidations are parallelized in hardware so the shootdown
 * tracks the furthest core), while a *single* orchestrator's dispatch
 * scan grows with the executor count and cross-socket latency, reaching
 * ~12 µs on the 2-socket 256-core machine — motivating per-socket
 * orchestrators.
 */

#include <algorithm>
#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

struct Scale {
    const char *name;
    unsigned cores;
    unsigned sockets;
};

} // namespace

int
main()
{
    std::uint64_t requests = 12000;
    if (const char *env = std::getenv("JORD_FIG14_REQUESTS"))
        requests = std::strtoull(env, nullptr, 10);

    bench::banner("Figure 14: scalability with system size (Hipster)");

    const Scale scales[] = {
        {"16-core", 16, 1},   {"64-core", 64, 1},
        {"128-core", 128, 1}, {"256-core", 256, 1},
        {"2-socket", 256, 2},
    };

    workloads::Workload w = workloads::makeHipster();

    stats::Table table({"Scale", "Avg service (us)",
                        "VLB shootdown (ns)", "Dispatch (us)"});
    for (const Scale &scale : scales) {
        // Service time and shootdown latency come from a realistically
        // deployed worker (per-socket orchestrators) at a fixed
        // per-core load, so they reflect scale, not utilization.
        WorkerConfig cfg;
        cfg.machine =
            sim::MachineConfig::scaled(scale.cores, scale.sockets);
        cfg.numOrchestrators = std::max(2u, scale.cores / 8);
        WorkerServer worker(cfg, w.registry);
        double load = 0.03 * scale.cores;
        RunResult res = worker.run(load, requests, w.mix);

        // The dispatch series is the paper's stress case: a single
        // orchestrator scanning every executor in the system, all of
        // whose queue-length lines changed since its last scan.
        WorkerConfig scan_cfg = cfg;
        scan_cfg.numOrchestrators = 1;
        scan_cfg.perSocketOrchestrators = false;
        WorkerServer scanner(scan_cfg, w.registry);
        double dispatch_us = scanner.measureDispatchScanNs() / 1000.0;

        table.addRow({scale.name,
                      stats::Table::cell(res.serviceUs.mean(), "%.2f"),
                      stats::Table::cell(res.shootdownNs.mean(),
                                         "%.1f"),
                      stats::Table::cell(dispatch_us, "%.2f")});
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: service time and shootdown latency\n"
                "grow sublinearly with core count; the single\n"
                "orchestrator's dispatch latency grows steeply and\n"
                "jumps on the 2-socket machine (paper: ~12 us),\n"
                "motivating per-socket orchestrators (§6.3).\n");
    return 0;
}
