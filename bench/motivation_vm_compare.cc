/**
 * @file
 * The §2.2 motivation, quantified: memory-management operations through
 * the OS-managed page-based virtual memory (syscall + page-table walk +
 * IPI shootdown) versus Jord's user-level UAT path, on the same
 * modelled machine.
 *
 * The paper argues that OS-mediated VMA permission updates take "tens
 * to even thousands of microseconds" while Jord needs nanoseconds —
 * this harness regenerates that comparison table.
 */

#include "bench/common.hh"
#include "par/par.hh"
#include "sim/logging.hh"
#include "stats/table.hh"
#include "vm/posix_vm.hh"

using namespace jord;

namespace {

/** Mean latencies one path's job commits. */
struct PathMeans {
    double mmapNs = 0;
    double mprotectNs = 0;
    double munmapNs = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "motivation_vm_compare");
    bench::banner("Motivation (§2.2): OS page-based VM vs Jord UAT");

    sim::MachineConfig cfg = sim::MachineConfig::isca25Default();

    constexpr unsigned kIters = 300;
    constexpr std::uint64_t kBytes = 16 << 10;

    // Two host-parallel jobs, one per path; each builds its own
    // simulator stack and samplers, so the table is byte-identical
    // at any --jobs value.
    std::unique_ptr<par::ThreadPool> pool = args.makePool();
    std::vector<PathMeans> means = par::orderedMap<PathMeans>(
        pool.get(), 2, [&](std::size_t path) {
            PathMeans out;
            if (path == 0) {
                // --- OS path -----------------------------------------
                noc::Mesh mesh(cfg);
                mem::CoherenceEngine coherence(cfg, mesh);
                vm::PosixVm posix(cfg, coherence);
                stats::Sampler os_mmap, os_mprotect, os_munmap;
                bench::warmIters(kIters, 0, [&](bool) {
                    vm::VmOpResult m =
                        posix.mmap(0, kBytes, vm::PagePerms::rw());
                    if (!m.ok)
                        sim::fatal("posix mmap failed");
                    vm::VmOpResult p = posix.mprotect(
                        0, m.addr, kBytes, vm::PagePerms::ro());
                    vm::VmOpResult u = posix.munmap(0, m.addr, kBytes);
                    os_mmap.record(static_cast<double>(m.latency));
                    os_mprotect.record(static_cast<double>(p.latency));
                    os_munmap.record(static_cast<double>(u.latency));
                });
                out.mmapNs = bench::meanNs(os_mmap);
                out.mprotectNs = bench::meanNs(os_mprotect);
                out.munmapNs = bench::meanNs(os_munmap);
                return out;
            }
            // --- Jord path -------------------------------------------
            // Warm the free lists as a real worker would before
            // sampling.
            bench::Stack jord_stack(cfg);
            privlib::PrivLib &pl = *jord_stack.privlib;
            stats::Sampler jd_mmap, jd_mprotect, jd_munmap;
            bench::warmIters(
                kIters, bench::kWarmupIters, [&](bool measured) {
                    privlib::PrivResult m =
                        pl.mmap(0, kBytes, uat::Perm::rw());
                    privlib::PrivResult p =
                        pl.mprotect(0, m.value, kBytes, uat::Perm::r());
                    privlib::PrivResult u =
                        pl.munmap(0, m.value, kBytes);
                    if (!measured)
                        return;
                    jd_mmap.record(static_cast<double>(m.latency));
                    jd_mprotect.record(static_cast<double>(p.latency));
                    jd_munmap.record(static_cast<double>(u.latency));
                });
            out.mmapNs = bench::meanNs(jd_mmap);
            out.mprotectNs = bench::meanNs(jd_mprotect);
            out.munmapNs = bench::meanNs(jd_munmap);
            return out;
        });

    stats::Table table({"Operation (16 KB)", "OS page-based (ns)",
                        "Jord UAT (ns)", "Speedup"});
    struct Row {
        const char *name;
        double os_ns;
        double jord_ns;
    };
    const Row rows[] = {
        {"mmap", means[0].mmapNs, means[1].mmapNs},
        {"mprotect", means[0].mprotectNs, means[1].mprotectNs},
        {"munmap", means[0].munmapNs, means[1].munmapNs},
    };
    for (const Row &row : rows) {
        table.addRow({row.name, stats::Table::cell(row.os_ns, "%.0f"),
                      stats::Table::cell(row.jord_ns, "%.0f"),
                      stats::Table::cell(row.os_ns / row.jord_ns,
                                         "%.0fx")});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Permission changes through the OS pay a syscall, leaf\n"
                "PTE rewrites, and an IPI shootdown to all %u cores\n"
                "(microseconds); Jord's PrivLib runs entirely at user\n"
                "level in tens of nanoseconds (§2.2, Table 4).\n",
                cfg.numCores);
    return 0;
}
