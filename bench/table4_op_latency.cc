/**
 * @file
 * Table 4: VMA and PD operation latencies on the cycle model
 * ("Simulator" column) and the RTL/FPGA profile ("FPGA" column).
 *
 * Methodology mirrors §6.2: each operation is measured warm on a single
 * core (the microbenchmark loop keeps the VTE and free-list lines hot in
 * the L1), and the FPGA profile differs only through the lower IPC of
 * the instruction-execution component; raw SRAM/hardware latencies are
 * identical between the two models.
 */

#include "sim/logging.hh"

#include "bench/common.hh"
#include "stats/table.hh"

using namespace jord;
using bench::Stack;
using privlib::PrivResult;

namespace {

struct Row {
    const char *name;
    double simulatorNs;
    double fpgaNs;
    double paperSimNs;
    double paperFpgaNs;
};

/** Measure all seven Table 4 operations on one stack. */
std::vector<double>
measureAll(Stack &stack, unsigned kIters)
{
    constexpr unsigned kCore = 0;
    privlib::PrivLib &pl = *stack.privlib;
    double ghz = stack.machine.freqGhz;
    std::vector<double> ns;

    // --- VMA lookup: VTW walk latency on a VLB miss whose traversal
    // hits the L1D (the common case, §6.2).
    PrivResult vma = pl.mmap(kCore, 4096, uat::Perm::rw());
    if (!vma.ok)
        sim::fatal("table4: mmap failed");
    sim::Addr vte_addr = stack.table->vteAddrOf(vma.value);
    ns.push_back(bench::meanNs(
        bench::sampleOp(kIters,
                        [&] {
                            stack.uat->dvlb(kCore).invalidateVte(
                                vte_addr);
                            // Keep the VTE line warm in the L1.
                            stack.coherence->read(kCore, vte_addr,
                                                  true);
                            uat::UatAccess acc = stack.uat->dataAccess(
                                kCore, vma.value, uat::Perm::r());
                            if (!acc.ok())
                                sim::fatal("lookup fault");
                            return acc.latency;
                        }),
        ghz));

    // --- VMA update: mprotect on a warm VMA.
    bool flip = false;
    ns.push_back(bench::meanNs(
        bench::sampleOp(kIters,
                        [&] {
                            flip = !flip;
                            PrivResult res = pl.mprotect(
                                kCore, vma.value, 4096,
                                flip ? uat::Perm::r()
                                     : uat::Perm::rw());
                            if (!res.ok)
                                sim::fatal("mprotect failed");
                            return res.latency;
                        }),
        ghz));

    // --- VMA insertion + deletion: steady-state mmap/munmap pairs.
    stats::Sampler insert, remove;
    bench::warmIters(kIters, bench::kWarmupIters, [&](bool measured) {
        PrivResult m = pl.mmap(kCore, 4096, uat::Perm::rw());
        if (!m.ok)
            sim::fatal("mmap failed");
        PrivResult u = pl.munmap(kCore, m.value, 4096);
        if (!u.ok)
            sim::fatal("munmap failed");
        if (measured) {
            insert.record(static_cast<double>(m.latency));
            remove.record(static_cast<double>(u.latency));
        }
    });
    ns.push_back(bench::meanNs(insert, ghz));
    ns.push_back(bench::meanNs(remove, ghz));

    // --- PD creation + deletion: cget/cput pairs.
    stats::Sampler create, destroy;
    bench::warmIters(kIters, bench::kWarmupIters, [&](bool measured) {
        PrivResult g = pl.cget(kCore);
        if (!g.ok)
            sim::fatal("cget failed");
        PrivResult p = pl.cput(kCore, static_cast<uat::PdId>(g.value));
        if (!p.ok)
            sim::fatal("cput failed");
        if (measured) {
            create.record(static_cast<double>(g.latency));
            destroy.record(static_cast<double>(p.latency));
        }
    });
    ns.push_back(bench::meanNs(create, ghz));
    ns.push_back(bench::meanNs(destroy, ghz));

    // --- PD switching: ccall into a live PD (paired cexit to restore).
    PrivResult pd = pl.cget(kCore);
    if (!pd.ok)
        sim::fatal("cget failed");
    ns.push_back(bench::meanNs(
        bench::sampleOp(kIters,
                        [&] {
                            PrivResult c = pl.ccall(
                                kCore,
                                static_cast<uat::PdId>(pd.value));
                            if (!c.ok)
                                sim::fatal("ccall failed");
                            pl.cexit(kCore);
                            return c.latency;
                        }),
        ghz));

    return ns;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "table4");

    bench::banner("Table 4: VMA and PD operation latencies");

    Stack simulator(sim::MachineConfig::isca25Default());
    sim::MachineConfig fpga_cfg = sim::MachineConfig::isca25Default();
    fpga_cfg.profile = sim::MachineProfile::Fpga;
    Stack fpga(fpga_cfg);

    unsigned iters = args.quick ? 200 : 1000;
    std::vector<double> sim_ns = measureAll(simulator, iters);
    std::vector<double> fpga_ns = measureAll(fpga, iters);

    const char *names[] = {"VMA lookup",   "VMA update",
                           "VMA insertion", "VMA deletion",
                           "PD creation",  "PD deletion",
                           "PD switching"};
    const char *keys[] = {"vma_lookup",    "vma_update",
                          "vma_insertion", "vma_deletion",
                          "pd_creation",   "pd_deletion",
                          "pd_switching"};
    const double paper_sim[] = {2, 16, 16, 27, 11, 14, 12};
    const double paper_fpga[] = {2, 33, 37, 39, 25, 30, 22};

    stats::Table table({"Operation", "Simulator (ns)", "FPGA (ns)",
                        "Paper sim (ns)", "Paper FPGA (ns)"});
    for (unsigned i = 0; i < 7; ++i) {
        table.addRow({names[i], stats::Table::cell(sim_ns[i], "%.0f"),
                      stats::Table::cell(fpga_ns[i], "%.0f"),
                      stats::Table::cell(paper_sim[i], "%.0f"),
                      stats::Table::cell(paper_fpga[i], "%.0f")});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("All operations should complete within tens of ns; the\n"
                "FPGA column differs only via software-IPC scaling.\n");

    std::map<std::string, double> json;
    for (unsigned i = 0; i < 7; ++i) {
        json[std::string("table4.") + keys[i] + ".sim_ns"] = sim_ns[i];
        json[std::string("table4.") + keys[i] + ".fpga_ns"] =
            fpga_ns[i];
    }
    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
