/**
 * @file
 * Figure 11: service-time breakdown for the eight Table 3 functions
 * (GC, PO / SN, MR / UU, RP / F, CP) under Jord and NightCore.
 *
 * For Jord the service time splits into execution + memory isolation +
 * dispatch (plus zero-copy communication); for NightCore into execution
 * + pipe overhead. The paper reports Jord averaging 48% lower service
 * time, with dispatch+isolation ~11% of Jord's service time except for
 * ReadPage's >100-way fan-out, and NightCore's overhead exceeding its
 * execution time for most functions (3x for RP).
 *
 * The numbers come from the src/trace subsystem: each run is traced and
 * the per-function means are recomputed from the span stream by
 * trace::analyzeSpans — the same analysis `trace_report` applies to an
 * exported trace file.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "trace/breakdown.hh"
#include "trace/trace.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

const trace::BreakdownRow *
rowById(const trace::BreakdownReport &report, runtime::FunctionId fn)
{
    for (const trace::BreakdownRow &row : report.rows)
        if (row.fnId == static_cast<std::int32_t>(fn))
            return &row;
    return nullptr;
}

} // namespace

int
main()
{
    std::uint64_t requests = 20000;
    requests = sim::env::getU64("JORD_FIG11_REQUESTS", requests);

    // Moderate load (~35% of each workload's saturation) so queueing
    // does not swamp the intrinsic overheads, mirroring the paper's
    // breakdown conditions.
    const double loads[] = {4.0, 2.5, 1.2, 0.3};

    bench::banner("Figure 11: service-time breakdown for selected "
                  "functions");

    stats::Table table({"Fn", "System", "Service (us)", "Exec (us)",
                        "Isolation (us)", "Dispatch (us)", "Comm (us)",
                        "Pipe (us)", "Wait (us)", "Overhead %"});

    auto all = workloads::makeAll();
    for (std::size_t wi = 0; wi < all.size(); ++wi) {
        workloads::Workload &w = all[wi];
        for (SystemKind system :
             {SystemKind::Jord, SystemKind::NightCore}) {
            WorkerConfig cfg;
            cfg.system = system;
            WorkerServer worker(cfg, w.registry);
            trace::Tracer tracer(cfg.machine.freqGhz);
            worker.setTracer(&tracer);
            // Compare at comparable utilization: NightCore saturates
            // far earlier, so it runs at a quarter of Jord's load.
            double load = system == SystemKind::NightCore
                              ? loads[wi] / 4.0
                              : loads[wi];
            worker.run(load, requests, w.mix);
            worker.setTracer(nullptr);
            trace::BreakdownReport report =
                trace::analyzeSpans(tracer);
            for (const auto &[abbr, fn] : w.selected) {
                const trace::BreakdownRow *row = rowById(report, fn);
                if (!row)
                    continue;
                table.addRow(
                    {abbr, systemName(system),
                     stats::Table::cell(row->serviceUs, "%.2f"),
                     stats::Table::cell(row->execUs, "%.2f"),
                     stats::Table::cell(row->isolationUs, "%.3f"),
                     stats::Table::cell(row->dispatchUs, "%.3f"),
                     stats::Table::cell(row->commUs, "%.3f"),
                     stats::Table::cell(row->pipeUs, "%.2f"),
                     stats::Table::cell(row->queueUs, "%.2f"),
                     stats::Table::cell(row->overheadPct(), "%.1f")});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: Jord service ~half of NightCore's;\n"
                "Jord isolation+dispatch ~11%% of service time (higher\n"
                "for RP); NightCore pipe overhead >= exec for most\n"
                "functions, ~3x for RP.\n");
    return 0;
}
