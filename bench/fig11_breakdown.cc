/**
 * @file
 * Figure 11: service-time breakdown for the eight Table 3 functions
 * (GC, PO / SN, MR / UU, RP / F, CP) under Jord and NightCore.
 *
 * For Jord the service time splits into execution + memory isolation +
 * dispatch (plus zero-copy communication); for NightCore into execution
 * + pipe overhead. The paper reports Jord averaging 48% lower service
 * time, with dispatch+isolation ~11% of Jord's service time except for
 * ReadPage's >100-way fan-out, and NightCore's overhead exceeding its
 * execution time for most functions (3x for RP).
 */

#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::Breakdown;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

/** Per-selected-function measurement for one system. */
struct FnRow {
    double serviceUs = 0;
    double execUs = 0;
    double isolationUs = 0;
    double dispatchUs = 0;
    double commUs = 0;
    double pipeUs = 0;
    double queueUs = 0;
};

FnRow
measure(const RunResult &res, runtime::FunctionId fn, double ghz)
{
    FnRow row;
    std::uint64_t n = res.perFunctionCount[fn];
    if (n == 0)
        return row;
    const Breakdown &bd = res.perFunctionBreakdown[fn];
    auto us = [&](sim::Cycles c) {
        return sim::cyclesToUs(static_cast<double>(c) /
                                   static_cast<double>(n) * ghz,
                               ghz) /
               ghz; // cycles -> us via mean
    };
    (void)us;
    auto mean_us = [&](std::uint64_t c) {
        return sim::cyclesToUs(c, ghz) / static_cast<double>(n);
    };
    row.serviceUs = res.perFunctionServiceUs[fn].mean();
    row.execUs = mean_us(bd.exec);
    row.isolationUs = mean_us(bd.isolation);
    row.dispatchUs = mean_us(bd.dispatch);
    row.commUs = mean_us(bd.comm);
    row.pipeUs = mean_us(bd.pipe);
    row.queueUs = mean_us(bd.queue);
    return row;
}

} // namespace

int
main()
{
    std::uint64_t requests = 20000;
    if (const char *env = std::getenv("JORD_FIG11_REQUESTS"))
        requests = std::strtoull(env, nullptr, 10);

    // Moderate load (~35% of each workload's saturation) so queueing
    // does not swamp the intrinsic overheads, mirroring the paper's
    // breakdown conditions.
    const double loads[] = {4.0, 2.5, 1.2, 0.3};

    bench::banner("Figure 11: service-time breakdown for selected "
                  "functions");

    stats::Table table({"Fn", "System", "Service (us)", "Exec (us)",
                        "Isolation (us)", "Dispatch (us)", "Comm (us)",
                        "Pipe (us)", "Wait (us)", "Overhead %"});

    auto all = workloads::makeAll();
    for (std::size_t wi = 0; wi < all.size(); ++wi) {
        workloads::Workload &w = all[wi];
        for (SystemKind system :
             {SystemKind::Jord, SystemKind::NightCore}) {
            WorkerConfig cfg;
            cfg.system = system;
            WorkerServer worker(cfg, w.registry);
            // Compare at comparable utilization: NightCore saturates
            // far earlier, so it runs at a quarter of Jord's load.
            double load = system == SystemKind::NightCore
                              ? loads[wi] / 4.0
                              : loads[wi];
            RunResult res = worker.run(load, requests, w.mix);
            double ghz = cfg.machine.freqGhz;
            for (const auto &[abbr, fn] : w.selected) {
                FnRow row = measure(res, fn, ghz);
                double overhead = row.isolationUs + row.dispatchUs +
                                  row.pipeUs;
                double pct = row.serviceUs > 0
                                 ? 100.0 * overhead / row.serviceUs
                                 : 0;
                table.addRow(
                    {abbr, systemName(system),
                     stats::Table::cell(row.serviceUs, "%.2f"),
                     stats::Table::cell(row.execUs, "%.2f"),
                     stats::Table::cell(row.isolationUs, "%.3f"),
                     stats::Table::cell(row.dispatchUs, "%.3f"),
                     stats::Table::cell(row.commUs, "%.3f"),
                     stats::Table::cell(row.pipeUs, "%.2f"),
                     stats::Table::cell(row.queueUs, "%.2f"),
                     stats::Table::cell(pct, "%.1f")});
            }
        }
    }
    std::printf("%s", table.render().c_str());
    std::printf("\nExpected shape: Jord service ~half of NightCore's;\n"
                "Jord isolation+dispatch ~11%% of service time (higher\n"
                "for RP); NightCore pipe overhead >= exec for most\n"
                "functions, ~3x for RP.\n");
    return 0;
}
