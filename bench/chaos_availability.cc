/**
 * @file
 * chaos_availability: fleet availability under seeded chaos — crash
 * rate x gray severity x resilience mechanisms on/off.
 *
 * Extends bench/fault_availability (single worker, in-PD faults) to
 * the fleet: the fault plan's `cluster:` clause injects server
 * crashes, gray windows and link faults into ClusterSim, and
 * ResilienceConfig toggles the mechanisms that react. Three sections:
 *
 *  1. crash-rate sweep x {off, guarded}: "guarded" enables heartbeat
 *     health checking, model-scaled hedges and a 20% retry budget.
 *     Guarding trades tail latency for availability — failures drop
 *     by an order of magnitude while the fleet runs short-handed;
 *  2. gray-severity sweep (server 0 scripted gray for the whole run)
 *     x {off, eject}: "eject" enables LB outlier ejection plus
 *     hedging. Above the ejection threshold the fleet P99 returns to
 *     the clean-fleet level (asserted in tests/test_cluster.cc);
 *  3. correlated mass crash (half the fleet at once) x {none,
 *     budgeted}: a 20% retry budget recovers lost requests without a
 *     retry storm — goodput must be no worse than with retries off.
 *
 * Every point is conservation-gated: the run aborts (non-zero exit)
 * unless generated == completed + shed + failed, so CI's chaos smoke
 * catches any leaked or double-counted request.
 *
 * Flags: --quick shrinks the sweep for CI smoke runs; --jobs N fans
 * the points host-parallel (byte-identical to --jobs 1); --json PATH
 * overrides where BENCH_chaos.json lands.
 * Environment knobs: JORD_CHAOS_REQUESTS overrides calibration
 * requests per point.
 */

#include <cstdlib>
#include <map>

#include "bench/common.hh"
#include "cluster/cluster.hh"
#include "par/par.hh"
#include "stats/table.hh"

using namespace jord;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterSim;

namespace {

/** Abort (non-zero exit) unless every request resolved exactly once. */
void
gateConservation(const char *label, const ClusterResult &res)
{
    std::uint64_t resolved = res.completed + res.shed + res.failed;
    if (res.generated != resolved)
        sim::fatal("chaos conservation violated at %s: generated=%llu "
                   "!= completed+shed+failed=%llu",
                   label, static_cast<unsigned long long>(res.generated),
                   static_cast<unsigned long long>(resolved));
}

/** "0 = no crash, -1 = never recovered" rendered for the table. */
std::string
ttrCell(const ClusterResult &res)
{
    if (res.crashes == 0)
        return "-";
    if (res.timeToRecoverUs < 0)
        return "never";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.1f", res.timeToRecoverUs);
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv, "chaos");
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    workloads::Workload hotel = workloads::makeHotel();

    ClusterConfig base;
    base.calibration.requests = args.quick ? 3000 : 12000;
    base.calibration.requests = sim::env::getU64("JORD_CHAOS_REQUESTS", base.calibration.requests);
    base.numServers = 8;
    base.traffic.durationUs = args.quick ? 20000.0 : 60000.0;
    base.serverQueueCap = 256;
    base.faultPlan.seed = 42;

    cluster::ServerModel model = cluster::calibrateServer(
        hotel, base.worker, base.calibration, pool.get());
    std::printf("calibrated server: %.3f MRPS capacity, %.1f us mean "
                "latency, concurrency %u (%u executors)\n",
                model.capacityMrps, model.meanLatencyUs,
                model.concurrency, model.numExecutors);
    base.traffic.mrps = 0.7 * base.numServers * model.capacityMrps;

    // Resilience bundles. The hedge delay is bracketed by the model:
    // above the typical latency (or every request hedges and the extra
    // copies overload the fleet) and under the derived SLO of 10x mean
    // (a hedge that fires after the loss detector has already failed
    // the request rescues nothing).
    double hedge_us = 6.0 * model.meanLatencyUs;
    cluster::ResilienceConfig guarded;
    guarded.healthCheck = true;
    guarded.hedgeUs = hedge_us;
    guarded.retryBudgetFrac = 0.2;
    cluster::ResilienceConfig eject;
    eject.outlierEject = true;
    eject.hedgeUs = hedge_us;
    cluster::ResilienceConfig budgeted;
    budgeted.healthCheck = true;
    budgeted.retryBudgetFrac = 0.2;

    std::vector<double> crash_rates =
        args.quick ? std::vector<double>{0, 0.02}
                   : std::vector<double>{0, 0.01, 0.02, 0.05};
    std::vector<double> gray_mults =
        args.quick ? std::vector<double>{4} : std::vector<double>{2, 4, 8};

    // All sections' points as one flat list, fanned once; each point
    // is its own serial DES, so --jobs N output is byte-identical.
    std::vector<ClusterConfig> points;
    for (double rate : crash_rates) {
        for (bool on : {false, true}) {
            ClusterConfig cfg = base;
            cfg.faultPlan.cluster.serverCrash = rate;
            cfg.faultPlan.cluster.gray = rate;
            if (on)
                cfg.resilience = guarded;
            points.push_back(cfg);
        }
    }
    std::size_t gray_first = points.size();
    for (double mult : gray_mults) {
        for (bool on : {false, true}) {
            ClusterConfig cfg = base;
            cfg.faultPlan.cluster.grayServer = 0;
            cfg.faultPlan.cluster.grayMult = mult;
            if (on)
                cfg.resilience = eject;
            points.push_back(cfg);
        }
    }
    std::size_t mass_first = points.size();
    for (bool on : {false, true}) {
        ClusterConfig cfg = base;
        // 0.4x capacity: the surviving half-fleet runs at 0.8x, so the
        // budgeted retries have headroom to land (at 0.7x the halved
        // fleet is past saturation and no retry policy can help).
        cfg.traffic.mrps = 0.4 * base.numServers * model.capacityMrps;
        cfg.faultPlan.cluster.crashAtMs =
            0.3 * base.traffic.durationUs / 1000.0;
        cfg.faultPlan.cluster.crashFrac = 0.5;
        cfg.resilience = budgeted;
        if (!on)
            cfg.resilience.retryBudgetFrac = 0;
        points.push_back(cfg);
    }

    std::vector<ClusterResult> results = par::orderedMap<ClusterResult>(
        pool.get(), points.size(), [&](std::size_t i) {
            ClusterSim sim(points[i], model);
            return sim.run();
        });
    for (std::size_t i = 0; i < results.size(); ++i)
        gateConservation(
            ("point " + std::to_string(i)).c_str(), results[i]);

    std::map<std::string, double> json;
    const std::vector<std::string> cols = {
        "Rate", "Mechanisms", "Goodput (MRPS)", "P99 (us)",
        "SLO burn", "Failed", "Hedge wins", "TTR (us)"};

    bench::banner("chaos: crash+gray rate x mechanisms "
                  "(8 servers, 0.7x capacity)");
    stats::Table crash_table(cols);
    for (std::size_t ri = 0; ri < crash_rates.size(); ++ri) {
        for (bool on : {false, true}) {
            const ClusterResult &res = results[ri * 2 + on];
            const char *mech = on ? "guarded" : "off";
            crash_table.addRow(
                {stats::Table::cell(crash_rates[ri], "%.3f"), mech,
                 stats::Table::cell(res.goodputMrps, "%.2f"),
                 stats::Table::cell(res.p99Us, "%.1f"),
                 stats::Table::cell(res.sloBurn, "%.4f"),
                 stats::Table::cell(res.failed),
                 stats::Table::cell(res.hedgeWins), ttrCell(res)});
            char rate_key[32];
            std::snprintf(rate_key, sizeof(rate_key), "%.3f",
                          crash_rates[ri]);
            std::string prefix = std::string("chaos.crash") + rate_key +
                                 "." + mech;
            json[prefix + ".goodput_mrps"] = res.goodputMrps;
            json[prefix + ".p99_us"] = res.p99Us;
            json[prefix + ".slo_burn"] = res.sloBurn;
            json[prefix + ".failed"] =
                static_cast<double>(res.failed);
        }
    }
    std::printf("%s", crash_table.render().c_str());
    std::printf(
        "\nExpected shape: unguarded failure count grows with the\n"
        "crash rate (the LB keeps routing to dead servers until the\n"
        "detection timeout). Guarded runs trade tail latency for\n"
        "availability: health checks, hedges and budgeted retries cut\n"
        "failures by an order of magnitude while the fleet is running\n"
        "short-handed through restarts.\n");

    bench::banner("chaos: gray severity x ejection "
                  "(server 0 gray all run)");
    stats::Table gray_table({"Gray mult", "Mechanisms",
                             "Goodput (MRPS)", "P99 (us)", "Ejections",
                             "Hedge wins"});
    for (std::size_t gi = 0; gi < gray_mults.size(); ++gi) {
        for (bool on : {false, true}) {
            const ClusterResult &res = results[gray_first + gi * 2 + on];
            const char *mech = on ? "eject" : "off";
            gray_table.addRow(
                {stats::Table::cell(gray_mults[gi], "%.0f"), mech,
                 stats::Table::cell(res.goodputMrps, "%.2f"),
                 stats::Table::cell(res.p99Us, "%.1f"),
                 stats::Table::cell(res.ejections),
                 stats::Table::cell(res.hedgeWins)});
            char mult_key[32];
            std::snprintf(mult_key, sizeof(mult_key), "%.0f",
                          gray_mults[gi]);
            std::string prefix = std::string("chaos.gray") + mult_key +
                                 "." + mech;
            json[prefix + ".goodput_mrps"] = res.goodputMrps;
            json[prefix + ".p99_us"] = res.p99Us;
        }
    }
    std::printf("%s", gray_table.render().c_str());
    std::printf(
        "\nExpected shape: one gray server drags the unguarded fleet\n"
        "P99 to the degraded service time. Above the ejection\n"
        "threshold (grayx > ejectMult) the detector routes around the\n"
        "outlier and P99 returns to the clean-fleet level; a mildly\n"
        "gray server inside the band correctly stays in the fleet.\n");

    bench::banner("chaos: correlated mass crash (50% of fleet) "
                  "x retry budget");
    stats::Table mass_table({"Retries", "Goodput (MRPS)", "P99 (us)",
                             "Failed", "Retries used", "TTR (us)"});
    for (bool on : {false, true}) {
        const ClusterResult &res = results[mass_first + on];
        const char *mech = on ? "budgeted" : "none";
        mass_table.addRow(
            {mech, stats::Table::cell(res.goodputMrps, "%.2f"),
             stats::Table::cell(res.p99Us, "%.1f"),
             stats::Table::cell(res.failed),
             stats::Table::cell(res.retries), ttrCell(res)});
        std::string prefix = std::string("chaos.masscrash.") + mech;
        json[prefix + ".goodput_mrps"] = res.goodputMrps;
        json[prefix + ".failed"] = static_cast<double>(res.failed);
        json[prefix + ".ttr_us"] = res.timeToRecoverUs;
    }
    std::printf("%s", mass_table.render().c_str());
    std::printf(
        "\nThe budget caps retries at 20%% of primary traffic, so the\n"
        "surviving half-fleet absorbs the recovered load without a\n"
        "retry storm: budgeted goodput is never below none.\n");

    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
