/**
 * @file
 * Figure 9: 99th-percentile latency vs offered load for Jord, Jord_NI
 * and NightCore on all four workloads, plus throughput under SLO.
 *
 * Reproduces the headline claims of §6.1: Jord performs within ~16% of
 * the insecure Jord_NI upper bound (Media ~70% due to its 12-way nested
 * fan-out) and delivers over 2x NightCore's throughput under SLO on
 * average, with NightCore failing the SLO even at minimum load for the
 * communication-heavy workloads (Hipster, Media).
 *
 * Host-parallel: --jobs N fans the work across N threads as a job
 * graph — each workload's SLO measurement precedes its three system
 * sweeps, and every sweep fans its load points — with output
 * byte-identical to --jobs 1 (the CI parallel-determinism gate).
 *
 * Environment knobs: JORD_FIG9_REQUESTS (default 20000) trades run time
 * for P99 fidelity.
 */

#include <cstdlib>
#include <map>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::SystemKind;
using workloads::SweepConfig;
using workloads::SweepResult;

int
main(int argc, char **argv)
{
    bench::BenchArgs args = bench::BenchArgs::parse(argc, argv, "fig9");

    SweepConfig cfg;
    cfg.requestsPerPoint = args.quick ? 2000 : 8000;
    cfg.requestsPerPoint = sim::env::getU64("JORD_FIG9_REQUESTS", cfg.requestsPerPoint);
    std::unique_ptr<par::ThreadPool> pool = args.makePool();
    cfg.pool = pool.get();

    // Per-workload load ranges follow the paper's x-axes (MRPS).
    const std::map<std::string, std::pair<double, double>> ranges = {
        {"Hipster", {0.5, 16.0}},
        {"Hotel", {0.5, 9.0}},
        {"Media", {0.25, 7.0}},
        {"Social", {0.05, 1.4}},
    };
    const SystemKind systems[] = {SystemKind::JordNI, SystemKind::Jord,
                                  SystemKind::NightCore};
    constexpr std::size_t kNumSystems = 3;

    // Quick mode (the CI perf gate) runs Hotel only, on a short load
    // series: enough signal for a 10% regression gate.
    std::vector<workloads::Workload> all = workloads::makeAll();
    std::vector<const workloads::Workload *> active;
    for (const workloads::Workload &w : all)
        if (!args.quick || w.name == "Hotel")
            active.push_back(&w);

    // Compute phase: a job graph over all workloads and systems. Each
    // node commits to its own slot; printing happens afterwards, in
    // the fixed serial order, so output is thread-count independent.
    std::vector<std::vector<double>> loads(active.size());
    bench::Slots<double> slo(active.size());
    bench::Slots<SweepResult> sweeps(active.size() * kNumSystems);

    par::JobGraph graph;
    for (std::size_t wi = 0; wi < active.size(); ++wi) {
        const workloads::Workload *w = active[wi];
        auto range = ranges.at(w->name);
        loads[wi] = workloads::loadSeries(range.first, range.second,
                                          args.quick ? 5 : 14);
        par::JobGraph::NodeId slo_node = graph.add(
            [&, w, wi] { slo.set(wi, workloads::measureSloUs(*w, cfg)); });
        for (std::size_t si = 0; si < kNumSystems; ++si) {
            SystemKind system = systems[si];
            par::JobGraph::NodeId node = graph.add([&, w, wi, system,
                                                    si] {
                sweeps.set(wi * kNumSystems + si,
                           workloads::sweepLoad(*w, system, loads[wi],
                                                slo.at(wi), cfg));
            });
            graph.precede(slo_node, node);
        }
    }
    graph.run(pool.get());

    bench::banner("Figure 9: P99 latency vs load (per workload/system)");

    stats::Table summary({"Workload", "SLO (us)", "JordNI (MRPS)",
                          "Jord (MRPS)", "NightCore (MRPS)",
                          "Jord/JordNI", "Jord/NightCore"});
    std::map<std::string, double> json;

    for (std::size_t wi = 0; wi < active.size(); ++wi) {
        const workloads::Workload &w = *active[wi];
        double slo_us = slo.at(wi);
        json["fig9." + w.name + ".slo_us"] = slo_us;

        std::printf("--- %s (SLO = %.1f us) ---\n", w.name.c_str(),
                    slo_us);
        stats::Table series({"System", "Offered (MRPS)",
                             "Achieved (MRPS)", "P99 (us)", "SLO?"});
        std::map<SystemKind, double> under_slo;
        for (std::size_t si = 0; si < kNumSystems; ++si) {
            SystemKind system = systems[si];
            const SweepResult &res = sweeps.at(wi * kNumSystems + si);
            for (const auto &p : res.points) {
                series.addRow({systemName(system),
                               stats::Table::cell(p.offeredMrps, "%.2f"),
                               stats::Table::cell(p.achievedMrps,
                                                  "%.2f"),
                               stats::Table::cell(p.p99Us, "%.1f"),
                               p.meetsSlo ? "yes" : "NO"});
            }
            under_slo[system] = res.throughputUnderSlo;
            std::string prefix =
                "fig9." + w.name + "." + systemName(system);
            json[prefix + ".goodput_mrps"] = res.throughputUnderSlo;
            if (!res.points.empty()) {
                json[prefix + ".min_load_p99_us"] = res.points[0].p99Us;
                json[prefix + ".min_load_mean_us"] =
                    res.points[0].meanUs;
            }
        }
        std::printf("%s\n", series.render().c_str());

        double ni = under_slo[SystemKind::JordNI];
        double jord = under_slo[SystemKind::Jord];
        double ntc = under_slo[SystemKind::NightCore];
        summary.addRow(
            {w.name, stats::Table::cell(slo_us, "%.1f"),
             stats::Table::cell(ni, "%.2f"),
             stats::Table::cell(jord, "%.2f"),
             stats::Table::cell(ntc, "%.2f"),
             stats::Table::cell(ni > 0 ? jord / ni : 0, "%.2f"),
             ntc > 0 ? stats::Table::cell(jord / ntc, "%.2f")
                     : std::string("inf")});
    }

    bench::banner("Figure 9 summary: throughput under SLO");
    std::printf("%s", summary.render().c_str());
    std::printf("\nExpected shape: Jord/JordNI >= ~0.84 (Media ~0.7);\n"
                "Jord/NightCore > 2 on average; NightCore misses the\n"
                "SLO at all loads for Hipster and Media.\n");
    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
