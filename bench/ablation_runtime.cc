/**
 * @file
 * Ablations of the runtime design choices DESIGN.md calls out: the
 * number of orchestrators, the JBSQ bound, and the dispatch-scan
 * memory-level parallelism. Each knob is swept on Hipster at a fixed
 * offered load and at the throughput knee.
 *
 * Host-parallel: --jobs N runs the fourteen knob settings (and the
 * load points inside each sweep) concurrently; each job owns its
 * workers and commits to a per-setting slot, so the tables are
 * byte-identical to --jobs 1.
 */

#include <cstdlib>
#include <iterator>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

/** Throughput under SLO for one worker configuration. */
double
tputUnderSlo(const workloads::Workload &w, const WorkerConfig &wc,
             double slo_us, std::uint64_t requests,
             par::ThreadPool *pool)
{
    workloads::SweepConfig cfg;
    cfg.worker = wc;
    cfg.requestsPerPoint = requests;
    cfg.pool = pool;
    auto loads = workloads::loadSeries(1.0, 14.0, 8);
    return workloads::sweepLoad(w, SystemKind::Jord, loads, slo_us,
                                cfg)
        .throughputUnderSlo;
}

/** Per-setting results, one struct per ablation section. */
struct OrchRow {
    std::uint64_t executors = 0;
    double tput = 0;
    double meanUs = 0;
};

struct JbsqRow {
    double tput = 0;
    double p99Us = 0;
};

struct MlpRow {
    double scanNs = 0;
    double tput = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "ablation_runtime");
    std::uint64_t requests = args.quick ? 1500 : 4000;
    requests = sim::env::getU64("JORD_ABLATION_REQUESTS", requests);
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    workloads::Workload w = workloads::makeHipster();
    workloads::SweepConfig base;
    base.requestsPerPoint = requests;
    base.pool = pool.get();
    double slo_us = workloads::measureSloUs(w, base);

    const unsigned orchs[] = {1, 2, 4, 8};
    const unsigned bounds[] = {1, 2, 3, 6, 12};
    const unsigned mlps[] = {1, 2, 4, 8, 16};

    // Compute phase: every knob setting is an independent job (each
    // nests its sweep's load points on the same pool).
    bench::Slots<OrchRow> orch_rows(std::size(orchs));
    bench::Slots<JbsqRow> jbsq_rows(std::size(bounds));
    bench::Slots<MlpRow> mlp_rows(std::size(mlps));
    par::TaskGroup group(pool.get());
    for (std::size_t i = 0; i < std::size(orchs); ++i)
        group.run([&, i] {
            WorkerConfig wc;
            wc.numOrchestrators = orchs[i];
            OrchRow row;
            row.tput = tputUnderSlo(w, wc, slo_us, requests, pool.get());
            WorkerServer worker(wc, w.registry);
            RunResult res = worker.run(4.0, requests, w.mix);
            row.executors = worker.numExecutors();
            row.meanUs = res.latencyUs.mean();
            orch_rows.set(i, row);
        });
    for (std::size_t i = 0; i < std::size(bounds); ++i)
        group.run([&, i] {
            WorkerConfig wc;
            wc.jbsqBound = bounds[i];
            JbsqRow row;
            row.tput = tputUnderSlo(w, wc, slo_us, requests, pool.get());
            WorkerServer worker(wc, w.registry);
            RunResult res = worker.run(4.0, requests, w.mix);
            row.p99Us = res.latencyUs.p99();
            jbsq_rows.set(i, row);
        });
    for (std::size_t i = 0; i < std::size(mlps); ++i)
        group.run([&, i] {
            WorkerConfig wc;
            wc.dispatchMlp = mlps[i];
            MlpRow row;
            WorkerServer worker(wc, w.registry);
            row.scanNs = worker.measureDispatchScanNs();
            row.tput = tputUnderSlo(w, wc, slo_us, requests, pool.get());
            mlp_rows.set(i, row);
        });
    group.wait();

    bench::banner("Ablation 1: orchestrator count (Hipster)");
    {
        stats::Table table({"Orchestrators", "Executors",
                            "Tput under SLO (MRPS)",
                            "Mean latency @4MRPS (us)"});
        for (std::size_t i = 0; i < std::size(orchs); ++i) {
            const OrchRow &row = orch_rows.at(i);
            table.addRow({stats::Table::cell(std::uint64_t(orchs[i])),
                          stats::Table::cell(row.executors),
                          stats::Table::cell(row.tput, "%.2f"),
                          stats::Table::cell(row.meanUs, "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Too few orchestrators bottleneck dispatch of\n"
                    "nested invocations; too many waste executor "
                    "cores.\n");
    }

    bench::banner("Ablation 2: JBSQ bound");
    {
        stats::Table table({"JBSQ bound", "Tput under SLO (MRPS)",
                            "P99 @4MRPS (us)"});
        for (std::size_t i = 0; i < std::size(bounds); ++i) {
            const JbsqRow &row = jbsq_rows.at(i);
            table.addRow({stats::Table::cell(std::uint64_t(bounds[i])),
                          stats::Table::cell(row.tput, "%.2f"),
                          stats::Table::cell(row.p99Us, "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("A small bound keeps tail latency low (single-\n"
                    "queue-like balance); very small bounds throttle\n"
                    "the orchestrator at high load.\n");
    }

    bench::banner("Ablation 3: dispatch-scan MLP");
    {
        stats::Table table({"Scan MLP", "Dispatch latency (ns)",
                            "Tput under SLO (MRPS)"});
        for (std::size_t i = 0; i < std::size(mlps); ++i) {
            const MlpRow &row = mlp_rows.at(i);
            table.addRow({stats::Table::cell(std::uint64_t(mlps[i])),
                          stats::Table::cell(row.scanNs, "%.0f"),
                          stats::Table::cell(row.tput, "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Queue-length loads overlap in the LSQ; without\n"
                    "MLP the JBSQ scan becomes the §6.3 bottleneck\n"
                    "even on one socket.\n");
    }
    return 0;
}
