/**
 * @file
 * Ablations of the runtime design choices DESIGN.md calls out: the
 * number of orchestrators, the JBSQ bound, and the dispatch-scan
 * memory-level parallelism. Each knob is swept on Hipster at a fixed
 * offered load and at the throughput knee.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

std::uint64_t gRequests = 4000;

/** Throughput under SLO for one worker configuration. */
double
tputUnderSlo(const workloads::Workload &w, const WorkerConfig &wc,
             double slo_us)
{
    workloads::SweepConfig cfg;
    cfg.worker = wc;
    cfg.requestsPerPoint = gRequests;
    auto loads = workloads::loadSeries(1.0, 14.0, 8);
    return workloads::sweepLoad(w, SystemKind::Jord, loads, slo_us,
                                cfg)
        .throughputUnderSlo;
}

} // namespace

int
main()
{
    if (const char *env = std::getenv("JORD_ABLATION_REQUESTS"))
        gRequests = std::strtoull(env, nullptr, 10);

    workloads::Workload w = workloads::makeHipster();
    workloads::SweepConfig base;
    base.requestsPerPoint = gRequests;
    double slo_us = workloads::measureSloUs(w, base);

    bench::banner("Ablation 1: orchestrator count (Hipster)");
    {
        stats::Table table({"Orchestrators", "Executors",
                            "Tput under SLO (MRPS)",
                            "Mean latency @4MRPS (us)"});
        for (unsigned orchs : {1u, 2u, 4u, 8u}) {
            WorkerConfig wc;
            wc.numOrchestrators = orchs;
            double tput = tputUnderSlo(w, wc, slo_us);
            WorkerServer worker(wc, w.registry);
            RunResult res = worker.run(4.0, gRequests, w.mix);
            table.addRow({stats::Table::cell(std::uint64_t(orchs)),
                          stats::Table::cell(std::uint64_t(
                              worker.numExecutors())),
                          stats::Table::cell(tput, "%.2f"),
                          stats::Table::cell(res.latencyUs.mean(),
                                             "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Too few orchestrators bottleneck dispatch of\n"
                    "nested invocations; too many waste executor "
                    "cores.\n");
    }

    bench::banner("Ablation 2: JBSQ bound");
    {
        stats::Table table({"JBSQ bound", "Tput under SLO (MRPS)",
                            "P99 @4MRPS (us)"});
        for (unsigned bound : {1u, 2u, 3u, 6u, 12u}) {
            WorkerConfig wc;
            wc.jbsqBound = bound;
            double tput = tputUnderSlo(w, wc, slo_us);
            WorkerServer worker(wc, w.registry);
            RunResult res = worker.run(4.0, gRequests, w.mix);
            table.addRow({stats::Table::cell(std::uint64_t(bound)),
                          stats::Table::cell(tput, "%.2f"),
                          stats::Table::cell(res.latencyUs.p99(),
                                             "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("A small bound keeps tail latency low (single-\n"
                    "queue-like balance); very small bounds throttle\n"
                    "the orchestrator at high load.\n");
    }

    bench::banner("Ablation 3: dispatch-scan MLP");
    {
        stats::Table table({"Scan MLP", "Dispatch latency (ns)",
                            "Tput under SLO (MRPS)"});
        for (unsigned mlp : {1u, 2u, 4u, 8u, 16u}) {
            WorkerConfig wc;
            wc.dispatchMlp = mlp;
            WorkerServer worker(wc, w.registry);
            double scan_ns = worker.measureDispatchScanNs();
            double tput = tputUnderSlo(w, wc, slo_us);
            table.addRow({stats::Table::cell(std::uint64_t(mlp)),
                          stats::Table::cell(scan_ns, "%.0f"),
                          stats::Table::cell(tput, "%.2f")});
        }
        std::printf("%s\n", table.render().c_str());
        std::printf("Queue-length loads overlap in the LSQ; without\n"
                    "MLP the JBSQ scan becomes the §6.3 bottleneck\n"
                    "even on one socket.\n");
    }
    return 0;
}
