/**
 * @file
 * Figure 13: Jord with a B-tree VMA table (Jord_BT) vs the plain list.
 *
 * The paper (Hotel; other workloads behave similarly) reports Jord_BT
 * at ~60% of Jord's throughput under SLO: the VLB miss penalty grows
 * from ~2 ns to ~20 ns (root-to-leaf node walk instead of one computed
 * VTE access) and PrivLib spends ~167% more time managing VMAs because
 * of B-tree rebalancing — yet Jord_BT still beats NightCore.
 */

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

/** Measure the VLB miss penalty (walk latency, warm L1) on a stack. */
double
missPenaltyNs(bool btree, bool hot)
{
    bench::Stack stack(sim::MachineConfig::isca25Default(), btree);
    // Populate a realistically sized table: thousands of live VMAs
    // spread over several size classes, so the B-tree is several levels
    // deep and its nodes compete for L1 capacity like in a loaded
    // worker. The plain list stays a one-block computed access.
    constexpr unsigned kVmas = 8000;
    std::vector<sim::Addr> vmas;
    vmas.reserve(kVmas);
    for (unsigned i = 0; i < kVmas; ++i) {
        std::uint64_t len = 256ull << (i % 6);
        privlib::PrivResult vma =
            stack.privlib->mmap(0, len, uat::Perm::rw());
        if (!vma.ok)
            sim::fatal("fig13: mmap failed");
        vmas.push_back(vma.value);
    }

    sim::Rng rng(7);
    std::uint64_t total = 0;
    constexpr unsigned kIters = 4000;
    // "hot" measures the common case the paper quotes (a small working
    // set of recently used VMAs whose table blocks stay in the L1);
    // the spread pattern walks the whole table.
    std::uint64_t span = hot ? 16 : vmas.size();
    for (unsigned i = 0; i < kIters + 64; ++i) {
        sim::Addr va = vmas[rng.uniformInt(span)];
        stack.uat->dvlb(0).invalidateAll();
        uat::UatAccess acc =
            stack.uat->dataAccess(0, va, uat::Perm::r());
        if (!acc.ok())
            sim::fatal("fig13: walk fault");
        if (i >= 64)
            total += acc.latency;
    }
    return sim::cyclesToNs(static_cast<double>(total) / kIters,
                           stack.machine.freqGhz);
}

} // namespace

int
main()
{
    std::uint64_t requests = 10000;
    if (const char *env = std::getenv("JORD_FIG13_REQUESTS"))
        requests = std::strtoull(env, nullptr, 10);

    bench::banner("Figure 13: plain-list vs B-tree VMA table (Hotel)");

    std::printf("VLB miss penalty (hot working set):   plain list "
                "%.1f ns, B-tree %.1f ns\n",
                missPenaltyNs(false, true), missPenaltyNs(true, true));
    std::printf("VLB miss penalty (spread over table): plain list "
                "%.1f ns, B-tree %.1f ns\n",
                missPenaltyNs(false, false), missPenaltyNs(true, false));
    std::printf("(paper: 2 ns common case vs 20 ns with the B-tree)\n\n");

    workloads::Workload w = workloads::makeHotel();
    workloads::SweepConfig cfg;
    cfg.requestsPerPoint = requests;
    double slo_us = workloads::measureSloUs(w, cfg);
    std::vector<double> loads = workloads::loadSeries(0.5, 9.0, 12);

    stats::Table table({"System", "Tput under SLO (MRPS)",
                        "Mean service (us)",
                        "VMA mgmt (ns/invocation)"});
    double tput[2] = {0, 0};
    double service[2] = {0, 0};
    double mgmt[2] = {0, 0};
    const SystemKind systems[] = {SystemKind::Jord, SystemKind::JordBT};
    for (int i = 0; i < 2; ++i) {
        workloads::SweepResult sweep =
            workloads::sweepLoad(w, systems[i], loads, slo_us, cfg);
        tput[i] = sweep.throughputUnderSlo;
        // Service time + PrivLib accounting at a common moderate load.
        WorkerConfig wc = cfg.worker;
        wc.system = systems[i];
        WorkerServer worker(wc, w.registry);
        worker.privlib().resetStats();
        RunResult res = worker.run(2.0, requests, w.mix);
        service[i] = res.serviceUs.mean();
        mgmt[i] = sim::cyclesToNs(
                      static_cast<double>(
                          worker.privlib().vmaManagementCycles()),
                      wc.machine.freqGhz) /
                  static_cast<double>(res.invocations);
        table.addRow({systemName(systems[i]),
                      stats::Table::cell(tput[i], "%.2f"),
                      stats::Table::cell(service[i], "%.2f"),
                      stats::Table::cell(mgmt[i], "%.1f")});
    }
    std::printf("%s\n", table.render().c_str());
    if (tput[0] > 0 && service[0] > 0 && mgmt[0] > 0) {
        std::printf("Jord_BT / Jord throughput: %.2f (paper ~0.6)\n",
                    tput[1] / tput[0]);
        std::printf("Service-time increase: +%.0f%% (paper +43%%)\n",
                    100.0 * (service[1] / service[0] - 1.0));
        std::printf("PrivLib VMA-management increase: +%.0f%% "
                    "(paper +167%%)\n",
                    100.0 * (mgmt[1] / mgmt[0] - 1.0));
    }
    return 0;
}
