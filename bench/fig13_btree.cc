/**
 * @file
 * Figure 13: Jord with a B-tree VMA table (Jord_BT) vs the plain list.
 *
 * The paper (Hotel; other workloads behave similarly) reports Jord_BT
 * at ~60% of Jord's throughput under SLO: the VLB miss penalty grows
 * from ~2 ns to ~20 ns (root-to-leaf node walk instead of one computed
 * VTE access) and PrivLib spends ~167% more time managing VMAs because
 * of B-tree rebalancing — yet Jord_BT still beats NightCore.
 */

#include <cstdlib>

#include "sim/logging.hh"
#include "sim/rng.hh"

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/sweep.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

/** Measure the VLB miss penalty (walk latency, warm L1) on a stack. */
double
missPenaltyNs(bool btree, bool hot)
{
    bench::Stack stack(sim::MachineConfig::isca25Default(), btree);
    // Populate a realistically sized table: thousands of live VMAs
    // spread over several size classes, so the B-tree is several levels
    // deep and its nodes compete for L1 capacity like in a loaded
    // worker. The plain list stays a one-block computed access.
    constexpr unsigned kVmas = 8000;
    std::vector<sim::Addr> vmas;
    vmas.reserve(kVmas);
    for (unsigned i = 0; i < kVmas; ++i) {
        std::uint64_t len = 256ull << (i % 6);
        privlib::PrivResult vma =
            stack.privlib->mmap(0, len, uat::Perm::rw());
        if (!vma.ok)
            sim::fatal("fig13: mmap failed");
        vmas.push_back(vma.value);
    }

    sim::Rng rng(7);
    std::uint64_t total = 0;
    constexpr unsigned kIters = 4000;
    // "hot" measures the common case the paper quotes (a small working
    // set of recently used VMAs whose table blocks stay in the L1);
    // the spread pattern walks the whole table.
    std::uint64_t span = hot ? 16 : vmas.size();
    for (unsigned i = 0; i < kIters + 64; ++i) {
        sim::Addr va = vmas[rng.uniformInt(span)];
        stack.uat->dvlb(0).invalidateAll();
        uat::UatAccess acc =
            stack.uat->dataAccess(0, va, uat::Perm::r());
        if (!acc.ok())
            sim::fatal("fig13: walk fault");
        if (i >= 64)
            total += acc.latency;
    }
    return sim::cyclesToNs(static_cast<double>(total) / kIters,
                           stack.machine.freqGhz);
}

} // namespace

/** One system's table row, committed by its job. */
struct SystemRow {
    double tput = 0;
    double service = 0;
    double mgmt = 0;
};

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fig13");
    std::uint64_t requests = args.quick ? 2500 : 10000;
    requests = sim::env::getU64("JORD_FIG13_REQUESTS", requests);
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    workloads::Workload w = workloads::makeHotel();
    workloads::SweepConfig cfg;
    cfg.requestsPerPoint = requests;
    cfg.pool = pool.get();
    std::vector<double> loads = workloads::loadSeries(0.5, 9.0, 12);
    const SystemKind systems[] = {SystemKind::Jord, SystemKind::JordBT};

    // Compute phase: the four miss-penalty microbenchmarks, the SLO
    // measurement, and (SLO-dependent) one job per system; results
    // commit to slots and print afterwards in the fixed order.
    bench::Slots<double> penalty(4); // (btree, hot) pairs, see below
    const std::pair<bool, bool> penalty_cfgs[] = {
        {false, true}, {true, true}, {false, false}, {true, false}};
    bench::Slots<double> slo(1);
    bench::Slots<SystemRow> rows(2);
    par::JobGraph graph;
    for (std::size_t i = 0; i < 4; ++i)
        graph.add([&, i] {
            penalty.set(i, missPenaltyNs(penalty_cfgs[i].first,
                                         penalty_cfgs[i].second));
        });
    par::JobGraph::NodeId slo_node = graph.add(
        [&] { slo.set(0, workloads::measureSloUs(w, cfg)); });
    for (std::size_t i = 0; i < 2; ++i) {
        par::JobGraph::NodeId node = graph.add([&, i] {
            SystemRow row;
            workloads::SweepResult sweep = workloads::sweepLoad(
                w, systems[i], loads, slo.at(0), cfg);
            row.tput = sweep.throughputUnderSlo;
            // Service time + PrivLib accounting at a common moderate
            // load.
            WorkerConfig wc = cfg.worker;
            wc.system = systems[i];
            WorkerServer worker(wc, w.registry);
            worker.privlib().resetStats();
            RunResult res = worker.run(2.0, requests, w.mix);
            row.service = res.serviceUs.mean();
            row.mgmt = sim::cyclesToNs(
                           static_cast<double>(
                               worker.privlib().vmaManagementCycles()),
                           wc.machine.freqGhz) /
                       static_cast<double>(res.invocations);
            rows.set(i, row);
        });
        graph.precede(slo_node, node);
    }
    graph.run(pool.get());

    bench::banner("Figure 13: plain-list vs B-tree VMA table (Hotel)");

    std::printf("VLB miss penalty (hot working set):   plain list "
                "%.1f ns, B-tree %.1f ns\n",
                penalty.at(0), penalty.at(1));
    std::printf("VLB miss penalty (spread over table): plain list "
                "%.1f ns, B-tree %.1f ns\n",
                penalty.at(2), penalty.at(3));
    std::printf("(paper: 2 ns common case vs 20 ns with the B-tree)\n\n");

    stats::Table table({"System", "Tput under SLO (MRPS)",
                        "Mean service (us)",
                        "VMA mgmt (ns/invocation)"});
    double tput[2], service[2], mgmt[2];
    for (int i = 0; i < 2; ++i) {
        tput[i] = rows.at(i).tput;
        service[i] = rows.at(i).service;
        mgmt[i] = rows.at(i).mgmt;
        table.addRow({systemName(systems[i]),
                      stats::Table::cell(tput[i], "%.2f"),
                      stats::Table::cell(service[i], "%.2f"),
                      stats::Table::cell(mgmt[i], "%.1f")});
    }
    std::printf("%s\n", table.render().c_str());
    if (tput[0] > 0 && service[0] > 0 && mgmt[0] > 0) {
        std::printf("Jord_BT / Jord throughput: %.2f (paper ~0.6)\n",
                    tput[1] / tput[0]);
        std::printf("Service-time increase: +%.0f%% (paper +43%%)\n",
                    100.0 * (service[1] / service[0] - 1.0));
        std::printf("PrivLib VMA-management increase: +%.0f%% "
                    "(paper +167%%)\n",
                    100.0 * (mgmt[1] / mgmt[0] - 1.0));
    }
    return 0;
}
