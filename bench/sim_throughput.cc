/**
 * @file
 * Events-per-second throughput of the discrete-event core (issue 10).
 *
 * Three sections, each reporting dispatched events, wall-clock time
 * and events/second:
 *
 *   - worker:  a full WorkerServer run on fig14's largest machine
 *     (256 cores, 2 sockets, per-socket orchestrators) — the serial
 *     EventQueue with its calendar sub-queues on the hottest
 *     single-machine configuration the paper evaluates;
 *   - cluster: a fleet run (8 servers, constant traffic at 70% of
 *     calibrated capacity) — the fleet DES plus per-server domains;
 *   - domains: the epoch-parallel DomainEngine on a synthetic
 *     256-tile nested-ccall workload, K=1 serial vs K=4 over a
 *     4-thread pool. The bench cross-checks that both runs produce
 *     bitwise-identical tile state, and the reported speedup is what
 *     the parallel-determinism CI job gates at 2x.
 *
 * Unlike every other bench, the headline metric here is *host*
 * throughput: wall-clock is the measurement, never simulation input,
 * which is why the three timed regions carry D1 suppressions. The
 * events_per_sec keys in BENCH_sim_throughput.json are direction-aware
 * in jordprof (higher is better), so the perf-gate only trips when the
 * event core gets slower.
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "bench/common.hh"
#include "cluster/cluster.hh"
#include "par/domains.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;

namespace {

/** The host clock this bench measures throughput against. */
// detlint: allow(D1, "wall-clock is this bench's measurement (the events/s denominator); it never feeds the simulation")
using WallClock = std::chrono::steady_clock;

/** Host seconds elapsed since @p since (throughput denominator). */
double
wallSince(WallClock::time_point since)
{
    return std::chrono::duration<double>(WallClock::now() - since)
        .count();
}

/** @return the current host clock (start of a timed region). */
WallClock::time_point
wallNow()
{
    return WallClock::now();
}

/** One section's row: dispatched events over measured wall time. */
struct Throughput {
    std::uint64_t events = 0;
    double wallSec = 0;

    double
    eventsPerSec() const
    {
        return wallSec > 0 ? static_cast<double>(events) / wallSec : 0;
    }
};

/**
 * The domains section's workload: 256 tiles each owning a running
 * hash, events doing a fixed chunk of hash work then fanning out a
 * same-tile child at a short delay and a cross-tile child at a delay
 * no shorter than the engine lookahead (so the conservative contract
 * holds under any tile partition). Per-tile state makes the outcome
 * bitwise comparable across domain counts.
 */
struct TileWorkload {
    static constexpr sim::Tick kLookahead = 12;
    /** Hash iterations per event: enough host work per event that the
     * epoch barrier cost is amortized, small enough that K=1 stays in
     * bench-scale wall time. */
    static constexpr unsigned kWorkIters = 600;

    unsigned numTiles;
    unsigned domains;
    std::vector<std::uint64_t> hash;

    TileWorkload(unsigned tiles, unsigned k)
        : numTiles(tiles), domains(k), hash(tiles, 0x9e3779b9u)
    {
    }

    unsigned
    domainOf(unsigned tile) const
    {
        return tile * domains / numTiles;
    }

    void
    event(par::DomainEngine::Context &ctx, unsigned tile,
          unsigned depth)
    {
        std::uint64_t &h = hash[tile];
        h ^= ctx.now() * 0x100000001b3ull;
        for (unsigned i = 0; i < kWorkIters; ++i)
            h = (h ^ (h >> 33)) * 1099511628211ull;
        if (depth == 0)
            return;
        ctx.scheduleAfter(
            ctx.domain(), 1 + (h % 7),
            [this, tile, depth](par::DomainEngine::Context &c) {
                event(c, tile, depth - 1);
            });
        unsigned target = static_cast<unsigned>(h >> 8) % numTiles;
        ctx.scheduleAfter(
            domainOf(target), kLookahead + (h % 5),
            [this, target, depth](par::DomainEngine::Context &c) {
                event(c, target, depth - 1);
            });
    }
};

/** Run the tile workload under K domains; returns throughput and the
 * XOR-folded tile state for the cross-K identity check. */
Throughput
runTiles(unsigned domains, unsigned threads, unsigned depth,
         std::uint64_t &digest_out)
{
    constexpr unsigned kTiles = 256;
    TileWorkload wl(kTiles, domains);
    par::DomainEngine::Config cfg;
    cfg.domains = domains;
    cfg.lookahead = TileWorkload::kLookahead;
    par::ThreadPool pool(threads);
    par::DomainEngine eng(cfg, threads > 1 ? &pool : nullptr);
    // Seed every tile within one lookahead window so all domains are
    // busy from the first epoch on.
    for (unsigned t = 0; t < kTiles; ++t) {
        unsigned tile = t;
        eng.schedule(wl.domainOf(tile), 5 + (tile % 11),
                     [&wl, tile, depth](par::DomainEngine::Context &c) {
                         wl.event(c, tile, depth);
                     });
    }
    auto t0 = wallNow();
    eng.run();
    Throughput tp;
    tp.wallSec = wallSince(t0);
    tp.events = eng.numDispatched();
    digest_out = 0;
    for (unsigned t = 0; t < kTiles; ++t)
        digest_out ^= wl.hash[t] * (t + 1);
    return tp;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "sim_throughput");
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    // --- worker: fig14's largest machine, serial event core --------
    workloads::Workload hipster = workloads::makeHipster();
    runtime::WorkerConfig wcfg;
    wcfg.machine = sim::MachineConfig::scaled(256, 2);
    wcfg.numOrchestrators = 32;
    std::uint64_t requests = args.quick ? 3000 : 12000;
    requests = sim::env::getU64("JORD_SIM_THROUGHPUT_REQUESTS", requests);
    runtime::WorkerServer worker(wcfg, hipster.registry);
    auto t0 = wallNow();
    worker.run(0.03 * 256, requests, hipster.mix);
    Throughput worker_tp;
    worker_tp.wallSec = wallSince(t0);
    worker_tp.events = worker.eventQueue().numDispatched();

    // --- cluster: fleet DES at 70% of calibrated capacity ----------
    workloads::Workload hotel = workloads::makeHotel();
    cluster::ClusterConfig ccfg;
    ccfg.calibration.requests = args.quick ? 3000 : 12000;
    ccfg.traffic.durationUs = args.quick ? 20000.0 : 60000.0;
    ccfg.serverQueueCap = 256;
    ccfg.numServers = 8;
    cluster::ServerModel model = cluster::calibrateServer(
        hotel, ccfg.worker, ccfg.calibration, pool.get());
    ccfg.traffic.mrps = 0.7 * 8 * model.capacityMrps;
    cluster::ClusterSim fleet(ccfg, model);
    t0 = wallNow();
    fleet.run();
    Throughput cluster_tp;
    cluster_tp.wallSec = wallSince(t0);
    cluster_tp.events = fleet.eventQueue().numDispatched();

    // --- domains: epoch-parallel engine, K=1 vs K=4 ----------------
    unsigned depth = args.quick ? 6 : 8;
    depth = static_cast<unsigned>(
        sim::env::getU64("JORD_SIM_THROUGHPUT_DEPTH", depth));
    std::uint64_t digest_k1 = 0, digest_k4 = 0;
    Throughput k1 = runTiles(1, 1, depth, digest_k1);
    Throughput k4 = runTiles(4, 4, depth, digest_k4);
    if (digest_k1 != digest_k4)
        sim::fatal("domain engine identity violation: K=1 digest "
                   "%016llx != K=4 digest %016llx",
                   static_cast<unsigned long long>(digest_k1),
                   static_cast<unsigned long long>(digest_k4));
    if (k1.events != k4.events)
        sim::fatal("domain engine dispatched %llu events at K=1 but "
                   "%llu at K=4",
                   static_cast<unsigned long long>(k1.events),
                   static_cast<unsigned long long>(k4.events));
    double speedup =
        k4.wallSec > 0 ? k1.wallSec / k4.wallSec : 0;

    bench::banner("Event-core throughput (events/second)");

    stats::Table table(
        {"Section", "Events", "Wall (s)", "Events/s"});
    auto add_row = [&table](const char *name, const Throughput &tp) {
        table.addRow({name,
                      stats::Table::cell(
                          static_cast<double>(tp.events), "%.0f"),
                      stats::Table::cell(tp.wallSec, "%.3f"),
                      stats::Table::cell(tp.eventsPerSec(), "%.0f")});
    };
    add_row("worker (256-core, 2-socket)", worker_tp);
    add_row("cluster (8 servers)", cluster_tp);
    add_row("domains K=1 (serial)", k1);
    add_row("domains K=4 (4 threads)", k4);
    std::printf("%s", table.render().c_str());
    std::printf("\ndomains: K=4 speedup over K=1 is %.2fx "
                "(identical tile state, %llu events each)\n",
                speedup, static_cast<unsigned long long>(k1.events));

    std::map<std::string, double> json;
    json["sim_throughput.worker.events_per_sec"] =
        worker_tp.eventsPerSec();
    json["counter.sim_throughput.worker.events"] =
        static_cast<double>(worker_tp.events);
    json["sim_throughput.cluster.events_per_sec"] =
        cluster_tp.eventsPerSec();
    json["counter.sim_throughput.cluster.events"] =
        static_cast<double>(cluster_tp.events);
    json["sim_throughput.domains.k1.events_per_sec"] =
        k1.eventsPerSec();
    json["sim_throughput.domains.k4.events_per_sec"] =
        k4.eventsPerSec();
    // Host-dependent ratio: informational (not a jordprof gate); the
    // parallel-determinism CI job asserts its own 2x bound on it.
    json["sim_throughput.domains.speedup"] = speedup;
    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
