/**
 * @file
 * fig_cluster: fleet-scale simulation — goodput, P99 and cost across
 * fleet size x traffic shape, LB-policy comparison, and an
 * autoscaling showcase.
 *
 * Extends the paper's single-server evaluation (§5) to the deployment
 * it targets — "hundreds of worker servers" behind a front-end — by
 * sweeping calibrated fleets (src/cluster) over open-loop traffic
 * shapes. Three sections:
 *
 *  1. fleet grid: {4, 8, 16} servers x {constant, diurnal, flash} at
 *     0.7x fleet capacity — goodput (MRPS under SLO), fleet P99 and
 *     cost in server-seconds;
 *  2. LB policies at 0.9x capacity on 8 servers — power-of-two-choices
 *     (random2) must strictly beat random-1 on P99 (asserted in
 *     tests/test_cluster.cc);
 *  3. autoscaling on a flash crowd, 2..8 servers — cost saved vs a
 *     static max-size fleet, with the scale-event timeline.
 *
 * Host-parallel: calibration runs and fleet points fan across --jobs
 * threads; each fleet point is its own serial DES, so output is
 * byte-identical to --jobs 1 (the CI parallel-determinism gate).
 *
 * Environment knobs: JORD_FIG_CLUSTER_REQUESTS (default 12000, quick
 * 3000) trades calibration time for quantile fidelity.
 */

#include <cstdlib>
#include <map>

#include "bench/common.hh"
#include "cluster/cluster.hh"
#include "par/par.hh"
#include "stats/table.hh"

using namespace jord;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterSim;
using cluster::LbPolicy;
using cluster::TrafficShape;

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fig_cluster");
    std::unique_ptr<par::ThreadPool> pool = args.makePool();

    workloads::Workload hotel = workloads::makeHotel();

    ClusterConfig base;
    base.calibration.requests = args.quick ? 3000 : 12000;
    base.calibration.requests = sim::env::getU64("JORD_FIG_CLUSTER_REQUESTS", base.calibration.requests);
    base.traffic.durationUs = args.quick ? 20000.0 : 60000.0;
    base.serverQueueCap = 256;

    // One calibration feeds every fleet point: the model is a pure
    // function of (workload, WorkerConfig), shared by all sections.
    cluster::ServerModel model = cluster::calibrateServer(
        hotel, base.worker, base.calibration, pool.get());
    std::printf("calibrated server: %.3f MRPS capacity, %.1f us mean "
                "latency, concurrency %u (%u executors)\n",
                model.capacityMrps, model.meanLatencyUs,
                model.concurrency, model.numExecutors);

    // Every section's points are independent fleet runs; build the
    // whole list and fan it once.
    const unsigned fleets[] = {4, 8, 16};
    const TrafficShape shapes[] = {TrafficShape::Constant,
                                   TrafficShape::Diurnal,
                                   TrafficShape::Flash};
    const LbPolicy policies[] = {LbPolicy::Random, LbPolicy::Random2,
                                 LbPolicy::Jsq, LbPolicy::RoundRobin,
                                 LbPolicy::Affinity};

    std::vector<ClusterConfig> points;
    for (TrafficShape shape : shapes) {
        for (unsigned n : fleets) {
            ClusterConfig cfg = base;
            cfg.numServers = n;
            cfg.traffic.shape = shape;
            cfg.traffic.mrps = 0.7 * n * model.capacityMrps;
            points.push_back(cfg);
        }
    }
    std::size_t lb_first = points.size();
    for (LbPolicy policy : policies) {
        ClusterConfig cfg = base;
        cfg.numServers = 8;
        cfg.lb = policy;
        cfg.traffic.shape = TrafficShape::Constant;
        cfg.traffic.mrps = 0.9 * 8 * model.capacityMrps;
        points.push_back(cfg);
    }
    std::size_t scale_first = points.size();
    for (bool autoscale : {false, true}) {
        ClusterConfig cfg = base;
        cfg.numServers = 8;
        cfg.traffic.shape = TrafficShape::Flash;
        cfg.traffic.mrps = 0.5 * 8 * model.capacityMrps;
        cfg.traffic.flashFactor = 3.0;
        if (autoscale) {
            cfg.numServers = 2;
            cfg.autoscale.enabled = true;
            cfg.autoscale.minServers = 2;
            cfg.autoscale.maxServers = 8;
        }
        points.push_back(cfg);
    }

    std::vector<ClusterResult> results =
        par::orderedMap<ClusterResult>(
            pool.get(), points.size(), [&](std::size_t i) {
                ClusterSim sim(points[i], model);
                return sim.run();
            });

    std::map<std::string, double> json;

    bench::banner("fig_cluster: fleet size x traffic shape "
                  "(0.7x capacity, random2)");
    stats::Table grid({"Traffic", "Servers", "Offered (MRPS)",
                       "Goodput (MRPS)", "P99 (us)", "Cost (srv-s)",
                       "Shed"});
    std::size_t idx = 0;
    for (TrafficShape shape : shapes) {
        for (unsigned n : fleets) {
            const ClusterResult &res = results[idx++];
            grid.addRow({cluster::trafficShapeName(shape),
                         stats::Table::cell(std::uint64_t{n}),
                         stats::Table::cell(res.offeredMrps, "%.2f"),
                         stats::Table::cell(res.goodputMrps, "%.2f"),
                         stats::Table::cell(res.p99Us, "%.1f"),
                         stats::Table::cell(res.costServerSeconds,
                                            "%.4f"),
                         stats::Table::cell(res.shed)});
            std::string prefix =
                std::string("fig_cluster.") +
                cluster::trafficShapeName(shape) + ".n" +
                std::to_string(n);
            json[prefix + ".goodput_mrps"] = res.goodputMrps;
            json[prefix + ".p99_us"] = res.p99Us;
            json[prefix + ".cost_server_s"] = res.costServerSeconds;
        }
    }
    std::printf("%s", grid.render().c_str());

    bench::banner("fig_cluster: LB policy comparison "
                  "(8 servers, 0.9x capacity, constant)");
    stats::Table lb({"Policy", "Goodput (MRPS)", "P99 (us)", "Shed"});
    for (std::size_t pi = 0; pi < std::size(policies); ++pi) {
        const ClusterResult &res = results[lb_first + pi];
        const char *name = cluster::lbPolicyName(policies[pi]);
        lb.addRow({name, stats::Table::cell(res.goodputMrps, "%.2f"),
                   stats::Table::cell(res.p99Us, "%.1f"),
                   stats::Table::cell(res.shed)});
        json[std::string("fig_cluster.lb.") + name + ".p99_us"] =
            res.p99Us;
        json[std::string("fig_cluster.lb.") + name +
             ".goodput_mrps"] = res.goodputMrps;
    }
    std::printf("%s", lb.render().c_str());
    std::printf("\nExpected shape: random2 strictly below random on "
                "P99 (power of two choices); jsq at or below "
                "random2.\n");

    bench::banner("fig_cluster: autoscaling on a flash crowd "
                  "(0.5x capacity base, 3x burst)");
    const ClusterResult &fixed = results[scale_first];
    const ClusterResult &scaled = results[scale_first + 1];
    stats::Table autos({"Fleet", "Goodput (MRPS)", "P99 (us)",
                        "Cost (srv-s)", "Scale events",
                        "Final servers"});
    autos.addRow({"static 8", stats::Table::cell(fixed.goodputMrps,
                                                 "%.2f"),
                  stats::Table::cell(fixed.p99Us, "%.1f"),
                  stats::Table::cell(fixed.costServerSeconds, "%.4f"),
                  stats::Table::cell(std::uint64_t{0}),
                  stats::Table::cell(std::uint64_t{8})});
    autos.addRow(
        {"autoscale 2..8",
         stats::Table::cell(scaled.goodputMrps, "%.2f"),
         stats::Table::cell(scaled.p99Us, "%.1f"),
         stats::Table::cell(scaled.costServerSeconds, "%.4f"),
         stats::Table::cell(
             std::uint64_t{scaled.scaleEvents.size() - 1}),
         stats::Table::cell(std::uint64_t{scaled.finalActiveServers})});
    std::printf("%s", autos.render().c_str());
    std::printf("\nScale timeline:");
    for (const cluster::ScaleEvent &event : scaled.scaleEvents)
        std::printf(" %u@%.0fus", event.activeServers, event.atUs);
    std::printf("\n");
    json["fig_cluster.autoscale.cost_server_s"] =
        scaled.costServerSeconds;
    json["fig_cluster.autoscale.p99_us"] = scaled.p99Us;
    json["fig_cluster.autoscale.scale_events"] =
        static_cast<double>(scaled.scaleEvents.size() - 1);
    json["fig_cluster.static.cost_server_s"] =
        fixed.costServerSeconds;

    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
