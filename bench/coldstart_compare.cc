/**
 * @file
 * Cold-start comparison (§2.1): what happens when a function's
 * concurrency suddenly doubles?
 *
 * NightCore must provision new worker processes (0.8 ms each, §6.2);
 * Jord's "cold start" is a PD + stack/heap allocation in tens of
 * nanoseconds, so a load spike passes through without a latency cliff.
 * Both systems are driven from a cold start (no warmup window) with a
 * single pre-provisioned worker per function for NightCore.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

int
main()
{
    std::uint64_t requests = 6000;
    if (const char *env = std::getenv("JORD_COLDSTART_REQUESTS"))
        requests = std::strtoull(env, nullptr, 10);

    bench::banner("Cold start: first-burst latency, Jord vs NightCore");

    workloads::Workload w = workloads::makeHotel();

    stats::Table table({"System", "Provisioned", "P50 (us)", "P99 (us)",
                        "Max (us)"});
    struct Cfg {
        SystemKind system;
        unsigned provisioned;
    };
    const Cfg cfgs[] = {
        {SystemKind::Jord, 0},
        {SystemKind::NightCore, 1},
        {SystemKind::NightCore, 64},
    };
    for (const Cfg &c : cfgs) {
        WorkerConfig wc;
        wc.system = c.system;
        if (c.provisioned)
            wc.provisioning.preProvisioned = c.provisioned;
        WorkerServer worker(wc, w.registry);
        // No warmup exclusion: the cold start is the measurement.
        RunResult res = worker.run(2.0, requests, w.mix, 0.0);
        table.addRow(
            {systemName(c.system),
             c.system == SystemKind::Jord
                 ? std::string("n/a")
                 : stats::Table::cell(std::uint64_t(c.provisioned)),
             stats::Table::cell(res.latencyUs.p50(), "%.1f"),
             stats::Table::cell(res.latencyUs.p99(), "%.1f"),
             stats::Table::cell(res.latencyUs.max(), "%.1f")});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Under-provisioned NightCore pays ~0.8 ms per worker it\n"
                "must spin up during the burst; Jord allocates a PD and\n"
                "stack/heap per invocation (~tens of ns) and shows no\n"
                "cold-start cliff (§2.1, §6.2).\n");
    return 0;
}
