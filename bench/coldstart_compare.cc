/**
 * @file
 * Cold-start comparison (§2.1): what happens when a function's
 * concurrency suddenly doubles?
 *
 * NightCore must provision new worker processes (0.8 ms each, §6.2);
 * Jord's "cold start" is a PD + stack/heap allocation in tens of
 * nanoseconds, so a load spike passes through without a latency cliff.
 * Both systems are driven from a cold start (no warmup window) with a
 * single pre-provisioned worker per function for NightCore.
 */

#include <cstdlib>
#include <iterator>

#include "bench/common.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "coldstart_compare");
    std::uint64_t requests = args.quick ? 2000 : 6000;
    requests = sim::env::getU64("JORD_COLDSTART_REQUESTS", requests);

    bench::banner("Cold start: first-burst latency, Jord vs NightCore");

    workloads::Workload w = workloads::makeHotel();

    stats::Table table({"System", "Provisioned", "P50 (us)", "P99 (us)",
                        "Max (us)"});
    struct Cfg {
        SystemKind system;
        unsigned provisioned;
    };
    const Cfg cfgs[] = {
        {SystemKind::Jord, 0},
        {SystemKind::NightCore, 1},
        {SystemKind::NightCore, 64},
    };
    // One host-parallel job per configuration; each owns its worker
    // and the table renders afterwards in the fixed order.
    std::unique_ptr<par::ThreadPool> pool = args.makePool();
    std::vector<RunResult> results = par::orderedMap<RunResult>(
        pool.get(), std::size(cfgs), [&](std::size_t i) {
            WorkerConfig wc;
            wc.system = cfgs[i].system;
            if (cfgs[i].provisioned)
                wc.provisioning.preProvisioned = cfgs[i].provisioned;
            WorkerServer worker(wc, w.registry);
            // No warmup exclusion: the cold start is the measurement.
            return worker.run(2.0, requests, w.mix, 0.0);
        });
    for (std::size_t i = 0; i < std::size(cfgs); ++i) {
        const Cfg &c = cfgs[i];
        const RunResult &res = results[i];
        table.addRow(
            {systemName(c.system),
             c.system == SystemKind::Jord
                 ? std::string("n/a")
                 : stats::Table::cell(std::uint64_t(c.provisioned)),
             stats::Table::cell(res.latencyUs.p50(), "%.1f"),
             stats::Table::cell(res.latencyUs.p99(), "%.1f"),
             stats::Table::cell(res.latencyUs.max(), "%.1f")});
    }
    std::printf("%s\n", table.render().c_str());
    std::printf("Under-provisioned NightCore pays ~0.8 ms per worker it\n"
                "must spin up during the burst; Jord allocates a PD and\n"
                "stack/heap per invocation (~tens of ns) and shows no\n"
                "cold-start cliff (§2.1, §6.2).\n");
    return 0;
}
