/**
 * @file
 * Shared helpers for the benchmark harnesses: a standalone Jord stack
 * (machine + coherence + UAT + PrivLib) for microbenchmarks, and output
 * formatting conventions.
 */

#ifndef JORD_BENCH_COMMON_HH
#define JORD_BENCH_COMMON_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "os/kernel.hh"
#include "par/par.hh"
#include "privlib/privlib.hh"
#include "prof/profile_json.hh"
#include "sim/env.hh"
#include "sim/logging.hh"
#include "stats/sampler.hh"
#include "uat/btree_table.hh"
#include "uat/uat_system.hh"

namespace jord::bench {

/** Default untimed iterations to warm caches and free lists. */
inline constexpr unsigned kWarmupIters = 32;

/**
 * Warm measurement loop: calls @p op `warmup + iters` times, passing a
 * `measured` flag that turns true once the warmup is done. The body
 * records into caller-owned stats::Samplers only when the flag is set,
 * so multi-op loops (mmap/munmap pairs, triples) share one shape.
 */
template <typename Op>
void
warmIters(unsigned iters, unsigned warmup, Op &&op)
{
    for (unsigned i = 0; i < warmup + iters; ++i)
        op(i >= warmup);
}

/**
 * Measure one operation warm: @p op returns its per-call cycle cost;
 * the returned sampler holds the `iters` post-warmup samples.
 */
template <typename Op>
stats::Sampler
sampleOp(unsigned iters, Op &&op, unsigned warmup = kWarmupIters)
{
    stats::Sampler sampler;
    warmIters(iters, warmup, [&](bool measured) {
        sim::Cycles cost = op();
        if (measured)
            sampler.record(static_cast<double>(cost));
    });
    return sampler;
}

/** Mean of a cycles-valued sampler, converted to nanoseconds. */
inline double
meanNs(const stats::Sampler &sampler,
       double ghz = sim::kDefaultFreqGhz)
{
    return sim::cyclesToNs(sampler.mean(), ghz);
}

/** A self-contained Jord hardware/software stack on one machine. */
struct Stack {
    sim::MachineConfig machine;
    std::unique_ptr<noc::Mesh> mesh;
    std::unique_ptr<mem::CoherenceEngine> coherence;
    std::unique_ptr<uat::VmaTableBase> table;
    std::unique_ptr<uat::UatSystem> uat;
    std::unique_ptr<os::Kernel> kernel;
    std::unique_ptr<privlib::PrivLib> privlib;

    explicit Stack(sim::MachineConfig cfg, bool btree = false)
        : machine(cfg)
    {
        mesh = std::make_unique<noc::Mesh>(machine);
        coherence = std::make_unique<mem::CoherenceEngine>(machine,
                                                           *mesh);
        uat::VaEncoding encoding;
        if (btree)
            table = std::make_unique<uat::BTreeVmaTable>(encoding);
        else
            table = std::make_unique<uat::PlainListVmaTable>(encoding);
        uat = std::make_unique<uat::UatSystem>(machine, *coherence,
                                               *table);
        kernel = std::make_unique<os::Kernel>(machine);
        privlib = std::make_unique<privlib::PrivLib>(
            machine, *coherence, *uat, *table, *kernel);
    }
};

/** Print a section banner matching the paper's table/figure naming. */
inline void
banner(const std::string &title)
{
    std::printf("\n=== %s ===\n\n", title.c_str());
}

/**
 * Per-point result slots for host-parallel benches. Accumulating into
 * a shared vector with push_back assumes single-threaded, in-order
 * append; a reordered or concurrent fill would silently corrupt the
 * series (and any percentiles derived from it). Slots make the
 * commit explicit: pre-sized, one writer per index, double-commit and
 * missing-commit are panics. Jobs running under par::ThreadPool must
 * likewise own their stats::Samplers and commit them here — never
 * record into a sampler shared across jobs.
 */
template <typename T>
class Slots
{
  public:
    explicit Slots(std::size_t n) : values_(n), committed_(n, 0) {}

    void
    set(std::size_t i, T value)
    {
        if (i >= values_.size())
            sim::panic("bench slot %zu out of range (%zu slots)", i,
                       values_.size());
        if (committed_[i])
            sim::panic("bench slot %zu committed twice", i);
        values_[i] = std::move(value);
        committed_[i] = 1;
    }

    const T &
    at(std::size_t i) const
    {
        if (i >= values_.size() || !committed_[i])
            sim::panic("bench slot %zu read before commit", i);
        return values_[i];
    }

    std::size_t size() const { return values_.size(); }

  private:
    std::vector<T> values_;
    /** char, not vector<bool>: adjacent slots must not share bytes
     * when committed from different threads. */
    std::vector<char> committed_;
};

/**
 * Standard bench CLI: `--quick` shrinks the run for CI perf gating,
 * `--json PATH` overrides where the BENCH_<name>.json summary lands,
 * `--jobs N` fans independent simulation points across N host
 * threads (0 = all cores; output stays byte-identical to --jobs 1).
 */
struct BenchArgs {
    bool quick = false;
    std::string jsonPath;
    unsigned jobs = par::defaultJobs();

    static BenchArgs
    parse(int argc, char **argv, const std::string &bench_name)
    {
        BenchArgs args;
        args.jsonPath = "BENCH_" + bench_name + ".json";
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            if (arg == "--quick") {
                args.quick = true;
            } else if (arg == "--json") {
                if (i + 1 >= argc)
                    sim::fatal("--json requires a value");
                args.jsonPath = argv[++i];
            } else if (arg.rfind("--json=", 0) == 0) {
                args.jsonPath = arg.substr(std::strlen("--json="));
            } else if (arg == "--jobs") {
                if (i + 1 >= argc)
                    sim::fatal("--jobs requires a value");
                args.jobs = par::resolveJobs(static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10)));
            } else if (arg.rfind("--jobs=", 0) == 0) {
                args.jobs = par::resolveJobs(static_cast<unsigned>(
                    std::strtoul(arg.c_str() + std::strlen("--jobs="),
                                 nullptr, 10)));
            } else {
                sim::fatal("unknown flag '%s' "
                           "(--quick, --json PATH, --jobs N)",
                           arg.c_str());
            }
        }
        return args;
    }

    /** The host-parallel pool for --jobs (null = serial). */
    std::unique_ptr<par::ThreadPool>
    makePool() const
    {
        if (jobs <= 1)
            return nullptr;
        return std::make_unique<par::ThreadPool>(jobs);
    }
};

/** Write the machine-comparable bench summary for tools/jordprof. */
inline void
writeBenchJson(const std::string &path,
               const std::map<std::string, double> &kv)
{
    std::ofstream out(path);
    if (!out)
        sim::fatal("cannot open '%s'", path.c_str());
    prof::writeFlatJson(out, kv);
    std::fprintf(stderr, "wrote %zu bench metrics to %s\n", kv.size(),
                 path.c_str());
}

} // namespace jord::bench

#endif // JORD_BENCH_COMMON_HH
