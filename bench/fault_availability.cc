/**
 * @file
 * Availability under injected faults: goodput and tail latency as the
 * injected crash rate rises, with the failure-handling runtime enabled
 * (per-request deadlines, bounded retries with exponential backoff, and
 * admission-control shedding).
 *
 * Two sections:
 *   1. Crash-rate sweep on Jord (Hotel): goodput, good-request P99, and
 *      the terminal-outcome mix for each injected per-invocation crash
 *      probability. Same-seed runs are deterministic, so the table is
 *      byte-stable across invocations.
 *   2. NightCore pipe-drop sweep: the same availability question for
 *      the process-based baseline, whose failure mode is a dropped
 *      gateway/engine pipe message rather than an in-PD crash.
 *
 * Flags: --quick shrinks the sweep for CI smoke runs; --jobs N runs
 * the sweep points host-parallel with byte-identical output; --json
 * PATH writes the machine-comparable summary (goodput, good fraction,
 * good P99 per sweep point) gated by CI via jordprof diff.
 * Environment knobs: JORD_FAULT_REQUESTS overrides requests per point.
 */

#include <cstdlib>

#include "bench/common.hh"
#include "fault/fault.hh"
#include "par/par.hh"
#include "stats/table.hh"
#include "workloads/workloads.hh"

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

namespace {

struct PointConfig {
    double rate = 0;       ///< crash (Jord) or pipe-drop (NightCore)
    double mrps = 1.5;
    std::uint64_t requests = 12000;
};

RunResult
runPoint(const workloads::Workload &w, SystemKind system,
         const PointConfig &pc)
{
    WorkerConfig wc;
    wc.system = system;
    wc.timeoutUs = 300.0;
    wc.maxRetries = 2;
    wc.shedCap = 512;
    wc.faultPlan.seed = 42;
    if (system == SystemKind::NightCore)
        wc.faultPlan.defaults.pipeDrop = pc.rate;
    else
        wc.faultPlan.defaults.crash = pc.rate;
    WorkerServer worker(wc, w.registry);
    return worker.run(pc.mrps, pc.requests, w.mix, 0.2);
}

/** Stable metric-key fragment for an injection rate: "0.010". */
std::string
rateKey(double rate)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", rate);
    return buf;
}

void
addRow(stats::Table &table, double rate, const RunResult &res)
{
    std::uint64_t measured = res.completedRequests + res.failedRequests +
                             res.timedOutRequests + res.shedRequests;
    double good_frac =
        measured ? static_cast<double>(res.completedRequests) / measured
                 : 0;
    table.addRow({stats::Table::cell(rate, "%.3f"),
                  stats::Table::cell(res.achievedMrps, "%.3f"),
                  stats::Table::cell(100.0 * good_frac, "%.2f"),
                  stats::Table::cell(res.latencyUs.p99(), "%.2f"),
                  std::to_string(res.completedRequests),
                  std::to_string(res.failedRequests),
                  std::to_string(res.timedOutRequests),
                  std::to_string(res.shedRequests),
                  std::to_string(res.retries),
                  std::to_string(res.faultsInjected)});
}

/** Record one sweep point's gate-worthy metrics under @p prefix. */
void
addJson(std::map<std::string, double> &json, const std::string &prefix,
        const RunResult &res)
{
    std::uint64_t measured = res.completedRequests + res.failedRequests +
                             res.timedOutRequests + res.shedRequests;
    double good_frac =
        measured ? static_cast<double>(res.completedRequests) / measured
                 : 0;
    json[prefix + ".goodput_mrps"] = res.achievedMrps;
    json[prefix + ".good_frac"] = good_frac;
    json[prefix + ".good_p99_us"] = res.latencyUs.p99();
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchArgs args =
        bench::BenchArgs::parse(argc, argv, "fault_availability");
    bool quick = args.quick;

    PointConfig pc;
    pc.requests = quick ? 3000 : 12000;
    pc.requests = sim::env::getU64("JORD_FAULT_REQUESTS", pc.requests);

    std::vector<double> crash_rates =
        quick ? std::vector<double>{0, 0.01, 0.05}
              : std::vector<double>{0, 0.005, 0.01, 0.02, 0.05, 0.10};
    std::vector<double> drop_rates =
        quick ? std::vector<double>{0, 0.02}
              : std::vector<double>{0, 0.01, 0.02, 0.05};

    workloads::Workload hotel = workloads::makeHotel();

    // Compute phase: both sections' points as one flat job list (the
    // Jord crash sweep first, then the NightCore drop sweep), each
    // committing to its submission slot; the tables render afterwards
    // so --jobs N output is byte-identical to --jobs 1.
    std::unique_ptr<par::ThreadPool> pool = args.makePool();
    std::vector<RunResult> results = par::orderedMap<RunResult>(
        pool.get(), crash_rates.size() + drop_rates.size(),
        [&](std::size_t i) {
            PointConfig point = pc;
            if (i < crash_rates.size()) {
                point.rate = crash_rates[i];
                return runPoint(hotel, SystemKind::Jord, point);
            }
            point.rate = drop_rates[i - crash_rates.size()];
            return runPoint(hotel, SystemKind::NightCore, point);
        });

    const std::vector<std::string> cols = {
        "Rate",    "Goodput (MRPS)", "Good %", "Good P99 (us)",
        "Done",    "Failed",         "T/O",    "Shed",
        "Retries", "Injected"};

    std::map<std::string, double> json;

    bench::banner("Availability: Jord (Hotel), injected crash rate");
    std::printf("timeout=300us, retries=2, backoff=20us, shed cap=512\n");
    stats::Table jord_table(cols);
    for (std::size_t i = 0; i < crash_rates.size(); ++i) {
        addRow(jord_table, crash_rates[i], results[i]);
        addJson(json,
                "fault_availability.jord.crash" + rateKey(crash_rates[i]),
                results[i]);
    }
    std::printf("%s\n", jord_table.render().c_str());
    std::printf(
        "Expected shape: goodput degrades gracefully (retries absorb\n"
        "most single-invocation crashes at low rates); no deadlock or\n"
        "leak at any rate -- the run aborts if the quiescence checker\n"
        "finds a leaked PD or ArgBuf.\n");

    bench::banner("Availability: NightCore (Hotel), pipe-drop rate");
    stats::Table ntc_table(cols);
    for (std::size_t i = 0; i < drop_rates.size(); ++i) {
        const RunResult &res = results[crash_rates.size() + i];
        addRow(ntc_table, drop_rates[i], res);
        addJson(json,
                "fault_availability.nightcore.drop" +
                    rateKey(drop_rates[i]),
                res);
    }
    std::printf("%s\n", ntc_table.render().c_str());
    std::printf(
        "NightCore drops are detected at the gateway (send + recv\n"
        "latency is still paid), so each drop costs a full pipe round\n"
        "trip before the retry path engages.\n");

    bench::writeBenchJson(args.jsonPath, json);
    return 0;
}
