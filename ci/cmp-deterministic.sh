#!/usr/bin/env bash
# Byte-compare two artifacts that must be identical regardless of
# --jobs. On mismatch, print the first differing lines so the failure
# is debuggable straight from the CI log.
set -u

if [ "$#" -ne 2 ]; then
    echo "usage: $0 FILE_A FILE_B" >&2
    exit 2
fi

a="$1"
b="$2"

if cmp -s "$a" "$b"; then
    echo "identical: $a == $b"
    exit 0
fi

echo "::error::determinism violation: $a and $b differ"
echo "--- first differing lines (serial vs parallel) ---"
diff "$a" "$b" | head -20
exit 1
