#!/usr/bin/env bash
# Byte-compare artifacts that must be identical regardless of --jobs
# or --domains. Accepts one or more FILE_A FILE_B pairs and checks
# every pair, so one invocation can gate a whole run's artifact set.
# On mismatch, print the first differing lines so the failure is
# debuggable straight from the CI log.
set -u

if [ "$#" -lt 2 ] || [ "$(($# % 2))" -ne 0 ]; then
    echo "usage: $0 FILE_A FILE_B [FILE_A FILE_B]..." >&2
    exit 2
fi

rc=0
while [ "$#" -gt 0 ]; do
    a="$1"
    b="$2"
    shift 2

    if cmp -s "$a" "$b"; then
        echo "identical: $a == $b"
        continue
    fi

    echo "::error::determinism violation: $a and $b differ"
    echo "--- first differing lines ($a vs $b) ---"
    diff "$a" "$b" | head -20
    rc=1
done
exit "$rc"
