/**
 * @file
 * Cross-module integration and property tests: the headline ordering
 * relations the paper's evaluation rests on, checked end-to-end on the
 * assembled systems at moderate load.
 */

#include <gtest/gtest.h>

#include "os/kernel.hh"
#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

RunResult
runSystem(const workloads::Workload &w, SystemKind system, double load,
          std::uint64_t requests = 4000)
{
    WorkerConfig cfg;
    cfg.system = system;
    WorkerServer worker(cfg, w.registry);
    return worker.run(load, requests, w.mix);
}

TEST(Integration, JordNiNeverSlowerThanJordOnMeanService)
{
    for (workloads::Workload &w : workloads::makeAll()) {
        double load = w.name == "Social" ? 0.2 : 1.0;
        RunResult jord = runSystem(w, SystemKind::Jord, load);
        RunResult ni = runSystem(w, SystemKind::JordNI, load);
        EXPECT_LT(ni.serviceUs.mean(), jord.serviceUs.mean() * 1.05)
            << w.name;
    }
}

TEST(Integration, NightCoreSlowestOnService)
{
    for (workloads::Workload &w : workloads::makeAll()) {
        double load = w.name == "Social" ? 0.1 : 0.5;
        RunResult jord = runSystem(w, SystemKind::Jord, load);
        RunResult ntc = runSystem(w, SystemKind::NightCore, load);
        EXPECT_GT(ntc.latencyUs.mean(), jord.latencyUs.mean())
            << w.name;
    }
}

TEST(Integration, BtreeSlowerThanPlainListButFunctional)
{
    workloads::Workload w = workloads::makeHotel();
    RunResult jord = runSystem(w, SystemKind::Jord, 2.0);
    RunResult bt = runSystem(w, SystemKind::JordBT, 2.0);
    EXPECT_EQ(bt.completedRequests, jord.completedRequests);
    EXPECT_GT(bt.serviceUs.mean(), jord.serviceUs.mean());
}

TEST(Integration, P99DominatesP50)
{
    workloads::Workload w = workloads::makeHipster();
    RunResult res = runSystem(w, SystemKind::Jord, 4.0);
    EXPECT_GE(res.latencyUs.p99(), res.latencyUs.p50());
    EXPECT_GE(res.serviceUs.p99(), res.serviceUs.p50());
}

TEST(Integration, InvocationConservationAcrossSystems)
{
    workloads::Workload w = workloads::makeHipster();
    for (SystemKind system :
         {SystemKind::Jord, SystemKind::JordNI, SystemKind::JordBT,
          SystemKind::NightCore}) {
        RunResult res = runSystem(w, system, 1.0, 2000);
        EXPECT_EQ(res.completedRequests, 1600u)
            << systemName(system);
        // Entry mix averages ~2.85 children per request.
        double fan = static_cast<double>(res.invocations) /
                     static_cast<double>(res.completedRequests);
        EXPECT_NEAR(fan, 3.85, 0.35) << systemName(system);
    }
}

TEST(Integration, IsolationOverheadIsSmallShareForJord)
{
    // §6.2: dispatch + isolation is ~11% of service time on average
    // (more for Media).
    workloads::Workload w = workloads::makeHotel();
    RunResult res = runSystem(w, SystemKind::Jord, 2.0, 6000);
    double service = res.serviceUs.mean();
    double overhead_us =
        sim::cyclesToUs(res.totals.isolation + res.totals.dispatch,
                        4.0) /
        static_cast<double>(res.invocations);
    double share = overhead_us / service;
    EXPECT_GT(share, 0.03);
    EXPECT_LT(share, 0.30);
}

TEST(Integration, NoPdOrVmaLeaksAcrossRun)
{
    workloads::Workload w = workloads::makeHipster();
    WorkerConfig cfg;
    WorkerServer worker(cfg, w.registry);
    unsigned pds_before = worker.privlib().numLivePds();
    worker.run(2.0, 3000, w.mix);
    // Every invocation's PD must have been cput back.
    EXPECT_EQ(worker.privlib().numLivePds(), pds_before);
}

TEST(Integration, VmaTablePopulationReturnsToBaseline)
{
    workloads::Workload w = workloads::makeHotel();
    WorkerConfig cfg;
    WorkerServer worker(cfg, w.registry);
    worker.run(1.0, 2000, w.mix);
    // All ArgBuf/stack VMAs freed: only static VMAs remain (PrivLib
    // code + data, runtime code, one code VMA per function).
    std::uint64_t expected = 2 + 1 + worker.registry().size();
    EXPECT_EQ(worker.uat().table().numValid(), expected);
}

TEST(Integration, MediaIsolationGapLargerThanHotel)
{
    // The 12-way fan-out makes Media the isolation-heavy outlier.
    workloads::Workload hotel = workloads::makeHotel();
    workloads::Workload media = workloads::makeMedia();
    RunResult hotel_res = runSystem(hotel, SystemKind::Jord, 2.0);
    RunResult media_res = runSystem(media, SystemKind::Jord, 1.0);
    auto iso_share = [](const RunResult &res) {
        return static_cast<double>(res.totals.isolation) /
               static_cast<double>(res.totals.exec);
    };
    EXPECT_GT(iso_share(media_res), 1.5 * iso_share(hotel_res));
}

TEST(Integration, FpgaProfileSlowsPrivlibOps)
{
    workloads::Workload w = workloads::makeHotel();
    WorkerConfig cfg;
    cfg.machine.profile = sim::MachineProfile::Fpga;
    cfg.machine.numCores = 32; // keep the full worker shape
    WorkerServer fpga(cfg, w.registry);
    RunResult fpga_res = fpga.run(1.0, 2000, w.mix);
    RunResult sim_res = runSystem(w, SystemKind::Jord, 1.0, 2000);
    double fpga_iso = static_cast<double>(fpga_res.totals.isolation) /
                      static_cast<double>(fpga_res.invocations);
    double sim_iso = static_cast<double>(sim_res.totals.isolation) /
                     static_cast<double>(sim_res.invocations);
    EXPECT_GT(fpga_iso, 1.3 * sim_iso);
}

TEST(Integration, PhysicalMemoryRecyclesAfterWarmup)
{
    // Chunks recycle through the free lists: a second identical run on
    // the same worker should need (almost) no further uat_config
    // refills from the kernel.
    workloads::Workload w = workloads::makeHipster();
    WorkerConfig cfg;
    WorkerServer worker(cfg, w.registry);
    worker.run(2.0, 2000, w.mix);
    std::uint64_t after_first = worker.kernel().numSyscalls();
    worker.run(2.0, 2000, w.mix);
    std::uint64_t after_second = worker.kernel().numSyscalls();
    EXPECT_LE(after_second - after_first, after_first / 4 + 2);
}

} // namespace
