/**
 * @file
 * Tests for intra-run parallel domain execution (issue 10): the
 * epoch-parallel DomainEngine (byte-identity across domain counts and
 * thread pools, the lookahead contract, daemon events, empty domains)
 * and the worker's domain-partitioned EventQueue (golden byte-identity
 * sweep over --domains on a nested-ccall workload).
 *
 * This binary is part of the tsan CI job's set: the DomainEngine tests
 * here drive real fork-join epochs over a multi-thread pool, which is
 * exactly the surface the engine's tsan-clean claim covers.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "par/domains.hh"
#include "par/par.hh"
#include "runtime/worker.hh"
#include "sim/types.hh"

namespace {

using namespace jord;
using par::DomainEngine;
using par::ThreadPool;
using sim::Tick;

/**
 * A nested-ccall-shaped workload confined to tiles: every tile owns a
 * running hash and an event log; events mix the tile hash, then fan
 * out children — same-tile at short delays, cross-tile at delays no
 * shorter than the lookahead (so the contract holds under *any*
 * partition of tiles into domains). Because state is per-tile, the
 * observable outcome must be bitwise identical for every domain count
 * and thread count.
 */
struct TileWorkload {
    static constexpr Tick kLookahead = 12;

    unsigned numTiles;
    unsigned domains;
    std::vector<std::uint64_t> hash;
    std::vector<std::vector<Tick>> log;

    explicit TileWorkload(unsigned tiles, unsigned k)
        : numTiles(tiles), domains(k), hash(tiles, 0x9e3779b9u),
          log(tiles)
    {
    }

    unsigned
    domainOf(unsigned tile) const
    {
        return tile * domains / numTiles;
    }

    void
    event(DomainEngine::Context &ctx, unsigned tile, unsigned depth)
    {
        std::uint64_t &h = hash[tile];
        h = (h ^ (ctx.now() * 0x100000001b3ull)) * 1099511628211ull;
        log[tile].push_back(ctx.now());
        if (depth == 0)
            return;
        // Same-tile child: short delay, arbitrary relative to horizon.
        ctx.scheduleAfter(ctx.domain(), 1 + (h % 7),
                          [this, tile, depth](DomainEngine::Context &c) {
                              event(c, tile, depth - 1);
                          });
        // Cross-tile child (a nested ccall to a remote tile): delay of
        // at least the lookahead, legal whatever domain the target
        // tile falls into.
        unsigned target =
            static_cast<unsigned>(h >> 8) % numTiles;
        ctx.scheduleAfter(domainOf(target), kLookahead + (h % 5),
                          [this, target, depth](DomainEngine::Context &c) {
                              event(c, target, depth - 1);
                          });
    }
};

struct EngineOutcome {
    std::vector<std::uint64_t> hash;
    std::vector<std::vector<Tick>> log;
    std::uint64_t dispatched;
    Tick curTick;
    Tick lastWorkTick;
};

EngineOutcome
driveTiles(unsigned tiles, unsigned domains, unsigned threads)
{
    TileWorkload wl(tiles, domains);
    DomainEngine::Config cfg;
    cfg.domains = domains;
    cfg.lookahead = TileWorkload::kLookahead;
    ThreadPool pool(threads);
    DomainEngine eng(cfg, threads > 1 ? &pool : nullptr);
    for (unsigned t = 0; t < tiles; ++t) {
        unsigned tile = t;
        eng.schedule(wl.domainOf(tile), 5 + tile,
                     [&wl, tile](DomainEngine::Context &c) {
                         wl.event(c, tile, 6);
                     });
    }
    eng.run();
    return EngineOutcome{wl.hash, wl.log, eng.numDispatched(),
                         eng.curTick(), eng.lastWorkTick()};
}

TEST(DomainEngine, ByteIdenticalAcrossDomainCountsAndThreads)
{
    // K = 1 serial is the reference; every other (K, threads) combo
    // must reproduce it exactly — the tentpole's identity claim.
    EngineOutcome ref = driveTiles(16, 1, 1);
    EXPECT_GT(ref.dispatched, 100u);
    for (unsigned domains : {2u, 3u, 8u}) {
        for (unsigned threads : {1u, 4u}) {
            EngineOutcome got = driveTiles(16, domains, threads);
            EXPECT_EQ(got.hash, ref.hash)
                << "domains=" << domains << " threads=" << threads;
            EXPECT_EQ(got.log, ref.log)
                << "domains=" << domains << " threads=" << threads;
            EXPECT_EQ(got.dispatched, ref.dispatched);
            EXPECT_EQ(got.curTick, ref.curTick);
            EXPECT_EQ(got.lastWorkTick, ref.lastWorkTick);
        }
    }
}

TEST(DomainEngine, CrossDomainEventExactlyAtLookaheadHorizon)
{
    // when == now + lookahead is the boundary the conservative epoch
    // depends on: legal, deferred past the bearing epoch's barrier,
    // and ordered after every event below the horizon.
    DomainEngine::Config cfg;
    cfg.domains = 2;
    cfg.lookahead = 10;
    DomainEngine eng(cfg, nullptr);
    std::vector<int> order;
    eng.schedule(0, 0, [&order](DomainEngine::Context &ctx) {
        order.push_back(0);
        ctx.schedule(1, ctx.now() + 10,
                     [&order](DomainEngine::Context &) {
                         order.push_back(2);
                     });
    });
    eng.schedule(1, 9, [&order](DomainEngine::Context &) {
        order.push_back(1);
    });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eng.curTick(), 10u);
    EXPECT_GE(eng.numEpochs(), 2u);
}

TEST(DomainEngine, DaemonEventsDoNotAdvanceLastWorkTick)
{
    DomainEngine::Config cfg;
    cfg.domains = 3;
    cfg.lookahead = 10;
    DomainEngine eng(cfg, nullptr);
    eng.schedule(0, 4, [](DomainEngine::Context &ctx) {
        // In-run daemon into another domain, beyond the lookahead.
        ctx.scheduleDaemon(2, ctx.now() + 50,
                           [](DomainEngine::Context &) {});
    });
    eng.scheduleDaemon(1, 80, [](DomainEngine::Context &) {});
    eng.run();
    EXPECT_EQ(eng.numDispatched(), 3u);
    EXPECT_EQ(eng.curTick(), 80u);
    EXPECT_EQ(eng.lastWorkTick(), 4u);
}

TEST(DomainEngine, ZeroEventDomainIsHarmless)
{
    DomainEngine::Config cfg;
    cfg.domains = 4;
    cfg.lookahead = 5;
    ThreadPool pool(4);
    DomainEngine eng(cfg, &pool);
    int fired = 0;
    // Only domain 2 ever has events; 0, 1 and 3 stay empty through
    // every epoch.
    eng.schedule(2, 1, [&fired](DomainEngine::Context &ctx) {
        ++fired;
        ctx.scheduleAfter(ctx.domain(), 3,
                          [&fired](DomainEngine::Context &) {
                              ++fired;
                          });
    });
    EXPECT_EQ(eng.run(), 4u);
    EXPECT_EQ(fired, 2);
}

TEST(DomainEngineDeathTest, CrossDomainScheduleInsideLookaheadPanics)
{
    DomainEngine::Config cfg;
    cfg.domains = 2;
    cfg.lookahead = 10;
    DomainEngine eng(cfg, nullptr);
    eng.schedule(0, 0, [](DomainEngine::Context &ctx) {
        // One tick short of the horizon: the conservative contract is
        // violated and the engine must refuse to proceed.
        ctx.schedule(1, ctx.now() + 9, [](DomainEngine::Context &) {});
    });
    EXPECT_DEATH(eng.run(), "lookahead");
}

// --- Worker --domains golden byte-identity ---------------------------------

runtime::FunctionRegistry
nestedCcallRegistry(runtime::FunctionId &parent_out)
{
    runtime::FunctionRegistry reg;
    runtime::FunctionSpec leaf;
    leaf.name = "leaf";
    leaf.execMeanUs = 0.5;
    leaf.execCv = 0.1;
    runtime::FunctionId leaf_id = reg.add(leaf);

    runtime::FunctionSpec parent;
    parent.name = "parent";
    parent.execMeanUs = 1.0;
    parent.execCv = 0.1;
    parent.calls = {runtime::CallSpec{leaf_id, 512, false},
                    runtime::CallSpec{leaf_id, 512, true}};
    parent_out = reg.add(parent);
    return reg;
}

runtime::RunResult
runNestedWithDomains(unsigned domains)
{
    runtime::FunctionId parent = 0;
    runtime::FunctionRegistry reg = nestedCcallRegistry(parent);
    runtime::WorkerConfig cfg;
    cfg.numDomains = domains;
    runtime::WorkerServer worker(cfg, reg);
    return worker.run(0.5, 600, {{parent, 1.0}});
}

TEST(WorkerDomains, GoldenByteIdentityAcrossDomainSweep)
{
    // The EventQueue keeps one global deterministic dispatch order no
    // matter how its pending set is partitioned, so every statistic a
    // run produces — including exact doubles — must be bitwise equal
    // across the --domains sweep.
    runtime::RunResult ref = runNestedWithDomains(1);
    EXPECT_GT(ref.completedRequests, 0u);
    EXPECT_EQ(ref.invocations, 3 * ref.completedRequests);
    for (unsigned domains : {2u, 3u, 8u}) {
        runtime::RunResult got = runNestedWithDomains(domains);
        EXPECT_EQ(got.completedRequests, ref.completedRequests)
            << "domains=" << domains;
        EXPECT_EQ(got.invocations, ref.invocations);
        EXPECT_EQ(got.achievedMrps, ref.achievedMrps);
        EXPECT_EQ(got.latencyUs.mean(), ref.latencyUs.mean());
        EXPECT_EQ(got.latencyUs.p99(), ref.latencyUs.p99());
        EXPECT_EQ(got.serviceUs.mean(), ref.serviceUs.mean());
        EXPECT_EQ(got.dispatchNs.mean(), ref.dispatchNs.mean());
        EXPECT_EQ(got.totals.total(), ref.totals.total());
        EXPECT_EQ(got.executorUtilization, ref.executorUtilization);
    }
}

TEST(WorkerDomainsDeathTest, RejectsMoreDomainsThanCores)
{
    runtime::FunctionId parent = 0;
    runtime::FunctionRegistry reg = nestedCcallRegistry(parent);
    runtime::WorkerConfig cfg;
    cfg.numDomains = cfg.machine.numCores + 1;
    EXPECT_DEATH(runtime::WorkerServer(cfg, reg), "numDomains");
}

} // namespace
