/**
 * @file
 * End-to-end smoke tests: every system variant runs every workload to
 * completion and produces sane metrics.
 */

#include <gtest/gtest.h>

#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

TEST(Smoke, JordRunsHipsterLowLoad)
{
    workloads::Workload w = workloads::makeHipster();
    WorkerConfig cfg;
    WorkerServer worker(cfg, w.registry);
    RunResult res = worker.run(0.1, 500, w.mix);
    EXPECT_GT(res.completedRequests, 300u);
    EXPECT_GT(res.latencyUs.mean(), 0.5);
    EXPECT_LT(res.latencyUs.mean(), 100.0);
    EXPECT_GT(res.invocations, res.completedRequests);
}

class AllSystemsAllWorkloads
    : public ::testing::TestWithParam<std::tuple<SystemKind, int>>
{
};

TEST_P(AllSystemsAllWorkloads, CompletesAndMeasures)
{
    auto [system, wl_idx] = GetParam();
    auto all = workloads::makeAll();
    workloads::Workload &w = all[static_cast<size_t>(wl_idx)];

    WorkerConfig cfg;
    cfg.system = system;
    WorkerServer worker(cfg, w.registry);
    RunResult res = worker.run(0.05, 300, w.mix);
    EXPECT_GT(res.completedRequests, 200u)
        << "workload=" << w.name << " system=" << systemName(system);
    EXPECT_GT(res.latencyUs.p99(), 0.0);
    EXPECT_GT(res.serviceUs.count(), 0u);
}

std::string
matrixName(
    const ::testing::TestParamInfo<std::tuple<SystemKind, int>> &info)
{
    static const char *const names[] = {"Hipster", "Hotel", "Media",
                                        "Social"};
    return std::string(systemName(std::get<0>(info.param))) +
           names[std::get<1>(info.param)];
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, AllSystemsAllWorkloads,
    ::testing::Combine(::testing::Values(SystemKind::Jord,
                                         SystemKind::JordNI,
                                         SystemKind::JordBT,
                                         SystemKind::NightCore),
                       ::testing::Values(0, 1, 2, 3)),
    matrixName);

} // namespace
