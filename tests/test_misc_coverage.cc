/**
 * @file
 * Coverage for edges the focused suites skip: the FPGA machine profile,
 * the VTE offset-encoding property, dispatch-scan scaling, multi-PD
 * cexit independence across cores, and walker behaviour under L1
 * capacity pressure.
 */

#include "tests/fixture.hh"

#include "runtime/worker.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

namespace {

using jord::sim::Addr;
using jord::sim::Rng;
using jord::test::JordStackTest;
using jord::uat::PdId;
using jord::uat::Perm;
using jord::uat::Vte;

// --- VTE offset property -------------------------------------------------------

TEST(VteProperty, OffsRoundTripsAcrossAttrChurn)
{
    Rng rng(7);
    for (int i = 0; i < 20000; ++i) {
        Vte vte;
        // Signed offsets up to +/- 2^50.
        std::int64_t offs = static_cast<std::int64_t>(rng.next() %
                                                      (1ull << 50)) -
                            (1ll << 49);
        vte.setOffs(offs);
        vte.setAttr(rng.chance(0.5), rng.chance(0.5), rng.chance(0.5),
                    Perm(static_cast<std::uint8_t>(rng.next() & 7)));
        ASSERT_EQ(vte.offs(), offs) << "iteration " << i;
    }
}

// --- Time conversions ------------------------------------------------------------

TEST(Types, CycleTimeConversionsRoundTrip)
{
    using namespace jord::sim;
    EXPECT_EQ(nsToCycles(100.0), 400u); // 4 GHz
    EXPECT_DOUBLE_EQ(cyclesToNs(400), 100.0);
    EXPECT_DOUBLE_EQ(cyclesToUs(4000), 1.0);
    EXPECT_EQ(usToCycles(1.0), 4000u);
    EXPECT_EQ(blockAlign(0x12345), 0x12340u);
}

// --- FPGA profile stack -------------------------------------------------------------

class FpgaStackTest : public JordStackTest
{
  protected:
    FpgaStackTest()
    {
        // Tear the default stack down in dependency order, then
        // rebuild it on the FPGA profile.
        privlib.reset();
        uat.reset();
        kernel.reset();
        table.reset();
        coherence.reset();
        mesh.reset();
        cfg = jord::sim::MachineConfig::isca25Default();
        cfg.profile = jord::sim::MachineProfile::Fpga;
        mesh = std::make_unique<jord::noc::Mesh>(cfg);
        coherence =
            std::make_unique<jord::mem::CoherenceEngine>(cfg, *mesh);
        jord::uat::VaEncoding encoding;
        table = std::make_unique<jord::uat::PlainListVmaTable>(encoding);
        uat = std::make_unique<jord::uat::UatSystem>(cfg, *coherence,
                                                     *table);
        kernel = std::make_unique<jord::os::Kernel>(cfg);
        privlib = std::make_unique<jord::privlib::PrivLib>(
            cfg, *coherence, *uat, *table, *kernel);
    }
};

TEST_F(FpgaStackTest, SoftwareOpsSlowerHardwareIdentical)
{
    // Warm mmap on the FPGA profile must exceed the default profile's
    // while the pure-hardware VTW walk stays identical (§6.2).
    for (int i = 0; i < 40; ++i) {
        auto m = privlib->mmap(0, 4096, Perm::rw());
        privlib->munmap(0, m.value, 4096);
    }
    auto fpga_mmap = privlib->mmap(0, 4096, Perm::rw());
    EXPECT_GT(jord::sim::cyclesToNs(fpga_mmap.latency, cfg.freqGhz),
              25.0);

    // Hardware path: VLB-miss walk with warm L1 is still ~2 ns.
    coherence->read(0, table->vteAddrOf(fpga_mmap.value), true);
    uat->dvlb(0).invalidateVte(table->vteAddrOf(fpga_mmap.value));
    auto acc = uat->dataAccess(0, fpga_mmap.value, Perm::r());
    EXPECT_LE(jord::sim::cyclesToNs(acc.latency, cfg.freqGhz), 3.0);
}

// --- Multi-core domain independence ----------------------------------------------

class MultiCoreDomains : public JordStackTest
{
};

TEST_F(MultiCoreDomains, DomainStacksArePerCore)
{
    PdId a = mustCget(0);
    PdId b = mustCget(1);
    ASSERT_TRUE(privlib->ccall(0, a).ok);
    ASSERT_TRUE(privlib->ccall(1, b).ok);
    EXPECT_EQ(privlib->currentPd(0), a);
    EXPECT_EQ(privlib->currentPd(1), b);
    // Exiting on core 1 must not disturb core 0.
    ASSERT_TRUE(privlib->cexit(1).ok);
    EXPECT_EQ(privlib->currentPd(0), a);
    EXPECT_EQ(privlib->currentPd(1),
              jord::privlib::PrivLib::kRootPd);
    ASSERT_TRUE(privlib->cexit(0).ok);
}

TEST_F(MultiCoreDomains, NestedDomainsUnwindInOrder)
{
    PdId outer = mustCget(0);
    ASSERT_TRUE(privlib->ccall(0, outer).ok);
    // The outer function creates and enters its own child domain.
    jord::privlib::PrivResult child = privlib->cget(0);
    ASSERT_TRUE(child.ok);
    ASSERT_TRUE(privlib->ccall(0, static_cast<PdId>(child.value)).ok);
    EXPECT_EQ(privlib->domainDepth(0), 2u);
    ASSERT_TRUE(privlib->cexit(0).ok);
    EXPECT_EQ(privlib->currentPd(0), outer);
    ASSERT_TRUE(privlib->cexit(0).ok);
    EXPECT_EQ(privlib->domainDepth(0), 0u);
}

// --- Walker under L1 pressure --------------------------------------------------------

TEST_F(MultiCoreDomains, WalkStillCorrectAfterCacheEviction)
{
    PdId pd = mustCget(0);
    Addr vma = mustMmapFor(0, pd, 4096, Perm::rw());
    uat->csrFile(0).ucid = pd;
    ASSERT_TRUE(uat->dataAccess(0, vma, Perm::r()).ok());

    // Blow the L1 and the VLB; the next access must re-walk through
    // the LLC and still enforce the same permissions.
    for (unsigned i = 0; i < cfg.l1Lines + 8; ++i)
        coherence->read(0, 0x7000'0000ull + i * 64);
    uat->dvlb(0).invalidateAll();

    auto ok = uat->dataAccess(0, vma, Perm::rw());
    EXPECT_TRUE(ok.ok());
    EXPECT_GT(jord::sim::cyclesToNs(ok.latency, cfg.freqGhz), 2.0);
    uat->csrFile(0).ucid = 99; // no such domain
    uat->dvlb(0).invalidateAll();
    EXPECT_FALSE(uat->dataAccess(0, vma, Perm::r()).ok());
    uat->csrFile(0).ucid = 0;
}

// --- Dispatch scan scaling -----------------------------------------------------------

TEST(DispatchScan, GrowsWithMachineAndSockets)
{
    using namespace jord;
    workloads::Workload w = workloads::makeHipster();

    auto scan_ns = [&](unsigned cores, unsigned sockets) {
        runtime::WorkerConfig cfg;
        cfg.machine = sim::MachineConfig::scaled(cores, sockets);
        cfg.numOrchestrators = 1;
        cfg.perSocketOrchestrators = false;
        runtime::WorkerServer worker(cfg, w.registry);
        return worker.measureDispatchScanNs();
    };

    double small = scan_ns(16, 1);
    double large = scan_ns(256, 1);
    double dual = scan_ns(256, 2);
    EXPECT_LT(small, large);
    // Crossing the socket boundary dominates everything else (§6.3).
    EXPECT_GT(dual, 5 * large);
    EXPECT_GT(dual, 2000.0); // microsecond scale
}

// --- Breakdown arithmetic ---------------------------------------------------------------

TEST(Breakdown, TotalAndAccumulate)
{
    jord::runtime::Breakdown a;
    a.exec = 10;
    a.isolation = 5;
    jord::runtime::Breakdown b;
    b.exec = 1;
    b.pipe = 2;
    b.queue = 3;
    a += b;
    EXPECT_EQ(a.exec, 11u);
    EXPECT_EQ(a.total(), 11u + 5 + 2 + 3);
}

} // namespace
