/**
 * @file
 * End-to-end tests for the command-line tools, shelling out to the
 * built binaries (paths injected by CMake):
 *
 *  - jordsim --prof-out / --pmu-out produce the advertised files,
 *    byte-identical across same-seed runs, and --prof-hz validates;
 *  - trace_report and jordlint exit non-zero on empty and truncated
 *    trace files;
 *  - jordprof diff exits zero on identical inputs and non-zero on a
 *    synthetic 20% P99 regression.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

namespace {

std::string
shellQuote(const std::string &s)
{
    return "'" + s + "'";
}

/** Run a command with stdout/stderr captured; return its exit code. */
int
runCmd(const std::string &cmd)
{
    int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(out)) << path;
    out << content;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "jord_tools_" + name;
}

const std::string kJordsim = JORD_JORDSIM_BIN;
const std::string kJordprof = JORD_JORDPROF_BIN;
const std::string kTraceReport = JORD_TRACE_REPORT_BIN;
const std::string kJordlint = JORD_JORDLINT_BIN;

std::string
profRun(const std::string &base, const std::string &extra = "")
{
    return kJordsim +
           " --workload Hotel --mrps 2.0 --requests 3000 --csv " +
           extra + " --prof-out " + shellQuote(base);
}

// --- jordsim profiling flags ------------------------------------------------

TEST(JordsimProf, ProfOutWritesAllArtifactsDeterministically)
{
    std::string a = tmpPath("prof_a"), b = tmpPath("prof_b");
    ASSERT_EQ(runCmd(profRun(a)), 0);
    ASSERT_EQ(runCmd(profRun(b)), 0);
    for (const char *ext :
         {".folded", ".timeseries.csv", ".topdown.csv", ".json"}) {
        std::string fa = slurp(a + ext), fb = slurp(b + ext);
        EXPECT_FALSE(fa.empty()) << ext;
        EXPECT_EQ(fa, fb) << ext;
    }
    // The JSON summary parses and reports samples were taken.
    std::string json = slurp(a + ".json");
    EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
    EXPECT_NE(json.find("\"topdown.retire\""), std::string::npos);
    EXPECT_EQ(runCmd(kJordprof + " report " + shellQuote(a + ".json")),
              0);
}

TEST(JordsimProf, PmuOutWritesCounterCsv)
{
    std::string path = tmpPath("pmu.csv");
    ASSERT_EQ(runCmd(kJordsim +
                     " --workload Hotel --mrps 1.0 --requests 2000 "
                     "--csv --pmu-out " +
                     shellQuote(path)),
              0);
    std::string csv = slurp(path);
    EXPECT_NE(csv.find("core,counter,value"), std::string::npos);
    EXPECT_NE(csv.find("retired_ops"), std::string::npos);
    EXPECT_NE(csv.find("total,"), std::string::npos);
}

TEST(JordsimProf, ProfHzValidatesItsArgument)
{
    std::string base = tmpPath("prof_hz");
    // Negative rates are rejected.
    EXPECT_NE(runCmd(profRun(base, "--prof-hz -5")), 0);
    // Rates above one sample per core cycle exceed the event-queue
    // horizon.
    EXPECT_NE(runCmd(profRun(base, "--prof-hz 1e13")), 0);
    // An explicit zero disables profiling: run succeeds, no files.
    std::string off = tmpPath("prof_off");
    std::remove((off + ".json").c_str());
    EXPECT_EQ(runCmd(profRun(off, "--prof-hz 0")), 0);
    std::ifstream probe(off + ".json");
    EXPECT_FALSE(static_cast<bool>(probe));
}

TEST(JordsimProf, HelpDocumentsProfilingFlags)
{
    std::string out = tmpPath("help.txt");
    ASSERT_EQ(std::system((kJordsim + " --help > " + shellQuote(out) +
                           " 2>&1")
                              .c_str()),
              0);
    std::string help = slurp(out);
    EXPECT_NE(help.find("--prof-out"), std::string::npos);
    EXPECT_NE(help.find("--prof-hz"), std::string::npos);
    EXPECT_NE(help.find("--pmu-out"), std::string::npos);
}

// --- trace_report / jordlint robustness --------------------------------------

class TraceToolsTest : public ::testing::Test
{
  protected:
    static std::string tracePath_;

    static void
    SetUpTestSuite()
    {
        tracePath_ = tmpPath("trace.json");
        ASSERT_EQ(runCmd(kJordsim +
                         " --workload Hotel --mrps 1.0 "
                         "--requests 2000 --csv --trace-out " +
                         shellQuote(tracePath_)),
                  0);
    }
};

std::string TraceToolsTest::tracePath_;

TEST_F(TraceToolsTest, ToolsAcceptACompleteTrace)
{
    EXPECT_EQ(runCmd(kTraceReport + " " + shellQuote(tracePath_)), 0);
    EXPECT_EQ(runCmd(kJordlint + " " + shellQuote(tracePath_)), 0);
}

TEST_F(TraceToolsTest, ToolsRejectEmptyTraces)
{
    std::string empty = tmpPath("empty.json");
    spit(empty, "");
    EXPECT_NE(runCmd(kTraceReport + " " + shellQuote(empty)), 0);
    EXPECT_NE(runCmd(kJordlint + " " + shellQuote(empty)), 0);
}

TEST_F(TraceToolsTest, ToolsRejectTruncatedTraces)
{
    std::string full = slurp(tracePath_);
    ASSERT_GT(full.size(), 4000u);
    std::string trunc = tmpPath("trunc.json");
    spit(trunc, full.substr(0, full.size() / 2));
    EXPECT_NE(runCmd(kTraceReport + " " + shellQuote(trunc)), 0);
    EXPECT_NE(runCmd(kJordlint + " " + shellQuote(trunc)), 0);
}

// --- jordprof diff ------------------------------------------------------------

TEST(JordprofDiff, IdenticalInputsPassAndRegressionsFail)
{
    std::string old_path = tmpPath("bench_old.json");
    std::string new_path = tmpPath("bench_new.json");
    spit(old_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 4.0,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 5.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(old_path) + " --threshold 10%"),
              0);

    // A synthetic 20% P99 regression must fail a 10% gate.
    spit(new_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 4.0,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 6.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 10%"),
              1);
    // ...and pass a 25% gate (threshold accepted as a fraction too).
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 0.25"),
              0);

    // Goodput is higher-is-better: a 20% drop fails.
    spit(new_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 3.2,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 5.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 10%"),
              1);
}

TEST(JordprofDiff, RejectsEmptyAndMalformedInputs)
{
    std::string empty = tmpPath("empty_bench.json");
    spit(empty, "");
    EXPECT_NE(runCmd(kJordprof + " report " + shellQuote(empty)), 0);
    std::string garbage = tmpPath("garbage_bench.json");
    spit(garbage, "{\"p99_us\": 5.0");
    EXPECT_NE(runCmd(kJordprof + " diff " + shellQuote(garbage) + " " +
                     shellQuote(garbage)),
              0);
}

} // namespace

// --- jordsim fleet mode -----------------------------------------------------

TEST(JordsimCluster, MetricsOutIsPerServerNamespacedAndDeterministic)
{
    std::string a = tmpPath("cluster_a.csv"), b = tmpPath("cluster_b.csv");
    std::string run = kJordsim +
                      " --cluster 2 --lb jsq --traffic diurnal"
                      " --mrps 1.5 --duration-ms 4 --requests 2000"
                      " --csv --metrics-out ";
    ASSERT_EQ(runCmd(run + shellQuote(a)), 0);
    ASSERT_EQ(runCmd(run + shellQuote(b)), 0);
    std::string csv = slurp(a);
    EXPECT_NE(csv.find("cluster.server0.completed"), std::string::npos);
    EXPECT_NE(csv.find("cluster.server1.completed"), std::string::npos);
    EXPECT_NE(csv.find("cluster.goodput_mrps"), std::string::npos);
    EXPECT_EQ(csv, slurp(b));
    // Fleet mode owns the run: trace capture is a per-worker feature.
    EXPECT_NE(runCmd(kJordsim + " --cluster 2 --trace-out " +
                     shellQuote(tmpPath("cluster.trace"))),
              0);
}

TEST(JordsimCluster, HelpDocumentsFleetFlags)
{
    std::string out = tmpPath("cluster_help.txt");
    ASSERT_EQ(std::system((kJordsim + " --help > " + shellQuote(out) +
                           " 2>&1")
                              .c_str()),
              0);
    std::string help = slurp(out);
    EXPECT_NE(help.find("--cluster"), std::string::npos);
    EXPECT_NE(help.find("--lb"), std::string::npos);
    EXPECT_NE(help.find("--traffic"), std::string::npos);
    EXPECT_NE(help.find("--autoscale"), std::string::npos);
}
