/**
 * @file
 * End-to-end tests for the command-line tools, shelling out to the
 * built binaries (paths injected by CMake):
 *
 *  - jordsim --prof-out / --pmu-out produce the advertised files,
 *    byte-identical across same-seed runs, and --prof-hz validates;
 *  - trace_report and jordlint exit non-zero on empty and truncated
 *    trace files;
 *  - jordprof diff exits zero on identical inputs and non-zero on a
 *    synthetic 20% P99 regression.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "trace/export.hh"
#include "trace/trace.hh"

namespace {

std::string
shellQuote(const std::string &s)
{
    return "'" + s + "'";
}

/** Run a command with stdout/stderr captured; return its exit code. */
int
runCmd(const std::string &cmd)
{
    int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(static_cast<bool>(in)) << path;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

void
spit(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(static_cast<bool>(out)) << path;
    out << content;
}

std::string
tmpPath(const std::string &name)
{
    return testing::TempDir() + "jord_tools_" + name;
}

const std::string kJordsim = JORD_JORDSIM_BIN;
const std::string kJordprof = JORD_JORDPROF_BIN;
const std::string kTraceReport = JORD_TRACE_REPORT_BIN;
const std::string kJordlint = JORD_JORDLINT_BIN;

std::string
profRun(const std::string &base, const std::string &extra = "")
{
    return kJordsim +
           " --workload Hotel --mrps 2.0 --requests 3000 --csv " +
           extra + " --prof-out " + shellQuote(base);
}

// --- jordsim profiling flags ------------------------------------------------

TEST(JordsimProf, ProfOutWritesAllArtifactsDeterministically)
{
    std::string a = tmpPath("prof_a"), b = tmpPath("prof_b");
    ASSERT_EQ(runCmd(profRun(a)), 0);
    ASSERT_EQ(runCmd(profRun(b)), 0);
    for (const char *ext :
         {".folded", ".timeseries.csv", ".topdown.csv", ".json"}) {
        std::string fa = slurp(a + ext), fb = slurp(b + ext);
        EXPECT_FALSE(fa.empty()) << ext;
        EXPECT_EQ(fa, fb) << ext;
    }
    // The JSON summary parses and reports samples were taken.
    std::string json = slurp(a + ".json");
    EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
    EXPECT_NE(json.find("\"topdown.retire\""), std::string::npos);
    EXPECT_EQ(runCmd(kJordprof + " report " + shellQuote(a + ".json")),
              0);
}

TEST(JordsimProf, PmuOutWritesCounterCsv)
{
    std::string path = tmpPath("pmu.csv");
    ASSERT_EQ(runCmd(kJordsim +
                     " --workload Hotel --mrps 1.0 --requests 2000 "
                     "--csv --pmu-out " +
                     shellQuote(path)),
              0);
    std::string csv = slurp(path);
    EXPECT_NE(csv.find("core,counter,value"), std::string::npos);
    EXPECT_NE(csv.find("retired_ops"), std::string::npos);
    EXPECT_NE(csv.find("total,"), std::string::npos);
}

TEST(JordsimProf, ProfHzValidatesItsArgument)
{
    std::string base = tmpPath("prof_hz");
    // Negative rates are rejected.
    EXPECT_NE(runCmd(profRun(base, "--prof-hz -5")), 0);
    // Rates above one sample per core cycle exceed the event-queue
    // horizon.
    EXPECT_NE(runCmd(profRun(base, "--prof-hz 1e13")), 0);
    // An explicit zero disables profiling: run succeeds, no files.
    std::string off = tmpPath("prof_off");
    std::remove((off + ".json").c_str());
    EXPECT_EQ(runCmd(profRun(off, "--prof-hz 0")), 0);
    std::ifstream probe(off + ".json");
    EXPECT_FALSE(static_cast<bool>(probe));
}

TEST(JordsimProf, HelpDocumentsProfilingFlags)
{
    std::string out = tmpPath("help.txt");
    ASSERT_EQ(std::system((kJordsim + " --help > " + shellQuote(out) +
                           " 2>&1")
                              .c_str()),
              0);
    std::string help = slurp(out);
    EXPECT_NE(help.find("--prof-out"), std::string::npos);
    EXPECT_NE(help.find("--prof-hz"), std::string::npos);
    EXPECT_NE(help.find("--pmu-out"), std::string::npos);
}

// --- trace_report / jordlint robustness --------------------------------------

class TraceToolsTest : public ::testing::Test
{
  protected:
    static std::string tracePath_;

    static void
    SetUpTestSuite()
    {
        tracePath_ = tmpPath("trace.json");
        ASSERT_EQ(runCmd(kJordsim +
                         " --workload Hotel --mrps 1.0 "
                         "--requests 2000 --csv --trace-out " +
                         shellQuote(tracePath_)),
                  0);
    }
};

std::string TraceToolsTest::tracePath_;

TEST_F(TraceToolsTest, ToolsAcceptACompleteTrace)
{
    EXPECT_EQ(runCmd(kTraceReport + " " + shellQuote(tracePath_)), 0);
    EXPECT_EQ(runCmd(kJordlint + " " + shellQuote(tracePath_)), 0);
}

TEST_F(TraceToolsTest, ToolsRejectEmptyTraces)
{
    std::string empty = tmpPath("empty.json");
    spit(empty, "");
    EXPECT_NE(runCmd(kTraceReport + " " + shellQuote(empty)), 0);
    EXPECT_NE(runCmd(kJordlint + " " + shellQuote(empty)), 0);
}

TEST_F(TraceToolsTest, CompleteButEmptyTracePassesIntegrity)
{
    // A complete file with zero spans (nothing arrived inside the
    // measured window) is valid: trace_report reports the empty run
    // and exits 0; jordlint still objects — but because there is
    // nothing to lint, not because the file looks truncated.
    jord::trace::Tracer empty_tracer;
    std::string path = tmpPath("empty_valid.json");
    spit(path, jord::trace::chromeTraceJson(empty_tracer));
    EXPECT_EQ(runCmd(kTraceReport + " " + shellQuote(path)), 0);
    EXPECT_NE(runCmd(kJordlint + " " + shellQuote(path)), 0);
}

TEST_F(TraceToolsTest, ToolsRejectTruncatedTraces)
{
    std::string full = slurp(tracePath_);
    ASSERT_GT(full.size(), 4000u);
    std::string trunc = tmpPath("trunc.json");
    spit(trunc, full.substr(0, full.size() / 2));
    EXPECT_NE(runCmd(kTraceReport + " " + shellQuote(trunc)), 0);
    EXPECT_NE(runCmd(kJordlint + " " + shellQuote(trunc)), 0);
}

// --- jordprof diff ------------------------------------------------------------

TEST(JordprofDiff, IdenticalInputsPassAndRegressionsFail)
{
    std::string old_path = tmpPath("bench_old.json");
    std::string new_path = tmpPath("bench_new.json");
    spit(old_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 4.0,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 5.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(old_path) + " --threshold 10%"),
              0);

    // A synthetic 20% P99 regression must fail a 10% gate.
    spit(new_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 4.0,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 6.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 10%"),
              1);
    // ...and pass a 25% gate (threshold accepted as a fraction too).
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 0.25"),
              0);

    // Goodput is higher-is-better: a 20% drop fails.
    spit(new_path, "{\n"
                   "  \"fig9.Hotel.Jord.goodput_mrps\": 3.2,\n"
                   "  \"p50_us\": 3.0,\n"
                   "  \"p99_us\": 5.0\n"
                   "}\n");
    EXPECT_EQ(runCmd(kJordprof + " diff " + shellQuote(old_path) + " " +
                     shellQuote(new_path) + " --threshold 10%"),
              1);
}

TEST(JordprofDiff, RejectsEmptyAndMalformedInputs)
{
    std::string empty = tmpPath("empty_bench.json");
    spit(empty, "");
    EXPECT_NE(runCmd(kJordprof + " report " + shellQuote(empty)), 0);
    std::string garbage = tmpPath("garbage_bench.json");
    spit(garbage, "{\"p99_us\": 5.0");
    EXPECT_NE(runCmd(kJordprof + " diff " + shellQuote(garbage) + " " +
                     shellQuote(garbage)),
              0);
}

} // namespace

// --- jordsim fleet mode -----------------------------------------------------

TEST(JordsimCluster, MetricsOutIsPerServerNamespacedAndDeterministic)
{
    std::string a = tmpPath("cluster_a.csv"), b = tmpPath("cluster_b.csv");
    std::string run = kJordsim +
                      " --cluster 2 --lb jsq --traffic diurnal"
                      " --mrps 1.5 --duration-ms 4 --requests 2000"
                      " --csv --metrics-out ";
    ASSERT_EQ(runCmd(run + shellQuote(a)), 0);
    ASSERT_EQ(runCmd(run + shellQuote(b)), 0);
    std::string csv = slurp(a);
    EXPECT_NE(csv.find("cluster.server0.completed"), std::string::npos);
    EXPECT_NE(csv.find("cluster.server1.completed"), std::string::npos);
    EXPECT_NE(csv.find("cluster.goodput_mrps"), std::string::npos);
    EXPECT_EQ(csv, slurp(b));
    // Fleet mode owns the run: trace capture is a per-worker feature.
    EXPECT_NE(runCmd(kJordsim + " --cluster 2 --trace-out " +
                     shellQuote(tmpPath("cluster.trace"))),
              0);
}

TEST(JordsimCluster, HelpDocumentsFleetFlags)
{
    std::string out = tmpPath("cluster_help.txt");
    ASSERT_EQ(std::system((kJordsim + " --help > " + shellQuote(out) +
                           " 2>&1")
                              .c_str()),
              0);
    std::string help = slurp(out);
    EXPECT_NE(help.find("--cluster"), std::string::npos);
    EXPECT_NE(help.find("--lb"), std::string::npos);
    EXPECT_NE(help.find("--traffic"), std::string::npos);
    EXPECT_NE(help.find("--autoscale"), std::string::npos);
}

// --- jordsim flag/mode compatibility matrix ---------------------------------

/** Run a command and capture its combined stdout+stderr. */
int
runCapture(const std::string &cmd, std::string &out)
{
    static int seq = 0;
    std::string path = tmpPath("capture_" + std::to_string(getpid()) +
                               "_" + std::to_string(seq++) + ".txt");
    int status = std::system(
        (cmd + " > " + shellQuote(path) + " 2>&1").c_str());
    out = slurp(path);
    if (status < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(JordsimCluster, WorkerOnlyFlagsAreRejectedInClusterMode)
{
    // Each worker-only knob must fail loudly under --cluster with a
    // one-line pointer, not be silently ignored.
    const char *flags[] = {"--timeout-us 300", "--max-retries 2",
                           "--retry-backoff-us 10"};
    for (const char *flag : flags) {
        std::string out;
        EXPECT_NE(runCapture(kJordsim + " --cluster 2 --duration-ms 2 " +
                                 flag,
                             out),
                  0)
            << flag;
        EXPECT_NE(out.find("is a worker-only flag and has no effect "
                           "with --cluster (remove it)"),
                  std::string::npos)
            << out;
    }
}

TEST(JordsimCluster, FleetOnlyFlagsAreRejectedInWorkerMode)
{
    const char *flags[] = {"--lb jsq",         "--traffic diurnal",
                           "--duration-ms 4",  "--slo-us 100",
                           "--autoscale 1..4",  "--hedge-us 20",
                           "--outlier-eject",  "--retry-budget 0.2",
                           "--health-check",   "--breaker",
                           "--obs-interval-ms 1", "--obs-out /tmp/x",
                           "--obs-trace-out /tmp/x",
                           "--obs-slo-target 0.99",
                           "--obs-burn-threshold 2"};
    for (const char *flag : flags) {
        std::string out;
        EXPECT_NE(runCapture(kJordsim + " --requests 100 " + flag, out),
                  0)
            << flag;
        EXPECT_NE(
            out.find("is a fleet-only flag and requires --cluster N"),
            std::string::npos)
            << out;
    }
}

TEST(JordsimCluster, FaultPlanScopeIsCheckedAgainstMode)
{
    // Function-scope clauses drive the in-worker injector; the
    // cluster clause drives the fleet injector. Each is rejected in
    // the other mode instead of silently doing nothing.
    std::string out;
    EXPECT_NE(runCapture(kJordsim +
                             " --cluster 2 --duration-ms 2"
                             " --fault-plan crash=0.1",
                         out),
              0);
    EXPECT_NE(out.find("function-scope clauses are worker-only"),
              std::string::npos)
        << out;
    EXPECT_NE(runCapture(kJordsim +
                             " --requests 100"
                             " --fault-plan cluster:crash=0.1",
                         out),
              0);
    EXPECT_NE(out.find("the 'cluster:' clause requires --cluster N"),
              std::string::npos)
        << out;
}

TEST(JordsimCluster, ChaosRunsAreDeterministicAndConserving)
{
    std::string run =
        kJordsim +
        " --cluster 2 --mrps 1.2 --duration-ms 4 --requests 2000"
        " --fault-plan cluster:crash=0.05,gray=0.1,grayx=4"
        " --health-check --hedge-us 20 --retry-budget 0.2"
        " --outlier-eject --breaker --csv";
    std::string csv, again;
    ASSERT_EQ(runCapture(run, csv), 0);
    ASSERT_EQ(runCapture(run, again), 0);
    EXPECT_EQ(csv, again);
    // The chaos columns are present and the run saw real faults.
    EXPECT_NE(csv.find("crashes"), std::string::npos);
    EXPECT_NE(csv.find("ttr_us"), std::string::npos);
}

// --- jordsim fleet observability --------------------------------------------

namespace {

const std::string kJordmon = JORD_JORDMON_BIN;

/** A chaos fleet run with the full obs plane on. */
std::string
obsRun(const std::string &base, int jobs, const std::string &faults)
{
    return kJordsim +
           " --cluster 2 --mrps 1.2 --duration-ms 4 --requests 2000"
           " --health-check --csv --jobs " + std::to_string(jobs) +
           " " + faults + " --obs-interval-ms 0.25 --obs-out " +
           shellQuote(base) + " --obs-trace-out " +
           shellQuote(base + ".trace.json") + " --metrics-out " +
           shellQuote(base + ".metrics.csv");
}

const std::string kGrayPlan =
    "--fault-plan 'cluster:gray_server=1,grayx=20'";

} // namespace

TEST(JordsimObs, ArtifactsAreByteIdenticalAcrossJobs)
{
    std::string a = tmpPath("obs_j1"), b = tmpPath("obs_j4");
    ASSERT_EQ(runCmd(obsRun(a, 1, kGrayPlan)), 0);
    ASSERT_EQ(runCmd(obsRun(b, 4, kGrayPlan)), 0);
    for (const char *ext : {".windows.csv", ".events.csv",
                            ".trace.json", ".metrics.csv"}) {
        std::string fa = slurp(a + ext), fb = slurp(b + ext);
        EXPECT_FALSE(fa.empty()) << ext;
        EXPECT_EQ(fa, fb) << ext;
    }
    // The artifacts carry the advertised content: windowed rows, the
    // gray incident, labeled per-server trace processes, and the
    // obs-namespaced registry counters.
    EXPECT_NE(slurp(a + ".windows.csv").find("window,start_us"),
              std::string::npos);
    EXPECT_NE(slurp(a + ".events.csv").find(",gray,1,,"),
              std::string::npos);
    std::string fleet_trace = slurp(a + ".trace.json");
    EXPECT_NE(fleet_trace.find("\"jord fleet\""), std::string::npos);
    EXPECT_NE(fleet_trace.find("\"server 1\""), std::string::npos);
    EXPECT_NE(slurp(a + ".metrics.csv").find("obs.windows"),
              std::string::npos);
}

TEST(JordsimObs, ObservingDoesNotPerturbTheSimulation)
{
    // The observability plane is read-only: the cluster CSV of an
    // observed run is byte-identical to the same run with the plane
    // off.
    std::string cmd = kJordsim +
                      " --cluster 2 --mrps 1.2 --duration-ms 4"
                      " --requests 2000 --health-check --csv " +
                      kGrayPlan;
    std::string off = tmpPath("obs_off.csv");
    std::string on = tmpPath("obs_on.csv");
    ASSERT_EQ(std::system(
                  (cmd + " 2>/dev/null > " + shellQuote(off)).c_str()),
              0);
    ASSERT_EQ(std::system((cmd + " --obs-interval-ms 0.25 --obs-out " +
                           shellQuote(tmpPath("obs_on_art")) +
                           " 2>/dev/null > " + shellQuote(on))
                              .c_str()),
              0);
    EXPECT_FALSE(slurp(off).empty());
    EXPECT_EQ(slurp(off), slurp(on));
}

TEST(JordsimObs, ObsFlagsValidateAndRequireTheWindow)
{
    std::string out;
    EXPECT_NE(runCapture(kJordsim +
                             " --cluster 2 --duration-ms 2 --obs-out "
                             "/tmp/jord_obs_x",
                         out),
              0);
    EXPECT_NE(out.find("--obs-out requires --obs-interval-ms"),
              std::string::npos)
        << out;
    EXPECT_NE(runCapture(kJordsim +
                             " --cluster 2 --duration-ms 2 "
                             "--obs-slo-target 0.9",
                         out),
              0);
    EXPECT_NE(out.find("require --obs-interval-ms"),
              std::string::npos);
    EXPECT_NE(runCapture(kJordsim +
                             " --cluster 2 --duration-ms 2 "
                             "--obs-interval-ms -1",
                         out),
              0);
    EXPECT_NE(runCapture(kJordsim +
                             " --cluster 2 --duration-ms 2 "
                             "--obs-interval-ms 1 --obs-slo-target 2",
                         out),
              0);
    // --help documents the plane.
    ASSERT_EQ(runCapture(kJordsim + " --help", out), 0);
    EXPECT_NE(out.find("--obs-interval-ms"), std::string::npos);
    EXPECT_NE(out.find("--obs-out"), std::string::npos);
    EXPECT_NE(out.find("--obs-trace-out"), std::string::npos);
}

TEST(JordmonTool, ReportJoinsIncidentsAndDiffGatesRegressions)
{
    std::string gray = tmpPath("mon_gray"),
                clean = tmpPath("mon_clean");
    ASSERT_EQ(runCmd(obsRun(gray, 1, kGrayPlan)), 0);
    ASSERT_EQ(runCmd(obsRun(clean, 1, "")), 0);

    std::string gray_json = tmpPath("mon_gray.json");
    std::string clean_json = tmpPath("mon_clean.json");
    std::string heatmap = tmpPath("mon_heat.csv");
    std::string out;
    ASSERT_EQ(runCapture(kJordmon + " report " + shellQuote(gray) +
                             " --json " + shellQuote(gray_json) +
                             " --heatmap " + shellQuote(heatmap),
                         out),
              0);
    EXPECT_NE(out.find("incidents: 1"), std::string::npos) << out;
    EXPECT_NE(out.find("(0 unmatched)"), std::string::npos);
    EXPECT_NE(out.find("gray"), std::string::npos);
    EXPECT_EQ(slurp(heatmap).rfind("server,w0", 0), 0u);
    ASSERT_EQ(runCmd(kJordmon + " report " + shellQuote(clean) +
                     " --json " + shellQuote(clean_json)),
              0);

    // Self-diff passes; clean -> chaos regresses (burn and TTR grow
    // from a zero baseline); chaos -> clean improves.
    EXPECT_EQ(runCmd(kJordmon + " diff " + shellQuote(gray_json) +
                     " " + shellQuote(gray_json)),
              0);
    EXPECT_EQ(runCmd(kJordmon + " diff " + shellQuote(clean_json) +
                     " " + shellQuote(gray_json)),
              1);
    EXPECT_EQ(runCmd(kJordmon + " diff " + shellQuote(gray_json) +
                     " " + shellQuote(clean_json)),
              0);

    // Usage and I/O errors are loud.
    EXPECT_EQ(runCmd(kJordmon), 2);
    EXPECT_NE(runCmd(kJordmon + " report " +
                     shellQuote(tmpPath("mon_nonexistent"))),
              0);
    std::string garbage = tmpPath("mon_garbage.json");
    spit(garbage, "{\"mon.incidents\": 1");
    EXPECT_NE(runCmd(kJordmon + " diff " + shellQuote(garbage) + " " +
                     shellQuote(garbage)),
              0);
}

// --- detlint static analyzer ------------------------------------------------

namespace {

const std::string kDetlint = JORD_DETLINT_BIN;
const std::string kCorpusDir = JORD_LINT_CORPUS_DIR;
const std::string kSourceDir = JORD_SOURCE_DIR;

/**
 * Reduce detlint text output to the golden `RULE LINE SYMBOL` form,
 * dropping the path prefix and the trailing summary line.
 */
std::string
findingsOf(const std::string &out)
{
    std::istringstream in(out);
    std::string line, result;
    while (std::getline(in, line)) {
        if (line.rfind("detlint:", 0) == 0)
            continue; // summary
        std::size_t path_end = line.find(".cc:");
        if (path_end == std::string::npos)
            continue;
        std::size_t num = path_end + 4;
        std::size_t num_end = line.find(':', num);
        std::size_t rule = num_end + 2;
        std::size_t rule_end = line.find(' ', rule);
        std::size_t sym = line.find('[', rule_end);
        std::size_t sym_end = line.find(']', sym);
        if (num_end == std::string::npos ||
            rule_end == std::string::npos ||
            sym == std::string::npos || sym_end == std::string::npos)
            continue;
        result += line.substr(rule, rule_end - rule) + " " +
                  line.substr(num, num_end - num) + " " +
                  line.substr(sym + 1, sym_end - sym - 1) + "\n";
    }
    return result;
}

} // namespace

TEST(Detlint, CorpusGoldensMatchEveryRule)
{
    namespace fs = std::filesystem;
    unsigned corpus_files = 0;
    for (const auto &entry : fs::directory_iterator(kCorpusDir)) {
        if (entry.path().extension() != ".cc")
            continue;
        ++corpus_files;
        std::string cc = entry.path().string();
        std::string expect =
            entry.path().parent_path() /
            (entry.path().stem().string() + ".expect");
        std::string golden = slurp(expect);
        std::string out;
        int rc = runCapture(kDetlint + " --d4-scope lint_corpus " +
                                shellQuote(cc),
                            out);
        EXPECT_EQ(findingsOf(out), golden) << cc;
        // Exit code mirrors the golden: 1 with findings, 0 without.
        EXPECT_EQ(rc, golden.empty() ? 0 : 1) << cc;
    }
    // Every rule has a firing and a non-firing file, plus the two
    // suppression files.
    EXPECT_EQ(corpus_files, 12u);
}

TEST(Detlint, SuppressionWithoutJustificationIsRejected)
{
    std::string out;
    EXPECT_EQ(runCapture(kDetlint + " " +
                             shellQuote(kCorpusDir + "/supp_bad.cc"),
                         out),
              1);
    EXPECT_NE(out.find("missing justification"), std::string::npos)
        << out;
    EXPECT_NE(out.find("empty justification"), std::string::npos);
    EXPECT_NE(out.find("unknown rule 'D9'"), std::string::npos);
    // The findings a bad suppression tried to hide still fire.
    EXPECT_NE(out.find("raw 'getenv'"), std::string::npos);
}

TEST(Detlint, BaselineAdoptsLegacyFindingsAndGatesNewOnes)
{
    std::string base = tmpPath("detlint_baseline.txt");
    std::string d1 = shellQuote(kCorpusDir + "/d1_pos.cc");
    std::string d5 = shellQuote(kCorpusDir + "/d5_pos.cc");
    std::string out;
    ASSERT_EQ(runCapture(kDetlint + " --write-baseline " +
                             shellQuote(base) + " " + d1,
                         out),
              0);
    // Everything in the baseline: clean exit, nothing new.
    EXPECT_EQ(runCapture(kDetlint + " --baseline " + shellQuote(base) +
                             " " + d1,
                         out),
              0);
    EXPECT_NE(out.find("0 new finding(s), 8 baselined"),
              std::string::npos)
        << out;
    // A file outside the baseline still gates.
    EXPECT_EQ(runCapture(kDetlint + " --baseline " + shellQuote(base) +
                             " " + d1 + " " + d5,
                         out),
              1);
    EXPECT_NE(out.find("d5_pos.cc"), std::string::npos) << out;
    EXPECT_NE(out.find("8 baselined"), std::string::npos) << out;
}

TEST(Detlint, JsonAndSarifAreByteIdenticalAcrossRuns)
{
    std::string sarif_a = tmpPath("detlint_a.sarif");
    std::string sarif_b = tmpPath("detlint_b.sarif");
    std::string run = kDetlint + " --json --d4-scope lint_corpus " +
                      shellQuote(kCorpusDir);
    std::string json_a, json_b;
    EXPECT_EQ(runCapture(run + " --sarif " + shellQuote(sarif_a),
                         json_a),
              1);
    EXPECT_EQ(runCapture(run + " --sarif " + shellQuote(sarif_b),
                         json_b),
              1);
    EXPECT_EQ(json_a, json_b);
    EXPECT_FALSE(json_a.empty());
    std::string sa = slurp(sarif_a), sb = slurp(sarif_b);
    EXPECT_EQ(sa, sb);
    EXPECT_NE(sa.find("\"2.1.0\""), std::string::npos);
    EXPECT_NE(sa.find("\"ruleId\""), std::string::npos);
}

TEST(Detlint, RepoIsCleanWithAnEmptyBaseline)
{
    // The whole tree lints clean — the CI gate, enforced locally too.
    std::string out;
    EXPECT_EQ(runCapture(kDetlint + " " +
                             shellQuote(kSourceDir + "/src") + " " +
                             shellQuote(kSourceDir + "/tools") + " " +
                             shellQuote(kSourceDir + "/bench") + " " +
                             shellQuote(kSourceDir + "/tests"),
                         out),
              0)
        << out;
    EXPECT_NE(out.find("0 new finding(s)"), std::string::npos) << out;
}
