/**
 * @file
 * Tests for the Listing 1-style AppBuilder API.
 */

#include <gtest/gtest.h>

#include "runtime/builder.hh"

namespace {

using namespace jord;
using runtime::App;
using runtime::AppBuilder;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

TEST(AppBuilder, BuildsRegistryAndMix)
{
    AppBuilder app;
    app.function("src").compute(0.5).async("leaf").compute(0.2);
    app.function("leaf").compute(0.3);
    app.entry("src", 1.0);
    App built = app.build();

    ASSERT_EQ(built.registry.size(), 2u);
    auto src = built.registry.findByName("src");
    ASSERT_TRUE(src.has_value());
    const auto &spec = built.registry.at(*src).spec;
    EXPECT_NEAR(spec.execMeanUs, 0.7, 1e-9);
    ASSERT_EQ(spec.calls.size(), 1u);
    EXPECT_FALSE(spec.calls[0].sync);
    ASSERT_EQ(spec.segmentWeights.size(), 2u);
    EXPECT_NEAR(spec.segmentWeights[0], 0.5, 1e-9);
    EXPECT_NEAR(spec.segmentWeights[1], 0.2, 1e-9);
    ASSERT_EQ(built.mix.size(), 1u);
    EXPECT_EQ(built.mix[0].first, *src);
}

TEST(AppBuilder, CallIsSynchronous)
{
    AppBuilder app;
    app.function("a").compute(0.1).call("b").compute(0.1);
    app.function("b").compute(0.1);
    app.entry("a", 1.0);
    App built = app.build();
    EXPECT_TRUE(built.registry.at(0).spec.calls[0].sync);
}

TEST(AppBuilder, ForwardReferencesResolve)
{
    AppBuilder app;
    // "a" calls "b" before "b" is declared.
    app.function("a").compute(0.1).call("b");
    app.function("b").compute(0.1);
    app.entry("a", 1.0);
    App built = app.build();
    EXPECT_EQ(built.registry.at(0).spec.calls[0].target,
              built.registry.findByName("b").value());
}

TEST(AppBuilder, FunctionReturnsSameBuilder)
{
    AppBuilder app;
    app.function("x").compute(0.1);
    app.function("y").compute(0.1); // may reallocate storage
    app.function("x").compute(0.2); // still the same function
    app.entry("x", 1.0);
    App built = app.build();
    EXPECT_NEAR(built.registry.at(0).spec.execMeanUs, 0.3, 1e-9);
}

TEST(AppBuilderDeathTest, UnknownTargetFatal)
{
    AppBuilder app;
    app.function("a").compute(0.1).call("ghost");
    app.entry("a", 1.0);
    EXPECT_DEATH(app.build(), "unknown function");
}

TEST(AppBuilderDeathTest, UnknownEntryFatal)
{
    AppBuilder app;
    app.function("a").compute(0.1);
    app.entry("ghost", 1.0);
    EXPECT_DEATH(app.build(), "unknown entry");
}

TEST(AppBuilderDeathTest, EmptyMixFatal)
{
    AppBuilder app;
    app.function("a").compute(0.1);
    EXPECT_DEATH(app.build(), "no entry points");
}

TEST(AppBuilderDeathTest, CycleFatal)
{
    AppBuilder app;
    app.function("a").compute(0.1).call("b");
    app.function("b").compute(0.1).call("a");
    app.entry("a", 1.0);
    EXPECT_DEATH(app.build(), "cycle");
}

TEST(AppBuilderDeathTest, SelfRecursionFatal)
{
    AppBuilder app;
    app.function("a").compute(0.1).call("a");
    app.entry("a", 1.0);
    EXPECT_DEATH(app.build(), "cycle");
}

TEST(AppBuilderDeathTest, ZeroComputeFatal)
{
    AppBuilder app;
    app.function("a");
    app.entry("a", 1.0);
    EXPECT_DEATH(app.build(), "no compute");
}

TEST(AppBuilder, DiamondIsNotACycle)
{
    AppBuilder app;
    app.function("top").compute(0.1).async("l").async("r");
    app.function("l").compute(0.1).call("bottom");
    app.function("r").compute(0.1).call("bottom");
    app.function("bottom").compute(0.1);
    app.entry("top", 1.0);
    App built = app.build();
    EXPECT_EQ(built.registry.size(), 4u);
}

TEST(AppBuilder, SegmentWeightsDriveExecutionSplit)
{
    // A function whose compute is all *after* the sync call: the
    // child must observe the parent suspending almost immediately.
    AppBuilder app;
    app.function("late").compute(0.01).call("child").compute(2.0);
    app.function("child").compute(0.2);
    app.entry("late", 1.0);
    App built = app.build();

    WorkerConfig cfg;
    WorkerServer worker(cfg, built.registry);
    RunResult res = worker.run(0.2, 3000, built.mix);
    // Parent service ~= 0.01 + child(0.2 + overheads) + 2.0.
    double parent = res.perFunctionServiceUs[0].mean();
    EXPECT_GT(parent, 2.1);
    EXPECT_LT(parent, 4.0);
}

TEST(AppBuilder, RunsEndToEnd)
{
    AppBuilder app;
    app.function("SrcFunc")
        .compute(0.25)
        .async("Tgt1", 256)
        .call("Tgt2", 256)
        .compute(0.35);
    app.function("Tgt1").compute(0.5);
    app.function("Tgt2").compute(0.7);
    app.entry("SrcFunc", 1.0);
    App built = app.build();

    WorkerConfig cfg;
    WorkerServer worker(cfg, built.registry);
    RunResult res = worker.run(0.5, 2000, built.mix);
    EXPECT_EQ(res.completedRequests, 1600u);
    EXPECT_EQ(res.invocations, 3 * 1600u);
    // SrcFunc waits for both targets: its service dominates theirs.
    EXPECT_GT(res.perFunctionServiceUs[0].mean(),
              res.perFunctionServiceUs[2].mean());
}

} // namespace
