/**
 * @file
 * Threat-model tests (§3.1): attackers may forge arbitrary addresses,
 * access them through loads/stores/execution, and call PrivLib
 * arbitrarily. Every scenario here must end in a hardware fault or a
 * PrivLib policy rejection — never in silent access to another
 * domain's memory.
 */

#include "tests/fixture.hh"

#include "fault/fault.hh"
#include "runtime/worker.hh"
#include "sim/rng.hh"

namespace {

using jord::privlib::PrivLib;
using jord::privlib::PrivResult;
using jord::sim::Addr;
using jord::sim::Rng;
using jord::test::JordStackTest;
using jord::uat::Fault;
using jord::uat::PdId;
using jord::uat::Perm;
using jord::uat::UatAccess;

class SecurityTest : public JordStackTest
{
  protected:
    /** Allocate into @p pd from the trusted runtime context. */
    Addr
    rootMmapFor(unsigned core, PdId pd, std::uint64_t len,
                Perm prot)
    {
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = PrivLib::kRootPd;
        Addr vma = mustMmapFor(core, pd, len, prot);
        uat->csrFile(core).ucid = saved;
        return vma;
    }

    PdId victim = 0;
    PdId attacker = 0;
    Addr victimHeap = 0;
    Addr attackerHeap = 0;

    void
    SetUp() override
    {
        victim = mustCget(0);
        attacker = mustCget(1);
        victimHeap = mustMmapFor(0, victim, 8192, Perm::rw());
        attackerHeap = mustMmapFor(1, attacker, 8192, Perm::rw());
        uat->csrFile(0).ucid = victim;
        uat->csrFile(1).ucid = attacker;
    }

    void
    TearDown() override
    {
        uat->csrFile(0).ucid = 0;
        uat->csrFile(1).ucid = 0;
    }
};

TEST_F(SecurityTest, CrossDomainLoadFaults)
{
    UatAccess acc = uat->dataAccess(1, victimHeap, Perm::r());
    EXPECT_EQ(acc.fault, Fault::NoPermission);
}

TEST_F(SecurityTest, CrossDomainStoreFaults)
{
    UatAccess acc = uat->dataAccess(1, victimHeap + 100,
                                    Perm(Perm::W));
    EXPECT_EQ(acc.fault, Fault::NoPermission);
}

TEST_F(SecurityTest, CrossDomainExecFaults)
{
    UatAccess acc = uat->fetch(1, victimHeap);
    EXPECT_FALSE(acc.ok());
}

TEST_F(SecurityTest, OwnMemoryStillWorks)
{
    EXPECT_TRUE(uat->dataAccess(1, attackerHeap, Perm::rw()).ok());
    EXPECT_TRUE(uat->dataAccess(0, victimHeap, Perm::rw()).ok());
}

TEST_F(SecurityTest, ForgedAddressSweepNeverLeaks)
{
    // Probe thousands of forged addresses from the attacker's PD; the
    // only accessible bytes must lie inside the attacker's own VMAs or
    // global (shared runtime) VMAs that are not privileged.
    Rng rng(99);
    jord::uat::VaEncoding enc;
    for (int i = 0; i < 5000; ++i) {
        Addr va;
        switch (i % 3) {
          case 0: // around the victim's heap
            va = victimHeap + rng.uniformInt(std::uint64_t(16384));
            break;
          case 1: // anywhere in the UAT region
            va = enc.encode(
                static_cast<unsigned>(rng.uniformInt(std::uint64_t(26))),
                0);
            va += rng.uniformInt(std::uint64_t(1) << 20);
            break;
          default: // completely wild
            va = rng.next();
        }
        UatAccess acc = uat->dataAccess(1, va, Perm(Perm::W));
        if (acc.ok()) {
            bool own = va >= attackerHeap && va < attackerHeap + 8192;
            EXPECT_TRUE(own) << std::hex << "leak at " << va;
        }
    }
}

TEST_F(SecurityTest, VmaTableIsOutsideReach)
{
    // The VMA table lives outside the UAT VA region; untrusted loads
    // cannot even name it.
    Addr vte = table->vteAddrOf(victimHeap);
    UatAccess acc = uat->dataAccess(1, vte, Perm::r());
    EXPECT_FALSE(acc.ok());
}

TEST_F(SecurityTest, PrivlibDataNeedsPbit)
{
    UatAccess acc = uat->dataAccess(1, privlib->privDataBase(),
                                    Perm::r());
    EXPECT_EQ(acc.fault, Fault::PrivilegedAccess);
}

TEST_F(SecurityTest, PrivlibEntryOnlyThroughGates)
{
    UatAccess mid = uat->fetch(1, privlib->privCodeBase() + 24);
    EXPECT_EQ(mid.fault, Fault::BadGate);
    EXPECT_FALSE(uat->privileged(1));
}

TEST_F(SecurityTest, CsrForgeryBlocked)
{
    // The attacker (unprivileged) tries to widen its view by pointing
    // ucid at the victim's domain.
    EXPECT_EQ(uat->writeCsr(1, jord::uat::UatCsr::Ucid, victim),
              Fault::IllegalCsr);
    EXPECT_EQ(uat->csrFile(1).ucid, attacker);
}

TEST_F(SecurityTest, MunmapOfForeignVmaRejected)
{
    PrivResult res = privlib->munmap(1, victimHeap, 8192);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.fault, Fault::NoPermission);
    // The victim's mapping is intact.
    EXPECT_TRUE(uat->dataAccess(0, victimHeap, Perm::rw()).ok());
}

TEST_F(SecurityTest, MprotectOfForeignVmaRejected)
{
    EXPECT_FALSE(privlib->mprotect(1, victimHeap, 8192, Perm::rw()).ok);
}

TEST_F(SecurityTest, StealingPermissionViaPmoveRejected)
{
    // pmove moves the *caller's* permission; the attacker has none.
    PrivResult res = privlib->pmove(1, victimHeap, attacker, Perm::rw());
    EXPECT_FALSE(res.ok);
    PrivResult copy =
        privlib->pcopy(1, victimHeap, attacker, Perm::r());
    EXPECT_FALSE(copy.ok);
}

TEST_F(SecurityTest, MmapForIsRootOnly)
{
    PrivResult res = privlib->mmapFor(1, victim, 4096, Perm::rw());
    EXPECT_FALSE(res.ok);
}

TEST_F(SecurityTest, AttackerCannotEnterVictimDomain)
{
    PrivResult res = privlib->ccall(1, victim);
    EXPECT_FALSE(res.ok);
    PrivResult resume = privlib->center(1, victim);
    EXPECT_FALSE(resume.ok);
}

TEST_F(SecurityTest, AttackerCannotDestroyVictimDomain)
{
    EXPECT_FALSE(privlib->cput(1, victim).ok);
    EXPECT_TRUE(privlib->pdValid(victim));
}

TEST_F(SecurityTest, RevokedPermissionIsGoneEvenWhenCached)
{
    // The attacker gets legitimate access, caches the translation in
    // its VLB, then the victim revokes: the hardware shootdown must
    // invalidate the cached entry.
    uat->csrFile(0).ucid = victim;
    ASSERT_TRUE(privlib->pcopy(0, victimHeap, attacker, Perm::r()).ok);
    ASSERT_TRUE(uat->dataAccess(1, victimHeap, Perm::r()).ok());

    // Victim takes the permission back (root-mediated revocation).
    uat->csrFile(0).ucid = 0;
    ASSERT_TRUE(privlib
                    ->pmoveBetween(0, victimHeap, attacker,
                                   PrivLib::kRootPd, Perm::r())
                    .ok);
    EXPECT_EQ(uat->dataAccess(1, victimHeap, Perm::r()).fault,
              Fault::NoPermission);
}

TEST_F(SecurityTest, UseAfterMunmapFaults)
{
    Addr vma = rootMmapFor(1, attacker, 4096, Perm::rw());
    ASSERT_TRUE(uat->dataAccess(1, vma, Perm::rw()).ok());
    PrivResult un = privlib->munmap(1, vma, 4096);
    ASSERT_TRUE(un.ok);
    EXPECT_FALSE(uat->dataAccess(1, vma, Perm::r()).ok());
}

TEST_F(SecurityTest, RecycledVaDoesNotLeakToPreviousOwner)
{
    // Attacker frees a VMA; the same VA is handed to the victim. The
    // attacker's stale pointer (and any cached VLB entry) must fault.
    Addr vma = rootMmapFor(1, attacker, 4096, Perm::rw());
    uat->dataAccess(1, vma, Perm::rw()); // cache translation
    ASSERT_TRUE(privlib->munmap(1, vma, 4096).ok);

    // Re-allocate the same VA index into the victim's domain. The
    // magazines are per-core, so allocate from core 1 where it was
    // freed, into the victim's PD via the root API.
    Addr reused = rootMmapFor(1, victim, 4096, Perm::rw());
    ASSERT_EQ(reused, vma); // same VA recycled
    EXPECT_FALSE(uat->dataAccess(1, vma, Perm::r()).ok());
    uat->csrFile(0).ucid = victim;
    EXPECT_TRUE(uat->dataAccess(0, vma, Perm::rw()).ok());
}

TEST_F(SecurityTest, RecycledPdInheritsNothing)
{
    // Destroy the attacker PD (after cleaning up) and let a new tenant
    // receive the recycled id: the old VMAs must not be reachable.
    ASSERT_TRUE(privlib->munmap(1, attackerHeap, 8192).ok);
    uat->csrFile(1).ucid = 0;
    ASSERT_TRUE(privlib->cput(1, attacker).ok);

    PrivResult fresh = privlib->cget(1);
    ASSERT_TRUE(fresh.ok);
    EXPECT_EQ(fresh.value, attacker); // id recycled
    uat->csrFile(1).ucid = static_cast<PdId>(fresh.value);
    EXPECT_FALSE(uat->dataAccess(1, victimHeap, Perm::r()).ok());
    EXPECT_FALSE(uat->dataAccess(1, attackerHeap, Perm::r()).ok());
}

TEST_F(SecurityTest, BoundCheckStopsIntraChunkOverflow)
{
    // A 200-byte VMA sits in a 256-byte chunk; the trailing 56 bytes
    // are reserved and must not be accessible.
    Addr vma = rootMmapFor(1, attacker, 200, Perm::rw());
    EXPECT_TRUE(uat->dataAccess(1, vma + 199, Perm::r()).ok());
    EXPECT_EQ(uat->dataAccess(1, vma + 200, Perm::r()).fault,
              Fault::OutOfBound);
}

TEST_F(SecurityTest, GateCheckSurvivesVlbPressure)
{
    // Thrash the I-VLB, then retry the bad entry: the P-bit rule is
    // checked on the refill path too, not only on cached entries.
    for (int i = 0; i < 40; ++i) {
        Addr code = rootMmapFor(1, attacker, 4096, Perm::rx());
        uat->fetch(1, code);
    }
    UatAccess mid = uat->fetch(1, privlib->privCodeBase() + 24);
    EXPECT_EQ(mid.fault, Fault::BadGate);
}

TEST(SecurityRuntime, FaultingInvocationDoesNotPoisonExecutor)
{
    // End-to-end version of the threat model: a function that touches
    // memory beyond its ArgBuf takes a real UAT fault, and the runtime
    // must abort that invocation without poisoning its executor --
    // clean functions sharing the worker keep completing, the faulty
    // PD is fully reclaimed, and a follow-up run on the same worker is
    // unaffected.
    using jord::runtime::FunctionRegistry;
    using jord::runtime::FunctionSpec;
    using jord::runtime::RunResult;
    using jord::runtime::WorkerConfig;
    using jord::runtime::WorkerServer;

    FunctionRegistry reg;
    FunctionSpec clean_spec;
    clean_spec.name = "clean";
    clean_spec.execMeanUs = 0.5;
    clean_spec.execCv = 0.1;
    auto clean = reg.add(clean_spec);
    FunctionSpec faulty_spec = clean_spec;
    faulty_spec.name = "faulty";
    reg.add(faulty_spec);

    WorkerConfig cfg;
    cfg.faultPlan = jord::fault::FaultPlan::parse(
        "seed=5;faulty:perm=1.0");
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 2000, {{0, 0.5}, {1, 0.5}});

    // The mix is random, but every clean request must complete and
    // every faulty one must fail; together they conserve the measured
    // window.
    EXPECT_GT(res.completedRequests, 0u);
    EXPECT_GT(res.failedRequests, 0u);
    EXPECT_EQ(res.completedRequests + res.failedRequests, 1600u);
    EXPECT_EQ(res.perFunctionCount[clean], res.completedRequests);
    EXPECT_EQ(worker.privlib().numLivePds(), 1u);
    EXPECT_EQ(worker.liveArgBufs(), 0u);

    RunResult again = worker.run(0.5, 1000, {{clean, 1.0}});
    EXPECT_EQ(again.completedRequests, 800u);
    EXPECT_EQ(again.failedRequests, 0u);
}

} // namespace
