/**
 * @file
 * Shared test fixture: a fully assembled Jord hardware/software stack
 * (mesh, coherence, VMA table, UAT hardware, kernel, PrivLib) on the
 * default Table 2 machine.
 *
 * The JordSan checker is attached with every family enabled, so any
 * test driving the stack through this fixture is sanitized for free;
 * TearDown fails the test if a violation was recorded. Negative tests
 * that provoke violations on purpose call expectViolations() first.
 */

#ifndef JORD_TESTS_FIXTURE_HH
#define JORD_TESTS_FIXTURE_HH

#include <gtest/gtest.h>

#include <memory>
#include <sstream>

#include "check/check.hh"
#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "os/kernel.hh"
#include "privlib/privlib.hh"
#include "uat/btree_table.hh"
#include "uat/uat_system.hh"

namespace jord::test {

/** GTest fixture wiring a complete single-machine Jord stack. */
class JordStackTest : public ::testing::Test
{
  protected:
    explicit JordStackTest(bool btree = false)
    {
        mesh = std::make_unique<noc::Mesh>(cfg);
        coherence = std::make_unique<mem::CoherenceEngine>(cfg, *mesh);
        uat::VaEncoding encoding;
        if (btree)
            table = std::make_unique<uat::BTreeVmaTable>(encoding);
        else
            table = std::make_unique<uat::PlainListVmaTable>(encoding);
        uat = std::make_unique<uat::UatSystem>(cfg, *coherence, *table);
        checker = std::make_unique<check::Checker>(
            check::CheckConfig::all(), encoding);
        uat->setChecker(checker.get());
        kernel = std::make_unique<os::Kernel>(cfg);
        privlib = std::make_unique<privlib::PrivLib>(
            cfg, *coherence, *uat, *table, *kernel, checker.get());
    }

    void
    TearDown() override
    {
        if (expectViolations_)
            return;
        if (checker->totalViolations() != 0) {
            std::ostringstream report;
            checker->report(report);
            ADD_FAILURE() << "JordSan flagged this test:\n"
                          << report.str();
        }
    }

    /** Negative tests opt out of the zero-violation TearDown gate. */
    void expectViolations() { expectViolations_ = true; }

    /** Allocate a VMA in @p pd and return its base (asserts success). */
    sim::Addr
    mustMmapFor(unsigned core, uat::PdId pd, std::uint64_t len,
                uat::Perm prot)
    {
        privlib::PrivResult res =
            privlib->mmapFor(core, pd, len, prot);
        EXPECT_TRUE(res.ok) << uat::faultName(res.fault);
        return res.value;
    }

    /** Create a PD from the root domain (asserts success). */
    uat::PdId
    mustCget(unsigned core)
    {
        privlib::PrivResult res = privlib->cget(core);
        EXPECT_TRUE(res.ok) << uat::faultName(res.fault);
        return static_cast<uat::PdId>(res.value);
    }

    sim::MachineConfig cfg = sim::MachineConfig::isca25Default();
    std::unique_ptr<noc::Mesh> mesh;
    std::unique_ptr<mem::CoherenceEngine> coherence;
    std::unique_ptr<uat::VmaTableBase> table;
    std::unique_ptr<uat::UatSystem> uat;
    std::unique_ptr<check::Checker> checker;
    std::unique_ptr<os::Kernel> kernel;
    std::unique_ptr<privlib::PrivLib> privlib;

  private:
    bool expectViolations_ = false;
};

} // namespace jord::test

#endif // JORD_TESTS_FIXTURE_HH
