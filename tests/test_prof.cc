/**
 * @file
 * Tests for src/prof: PMU counter/bucket semantics, the attribution
 * windows, the sampling profiler, and the observability invariants the
 * subsystem guarantees — attaching the PMU/profiler never perturbs the
 * simulated run, same-seed runs produce identical profiles, and each
 * core's top-down buckets sum exactly to the run's total ticks.
 */

#include <gtest/gtest.h>

#include <optional>
#include <sstream>

#include "prof/pmu.hh"
#include "prof/profile_json.hh"
#include "prof/profiler.hh"
#include "runtime/worker.hh"
#include "sim/event_queue.hh"
#include "trace/metrics.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using prof::Pmu;
using prof::PmuBucket;
using prof::PmuCounter;
using prof::Profiler;
using runtime::RunResult;
using runtime::WorkerConfig;
using runtime::WorkerServer;

// --- Pmu unit behavior ------------------------------------------------------

TEST(Pmu, CountersAccumulatePerCoreAndUncore)
{
    Pmu pmu(4);
    pmu.add(1, PmuCounter::VlbDMisses);
    pmu.add(1, PmuCounter::VlbDMisses, 2);
    pmu.add(3, PmuCounter::NocHops, 7);
    pmu.addUncore(PmuCounter::VtdBackInvals, 5);
    EXPECT_EQ(pmu.counter(1, PmuCounter::VlbDMisses), 3u);
    EXPECT_EQ(pmu.counter(0, PmuCounter::VlbDMisses), 0u);
    EXPECT_EQ(pmu.uncoreCounter(PmuCounter::VtdBackInvals), 5u);
    EXPECT_EQ(pmu.totalCounter(PmuCounter::VlbDMisses), 3u);
    EXPECT_EQ(pmu.totalCounter(PmuCounter::VtdBackInvals), 5u);
}

TEST(Pmu, WindowChargesStallsAndRetiresRemainder)
{
    Pmu pmu(2);
    std::uint64_t mark = pmu.beginWindow(0);
    pmu.charge(0, PmuBucket::Noc, 30);
    pmu.charge(0, PmuBucket::VlbMissStall, 10);
    pmu.endWindow(0, /*busy=*/100, mark);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::Noc), 30u);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::VlbMissStall), 10u);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::Retire), 60u);
}

TEST(Pmu, ChargesOutsideWindowAreDropped)
{
    Pmu pmu(1);
    pmu.charge(0, PmuBucket::Noc, 50);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::Noc), 0u);
}

TEST(Pmu, ReclassifyMovesAtMostTheSourceBucket)
{
    Pmu pmu(1);
    std::uint64_t mark = pmu.beginWindow(0);
    pmu.charge(0, PmuBucket::Noc, 20);
    pmu.reclassify(0, PmuBucket::Noc, PmuBucket::VtwWalk, 50);
    pmu.endWindow(0, 20, mark);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::Noc), 0u);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::VtwWalk), 20u);
    EXPECT_EQ(pmu.bucket(0, PmuBucket::Retire), 0u);
}

TEST(Pmu, FinalizeFillsIdleSoBucketsSumToTotal)
{
    Pmu pmu(2);
    std::uint64_t mark = pmu.beginWindow(0);
    pmu.charge(0, PmuBucket::Noc, 40);
    pmu.endWindow(0, 100, mark);
    pmu.finalize(1000);
    EXPECT_EQ(pmu.totalTicks(), 1000u);
    EXPECT_EQ(pmu.clampedCores(), 0u);
    for (unsigned core = 0; core < 2; ++core) {
        std::uint64_t sum = 0;
        for (unsigned b = 0; b < Pmu::kNumBuckets; ++b)
            sum += pmu.bucket(core, static_cast<PmuBucket>(b));
        EXPECT_EQ(sum, 1000u) << "core " << core;
    }
    EXPECT_EQ(pmu.bucket(1, PmuBucket::Idle), 1000u);
}

TEST(Pmu, CsvExportsHaveStableShape)
{
    Pmu pmu(2);
    pmu.add(0, PmuCounter::RetiredOps, 3);
    pmu.finalize(10);
    std::ostringstream counters, topdown;
    pmu.writeCountersCsv(counters);
    pmu.writeTopDownCsv(topdown);
    EXPECT_NE(counters.str().find("core,counter,value"),
              std::string::npos);
    EXPECT_NE(counters.str().find("total,retired_ops,3"),
              std::string::npos);
    EXPECT_NE(topdown.str().find("core,retire,"), std::string::npos);
    EXPECT_NE(topdown.str().find("idle"), std::string::npos);
}

// --- Daemon events ----------------------------------------------------------

TEST(EventQueueDaemon, DaemonEventsDoNotAdvanceLastWorkTick)
{
    sim::EventQueue events;
    int fired = 0;
    events.schedule(100, [&] { ++fired; });
    events.scheduleDaemon(250, [&] { ++fired; });
    events.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(events.curTick(), 250u);
    EXPECT_EQ(events.lastWorkTick(), 100u);
}

// --- Flat JSON round trip ---------------------------------------------------

TEST(ProfileJson, RoundTripsAndRejectsTruncation)
{
    std::map<std::string, double> kv = {
        {"p99_us", 5.25}, {"counter.noc_hops", 12345.0}};
    std::ostringstream out;
    prof::writeFlatJson(out, kv);
    std::map<std::string, double> back;
    ASSERT_TRUE(prof::parseFlatJson(out.str(), back));
    EXPECT_EQ(back, kv);
    std::string truncated = out.str().substr(0, out.str().size() / 2);
    std::map<std::string, double> bad;
    EXPECT_FALSE(prof::parseFlatJson(truncated, bad));
    EXPECT_FALSE(prof::parseFlatJson("", bad));
}

// --- Full-run invariants ----------------------------------------------------

struct ProfiledRun {
    RunResult result;
    std::string countersCsv;
    std::string topdownCsv;
    std::string folded;
    std::string timeseriesCsv;
    sim::Tick totalTicks = 0;
    unsigned clampedCores = 0;
    std::uint64_t samples = 0;
    std::vector<std::uint64_t> bucketTotals;
};

ProfiledRun
runProfiled(double mrps = 2.0, std::uint64_t requests = 4000)
{
    workloads::Workload w = workloads::makeByName("Hotel");
    WorkerConfig cfg;
    WorkerServer worker(cfg, w.registry);
    Pmu pmu(cfg.machine.numCores);
    Profiler::Config pcfg;
    pcfg.freqGhz = cfg.machine.freqGhz;
    Profiler profiler(worker.eventQueue(), worker, pcfg);
    worker.setPmu(&pmu);
    worker.setProfiler(&profiler);

    ProfiledRun out;
    out.result = worker.run(mrps, requests, w.mix);
    std::ostringstream counters, topdown, folded, timeseries;
    pmu.writeCountersCsv(counters);
    pmu.writeTopDownCsv(topdown);
    profiler.writeFolded(folded);
    profiler.writeTimeSeriesCsv(timeseries);
    out.countersCsv = counters.str();
    out.topdownCsv = topdown.str();
    out.folded = folded.str();
    out.timeseriesCsv = timeseries.str();
    out.totalTicks = pmu.totalTicks();
    out.clampedCores = pmu.clampedCores();
    out.samples = profiler.samples();
    for (unsigned core = 0; core < pmu.numCores(); ++core) {
        std::uint64_t sum = 0;
        for (unsigned b = 0; b < Pmu::kNumBuckets; ++b)
            sum += pmu.bucket(core, static_cast<PmuBucket>(b));
        out.bucketTotals.push_back(sum);
    }
    return out;
}

TEST(ProfiledRuns, SameSeedRunsProduceIdenticalProfiles)
{
    ProfiledRun a = runProfiled();
    ProfiledRun b = runProfiled();
    EXPECT_EQ(a.countersCsv, b.countersCsv);
    EXPECT_EQ(a.topdownCsv, b.topdownCsv);
    EXPECT_EQ(a.folded, b.folded);
    EXPECT_EQ(a.timeseriesCsv, b.timeseriesCsv);
    EXPECT_EQ(a.samples, b.samples);
}

TEST(ProfiledRuns, TopDownBucketsSumToTotalTicksPerCore)
{
    ProfiledRun run = runProfiled();
    ASSERT_GT(run.totalTicks, 0u);
    EXPECT_EQ(run.clampedCores, 0u);
    for (std::size_t core = 0; core < run.bucketTotals.size(); ++core)
        EXPECT_EQ(run.bucketTotals[core], run.totalTicks)
            << "core " << core;
    EXPECT_GT(run.samples, 0u);
}

TEST(ProfiledRuns, AttachingProfilingDoesNotPerturbTheRun)
{
    workloads::Workload w = workloads::makeByName("Hotel");

    auto runOnce = [&](bool profiled, std::string &metrics_csv) {
        WorkerConfig cfg;
        WorkerServer worker(cfg, w.registry);
        trace::MetricsRegistry registry;
        worker.attachMetrics(registry);
        std::optional<Pmu> pmu;
        std::optional<Profiler> profiler;
        if (profiled) {
            pmu.emplace(cfg.machine.numCores);
            Profiler::Config pcfg;
            pcfg.freqGhz = cfg.machine.freqGhz;
            profiler.emplace(worker.eventQueue(), worker, pcfg);
            worker.setPmu(&*pmu);
            worker.setProfiler(&*profiler);
        }
        RunResult res = worker.run(2.0, 4000, w.mix);
        std::ostringstream out;
        registry.writeCsv(out);
        metrics_csv = out.str();
        return res;
    };

    std::string plain_metrics, profiled_metrics;
    RunResult plain = runOnce(false, plain_metrics);
    RunResult profiled = runOnce(true, profiled_metrics);

    EXPECT_EQ(plain_metrics, profiled_metrics);
    EXPECT_DOUBLE_EQ(plain.achievedMrps, profiled.achievedMrps);
    EXPECT_DOUBLE_EQ(plain.latencyUs.p50(), profiled.latencyUs.p50());
    EXPECT_DOUBLE_EQ(plain.latencyUs.p99(), profiled.latencyUs.p99());
    EXPECT_DOUBLE_EQ(plain.executorUtilization,
                     profiled.executorUtilization);
    EXPECT_EQ(plain.invocations, profiled.invocations);
    EXPECT_EQ(plain.completedRequests, profiled.completedRequests);
}

TEST(ProfiledRuns, FoldedStacksCaptureNestedInvocations)
{
    ProfiledRun run = runProfiled(4.0, 6000);
    // Hotel fans out (GetRecommendation -> ProfileGet etc.), so a busy
    // enough run must sample at least one nested stack, plus the
    // orchestrator pseudo-frame.
    EXPECT_NE(run.folded.find(';'), std::string::npos) << run.folded;
    EXPECT_NE(run.folded.find("orchestrator"), std::string::npos);
    // Folded weights are multiples of the sample period and the file
    // is sorted by stack name (std::map order).
    std::istringstream lines(run.folded);
    std::string prev, line;
    while (std::getline(lines, line)) {
        std::string stack = line.substr(0, line.rfind(' '));
        EXPECT_LT(prev, stack);
        prev = stack;
    }
}

} // namespace
