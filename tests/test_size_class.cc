/**
 * @file
 * Tests for the size-class-embedded VA encoding (Fig. 6), including the
 * encode/decode round-trip property and plain-list slot bijectivity.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "uat/size_class.hh"

namespace {

using jord::sim::Addr;
using jord::sim::Rng;
using jord::uat::DecodedVa;
using jord::uat::kNumSizeClasses;
using jord::uat::VaEncoding;

TEST(SizeClass, TwentySixClassesFrom128BTo4GB)
{
    EXPECT_EQ(kNumSizeClasses, 26u);
    EXPECT_EQ(VaEncoding::classSize(0), 128u);
    EXPECT_EQ(VaEncoding::classSize(25), 4ull << 30);
}

TEST(SizeClass, ClassForSizeBoundaries)
{
    EXPECT_EQ(VaEncoding::classForSize(1).value(), 0u);
    EXPECT_EQ(VaEncoding::classForSize(128).value(), 0u);
    EXPECT_EQ(VaEncoding::classForSize(129).value(), 1u);
    EXPECT_EQ(VaEncoding::classForSize(256).value(), 1u);
    EXPECT_EQ(VaEncoding::classForSize(4096).value(), 5u);
    EXPECT_EQ(VaEncoding::classForSize(4ull << 30).value(), 25u);
    EXPECT_FALSE(VaEncoding::classForSize((4ull << 30) + 1).has_value());
    EXPECT_FALSE(VaEncoding::classForSize(0).has_value());
}

TEST(SizeClass, ClassChunkAlwaysCoversRequest)
{
    Rng rng(1);
    for (int i = 0; i < 5000; ++i) {
        std::uint64_t bytes = 1 + rng.uniformInt((4ull << 30) - 1);
        auto sc = VaEncoding::classForSize(bytes);
        ASSERT_TRUE(sc.has_value());
        EXPECT_GE(VaEncoding::classSize(*sc), bytes);
        // Never more than 2x over-provisioned (power-of-two classes).
        EXPECT_LT(VaEncoding::classSize(*sc), 2 * bytes + 128);
    }
}

TEST(SizeClass, EncodedVasCarryTopPattern)
{
    VaEncoding enc;
    Addr va = enc.encode(3, 42);
    EXPECT_TRUE(VaEncoding::inUatRegion(va));
    EXPECT_FALSE(VaEncoding::inUatRegion(0x7f00'0000'0000ull));
    EXPECT_FALSE(VaEncoding::inUatRegion(0));
}

TEST(SizeClass, EncodeDecodeRoundTripProperty)
{
    VaEncoding enc;
    Rng rng(2);
    for (int i = 0; i < 20000; ++i) {
        unsigned sc =
            static_cast<unsigned>(rng.uniformInt(std::uint64_t(26)));
        std::uint64_t index = rng.uniformInt(enc.indicesPerClass(sc));
        std::uint64_t offset =
            rng.uniformInt(VaEncoding::classSize(sc));
        Addr va = enc.encode(sc, index) + offset;
        auto decoded = enc.decode(va);
        ASSERT_TRUE(decoded.has_value());
        EXPECT_EQ(decoded->sizeClass, sc);
        EXPECT_EQ(decoded->index, index);
        EXPECT_EQ(decoded->offset, offset);
    }
}

TEST(SizeClass, DistinctVmasNeverOverlap)
{
    // Any two distinct (class, index) pairs yield disjoint VA chunks.
    VaEncoding enc;
    Rng rng(3);
    for (int i = 0; i < 2000; ++i) {
        unsigned sc_a =
            static_cast<unsigned>(rng.uniformInt(std::uint64_t(26)));
        unsigned sc_b =
            static_cast<unsigned>(rng.uniformInt(std::uint64_t(26)));
        std::uint64_t idx_a =
            rng.uniformInt(enc.indicesPerClass(sc_a));
        std::uint64_t idx_b =
            rng.uniformInt(enc.indicesPerClass(sc_b));
        if (sc_a == sc_b && idx_a == idx_b)
            continue;
        Addr a_lo = enc.encode(sc_a, idx_a);
        Addr a_hi = a_lo + VaEncoding::classSize(sc_a);
        Addr b_lo = enc.encode(sc_b, idx_b);
        Addr b_hi = b_lo + VaEncoding::classSize(sc_b);
        EXPECT_TRUE(a_hi <= b_lo || b_hi <= a_lo)
            << "overlap: sc" << sc_a << "/" << idx_a << " vs sc" << sc_b
            << "/" << idx_b;
    }
}

TEST(SizeClass, SlotInterleavingIsBijective)
{
    VaEncoding enc;
    std::set<std::uint64_t> slots;
    for (unsigned sc = 0; sc < kNumSizeClasses; ++sc)
        for (std::uint64_t index = 0; index < 100; ++index)
            EXPECT_TRUE(slots.insert(enc.slotOf(sc, index)).second);
    // Slots interleave evenly: consecutive slots belong to
    // consecutive classes (f(sc, idx) = idx * 26 + sc).
    EXPECT_EQ(enc.slotOf(0, 0), 0u);
    EXPECT_EQ(enc.slotOf(1, 0), 1u);
    EXPECT_EQ(enc.slotOf(0, 1), 26u);
}

TEST(SizeClass, SlotToClassIndexInverts)
{
    VaEncoding enc;
    Rng rng(4);
    for (int i = 0; i < 5000; ++i) {
        unsigned sc =
            static_cast<unsigned>(rng.uniformInt(std::uint64_t(26)));
        std::uint64_t index = rng.uniformInt(enc.indicesPerClass(sc));
        DecodedVa back = enc.slotToClassIndex(enc.slotOf(sc, index));
        EXPECT_EQ(back.sizeClass, sc);
        EXPECT_EQ(back.index, index);
    }
}

TEST(SizeClass, VmaBaseStripsOffset)
{
    VaEncoding enc;
    Addr base = enc.encode(5, 7);
    EXPECT_EQ(enc.vmaBase(base + 1234).value(), base);
    EXPECT_FALSE(enc.vmaBase(0x1234).has_value());
}

TEST(SizeClass, OutOfRangeIndexRejectedByDecode)
{
    VaEncoding small(26 * 4); // 4 indices per class
    Addr va = small.encode(0, 3);
    EXPECT_TRUE(small.decode(va).has_value());
    // Compose an address with a too-large index by hand.
    Addr bogus = va + 4 * 128;
    EXPECT_FALSE(small.decode(bogus).has_value());
}

TEST(SizeClassDeathTest, EncodePanicsOnBadInput)
{
    VaEncoding enc;
    EXPECT_DEATH(enc.encode(26, 0), "size class");
    EXPECT_DEATH(enc.encode(0, enc.indicesPerClass(0)), "capacity");
}

TEST(SizeClass, DefaultCapacityMatches64MbTable)
{
    // 64 MB of 64 B VTEs = 1 Mi entries (§4.1).
    VaEncoding enc;
    EXPECT_EQ(enc.tableCapacity(), (64ull << 20) / 64);
}

} // namespace
