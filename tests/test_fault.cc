/**
 * @file
 * Tests for deterministic fault injection and the failure-handling
 * runtime: plan parsing, hash-based decision determinism, zero-rate
 * invisibility, retry/backoff schedules, deadline enforcement mid
 * nested ccall, PD/ArgBuf leak invariants under sustained aborts, load
 * shedding under overload, and NightCore pipe drops.
 *
 * JORD_FAULT_SEED overrides the injection seed used by the golden
 * determinism tests (default 42) so CI can run a seed matrix.
 */

#include <gtest/gtest.h>

#include <cstdlib>

#include "fault/fault.hh"
#include "sim/env.hh"
#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using fault::Decision;
using fault::FaultInjector;
using fault::FaultPlan;
using runtime::CallSpec;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

std::uint64_t
faultSeed()
{
    return sim::env::getU64("JORD_FAULT_SEED", 42);
}

FunctionSpec
makeSpec(const char *name, double exec_us,
         std::vector<CallSpec> calls = {})
{
    FunctionSpec spec;
    spec.name = name;
    spec.execMeanUs = exec_us;
    spec.execCv = 0.1;
    spec.calls = std::move(calls);
    return spec;
}

/** measured external requests == sum of terminal outcomes. */
void
expectConservation(const RunResult &res, std::uint64_t measured)
{
    EXPECT_EQ(res.completedRequests + res.failedRequests +
                  res.timedOutRequests + res.shedRequests,
              measured);
}

// --- Plan parsing -----------------------------------------------------------

TEST(FaultPlan, ParsesGlobalClause)
{
    FaultPlan plan =
        FaultPlan::parse("crash=0.1,perm=0.02,spike=0.3,spikex=4,"
                         "drop=0.05,seed=7");
    EXPECT_DOUBLE_EQ(plan.defaults.crash, 0.1);
    EXPECT_DOUBLE_EQ(plan.defaults.argbufViolation, 0.02);
    EXPECT_DOUBLE_EQ(plan.defaults.spike, 0.3);
    EXPECT_DOUBLE_EQ(plan.defaults.spikeMult, 4.0);
    EXPECT_DOUBLE_EQ(plan.defaults.pipeDrop, 0.05);
    EXPECT_EQ(plan.seed, 7u);
    EXPECT_TRUE(plan.enabled());
    EXPECT_TRUE(plan.byFunction.empty());
}

TEST(FaultPlan, ParsesPerFunctionOverrides)
{
    FaultPlan plan = FaultPlan::parse("crash=0.01;ReadPage:crash=0.5");
    EXPECT_DOUBLE_EQ(plan.defaults.crash, 0.01);
    ASSERT_EQ(plan.byFunction.size(), 1u);
    EXPECT_EQ(plan.byFunction[0].first, "ReadPage");
    EXPECT_DOUBLE_EQ(plan.byFunction[0].second.crash, 0.5);
}

TEST(FaultPlan, ZeroRatePlanIsDisabled)
{
    EXPECT_FALSE(FaultPlan{}.enabled());
    EXPECT_FALSE(FaultPlan::parse("crash=0,seed=9").enabled());
    EXPECT_TRUE(FaultPlan::parse("drop=0.001").enabled());
}

TEST(FaultPlanDeathTest, RejectsMalformedSpecs)
{
    EXPECT_DEATH(FaultPlan::parse("crash=2.0"), "out of");
    EXPECT_DEATH(FaultPlan::parse("bogus=0.1"), "key");
    EXPECT_DEATH(FaultPlan::parse("Fn:seed=3"), "seed");
    EXPECT_DEATH(FaultPlan::parse("crash"), "expected");
}

TEST(FaultInjectorDeathTest, RejectsUnknownFunctionOverride)
{
    FaultPlan plan = FaultPlan::parse("crash=0.1;NoSuchFn:crash=0.5");
    FaultInjector inj;
    EXPECT_DEATH(inj.configure(plan, {"a", "b"}, 1), "NoSuchFn");
}

// --- Decision determinism ---------------------------------------------------

TEST(FaultInjector, DecisionsAreAPureHash)
{
    FaultPlan plan =
        FaultPlan::parse("crash=0.3,perm=0.2,spike=0.2,seed=11");
    FaultInjector a, b;
    a.configure(plan, {"f"}, 1);
    b.configure(plan, {"f"}, 999); // plan seed wins over fallback
    for (std::uint64_t id = 1; id <= 500; ++id) {
        for (unsigned attempt = 0; attempt < 3; ++attempt) {
            Decision da = a.decide(id, attempt, 0, 4);
            Decision db = b.decide(id, attempt, 0, 4);
            EXPECT_EQ(da.crashSegment, db.crashSegment);
            EXPECT_EQ(da.violationSegment, db.violationSegment);
            EXPECT_DOUBLE_EQ(da.fraction, db.fraction);
            EXPECT_DOUBLE_EQ(da.spikeMult, db.spikeMult);
            // Crash and violation are mutually exclusive.
            EXPECT_FALSE(da.crashSegment >= 0 &&
                         da.violationSegment >= 0);
            if (da.crashSegment >= 0) {
                EXPECT_LT(da.crashSegment, 4);
            }
        }
    }
}

TEST(FaultInjector, AttemptsAreIndependentDraws)
{
    // A doomed attempt must not doom its retries: with crash=0.5 some
    // request that crashes on attempt 0 survives attempt 1.
    FaultPlan plan = FaultPlan::parse("crash=0.5,seed=3");
    FaultInjector inj;
    inj.configure(plan, {"f"}, 1);
    bool saw_recovery = false;
    for (std::uint64_t id = 1; id <= 200 && !saw_recovery; ++id) {
        if (inj.decide(id, 0, 0, 2).crashSegment >= 0 &&
            inj.decide(id, 1, 0, 2).crashSegment < 0)
            saw_recovery = true;
    }
    EXPECT_TRUE(saw_recovery);
}

// --- Runtime integration ----------------------------------------------------

class FaultRuntimeTest : public ::testing::Test
{
  protected:
    FunctionRegistry reg;
    runtime::FunctionId leafFn = 0;
    runtime::FunctionId parentFn = 0;
    runtime::FunctionId syncFn = 0;

    void
    SetUp() override
    {
        leafFn = reg.add(makeSpec("leaf", 0.5));
        parentFn = reg.add(makeSpec(
            "parent", 1.0,
            {CallSpec{leafFn, 512, false}, CallSpec{leafFn, 512, false}}));
        syncFn = reg.add(makeSpec("slowsync", 1.0,
                                  {CallSpec{leafFn, 512, true}}));
    }
};

TEST_F(FaultRuntimeTest, ZeroRatePlanIsInvisible)
{
    WorkerConfig plain;
    WorkerServer a(plain, reg);
    RunResult ra = a.run(1.0, 2000, {{parentFn, 1.0}});

    WorkerConfig zeroed;
    zeroed.faultPlan = FaultPlan::parse("crash=0,perm=0,seed=5");
    WorkerServer b(zeroed, reg);
    RunResult rb = b.run(1.0, 2000, {{parentFn, 1.0}});

    EXPECT_DOUBLE_EQ(ra.latencyUs.mean(), rb.latencyUs.mean());
    EXPECT_DOUBLE_EQ(ra.latencyUs.p99(), rb.latencyUs.p99());
    EXPECT_DOUBLE_EQ(ra.achievedMrps, rb.achievedMrps);
    EXPECT_EQ(ra.invocations, rb.invocations);
    EXPECT_EQ(ra.completedRequests, rb.completedRequests);
    EXPECT_EQ(rb.faultsInjected, 0u);
    EXPECT_EQ(rb.failedRequests, 0u);
}

TEST_F(FaultRuntimeTest, CertainCrashExhaustsRetryBudget)
{
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("crash=1.0,seed=2");
    cfg.maxRetries = 2;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 1000, {{leafFn, 1.0}});
    EXPECT_EQ(res.completedRequests, 0u);
    EXPECT_EQ(res.failedRequests, 800u);
    // Every measured request burns its full budget: 2 retries each.
    EXPECT_EQ(res.retries, 2 * res.failedRequests);
    EXPECT_EQ(res.invocations, 0u);
    EXPECT_GT(res.abortedInvocations, 0u);
    EXPECT_GT(res.failedUs.count(), 0u);
    expectConservation(res, 800);
}

TEST_F(FaultRuntimeTest, BackoffScheduleIsExponential)
{
    WorkerConfig cfg;
    cfg.retryBackoffUs = 10.0;
    WorkerServer worker(cfg, reg);
    sim::Cycles base = worker.retryDelayCycles(1);
    EXPECT_GT(base, 0u);
    EXPECT_EQ(worker.retryDelayCycles(2), 2 * base);
    EXPECT_EQ(worker.retryDelayCycles(3), 4 * base);
    EXPECT_EQ(worker.retryDelayCycles(4), 8 * base);
    // The shift saturates instead of overflowing.
    EXPECT_EQ(worker.retryDelayCycles(60), worker.retryDelayCycles(21));
}

TEST_F(FaultRuntimeTest, RetriesRecoverMostTransientCrashes)
{
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("crash=0.2,seed=6");
    cfg.maxRetries = 3;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 2000, {{leafFn, 1.0}});
    // P(4 consecutive crash draws) = 0.2^4 = 0.0016: out of 1600
    // measured requests only a handful may fail terminally.
    EXPECT_GT(res.retries, 0u);
    EXPECT_GT(res.completedRequests, 1500u);
    EXPECT_LT(res.failedRequests, 25u);
    expectConservation(res, 1600);
}

TEST_F(FaultRuntimeTest, DeadlineFiresMidNestedCcall)
{
    // The parent suspends on a sync ccall to a 100x slower child; a
    // 20 us deadline expires while the child runs. The parent must
    // abort at resume, reclaim its PD, and the request must report a
    // timeout -- without retries (timeouts are terminal).
    FunctionRegistry slow;
    auto slowLeaf = slow.add(makeSpec("slowleaf", 100.0));
    auto entry = slow.add(
        makeSpec("entry", 1.0, {CallSpec{slowLeaf, 512, true}}));
    WorkerConfig cfg;
    cfg.timeoutUs = 20.0;
    cfg.maxRetries = 2;
    WorkerServer worker(cfg, slow);
    RunResult res = worker.run(0.05, 400, {{entry, 1.0}});
    EXPECT_EQ(res.completedRequests, 0u);
    EXPECT_EQ(res.timedOutRequests, 320u);
    EXPECT_EQ(res.retries, 0u);
    EXPECT_GT(res.timedOutUs.count(), 0u);
    EXPECT_EQ(worker.liveArgBufs(), 0u);
    EXPECT_EQ(worker.privlib().numLivePds(), 1u);
    expectConservation(res, 320);
}

TEST_F(FaultRuntimeTest, NoPdOrArgBufLeakAfterTenThousandAborts)
{
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("crash=0.5,perm=0.1,seed=13");
    cfg.timeoutUs = 400.0;
    cfg.maxRetries = 1;
    cfg.shedCap = 256;
    WorkerServer worker(cfg, reg);
    RunResult res =
        worker.run(2.0, 10000,
                   {{parentFn, 0.5}, {syncFn, 0.3}, {leafFn, 0.2}});
    // run() already panics via verifyQuiescent() on any leak; assert
    // the externally visible invariants too.
    EXPECT_EQ(worker.liveArgBufs(), 0u);
    EXPECT_EQ(worker.privlib().numLivePds(), 1u);
    EXPECT_GT(res.faultsInjected, 1000u);
    EXPECT_GT(res.abortedInvocations, 1000u);
    EXPECT_GT(res.completedRequests, 0u);
    EXPECT_GT(res.failedRequests, 0u);
    expectConservation(res, 8000);
}

TEST_F(FaultRuntimeTest, SheddingBoundsQueueingUnderOverload)
{
    // 20x overload on a nested workload with a small admission cap:
    // the run must terminate (internal-queue dispatch is never blocked
    // by shed externals), shed most of the offered load, and still
    // complete the admitted share.
    WorkerConfig cfg;
    cfg.shedCap = 16;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(40.0, 4000, {{parentFn, 1.0}});
    EXPECT_GT(res.shedRequests, 0u);
    EXPECT_GT(res.completedRequests, 0u);
    EXPECT_EQ(res.failedRequests, 0u);
    EXPECT_EQ(worker.liveArgBufs(), 0u);
    expectConservation(res, 3200);
}

TEST_F(FaultRuntimeTest, PermInjectionRaisesRealHardwareFault)
{
    // perm=1.0 makes every invocation touch memory beyond its ArgBuf;
    // the UAT check must reject the access and the runtime must turn
    // the real uat::Fault into a terminal abort.
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("perm=1.0,seed=4");
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.3, 600, {{leafFn, 1.0}});
    EXPECT_EQ(res.completedRequests, 0u);
    EXPECT_EQ(res.failedRequests, 480u);
    // One abort per measured request (faultsInjected also counts the
    // warmup window, so it runs ahead of the measured abort count).
    EXPECT_EQ(res.abortedInvocations, 480u);
    EXPECT_GE(res.faultsInjected, res.abortedInvocations);
    EXPECT_EQ(worker.privlib().numLivePds(), 1u);
    expectConservation(res, 480);
}

TEST_F(FaultRuntimeTest, NightCorePipeDropsAreRetried)
{
    WorkerConfig cfg;
    cfg.system = SystemKind::NightCore;
    cfg.faultPlan = FaultPlan::parse("drop=0.3,seed=8");
    cfg.maxRetries = 3;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 2000, {{parentFn, 1.0}});
    // Drops hit every dispatch (root + 2 children), so an attempt
    // fails with p = 1 - 0.7^3 = 0.66; four attempts still land
    // most requests.
    EXPECT_GT(res.faultsInjected, 0u);
    EXPECT_GT(res.retries, 0u);
    EXPECT_GT(res.completedRequests, 1200u);
    EXPECT_GT(res.failedRequests, 0u);
    expectConservation(res, 1600);
}

// --- Golden determinism -----------------------------------------------------

TEST_F(FaultRuntimeTest, SameSeedFaultRunsAreByteIdentical)
{
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("crash=0.1,perm=0.05,spike=0.1");
    cfg.faultPlan.seed = faultSeed();
    cfg.timeoutUs = 300.0;
    cfg.maxRetries = 2;
    cfg.shedCap = 128;
    WorkerServer a(cfg, reg);
    WorkerServer b(cfg, reg);
    RunResult ra = a.run(2.0, 3000, {{parentFn, 0.7}, {syncFn, 0.3}});
    RunResult rb = b.run(2.0, 3000, {{parentFn, 0.7}, {syncFn, 0.3}});
    EXPECT_DOUBLE_EQ(ra.latencyUs.mean(), rb.latencyUs.mean());
    EXPECT_DOUBLE_EQ(ra.latencyUs.p99(), rb.latencyUs.p99());
    EXPECT_DOUBLE_EQ(ra.failedUs.mean(), rb.failedUs.mean());
    EXPECT_EQ(ra.completedRequests, rb.completedRequests);
    EXPECT_EQ(ra.failedRequests, rb.failedRequests);
    EXPECT_EQ(ra.timedOutRequests, rb.timedOutRequests);
    EXPECT_EQ(ra.shedRequests, rb.shedRequests);
    EXPECT_EQ(ra.retries, rb.retries);
    EXPECT_EQ(ra.faultsInjected, rb.faultsInjected);
    EXPECT_EQ(ra.abortedInvocations, rb.abortedInvocations);
}

// --- Cluster-scope plan grammar ---------------------------------------------

TEST(FaultPlanCluster, ParsesClusterClause)
{
    FaultPlan plan = FaultPlan::parse(
        "crash=0.01,seed=9;cluster:crash=0.05,restart_ms=2,"
        "recover_us=10,gray=0.1,grayx=3,window_ms=0.5,drop=0.02,"
        "delay=0.03,delay_us=150,gray_server=2,crash_at_ms=4,"
        "crash_frac=0.25");
    EXPECT_DOUBLE_EQ(plan.defaults.crash, 0.01);
    EXPECT_EQ(plan.seed, 9u);
    EXPECT_DOUBLE_EQ(plan.cluster.serverCrash, 0.05);
    EXPECT_DOUBLE_EQ(plan.cluster.restartMs, 2.0);
    EXPECT_DOUBLE_EQ(plan.cluster.recoverUsPerSlot, 10.0);
    EXPECT_DOUBLE_EQ(plan.cluster.gray, 0.1);
    EXPECT_DOUBLE_EQ(plan.cluster.grayMult, 3.0);
    EXPECT_DOUBLE_EQ(plan.cluster.windowMs, 0.5);
    EXPECT_DOUBLE_EQ(plan.cluster.linkDrop, 0.02);
    EXPECT_DOUBLE_EQ(plan.cluster.linkDelay, 0.03);
    EXPECT_DOUBLE_EQ(plan.cluster.linkDelayUs, 150.0);
    EXPECT_EQ(plan.cluster.grayServer, 2);
    EXPECT_DOUBLE_EQ(plan.cluster.crashAtMs, 4.0);
    EXPECT_DOUBLE_EQ(plan.cluster.crashFrac, 0.25);
    EXPECT_TRUE(plan.cluster.any());
    EXPECT_TRUE(plan.enabled());
}

TEST(FaultPlanCluster, ZeroRateClusterClauseIsInvisible)
{
    // A cluster clause with every rate at zero parses but arms
    // nothing: plans and injectors built from it are bit-for-bit
    // equivalent to no plan at all.
    FaultPlan plan = FaultPlan::parse("cluster:crash=0,gray=0");
    EXPECT_FALSE(plan.cluster.any());
    EXPECT_FALSE(plan.enabled());
    fault::ClusterFaultInjector inj;
    inj.configure(plan, 42);
    EXPECT_FALSE(inj.enabled());
}

TEST(FaultPlanClusterDeathTest, RejectsMalformedClusterSpecs)
{
    // Golden messages: each rejection pinpoints the offending key and
    // value so a mistyped chaos plan fails loudly, not silently.
    EXPECT_DEATH(FaultPlan::parse("cluster:bogus=0.1"),
                 "unknown cluster key 'bogus'");
    EXPECT_DEATH(FaultPlan::parse("cluster:crash=abc"),
                 "bad value 'abc' for key 'cluster:crash'");
    EXPECT_DEATH(FaultPlan::parse("cluster:crash=1.5"),
                 "'cluster:crash=1.5' out of \\[0,1\\]");
    EXPECT_DEATH(FaultPlan::parse("cluster:grayx=0.5"),
                 "grayx must be >= 1");
    EXPECT_DEATH(FaultPlan::parse("cluster:window_ms=0"),
                 "window_ms must be > 0");
    EXPECT_DEATH(FaultPlan::parse("cluster:crash=0.1;cluster:gray=1"),
                 "duplicate cluster clause");
    EXPECT_DEATH(FaultPlan::parse("crash=0.1;Fn:crash=0.2;Fn:drop=1"),
                 "duplicate clause for function 'Fn'");
}

TEST(ClusterFaultInjector, DecisionsAreAPureHash)
{
    FaultPlan plan = FaultPlan::parse(
        "seed=11;cluster:crash=0.3,gray=0.3,drop=0.3,delay=0.3");
    fault::ClusterFaultInjector a, b;
    a.configure(plan, 1);
    b.configure(plan, 2); // plan seed wins over the fallback
    ASSERT_TRUE(a.enabled());
    for (std::uint32_t s = 0; s < 8; ++s) {
        for (std::uint64_t w = 0; w < 64; ++w) {
            EXPECT_EQ(a.crashes(s, w), b.crashes(s, w));
            EXPECT_EQ(a.grayWindow(s, w), b.grayWindow(s, w));
            if (a.crashes(s, w)) {
                EXPECT_EQ(a.crashOffset(s, w), b.crashOffset(s, w));
            }
        }
    }
    for (std::uint64_t id = 0; id < 256; ++id) {
        EXPECT_EQ(a.linkDrop(id, 0, 0), b.linkDrop(id, 0, 0));
        EXPECT_EQ(a.linkDelay(id, 0, 1), b.linkDelay(id, 0, 1));
    }
}

TEST(ClusterFaultInjector, SitesAndAttemptsAreIndependentDraws)
{
    // A request's link fate must differ across attempts and copies
    // (or a retry/hedge of a dropped dispatch would be dropped
    // forever), and crash/gray draws must not alias each other.
    FaultPlan plan =
        FaultPlan::parse("seed=3;cluster:crash=0.5,gray=0.5,drop=0.5");
    fault::ClusterFaultInjector inj;
    inj.configure(plan, 42);
    bool attempt_diverged = false, copy_diverged = false,
         site_diverged = false;
    for (std::uint64_t id = 0; id < 512; ++id) {
        attempt_diverged |=
            inj.linkDrop(id, 0, 0) != inj.linkDrop(id, 1, 0);
        copy_diverged |=
            inj.linkDrop(id, 0, 0) != inj.linkDrop(id, 0, 1);
    }
    for (std::uint32_t s = 0; s < 8; ++s)
        for (std::uint64_t w = 0; w < 64; ++w)
            site_diverged |= inj.crashes(s, w) != inj.grayWindow(s, w);
    EXPECT_TRUE(attempt_diverged);
    EXPECT_TRUE(copy_diverged);
    EXPECT_TRUE(site_diverged);
}

TEST_F(FaultRuntimeTest, RerunOnSameWorkerStaysClean)
{
    // run() must fully reset failure-handling state (live ArgBuf
    // counter, deadline timers), so a second run on the same worker
    // starts from a quiescent runtime and conserves its requests.
    WorkerConfig cfg;
    cfg.faultPlan = FaultPlan::parse("crash=0.2,seed=21");
    cfg.maxRetries = 1;
    WorkerServer worker(cfg, reg);
    RunResult ra = worker.run(1.0, 1500, {{parentFn, 1.0}});
    RunResult rb = worker.run(1.0, 1500, {{parentFn, 1.0}});
    EXPECT_GT(ra.completedRequests, 0u);
    EXPECT_GT(rb.completedRequests, 0u);
    expectConservation(ra, 1200);
    expectConservation(rb, 1200);
    EXPECT_EQ(worker.liveArgBufs(), 0u);
    EXPECT_EQ(worker.privlib().numLivePds(), 1u);
}

} // namespace
