/**
 * @file
 * Tests for the fleet autoscaler.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "runtime/autoscaler.hh"
#include "runtime/builder.hh"

namespace {

using namespace jord;
using runtime::App;
using runtime::AppBuilder;
using runtime::AutoscaleConfig;
using runtime::Autoscaler;
using runtime::EpochStats;

App
simpleApp()
{
    AppBuilder app;
    app.function("f").compute(1.0).execCv(0.2);
    app.entry("f", 1.0);
    return app.build();
}

TEST(Autoscaler, HoldsAtLowLoad)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.sloUs = 60.0;
    cfg.minWorkers = 1;
    cfg.maxWorkers = 4;
    cfg.requestsPerEpoch = 2000;
    Autoscaler fleet(cfg, app.registry);

    EpochStats e = fleet.runEpoch(1.0, app.mix);
    EXPECT_TRUE(e.metSlo);
    EXPECT_EQ(e.activeWorkers, 1u);
    EXPECT_LE(fleet.activeWorkers(), 1u);
}

TEST(Autoscaler, ScalesOutUnderPressure)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.sloUs = 30.0;
    cfg.minWorkers = 1;
    cfg.maxWorkers = 4;
    cfg.requestsPerEpoch = 3000;
    Autoscaler fleet(cfg, app.registry);

    // ~1 us functions on ~28 executors saturate one worker around
    // 20 MRPS; 30 MRPS must blow the P99 and trigger scale-out.
    std::vector<EpochStats> trace =
        fleet.runTrace({30.0, 30.0, 30.0, 30.0}, app.mix);
    EXPECT_GT(fleet.activeWorkers(), 1u);
    // Once enough workers are active, the SLO is met again.
    EXPECT_TRUE(trace.back().metSlo);
}

TEST(Autoscaler, ScalesBackInWhenLoadDrops)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.sloUs = 30.0;
    cfg.maxWorkers = 4;
    cfg.requestsPerEpoch = 3000;
    Autoscaler fleet(cfg, app.registry);

    auto heavy = fleet.runTrace({30.0, 30.0, 30.0}, app.mix);
    unsigned peak = fleet.activeWorkers();
    for (const EpochStats &e : heavy)
        peak = std::max(peak, e.activeWorkers);
    EXPECT_GT(peak, 1u);
    fleet.runTrace({0.5, 0.5, 0.5, 0.5}, app.mix);
    EXPECT_EQ(fleet.activeWorkers(), 1u);
}

TEST(Autoscaler, RespectsMaxWorkers)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.sloUs = 10.0; // unreachably tight under this load
    cfg.maxWorkers = 2;
    cfg.requestsPerEpoch = 1500;
    Autoscaler fleet(cfg, app.registry);
    fleet.runTrace({40.0, 40.0, 40.0, 40.0}, app.mix);
    EXPECT_LE(fleet.activeWorkers(), 2u);
}

TEST(Autoscaler, FleetThroughputAddsUp)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.sloUs = 100.0;
    cfg.minWorkers = 2;
    cfg.maxWorkers = 2;
    cfg.requestsPerEpoch = 3000;
    Autoscaler fleet(cfg, app.registry);
    EpochStats e = fleet.runEpoch(8.0, app.mix);
    EXPECT_NEAR(e.achievedMrps, 8.0, 1.2);
    EXPECT_EQ(e.activeWorkers, 2u);
}

TEST(AutoscalerDeathTest, InvalidBoundsFatal)
{
    App app = simpleApp();
    AutoscaleConfig cfg;
    cfg.minWorkers = 5;
    cfg.maxWorkers = 2;
    EXPECT_DEATH(Autoscaler(cfg, app.registry), "bounds");
}

} // namespace
