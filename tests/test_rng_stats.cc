/**
 * @file
 * Unit and property tests for the RNG and statistics modules.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hh"
#include "stats/histogram.hh"
#include "stats/sampler.hh"
#include "stats/table.hh"

namespace {

using jord::sim::Rng;
using jord::stats::Histogram;
using jord::stats::Sampler;
using jord::stats::Table;

// --- Rng ------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    unsigned same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2u);
}

TEST(Rng, UniformStaysInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(std::uint64_t(17));
        EXPECT_LT(v, 17u);
    }
    for (int i = 0; i < 10000; ++i) {
        auto v = rng.uniformInt(std::int64_t(-5), std::int64_t(5));
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
    }
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(11);
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 4.0, 0.05);
}

TEST(Rng, NormalMomentsConverge)
{
    Rng rng(13);
    double sum = 0, sq = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive)
{
    Rng rng(17);
    for (int i = 0; i < 10000; ++i)
        EXPECT_GT(rng.lognormal(0.0, 1.0), 0.0);
}

TEST(Rng, BoundedParetoStaysInRange)
{
    Rng rng(19);
    for (int i = 0; i < 10000; ++i) {
        double v = rng.boundedPareto(1.0, 100.0, 1.5);
        EXPECT_GE(v, 1.0);
        EXPECT_LE(v, 100.0 + 1e-9);
    }
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng a(23);
    Rng child = a.split();
    EXPECT_NE(a.next(), child.next());
}

TEST(Rng, ChanceProbabilityRoughlyCorrect)
{
    Rng rng(29);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

// --- Sampler ----------------------------------------------------------------

TEST(Sampler, BasicMoments)
{
    Sampler s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0})
        s.record(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), std::sqrt(2.5), 1e-12);
}

TEST(Sampler, PercentilesMatchSortedReference)
{
    Sampler s;
    Rng rng(31);
    std::vector<double> ref;
    for (int i = 0; i < 5000; ++i) {
        double v = rng.uniform(0, 1000);
        s.record(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {0.0, 10.0, 50.0, 90.0, 99.0, 100.0}) {
        double rank = p / 100.0 * (ref.size() - 1);
        auto lo = static_cast<std::size_t>(rank);
        double frac = rank - static_cast<double>(lo);
        double expect =
            ref[lo] +
            frac * (ref[std::min(lo + 1, ref.size() - 1)] - ref[lo]);
        EXPECT_NEAR(s.percentile(p), expect, 1e-9) << "p=" << p;
    }
}

TEST(Sampler, EmptySamplerIsSafe)
{
    Sampler s;
    EXPECT_EQ(s.percentile(99), 0.0);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_TRUE(s.cdf(8).empty());
}

TEST(Sampler, SingleSample)
{
    Sampler s;
    s.record(42.0);
    EXPECT_DOUBLE_EQ(s.p50(), 42.0);
    EXPECT_DOUBLE_EQ(s.p99(), 42.0);
}

TEST(Sampler, CdfIsMonotone)
{
    Sampler s;
    Rng rng(37);
    for (int i = 0; i < 2000; ++i)
        s.record(rng.lognormal(1.0, 0.8));
    auto cdf = s.cdf(32);
    ASSERT_EQ(cdf.size(), 32u);
    for (std::size_t i = 1; i < cdf.size(); ++i) {
        EXPECT_GE(cdf[i].first, cdf[i - 1].first);
        EXPECT_GT(cdf[i].second, cdf[i - 1].second);
    }
    EXPECT_DOUBLE_EQ(cdf.back().second, 1.0);
}

TEST(Sampler, ReservoirKeepsCountAndApproximatesQuantiles)
{
    Sampler s(1000);
    for (int i = 0; i < 100000; ++i)
        s.record(i);
    EXPECT_EQ(s.count(), 100000u);
    // Uniform 0..100k: the reservoir median should be near 50k.
    EXPECT_NEAR(s.p50(), 50000.0, 5000.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 99999.0);
}

TEST(Sampler, MergeCombinesSamples)
{
    Sampler a, b;
    a.record(1.0);
    b.record(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(Sampler, ResetClears)
{
    Sampler s;
    s.record(5.0);
    s.reset();
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, ExactForSmallValues)
{
    Histogram h;
    for (std::uint64_t v = 0; v < 32; ++v)
        h.record(v);
    EXPECT_EQ(h.count(), 32u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 31u);
    EXPECT_EQ(h.percentile(50), 15u);
}

TEST(Histogram, BoundedRelativeErrorProperty)
{
    Histogram h(1ull << 40, 64);
    Rng rng(41);
    std::vector<std::uint64_t> ref;
    for (int i = 0; i < 20000; ++i) {
        auto v = static_cast<std::uint64_t>(
            rng.lognormal(8.0, 2.0));
        h.record(v);
        ref.push_back(v);
    }
    std::sort(ref.begin(), ref.end());
    for (double p : {50.0, 90.0, 99.0}) {
        auto idx = static_cast<std::size_t>(
            p / 100.0 * (ref.size() - 1));
        double exact = static_cast<double>(ref[idx]);
        double approx = static_cast<double>(h.percentile(p));
        EXPECT_NEAR(approx, exact, exact * 0.05 + 2.0) << "p=" << p;
    }
}

TEST(Histogram, MergeAddsCounts)
{
    Histogram a, b;
    a.record(10);
    b.record(20);
    b.record(30);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.max(), 30u);
}

TEST(Histogram, MergeFromEmptyIsIdentity)
{
    Histogram a, empty;
    a.record(10);
    a.record(90);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 90u);
}

TEST(Histogram, MergeIntoEmptyAdoptsEverything)
{
    Histogram a, b;
    b.record(10);
    b.record(90);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 90u);
    // The boundary percentiles must pin to the adopted min/max, not
    // to a bucket bound of the previously-empty histogram.
    EXPECT_EQ(a.percentile(0), 10u);
    EXPECT_EQ(a.percentile(100), 90u);
}

TEST(Histogram, MergeOfEmptiesStaysEmpty)
{
    Histogram a, b;
    a.merge(b);
    EXPECT_TRUE(a.empty());
    EXPECT_EQ(a.percentile(50), 0u);
}

TEST(Histogram, MergePinsPercentilesToUnionMinMax)
{
    // Disjoint ranges: the merged extreme percentiles must come from
    // the union, clamped to exact min/max even though interior
    // percentiles are bucket-approximate.
    Histogram lo, hi;
    for (std::uint64_t v = 1000; v < 1100; ++v)
        lo.record(v);
    for (std::uint64_t v = 9000; v < 9100; ++v)
        hi.record(v);
    lo.merge(hi);
    EXPECT_EQ(lo.count(), 200u);
    EXPECT_EQ(lo.percentile(0), 1000u);
    EXPECT_EQ(lo.percentile(100), 9099u);
    // Interior percentiles are bucket-quantized (values near 9000
    // share a bucket whose reported bound is 8704), so bound them to
    // the correct cluster rather than the exact value.
    EXPECT_GE(lo.percentile(99), 8000u);
    EXPECT_LE(lo.percentile(40), 1100u);
}

TEST(Histogram, MergeRejectsDifferentGeometry)
{
    Histogram a(1ull << 40, 32), b(1ull << 40, 64);
    b.record(7);
    EXPECT_DEATH(a.merge(b), "different geometry");
}

TEST(Histogram, WeightedRecord)
{
    Histogram h;
    h.recordN(5, 100);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.percentile(99), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
}

TEST(Histogram, EmptyHistogramReportsZeroEverywhere)
{
    Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.percentile(100), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, SingleSampleNeverInterpolatesOutOfRange)
{
    // 100 lands in the [96, 104) bucket; every percentile must still
    // report the one recorded value, not the bucket's lower bound.
    Histogram h;
    h.record(100);
    EXPECT_EQ(h.percentile(0), 100u);
    EXPECT_EQ(h.percentile(50), 100u);
    EXPECT_EQ(h.percentile(99), 100u);
    EXPECT_EQ(h.percentile(100), 100u);
}

TEST(Histogram, ExtremePercentilesPinToObservedRange)
{
    Histogram h;
    h.record(3);
    h.record(1000);
    EXPECT_EQ(h.percentile(0), 3u);
    EXPECT_EQ(h.percentile(100), 1000u);
    // p=0 is exactly min even when min shares a bucket with nothing.
    Histogram g;
    g.record(97);
    g.record(1000000);
    EXPECT_EQ(g.percentile(0), 97u);
    EXPECT_GE(g.percentile(100), 97u);
    EXPECT_LE(g.percentile(100), 1000000u);
}

TEST(Histogram, RenderProducesOutput)
{
    Histogram h;
    for (int i = 1; i < 1000; ++i)
        h.record(static_cast<std::uint64_t>(i));
    std::string out = h.render(8);
    EXPECT_NE(out.find('#'), std::string::npos);
}

// --- Table -------------------------------------------------------------------

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer-name", "22"});
    std::string out = t.render();
    EXPECT_NE(out.find("longer-name"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
    EXPECT_EQ(t.numRows(), 2u);
}

TEST(Table, CsvOutput)
{
    Table t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.renderCsv(), "a,b\n1,2\n");
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(3.14159, "%.2f"), "3.14");
    EXPECT_EQ(Table::cell(std::uint64_t(42)), "42");
}

TEST(TableDeathTest, WrongArityPanics)
{
    Table t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

} // namespace
