/**
 * @file
 * Tests for the src/trace subsystem: span recording and parentage
 * across a nested ccall chain, the metrics registry's find-or-create
 * and kind-collision semantics, golden determinism of the Chrome
 * trace export, and round-tripping the exported JSON through the
 * breakdown analyzer.
 */

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "runtime/worker.hh"
#include "trace/breakdown.hh"
#include "trace/export.hh"
#include "trace/integrity.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace {

using namespace jord;
using runtime::CallSpec;
using runtime::EntryMix;
using runtime::FunctionId;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

FunctionSpec
makeSpec(const char *name, double exec_us,
         std::vector<CallSpec> calls = {})
{
    FunctionSpec spec;
    spec.name = name;
    spec.execMeanUs = exec_us;
    spec.execCv = 0.1;
    spec.calls = std::move(calls);
    return spec;
}

/** root -> mid -> leaf, each level one synchronous ccall deep. */
struct Chain {
    FunctionRegistry reg;
    FunctionId leaf, mid, root;

    Chain()
    {
        leaf = reg.add(makeSpec("leaf", 0.5));
        mid = reg.add(makeSpec("mid", 0.8, {{leaf, 256, true}}));
        root = reg.add(makeSpec("root", 1.0, {{mid, 512, true}}));
    }
};

/** Run @p requests externally-arriving root invocations, traced. */
void
runChain(const Chain &chain, trace::Tracer &tracer,
         std::uint64_t requests = 60)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, chain.reg);
    worker.setTracer(&tracer);
    worker.run(0.05, requests, {{chain.root, 1.0}});
    worker.setTracer(nullptr);
}

// --- Tracer primitives ------------------------------------------------------

TEST(Tracer, RecordsSpansWithParentage)
{
    trace::Tracer tracer;
    trace::SpanId outer =
        tracer.begin("outer", trace::Category::Invoke, 2, 100);
    trace::SpanId inner = tracer.complete(
        "inner", trace::Category::Exec, 2, 150, 40, outer);
    tracer.end(outer, 400);

    ASSERT_EQ(tracer.numSpans(), 2u);
    const trace::SpanRecord &o = tracer.spans()[outer - 1];
    const trace::SpanRecord &i = tracer.spans()[inner - 1];
    EXPECT_EQ(tracer.spanName(o), "outer");
    EXPECT_EQ(o.parent, 0u);
    EXPECT_EQ(o.start, 100u);
    EXPECT_EQ(o.end, 400u);
    EXPECT_FALSE(o.open);
    EXPECT_EQ(i.parent, outer);
    EXPECT_EQ(i.end, 190u);
    EXPECT_EQ(tracer.numOpenSpans(), 0u);

    // Names are interned: a second "inner" reuses the id.
    trace::SpanId again = tracer.complete(
        "inner", trace::Category::Exec, 2, 200, 10);
    EXPECT_EQ(tracer.spans()[again - 1].name, i.name);

    tracer.clear();
    EXPECT_EQ(tracer.numSpans(), 0u);
}

TEST(Tracer, ClockAndCategoryNames)
{
    trace::Tracer tracer;
    EXPECT_EQ(tracer.now(), 0u);
    sim::Tick tick = 1234;
    tracer.setClock([&] { return tick; });
    EXPECT_EQ(tracer.now(), 1234u);

    trace::Category cat;
    ASSERT_TRUE(
        trace::categoryFromName(categoryName(trace::Category::Exec), cat));
    EXPECT_EQ(cat, trace::Category::Exec);
    EXPECT_FALSE(trace::categoryFromName("nonsense", cat));
}

// --- Metrics registry -------------------------------------------------------

TEST(TraceMetrics, FindOrCreateIsIdempotent)
{
    trace::MetricsRegistry registry;
    trace::Counter &a = registry.counter("worker.requests");
    a.add(3);
    trace::Counter &b = registry.counter("worker.requests");
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.value(), 3u);
    EXPECT_TRUE(registry.contains("worker.requests"));
    EXPECT_EQ(registry.size(), 1u);
}

TEST(TraceMetrics, NameCollisionAcrossKindsThrows)
{
    trace::MetricsRegistry registry;
    registry.counter("shared.name");
    EXPECT_THROW(registry.gauge("shared.name"), std::logic_error);
    EXPECT_THROW(registry.distribution("shared.name"), std::logic_error);
    registry.gauge("other.name");
    EXPECT_THROW(registry.counter("other.name"), std::logic_error);
}

TEST(TraceMetrics, GaugeIsSimulatedTimeWeighted)
{
    trace::Gauge gauge;
    gauge.set(0, 0);
    gauge.set(4, 100); // level 0 held for 100 ticks
    gauge.set(0, 200); // level 4 held for 100 ticks
    EXPECT_DOUBLE_EQ(gauge.mean(), 2.0);
    EXPECT_DOUBLE_EQ(gauge.max(), 4.0);
    EXPECT_DOUBLE_EQ(gauge.value(), 0.0);
}

TEST(TraceMetrics, CsvIsDeterministicAndSorted)
{
    trace::MetricsRegistry registry;
    registry.counter("b.count").add(2);
    registry.distribution("c.lat").record(10);
    registry.gauge("a.depth").set(1, 5);
    std::ostringstream first, second;
    registry.writeCsv(first);
    registry.writeCsv(second);
    EXPECT_EQ(first.str(), second.str());
    // Sorted by name: a.depth before b.count before c.lat.
    std::string csv = first.str();
    EXPECT_LT(csv.find("a.depth"), csv.find("b.count"));
    EXPECT_LT(csv.find("b.count"), csv.find("c.lat"));
}

// --- Worker integration: nested ccall chain ---------------------------------

TEST(TraceWorker, NestedCcallSpanParentage)
{
    Chain chain;
    trace::Tracer tracer;
    runChain(chain, tracer);

    const auto &spans = tracer.spans();
    ASSERT_GT(spans.size(), 0u);
    EXPECT_EQ(tracer.numOpenSpans(), 0u);

    // Parents are always recorded before their children.
    for (std::size_t i = 0; i < spans.size(); ++i)
        EXPECT_LE(spans[i].parent, i);

    // Walk every leaf invocation up its parent chain:
    // leaf Invoke -> mid Invoke -> root Invoke -> Request.
    unsigned leaves = 0;
    for (const trace::SpanRecord &rec : spans) {
        if (rec.cat != trace::Category::Invoke ||
            rec.fn != static_cast<std::int32_t>(chain.leaf))
            continue;
        ++leaves;
        ASSERT_NE(rec.parent, 0u);
        const trace::SpanRecord &mid = spans[rec.parent - 1];
        EXPECT_EQ(mid.cat, trace::Category::Invoke);
        EXPECT_EQ(mid.fn, static_cast<std::int32_t>(chain.mid));
        ASSERT_NE(mid.parent, 0u);
        const trace::SpanRecord &root = spans[mid.parent - 1];
        EXPECT_EQ(root.cat, trace::Category::Invoke);
        EXPECT_EQ(root.fn, static_cast<std::int32_t>(chain.root));
        ASSERT_NE(root.parent, 0u);
        const trace::SpanRecord &req = spans[root.parent - 1];
        EXPECT_EQ(req.cat, trace::Category::Request);
        // The child's service window nests inside its parent's.
        EXPECT_GE(rec.start, mid.start);
        EXPECT_LE(rec.end, mid.end);
        EXPECT_GE(mid.start, root.start);
        EXPECT_LE(mid.end, root.end);
        EXPECT_GE(root.start, req.start);
        EXPECT_LE(root.end, req.end);
    }
    EXPECT_EQ(leaves, 60u);

    // Exec segments hang off the invocation that ran them.
    unsigned execs = 0;
    for (const trace::SpanRecord &rec : spans) {
        if (rec.cat != trace::Category::Exec)
            continue;
        ++execs;
        ASSERT_NE(rec.parent, 0u);
        EXPECT_EQ(spans[rec.parent - 1].cat, trace::Category::Invoke);
        EXPECT_EQ(spans[rec.parent - 1].fn, rec.fn);
        EXPECT_GE(rec.end, rec.start);
    }
    EXPECT_GT(execs, 0u);
}

TEST(TraceWorker, DisabledTracerRecordsNothing)
{
    Chain chain;
    WorkerConfig cfg;
    WorkerServer worker(cfg, chain.reg);
    EXPECT_EQ(worker.tracer(), nullptr);
    worker.run(0.05, 20, {{chain.root, 1.0}});
    // Nothing to assert beyond "it ran" — the null-tracer path is the
    // default for every other runtime test in this suite.
}

// --- Golden determinism -----------------------------------------------------

TEST(TraceGolden, SameSeedSameTraceBytes)
{
    Chain chain;
    trace::Tracer first, second;
    runChain(chain, first);
    runChain(chain, second);

    ASSERT_GT(first.numSpans(), 0u);
    EXPECT_EQ(first.numSpans(), second.numSpans());
    EXPECT_EQ(trace::chromeTraceJson(first),
              trace::chromeTraceJson(second));
}

TEST(TraceGolden, ExportIsWellFormed)
{
    Chain chain;
    trace::Tracer tracer;
    runChain(chain, tracer, 10);
    tracer.setMeta("workload", "chain");

    std::string json = trace::chromeTraceJson(tracer);
    EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
    EXPECT_NE(json.find("\"otherData\""), std::string::npos);
    EXPECT_NE(json.find("\"workload\":\"chain\""), std::string::npos);
    EXPECT_EQ(json.back(), '\n');
}

TEST(TraceGolden, ExportLabelsProcessesAndTracksForPerfetto)
{
    trace::Tracer tracer;
    tracer.setProcessName(2, "server 1");
    tracer.setTrackPid(3, 2);
    tracer.setTrackName(3, "server 1");
    tracer.complete("queue", trace::Category::Dispatch, 3, 10, 5);

    std::string json = trace::chromeTraceJson(tracer);
    // Pid 0 keeps the worker default until renamed; the extra pid is
    // announced with its own process_name metadata record.
    EXPECT_NE(json.find("{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":"
                        "\"process_name\",\"args\":{\"name\":"
                        "\"jord worker\"}}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":"
                        "\"process_name\",\"args\":{\"name\":"
                        "\"server 1\"}}"),
              std::string::npos);
    // The named track is announced under its owning pid, and the
    // span lands on that pid rather than the default 0.
    EXPECT_NE(json.find("{\"ph\":\"M\",\"pid\":2,\"tid\":3,\"name\":"
                        "\"thread_name\",\"args\":{\"name\":"
                        "\"server 1\"}}"),
              std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\",\"pid\":2,\"tid\":3,"),
              std::string::npos);
    EXPECT_EQ(tracer.trackPid(3), 2u);
    EXPECT_EQ(tracer.trackPid(0), 0u);

    // Renaming pid 0 replaces the default label (fleet traces).
    tracer.setProcessName(0, "jord fleet");
    json = trace::chromeTraceJson(tracer);
    EXPECT_NE(json.find("\"jord fleet\""), std::string::npos);
    EXPECT_EQ(json.find("\"jord worker\""), std::string::npos);
}

// --- Trace-file integrity ----------------------------------------------------

TEST(TraceIntegrity, CompleteButEmptyTraceIsAcceptedTruncationIsNot)
{
    // A span-free run still writes a complete file: header, metadata
    // records, closing sentinel. That must pass the integrity check.
    trace::Tracer tracer;
    std::string json = trace::chromeTraceJson(tracer);
    std::string path = testing::TempDir() + "jord_empty_trace.json";
    {
        std::ofstream out(path, std::ios::binary);
        ASSERT_TRUE(static_cast<bool>(out));
        out << json;
    }
    trace::requireCompleteTraceFile(path);

    std::string trunc = testing::TempDir() + "jord_trunc_trace.json";
    {
        std::ofstream out(trunc, std::ios::binary);
        out << json.substr(0, json.size() / 2);
    }
    EXPECT_DEATH(trace::requireCompleteTraceFile(trunc), "truncated");

    std::string zero = testing::TempDir() + "jord_zero_trace.json";
    {
        std::ofstream out(zero, std::ios::binary);
    }
    EXPECT_DEATH(trace::requireCompleteTraceFile(zero), "zero-byte");
}

// --- Analyzer round-trip ----------------------------------------------------

TEST(TraceBreakdown, ExportRoundTripMatchesLiveAnalysis)
{
    Chain chain;
    trace::Tracer tracer;
    runChain(chain, tracer);

    trace::BreakdownReport live = trace::analyzeSpans(tracer);
    std::istringstream in(trace::chromeTraceJson(tracer));
    trace::BreakdownReport parsed = trace::analyzeChromeTrace(in);

    ASSERT_EQ(live.rows.size(), 3u);
    ASSERT_EQ(parsed.rows.size(), live.rows.size());
    for (std::size_t i = 0; i < live.rows.size(); ++i) {
        const trace::BreakdownRow &a = live.rows[i];
        const trace::BreakdownRow &b = parsed.rows[i];
        EXPECT_EQ(a.fn, b.fn);
        EXPECT_EQ(a.invocations, b.invocations);
        EXPECT_NEAR(a.serviceUs, b.serviceUs, 1e-3);
        EXPECT_NEAR(a.execUs, b.execUs, 1e-3);
        EXPECT_NEAR(a.isolationUs, b.isolationUs, 1e-3);
        EXPECT_NEAR(a.queueUs, b.queueUs, 1e-3);
    }
    const trace::BreakdownRow *leaf = live.row("leaf");
    ASSERT_NE(leaf, nullptr);
    EXPECT_EQ(leaf->fnId, static_cast<std::int32_t>(chain.leaf));
    EXPECT_GT(leaf->execUs, 0.0);
    EXPECT_FALSE(trace::renderBreakdown(live).empty());
}

} // namespace
