/**
 * @file
 * Fleet observability plane: windowed telemetry accounting, the SLO
 * burn-rate monitor, ground-truth incident events, jordmon's offline
 * incident correlation, and the end-to-end chaos <-> alert join
 * (gray server detected with nonzero latency, crash TTR inside the
 * restart envelope, zero false positives on a clean run).
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/monitor.hh"
#include "obs/obs.hh"
#include "prof/profile_json.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"

namespace {

using namespace jord;

// --- FleetObserver windowed telemetry ---------------------------------------

obs::ObsConfig
windowedConfig()
{
    obs::ObsConfig cfg;
    cfg.intervalUs = 100;
    cfg.sloTargetFrac = 0.9; // 10% error budget
    cfg.burnFastWindows = 2;
    cfg.burnSlowWindows = 4;
    cfg.burnThreshold = 2.0;
    return cfg;
}

std::vector<obs::ObsTenant>
twoTenants()
{
    return {{"gold", 50.0}, {"free", 500.0}};
}

TEST(ObsWindows, FlushAccountsPerServerAndTenant)
{
    obs::FleetObserver obs(windowedConfig(), 2, twoTenants(), 4, 1.0);
    sim::Tick w = obs.windowTicks();
    ASSERT_GT(w, 0u);

    // Server 0 / tenant 0: one completed request inside its SLO.
    obs.onArrival(10, 1, 0, 0, true);
    obs.onStart(20, 1, 0, 0, 0, true);
    obs.onComplete(40, 1, 0, 0, 0, 30'000, false);
    // Server 1 / tenant 1: one shed arrival.
    obs.onShed(15, 1, 1, false);

    std::vector<obs::ServerSnapshot> snap(2);
    snap[0].warmSlots = 3;
    obs.flushWindow(w, snap);

    // Rows are ordered server-major: aggregate first, then active
    // tenants. Server 0 saw tenant 0; server 1 saw tenant 1.
    const std::vector<obs::WindowRow> &rows = obs.windows();
    ASSERT_EQ(rows.size(), 4u);
    EXPECT_EQ(rows[0].server, 0u);
    EXPECT_EQ(rows[0].tenant, -1);
    EXPECT_EQ(rows[0].arrivals, 1u);
    EXPECT_EQ(rows[0].completions, 1u);
    EXPECT_EQ(rows[0].coldStarts, 1u);
    EXPECT_EQ(rows[0].warmSlots, 3u);
    EXPECT_GT(rows[0].p99Us, 0.0);
    EXPECT_EQ(rows[1].server, 0u);
    EXPECT_EQ(rows[1].tenant, 0);
    EXPECT_EQ(rows[2].server, 1u);
    EXPECT_EQ(rows[2].tenant, -1);
    EXPECT_EQ(rows[2].shed, 1u);
    EXPECT_EQ(rows[3].tenant, 1);

    // A second, idle window still emits the aggregate rows.
    obs.flushWindow(2 * w, snap);
    ASSERT_EQ(obs.windows().size(), 6u);
    EXPECT_EQ(obs.windows()[4].arrivals, 0u);

    // The CSV carries the documented header and the tenant names.
    std::ostringstream csv;
    obs.writeWindowsCsv(csv);
    EXPECT_NE(csv.str().find("window,start_us,end_us,server,tenant,"
                             "arrivals,completions,shed,failed,"
                             "slo_miss,cold_starts,warm_slots,"
                             "queue_depth,occupancy,p50_us,p99_us"),
              std::string::npos);
    EXPECT_NE(csv.str().find(",gold,"), std::string::npos);
    EXPECT_NE(csv.str().find(",free,"), std::string::npos);
}

TEST(ObsSloMonitor, BurnRateAlertRaisesOnBothWindowsAndClearsOnFast)
{
    obs::FleetObserver obs(windowedConfig(), 1, twoTenants(), 4, 1.0);
    sim::Tick w = obs.windowTicks();
    std::vector<obs::ServerSnapshot> snap(1);

    auto window = [&](unsigned idx, unsigned misses) {
        for (unsigned i = 0; i < 10; ++i) {
            std::uint64_t req = idx * 100 + i;
            obs.onArrival(idx * w + i, req, 0, 0, true);
            obs.onComplete(idx * w + i + 1, req, 0, 0, 0, 1000,
                           i < misses);
        }
        obs.flushWindow((idx + 1) * w, snap);
    };

    // Window 0: every request misses its SLO. Burn = (10/10)/0.1 =
    // 10x the budget on both the fast and slow windows -> raise.
    window(0, 10);
    ASSERT_EQ(obs.events().size(), 1u);
    EXPECT_EQ(obs.events()[0].kind, obs::EventKind::AlertRaise);
    EXPECT_EQ(obs.events()[0].tenant, 0);
    EXPECT_NEAR(obs.events()[0].value, 10.0, 1e-9);

    // Window 1 is clean, but the fast (2-window) burn is still
    // (10/20)/0.1 = 5 > 2: the alert holds.
    window(1, 0);
    EXPECT_EQ(obs.events().size(), 1u);

    // Window 2: the fast window is now all-clean -> clear.
    window(2, 0);
    ASSERT_EQ(obs.events().size(), 2u);
    EXPECT_EQ(obs.events()[1].kind, obs::EventKind::AlertClear);

    // The tenant that never erred never alerts.
    trace::MetricsRegistry registry;
    obs.attachMetrics(registry);
    std::ostringstream csv;
    registry.writeCsv(csv);
    EXPECT_NE(csv.str().find("obs.alerts_raised,counter,,1"),
              std::string::npos)
        << csv.str();
    EXPECT_NE(csv.str().find("obs.alerts_cleared,counter,,1"),
              std::string::npos);
}

TEST(ObsIncidents, CrashGrayAndFinalizeCloseOpenIncidents)
{
    obs::FleetObserver obs(windowedConfig(), 2, twoTenants(), 4, 1.0);
    std::vector<obs::ServerSnapshot> snap(2);

    obs.onCrash(1000, 0);
    obs.onRestart(3000, 0);
    obs.onGrayRun(2000, 4000, 1);
    obs.onCrash(5000, 1); // never restarts inside the horizon

    obs.finalize(obs.windowTicks(), snap);

    std::ostringstream csv;
    obs.writeEventsCsv(csv);
    std::string text = csv.str();
    EXPECT_EQ(text.rfind("time_us,end_us,kind,server,tenant,value\n",
                         0),
              0u);
    // Crash on server 0: closed by its restart (1us -> 3us).
    EXPECT_NE(text.find("1.000,3.000,crash,0,,"), std::string::npos)
        << text;
    EXPECT_NE(text.find("2.000,4.000,gray,1,,"), std::string::npos);
    // The still-down server's crash ends at the end of the run.
    EXPECT_NE(text.find("5.000,100.000,crash,1,,"),
              std::string::npos)
        << text;
}

// --- Counter interval snapshots (windowed streams) --------------------------

TEST(ObsMetrics, CounterIntervalResetKeepsCumulativeValue)
{
    trace::Counter c;
    c.add(5);
    EXPECT_EQ(c.intervalReset(), 5u);
    EXPECT_EQ(c.value(), 5u);
    c.add(3);
    EXPECT_EQ(c.intervalReset(), 3u);
    EXPECT_EQ(c.intervalReset(), 0u);
    // The cumulative count survives every interval snapshot.
    EXPECT_EQ(c.value(), 8u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(c.intervalReset(), 0u);
}

TEST(ObsMetrics, RegistryRowsAreNamespacedUnderObsPrefix)
{
    obs::FleetObserver obs(windowedConfig(), 1, twoTenants(), 4, 1.0);
    std::vector<obs::ServerSnapshot> snap(1);
    obs.onGrayRun(0, 10, 0);
    obs.flushWindow(obs.windowTicks(), snap);

    trace::MetricsRegistry registry;
    registry.counter("cluster.completed").add(7);
    obs.attachMetrics(registry);

    std::ostringstream csv;
    registry.writeCsv(csv);
    std::string text = csv.str();
    // The obs counters share the registry without colliding with the
    // cluster namespace, and the CSV stays sorted.
    for (const char *key :
         {"obs.windows", "obs.events", "obs.incidents",
          "obs.alerts_raised", "obs.alerts_cleared"})
        EXPECT_NE(text.find(key), std::string::npos) << key;
    EXPECT_LT(text.find("cluster.completed"), text.find("obs."));
}

// --- Fleet trace labeling ---------------------------------------------------

TEST(ObsTrace, ServersGetLabeledPerfettoProcesses)
{
    obs::ObsConfig cfg;
    cfg.trace = true;
    obs::FleetObserver obs(cfg, 2, twoTenants(), 4, 1.0);
    ASSERT_NE(obs.tracer(), nullptr);

    obs.onArrival(10, 1, 0, 1, true);
    obs.onQueue(10, 1, 0, 1);
    obs.onStart(20, 1, 0, 1, 0, false);
    obs.onComplete(40, 1, 0, 1, 0, 30'000, false);

    std::string json = trace::chromeTraceJson(*obs.tracer());
    // One named process per server plus the front-end LB, and the
    // per-server track bound to its pid.
    EXPECT_NE(json.find("\"process_name\",\"args\":{\"name\":"
                        "\"jord fleet\"}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"name\":\"server 0\""), std::string::npos);
    EXPECT_NE(json.find("\"name\":\"server 1\""), std::string::npos);
    EXPECT_EQ(obs.tracer()->trackPid(2), 2u);
    // Fleet span kinds land on the server's track.
    EXPECT_NE(json.find("\"lb_decision\""), std::string::npos);
    EXPECT_NE(json.find("\"warm_hit\""), std::string::npos);
}

// --- jordmon join logic -----------------------------------------------------

obs::MonEvent
monEvent(double start_us, double end_us, const char *kind,
         int server = -1, const char *tenant = "")
{
    obs::MonEvent event;
    event.timeUs = start_us;
    event.endUs = end_us;
    event.kind = kind;
    event.server = server;
    event.tenant = tenant;
    return event;
}

obs::MonWindow
monWindow(std::uint64_t idx, double start_us, double end_us,
          int server, const char *tenant, std::uint64_t arrivals,
          std::uint64_t slo_miss)
{
    obs::MonWindow window;
    window.window = idx;
    window.startUs = start_us;
    window.endUs = end_us;
    window.server = server;
    window.tenant = tenant;
    window.arrivals = arrivals;
    window.sloMiss = slo_miss;
    return window;
}

TEST(MonitorJoin, MergesOverlapsAttributesAlertsAndComputesBurn)
{
    std::vector<obs::MonEvent> events = {
        monEvent(1000, 3000, "crash", 0),
        monEvent(2000, 4000, "gray", 1), // overlaps -> same incident
        monEvent(50000, 50000, "link_drop", 1), // second incident
        monEvent(2500, 2500, "alert_raise", -1, "gold"),
        monEvent(99000, 99000, "alert_raise", -1, "gold"), // false +
    };
    std::vector<obs::MonWindow> windows = {
        monWindow(0, 0, 2000, 0, "*", 100, 10),
        monWindow(0, 0, 2000, 0, "gold", 100, 10),
        monWindow(0, 0, 2000, 1, "*", 50, 0),
        monWindow(1, 2000, 4000, 2, "*", 80, 40), // not in incident
    };

    obs::MonReport report =
        obs::buildReport(events, windows, 5000.0);

    ASSERT_EQ(report.incidents.size(), 2u);
    const obs::MonIncident &merged = report.incidents[0];
    EXPECT_EQ(merged.kind, "crash+gray");
    EXPECT_EQ(merged.startUs, 1000.0);
    EXPECT_EQ(merged.endUs, 4000.0);
    EXPECT_EQ(merged.ttrUs, 3000.0);
    ASSERT_EQ(merged.servers, (std::vector<int>{0, 1}));
    EXPECT_EQ(merged.alerts, 1u);
    EXPECT_EQ(merged.detectUs, 1500.0);
    // Burn counts only aggregate windows on the incident's servers:
    // (10 + 0) errors over (100 + 50) arrivals.
    EXPECT_EQ(merged.errorCount, 10u);
    EXPECT_EQ(merged.arrivalCount, 150u);
    ASSERT_EQ(merged.tenants, (std::vector<std::string>{"gold"}));

    // The isolated link drop: no alert ever covered it.
    EXPECT_EQ(report.incidents[1].kind, "link_drop");
    EXPECT_EQ(report.incidents[1].detectUs, -1.0);

    EXPECT_EQ(report.alertsTotal, 2u);
    EXPECT_EQ(report.unmatchedAlerts, 1u);
    EXPECT_EQ(report.maxTtrUs, 3000.0);
    EXPECT_EQ(report.maxDetectUs, 1500.0);
    // Fleet burn uses every aggregate row: 50 / 230.
    EXPECT_EQ(report.errorCount, 50u);
    EXPECT_EQ(report.arrivalCount, 230u);

    std::string text = obs::renderReport(report);
    EXPECT_NE(text.find("incidents: 2, alerts: 2 (1 unmatched)"),
              std::string::npos)
        << text;
    EXPECT_NE(text.find("detect=never"), std::string::npos);

    std::map<std::string, double> flat = obs::flatReport(report);
    EXPECT_EQ(flat.at("mon.incidents"), 2.0);
    EXPECT_EQ(flat.at("mon.unmatched_alerts"), 1.0);
    EXPECT_EQ(flat.at("incident0.detect_us"), 1500.0);
    EXPECT_EQ(flat.at("incident1.detect_us"), -1.0);
    EXPECT_EQ(flat.at("incident0.servers"), 2.0);
}

TEST(MonitorJoin, HeatmapIsServerByWindowP99)
{
    std::vector<obs::MonWindow> windows = {
        monWindow(0, 0, 100, 0, "*", 10, 0),
        monWindow(1, 100, 200, 0, "*", 10, 0),
        monWindow(1, 100, 200, 1, "*", 10, 0),
        monWindow(0, 0, 100, 0, "gold", 10, 0), // tenant rows skipped
    };
    windows[0].p99Us = 12.5;
    windows[1].p99Us = 80.0;
    windows[2].p99Us = 7.25;
    std::ostringstream out;
    obs::writeHeatmapCsv(windows, out);
    EXPECT_EQ(out.str(), "server,w0,w1\n"
                         "0,12.500,80.000\n"
                         "1,0.000,7.250\n");
}

TEST(MonitorJoin, CsvParsersRejectForeignHeaders)
{
    std::istringstream bad_windows("nope\n");
    EXPECT_DEATH(obs::parseWindowsCsv(bad_windows, "t"),
                 "not a jordsim obs windows CSV");
    std::istringstream bad_events("time_us,nope\n");
    EXPECT_DEATH(obs::parseEventsCsv(bad_events, "t"),
                 "not a jordsim obs events CSV");
}

// --- End-to-end chaos <-> alert correlation ---------------------------------

std::string
shQuote(const std::string &s)
{
    return "'" + s + "'";
}

int
run(const std::string &cmd)
{
    int status = std::system((cmd + " >/dev/null 2>&1").c_str());
    if (status < 0)
        return -1;
    return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

std::map<std::string, double>
jordmonSummary(const std::string &base)
{
    std::string json_path = base + ".mon.json";
    EXPECT_EQ(run(std::string(JORD_JORDMON_BIN) + " report " +
                  shQuote(base) + " --json " + shQuote(json_path)),
              0);
    std::ifstream in(json_path);
    EXPECT_TRUE(static_cast<bool>(in)) << json_path;
    std::ostringstream ss;
    ss << in.rdbuf();
    std::map<std::string, double> kv;
    EXPECT_TRUE(jord::prof::parseFlatJson(ss.str(), kv));
    return kv;
}

std::string
obsRun(const std::string &base, const std::string &extra)
{
    return std::string(JORD_JORDSIM_BIN) +
           " --cluster 2 --mrps 1.2 --duration-ms 4"
           " --requests 2000 --health-check --csv"
           " --obs-interval-ms 0.25 --obs-out " +
           shQuote(base) + " " + extra;
}

TEST(ObsCorrelation, GrayServerIsDetectedAndCleanRunStaysSilent)
{
    std::string gray = testing::TempDir() + "jord_obs_gray";
    ASSERT_EQ(run(obsRun(
                  gray,
                  "--fault-plan 'cluster:gray_server=1,grayx=20'")),
              0);
    std::map<std::string, double> mon = jordmonSummary(gray);
    // The gray server is one incident, detected by the burn-rate
    // monitor with a nonzero (positive, interval-quantised) latency
    // and no false positives.
    EXPECT_EQ(mon.at("mon.incidents"), 1.0);
    EXPECT_GE(mon.at("mon.alerts"), 1.0);
    EXPECT_EQ(mon.at("mon.unmatched_alerts"), 0.0);
    EXPECT_GT(mon.at("mon.max_detect_us"), 0.0);
    EXPECT_LE(mon.at("mon.max_detect_us"), 2000.0);
    EXPECT_GT(mon.at("incident0.burn"), 0.1);

    // The same seed without the fault plan: no incidents, no alerts,
    // zero false positives.
    std::string clean = testing::TempDir() + "jord_obs_clean";
    ASSERT_EQ(run(obsRun(clean, "")), 0);
    std::map<std::string, double> silent = jordmonSummary(clean);
    EXPECT_EQ(silent.at("mon.incidents"), 0.0);
    EXPECT_EQ(silent.at("mon.alerts"), 0.0);
    EXPECT_EQ(silent.at("mon.unmatched_alerts"), 0.0);
}

TEST(ObsCorrelation, CrashTtrStaysInsideTheRestartEnvelope)
{
    std::string base = testing::TempDir() + "jord_obs_crash";
    ASSERT_EQ(
        run(obsRun(base,
                   "--fault-plan 'cluster:crash_at_ms=1,"
                   "crash_frac=0.5,restart_ms=2' --retry-budget 0.2")),
        0);
    std::map<std::string, double> mon = jordmonSummary(base);
    ASSERT_EQ(mon.at("mon.incidents"), 1.0);
    EXPECT_GT(mon.at("incident0.detect_us"), 0.0);
    // TTR = scripted restart (2 ms) plus the per-slot warm-pool
    // recovery tail; well under one extra millisecond here.
    EXPECT_GE(mon.at("incident0.ttr_us"), 2000.0);
    EXPECT_LE(mon.at("incident0.ttr_us"), 3000.0);
    EXPECT_EQ(mon.at("mon.unmatched_alerts"), 0.0);
}

} // namespace
