/**
 * @file
 * Tests for JordSan, the isolation sanitizer (src/check).
 *
 * The positive tests prove a correct stack runs clean under every
 * checker family. The negative tests deliberately break the system —
 * skip one core in the VTD shootdown fan-out, leak an ArgBuf, corrupt
 * a difftable mirror — and prove the sanitizer catches each bug with
 * a pinpointed diagnostic, which is the whole point of having it.
 */

#include <sstream>

#include "tests/fixture.hh"
#include "uat/vlb.hh"

namespace {

using jord::check::CheckConfig;
using jord::check::Checker;
using jord::check::CheckFamily;
using jord::check::Violation;
using jord::check::ViolationKind;
using jord::sim::Addr;
using jord::test::JordStackTest;
using jord::uat::PdId;
using jord::uat::Perm;
using jord::uat::Vlb;
using jord::uat::VlbEntry;
using jord::uat::Vte;

// --- CheckConfig parsing -------------------------------------------------------

TEST(CheckConfigParse, EmptySpecEnablesEveryFamily)
{
    CheckConfig cfg;
    ASSERT_TRUE(CheckConfig::parse("", cfg));
    EXPECT_TRUE(cfg.access);
    EXPECT_TRUE(cfg.vlb);
    EXPECT_TRUE(cfg.difftable);
}

TEST(CheckConfigParse, SubsetSelectsOnlyNamedFamilies)
{
    CheckConfig cfg;
    ASSERT_TRUE(CheckConfig::parse("vlb,difftable", cfg));
    EXPECT_FALSE(cfg.access);
    EXPECT_TRUE(cfg.vlb);
    EXPECT_TRUE(cfg.difftable);
    CheckConfig one;
    ASSERT_TRUE(CheckConfig::parse("access", one));
    EXPECT_TRUE(one.access);
    EXPECT_FALSE(one.vlb);
    EXPECT_FALSE(one.difftable);
}

TEST(CheckConfigParse, UnknownFamilyIsRejected)
{
    CheckConfig cfg;
    EXPECT_FALSE(CheckConfig::parse("vlbb", cfg));
    EXPECT_FALSE(CheckConfig::parse("access,tables", cfg));
}

// --- Stack-level tests ---------------------------------------------------------

class CheckTest : public JordStackTest
{
  protected:
    PdId pd = 0;
    Addr vma = 0;

    void
    SetUp() override
    {
        pd = mustCget(0);
        vma = mustMmapFor(0, pd, 4096, Perm::rw());
    }

    /** Access @p va from @p core with the ucid set to @p as. */
    jord::uat::UatAccess
    accessAs(unsigned core, PdId as, Addr va, Perm need)
    {
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = as;
        jord::uat::UatAccess acc = uat->dataAccess(core, va, need);
        uat->csrFile(core).ucid = saved;
        return acc;
    }

    /** Run a PrivLib call with the ucid set to @p as. */
    template <typename Fn>
    auto
    runAs(unsigned core, PdId as, Fn &&fn)
    {
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = as;
        auto res = fn();
        uat->csrFile(core).ucid = saved;
        return res;
    }

    /** First logged violation of @p kind, or nullptr. */
    const Violation *
    firstOfKind(ViolationKind kind) const
    {
        for (const Violation &v : checker->log())
            if (v.kind == kind)
                return &v;
        return nullptr;
    }
};

TEST_F(CheckTest, CleanLifecycleRunsWithZeroViolations)
{
    // Exercise fills on two cores, a downgrade (with its shootdown), a
    // transfer, and a full teardown; nothing may trip the sanitizer.
    EXPECT_TRUE(accessAs(1, pd, vma, Perm::rw()).ok());
    EXPECT_TRUE(accessAs(2, pd, vma + 64, Perm::r()).ok());
    ASSERT_TRUE(runAs(0, pd, [&] {
        return privlib->mprotect(0, vma, 4096, Perm::r());
    }).ok);
    EXPECT_TRUE(accessAs(1, pd, vma, Perm::r()).ok());

    PdId other = mustCget(0);
    ASSERT_TRUE(runAs(0, pd, [&] {
        return privlib->pmove(0, vma, other, Perm::r());
    }).ok);
    EXPECT_TRUE(accessAs(1, other, vma, Perm::r()).ok());

    ASSERT_TRUE(runAs(0, other, [&] {
        return privlib->munmap(0, vma, 4096);
    }).ok);
    ASSERT_TRUE(privlib->cput(0, other).ok);
    ASSERT_TRUE(privlib->cput(0, pd).ok);
    EXPECT_EQ(checker->totalViolations(), 0u);
}

TEST_F(CheckTest, DeniedAccessesMatchTheShadowModel)
{
    PdId other = mustCget(0);
    // The hardware and the shadow model must agree on both denials.
    EXPECT_FALSE(accessAs(1, other, vma, Perm::r()).ok());
    EXPECT_FALSE(accessAs(1, pd, vma, Perm(Perm::X)).ok());
    EXPECT_EQ(checker->totalViolations(), 0u);
}

TEST_F(CheckTest, SkippedShootdownCoreIsCaughtEagerly)
{
    // Fill the VLBs of cores 1 and 2, then break the hardware: the VTD
    // fan-out skips core 2. The downgrade's shootdown reaches core 1
    // only, and the oracle must flag core 2 at shootdown time, before
    // the stale entry is ever used.
    expectViolations();
    ASSERT_TRUE(accessAs(1, pd, vma, Perm::rw()).ok());
    ASSERT_TRUE(accessAs(2, pd, vma, Perm::rw()).ok());
    uat->debugSkipShootdownCore(2);
    ASSERT_TRUE(runAs(0, pd, [&] {
        return privlib->mprotect(0, vma, 4096, Perm::r());
    }).ok);

    EXPECT_GE(checker->violations(CheckFamily::Vlb), 1u);
    const Violation *v = firstOfKind(ViolationKind::MissedShootdown);
    ASSERT_NE(v, nullptr);
    // The diagnostic pinpoints the forgotten holder and the VTE.
    EXPECT_EQ(v->core, 2u);
    EXPECT_EQ(v->vteAddr, table->vteAddrOf(vma));
}

TEST_F(CheckTest, StaleTranslationUseIsCaught)
{
    // Same broken fan-out, but this time the forgotten core keeps
    // translating through its stale entry; the use itself must also
    // be flagged, pinned to the stale entry's VMA.
    expectViolations();
    ASSERT_TRUE(accessAs(1, pd, vma, Perm::rw()).ok());
    uat->debugSkipShootdownCore(1);
    ASSERT_TRUE(runAs(0, pd, [&] {
        return privlib->mprotect(0, vma, 4096, Perm::r());
    }).ok);
    ASSERT_TRUE(accessAs(1, pd, vma + 8, Perm::rw()).ok())
        << "the broken hardware should still allow the write";

    const Violation *v = firstOfKind(ViolationKind::StaleTranslation);
    ASSERT_NE(v, nullptr);
    EXPECT_EQ(v->core, 1u);
    EXPECT_EQ(v->va, vma);
    EXPECT_EQ(v->pd, pd);
}

TEST_F(CheckTest, ViolationReportDumpsTheFirstViolation)
{
    expectViolations();
    ASSERT_TRUE(accessAs(1, pd, vma, Perm::rw()).ok());
    uat->debugSkipShootdownCore(1);
    ASSERT_TRUE(runAs(0, pd, [&] {
        return privlib->mprotect(0, vma, 4096, Perm::r());
    }).ok);
    ASSERT_GT(checker->totalViolations(), 0u);

    std::ostringstream os;
    checker->report(os);
    std::string report = os.str();
    EXPECT_NE(report.find("missed-shootdown"), std::string::npos);
    std::ostringstream va;
    va << std::hex << table->vteAddrOf(vma);
    EXPECT_NE(report.find(va.str()), std::string::npos);
}

TEST_F(CheckTest, DifftableMirrorCorruptionIsCaught)
{
    // Corrupt the B-tree mirror behind the checker's back and probe:
    // the differential checker must see the mirrors diverge.
    expectViolations();
    Vte *mirror = checker->mirrorBtree()->vteFor(vma);
    ASSERT_NE(mirror, nullptr);
    *mirror = Vte{};
    checker->difftableProbe(vma);

    EXPECT_EQ(checker->violations(CheckFamily::Difftable), 1u);
    const Violation *v = firstOfKind(ViolationKind::TableDivergence);
    ASSERT_NE(v, nullptr);
    EXPECT_NE(v->detail.find("B-tree lost the mapping"),
              std::string::npos);
}

// --- Unit-level lifecycle checks ----------------------------------------------

TEST(CheckerUnit, LeakedArgBufIsFlaggedAtRunEnd)
{
    Checker ck(CheckConfig::all());
    ck.argBufMapped(0x4000, 256, 42);
    ck.argBufMapped(0x8000, 256, 43);
    ck.argBufFreed(0x4000);
    ck.onRunEnd();

    ASSERT_EQ(ck.totalViolations(), 1u);
    const Violation &v = ck.log().front();
    EXPECT_EQ(v.kind, ViolationKind::ArgBufLeak);
    EXPECT_EQ(v.va, 0x8000u);
    EXPECT_EQ(v.reqId, 43u);
}

TEST(CheckerUnit, BalancedArgBufLifecycleIsQuiet)
{
    Checker ck(CheckConfig::all());
    ck.argBufMapped(0x4000, 256, 42);
    ck.argBufFreed(0x4000);
    ck.onRunEnd();
    EXPECT_EQ(ck.totalViolations(), 0u);
}

TEST(CheckerUnit, DoublePdCreateAndDestroyAreFlagged)
{
    Checker ck(CheckConfig::all());
    ck.onPdCreated(5, 0);
    ck.onPdCreated(5, 0);
    EXPECT_NE(ck.log().front().kind, ViolationKind::DoublePdDestroy);
    EXPECT_EQ(ck.log().front().kind, ViolationKind::DoublePdCreate);
    ck.onPdDestroyed(5);
    ck.onPdDestroyed(5);
    EXPECT_EQ(ck.log().back().kind, ViolationKind::DoublePdDestroy);
    EXPECT_EQ(ck.totalViolations(), 2u);
}

// --- VLB duplicate-entry regression (the bug that motivated JordSan) -----------

TEST(VlbRegression, PermissionChangeReplacesInsteadOfDuplicating)
{
    // Re-inserting the same VTE for the same PD with a new permission
    // must replace the old entry: a duplicate would let the pre-change
    // permission win lookups after a downgrade.
    Vlb vlb(8);
    VlbEntry e;
    e.valid = true;
    e.vteAddr = 0x2000'0000'0040ull;
    e.base = 0x100'0000'0000ull;
    e.bound = 4096;
    e.perm = Perm::rw();
    e.pd = 3;
    vlb.insert(e);
    e.perm = Perm::r();
    vlb.insert(e);

    EXPECT_EQ(vlb.occupancy(), 1u);
    auto hit = vlb.lookup(e.base + 16, 3);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->perm, Perm::r());
}

TEST(VlbRegression, GlobalBitFlipReplacesTheSameVte)
{
    // A PD-tagged entry and a global entry for the same VTE describe
    // the same translation; flipping the G bit must not duplicate it.
    Vlb vlb(8);
    VlbEntry e;
    e.valid = true;
    e.vteAddr = 0x2000'0000'0080ull;
    e.base = 0x100'0000'1000ull;
    e.bound = 4096;
    e.perm = Perm::rw();
    e.pd = 3;
    vlb.insert(e);
    e.global = true;
    e.perm = Perm::r();
    vlb.insert(e);

    EXPECT_EQ(vlb.occupancy(), 1u);
    auto hit = vlb.lookup(e.base, 7); // any PD: global entry
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->perm, Perm::r());
}

} // namespace
