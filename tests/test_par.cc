/**
 * @file
 * Tests for the host-parallel run engine (src/par): pool lifecycle,
 * the submission-order commit contract, deterministic exception
 * propagation, nested fork-join deadlock freedom, the job graph, the
 * bench commit slots, and the end-to-end byte-identity guarantee the
 * CI parallel-determinism job rests on. This binary is also built
 * under -fsanitize=thread in CI, so the stress tests double as data-
 * race probes.
 */

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "bench/common.hh"
#include "cluster/cluster.hh"
#include "par/par.hh"
#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

using namespace jord;

namespace {

/** A tiny scheduling jitter so parallel runs actually interleave. */
void
jitter(std::size_t i)
{
    // Deliberate wall-clock jitter so the pool's work-stealing paths
    // actually interleave; it never reaches simulated state.
    // detlint: allow(D1, "test-only scheduling jitter, not sim state")
    std::this_thread::sleep_for(
        std::chrono::microseconds((i * 7) % 40));
}

} // namespace

TEST(Par, ResolveJobs)
{
    EXPECT_GE(par::resolveJobs(0), 1u);
    EXPECT_EQ(par::resolveJobs(1), 1u);
    EXPECT_EQ(par::resolveJobs(7), 7u);
}

TEST(Par, PoolRunsAllSubmittedTasks)
{
    std::atomic<int> count{0};
    {
        par::ThreadPool pool(4);
        EXPECT_EQ(pool.numThreads(), 4u);
        for (int i = 0; i < 200; ++i)
            pool.submit([&count] { ++count; });
        // No explicit wait: the destructor must drain the queues.
    }
    EXPECT_EQ(count.load(), 200);
}

TEST(Par, OrderedMapCommitsInSubmissionOrder)
{
    par::ThreadPool pool(4);
    std::vector<int> out =
        par::orderedMap<int>(&pool, 64, [](std::size_t i) {
            jitter(63 - i);
            return static_cast<int>(i * i);
        });
    ASSERT_EQ(out.size(), 64u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(Par, SerialAndParallelResultsMatch)
{
    auto job = [](std::size_t i) {
        jitter(i);
        return static_cast<double>(i) * 1.5 + 1.0;
    };
    std::vector<double> serial =
        par::orderedMap<double>(nullptr, 32, job);
    par::ThreadPool pool(8);
    std::vector<double> parallel =
        par::orderedMap<double>(&pool, 32, job);
    EXPECT_EQ(serial, parallel);
}

TEST(Par, LowestIndexExceptionWins)
{
    auto job = [](std::size_t i) {
        // Index 9 fails temporally first, index 3 must still win.
        if (i == 3) {
            jitter(30);
            throw std::runtime_error("job 3");
        }
        if (i == 9)
            throw std::runtime_error("job 9");
        return static_cast<int>(i);
    };
    for (unsigned threads : {0u, 4u}) {
        std::unique_ptr<par::ThreadPool> pool;
        if (threads)
            pool = std::make_unique<par::ThreadPool>(threads);
        try {
            par::orderedMap<int>(pool.get(), 16, job);
            FAIL() << "expected an exception";
        } catch (const std::runtime_error &e) {
            EXPECT_STREQ(e.what(), "job 3");
        }
    }
}

TEST(Par, FailedJobDoesNotCancelOthers)
{
    par::ThreadPool pool(2);
    std::atomic<int> ran{0};
    par::TaskGroup group(&pool);
    for (int i = 0; i < 20; ++i)
        group.run([&ran, i] {
            if (i == 0)
                throw std::runtime_error("first");
            ++ran;
        });
    EXPECT_THROW(group.wait(), std::runtime_error);
    EXPECT_EQ(ran.load(), 19);
}

TEST(Par, NestedSubmissionIsDeadlockFree)
{
    // Every pool thread blocks in an inner wait() at some point; the
    // helping waiter is what keeps this from deadlocking.
    par::ThreadPool pool(2);
    std::vector<long> sums =
        par::orderedMap<long>(&pool, 8, [&pool](std::size_t outer) {
            std::vector<long> inner = par::orderedMap<long>(
                &pool, 8, [outer](std::size_t i) {
                    jitter(i);
                    return static_cast<long>(outer * 100 + i);
                });
            return std::accumulate(inner.begin(), inner.end(), 0L);
        });
    for (std::size_t outer = 0; outer < sums.size(); ++outer)
        EXPECT_EQ(sums[outer], static_cast<long>(outer * 800 + 28));
}

TEST(Par, StressManyMoreJobsThanThreads)
{
    par::ThreadPool pool(16); // intentionally more than host cores
    std::atomic<long> sum{0};
    par::TaskGroup group(&pool);
    for (long i = 0; i < 2000; ++i)
        group.run([&sum, i] { sum += i; });
    group.wait();
    EXPECT_EQ(sum.load(), 2000L * 1999 / 2);
}

TEST(Par, JobGraphRespectsEdges)
{
    for (unsigned threads : {0u, 4u}) {
        std::unique_ptr<par::ThreadPool> pool;
        if (threads)
            pool = std::make_unique<par::ThreadPool>(threads);
        // Diamond: a -> {b, c} -> d.
        std::mutex mu;
        std::vector<char> order;
        par::JobGraph graph;
        auto record = [&](char c) {
            std::lock_guard<std::mutex> lk(mu);
            order.push_back(c);
        };
        auto a = graph.add([&] { record('a'); });
        auto b = graph.add([&] {
            jitter(5);
            record('b');
        });
        auto c = graph.add([&] { record('c'); });
        auto d = graph.add([&] { record('d'); });
        graph.precede(a, b);
        graph.precede(a, c);
        graph.precede(b, d);
        graph.precede(c, d);
        graph.run(pool.get());
        ASSERT_EQ(order.size(), 4u);
        EXPECT_EQ(order.front(), 'a');
        EXPECT_EQ(order.back(), 'd');
        if (!threads) {
            // Serial reference order: lowest ready id first.
            EXPECT_EQ(std::string(order.begin(), order.end()), "abcd");
        }
    }
}

TEST(Par, JobGraphCyclePanics)
{
    par::JobGraph graph;
    auto a = graph.add([] {});
    auto b = graph.add([] {});
    graph.precede(a, b);
    graph.precede(b, a);
    EXPECT_DEATH(graph.run(nullptr), "cycle");
}

TEST(Par, SlotsPanicOnMisuse)
{
    bench::Slots<int> slots(2);
    slots.set(0, 7);
    EXPECT_EQ(slots.at(0), 7);
    EXPECT_DEATH(slots.set(0, 8), "twice");
    EXPECT_DEATH(slots.at(1), "before commit");
    EXPECT_DEATH(slots.set(2, 1), "out of range");
}

TEST(Par, FinalizeSweepIsFillOrderIndependent)
{
    // Regression for the old accumulate-as-you-go knee detection: the
    // knee must be a pure function of the final point series, so an
    // out-of-order (parallel) fill finalizes identically.
    auto mkpoint = [](double mrps, bool meets) {
        workloads::SweepPoint p;
        p.offeredMrps = mrps;
        p.achievedMrps = mrps * 0.99;
        p.p99Us = meets ? 10.0 : 100.0;
        p.meetsSlo = meets;
        return p;
    };
    // meets, meets, fails, meets (post-knee recovery must not count).
    const bool pattern[] = {true, true, false, true};
    workloads::SweepResult in_order, reversed;
    in_order.points.resize(4);
    reversed.points.resize(4);
    for (std::size_t i = 0; i < 4; ++i)
        in_order.points[i] = mkpoint(1.0 + i, pattern[i]);
    for (std::size_t i = 4; i-- > 0;)
        reversed.points[i] = mkpoint(1.0 + i, pattern[i]);
    workloads::finalizeSweep(in_order);
    workloads::finalizeSweep(reversed);
    EXPECT_EQ(in_order.throughputUnderSlo,
              reversed.throughputUnderSlo);
    // The knee is the last point before the first SLO miss.
    EXPECT_DOUBLE_EQ(in_order.throughputUnderSlo, 2.0 * 0.99);
}

TEST(Par, SeedSweepByteIdenticalAcrossJobCounts)
{
    // The end-to-end golden: the merged per-seed CSV must not depend
    // on the thread count. Three seeds, small run, Hotel.
    workloads::Workload w = workloads::makeHotel();
    workloads::SeedSweepConfig cfg;
    cfg.seedLo = 1;
    cfg.seedHi = 3;
    cfg.mrps = 1.0;
    cfg.requests = 1200;
    auto csvAt = [&](unsigned threads) {
        std::unique_ptr<par::ThreadPool> pool;
        if (threads)
            pool = std::make_unique<par::ThreadPool>(threads);
        workloads::SeedSweepConfig run = cfg;
        run.pool = pool.get();
        auto results = workloads::runSeedSweep(w, run);
        return workloads::seedSweepCsv("Hotel", "Jord", run, results);
    };
    std::string serial = csvAt(0);
    EXPECT_EQ(serial.rfind("seed,workload,system,", 0), 0u);
    EXPECT_EQ(serial, csvAt(2));
    EXPECT_EQ(serial, csvAt(8));
}

TEST(Par, SweepLoadByteIdenticalAcrossJobCounts)
{
    workloads::Workload w = workloads::makeHotel();
    auto sweepAt = [&](unsigned threads) {
        std::unique_ptr<par::ThreadPool> pool;
        if (threads)
            pool = std::make_unique<par::ThreadPool>(threads);
        workloads::SweepConfig cfg;
        cfg.requestsPerPoint = 800;
        cfg.pool = pool.get();
        auto loads = workloads::loadSeries(0.5, 6.0, 6);
        return workloads::sweepLoad(w, runtime::SystemKind::Jord,
                                    loads, 30.0, cfg);
    };
    workloads::SweepResult serial = sweepAt(0);
    workloads::SweepResult parallel = sweepAt(4);
    ASSERT_EQ(serial.points.size(), parallel.points.size());
    for (std::size_t i = 0; i < serial.points.size(); ++i) {
        EXPECT_EQ(serial.points[i].achievedMrps,
                  parallel.points[i].achievedMrps);
        EXPECT_EQ(serial.points[i].p99Us, parallel.points[i].p99Us);
        EXPECT_EQ(serial.points[i].meetsSlo,
                  parallel.points[i].meetsSlo);
    }
    EXPECT_EQ(serial.throughputUnderSlo, parallel.throughputUnderSlo);
}

TEST(Par, ClusterByteIdenticalAcrossJobCounts)
{
    // The fleet pipeline's only parallel stage is calibration (one
    // job per probe load); the fleet DES itself is serial. Both the
    // calibrated model and the cluster result must be bit-identical
    // whether calibration ran serially or on a pool.
    workloads::Workload w = workloads::makeHotel();
    auto runAt = [&](unsigned threads) {
        std::unique_ptr<par::ThreadPool> pool;
        if (threads)
            pool = std::make_unique<par::ThreadPool>(threads);
        cluster::ClusterConfig cfg;
        cfg.calibration.requests = 2000;
        cfg.numServers = 4;
        cfg.traffic.mrps = 2.0;
        cfg.traffic.durationUs = 5000.0;
        return cluster::runCluster(w, cfg, pool.get());
    };
    cluster::ClusterResult serial = runAt(0);
    cluster::ClusterResult parallel = runAt(4);
    EXPECT_EQ(serial.generated, parallel.generated);
    EXPECT_EQ(serial.completed, parallel.completed);
    EXPECT_EQ(serial.shed, parallel.shed);
    EXPECT_EQ(serial.coldStarts, parallel.coldStarts);
    EXPECT_EQ(serial.p99Us, parallel.p99Us);
    EXPECT_EQ(serial.meanUs, parallel.meanUs);
    EXPECT_EQ(serial.goodputMrps, parallel.goodputMrps);
    EXPECT_EQ(serial.costServerSeconds, parallel.costServerSeconds);
    ASSERT_EQ(serial.servers.size(), parallel.servers.size());
    for (std::size_t s = 0; s < serial.servers.size(); ++s) {
        EXPECT_EQ(serial.servers[s].completed,
                  parallel.servers[s].completed);
        EXPECT_EQ(serial.servers[s].p99Us, parallel.servers[s].p99Us);
    }
}
