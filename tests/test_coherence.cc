/**
 * @file
 * Tests for the directory-based MESI coherence engine: state
 * transitions, timing ordering, L1 capacity, atomics, and the T-bit
 * observer protocol.
 */

#include <gtest/gtest.h>

#include "mem/coherence.hh"

namespace {

using jord::mem::Access;
using jord::mem::CacheState;
using jord::mem::CoherenceEngine;
using jord::mem::CoreMask;
using jord::mem::TranslationObserver;
using jord::noc::Mesh;
using jord::sim::Addr;
using jord::sim::Cycles;
using jord::sim::MachineConfig;

constexpr Addr kA = 0x1000;
constexpr Addr kB = 0x2000;

class CoherenceTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = MachineConfig::isca25Default();
    Mesh mesh{cfg};
    CoherenceEngine engine{cfg, mesh};
};

TEST_F(CoherenceTest, ColdReadFillsExclusiveFromDram)
{
    Access acc = engine.read(0, kA);
    EXPECT_FALSE(acc.l1Hit);
    EXPECT_FALSE(acc.llcHit);
    EXPECT_GE(acc.latency, cfg.dramCycles);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Exclusive);
    EXPECT_TRUE(engine.cachedIn(0, kA));
}

TEST_F(CoherenceTest, SecondReadIsL1Hit)
{
    engine.read(0, kA);
    Access acc = engine.read(0, kA);
    EXPECT_TRUE(acc.l1Hit);
    EXPECT_EQ(acc.latency, cfg.l1HitCycles);
    EXPECT_EQ(acc.messages, 0u);
}

TEST_F(CoherenceTest, SharedReadersDowngradeToShared)
{
    engine.read(0, kA);
    Access acc = engine.read(1, kA);
    EXPECT_FALSE(acc.l1Hit);
    EXPECT_TRUE(acc.llcHit);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Shared);
    EXPECT_TRUE(engine.cachedIn(0, kA));
    EXPECT_TRUE(engine.cachedIn(1, kA));
    EXPECT_EQ(engine.sharersOf(kA).count(), 2u);
}

TEST_F(CoherenceTest, WriteMakesModified)
{
    engine.write(0, kA);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Modified);
    Access again = engine.write(0, kA);
    EXPECT_TRUE(again.l1Hit);
    EXPECT_EQ(again.latency, cfg.l1HitCycles);
}

TEST_F(CoherenceTest, SilentExclusiveToModifiedUpgrade)
{
    engine.read(0, kA); // E
    Access acc = engine.write(0, kA);
    EXPECT_TRUE(acc.l1Hit);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Modified);
}

TEST_F(CoherenceTest, UpgradeInvalidatesOtherSharers)
{
    engine.read(0, kA);
    engine.read(1, kA);
    engine.read(2, kA);
    auto before = engine.stats().invalidations;
    Access acc = engine.write(1, kA);
    EXPECT_FALSE(acc.l1Hit);
    EXPECT_EQ(engine.stats().invalidations, before + 2);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Modified);
    EXPECT_FALSE(engine.cachedIn(0, kA));
    EXPECT_TRUE(engine.cachedIn(1, kA));
    EXPECT_FALSE(engine.cachedIn(2, kA));
}

TEST_F(CoherenceTest, DirtyRemoteReadForwardsFromOwner)
{
    engine.write(0, kA);
    Access acc = engine.read(1, kA);
    EXPECT_TRUE(acc.llcHit);
    EXPECT_GE(acc.messages, 3u);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Shared);
    // Owner forward must cost more than a plain LLC fetch.
    engine.flushAll();
    engine.read(2, kB);
    engine.evictL1(2, kB);
    Access llc_only = engine.read(1, kB);
    EXPECT_GT(acc.latency, cfg.l1HitCycles);
    EXPECT_TRUE(llc_only.llcHit);
}

TEST_F(CoherenceTest, RemoteDirtyWriteTransfersOwnership)
{
    engine.write(0, kA);
    Access acc = engine.write(1, kA);
    EXPECT_FALSE(acc.l1Hit);
    EXPECT_EQ(engine.stateOf(kA), CacheState::Modified);
    EXPECT_TRUE(engine.cachedIn(1, kA));
    EXPECT_FALSE(engine.cachedIn(0, kA));
}

TEST_F(CoherenceTest, LatencyOrderingL1LlcDram)
{
    Access dram = engine.read(0, kA); // cold
    engine.evictL1(0, kA);
    Access llc = engine.read(0, kA); // LLC
    Access l1 = engine.read(0, kA);  // L1
    EXPECT_LT(l1.latency, llc.latency);
    EXPECT_LT(llc.latency, dram.latency);
}

TEST_F(CoherenceTest, EvictL1WritesBackDirtyLine)
{
    engine.write(0, kA);
    engine.evictL1(0, kA);
    EXPECT_FALSE(engine.cachedIn(0, kA));
    EXPECT_EQ(engine.stateOf(kA), CacheState::Invalid);
    // The block stays on chip: refetch hits the LLC.
    Access acc = engine.read(0, kA);
    EXPECT_TRUE(acc.llcHit);
}

TEST_F(CoherenceTest, AtomicBehavesLikeWritePlusAlu)
{
    Access w = engine.write(0, kA);
    engine.flushAll();
    Access a = engine.atomic(0, kA);
    EXPECT_EQ(a.latency, w.latency + 1);
    EXPECT_EQ(engine.stats().atomics, 1u);
}

TEST_F(CoherenceTest, L1CapacityEvictsLru)
{
    // Fill the L1 beyond capacity; the first line must be gone.
    for (unsigned i = 0; i < cfg.l1Lines + 10; ++i)
        engine.read(0, kA + static_cast<Addr>(i) * 64);
    EXPECT_FALSE(engine.cachedIn(0, kA));
    EXPECT_TRUE(engine.cachedIn(
        0, kA + static_cast<Addr>(cfg.l1Lines + 9) * 64));
    // The evicted line refetches from the LLC, not DRAM.
    Access acc = engine.read(0, kA);
    EXPECT_TRUE(acc.llcHit);
}

TEST_F(CoherenceTest, L1LruKeepsHotLines)
{
    engine.read(0, kA); // will be kept hot
    for (unsigned i = 0; i < cfg.l1Lines - 1; ++i) {
        engine.read(0, kB + static_cast<Addr>(i) * 64);
        engine.read(0, kA); // touch to keep at MRU
    }
    // One more line evicts the LRU (an early kB line), not kA.
    engine.read(0, kB + static_cast<Addr>(cfg.l1Lines) * 64);
    EXPECT_TRUE(engine.cachedIn(0, kA));
}

TEST_F(CoherenceTest, StatsCount)
{
    engine.read(0, kA);
    engine.read(0, kA);
    engine.write(1, kA);
    const auto &stats = engine.stats();
    EXPECT_EQ(stats.reads, 2u);
    EXPECT_EQ(stats.writes, 1u);
    EXPECT_EQ(stats.l1Hits, 1u);
    EXPECT_EQ(stats.dramFills, 1u);
    EXPECT_GT(stats.messages, 0u);
}

TEST_F(CoherenceTest, SubBlockAddressesShareALine)
{
    engine.read(0, kA);
    Access acc = engine.read(0, kA + 32);
    EXPECT_TRUE(acc.l1Hit);
}

// --- T-bit observer protocol ------------------------------------------------

struct RecordingObserver : TranslationObserver {
    unsigned reads = 0;
    unsigned writes = 0;
    unsigned locals = 0;
    unsigned evicts = 0;
    CoreMask lastDir;
    Cycles extra = 0;

    void
    translationRead(unsigned, Addr) override
    {
        ++reads;
    }
    Cycles
    translationWrite(unsigned, Addr, const CoreMask &dir) override
    {
        ++writes;
        lastDir = dir;
        return extra;
    }
    void
    translationWriteLocal(unsigned, Addr) override
    {
        ++locals;
    }
    void
    directoryEvict(Addr, const CoreMask &dir) override
    {
        ++evicts;
        lastDir = dir;
    }
};

TEST_F(CoherenceTest, TbitReadNotifiesObserverOnHitsToo)
{
    // Every translation read registers the sharer, L1 hits included:
    // a VLB fill served from the local L1 must stay visible to later
    // shootdowns even after the block leaves the L1 (and with it the
    // directory's sharer list).
    RecordingObserver obs;
    engine.setTranslationObserver(&obs);
    engine.read(0, kA, true);
    EXPECT_EQ(obs.reads, 1u);
    engine.read(0, kA, true); // L1 hit: still registers
    EXPECT_EQ(obs.reads, 2u);
}

TEST_F(CoherenceTest, TbitWriteLocalWhenDirtyInOwnL1)
{
    RecordingObserver obs;
    engine.setTranslationObserver(&obs);
    engine.write(0, kA, true); // miss -> translationWrite
    EXPECT_EQ(obs.writes, 1u);
    engine.write(0, kA, true); // M hit -> local
    EXPECT_EQ(obs.locals, 1u);
    EXPECT_EQ(obs.writes, 1u);
}

TEST_F(CoherenceTest, TbitWritePassesDirectorySharers)
{
    RecordingObserver obs;
    engine.setTranslationObserver(&obs);
    engine.read(1, kA);
    engine.read(2, kA);
    engine.write(0, kA, true);
    EXPECT_TRUE(obs.lastDir.test(1));
    EXPECT_TRUE(obs.lastDir.test(2));
}

TEST_F(CoherenceTest, ObserverExtraLatencyIsAdded)
{
    RecordingObserver obs;
    obs.extra = 500;
    engine.setTranslationObserver(&obs);
    engine.read(1, kA);
    Access with = engine.write(0, kA, true);
    engine.flushAll();
    obs.extra = 0;
    engine.read(1, kA);
    Access without = engine.write(0, kA, true);
    EXPECT_EQ(with.latency, without.latency + 500);
}

TEST_F(CoherenceTest, DirectoryEvictNotifiesWithSharers)
{
    RecordingObserver obs;
    engine.setTranslationObserver(&obs);
    engine.read(3, kA);
    engine.evictDirectory(kA);
    EXPECT_EQ(obs.evicts, 1u);
    EXPECT_TRUE(obs.lastDir.test(3));
    EXPECT_EQ(engine.stateOf(kA), CacheState::Invalid);
}

// --- CoreMask ----------------------------------------------------------------

TEST(CoreMask, BasicOperations)
{
    CoreMask mask;
    EXPECT_TRUE(mask.none());
    mask.set(3);
    mask.set(200);
    EXPECT_TRUE(mask.test(3));
    EXPECT_TRUE(mask.test(200));
    EXPECT_FALSE(mask.test(4));
    EXPECT_EQ(mask.count(), 2u);
    EXPECT_FALSE(mask.onlyContains(3));
    mask.clear(200);
    EXPECT_TRUE(mask.onlyContains(3));
}

TEST(CoreMask, ForEachVisitsInOrder)
{
    CoreMask mask;
    mask.set(5);
    mask.set(64);
    mask.set(255);
    std::vector<unsigned> seen;
    mask.forEach([&](unsigned core) { seen.push_back(core); });
    EXPECT_EQ(seen, (std::vector<unsigned>{5, 64, 255}));
}

TEST(CoreMask, SetOperators)
{
    CoreMask a, b;
    a.set(1);
    b.set(2);
    a |= b;
    EXPECT_EQ(a.count(), 2u);
    CoreMask c;
    c.set(2);
    a &= c;
    EXPECT_TRUE(a.onlyContains(2));
}

} // namespace
