/**
 * @file
 * Tests for the workload models (§5) and the load-sweep methodology
 * helpers: structural properties the paper states (fan-outs, selected
 * functions) and SLO/knee detection behaviour.
 */

#include <gtest/gtest.h>

#include "workloads/sweep.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using runtime::SystemKind;
using workloads::Workload;

double
avgEntryFanOut(const Workload &w)
{
    double weight_total = 0, weighted = 0;
    for (const auto &[fn, weight] : w.mix) {
        weighted +=
            weight *
            static_cast<double>(w.registry.at(fn).spec.calls.size());
        weight_total += weight;
    }
    return weighted / weight_total;
}

TEST(Workloads, AllFourPresentInPaperOrder)
{
    auto all = workloads::makeAll();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(all[0].name, "Hipster");
    EXPECT_EQ(all[1].name, "Hotel");
    EXPECT_EQ(all[2].name, "Media");
    EXPECT_EQ(all[3].name, "Social");
}

TEST(Workloads, MakeByName)
{
    EXPECT_EQ(workloads::makeByName("Hotel").name, "Hotel");
    EXPECT_DEATH(workloads::makeByName("Nope"), "unknown workload");
}

TEST(Workloads, EntryMixReferencesValidFunctions)
{
    for (const Workload &w : workloads::makeAll()) {
        ASSERT_FALSE(w.mix.empty()) << w.name;
        for (const auto &[fn, weight] : w.mix) {
            EXPECT_LT(fn, w.registry.size());
            EXPECT_GT(weight, 0.0);
        }
    }
}

TEST(Workloads, SelectedFunctionsMatchTable3)
{
    auto all = workloads::makeAll();
    const std::vector<std::vector<std::string>> expected = {
        {"GC", "PO"}, {"SN", "MR"}, {"UU", "RP"}, {"F", "CP"}};
    for (std::size_t i = 0; i < all.size(); ++i) {
        ASSERT_EQ(all[i].selected.size(), 2u);
        EXPECT_EQ(all[i].selected[0].first, expected[i][0]);
        EXPECT_EQ(all[i].selected[1].first, expected[i][1]);
        for (const auto &[abbr, fn] : all[i].selected)
            EXPECT_LT(fn, all[i].registry.size());
    }
}

TEST(Workloads, FanOutsMatchPaper)
{
    // "each function invokes an average of 12 nested functions
    // [Media], compared to three in other workloads" (§6.1).
    auto all = workloads::makeAll();
    EXPECT_NEAR(avgEntryFanOut(all[0]), 3.0, 0.8);  // Hipster
    EXPECT_NEAR(avgEntryFanOut(all[1]), 3.0, 0.8);  // Hotel
    EXPECT_NEAR(avgEntryFanOut(all[2]), 12.0, 1.5); // Media
    EXPECT_NEAR(avgEntryFanOut(all[3]), 3.0, 1.2);  // Social
}

TEST(Workloads, ReadPageFansOutOverHundred)
{
    Workload media = workloads::makeMedia();
    auto rp = media.registry.findByName("ReadPage");
    ASSERT_TRUE(rp.has_value());
    EXPECT_GT(media.registry.at(*rp).spec.calls.size(), 100u);
}

TEST(Workloads, SocialHasLongTailFunction)
{
    // One Social function needs ~75 us (§6.2) — ComposePost.
    Workload social = workloads::makeSocial();
    double longest = 0;
    for (const auto &fn : social.registry.all())
        longest = std::max(longest, fn.spec.execMeanUs);
    EXPECT_GT(longest, 40.0);
}

TEST(Workloads, CallsTargetRegisteredFunctions)
{
    for (const Workload &w : workloads::makeAll())
        for (const auto &fn : w.registry.all())
            for (const auto &call : fn.spec.calls) {
                EXPECT_LT(call.target, w.registry.size());
                EXPECT_GT(call.argBytes, 0u);
            }
}

// --- Sweep helpers ----------------------------------------------------------------

TEST(Sweep, LoadSeriesIsGeometricAndInclusive)
{
    auto loads = workloads::loadSeries(1.0, 16.0, 5);
    ASSERT_EQ(loads.size(), 5u);
    EXPECT_DOUBLE_EQ(loads.front(), 1.0);
    EXPECT_DOUBLE_EQ(loads.back(), 16.0);
    for (std::size_t i = 1; i < loads.size(); ++i)
        EXPECT_NEAR(loads[i] / loads[i - 1], 2.0, 1e-9);
}

TEST(Sweep, LoadSeriesDegenerateCases)
{
    EXPECT_TRUE(workloads::loadSeries(1, 2, 0).empty());
    auto one = workloads::loadSeries(1, 8, 1);
    ASSERT_EQ(one.size(), 1u);
    EXPECT_DOUBLE_EQ(one[0], 8.0);
}

TEST(Sweep, MeasureSloIsTenTimesMinimalLoadLatency)
{
    workloads::Workload w = workloads::makeHotel();
    workloads::SweepConfig cfg;
    cfg.requestsPerPoint = 3000;
    double slo = workloads::measureSloUs(w, cfg);
    // Hotel requests run a handful of us at minimal load.
    EXPECT_GT(slo, 10.0);
    EXPECT_LT(slo, 120.0);
}

TEST(Sweep, KneeDetectionIsMonotone)
{
    workloads::Workload w = workloads::makeHotel();
    workloads::SweepConfig cfg;
    cfg.requestsPerPoint = 2000;
    double slo = workloads::measureSloUs(w, cfg);
    auto res = workloads::sweepLoad(w, SystemKind::Jord,
                                    {1.0, 3.0, 30.0, 5.0}, slo, cfg);
    // 30 MRPS is far beyond saturation; the later 5.0 point (even if
    // it happened to pass) must not count after the failure.
    ASSERT_EQ(res.points.size(), 4u);
    EXPECT_FALSE(res.points[2].meetsSlo);
    EXPECT_LE(res.throughputUnderSlo, 3.5);
}

TEST(Sweep, JordBeatsNightCoreOnHotel)
{
    workloads::Workload w = workloads::makeHotel();
    workloads::SweepConfig cfg;
    cfg.requestsPerPoint = 2500;
    double slo = workloads::measureSloUs(w, cfg);
    auto loads = workloads::loadSeries(0.5, 8.0, 6);
    auto jord = workloads::sweepLoad(w, SystemKind::Jord, loads, slo,
                                     cfg);
    auto ntc = workloads::sweepLoad(w, SystemKind::NightCore, loads,
                                    slo, cfg);
    EXPECT_GT(jord.throughputUnderSlo, 2 * ntc.throughputUnderSlo);
}

} // namespace
