/**
 * @file
 * Tests for the conventional 4-level radix page table, including a
 * randomized property test against a reference map model.
 */

#include <gtest/gtest.h>

#include <map>

#include "sim/rng.hh"
#include "vm/page_table.hh"

namespace {

using jord::sim::Addr;
using jord::sim::Rng;
using jord::vm::kNumLevels;
using jord::vm::kPageBytes;
using jord::vm::PagePerms;
using jord::vm::PageTable;

constexpr Addr kVa = 0x7f00'0000'0000ull;
constexpr Addr kPa = 0x0100'0000'0000ull;

TEST(PageTable, MapAndTranslate)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(kVa, kPa, kPageBytes, PagePerms::rw()));
    auto t = pt.translate(kVa);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, kPa);
    EXPECT_TRUE(t->perms.write);
    EXPECT_FALSE(t->perms.exec);
}

TEST(PageTable, TranslatePreservesPageOffset)
{
    PageTable pt;
    pt.map(kVa, kPa, kPageBytes, PagePerms::rw());
    auto t = pt.translate(kVa + 0x123);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, kPa + 0x123);
}

TEST(PageTable, UnmappedFaults)
{
    PageTable pt;
    EXPECT_FALSE(pt.translate(kVa).has_value());
}

TEST(PageTable, MultiPageRange)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(kVa, kPa, 10 * kPageBytes, PagePerms::ro()));
    EXPECT_EQ(pt.numMappedPages(), 10u);
    for (unsigned i = 0; i < 10; ++i) {
        auto t = pt.translate(kVa + i * kPageBytes);
        ASSERT_TRUE(t.has_value());
        EXPECT_EQ(t->pa, kPa + i * kPageBytes);
    }
    EXPECT_FALSE(pt.translate(kVa + 10 * kPageBytes).has_value());
}

TEST(PageTable, DoubleMapIsRejectedAtomically)
{
    PageTable pt;
    ASSERT_TRUE(pt.map(kVa + 2 * kPageBytes, kPa, kPageBytes,
                       PagePerms::rw()));
    // Overlapping range: nothing should change.
    EXPECT_FALSE(pt.map(kVa, kPa + 0x10000, 4 * kPageBytes,
                        PagePerms::rw()));
    EXPECT_EQ(pt.numMappedPages(), 1u);
    EXPECT_FALSE(pt.translate(kVa).has_value());
}

TEST(PageTable, UnalignedMapRejected)
{
    PageTable pt;
    EXPECT_FALSE(pt.map(kVa + 1, kPa, kPageBytes, PagePerms::rw()));
    EXPECT_FALSE(pt.map(kVa, kPa + 7, kPageBytes, PagePerms::rw()));
}

TEST(PageTable, UnmapRemovesOnlyRange)
{
    PageTable pt;
    pt.map(kVa, kPa, 4 * kPageBytes, PagePerms::rw());
    EXPECT_EQ(pt.unmap(kVa + kPageBytes, 2 * kPageBytes), 2u);
    EXPECT_TRUE(pt.translate(kVa).has_value());
    EXPECT_FALSE(pt.translate(kVa + kPageBytes).has_value());
    EXPECT_FALSE(pt.translate(kVa + 2 * kPageBytes).has_value());
    EXPECT_TRUE(pt.translate(kVa + 3 * kPageBytes).has_value());
}

TEST(PageTable, ProtectUpdatesPermissions)
{
    PageTable pt;
    pt.map(kVa, kPa, 2 * kPageBytes, PagePerms::rw());
    EXPECT_EQ(pt.protect(kVa, 2 * kPageBytes, PagePerms::ro()), 2u);
    auto t = pt.translate(kVa);
    ASSERT_TRUE(t.has_value());
    EXPECT_FALSE(t->perms.write);
    EXPECT_TRUE(t->perms.read);
}

TEST(PageTable, WalkPathHasFourLevelsWhenMapped)
{
    PageTable pt;
    pt.map(kVa, kPa, kPageBytes, PagePerms::rw());
    auto path = pt.walkPath(kVa);
    EXPECT_EQ(path.size(), kNumLevels);
    // PTE addresses must be distinct (different nodes).
    for (std::size_t i = 1; i < path.size(); ++i)
        EXPECT_NE(path[i], path[i - 1]);
}

TEST(PageTable, WalkPathAbortsEarlyWhenUnmapped)
{
    PageTable pt;
    auto path = pt.walkPath(kVa);
    EXPECT_EQ(path.size(), 1u); // root entry is invalid
}

TEST(PageTable, AdjacentVasShareUpperLevels)
{
    PageTable pt;
    pt.map(kVa, kPa, kPageBytes, PagePerms::rw());
    pt.map(kVa + kPageBytes, kPa + kPageBytes, kPageBytes,
           PagePerms::rw());
    auto a = pt.walkPath(kVa);
    auto b = pt.walkPath(kVa + kPageBytes);
    // Same leaf node, different PTE slot.
    EXPECT_EQ(a[2], b[2]);
    EXPECT_NE(a[3], b[3]);
}

TEST(PageTable, NodeCountGrowsWithSpread)
{
    PageTable pt;
    auto before = pt.numNodes();
    pt.map(kVa, kPa, kPageBytes, PagePerms::rw());
    // A VA far away needs its own interior nodes.
    pt.map(0x0000'1000'0000ull, kPa + 0x100000, kPageBytes,
           PagePerms::rw());
    EXPECT_GT(pt.numNodes(), before + 3);
}

TEST(PageTable, PermsCovers)
{
    EXPECT_TRUE(PagePerms::rw().covers(PagePerms::ro()));
    EXPECT_FALSE(PagePerms::ro().covers(PagePerms::rw()));
    EXPECT_TRUE(PagePerms::rx().covers({false, false, true}));
    EXPECT_TRUE(PagePerms::rw().covers(PagePerms::none()));
}

/** Property test: random map/unmap/protect vs a std::map reference. */
TEST(PageTableProperty, MatchesReferenceModel)
{
    PageTable pt;
    std::map<Addr, std::pair<Addr, PagePerms>> ref;
    Rng rng(101);
    Addr next_pa = kPa;

    for (int step = 0; step < 3000; ++step) {
        Addr page = kVa + rng.uniformInt(std::uint64_t(256)) * kPageBytes;
        double action = rng.uniform();
        if (action < 0.45) {
            bool expect_ok = !ref.count(page);
            bool ok = pt.map(page, next_pa, kPageBytes,
                             PagePerms::rw());
            EXPECT_EQ(ok, expect_ok);
            if (ok) {
                ref[page] = {next_pa, PagePerms::rw()};
                next_pa += kPageBytes;
            }
        } else if (action < 0.75) {
            auto removed = pt.unmap(page, kPageBytes);
            EXPECT_EQ(removed, ref.erase(page));
        } else {
            PagePerms perms = rng.chance(0.5) ? PagePerms::ro()
                                              : PagePerms::rw();
            auto updated = pt.protect(page, kPageBytes, perms);
            if (ref.count(page)) {
                EXPECT_EQ(updated, 1u);
                ref[page].second = perms;
            } else {
                EXPECT_EQ(updated, 0u);
            }
        }
    }

    EXPECT_EQ(pt.numMappedPages(), ref.size());
    for (Addr page = kVa; page < kVa + 256 * kPageBytes;
         page += kPageBytes) {
        auto t = pt.translate(page);
        auto it = ref.find(page);
        ASSERT_EQ(t.has_value(), it != ref.end()) << std::hex << page;
        if (t) {
            EXPECT_EQ(t->pa, it->second.first);
            EXPECT_EQ(t->perms, it->second.second);
        }
    }
}

} // namespace
