/**
 * @file
 * Tests for the conventional TLB, the timed MMU walker, and the
 * OS-mediated mmap/mprotect/munmap path with IPI shootdowns — the slow
 * path Jord is designed to avoid (§2.2).
 */

#include <gtest/gtest.h>

#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "vm/posix_vm.hh"
#include "vm/tlb.hh"
#include "vm/walker.hh"

namespace {

using jord::mem::CoherenceEngine;
using jord::noc::Mesh;
using jord::sim::Addr;
using jord::sim::MachineConfig;
using jord::vm::kPageBytes;
using jord::vm::Mmu;
using jord::vm::PagePerms;
using jord::vm::PageTable;
using jord::vm::PosixVm;
using jord::vm::Tlb;
using jord::vm::Translation;
using jord::vm::VmOpResult;

constexpr Addr kVa = 0x7f00'0000'0000ull;
constexpr Addr kPa = 0x0100'0000'0000ull;

// --- Tlb ---------------------------------------------------------------------

TEST(Tlb, HitAfterInsert)
{
    Tlb tlb(48);
    tlb.insert(kVa, Translation{kPa, PagePerms::rw()});
    auto t = tlb.lookup(kVa + 0x40);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->pa, kPa + 0x40);
    EXPECT_EQ(tlb.stats().hits, 1u);
}

TEST(Tlb, MissOnUnknownPage)
{
    Tlb tlb(48);
    EXPECT_FALSE(tlb.lookup(kVa).has_value());
    EXPECT_EQ(tlb.stats().misses, 1u);
}

TEST(Tlb, LruEvictionInFullyAssociative)
{
    Tlb tlb(4);
    for (unsigned i = 0; i < 4; ++i)
        tlb.insert(kVa + i * kPageBytes, Translation{kPa, {}});
    tlb.lookup(kVa); // make page 0 MRU
    tlb.insert(kVa + 4 * kPageBytes, Translation{kPa, {}});
    EXPECT_TRUE(tlb.probe(kVa).has_value());
    EXPECT_FALSE(tlb.probe(kVa + kPageBytes).has_value()); // LRU victim
    EXPECT_EQ(tlb.stats().evictions, 1u);
}

TEST(Tlb, SetAssociativeConflicts)
{
    // 8 entries, 2-way: 4 sets; pages mapping to the same set conflict.
    Tlb tlb(8, 2);
    Addr stride = 4 * kPageBytes; // same set index
    tlb.insert(kVa, Translation{kPa, {}});
    tlb.insert(kVa + stride, Translation{kPa, {}});
    tlb.insert(kVa + 2 * stride, Translation{kPa, {}});
    unsigned present = tlb.probe(kVa).has_value() +
                       tlb.probe(kVa + stride).has_value() +
                       tlb.probe(kVa + 2 * stride).has_value();
    EXPECT_EQ(present, 2u);
}

TEST(Tlb, InvalidatePage)
{
    Tlb tlb(48);
    tlb.insert(kVa, Translation{kPa, {}});
    EXPECT_TRUE(tlb.invalidatePage(kVa));
    EXPECT_FALSE(tlb.probe(kVa).has_value());
    EXPECT_FALSE(tlb.invalidatePage(kVa));
}

TEST(Tlb, InvalidateAllClearsOccupancy)
{
    Tlb tlb(48);
    for (unsigned i = 0; i < 10; ++i)
        tlb.insert(kVa + i * kPageBytes, Translation{kPa, {}});
    EXPECT_EQ(tlb.occupancy(), 10u);
    tlb.invalidateAll();
    EXPECT_EQ(tlb.occupancy(), 0u);
}

TEST(Tlb, ReinsertUpdatesInPlace)
{
    Tlb tlb(4);
    tlb.insert(kVa, Translation{kPa, PagePerms::rw()});
    tlb.insert(kVa, Translation{kPa, PagePerms::ro()});
    EXPECT_EQ(tlb.occupancy(), 1u);
    EXPECT_FALSE(tlb.probe(kVa)->perms.write);
}

// --- Mmu walker --------------------------------------------------------------

class MmuTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = MachineConfig::isca25Default();
    Mesh mesh{cfg};
    CoherenceEngine engine{cfg, mesh};
    PageTable table;
    Mmu mmu{cfg, engine, table, 0};
};

TEST_F(MmuTest, WalkFillsTlbs)
{
    table.map(kVa, kPa, kPageBytes, PagePerms::rw());
    auto first = mmu.translate(kVa);
    ASSERT_TRUE(first.translation.has_value());
    EXPECT_FALSE(first.l1TlbHit);
    EXPECT_EQ(first.levelsWalked, 4u);

    auto second = mmu.translate(kVa);
    EXPECT_TRUE(second.l1TlbHit);
    EXPECT_LT(second.latency, first.latency);
}

TEST_F(MmuTest, L2TlbCatchesL1Evictions)
{
    table.map(kVa, kPa, kPageBytes, PagePerms::rw());
    mmu.translate(kVa);
    mmu.l1Tlb().invalidateAll();
    auto res = mmu.translate(kVa);
    EXPECT_FALSE(res.l1TlbHit);
    EXPECT_TRUE(res.l2TlbHit);
    EXPECT_EQ(res.levelsWalked, 0u);
}

TEST_F(MmuTest, PageFaultReported)
{
    auto res = mmu.translate(kVa);
    EXPECT_FALSE(res.translation.has_value());
    EXPECT_GT(res.latency, 0u);
}

TEST_F(MmuTest, ColdWalkCostsMoreThanWarmWalk)
{
    table.map(kVa, kPa, kPageBytes, PagePerms::rw());
    auto cold = mmu.translate(kVa);
    mmu.invalidateAll();
    auto warm = mmu.translate(kVa); // PTE lines now cached
    EXPECT_GT(cold.latency, warm.latency);
}

// --- PosixVm ------------------------------------------------------------------

class PosixVmTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = MachineConfig::isca25Default();
    Mesh mesh{cfg};
    CoherenceEngine engine{cfg, mesh};
    PosixVm vm{cfg, engine};
};

TEST_F(PosixVmTest, MmapThenAccess)
{
    VmOpResult res = vm.mmap(0, 8 * kPageBytes, PagePerms::rw());
    ASSERT_TRUE(res.ok);
    EXPECT_GT(res.latency, vm.costs().syscallCycles);
    EXPECT_EQ(vm.numVmas(), 1u);

    VmOpResult acc = vm.access(0, res.addr, true);
    EXPECT_TRUE(acc.ok);
    VmOpResult ro = vm.access(0, res.addr + 5 * kPageBytes, false);
    EXPECT_TRUE(ro.ok);
}

TEST_F(PosixVmTest, AccessOutsideMappingFaults)
{
    VmOpResult acc = vm.access(0, 0xdead'0000, false);
    EXPECT_FALSE(acc.ok);
}

TEST_F(PosixVmTest, MprotectEnforcedAndShootsDown)
{
    VmOpResult res = vm.mmap(0, kPageBytes, PagePerms::rw());
    ASSERT_TRUE(res.ok);
    // Warm remote TLBs.
    EXPECT_TRUE(vm.access(5, res.addr, true).ok);
    VmOpResult prot = vm.mprotect(0, res.addr, kPageBytes,
                                  PagePerms::ro());
    ASSERT_TRUE(prot.ok);
    EXPECT_EQ(prot.ipis, cfg.numCores - 1);
    EXPECT_FALSE(vm.access(5, res.addr, true).ok);
    EXPECT_TRUE(vm.access(5, res.addr, false).ok);
}

TEST_F(PosixVmTest, MunmapRemovesMapping)
{
    VmOpResult res = vm.mmap(0, 2 * kPageBytes, PagePerms::rw());
    ASSERT_TRUE(res.ok);
    VmOpResult un = vm.munmap(0, res.addr, 2 * kPageBytes);
    ASSERT_TRUE(un.ok);
    EXPECT_EQ(vm.numVmas(), 0u);
    EXPECT_FALSE(vm.access(0, res.addr, false).ok);
}

TEST_F(PosixVmTest, MunmapWrongLengthRejected)
{
    VmOpResult res = vm.mmap(0, 2 * kPageBytes, PagePerms::rw());
    EXPECT_FALSE(vm.munmap(0, res.addr, kPageBytes).ok);
}

TEST_F(PosixVmTest, ShootdownCostsMicroseconds)
{
    // The motivating observation of §2.2: OS-level permission changes
    // take on the order of microseconds due to IPI-based shootdowns.
    VmOpResult res = vm.mmap(0, kPageBytes, PagePerms::rw());
    VmOpResult prot = vm.mprotect(0, res.addr, kPageBytes,
                                  PagePerms::ro());
    double us = jord::sim::cyclesToUs(prot.latency, cfg.freqGhz);
    EXPECT_GT(us, 1.0);
}

TEST_F(PosixVmTest, DistinctMmapsDontOverlap)
{
    VmOpResult a = vm.mmap(0, 4 * kPageBytes, PagePerms::rw());
    VmOpResult b = vm.mmap(1, 4 * kPageBytes, PagePerms::rw());
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_GE(b.addr, a.addr + 4 * kPageBytes);
}

} // namespace
