/**
 * @file
 * Tests for the assembled UAT hardware access path: translation, fault
 * generation, P-bit / uatg enforcement (§4.3), CSR privilege, and
 * hardware VLB shootdowns driven by T-bit coherence traffic (§4.2).
 */

#include "tests/fixture.hh"

namespace {

using jord::sim::Addr;
using jord::sim::Cycles;
using jord::test::JordStackTest;
using jord::uat::Fault;
using jord::uat::Perm;
using jord::uat::PdId;
using jord::uat::UatAccess;
using jord::uat::UatCsr;

class UatSystemTest : public JordStackTest
{
  protected:
    PdId pd = 0;
    Addr vma = 0;

    void
    SetUp() override
    {
        pd = mustCget(0);
        vma = mustMmapFor(0, pd, 4096, Perm::rw());
    }

    /** Run an access with the core's ucid temporarily set to @p as. */
    UatAccess
    accessAs(unsigned core, PdId as, Addr va, Perm need)
    {
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = as;
        UatAccess acc = uat->dataAccess(core, va, need);
        uat->csrFile(core).ucid = saved;
        return acc;
    }
};

TEST_F(UatSystemTest, AccessSucceedsWithPermission)
{
    UatAccess acc = accessAs(0, pd, vma + 128, Perm::rw());
    EXPECT_TRUE(acc.ok());
    EXPECT_NE(acc.pa, 0u);
}

TEST_F(UatSystemTest, TranslationAppliesRangeOffset)
{
    UatAccess a = accessAs(0, pd, vma, Perm::r());
    UatAccess b = accessAs(0, pd, vma + 777, Perm::r());
    EXPECT_EQ(b.pa - a.pa, 777u);
}

TEST_F(UatSystemTest, SecondAccessHitsVlb)
{
    UatAccess miss = accessAs(0, pd, vma, Perm::r());
    UatAccess hit = accessAs(0, pd, vma + 64, Perm::r());
    EXPECT_FALSE(miss.vlbHit);
    EXPECT_TRUE(hit.vlbHit);
    EXPECT_EQ(hit.latency, 0u); // overlapped with the L1 access
}

TEST_F(UatSystemTest, WalkWithWarmL1IsTwoNanoseconds)
{
    accessAs(0, pd, vma, Perm::r()); // warm VTE line + VLB
    uat->dvlb(0).invalidateVte(table->vteAddrOf(vma));
    UatAccess walk = accessAs(0, pd, vma, Perm::r());
    EXPECT_FALSE(walk.vlbHit);
    EXPECT_EQ(jord::sim::cyclesToNs(walk.latency, cfg.freqGhz), 2.0);
}

TEST_F(UatSystemTest, NonUatVaFaults)
{
    UatAccess acc = accessAs(0, pd, 0x7f00'0000'0000ull, Perm::r());
    EXPECT_EQ(acc.fault, Fault::NotUatVa);
}

TEST_F(UatSystemTest, UnmappedUatVaFaults)
{
    jord::uat::VaEncoding enc;
    UatAccess acc = accessAs(0, pd, enc.encode(9, 999), Perm::r());
    EXPECT_EQ(acc.fault, Fault::NotMapped);
}

TEST_F(UatSystemTest, OutOfBoundFaults)
{
    // 4096-byte VMA in an 4096-byte class: offset 4096 is in the next
    // chunk; shrink the bound to expose the out-of-bound check.
    uat->csrFile(0).ucid = pd;
    ASSERT_TRUE(privlib->mprotect(0, vma, 1000, Perm::rw()).ok);
    uat->csrFile(0).ucid = 0;
    UatAccess inside = accessAs(0, pd, vma + 999, Perm::r());
    UatAccess outside = accessAs(0, pd, vma + 1000, Perm::r());
    EXPECT_TRUE(inside.ok());
    EXPECT_EQ(outside.fault, Fault::OutOfBound);
}

TEST_F(UatSystemTest, WrongPdFaults)
{
    PdId other = mustCget(0);
    UatAccess acc = accessAs(0, other, vma, Perm::r());
    EXPECT_EQ(acc.fault, Fault::NoPermission);
}

TEST_F(UatSystemTest, WriteToReadOnlyFaults)
{
    Addr ro = mustMmapFor(0, pd, 4096, Perm::r());
    EXPECT_TRUE(accessAs(0, pd, ro, Perm::r()).ok());
    EXPECT_EQ(accessAs(0, pd, ro, Perm(Perm::W)).fault,
              Fault::NoPermission);
}

TEST_F(UatSystemTest, ExecuteNeedsXPermission)
{
    uat->csrFile(0).ucid = pd;
    UatAccess acc = uat->fetch(0, vma); // rw VMA, no X
    EXPECT_EQ(acc.fault, Fault::NoPermission);
    uat->csrFile(0).ucid = 0;
}

// --- P bit and gates -----------------------------------------------------------

TEST_F(UatSystemTest, PrivilegedVmaRejectsUnprivilegedLoad)
{
    // PrivLib's data VMA is privileged; code running without the P bit
    // cannot touch it even though it is global.
    uat->forcePrivileged(0, false);
    UatAccess acc = uat->dataAccess(0, privlib->privDataBase(),
                                    Perm::r());
    EXPECT_EQ(acc.fault, Fault::PrivilegedAccess);
}

TEST_F(UatSystemTest, PrivilegedCodeMayTouchPrivilegedVma)
{
    uat->forcePrivileged(0, true);
    UatAccess acc = uat->dataAccess(0, privlib->privDataBase(),
                                    Perm::rw());
    EXPECT_TRUE(acc.ok());
    uat->forcePrivileged(0, false);
}

TEST_F(UatSystemTest, GateEntryRequired)
{
    uat->forcePrivileged(0, false);
    // Jumping into the middle of PrivLib (not a registered uatg gate)
    // must raise an invalid-instruction fault.
    UatAccess bad = uat->fetch(0, privlib->privCodeBase() + 8);
    EXPECT_EQ(bad.fault, Fault::BadGate);
    EXPECT_FALSE(uat->privileged(0));

    UatAccess good = uat->fetch(0, privlib->privCodeBase());
    EXPECT_TRUE(good.ok());
    EXPECT_TRUE(uat->privileged(0));
}

TEST_F(UatSystemTest, PrivilegedToUnprivilegedTransitionIsFree)
{
    uat->fetch(0, privlib->privCodeBase());
    ASSERT_TRUE(uat->privileged(0));
    Addr code = mustMmapFor(0, pd, 4096, Perm::rx());
    uat->csrFile(0).ucid = pd;
    UatAccess back = uat->fetch(0, code);
    EXPECT_TRUE(back.ok());
    EXPECT_FALSE(uat->privileged(0));
    uat->csrFile(0).ucid = 0;
}

TEST_F(UatSystemTest, PrivilegedCodeMayJumpWithinPrivlib)
{
    uat->fetch(0, privlib->privCodeBase());
    // Once privileged, non-gate privileged addresses are fine.
    UatAccess acc = uat->fetch(0, privlib->privCodeBase() + 8);
    EXPECT_TRUE(acc.ok());
}

// --- CSRs ------------------------------------------------------------------------

TEST_F(UatSystemTest, CsrAccessRequiresPbit)
{
    uat->forcePrivileged(0, false);
    EXPECT_EQ(uat->writeCsr(0, UatCsr::Ucid, 5), Fault::IllegalCsr);
    std::uint64_t value = 0;
    EXPECT_EQ(uat->readCsr(0, UatCsr::Uatp, value), Fault::IllegalCsr);

    uat->forcePrivileged(0, true);
    EXPECT_EQ(uat->writeCsr(0, UatCsr::Ucid, 5), Fault::None);
    EXPECT_EQ(uat->csrFile(0).ucid, 5);
    EXPECT_EQ(uat->readCsr(0, UatCsr::Uatp, value), Fault::None);
    EXPECT_NE(value, 0u);
    uat->forcePrivileged(0, false);
}

TEST_F(UatSystemTest, UcidRangeChecked)
{
    uat->forcePrivileged(0, true);
    EXPECT_EQ(uat->writeCsr(0, UatCsr::Ucid, 0x10000),
              Fault::IllegalCsr);
    uat->forcePrivileged(0, false);
}

TEST_F(UatSystemTest, DisablingUatpFallsBackToPageTables)
{
    uat->csrFile(0).setUatp(table->baseAddr(), false);
    UatAccess acc = accessAs(0, pd, vma, Perm::r());
    EXPECT_EQ(acc.fault, Fault::NotUatVa);
    uat->csrFile(0).setUatp(table->baseAddr(), true);
}

// --- Hardware shootdown ------------------------------------------------------------

TEST_F(UatSystemTest, VteWriteShootsDownRemoteVlbs)
{
    Addr vte = table->vteAddrOf(vma);
    // Core 3 caches the translation.
    uat->csrFile(3).ucid = pd;
    ASSERT_TRUE(uat->dataAccess(3, vma, Perm::r()).ok());
    ASSERT_TRUE(uat->dvlb(3).holdsVte(vte));

    // Core 0 (PrivLib) writes the VTE with the T bit.
    uat->vteWrite(0, vte);
    EXPECT_FALSE(uat->dvlb(3).holdsVte(vte));
    uat->csrFile(3).ucid = 0;
}

TEST_F(UatSystemTest, LocalDirtyVteWriteInvalidatesOnlyLocally)
{
    Addr vte = table->vteAddrOf(vma);
    uat->csrFile(0).ucid = pd;
    uat->dataAccess(0, vma, Perm::r());
    uat->csrFile(0).ucid = 0;
    uat->vteWrite(0, vte); // first write: coherence traffic
    uat->dataAccess(0, vma, Perm::r());
    auto samples_before = uat->shootdownLatency().count();
    uat->vteWrite(0, vte); // dirty in own L1: local-only
    EXPECT_FALSE(uat->dvlb(0).holdsVte(vte));
    EXPECT_EQ(uat->shootdownLatency().count(), samples_before);
}

TEST_F(UatSystemTest, VictimCacheCornerCase)
{
    // VTE line in a core's L1 while the VTD entry is evicted: the
    // directory eviction must pessimistically install the sharers.
    Addr vte = table->vteAddrOf(vma);
    uat->csrFile(5).ucid = pd;
    uat->dataAccess(5, vma, Perm::r());
    uat->vtd().remove(vte); // simulate VTD capacity eviction
    coherence->evictDirectory(vte);
    auto sharers = uat->vtd().sharers(vte);
    ASSERT_TRUE(sharers.has_value());
    EXPECT_TRUE(sharers->test(5));
    uat->csrFile(5).ucid = 0;
}

TEST_F(UatSystemTest, ShootdownLatencySampled)
{
    Addr vte = table->vteAddrOf(vma);
    uat->csrFile(9).ucid = pd;
    uat->dataAccess(9, vma, Perm::r());
    uat->csrFile(9).ucid = 0;
    auto before = uat->shootdownLatency().count();
    uat->vteWrite(0, vte);
    EXPECT_EQ(uat->shootdownLatency().count(), before + 1);
    EXPECT_GT(uat->shootdownLatency().max(), 0.0);
}

} // namespace
