// detlint corpus: justified suppressions — zero findings expected.
#include <cstdlib>
#include <unordered_set>

unsigned
sanctioned()
{
    // detlint: allow(D1, "corpus stand-in for the sim::env entry")
    const char *v = std::getenv("JORD_CORPUS");
    std::unordered_set<unsigned> ids = {1, 2, 3};
    unsigned parity = 0;
    // detlint: allow(D2, "xor accumulation is order-insensitive")
    for (unsigned id : ids)
        parity ^= id;
    return parity + (v != nullptr ? 1u : 0u);
}
