// detlint corpus: D2 positives — hash-order iteration hazards.
#include <string>
#include <unordered_map>
#include <unordered_set>

std::unordered_map<int, int> snapshot();

double
sumScores()
{
    std::unordered_map<std::string, double> scores;
    double sum = 0;
    for (const auto &kv : scores)
        sum += kv.second;
    return sum;
}

int
firstId()
{
    std::unordered_set<int> ids = {1, 2, 3};
    auto it = ids.begin();
    return *it;
}

void
drain()
{
    for (const auto &kv : snapshot())
        (void)kv;
    for (int v : std::unordered_set<int>{4, 5})
        (void)v;
}
