// detlint corpus: D4 positives — mutable namespace-scope, static
// member, and static-local state.
#include <cstdint>

unsigned gRequestCounter = 0;

namespace stats {
double gTotalUs;
} // namespace stats

struct Cache {
    static int hits;
};

int
nextId()
{
    static int id = 0;
    return ++id;
}
