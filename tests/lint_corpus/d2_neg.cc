// detlint corpus: D2 negatives — ordered iteration and keyed access
// into unordered containers are fine.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

double
orderedSum()
{
    std::map<std::string, double> scores;
    double sum = 0;
    for (const auto &kv : scores)
        sum += kv.second;
    std::vector<int> v{1, 2, 3};
    for (int x : v)
        sum += x;
    return sum;
}

int
keyedLookup()
{
    std::unordered_map<int, int> cache;
    auto it = cache.find(7);
    return it == cache.end() ? 0 : it->second;
}
