// detlint corpus: D4 negatives — constants, declarations, and plain
// locals carry no mutable static state.
#include <cstdint>
#include <string>

constexpr unsigned kMaxJobs = 64;
const char *const kName = "jord";

unsigned parseFlags(const char *arg);

struct Limits {
    static constexpr int kDepth = 8;
};

unsigned
localOnly(unsigned x)
{
    unsigned counter = x;
    static const std::string kTag = "tag";
    return counter + kTag.size();
}
