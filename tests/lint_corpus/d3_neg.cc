// detlint corpus: D3 negatives — pointer *values* and non-pointer
// keys never fire.
#include <map>
#include <set>
#include <string>

struct Node;

void
cleanContainers()
{
    std::map<int, Node *> byId;
    std::set<std::string> names;
    std::map<std::string, Node *> index;
    (void)byId;
    (void)names;
    (void)index;
}
