// detlint corpus: D3 positives — pointer keys order by allocation
// address, which varies run to run.
#include <functional>
#include <map>
#include <set>

struct Node;

int
countPointers(Node *a, Node *b)
{
    std::map<Node *, int> rank;
    std::set<const Node *> seen;
    std::less<Node *> cmp;
    rank[a] = 1;
    seen.insert(b);
    return cmp(a, b) ? 1 : 0;
}
