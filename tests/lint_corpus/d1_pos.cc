// detlint corpus: D1 positives. Every banned nondeterminism source in
// this file must fire; lines are pinned by d1_pos.expect.
#include <chrono>
#include <cstdlib>
#include <ctime>
#include <random>
#include <thread>

unsigned
entropySoup()
{
    std::random_device rd;
    unsigned a = static_cast<unsigned>(std::rand());
    std::time_t t = std::time(nullptr);
    auto wall = std::chrono::system_clock::now();
    auto mono = std::chrono::steady_clock::now();
    auto fine = std::chrono::high_resolution_clock::now();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const char *home = std::getenv("HOME");
    (void)t;
    (void)wall;
    (void)mono;
    (void)fine;
    (void)home;
    return rd() + a;
}
