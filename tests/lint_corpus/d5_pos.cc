// detlint corpus: D5 positives — RNG engines without an explicit seed
// expression, including an explicitly {}-inited member.
#include <random>

struct Bad {
    std::mt19937 rng{};
};

unsigned
unseededDraws()
{
    std::mt19937 gen;
    std::mt19937_64 wide{};
    sim::Rng local;
    unsigned x = std::default_random_engine()();
    return gen() + wide() + local.next() + x;
}
