// detlint corpus: D5 negatives — seeded construction everywhere, and
// the ctor-initializer-list exemption for class members.
#include <cstdint>
#include <random>

struct Worker {
    std::mt19937 rng;
    explicit Worker(std::uint64_t seed) : rng(seed) {}
};

std::uint64_t
seededDraws(std::uint64_t seed)
{
    std::mt19937 gen(seed);
    std::mt19937_64 wide{seed * 3};
    sim::Rng local(seed);
    Worker w(seed);
    return gen() + wide() + local.next() + w.rng();
}
