// detlint corpus: D1 negatives. Lookalikes that must not fire: member
// calls, foreign-namespace qualification, idents that are not calls.
// Corpus files are linted, never compiled, so Stopwatch stays opaque.
#include <chrono>

struct Stopwatch;
struct Config;

double
cleanUses(Stopwatch *sw, Config &cfg)
{
    double t = sw->time();
    unsigned r = sw->rand();
    unsigned q = fake::rand();
    const char *v = cfg.getenv("JORD_CORPUS");
    auto tick = std::chrono::microseconds(200);
    unsigned time_budget = 3;
    return t + r + q + time_budget + tick.count() +
           (v != nullptr ? 1 : 0);
}
