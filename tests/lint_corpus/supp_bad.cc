// detlint corpus: suppressions that must be rejected (rule SUPP). The
// underlying findings still fire: a bad suppression hides nothing.
#include <cstdlib>

const char *
unjustified()
{
    // detlint: allow(D1)
    const char *a = std::getenv("PATH");
    // detlint: allow(D1, "")
    const char *b = std::getenv("HOME");
    // detlint: allow(D9, "no such rule")
    const char *c = std::getenv("TERM");
    return a != nullptr ? a : b != nullptr ? b : c;
}
