/**
 * @file
 * Tests for the FaaS runtime: registry, worker assembly, JBSQ dispatch,
 * nested-invocation deadlock freedom (§3.3), accounting invariants, and
 * run determinism.
 */

#include <gtest/gtest.h>

#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using runtime::CallSpec;
using runtime::EntryMix;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;
using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

FunctionSpec
makeSpec(const char *name, double exec_us,
         std::vector<CallSpec> calls = {})
{
    FunctionSpec spec;
    spec.name = name;
    spec.execMeanUs = exec_us;
    spec.execCv = 0.1;
    spec.calls = std::move(calls);
    return spec;
}

// --- Registry ---------------------------------------------------------------

TEST(FunctionRegistry, AssignsDenseIds)
{
    FunctionRegistry reg;
    auto a = reg.add(makeSpec("a", 1));
    auto b = reg.add(makeSpec("b", 1));
    EXPECT_EQ(a, 0u);
    EXPECT_EQ(b, 1u);
    EXPECT_EQ(reg.at(a).spec.name, "a");
    EXPECT_EQ(reg.findByName("b").value(), b);
    EXPECT_FALSE(reg.findByName("zz").has_value());
}

TEST(FunctionRegistry, DeployCreatesDistinctCodeVmas)
{
    FunctionRegistry reg;
    reg.add(makeSpec("a", 1));
    reg.add(makeSpec("b", 1));
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    auto &deployed = worker.registry();
    EXPECT_NE(deployed.at(0).codeVma, 0u);
    EXPECT_NE(deployed.at(1).codeVma, 0u);
    EXPECT_NE(deployed.at(0).codeVma, deployed.at(1).codeVma);
}

// --- Basic runs ---------------------------------------------------------------

class RuntimeTest : public ::testing::Test
{
  protected:
    FunctionRegistry reg;
    runtime::FunctionId leafFn = 0;
    runtime::FunctionId parentFn = 0;
    runtime::FunctionId syncFn = 0;

    void
    SetUp() override
    {
        leafFn = reg.add(makeSpec("leaf", 0.5));
        parentFn = reg.add(makeSpec(
            "parent", 1.0,
            {CallSpec{leafFn, 512, false}, CallSpec{leafFn, 512, false}}));
        syncFn = reg.add(makeSpec("syncer", 1.0,
                                  {CallSpec{leafFn, 512, true}}));
    }
};

TEST_F(RuntimeTest, LeafOnlyRunCompletes)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 1000, {{leafFn, 1.0}});
    EXPECT_EQ(res.completedRequests, 800u); // post-warmup
    EXPECT_EQ(res.invocations, 800u);
    EXPECT_GT(res.latencyUs.mean(), 0.4);
}

TEST_F(RuntimeTest, NestedInvocationConservation)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 1000, {{parentFn, 1.0}});
    // Each measured request yields 1 parent + 2 children invocations.
    EXPECT_EQ(res.invocations, 3 * res.completedRequests);
    EXPECT_EQ(res.perFunctionCount[leafFn],
              2 * res.completedRequests);
}

TEST_F(RuntimeTest, SyncCallWaitsForChild)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.1, 500, {{syncFn, 1.0}});
    // Parent service time must include the child's (~0.5 us) on top of
    // its own ~1 us execution.
    EXPECT_GT(res.perFunctionServiceUs[syncFn].mean(), 1.4);
}

TEST_F(RuntimeTest, LatencyIncludesQueueingUnderLoad)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult light = worker.run(0.2, 2000, {{parentFn, 1.0}});
    WorkerServer worker2(cfg, reg);
    RunResult heavy = worker2.run(9.0, 2000, {{parentFn, 1.0}});
    EXPECT_GT(heavy.latencyUs.p99(), light.latencyUs.p99());
}

TEST_F(RuntimeTest, DeterministicForSameSeed)
{
    WorkerConfig cfg;
    cfg.seed = 777;
    WorkerServer a(cfg, reg);
    WorkerServer b(cfg, reg);
    RunResult ra = a.run(1.0, 1500, {{parentFn, 1.0}});
    RunResult rb = b.run(1.0, 1500, {{parentFn, 1.0}});
    EXPECT_DOUBLE_EQ(ra.latencyUs.mean(), rb.latencyUs.mean());
    EXPECT_DOUBLE_EQ(ra.latencyUs.p99(), rb.latencyUs.p99());
    EXPECT_EQ(ra.invocations, rb.invocations);
}

TEST_F(RuntimeTest, DifferentSeedsDiffer)
{
    WorkerConfig cfg;
    cfg.seed = 1;
    WorkerServer a(cfg, reg);
    cfg.seed = 2;
    WorkerServer b(cfg, reg);
    RunResult ra = a.run(1.0, 1500, {{parentFn, 1.0}});
    RunResult rb = b.run(1.0, 1500, {{parentFn, 1.0}});
    EXPECT_NE(ra.latencyUs.mean(), rb.latencyUs.mean());
}

TEST_F(RuntimeTest, BreakdownCoversServiceTime)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(1.0, 1500, {{parentFn, 1.0}});
    const runtime::Breakdown &bd = res.totals;
    EXPECT_GT(bd.exec, 0u);
    EXPECT_GT(bd.isolation, 0u);
    EXPECT_GT(bd.comm, 0u);
    EXPECT_EQ(bd.pipe, 0u); // not NightCore
    // Execution dominates at low load for this workload.
    EXPECT_GT(bd.exec, bd.isolation);
}

TEST_F(RuntimeTest, NightCorePipesReplaceIsolation)
{
    WorkerConfig cfg;
    cfg.system = SystemKind::NightCore;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 1000, {{parentFn, 1.0}});
    EXPECT_GT(res.totals.pipe, 0u);
    EXPECT_EQ(res.totals.isolation, 0u);
    EXPECT_EQ(res.totals.comm, 0u);
}

TEST_F(RuntimeTest, JordNiCheaperThanJordPerInvocation)
{
    WorkerConfig cfg;
    WorkerServer jord_worker(cfg, reg);
    RunResult jord = jord_worker.run(1.0, 3000, {{parentFn, 1.0}});
    cfg.system = SystemKind::JordNI;
    WorkerServer ni_worker(cfg, reg);
    RunResult ni = ni_worker.run(1.0, 3000, {{parentFn, 1.0}});
    double jord_iso = static_cast<double>(jord.totals.isolation) /
                      static_cast<double>(jord.invocations);
    double ni_iso = static_cast<double>(ni.totals.isolation) /
                    static_cast<double>(ni.invocations);
    EXPECT_LT(ni_iso, jord_iso);
}

TEST_F(RuntimeTest, DispatchLatencySampled)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(1.0, 1000, {{leafFn, 1.0}});
    EXPECT_GT(res.dispatchNs.count(), 0u);
    EXPECT_GT(res.dispatchNs.mean(), 1.0);
    EXPECT_LT(res.dispatchNs.mean(), 200.0);
}

TEST_F(RuntimeTest, ShootdownsSampledForJord)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(1.0, 2000, {{parentFn, 1.0}});
    EXPECT_GT(res.shootdownNs.count(), 0u);
}

TEST_F(RuntimeTest, WarmupExcludedFromMetrics)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 1000, {{leafFn, 1.0}}, 0.5);
    EXPECT_EQ(res.completedRequests, 500u);
}

TEST_F(RuntimeTest, AchievedTracksOfferedBelowSaturation)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(2.0, 4000, {{leafFn, 1.0}});
    EXPECT_NEAR(res.achievedMrps, 2.0, 0.3);
}

TEST_F(RuntimeTest, AchievedSaturatesUnderOverload)
{
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    // ~28 executors x ~0.5us+overheads => far below 60 MRPS.
    RunResult res = worker.run(60.0, 4000, {{leafFn, 1.0}});
    EXPECT_LT(res.achievedMrps, 45.0);
    EXPECT_GT(res.latencyUs.p99(), 20.0);
}

// --- Deadlock freedom ----------------------------------------------------------

TEST(RuntimeDeadlock, DeepNestedChainsCompleteUnderOverload)
{
    // A chain of sync calls four levels deep, driven far past
    // saturation: internal-first dispatch (§3.3) must keep every
    // request completing.
    FunctionRegistry reg;
    auto l3 = reg.add(makeSpec("l3", 0.3));
    auto l2 = reg.add(makeSpec("l2", 0.3, {CallSpec{l3, 256, true}}));
    auto l1 = reg.add(makeSpec("l1", 0.3, {CallSpec{l2, 256, true}}));
    auto l0 = reg.add(makeSpec("l0", 0.3, {CallSpec{l1, 256, true}}));

    WorkerConfig cfg;
    cfg.jbsqBound = 1; // tightest external bound
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(30.0, 3000, {{l0, 1.0}});
    EXPECT_EQ(res.completedRequests, 2400u); // all measured finished
}

TEST(RuntimeDeadlock, WideFanOutCompletes)
{
    FunctionRegistry reg;
    auto leaf = reg.add(makeSpec("leaf", 0.2));
    std::vector<CallSpec> calls(64, CallSpec{leaf, 256, false});
    auto fan = reg.add(makeSpec("fan", 0.5, std::move(calls)));

    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(1.0, 600, {{fan, 1.0}});
    EXPECT_EQ(res.completedRequests, 480u);
    EXPECT_EQ(res.invocations, 480u * 65);
}

// --- Configuration variants ------------------------------------------------------

TEST(RuntimeConfig, SingleOrchestratorWorks)
{
    FunctionRegistry reg;
    auto fn = reg.add(makeSpec("f", 0.5));
    WorkerConfig cfg;
    cfg.numOrchestrators = 1;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 500, {{fn, 1.0}});
    EXPECT_EQ(res.completedRequests, 400u);
}

TEST(RuntimeConfig, MultiSocketPerSocketOrchestrators)
{
    FunctionRegistry reg;
    auto fn = reg.add(makeSpec("f", 0.5));
    WorkerConfig cfg;
    cfg.machine = sim::MachineConfig::scaled(64, 2);
    cfg.numOrchestrators = 4;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(1.0, 1000, {{fn, 1.0}});
    EXPECT_EQ(res.completedRequests, 800u);
}

TEST(RuntimeConfig, SmallMachineWorks)
{
    FunctionRegistry reg;
    auto fn = reg.add(makeSpec("f", 0.5));
    WorkerConfig cfg;
    cfg.machine = sim::MachineConfig::scaled(16, 1);
    cfg.numOrchestrators = 2;
    WorkerServer worker(cfg, reg);
    RunResult res = worker.run(0.5, 500, {{fn, 1.0}});
    EXPECT_EQ(res.completedRequests, 400u);
}

TEST(RuntimeConfig, RepeatedRunsOnSameWorker)
{
    FunctionRegistry reg;
    auto fn = reg.add(makeSpec("f", 0.5));
    WorkerConfig cfg;
    WorkerServer worker(cfg, reg);
    RunResult first = worker.run(0.5, 400, {{fn, 1.0}});
    RunResult second = worker.run(0.5, 400, {{fn, 1.0}});
    EXPECT_EQ(first.completedRequests, second.completedRequests);
}

} // namespace
