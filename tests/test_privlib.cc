/**
 * @file
 * Tests for PrivLib: the Table 1 API semantics, resource management
 * (free lists, magazines, kernel refills), policy checks, and the
 * Jord_NI bypass mode.
 */

#include "tests/fixture.hh"

namespace {

using jord::privlib::PrivLib;
using jord::privlib::PrivOp;
using jord::privlib::PrivResult;
using jord::sim::Addr;
using jord::test::JordStackTest;
using jord::uat::Fault;
using jord::uat::PdId;
using jord::uat::Perm;

class PrivLibTest : public JordStackTest
{
  protected:
    /** Run @p fn with the core's ucid set to @p pd. */
    template <typename Fn>
    auto
    as(unsigned core, PdId pd, Fn &&fn)
    {
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = pd;
        auto res = fn();
        uat->csrFile(core).ucid = saved;
        return res;
    }
};

// --- mmap / munmap -----------------------------------------------------------

TEST_F(PrivLibTest, MmapReturnsUatVaWithRequestedBound)
{
    PrivResult res = privlib->mmap(0, 1000, Perm::rw());
    ASSERT_TRUE(res.ok);
    EXPECT_TRUE(jord::uat::VaEncoding::inUatRegion(res.value));
    const jord::uat::Vte *vte = table->vteFor(res.value);
    ASSERT_NE(vte, nullptr);
    EXPECT_EQ(vte->bound, 1000u);
    EXPECT_TRUE(vte->valid());
}

TEST_F(PrivLibTest, MmapPicksSmallestCoveringClass)
{
    PrivResult small = privlib->mmap(0, 100, Perm::rw());
    PrivResult big = privlib->mmap(0, 100000, Perm::rw());
    jord::uat::VaEncoding enc;
    EXPECT_EQ(enc.decode(small.value)->sizeClass, 0u);
    EXPECT_EQ(enc.decode(big.value)->sizeClass, 10u); // 128 KB
}

TEST_F(PrivLibTest, MmapZeroOrHugeRejected)
{
    EXPECT_FALSE(privlib->mmap(0, 0, Perm::rw()).ok);
    EXPECT_FALSE(privlib->mmap(0, 8ull << 30, Perm::rw()).ok);
}

TEST_F(PrivLibTest, DistinctVmasGetDistinctChunks)
{
    PrivResult a = privlib->mmap(0, 4096, Perm::rw());
    PrivResult b = privlib->mmap(0, 4096, Perm::rw());
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_NE(a.value, b.value);
    // Physical chunks must not alias either.
    auto pa = uat->dataAccess(0, a.value, Perm::r());
    auto pb = uat->dataAccess(0, b.value, Perm::r());
    EXPECT_NE(pa.pa, pb.pa);
}

TEST_F(PrivLibTest, MunmapRecyclesVaAndPhys)
{
    PrivResult a = privlib->mmap(0, 4096, Perm::rw());
    ASSERT_TRUE(privlib->munmap(0, a.value, 4096).ok);
    PrivResult b = privlib->mmap(0, 4096, Perm::rw());
    // LIFO magazine: the same VA index comes right back.
    EXPECT_EQ(b.value, a.value);
}

TEST_F(PrivLibTest, MunmapRequiresExactBound)
{
    PrivResult a = privlib->mmap(0, 4096, Perm::rw());
    EXPECT_FALSE(privlib->munmap(0, a.value, 2048).ok);
    EXPECT_TRUE(privlib->munmap(0, a.value, 4096).ok);
}

TEST_F(PrivLibTest, MunmapByNonBaseAddressRejected)
{
    PrivResult a = privlib->mmap(0, 4096, Perm::rw());
    PrivResult res = privlib->munmap(0, a.value + 64, 4096);
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.fault, Fault::NotMapped);
}

TEST_F(PrivLibTest, DoubleMunmapFails)
{
    PrivResult a = privlib->mmap(0, 4096, Perm::rw());
    EXPECT_TRUE(privlib->munmap(0, a.value, 4096).ok);
    EXPECT_FALSE(privlib->munmap(0, a.value, 4096).ok);
}

TEST_F(PrivLibTest, SubPageVmasShareNoBytes)
{
    // Two 128-byte VMAs may live in one physical page but must get
    // non-overlapping chunks (§4.1).
    PrivResult a = privlib->mmap(0, 128, Perm::rw());
    PrivResult b = privlib->mmap(0, 128, Perm::rw());
    auto pa = uat->dataAccess(0, a.value, Perm::r()).pa;
    auto pb = uat->dataAccess(0, b.value, Perm::r()).pa;
    EXPECT_GE(pb > pa ? pb - pa : pa - pb, 128u);
}

// --- mprotect ------------------------------------------------------------------

TEST_F(PrivLibTest, MprotectChangesPermission)
{
    PdId pd = mustCget(0);
    Addr vma = mustMmapFor(0, pd, 4096, Perm::rw());
    PrivResult res = as(0, pd, [&] {
        return privlib->mprotect(0, vma, 4096, Perm::r());
    });
    ASSERT_TRUE(res.ok);
    uat->csrFile(0).ucid = pd;
    EXPECT_TRUE(uat->dataAccess(0, vma, Perm::r()).ok());
    EXPECT_EQ(uat->dataAccess(0, vma, Perm(Perm::W)).fault,
              Fault::NoPermission);
    uat->csrFile(0).ucid = 0;
}

TEST_F(PrivLibTest, MprotectResizesWithinChunk)
{
    PrivResult a = privlib->mmap(0, 1024, Perm::rw());
    // Grow into the reserved trailing part of the 1 KB chunk... the
    // chunk is exactly 1 KB, so growing beyond it must fail.
    EXPECT_FALSE(privlib->mprotect(0, a.value, 2048, Perm::rw()).ok);
    EXPECT_TRUE(privlib->mprotect(0, a.value, 512, Perm::rw()).ok);
    EXPECT_EQ(table->vteFor(a.value)->bound, 512u);
}

TEST_F(PrivLibTest, MprotectUnmappedFails)
{
    jord::uat::VaEncoding enc;
    EXPECT_FALSE(
        privlib->mprotect(0, enc.encode(3, 77), 128, Perm::r()).ok);
}

// --- pmove / pcopy ----------------------------------------------------------------

TEST_F(PrivLibTest, PmoveTransfersOwnership)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    Addr vma = mustMmapFor(0, a, 4096, Perm::rw());

    PrivResult res = as(0, a, [&] {
        return privlib->pmove(0, vma, b, Perm::rw());
    });
    ASSERT_TRUE(res.ok);

    uat->csrFile(0).ucid = b;
    EXPECT_TRUE(uat->dataAccess(0, vma, Perm::rw()).ok());
    uat->csrFile(0).ucid = a;
    EXPECT_EQ(uat->dataAccess(0, vma, Perm::r()).fault,
              Fault::NoPermission);
    uat->csrFile(0).ucid = 0;
}

TEST_F(PrivLibTest, PcopyKeepsSourceAccess)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    Addr vma = mustMmapFor(0, a, 4096, Perm::rw());

    PrivResult res = as(0, a, [&] {
        return privlib->pcopy(0, vma, b, Perm::r());
    });
    ASSERT_TRUE(res.ok);

    uat->csrFile(0).ucid = a;
    EXPECT_TRUE(uat->dataAccess(0, vma, Perm::rw()).ok());
    uat->csrFile(0).ucid = b;
    EXPECT_TRUE(uat->dataAccess(0, vma, Perm::r()).ok());
    EXPECT_EQ(uat->dataAccess(0, vma, Perm(Perm::W)).fault,
              Fault::NoPermission);
    uat->csrFile(0).ucid = 0;
}

TEST_F(PrivLibTest, DelegationCannotAmplifyRights)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    Addr vma = mustMmapFor(0, a, 4096, Perm::r());
    PrivResult res = as(0, a, [&] {
        return privlib->pcopy(0, vma, b, Perm::rw());
    });
    EXPECT_FALSE(res.ok);
    EXPECT_EQ(res.fault, Fault::NoPermission);
}

TEST_F(PrivLibTest, PmoveToInvalidPdRejected)
{
    PdId a = mustCget(0);
    Addr vma = mustMmapFor(0, a, 4096, Perm::rw());
    PrivResult res = as(0, a, [&] {
        return privlib->pmove(0, vma, 999, Perm::rw());
    });
    EXPECT_FALSE(res.ok);
}

TEST_F(PrivLibTest, PmoveBetweenIsRootOnly)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    Addr vma = mustMmapFor(0, a, 4096, Perm::rw());

    PrivResult from_pd = as(0, a, [&] {
        return privlib->pmoveBetween(0, vma, a, b, Perm::rw());
    });
    EXPECT_FALSE(from_pd.ok);

    PrivResult from_root =
        privlib->pmoveBetween(0, vma, a, b, Perm::rw());
    EXPECT_TRUE(from_root.ok);
}

TEST_F(PrivLibTest, MoreThanTwentySharersSpillToOverflow)
{
    Addr vma = mustMmapFor(0, PrivLib::kRootPd, 4096, Perm::rw());
    std::vector<PdId> pds;
    for (unsigned i = 0; i < 25; ++i) {
        PdId pd = mustCget(0);
        pds.push_back(pd);
        ASSERT_TRUE(privlib->pcopy(0, vma, pd, Perm::r()).ok)
            << "sharer " << i;
    }
    // Every PD, including the spilled ones, can read.
    for (PdId pd : pds) {
        uat->csrFile(0).ucid = pd;
        uat->dvlb(0).invalidateAll();
        EXPECT_TRUE(uat->dataAccess(0, vma, Perm::r()).ok());
    }
    uat->csrFile(0).ucid = 0;
    const jord::uat::Vte *vte = table->vteFor(vma);
    EXPECT_NE(vte->ptr, 0u); // overflow list engaged
}

// --- PD lifecycle --------------------------------------------------------------

TEST_F(PrivLibTest, CgetCputLifecycle)
{
    unsigned before = privlib->numLivePds();
    PdId pd = mustCget(0);
    EXPECT_TRUE(privlib->pdValid(pd));
    EXPECT_EQ(privlib->numLivePds(), before + 1);
    EXPECT_TRUE(privlib->cput(0, pd).ok);
    EXPECT_FALSE(privlib->pdValid(pd));
    EXPECT_EQ(privlib->numLivePds(), before);
}

TEST_F(PrivLibTest, CputGuardsAgainstLeakedPermissions)
{
    PdId pd = mustCget(0);
    Addr vma = mustMmapFor(0, pd, 4096, Perm::rw());
    // Destroying a PD that still holds permissions would leak them to
    // the next owner of the recycled id.
    EXPECT_FALSE(privlib->cput(0, pd).ok);
    as(0, pd, [&] { return privlib->munmap(0, vma, 4096); });
    EXPECT_TRUE(privlib->cput(0, pd).ok);
}

TEST_F(PrivLibTest, CputPolicyChecks)
{
    PdId pd = mustCget(0);
    EXPECT_FALSE(privlib->cput(0, PrivLib::kRootPd).ok);
    EXPECT_FALSE(privlib->cput(0, 1234).ok); // invalid
    // A PD cannot destroy itself.
    PrivResult self = as(0, pd, [&] { return privlib->cput(0, pd); });
    EXPECT_FALSE(self.ok);
}

TEST_F(PrivLibTest, NonCreatorCannotDestroy)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    PrivResult res = as(0, a, [&] { return privlib->cput(0, b); });
    EXPECT_FALSE(res.ok); // b was created by root, not by a
}

TEST_F(PrivLibTest, CcallCexitNesting)
{
    PdId pd = mustCget(0);
    EXPECT_EQ(privlib->currentPd(0), PrivLib::kRootPd);
    ASSERT_TRUE(privlib->ccall(0, pd).ok);
    EXPECT_EQ(privlib->currentPd(0), pd);
    EXPECT_EQ(privlib->domainDepth(0), 1u);
    ASSERT_TRUE(privlib->cexit(0).ok);
    EXPECT_EQ(privlib->currentPd(0), PrivLib::kRootPd);
    EXPECT_EQ(privlib->domainDepth(0), 0u);
}

TEST_F(PrivLibTest, CexitWithoutCcallFails)
{
    EXPECT_FALSE(privlib->cexit(0).ok);
}

TEST_F(PrivLibTest, CenterResumesSuspendedPd)
{
    PdId pd = mustCget(0);
    privlib->ccall(0, pd);
    privlib->cexit(0);
    ASSERT_TRUE(privlib->center(0, pd).ok);
    EXPECT_EQ(privlib->currentPd(0), pd);
    privlib->cexit(0);
}

TEST_F(PrivLibTest, FunctionCanManageItsOwnChildPds)
{
    PdId parent = mustCget(0);
    uat->csrFile(0).ucid = parent;
    PrivResult child = privlib->cget(0);
    ASSERT_TRUE(child.ok);
    PdId child_pd = static_cast<PdId>(child.value);
    EXPECT_TRUE(privlib->ccall(0, child_pd).ok);
    EXPECT_TRUE(privlib->cexit(0).ok);
    EXPECT_TRUE(privlib->cput(0, child_pd).ok);
    uat->csrFile(0).ucid = 0;
}

TEST_F(PrivLibTest, ForeignPdCannotBeEntered)
{
    PdId a = mustCget(0);
    PdId b = mustCget(0);
    PrivResult res = as(0, a, [&] { return privlib->ccall(0, b); });
    EXPECT_FALSE(res.ok);
}

TEST_F(PrivLibTest, PdIdsAreRecycled)
{
    PdId pd = mustCget(0);
    privlib->cput(0, pd);
    PdId again = mustCget(0);
    EXPECT_EQ(again, pd); // LIFO magazine
}

// --- Resource pressure ------------------------------------------------------------

TEST_F(PrivLibTest, ManyConcurrentVmas)
{
    std::vector<Addr> vmas;
    for (int i = 0; i < 2000; ++i) {
        PrivResult res = privlib->mmap(0, 256, Perm::rw());
        ASSERT_TRUE(res.ok) << "iteration " << i;
        vmas.push_back(res.value);
    }
    for (Addr vma : vmas)
        ASSERT_TRUE(privlib->munmap(0, vma, 256).ok);
}

TEST_F(PrivLibTest, KernelRefillHappensTransparently)
{
    auto syscalls_before = kernel->numSyscalls();
    for (int i = 0; i < 200; ++i) {
        PrivResult res = privlib->mmap(0, 1 << 20, Perm::rw());
        ASSERT_TRUE(res.ok);
    }
    EXPECT_GT(kernel->numSyscalls(), syscalls_before);
}

TEST_F(PrivLibTest, MagazinesMakeWarmOpsCheap)
{
    // Warm up, then verify the warm mmap/munmap pair is far below the
    // cold path (no syscall, no shared-head bouncing).
    jord::sim::Cycles warm_mmap = 0;
    for (int i = 0; i < 50; ++i) {
        PrivResult m = privlib->mmap(0, 4096, Perm::rw());
        privlib->munmap(0, m.value, 4096);
        warm_mmap = m.latency;
    }
    EXPECT_LT(jord::sim::cyclesToNs(warm_mmap, cfg.freqGhz), 30.0);
}

TEST_F(PrivLibTest, OpStatsAccumulate)
{
    privlib->resetStats();
    privlib->mmap(0, 4096, Perm::rw());
    PdId pd = mustCget(0);
    privlib->ccall(0, pd);
    privlib->cexit(0);
    EXPECT_EQ(privlib->stats(PrivOp::Mmap).count, 1u);
    EXPECT_EQ(privlib->stats(PrivOp::Cget).count, 1u);
    EXPECT_EQ(privlib->stats(PrivOp::Ccall).count, 1u);
    EXPECT_GT(privlib->vmaManagementCycles(), 0u);
    EXPECT_GT(privlib->pdManagementCycles(), 0u);
}

// --- Jord_NI bypass ---------------------------------------------------------------

TEST_F(PrivLibTest, BypassMakesVmasGlobal)
{
    privlib->setIsolationBypass(true);
    PrivResult res = privlib->mmap(0, 4096, Perm::rw());
    ASSERT_TRUE(res.ok);
    // Any PD can access: no isolation.
    uat->csrFile(0).ucid = 77;
    EXPECT_TRUE(uat->dataAccess(0, res.value, Perm::rw()).ok());
    uat->csrFile(0).ucid = 0;
    privlib->setIsolationBypass(false);
}

TEST_F(PrivLibTest, BypassedIsolationOpsAreNearFree)
{
    privlib->setIsolationBypass(true);
    PrivResult res = privlib->mmap(0, 4096, Perm::rw());
    PrivResult mv = privlib->pmove(0, res.value, 5, Perm::rw());
    EXPECT_TRUE(mv.ok);
    EXPECT_LE(mv.latency, 4u);
    privlib->setIsolationBypass(false);
}

} // namespace
