/**
 * @file
 * Tests for the machine configuration and the 2D-mesh NoC model.
 */

#include <gtest/gtest.h>

#include "noc/mesh.hh"
#include "sim/machine.hh"

namespace {

using jord::noc::Mesh;
using jord::noc::MsgKind;
using jord::sim::MachineConfig;

TEST(MachineConfig, DefaultMatchesTable2)
{
    MachineConfig cfg = MachineConfig::isca25Default();
    EXPECT_EQ(cfg.numCores, 32u);
    EXPECT_DOUBLE_EQ(cfg.freqGhz, 4.0);
    EXPECT_EQ(cfg.meshCols, 8u);
    EXPECT_EQ(cfg.meshRows, 4u);
    EXPECT_EQ(cfg.l1HitCycles, 2u);
    EXPECT_EQ(cfg.llcHitCycles, 6u);
    EXPECT_EQ(cfg.hopCycles, 3u);
    EXPECT_EQ(cfg.linkBytes, 16u);
    EXPECT_EQ(cfg.ivlbEntries, 16u);
    EXPECT_EQ(cfg.dvlbEntries, 16u);
    EXPECT_EQ(cfg.l1Lines, 512u);
}

TEST(MachineConfig, ScaledCoversAllCores)
{
    for (unsigned cores : {16u, 64u, 128u, 256u}) {
        MachineConfig cfg = MachineConfig::scaled(cores, 1);
        EXPECT_EQ(cfg.meshCols * cfg.meshRows, cores);
        EXPECT_GE(cfg.meshCols, cfg.meshRows);
    }
    MachineConfig dual = MachineConfig::scaled(256, 2);
    EXPECT_EQ(dual.coresPerSocket(), 128u);
    EXPECT_EQ(dual.meshCols * dual.meshRows, 128u);
}

TEST(MachineConfig, SocketOf)
{
    MachineConfig cfg = MachineConfig::scaled(256, 2);
    EXPECT_EQ(cfg.socketOf(0), 0u);
    EXPECT_EQ(cfg.socketOf(127), 0u);
    EXPECT_EQ(cfg.socketOf(128), 1u);
    EXPECT_EQ(cfg.socketOf(255), 1u);
}

TEST(MachineConfig, FpgaProfileScalesSoftwareOnly)
{
    MachineConfig sim_cfg = MachineConfig::isca25Default();
    MachineConfig fpga = MachineConfig::fpgaPrototype();
    EXPECT_DOUBLE_EQ(sim_cfg.swLatencyScale(), 1.0);
    EXPECT_GT(fpga.swLatencyScale(), 2.0);
    EXPECT_EQ(fpga.numCores, 2u);
}

TEST(MachineConfig, DescribeMentionsCores)
{
    EXPECT_NE(MachineConfig::isca25Default().describe().find("32-core"),
              std::string::npos);
}

class MeshTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = MachineConfig::isca25Default();
    Mesh mesh{cfg};
};

TEST_F(MeshTest, HopCountIsManhattan)
{
    // Tile 0 = (0,0); tile 9 = (1,1) on an 8-wide mesh.
    EXPECT_EQ(mesh.hops(0, 0), 0u);
    EXPECT_EQ(mesh.hops(0, 1), 1u);
    EXPECT_EQ(mesh.hops(0, 9), 2u);
    EXPECT_EQ(mesh.hops(0, 31), 7u + 3u);
}

TEST_F(MeshTest, HopsAreSymmetric)
{
    for (unsigned a = 0; a < 32; a += 3)
        for (unsigned b = 0; b < 32; b += 5)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
}

TEST_F(MeshTest, ControlVsDataSerialization)
{
    // 64 B block on 16 B links: 5 flits vs 1 flit -> 4 extra cycles.
    EXPECT_EQ(mesh.flits(MsgKind::Control), 1u);
    EXPECT_EQ(mesh.flits(MsgKind::Data), 5u);
    auto ctl = mesh.latency(0, 31, MsgKind::Control);
    auto data = mesh.latency(0, 31, MsgKind::Data);
    EXPECT_EQ(data - ctl, 4u);
}

TEST_F(MeshTest, LatencyScalesWithDistance)
{
    EXPECT_LT(mesh.latency(0, 1, MsgKind::Control),
              mesh.latency(0, 31, MsgKind::Control));
    // 10 hops at 3 cycles/hop.
    EXPECT_EQ(mesh.latency(0, 31, MsgKind::Control), 30u);
}

TEST_F(MeshTest, LocalSliceHasNoHops)
{
    EXPECT_EQ(mesh.latency(5, 5, MsgKind::Control), 0u);
    EXPECT_EQ(mesh.latency(5, 5, MsgKind::Data), 4u);
}

TEST_F(MeshTest, RoundTripIsRequestPlusResponse)
{
    auto rt = mesh.roundTrip(0, 31, MsgKind::Data);
    EXPECT_EQ(rt, mesh.latency(0, 31, MsgKind::Control) +
                      mesh.latency(31, 0, MsgKind::Data));
}

TEST_F(MeshTest, HomeSliceIsStableAndInRange)
{
    for (jord::sim::Addr addr = 0; addr < 100 * 64; addr += 64) {
        unsigned slice = mesh.homeSlice(addr, 0);
        EXPECT_LT(slice, 32u);
        EXPECT_EQ(slice, mesh.homeSlice(addr, 3));
    }
}

TEST_F(MeshTest, HomeSliceSpreadsBlocks)
{
    std::vector<unsigned> counts(32, 0);
    for (jord::sim::Addr addr = 0; addr < 3200 * 64; addr += 64)
        counts[mesh.homeSlice(addr, 0)]++;
    for (unsigned slice = 0; slice < 32; ++slice)
        EXPECT_GT(counts[slice], 50u) << "slice " << slice;
}

TEST(MeshMultiSocket, CrossSocketAddsLinkLatency)
{
    MachineConfig cfg = MachineConfig::scaled(256, 2);
    Mesh mesh(cfg);
    EXPECT_FALSE(mesh.crossSocket(0, 127));
    EXPECT_TRUE(mesh.crossSocket(0, 128));
    auto local = mesh.latency(0, 127, MsgKind::Control);
    auto remote = mesh.latency(0, 128, MsgKind::Control);
    EXPECT_GT(remote, local);
    EXPECT_GE(remote, cfg.interSocketCycles);
}

TEST(MeshMultiSocket, HomeSliceStaysInRequesterSocket)
{
    MachineConfig cfg = MachineConfig::scaled(256, 2);
    Mesh mesh(cfg);
    for (jord::sim::Addr addr = 0; addr < 64 * 64; addr += 64) {
        EXPECT_EQ(cfg.socketOf(mesh.homeSlice(addr, 5)), 0u);
        EXPECT_EQ(cfg.socketOf(mesh.homeSlice(addr, 200)), 1u);
    }
}

TEST(MeshMultiSocket, AvgLatencyGrowsWithScale)
{
    Mesh small(MachineConfig::scaled(16, 1));
    Mesh large(MachineConfig::scaled(256, 1));
    EXPECT_LT(small.avgLatencyFrom(0, MsgKind::Control),
              large.avgLatencyFrom(0, MsgKind::Control));
}

} // namespace
