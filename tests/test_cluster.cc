/**
 * @file
 * Fleet-scale simulation tests (src/cluster): shared arrival
 * generation, traffic models, LB policy invariants, autoscaler
 * hysteresis, admission control, cost accounting, determinism, and
 * per-server metrics namespacing.
 *
 * Fleet tests run on a hand-built ServerModel (no calibration runs),
 * so they exercise the cluster DES itself and stay fast; the
 * calibration path is covered by the --jobs byte-identity test in
 * test_par.cc and by the jordsim end-to-end test in test_tools.cc.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "cluster/cluster.hh"
#include "runtime/worker.hh"
#include "sim/arrivals.hh"
#include "trace/metrics.hh"
#include "workloads/workloads.hh"

using namespace jord;
using cluster::Arrival;
using cluster::ClusterConfig;
using cluster::ClusterResult;
using cluster::ClusterSim;
using cluster::LbPolicy;
using cluster::LoadBalancer;
using cluster::ScaleEvent;
using cluster::ServerModel;
using cluster::TrafficConfig;
using cluster::TrafficShape;
using cluster::TrafficSource;

namespace {

/** A synthetic calibrated server: 3 requests in flight at ~3 µs each
 * => 1 MRPS capacity (Little's law), so fleet loads are easy to
 * reason about in tests. */
ServerModel
fakeModel()
{
    ServerModel model;
    model.latencyQuantilesUs = {{2.0, 0.0}, {3.0, 0.5}, {4.0, 1.0}};
    model.meanLatencyUs = 3.0;
    model.capacityMrps = 1.0;
    model.concurrency = 3;
    model.numExecutors = 3;
    return model;
}

ClusterConfig
fleetConfig(unsigned servers, double mrps,
            TrafficShape shape = TrafficShape::Constant)
{
    ClusterConfig cfg;
    cfg.numServers = servers;
    cfg.traffic.shape = shape;
    cfg.traffic.mrps = mrps;
    cfg.traffic.durationUs = 20000.0;
    cfg.sloUs = 30.0;
    cfg.seed = 7;
    return cfg;
}

} // namespace

// --- Shared arrival generation (sim/arrivals.hh) ------------------------

TEST(Arrivals, MeanGapMatchesLoad)
{
    // 1 MRPS at 4 GHz: 4000 cycles between requests on average.
    EXPECT_DOUBLE_EQ(sim::meanGapCycles(1.0, 4.0), 4000.0);
    EXPECT_DOUBLE_EQ(
        sim::PoissonArrivals::fromMrps(2.0, 4.0).meanGap(), 2000.0);
}

TEST(Arrivals, PoissonGapIsExactlyTheWorkerDraw)
{
    // The worker's inlined draw before the extraction was a single
    // rng.exponential(meanGap); the shared generator must reproduce
    // it bit-for-bit, keeping every existing run byte-identical.
    sim::Rng a(99), b(99);
    sim::PoissonArrivals gen(12345.0);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(gen.nextGapCycles(a),
                  static_cast<sim::Cycles>(b.exponential(12345.0)));
}

TEST(Arrivals, ModulatedIsSeedDeterministic)
{
    sim::ModulatedPoissonArrivals gen(4000.0, 2.0, [](double us) {
        return us < 500.0 ? 1.0 : 2.0;
    });
    sim::Rng a(5), b(5), c(6);
    std::vector<sim::Tick> ta, tb, tc;
    sim::Tick x = 0, y = 0, z = 0;
    for (int i = 0; i < 200; ++i) {
        ta.push_back(x = gen.nextArrivalTick(a, x));
        tb.push_back(y = gen.nextArrivalTick(b, y));
        tc.push_back(z = gen.nextArrivalTick(c, z));
    }
    EXPECT_EQ(ta, tb);
    EXPECT_NE(ta, tc);
}

// --- Traffic models ------------------------------------------------------

TEST(Traffic, MergedStreamIsTickOrderedAndSeeded)
{
    TrafficConfig cfg;
    cfg.shape = TrafficShape::Mix;
    cfg.mrps = 2.0;
    cfg.durationUs = 5000.0;
    TrafficSource a(cfg, 11), b(cfg, 11), c(cfg, 12);
    std::vector<Arrival> as, bs, cs;
    while (auto arrival = a.next())
        as.push_back(*arrival);
    while (auto arrival = b.next())
        bs.push_back(*arrival);
    while (auto arrival = c.next())
        cs.push_back(*arrival);
    ASSERT_GT(as.size(), 1000u);
    for (std::size_t i = 1; i < as.size(); ++i)
        EXPECT_GE(as[i].tick, as[i - 1].tick);
    ASSERT_EQ(as.size(), bs.size());
    for (std::size_t i = 0; i < as.size(); ++i) {
        EXPECT_EQ(as[i].tick, bs[i].tick);
        EXPECT_EQ(as[i].tenant, bs[i].tenant);
        EXPECT_EQ(as[i].session, bs[i].session);
    }
    EXPECT_NE(as.size(), cs.size());
}

TEST(Traffic, MixNamespacesSessionsPerTenant)
{
    TrafficConfig cfg;
    cfg.shape = TrafficShape::Mix;
    cfg.mrps = 2.0;
    cfg.durationUs = 5000.0;
    TrafficSource source(cfg, 3);
    ASSERT_EQ(source.numTenants(), 3u);
    bool seen[3] = {false, false, false};
    while (auto arrival = source.next()) {
        ASSERT_LT(arrival->tenant, 3u);
        seen[arrival->tenant] = true;
        EXPECT_EQ(arrival->session >> 32, arrival->tenant);
    }
    EXPECT_TRUE(seen[0] && seen[1] && seen[2]);
}

TEST(Traffic, FlashCrowdConcentratesArrivalsInBurstWindow)
{
    TrafficConfig cfg = TrafficConfig::parse(
        "flash:factor=8,start=0.4,end=0.6");
    cfg.mrps = 1.0;
    cfg.durationUs = 10000.0;
    TrafficSource source(cfg, 21);
    std::uint64_t burst = 0, total = 0;
    sim::Tick lo = sim::usToCycles(4000.0), hi = sim::usToCycles(6000.0);
    while (auto arrival = source.next()) {
        ++total;
        if (arrival->tick >= lo && arrival->tick < hi)
            ++burst;
    }
    // Burst window is 20% of the duration at 8x rate: it should hold
    // ~62% of all arrivals (8*0.2 / (8*0.2 + 0.8)).
    ASSERT_GT(total, 5000u);
    double frac = static_cast<double>(burst) /
                  static_cast<double>(total);
    EXPECT_GT(frac, 0.5);
    EXPECT_LT(frac, 0.75);
}

TEST(Traffic, ParseRejectsUnknownShapesAndKeys)
{
    EXPECT_DEATH(TrafficConfig::parse("bogus"), "unknown traffic");
    EXPECT_DEATH(TrafficConfig::parse("flash:zap=1"),
                 "unknown traffic parameter");
}

// --- Load balancer -------------------------------------------------------

TEST(Lb, Random2NeverComparesAServerAgainstItself)
{
    // With two servers the two distinct draws always see both, so the
    // less-loaded one must win every time; sampling with replacement
    // would return the loaded server on the ~25% (i, i) pairs.
    LoadBalancer lb(LbPolicy::Random2);
    std::vector<std::uint32_t> active = {0, 1};
    std::vector<std::uint32_t> outstanding = {5, 0};
    sim::Rng rng(17);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(lb.pick(active, outstanding, 0, rng), 1u);
}

TEST(Lb, Random2TieBreaksOnLowerIndex)
{
    // All-equal loads: every pair resolves to its lower index, so the
    // highest server can only appear via a (hi, hi) pair — which
    // distinct sampling forbids.
    LoadBalancer lb(LbPolicy::Random2);
    std::vector<std::uint32_t> active = {0, 1, 2, 3};
    std::vector<std::uint32_t> outstanding = {4, 4, 4, 4};
    sim::Rng rng(17);
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(lb.pick(active, outstanding, 0, rng), 3u);
}

TEST(Lb, JsqPicksShortestAndTiesDeterministically)
{
    LoadBalancer lb(LbPolicy::Jsq);
    std::vector<std::uint32_t> active = {2, 5, 7};
    std::vector<std::uint32_t> outstanding(8, 3);
    sim::Rng rng(17);
    // All tied: always the lowest active index, never a random draw.
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(lb.pick(active, outstanding, 0, rng), 2u);
    outstanding[5] = 1;
    EXPECT_EQ(lb.pick(active, outstanding, 0, rng), 5u);
}

TEST(Lb, RoundRobinCycles)
{
    LoadBalancer lb(LbPolicy::RoundRobin);
    std::vector<std::uint32_t> active = {0, 1, 2};
    std::vector<std::uint32_t> outstanding = {0, 0, 0};
    sim::Rng rng(17);
    for (int i = 0; i < 9; ++i)
        EXPECT_EQ(lb.pick(active, outstanding, 0, rng),
                  static_cast<std::uint32_t>(i % 3));
}

TEST(Lb, AffinityKeepsSessionsHomeUntilOverloaded)
{
    LoadBalancer lb(LbPolicy::Affinity);
    std::vector<std::uint32_t> active = {0, 1, 2, 3};
    std::vector<std::uint32_t> outstanding = {0, 0, 0, 0};
    sim::Rng rng(17);
    for (std::uint64_t session : {7ull, 123ull, 4096ull})
        for (int i = 0; i < 10; ++i)
            EXPECT_EQ(lb.pick(active, outstanding, session, rng),
                      session % 4);
    // Home server deep in its queue: the session spills elsewhere.
    outstanding[3] = 100;
    bool spilled = false;
    for (int i = 0; i < 50; ++i)
        spilled |= lb.pick(active, outstanding, 3, rng) != 3;
    EXPECT_TRUE(spilled);
}

// --- Fleet simulation ----------------------------------------------------

TEST(Cluster, SameSeedRunsAreIdentical)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.8, TrafficShape::Diurnal);
    ClusterResult a = ClusterSim(cfg, model).run();
    ClusterResult b = ClusterSim(cfg, model).run();
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.coldStarts, b.coldStarts);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.goodputMrps, b.goodputMrps);
    EXPECT_EQ(a.costServerSeconds, b.costServerSeconds);
    ASSERT_EQ(a.servers.size(), b.servers.size());
    for (std::size_t s = 0; s < a.servers.size(); ++s)
        EXPECT_EQ(a.servers[s].completed, b.servers[s].completed);
}

TEST(Cluster, Random2StrictlyBeatsRandomP99AtHighLoad)
{
    // The acceptance criterion: power-of-two-choices must strictly
    // improve fleet P99 over random-1 at 0.9x fleet capacity.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(8, 0.9 * 8 * model.capacityMrps);
    cfg.lb = LbPolicy::Random;
    double p99_random = ClusterSim(cfg, model).run().p99Us;
    cfg.lb = LbPolicy::Random2;
    double p99_random2 = ClusterSim(cfg, model).run().p99Us;
    EXPECT_LT(p99_random2, p99_random);
}

TEST(Cluster, FlashCrowdShedsOnlyWithAdmissionControl)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 0.8 * 4 * model.capacityMrps,
                                    TrafficShape::Flash);
    cfg.traffic.flashFactor = 10.0;

    // No cap: overload becomes queueing, every request completes.
    ClusterResult uncapped = ClusterSim(cfg, model).run();
    EXPECT_EQ(uncapped.shed, 0u);
    EXPECT_EQ(uncapped.completed, uncapped.generated);

    // Per-server cap (the fleet-level mirror of the worker's
    // orchestrator shed cap): the burst sheds, the tail stays
    // bounded, and every request is accounted exactly once.
    cfg.serverQueueCap = 20;
    ClusterResult capped = ClusterSim(cfg, model).run();
    EXPECT_GT(capped.shed, 0u);
    EXPECT_EQ(capped.completed + capped.shed, capped.generated);
    EXPECT_LT(capped.p99Us, uncapped.p99Us);
}

TEST(Cluster, AutoscalerGrowsOnStepLoadWithoutFlapping)
{
    ServerModel model = fakeModel();
    // Step load: 0.4x capacity baseline, 5x burst in the middle of
    // the run. The controller must scale out during the burst and
    // back in afterwards, monotonically in each phase (hysteresis:
    // no up/down/up flapping).
    ClusterConfig cfg = fleetConfig(2, 0.4 * 2 * model.capacityMrps,
                                    TrafficShape::Flash);
    cfg.traffic.durationUs = 60000.0;
    cfg.traffic.flashFactor = 5.0;
    cfg.traffic.flashStartFrac = 0.3;
    cfg.traffic.flashEndFrac = 0.6;
    cfg.autoscale.enabled = true;
    cfg.autoscale.minServers = 2;
    cfg.autoscale.maxServers = 8;
    ClusterResult res = ClusterSim(cfg, model).run();

    ASSERT_GE(res.scaleEvents.size(), 3u);
    EXPECT_EQ(res.scaleEvents.front().activeServers, 2u);
    unsigned peak = 0;
    for (const ScaleEvent &event : res.scaleEvents)
        peak = std::max(peak, event.activeServers);
    EXPECT_GT(peak, 2u);

    // Hysteresis: the active-server series changes direction at most
    // once (up-phase then down-phase) for a single step stimulus.
    int direction_changes = 0, last = 0;
    for (std::size_t i = 1; i < res.scaleEvents.size(); ++i) {
        int diff =
            static_cast<int>(res.scaleEvents[i].activeServers) -
            static_cast<int>(res.scaleEvents[i - 1].activeServers);
        if (diff == 0)
            continue;
        int dir = diff > 0 ? 1 : -1;
        if (last != 0 && dir != last)
            ++direction_changes;
        last = dir;
    }
    EXPECT_LE(direction_changes, 1);
}

TEST(Cluster, CostIntegratesPoweredOnServerSeconds)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.0);
    ClusterResult res = ClusterSim(cfg, model).run();
    // A static fleet keeps all 4 servers powered for the whole run
    // (20 ms of traffic plus a short drain tail).
    double floor_s = 4 * 0.020;
    EXPECT_GE(res.costServerSeconds, floor_s);
    EXPECT_LT(res.costServerSeconds, floor_s * 1.05);

    // At light load (occupancy below queueLow on 4 servers) the
    // autoscaler drains down to 2 servers, so integrated cost must be
    // strictly less than the static fleet's.
    cfg.traffic.mrps = 0.6;
    cfg.autoscale.enabled = true;
    cfg.autoscale.minServers = 2;
    cfg.autoscale.maxServers = 4;
    ClusterResult scaled = ClusterSim(cfg, model).run();
    EXPECT_LT(scaled.costServerSeconds, res.costServerSeconds);
}

TEST(Cluster, AffinityRunsAndKeepsTenantsServed)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.0, TrafficShape::Mix);
    cfg.lb = LbPolicy::Affinity;
    ClusterResult res = ClusterSim(cfg, model).run();
    ASSERT_EQ(res.tenants.size(), 3u);
    for (const cluster::TenantStats &tenant : res.tenants) {
        EXPECT_GT(tenant.completed, 0u) << tenant.name;
        EXPECT_GT(tenant.sloAttainment, 0.9) << tenant.name;
    }
}

// --- Metrics namespacing -------------------------------------------------

TEST(Cluster, MetricsArePerServerNamespaced)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(2, 1.5);
    ClusterResult res = ClusterSim(cfg, model).run();
    trace::MetricsRegistry registry;
    cluster::attachClusterMetrics(res, registry);
    // Distinct per-server counters, not one silently shared slot.
    EXPECT_EQ(registry.counter("cluster.server0.completed").value(),
              res.servers[0].completed);
    EXPECT_EQ(registry.counter("cluster.server1.completed").value(),
              res.servers[1].completed);
    EXPECT_EQ(res.servers[0].completed + res.servers[1].completed,
              res.completed);
}

TEST(Cluster, WorkerMetricsPrefixKeepsServersDistinct)
{
    // The registry's find-or-create lookup silently *sums* same-named
    // metrics; two workers sharing one registry therefore need the
    // per-server prefix (jordsim --cluster N --metrics-out).
    workloads::Workload hotel = workloads::makeHotel();
    runtime::WorkerConfig cfg;
    trace::MetricsRegistry registry;

    runtime::WorkerServer server0(cfg, hotel.registry);
    server0.attachMetrics(registry, "server0.");
    std::size_t one = registry.size();
    runtime::WorkerServer server1(cfg, hotel.registry);
    server1.attachMetrics(registry, "server1.");
    EXPECT_EQ(registry.size(), 2 * one);

    server0.run(1.0, 300, hotel.mix);
    EXPECT_GT(
        registry.counter("server0.runtime.requests.completed").value(),
        0u);
    EXPECT_EQ(
        registry.counter("server1.runtime.requests.completed").value(),
        0u);
}

// --- Fleet fault tolerance (seeded chaos + resilience mechanisms) -------

namespace {

/** Fleet-level conservation: every request resolves exactly once. */
void
expectFleetConservation(const ClusterResult &res)
{
    EXPECT_EQ(res.completed + res.shed + res.failed, res.generated);
}

} // namespace

TEST(ClusterChaos, ZeroRatePlanAndIdleMechanismsAreInvisible)
{
    // A parsed-but-zero cluster clause must leave every result field
    // bit-for-bit unchanged: the injector stays disabled, no RNG
    // stream shifts, no event reorders.
    ServerModel model = fakeModel();
    ClusterConfig plain = fleetConfig(4, 2.8, TrafficShape::Diurnal);
    ClusterConfig zeroed = plain;
    zeroed.faultPlan =
        fault::FaultPlan::parse("cluster:crash=0,gray=0,drop=0");
    ClusterResult a = ClusterSim(plain, model).run();
    ClusterResult b = ClusterSim(zeroed, model).run();
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.coldStarts, b.coldStarts);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.meanUs, b.meanUs);
    EXPECT_EQ(a.goodputMrps, b.goodputMrps);
    EXPECT_EQ(a.costServerSeconds, b.costServerSeconds);
    EXPECT_EQ(b.crashes, 0u);
    EXPECT_EQ(b.failed, 0u);
    EXPECT_EQ(b.timeToRecoverUs, 0.0);
}

TEST(ClusterChaos, SameSeedChaosRunsAreIdentical)
{
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.4);
    cfg.faultPlan = fault::FaultPlan::parse(
        "cluster:crash=0.03,gray=0.1,grayx=4,drop=0.01,delay=0.02");
    cfg.resilience.healthCheck = true;
    cfg.resilience.hedgeUs = 18.0;
    cfg.resilience.retryBudgetFrac = 0.2;
    cfg.resilience.outlierEject = true;
    ClusterResult a = ClusterSim(cfg, model).run();
    ClusterResult b = ClusterSim(cfg, model).run();
    EXPECT_EQ(a.generated, b.generated);
    EXPECT_EQ(a.completed, b.completed);
    EXPECT_EQ(a.shed, b.shed);
    EXPECT_EQ(a.failed, b.failed);
    EXPECT_EQ(a.retries, b.retries);
    EXPECT_EQ(a.hedges, b.hedges);
    EXPECT_EQ(a.hedgeWins, b.hedgeWins);
    EXPECT_EQ(a.crashes, b.crashes);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.ejections, b.ejections);
    EXPECT_EQ(a.p99Us, b.p99Us);
    EXPECT_EQ(a.timeToRecoverUs, b.timeToRecoverUs);
    EXPECT_EQ(a.sloBurn, b.sloBurn);
    expectFleetConservation(a);
    EXPECT_GT(a.crashes, 0u);
}

TEST(ClusterChaos, ConservationHoldsUnderEveryMechanismMix)
{
    // generated == completed + shed + failed under crash, gray, link
    // faults and every mechanism armed at once (including breakers,
    // whose sheds ride the shed counter, and hedges, whose denied
    // copies must not be double-counted).
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.4);
    cfg.serverQueueCap = 16;
    cfg.faultPlan = fault::FaultPlan::parse(
        "cluster:crash=0.05,gray=0.1,grayx=6,drop=0.05,delay=0.05");
    cfg.resilience.healthCheck = true;
    cfg.resilience.hedgeUs = 18.0;
    cfg.resilience.retryBudgetFrac = 0.3;
    cfg.resilience.outlierEject = true;
    cfg.resilience.breaker = true;
    cfg.resilience.breakerThreshold = 4;
    ClusterResult res = ClusterSim(cfg, model).run();
    expectFleetConservation(res);
    EXPECT_GT(res.crashes, 0u);
    EXPECT_GT(res.completed, 0u);
    EXPECT_LE(res.breakerShed, res.shed);
}

TEST(ClusterChaos, HealthCheckAndRetriesRestoreAvailability)
{
    // Without health checks the LB keeps dispatching into crashed
    // servers until the detection timeout and those requests fail;
    // with heartbeats plus a budgeted retry the fleet recovers nearly
    // all of them.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.4);
    cfg.faultPlan = fault::FaultPlan::parse("cluster:crash=0.03");
    ClusterResult off = ClusterSim(cfg, model).run();
    cfg.resilience.healthCheck = true;
    cfg.resilience.retryBudgetFrac = 0.2;
    ClusterResult on = ClusterSim(cfg, model).run();
    expectFleetConservation(off);
    expectFleetConservation(on);
    EXPECT_GT(off.failed, 0u);
    EXPECT_LT(on.failed, off.failed);
    EXPECT_GT(on.retries, 0u);
}

TEST(ClusterChaos, EjectPlusHedgeBeatsUnguardedUnderGrayServer)
{
    // The acceptance criterion: one server running 8x slow for the
    // whole run must drag the unguarded fleet P99 up; outlier
    // ejection plus hedging routes around it and lands strictly
    // below.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(8, 0.7 * 8 * model.capacityMrps);
    cfg.faultPlan =
        fault::FaultPlan::parse("cluster:gray_server=0,grayx=8");
    ClusterResult off = ClusterSim(cfg, model).run();
    cfg.resilience.outlierEject = true;
    cfg.resilience.hedgeUs = 6.0 * model.meanLatencyUs;
    ClusterResult on = ClusterSim(cfg, model).run();
    EXPECT_GT(on.ejections, 0u);
    EXPECT_LT(on.p99Us, off.p99Us);
    EXPECT_GE(on.goodputMrps, off.goodputMrps);
    expectFleetConservation(on);
}

TEST(ClusterChaos, RetryBudgetGoodputNoWorseUnderMassCrash)
{
    // The acceptance criterion: when half the fleet crashes at once,
    // budgeted retries recover the lost requests without a retry
    // storm -- goodput is no worse than with retries off, and far
    // fewer requests fail.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(8, 0.4 * 8 * model.capacityMrps);
    cfg.faultPlan = fault::FaultPlan::parse(
        "cluster:crash_at_ms=6,crash_frac=0.5");
    cfg.resilience.healthCheck = true;
    ClusterResult none = ClusterSim(cfg, model).run();
    cfg.resilience.retryBudgetFrac = 0.2;
    ClusterResult budgeted = ClusterSim(cfg, model).run();
    expectFleetConservation(none);
    expectFleetConservation(budgeted);
    EXPECT_EQ(none.crashes, 4u);
    EXPECT_EQ(none.restarts, 4u);
    EXPECT_GT(none.failed, 0u);
    EXPECT_LT(budgeted.failed, none.failed);
    EXPECT_GE(budgeted.goodputMrps, none.goodputMrps);
    EXPECT_LE(budgeted.retries,
              static_cast<std::uint64_t>(0.2 * budgeted.generated) + 1);
    // Both fleets fully recover: TTR is finite and positive.
    EXPECT_GT(none.timeToRecoverUs, 0.0);
    EXPECT_GT(budgeted.timeToRecoverUs, 0.0);
}

TEST(ClusterChaos, HedgeBudgetCapsHedgeVolume)
{
    // A hedge delay below the mean would fire on nearly every request
    // and melt the fleet; the budget caps hedges at 10% of primaries
    // so the pathology is bounded by construction.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.8);
    cfg.resilience.hedgeUs = 1.0;
    ClusterResult res = ClusterSim(cfg, model).run();
    EXPECT_GT(res.hedges, 0u);
    EXPECT_LE(res.hedges,
              static_cast<std::uint64_t>(0.1 * res.generated) + 1);
    expectFleetConservation(res);
}

TEST(ClusterChaos, BreakerOpensAndShedsUnderPersistentLinkFailure)
{
    // 60% link drop: per-(server,tenant) breakers hit their
    // consecutive-failure threshold, open, and shed at admission
    // instead of queueing requests that will only fail.
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(4, 2.0);
    cfg.faultPlan = fault::FaultPlan::parse("cluster:drop=0.6");
    cfg.resilience.breaker = true;
    cfg.resilience.breakerThreshold = 4;
    ClusterResult res = ClusterSim(cfg, model).run();
    expectFleetConservation(res);
    EXPECT_GT(res.breakerOpens, 0u);
    EXPECT_GT(res.breakerShed, 0u);
    EXPECT_LE(res.breakerShed, res.shed);
}

TEST(ClusterChaos, CrashLosesWarmPoolsAndRecoveryCostScalesWithSlots)
{
    // Groundhog-style restore: restart cost grows with the warm slots
    // re-prewarmed, so a larger recover_us keeps the server down
    // longer and fails more requests (no health check here).
    ServerModel model = fakeModel();
    ClusterConfig cfg = fleetConfig(2, 1.0);
    cfg.faultPlan = fault::FaultPlan::parse(
        "cluster:crash_at_ms=5,crash_frac=0.5,restart_ms=1,"
        "recover_us=0");
    ClusterResult fast = ClusterSim(cfg, model).run();
    cfg.faultPlan = fault::FaultPlan::parse(
        "cluster:crash_at_ms=5,crash_frac=0.5,restart_ms=1,"
        "recover_us=2000");
    ClusterResult slow = ClusterSim(cfg, model).run();
    expectFleetConservation(fast);
    expectFleetConservation(slow);
    EXPECT_EQ(fast.crashes, 1u);
    EXPECT_EQ(slow.crashes, 1u);
    EXPECT_GT(slow.timeToRecoverUs, fast.timeToRecoverUs);
    EXPECT_GE(slow.failed, fast.failed);
}
