/**
 * @file
 * Tests for the OS kernel model (§4.4) and the NightCore baseline cost
 * models (pipes, worker provisioning).
 */

#include <gtest/gtest.h>

#include "baseline/nightcore.hh"
#include "os/kernel.hh"
#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace {

using namespace jord;
using baseline::PipeCosts;
using baseline::ProvisioningModel;
using os::Kernel;
using os::SyscallResult;

// --- Kernel -------------------------------------------------------------------

TEST(Kernel, ReserveHandsOutDisjointChunks)
{
    Kernel kernel(sim::MachineConfig::isca25Default(), 1 << 20);
    SyscallResult a = kernel.uatConfigReserve(4096);
    SyscallResult b = kernel.uatConfigReserve(4096);
    ASSERT_TRUE(a.ok && b.ok);
    EXPECT_GE(b.addr, a.addr + 4096);
    EXPECT_EQ(kernel.numSyscalls(), 2u);
}

TEST(Kernel, ReserveChargesSyscallLatency)
{
    Kernel kernel(sim::MachineConfig::isca25Default());
    SyscallResult res = kernel.uatConfigReserve(4096);
    EXPECT_EQ(res.latency, kernel.syscallCycles());
    EXPECT_GT(sim::cyclesToNs(res.latency), 100.0);
}

TEST(Kernel, ReservationExhausts)
{
    Kernel kernel(sim::MachineConfig::isca25Default(), 8192);
    EXPECT_TRUE(kernel.uatConfigReserve(8192).ok);
    SyscallResult fail = kernel.uatConfigReserve(64);
    EXPECT_FALSE(fail.ok);
    EXPECT_GT(fail.latency, 0u); // the failed syscall still costs
}

TEST(Kernel, ChunksAreBlockAligned)
{
    Kernel kernel(sim::MachineConfig::isca25Default());
    kernel.uatConfigReserve(100); // rounds to 128
    SyscallResult next = kernel.uatConfigReserve(64);
    EXPECT_EQ(next.addr % sim::kCacheBlockBytes, 0u);
}

TEST(Kernel, ContextSaveRestoreRoundTrips)
{
    Kernel kernel(sim::MachineConfig::isca25Default());
    uat::UatCsrFile live;
    live.setUatp(0x2000'0000'0000ull, true);
    live.uatc = 0x1234;
    live.ucid = 42;

    uat::UatCsrFile saved;
    kernel.saveContext(live, saved);
    uat::UatCsrFile restored;
    kernel.restoreContext(saved, restored);
    EXPECT_EQ(restored.uatp, live.uatp);
    EXPECT_EQ(restored.uatc, live.uatc);
    EXPECT_EQ(restored.ucid, live.ucid);
    EXPECT_TRUE(restored.enabled());
    EXPECT_GT(kernel.csrContextSwitchCycles(), 0u);
}

// --- PipeCosts -----------------------------------------------------------------

TEST(PipeCosts, CostsScaleWithPayload)
{
    PipeCosts pipes;
    EXPECT_GT(pipes.sendBusy(4096), pipes.sendBusy(64));
    EXPECT_GT(pipes.recvBusy(4096), pipes.recvBusy(64));
    EXPECT_EQ(pipes.sendBusy(4096) - pipes.sendBusy(0),
              static_cast<sim::Cycles>(4096 * pipes.copyCyclesPerByte));
}

TEST(PipeCosts, SyscallFloorDominatesSmallMessages)
{
    PipeCosts pipes;
    // A 64-byte message costs nearly the same as an empty one.
    EXPECT_LT(pipes.sendBusy(64) - pipes.sendBusy(0), 20u);
    EXPECT_GT(sim::cyclesToNs(pipes.sendBusy(0)), 200.0);
}

TEST(PipeCosts, RoundTripIsMicrosecondScale)
{
    PipeCosts pipes;
    double one_hop_ns =
        sim::cyclesToNs(pipes.sendBusy(512) + pipes.recvBusy(512) +
                        pipes.recvLatency());
    EXPECT_GT(one_hop_ns, 1000.0);
    EXPECT_LT(one_hop_ns, 5000.0);
}

// --- Provisioning ----------------------------------------------------------------

TEST(Provisioning, ColdStartPenaltyAppearsOnce)
{
    // With a single pre-provisioned worker per function, driving
    // concurrency up forces 0.8 ms provisioning stalls that show up in
    // the tail during warmup.
    runtime::FunctionRegistry reg;
    runtime::FunctionSpec spec;
    spec.name = "slow";
    spec.execMeanUs = 20.0;
    auto fn = reg.add(spec);

    runtime::WorkerConfig cold;
    cold.system = runtime::SystemKind::NightCore;
    cold.provisioning.preProvisioned = 1;
    runtime::WorkerServer cold_worker(cold, reg);
    // Measure from the first request (no warmup) to catch cold starts.
    auto cold_res = cold_worker.run(0.4, 1500, {{fn, 1.0}}, 0.0);

    runtime::WorkerConfig warm = cold;
    warm.provisioning.preProvisioned = 64;
    runtime::WorkerServer warm_worker(warm, reg);
    auto warm_res = warm_worker.run(0.4, 1500, {{fn, 1.0}}, 0.0);

    // The cold system's worst latency includes ~0.8 ms provisioning.
    EXPECT_GT(cold_res.latencyUs.max(), 700.0);
    EXPECT_LT(warm_res.latencyUs.max(), cold_res.latencyUs.max());

    // Steady state (second run, same worker) no longer provisions.
    auto steady = cold_worker.run(0.4, 1500, {{fn, 1.0}}, 0.0);
    EXPECT_LT(steady.latencyUs.max(), cold_res.latencyUs.max());
}

TEST(Provisioning, JordNeedsNoProvisioning)
{
    // Jord's "cold start" is a PD + stack/heap allocation: the first
    // request is as fast as any other.
    workloads::Workload w = workloads::makeHotel();
    runtime::WorkerConfig cfg;
    runtime::WorkerServer worker(cfg, w.registry);
    auto res = worker.run(0.5, 1500, w.mix, 0.0);
    EXPECT_LT(res.latencyUs.max(), 400.0);
}

} // namespace
