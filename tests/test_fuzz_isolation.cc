/**
 * @file
 * Randomized stress tests of the full isolation stack against an
 * independent reference model.
 *
 * 10,000 random PrivLib operations per seed (mmap/munmap/mprotect/
 * pmove/pcopy plus the PD lifecycle: cget/cput/ccall+cexit) run from
 * random cores and domains, while a simple map-based oracle tracks who
 * should be able to access what. After every mutation batch, random
 * probe accesses through the real UAT hardware (VLBs, VTW, sub-arrays,
 * overflow lists, shootdowns) must agree with the oracle exactly — any
 * divergence is either a missed fault (security hole) or a spurious
 * fault (correctness bug). The fixture keeps JordSan attached with
 * every family enabled, so the whole sequence is additionally checked
 * against the sanitizer's independent shadow model; TearDown fails the
 * test on any recorded violation.
 */

#include "tests/fixture.hh"

#include <map>
#include <set>

#include "sim/rng.hh"

namespace {

using jord::privlib::PrivLib;
using jord::privlib::PrivResult;
using jord::sim::Addr;
using jord::sim::Rng;
using jord::test::JordStackTest;
using jord::uat::PdId;
using jord::uat::Perm;
using jord::uat::UatAccess;

/** The oracle's view of one VMA. */
struct RefVma {
    std::uint64_t bound = 0;
    std::map<PdId, std::uint8_t> perms; ///< pd -> perm bits
};

class IsolationFuzz : public JordStackTest,
                      public ::testing::WithParamInterface<unsigned>
{
  protected:
    Rng rng{GetParam()};
    std::vector<PdId> pds;
    std::map<Addr, RefVma> vmas; ///< oracle state

    PdId
    randomPd()
    {
        return pds[rng.uniformInt(
            static_cast<std::uint64_t>(pds.size()))];
    }

    Perm
    randomPerm()
    {
        // Never X-only; always readable to keep probes simple.
        static const std::uint8_t choices[] = {
            Perm::R, Perm::R | Perm::W, Perm::R | Perm::X,
            Perm::R | Perm::W | Perm::X};
        return Perm(choices[rng.uniformInt(std::uint64_t(4))]);
    }

    /** Run one PrivLib call from a core configured for @p pd. */
    template <typename Fn>
    PrivResult
    as(PdId pd, Fn &&fn)
    {
        unsigned core = static_cast<unsigned>(
            rng.uniformInt(std::uint64_t(cfg.numCores)));
        PdId saved = uat->csrFile(core).ucid;
        uat->csrFile(core).ucid = pd;
        PrivResult res = fn(core);
        uat->csrFile(core).ucid = saved;
        return res;
    }

    void
    doMmap()
    {
        PdId pd = randomPd();
        std::uint64_t len = 64 + rng.uniformInt(std::uint64_t(32768));
        Perm prot = randomPerm();
        PrivResult res = as(PrivLib::kRootPd, [&](unsigned core) {
            return privlib->mmapFor(core, pd, len, prot);
        });
        ASSERT_TRUE(res.ok);
        RefVma ref;
        ref.bound = len;
        ref.perms[pd] = prot.bits;
        vmas[res.value] = ref;
    }

    void
    doMunmap()
    {
        if (vmas.empty())
            return;
        auto it = pickVma();
        // The unmapper must be a PD holding the VMA (or root).
        PdId actor = it->second.perms.empty()
                         ? PrivLib::kRootPd
                         : it->second.perms.begin()->first;
        PrivResult res = as(actor, [&](unsigned core) {
            return privlib->munmap(core, it->first, it->second.bound);
        });
        ASSERT_TRUE(res.ok) << jord::uat::faultName(res.fault);
        vmas.erase(it);
    }

    void
    doMprotect()
    {
        if (vmas.empty())
            return;
        auto it = pickVma();
        if (it->second.perms.empty())
            return;
        PdId actor = it->second.perms.begin()->first;
        Perm prot = randomPerm();
        PrivResult res = as(actor, [&](unsigned core) {
            return privlib->mprotect(core, it->first, it->second.bound,
                                     prot);
        });
        ASSERT_TRUE(res.ok);
        it->second.perms[actor] = prot.bits;
    }

    void
    doTransfer(bool move)
    {
        if (vmas.empty())
            return;
        auto it = pickVma();
        if (it->second.perms.empty())
            return;
        PdId src = it->second.perms.begin()->first;
        PdId dst = randomPd();
        std::uint8_t held = it->second.perms.begin()->second;
        // Transfer a random subset of the held permission.
        std::uint8_t bits = held & (rng.chance(0.5) ? 0x7 : Perm::R);
        if (bits == 0)
            return;
        PrivResult res = as(src, [&](unsigned core) {
            return move ? privlib->pmove(core, it->first, dst,
                                         Perm(bits))
                        : privlib->pcopy(core, it->first, dst,
                                         Perm(bits));
        });
        if (src == dst && move) {
            // Moving to oneself is a permission update.
            if (res.ok)
                it->second.perms[src] = bits;
            return;
        }
        ASSERT_TRUE(res.ok) << jord::uat::faultName(res.fault);
        if (move)
            it->second.perms.erase(src);
        it->second.perms[dst] = bits;
    }

    void
    doCget()
    {
        if (pds.size() >= 24)
            return;
        pds.push_back(mustCget(0));
    }

    void
    doCput()
    {
        if (pds.size() <= 2)
            return;
        std::size_t idx = static_cast<std::size_t>(
            rng.uniformInt(static_cast<std::uint64_t>(pds.size())));
        PdId pd = pds[idx];
        // Only retire domains that hold no permissions; cput of a PD
        // still named in a sub-array would leak its grants.
        for (const auto &[base, ref] : vmas)
            if (ref.perms.count(pd))
                return;
        ASSERT_TRUE(privlib->cput(0, pd).ok)
            << "pd " << pd << " should retire cleanly";
        pds.erase(pds.begin() + static_cast<std::ptrdiff_t>(idx));
    }

    void
    doCcall()
    {
        // Enter a random domain and return, exercising the domain
        // stack (and the sanitizer's enter/exit tracking) from an
        // arbitrary core.
        PdId pd = randomPd();
        unsigned core = static_cast<unsigned>(
            rng.uniformInt(std::uint64_t(cfg.numCores)));
        ASSERT_TRUE(privlib->ccall(core, pd).ok)
            << "ccall into live pd " << pd;
        ASSERT_TRUE(privlib->cexit(core).ok);
    }

    std::map<Addr, RefVma>::iterator
    pickVma()
    {
        auto it = vmas.begin();
        std::advance(it, rng.uniformInt(
                             static_cast<std::uint64_t>(vmas.size())));
        return it;
    }

    /** Probe random (pd, va, perm) triples against the oracle. */
    void
    verify(unsigned probes)
    {
        for (unsigned i = 0; i < probes && !vmas.empty(); ++i) {
            auto it = pickVma();
            PdId pd = randomPd();
            std::uint64_t offset =
                rng.uniformInt(it->second.bound + 64);
            Perm need = rng.chance(0.5) ? Perm::r()
                                        : Perm(Perm::R | Perm::W);
            unsigned core = static_cast<unsigned>(
                rng.uniformInt(std::uint64_t(cfg.numCores)));

            PdId saved = uat->csrFile(core).ucid;
            uat->csrFile(core).ucid = pd;
            UatAccess acc =
                uat->dataAccess(core, it->first + offset, need);
            uat->csrFile(core).ucid = saved;

            bool in_bound = offset < it->second.bound;
            auto perm_it = it->second.perms.find(pd);
            bool allowed =
                in_bound && perm_it != it->second.perms.end() &&
                (perm_it->second & need.bits) == need.bits;
            ASSERT_EQ(acc.ok(), allowed)
                << "probe " << i << ": pd=" << pd << " off=" << offset
                << " need=" << int(need.bits) << " fault="
                << jord::uat::faultName(acc.fault);
        }
    }
};

TEST_P(IsolationFuzz, RandomOpsMatchReferenceModel)
{
    // Create a small population of domains.
    for (int i = 0; i < 6; ++i)
        pds.push_back(mustCget(0));

    // 400 rounds x 25 ops = 10,000 operation attempts per seed.
    for (int round = 0; round < 400; ++round) {
        for (int op = 0; op < 25; ++op) {
            double pick = rng.uniform();
            if (pick < 0.26)
                doMmap();
            else if (pick < 0.40)
                doMunmap();
            else if (pick < 0.53)
                doMprotect();
            else if (pick < 0.70)
                doTransfer(/*move=*/true);
            else if (pick < 0.82)
                doTransfer(/*move=*/false);
            else if (pick < 0.88)
                doCget();
            else if (pick < 0.93)
                doCput();
            else
                doCcall();
            if (HasFatalFailure())
                return;
        }
        verify(20);
        if (HasFatalFailure())
            return;
    }

    // Drain: everything must unmap cleanly and the PDs must retire.
    while (!vmas.empty()) {
        doMunmap();
        if (HasFatalFailure())
            return;
    }
    for (PdId pd : pds)
        EXPECT_TRUE(privlib->cput(0, pd).ok) << "pd " << pd;
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsolationFuzz,
                         ::testing::Values(1u, 2u, 3u));

} // namespace
