/**
 * @file
 * Tests for the VTE layout (Fig. 8), the plain-list VMA table, and the
 * B-tree table including its structural invariants under random churn.
 */

#include <gtest/gtest.h>

#include <set>

#include "sim/rng.hh"
#include "uat/btree_table.hh"
#include "uat/vma_table.hh"

namespace {

using jord::sim::Addr;
using jord::sim::Rng;
using jord::uat::BTreeVmaTable;
using jord::uat::kSubArrayEntries;
using jord::uat::Perm;
using jord::uat::PlainListVmaTable;
using jord::uat::SubEntry;
using jord::uat::TableUpdate;
using jord::uat::TableWalk;
using jord::uat::VaEncoding;
using jord::uat::Vte;

// --- VTE layout ---------------------------------------------------------------

TEST(Vte, IsOneCacheBlock)
{
    EXPECT_EQ(sizeof(Vte), 64u);
}

TEST(Vte, SubEntryEncoding)
{
    SubEntry entry = SubEntry::make(0x123, Perm::rw());
    EXPECT_TRUE(entry.valid());
    EXPECT_EQ(entry.pd(), 0x123);
    EXPECT_EQ(entry.perm(), Perm::rw());
    entry.clear();
    EXPECT_FALSE(entry.valid());
}

TEST(Vte, AttrBits)
{
    Vte vte;
    EXPECT_FALSE(vte.valid());
    vte.setAttr(true, true, false, Perm::rx());
    EXPECT_TRUE(vte.valid());
    EXPECT_TRUE(vte.global());
    EXPECT_FALSE(vte.privileged());
    EXPECT_EQ(vte.globalPerm(), Perm::rx());
    vte.setAttr(true, false, true, Perm::none());
    EXPECT_TRUE(vte.privileged());
    EXPECT_FALSE(vte.global());
}

TEST(Vte, OffsIsSignedAndPreserved)
{
    Vte vte;
    vte.setOffs(-0x3800'0000'0000ll);
    EXPECT_EQ(vte.offs(), -0x3800'0000'0000ll);
    vte.setAttr(true, false, false, Perm::none());
    EXPECT_EQ(vte.offs(), -0x3800'0000'0000ll); // attr must not clobber
    vte.setOffs(0x7ff'ffff'f000ll);
    EXPECT_EQ(vte.offs(), 0x7ff'ffff'f000ll);
}

TEST(Vte, SubArrayFindAndFill)
{
    Vte vte;
    for (unsigned i = 0; i < kSubArrayEntries; ++i) {
        SubEntry *slot = vte.freeSub();
        ASSERT_NE(slot, nullptr);
        *slot = SubEntry::make(static_cast<jord::uat::PdId>(i + 1),
                               Perm::r());
    }
    EXPECT_EQ(vte.freeSub(), nullptr);
    EXPECT_EQ(vte.numSharers(), kSubArrayEntries);
    EXPECT_NE(vte.findSub(7), nullptr);
    EXPECT_EQ(vte.findSub(99), nullptr);
}

// --- Plain list ---------------------------------------------------------------

class PlainListTest : public ::testing::Test
{
  protected:
    VaEncoding enc;
    PlainListVmaTable table{enc};
};

TEST_F(PlainListTest, WalkTouchesExactlyOneBlock)
{
    Addr base = enc.encode(2, 17);
    TableWalk walk = table.walk(base + 100);
    ASSERT_NE(walk.vte, nullptr);
    EXPECT_EQ(walk.readAddrs.size(), 1u);
    EXPECT_EQ(walk.readAddrs[0], walk.vteAddr);
    EXPECT_EQ(walk.vmaBase, base);
}

TEST_F(PlainListTest, VteAddrIsPureFunctionOfVa)
{
    Addr base = enc.encode(4, 9);
    EXPECT_EQ(table.vteAddrOf(base),
              jord::uat::kVmaTableBase +
                  enc.slotOf(4, 9) * 64);
    EXPECT_EQ(table.walk(base + 5).vteAddr, table.vteAddrOf(base));
}

TEST_F(PlainListTest, NonUatVaHasNoSlot)
{
    TableWalk walk = table.walk(0x7f00'0000'0000ull);
    EXPECT_EQ(walk.vte, nullptr);
    EXPECT_TRUE(walk.readAddrs.empty());
}

TEST_F(PlainListTest, InsertRemoveTracksCount)
{
    Addr base = enc.encode(0, 0);
    EXPECT_TRUE(table.noteInsert(base).ok);
    table.vteFor(base)->setAttr(true, false, false, Perm::none());
    EXPECT_EQ(table.numValid(), 1u);
    EXPECT_TRUE(table.noteRemove(base).ok);
    EXPECT_EQ(table.numValid(), 0u);
}

TEST_F(PlainListTest, ContainsCoversTableRegion)
{
    EXPECT_TRUE(table.contains(jord::uat::kVmaTableBase));
    EXPECT_TRUE(table.contains(jord::uat::kVmaTableBase + 64 * 1000));
    EXPECT_FALSE(table.contains(jord::uat::kVmaTableBase - 1));
}

TEST_F(PlainListTest, PermForChecksSubArrayGlobalAndOverflow)
{
    Addr base = enc.encode(1, 1);
    Vte *vte = table.vteFor(base);
    ASSERT_NE(vte, nullptr);
    vte->setAttr(true, false, false, Perm::none());
    *vte->freeSub() = SubEntry::make(5, Perm::rw());

    EXPECT_EQ(table.permFor(*vte, 5).value(), Perm::rw());
    EXPECT_FALSE(table.permFor(*vte, 6).has_value());

    // Overflow list behind the ptr field.
    table.overflowList(*vte).push_back(SubEntry::make(77, Perm::r()));
    EXPECT_EQ(table.permFor(*vte, 77).value(), Perm::r());

    // Global bit overrides the sub-array.
    vte->setAttr(true, true, false, Perm::rx());
    EXPECT_EQ(table.permFor(*vte, 999).value(), Perm::rx());

    table.clearOverflow(*vte);
    EXPECT_EQ(vte->ptr, 0u);
}

TEST_F(PlainListTest, InvalidVteHasNoPerm)
{
    Addr base = enc.encode(1, 2);
    Vte *vte = table.vteFor(base);
    EXPECT_FALSE(table.permFor(*vte, 0).has_value());
}

// --- B-tree -------------------------------------------------------------------

class BTreeTest : public ::testing::Test
{
  protected:
    VaEncoding enc;
    BTreeVmaTable table{enc};

    Addr
    key(unsigned sc, std::uint64_t index)
    {
        return enc.encode(sc, index);
    }
};

TEST_F(BTreeTest, InsertThenWalkFindsVte)
{
    Addr base = key(2, 5);
    TableUpdate upd = table.noteInsert(base);
    ASSERT_TRUE(upd.ok);
    Vte *vte = table.vteFor(base);
    ASSERT_NE(vte, nullptr);
    vte->bound = 512;
    vte->setAttr(true, false, false, Perm::none());

    TableWalk walk = table.walk(base + 17);
    ASSERT_NE(walk.vte, nullptr);
    EXPECT_EQ(walk.vte->bound, 512u);
    EXPECT_EQ(walk.vmaBase, base);
    // Node path + VTE block: at least two reads (vs one for the list).
    EXPECT_GE(walk.readAddrs.size(), 2u);
}

TEST_F(BTreeTest, DuplicateInsertRejected)
{
    Addr base = key(0, 1);
    EXPECT_TRUE(table.noteInsert(base).ok);
    EXPECT_FALSE(table.noteInsert(base).ok);
}

TEST_F(BTreeTest, RemoveMakesKeyUnfindable)
{
    Addr base = key(0, 1);
    table.noteInsert(base);
    EXPECT_TRUE(table.noteRemove(base).ok);
    EXPECT_EQ(table.vteFor(base), nullptr);
    EXPECT_FALSE(table.noteRemove(base).ok);
}

TEST_F(BTreeTest, HeightGrowsLogarithmically)
{
    EXPECT_EQ(table.height(), 1u);
    for (std::uint64_t i = 0; i < 1000; ++i)
        table.noteInsert(key(0, i));
    EXPECT_GE(table.height(), 3u);
    EXPECT_LE(table.height(), 6u);
    EXPECT_TRUE(table.checkInvariants());
}

TEST_F(BTreeTest, SplitsReportNodeWrites)
{
    // Fill one leaf, then overflow it: the split dirties several nodes.
    TableUpdate last;
    for (std::uint64_t i = 0; i <= jord::uat::kBtreeOrder; ++i)
        last = table.noteInsert(key(0, i));
    EXPECT_TRUE(last.ok);
    bool any_multi_write = last.writeAddrs.size() >= 3;
    EXPECT_TRUE(any_multi_write);
}

TEST_F(BTreeTest, WalkDepthMatchesHeight)
{
    for (std::uint64_t i = 0; i < 500; ++i)
        table.noteInsert(key(0, i));
    TableWalk walk = table.walk(key(0, 250));
    ASSERT_NE(walk.vte, nullptr);
    EXPECT_EQ(walk.readAddrs.size(), table.height() + 1);
}

TEST_F(BTreeTest, RandomChurnKeepsInvariantsProperty)
{
    Rng rng(55);
    std::set<std::uint64_t> live;
    for (int step = 0; step < 6000; ++step) {
        std::uint64_t index = rng.uniformInt(std::uint64_t(800));
        if (rng.chance(0.55)) {
            bool ok = table.noteInsert(key(0, index)).ok;
            EXPECT_EQ(ok, !live.count(index));
            live.insert(index);
        } else {
            bool ok = table.noteRemove(key(0, index)).ok;
            EXPECT_EQ(ok, live.erase(index) == 1);
        }
        if (step % 500 == 0) {
            ASSERT_TRUE(table.checkInvariants()) << "step " << step;
        }
    }
    ASSERT_TRUE(table.checkInvariants());
    EXPECT_EQ(table.numValid(), live.size());
    for (std::uint64_t index : live)
        EXPECT_NE(table.vteFor(key(0, index)), nullptr);
}

TEST_F(BTreeTest, DrainToEmptyAndReuse)
{
    for (std::uint64_t i = 0; i < 200; ++i)
        table.noteInsert(key(0, i));
    for (std::uint64_t i = 0; i < 200; ++i)
        EXPECT_TRUE(table.noteRemove(key(0, i)).ok);
    EXPECT_EQ(table.numValid(), 0u);
    EXPECT_EQ(table.height(), 1u);
    EXPECT_TRUE(table.noteInsert(key(1, 3)).ok);
    EXPECT_TRUE(table.checkInvariants());
}

TEST_F(BTreeTest, VtePayloadsAreRecycled)
{
    table.noteInsert(key(0, 1));
    Addr first_vte = table.vteAddrOf(key(0, 1));
    table.noteRemove(key(0, 1));
    table.noteInsert(key(0, 2));
    EXPECT_EQ(table.vteAddrOf(key(0, 2)), first_vte);
}

} // namespace
