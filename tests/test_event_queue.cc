/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace {

using jord::sim::EventQueue;
using jord::sim::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickEventsFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.curTick(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(q.curTick(), 99u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(handle));
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndRejectsBogusHandles)
{
    EventQueue q;
    auto handle = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(handle));
    EXPECT_FALSE(q.cancel(handle));
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(9999));
    q.run();
}

TEST(EventQueue, CancelOneOfManyAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(0); });
    auto mid = q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.cancel(mid);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(20, [&] { fired.push_back(20); });
    q.schedule(30, [&] { fired.push_back(30); });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(q.curTick(), 20u);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired.back(), 30u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.curTick(), 500u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.step();
    q.reset();
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CountsDispatchedEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.numDispatched(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

TEST(EventQueue, CancelOfFiredHandleIsRejected)
{
    // Regression (issue 10): cancelling an already-fired handle used to
    // return true and plant a tombstone that was never purged.
    EventQueue q;
    auto handle = q.schedule(10, [] {});
    q.run();
    EXPECT_FALSE(q.cancel(handle));
    EXPECT_EQ(q.numTombstones(), 0u);
}

TEST(EventQueue, TombstonesArePurgedWhenTheirTickPasses)
{
    EventQueue q;
    std::vector<std::uint64_t> handles;
    for (int i = 0; i < 100; ++i)
        handles.push_back(q.schedule(static_cast<Tick>(10 + i), [] {}));
    for (std::uint64_t h : handles)
        EXPECT_TRUE(q.cancel(h));
    EXPECT_EQ(q.numTombstones(), 100u);
    q.run();
    EXPECT_EQ(q.numTombstones(), 0u);
    EXPECT_EQ(q.numDispatched(), 0u);
}

TEST(EventQueue, TombstoneSetStaysBoundedUnderChurn)
{
    // Hedged cluster runs schedule-then-cancel constantly; the set must
    // track only in-flight cancellations, not the whole run's history.
    EventQueue q;
    for (int round = 0; round < 1000; ++round) {
        auto keep = q.schedule(q.curTick() + 1, [] {});
        auto drop = q.schedule(q.curTick() + 2, [] {});
        EXPECT_TRUE(q.cancel(drop));
        // Stale re-cancel of a long-gone handle must stay rejected.
        if (keep > 10)
            EXPECT_FALSE(q.cancel(keep - 10));
        while (!q.empty())
            q.step();
        EXPECT_LE(q.numTombstones(), 1u);
    }
    EXPECT_EQ(q.numTombstones(), 0u);
}

TEST(EventQueue, CalendarStorageMatchesReferenceOrder)
{
    // Deterministic pseudo-random schedule with wide tick spans, dense
    // same-tick ties, and in-callback reschedules: the calendar-queue
    // storage must reproduce exact (when, insertion) dispatch order.
    EventQueue q;
    std::vector<std::pair<Tick, int>> fired;
    std::uint64_t lcg = 12345;
    auto next = [&lcg](std::uint64_t mod) {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return (lcg >> 33) % mod;
    };
    std::vector<std::pair<Tick, int>> expected;
    int id = 0;
    for (int i = 0; i < 500; ++i) {
        // Mix near ticks, far ticks, and exact ties.
        Tick when = (i % 3 == 0) ? next(50)
                    : (i % 3 == 1) ? next(100000)
                                   : 42;
        int tag = id++;
        expected.emplace_back(when, tag);
        q.schedule(when, [&fired, &q, when, tag] {
            fired.emplace_back(when, tag);
            EXPECT_EQ(q.curTick(), when);
        });
    }
    std::stable_sort(expected.begin(), expected.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    q.run();
    EXPECT_EQ(fired, expected);
}

TEST(EventQueue, DomainsPreserveGlobalDispatchOrder)
{
    // The same schedule sprayed across 4 sub-queues must fire in the
    // identical global (when, insertion) order as a 1-domain queue.
    auto drive = [](unsigned domains) {
        EventQueue q;
        q.setDomains(domains);
        std::vector<int> order;
        for (int i = 0; i < 200; ++i) {
            Tick when = static_cast<Tick>((i * 7) % 40);
            q.scheduleOn(static_cast<unsigned>(i) % domains, when,
                         [&order, i] { order.push_back(i); });
        }
        q.run();
        return order;
    };
    EXPECT_EQ(drive(1), drive(4));
    EXPECT_EQ(drive(1), drive(7));
}

TEST(EventQueue, CrossDomainPushBehindARolledOverCalendarYear)
{
    // A domain holding only far-future events rolls its calendar year
    // forward past global time on the first peek. A cross-domain push
    // that then lands *before* the rolled year's start must still be
    // stored (near heap) and fire in global order — the bucket index
    // computation must not underflow (regression: crashed the worker
    // --domains sweep).
    EventQueue q;
    q.setDomains(2);
    std::vector<Tick> fired;
    q.scheduleOn(1, 1000000, [&] { fired.push_back(q.curTick()); });
    q.scheduleOn(0, 10, [&] {
        fired.push_back(q.curTick());
        // Domain 1's calendar has already re-based its year at tick
        // 1000000; this push lands far behind that.
        q.scheduleOn(1, 100, [&] { fired.push_back(q.curTick()); });
    });
    q.run();
    EXPECT_EQ(fired, (std::vector<Tick>{10, 100, 1000000}));
}

TEST(EventQueue, DomainSizeTracksPerDomainOccupancy)
{
    EventQueue q;
    q.setDomains(3);
    q.scheduleOn(0, 10, [] {});
    q.scheduleOn(2, 10, [] {});
    q.scheduleOn(2, 20, [] {});
    EXPECT_EQ(q.domainSize(0), 1u);
    EXPECT_EQ(q.domainSize(1), 0u); // zero-event domain is legal
    EXPECT_EQ(q.domainSize(2), 2u);
    EXPECT_EQ(q.size(), 3u);
    q.run();
    EXPECT_EQ(q.domainSize(2), 0u);
}

TEST(EventQueue, ResetPreservesDomainPartition)
{
    EventQueue q;
    q.setDomains(4);
    auto stale = q.scheduleOn(3, 10, [] {});
    q.reset();
    EXPECT_EQ(q.numDomains(), 4u);
    EXPECT_TRUE(q.empty());
    // Handles from before the reset are stale, not cancellable.
    EXPECT_FALSE(q.cancel(stale));
    bool fired = false;
    q.scheduleOn(3, 5, [&] { fired = true; });
    q.run();
    EXPECT_TRUE(fired);
}

TEST(EventQueue, DaemonEventsWorkUnderDomains)
{
    EventQueue q;
    q.setDomains(2);
    std::vector<int> order;
    q.scheduleDaemonOn(1, 30, [&] { order.push_back(99); });
    q.scheduleOn(0, 10, [&] { order.push_back(0); });
    q.scheduleOn(1, 20, [&] { order.push_back(1); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 99}));
    // The trailing daemon must not stretch the measured work window.
    EXPECT_EQ(q.lastWorkTick(), 20u);
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueueDeathTest, SetDomainsOnNonEmptyQueuePanics)
{
    EventQueue q;
    q.schedule(10, [] {});
    EXPECT_DEATH(q.setDomains(2), "repartition");
}

TEST(EventQueueDeathTest, ScheduleOnBogusDomainPanics)
{
    EventQueue q;
    q.setDomains(2);
    EXPECT_DEATH(q.scheduleOn(2, 10, [] {}), "out of range");
}

} // namespace
