/**
 * @file
 * Unit tests for the deterministic event queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace {

using jord::sim::EventQueue;
using jord::sim::Tick;

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue q;
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.step());
}

TEST(EventQueue, DispatchesInTimeOrder)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(30, [&] { order.push_back(3); });
    q.schedule(10, [&] { order.push_back(1); });
    q.schedule(20, [&] { order.push_back(2); });
    q.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(q.curTick(), 30u);
}

TEST(EventQueue, SameTickEventsFireInInsertionOrder)
{
    EventQueue q;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        q.schedule(5, [&order, i] { order.push_back(i); });
    q.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(EventQueue, ScheduleAfterUsesCurrentTime)
{
    EventQueue q;
    Tick seen = 0;
    q.schedule(100, [&] {
        q.scheduleAfter(50, [&] { seen = q.curTick(); });
    });
    q.run();
    EXPECT_EQ(seen, 150u);
}

TEST(EventQueue, EventsCanScheduleMoreEvents)
{
    EventQueue q;
    int count = 0;
    std::function<void()> chain = [&] {
        if (++count < 100)
            q.scheduleAfter(1, chain);
    };
    q.schedule(0, chain);
    q.run();
    EXPECT_EQ(count, 100);
    EXPECT_EQ(q.curTick(), 99u);
}

TEST(EventQueue, CancelPreventsDispatch)
{
    EventQueue q;
    bool fired = false;
    auto handle = q.schedule(10, [&] { fired = true; });
    EXPECT_TRUE(q.cancel(handle));
    q.run();
    EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelIsIdempotentAndRejectsBogusHandles)
{
    EventQueue q;
    auto handle = q.schedule(10, [] {});
    EXPECT_TRUE(q.cancel(handle));
    EXPECT_FALSE(q.cancel(handle));
    EXPECT_FALSE(q.cancel(0));
    EXPECT_FALSE(q.cancel(9999));
    q.run();
}

TEST(EventQueue, CancelOneOfManyAtSameTick)
{
    EventQueue q;
    std::vector<int> order;
    q.schedule(5, [&] { order.push_back(0); });
    auto mid = q.schedule(5, [&] { order.push_back(1); });
    q.schedule(5, [&] { order.push_back(2); });
    q.cancel(mid);
    q.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2}));
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue q;
    std::vector<Tick> fired;
    q.schedule(10, [&] { fired.push_back(10); });
    q.schedule(20, [&] { fired.push_back(20); });
    q.schedule(30, [&] { fired.push_back(30); });
    q.runUntil(20);
    EXPECT_EQ(fired, (std::vector<Tick>{10, 20}));
    EXPECT_EQ(q.curTick(), 20u);
    EXPECT_EQ(q.size(), 1u);
    q.run();
    EXPECT_EQ(fired.back(), 30u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle)
{
    EventQueue q;
    q.runUntil(500);
    EXPECT_EQ(q.curTick(), 500u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue q;
    q.schedule(10, [] {});
    q.schedule(20, [] {});
    q.step();
    q.reset();
    EXPECT_EQ(q.curTick(), 0u);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CountsDispatchedEvents)
{
    EventQueue q;
    for (int i = 0; i < 7; ++i)
        q.schedule(static_cast<Tick>(i), [] {});
    q.run();
    EXPECT_EQ(q.numDispatched(), 7u);
}

TEST(EventQueueDeathTest, SchedulingInThePastPanics)
{
    EventQueue q;
    q.schedule(100, [] {});
    q.step();
    EXPECT_DEATH(q.schedule(50, [] {}), "past");
}

} // namespace
