/**
 * @file
 * Tests for the range VLB (§4.1) and the virtual translation directory
 * (§4.2), including the directory-victim corner case.
 */

#include <gtest/gtest.h>

#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "uat/vlb.hh"
#include "uat/vtd.hh"

namespace {

using jord::mem::CoreMask;
using jord::noc::Mesh;
using jord::sim::Addr;
using jord::sim::MachineConfig;
using jord::uat::Perm;
using jord::uat::Vlb;
using jord::uat::VlbEntry;
using jord::uat::Vtd;

VlbEntry
makeEntry(Addr vte, Addr base, std::uint64_t bound,
          jord::uat::PdId pd, bool global = false)
{
    VlbEntry entry;
    entry.valid = true;
    entry.vteAddr = vte;
    entry.base = base;
    entry.bound = bound;
    entry.offs = 0x1000;
    entry.perm = Perm::rw();
    entry.pd = pd;
    entry.global = global;
    return entry;
}

// --- Vlb --------------------------------------------------------------------

TEST(Vlb, RangeHitAnywhereInsideBound)
{
    Vlb vlb(16);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 4096, 3));
    EXPECT_TRUE(vlb.lookup(0x4000'0000'0000ull, 3).has_value());
    EXPECT_TRUE(vlb.lookup(0x4000'0000'0fffull, 3).has_value());
    EXPECT_FALSE(vlb.lookup(0x4000'0000'1000ull, 3).has_value());
    EXPECT_FALSE(vlb.lookup(0x3fff'ffff'ffffull, 3).has_value());
}

TEST(Vlb, PdTaggingIsolatesDomains)
{
    Vlb vlb(16);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 4096, 3));
    EXPECT_FALSE(vlb.lookup(0x4000'0000'0000ull, 4).has_value());
}

TEST(Vlb, GlobalEntryMatchesAnyPd)
{
    Vlb vlb(16);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 4096, 0, true));
    EXPECT_TRUE(vlb.lookup(0x4000'0000'0000ull, 99).has_value());
}

TEST(Vlb, LruReplacement)
{
    Vlb vlb(2);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 1));
    vlb.insert(makeEntry(0x140, 0x4000'0000'1000ull, 128, 1));
    vlb.lookup(0x4000'0000'0000ull, 1); // entry 1 becomes MRU
    vlb.insert(makeEntry(0x180, 0x4000'0000'2000ull, 128, 1));
    EXPECT_TRUE(vlb.holdsVte(0x100));
    EXPECT_FALSE(vlb.holdsVte(0x140));
    EXPECT_EQ(vlb.stats().evictions, 1u);
}

TEST(Vlb, ReinsertSameVtePdUpdatesInPlace)
{
    Vlb vlb(4);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 1));
    VlbEntry update = makeEntry(0x100, 0x4000'0000'0000ull, 256, 1);
    update.perm = Perm::r();
    vlb.insert(update);
    EXPECT_EQ(vlb.occupancy(), 1u);
    auto hit = vlb.lookup(0x4000'0000'0000ull, 1);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->perm, Perm::r());
    EXPECT_EQ(hit->bound, 256u);
}

TEST(Vlb, SameVmaDifferentPdsCoexist)
{
    Vlb vlb(4);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 1));
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 2));
    EXPECT_EQ(vlb.occupancy(), 2u);
    EXPECT_TRUE(vlb.lookup(0x4000'0000'0000ull, 1).has_value());
    EXPECT_TRUE(vlb.lookup(0x4000'0000'0000ull, 2).has_value());
}

TEST(Vlb, InvalidateVteRemovesAllPdVariants)
{
    Vlb vlb(4);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 1));
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 2));
    vlb.insert(makeEntry(0x140, 0x4000'0000'1000ull, 128, 1));
    EXPECT_EQ(vlb.invalidateVte(0x100), 2u);
    EXPECT_FALSE(vlb.holdsVte(0x100));
    EXPECT_TRUE(vlb.holdsVte(0x140));
    EXPECT_EQ(vlb.stats().shootdowns, 2u);
}

TEST(Vlb, HitMissStats)
{
    Vlb vlb(4);
    vlb.insert(makeEntry(0x100, 0x4000'0000'0000ull, 128, 1));
    vlb.lookup(0x4000'0000'0000ull, 1);
    vlb.lookup(0x5000'0000'0000ull, 1);
    EXPECT_EQ(vlb.stats().hits, 1u);
    EXPECT_EQ(vlb.stats().misses, 1u);
    EXPECT_NEAR(vlb.stats().hitRate(), 0.5, 1e-12);
}

// --- Vtd --------------------------------------------------------------------

class VtdTest : public ::testing::Test
{
  protected:
    MachineConfig cfg = MachineConfig::isca25Default();
    Mesh mesh{cfg};
    Vtd vtd{cfg, mesh};
};

TEST_F(VtdTest, TracksSharers)
{
    vtd.addSharer(0x2000'0000'0000ull, 3);
    vtd.addSharer(0x2000'0000'0000ull, 7);
    auto sharers = vtd.sharers(0x2000'0000'0000ull);
    ASSERT_TRUE(sharers.has_value());
    EXPECT_TRUE(sharers->test(3));
    EXPECT_TRUE(sharers->test(7));
    EXPECT_EQ(sharers->count(), 2u);
}

TEST_F(VtdTest, RemoveDropsEntry)
{
    vtd.addSharer(0x2000'0000'0000ull, 3);
    vtd.remove(0x2000'0000'0000ull);
    EXPECT_FALSE(vtd.sharers(0x2000'0000'0000ull).has_value());
}

TEST_F(VtdTest, UntrackedReturnsNullopt)
{
    EXPECT_FALSE(vtd.sharers(0xdead'beefull).has_value());
}

TEST_F(VtdTest, PessimisticInstallOnlyWhenAbsent)
{
    CoreMask dir;
    dir.set(5);
    vtd.installPessimistic(0x2000'0000'0040ull, dir);
    EXPECT_TRUE(vtd.sharers(0x2000'0000'0040ull)->test(5));

    // Already tracked precisely: the install must not clobber.
    vtd.addSharer(0x2000'0000'0080ull, 1);
    CoreMask other;
    other.set(9);
    vtd.installPessimistic(0x2000'0000'0080ull, other);
    auto sharers = vtd.sharers(0x2000'0000'0080ull);
    EXPECT_TRUE(sharers->test(1));
    EXPECT_FALSE(sharers->test(9));
}

TEST_F(VtdTest, EmptyMaskNotInstalled)
{
    vtd.installPessimistic(0x2000'0000'00c0ull, CoreMask{});
    EXPECT_FALSE(vtd.sharers(0x2000'0000'00c0ull).has_value());
}

TEST_F(VtdTest, CapacityEvictionLru)
{
    // Overfill one set: addresses that map to the same slice and set.
    MachineConfig tiny = cfg;
    tiny.vtdSets = 1;
    tiny.vtdWays = 2;
    Vtd small(tiny, mesh);
    // Find three VTE addresses homed on the same slice.
    std::vector<Addr> same_slice;
    unsigned target = mesh.homeSlice(0x2000'0000'0000ull, 0);
    for (Addr addr = 0x2000'0000'0000ull; same_slice.size() < 3;
         addr += 64) {
        if (mesh.homeSlice(addr, 0) == target)
            same_slice.push_back(addr);
    }
    small.addSharer(same_slice[0], 0);
    small.addSharer(same_slice[1], 1);
    small.addSharer(same_slice[0], 2); // refresh LRU of [0]
    small.addSharer(same_slice[2], 3); // evicts [1]
    EXPECT_TRUE(small.sharers(same_slice[0]).has_value());
    EXPECT_FALSE(small.sharers(same_slice[1]).has_value());
    EXPECT_TRUE(small.sharers(same_slice[2]).has_value());
    EXPECT_GE(small.stats().evictions, 1u);
}

TEST_F(VtdTest, CapacityScalesWithConfig)
{
    EXPECT_EQ(vtd.capacity(),
              static_cast<std::uint64_t>(cfg.vtdSets) * cfg.vtdWays *
                  cfg.numCores);
}

} // namespace
