/**
 * @file
 * PrivLib: the trusted user-level privileged library (§3.2, §4.4).
 *
 * PrivLib is the only software allowed to touch the VMA table and the
 * UAT CSRs. It exposes the Table 1 API: POSIX-compatible VMA operations
 * (mmap / munmap / mprotect) extended with permission transfer
 * (pmove / pcopy), and protection-domain management (cget / cput /
 * ccall / center / cexit). Every entry point sits behind a uatg call
 * gate and runs mandatory security-policy checks before acting.
 *
 * All operations are both *functional* (they mutate the real VMA table,
 * free lists and PD state, and enforce the policy rules the security
 * tests probe) and *timed* (they return the latency composed from the
 * gate entry, the scaled instruction-execution budget, and the actual
 * memory traffic charged to the coherence engine).
 */

#ifndef JORD_PRIVLIB_PRIVLIB_HH
#define JORD_PRIVLIB_PRIVLIB_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "mem/coherence.hh"
#include "os/kernel.hh"
#include "privlib/costs.hh"
#include "sim/machine.hh"
#include "uat/uat_system.hh"
#include "uat/vma_table.hh"

namespace jord::check {
class CheckHooks;
} // namespace jord::check

namespace jord::trace {
class Counter;
class MetricsRegistry;
} // namespace jord::trace

namespace jord::prof {
class Pmu;
} // namespace jord::prof

namespace jord::privlib {

/** Result of a PrivLib call. */
struct PrivResult {
    bool ok = false;
    sim::Cycles latency = 0;
    /** mmap: new VMA base; cget: new PD id. */
    sim::Addr value = 0;
    /** Why the policy check or hardware refused. */
    uat::Fault fault = uat::Fault::None;
};

/** Operation ids for per-op statistics. */
enum class PrivOp : unsigned {
    Mmap,
    Munmap,
    Mprotect,
    Pmove,
    Pcopy,
    Cget,
    Cput,
    Ccall,
    Center,
    Cexit,
    NumOps,
};

/** Per-operation counters. */
struct OpStats {
    std::uint64_t count = 0;
    std::uint64_t cycles = 0;

    double
    meanCycles() const
    {
        return count ? static_cast<double>(cycles) /
                           static_cast<double>(count)
                     : 0.0;
    }
};

/**
 * The privileged library.
 */
class PrivLib
{
  public:
    /** The trusted runtime protection domain (orchestrator/executors). */
    static constexpr uat::PdId kRootPd = 0;

    /**
     * @param checker Optional JordSan hooks; when attached, every
     * successful mutation is reported after the real table update
     * (including the bootstrap VMAs created by this constructor).
     */
    PrivLib(const sim::MachineConfig &cfg,
            mem::CoherenceEngine &coherence, uat::UatSystem &uat,
            uat::VmaTableBase &table, os::Kernel &kernel,
            check::CheckHooks *checker = nullptr);

    PrivLib(const PrivLib &) = delete;
    PrivLib &operator=(const PrivLib &) = delete;

    // --- VMA management (Table 1) -------------------------------------

    /** Allocate a VMA of @p len bytes into the calling core's PD. */
    PrivResult mmap(unsigned core, std::uint64_t len, uat::Perm prot);

    /**
     * Runtime-internal variant: allocate into an explicit PD, optionally
     * privileged or global. Policy: only the root PD may use it.
     */
    PrivResult mmapFor(unsigned core, uat::PdId pd, std::uint64_t len,
                       uat::Perm prot, bool priv = false,
                       bool global = false);

    /** Deallocate a VMA owned by the calling PD. */
    PrivResult munmap(unsigned core, sim::Addr va, std::uint64_t len);

    /** Change the calling PD's permission on (or resize) a VMA. */
    PrivResult mprotect(unsigned core, sim::Addr va, std::uint64_t len,
                        uat::Perm prot);

    /** Move the calling PD's permission on a VMA to @p dst. */
    PrivResult pmove(unsigned core, sim::Addr va, uat::PdId dst,
                     uat::Perm prot);

    /**
     * Runtime-internal permission transfer between two foreign PDs
     * (the executor handing an ArgBuf from the producer's PD to a
     * fresh one, Fig. 4). Policy: only the root PD may call this.
     */
    PrivResult pmoveBetween(unsigned core, sim::Addr va, uat::PdId src,
                            uat::PdId dst, uat::Perm prot);

    /** Copy the calling PD's permission on a VMA to @p dst. */
    PrivResult pcopy(unsigned core, sim::Addr va, uat::PdId dst,
                     uat::Perm prot);

    // --- PD management (Table 1) ---------------------------------------

    /** Create a new PD; PrivResult::value is its id. */
    PrivResult cget(unsigned core);

    /** Destroy a PD created by the calling PD (or any PD, for root). */
    PrivResult cput(unsigned core, uat::PdId pd);

    /** Switch the core into @p pd (user-level context switch). */
    PrivResult ccall(unsigned core, uat::PdId pd);

    /** Resume a previously suspended PD. */
    PrivResult center(unsigned core, uat::PdId pd);

    /** Suspend the current PD and return to the caller domain. */
    PrivResult cexit(unsigned core);

    // --- Introspection --------------------------------------------------

    /** The PD the core currently executes in (the ucid CSR). */
    uat::PdId currentPd(unsigned core) const;

    bool pdValid(uat::PdId pd) const;
    unsigned numLivePds() const { return livePds_; }

    /** Depth of the core's domain call stack (0 = in root). */
    unsigned domainDepth(unsigned core) const
    {
        return static_cast<unsigned>(domainStack_[core].size());
    }

    // --- Jord_NI ---------------------------------------------------------

    /**
     * Bypass all isolation work (the Jord_NI upper bound, §5): VMAs are
     * created global-RWX, and permission/PD operations return
     * immediately at near-zero cost. Memory management itself (VA and
     * physical chunk allocation) still runs.
     */
    void setIsolationBypass(bool bypass) { bypass_ = bypass; }
    bool isolationBypass() const { return bypass_; }

    // --- Stats -----------------------------------------------------------

    const OpStats &stats(PrivOp op) const
    {
        return stats_[static_cast<unsigned>(op)];
    }
    void resetStats();

    /**
     * Register per-op call counters (`privlib.<op>.calls`) and cycle
     * totals (`privlib.<op>.cycles`) into @p registry (must outlive
     * this object); account() feeds them alongside the OpStats.
     */
    void attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix = "");

    /** Attach the simulated PMU (null to detach); shootdown-fence
     * waits are attributed at zero simulated latency. */
    void setPmu(prof::Pmu *pmu) { pmu_ = pmu; }

    /** Cycles spent in VMA-management ops (Fig. 13 comparison). */
    std::uint64_t vmaManagementCycles() const;

    /** Cycles spent in PD-management ops. */
    std::uint64_t pdManagementCycles() const;

    PrivCosts &costs() { return costs_; }
    uat::UatSystem &uat() { return uat_; }

    /** Base VA of PrivLib's privileged code VMA (gates live here). */
    sim::Addr privCodeBase() const { return privCodeBase_; }
    /** Base VA of PrivLib's privileged data VMA. */
    sim::Addr privDataBase() const { return privDataBase_; }

  private:
    struct PdInfo {
        bool valid = false;
        uat::PdId creator = 0;
        /** VMAs on which this PD currently holds a permission entry. */
        std::uint32_t refs = 0;
    };

    /**
     * A shared free list with per-core magazines. Pops and pushes hit a
     * core-local cache line; only magazine refills/flushes touch the
     * shared head, amortising cross-core contention (slab-style; the
     * paper's shared lists with per-core front-ends).
     */
    struct FreeList {
        std::vector<std::uint64_t> shared;
        std::uint64_t nextFresh = 0; ///< bump pointer (0 = disabled)
        std::uint64_t freshLimit = 0;
        sim::Addr headAddr = 0; ///< shared-head cache line
        std::vector<std::vector<std::uint64_t>> magazines;
        sim::Addr magazineBase = 0; ///< per-core line region
    };

    /** Items moved between a magazine and the shared list at once. */
    static constexpr unsigned kMagazineBatch = 16;

    const sim::MachineConfig &cfg_;
    mem::CoherenceEngine &coherence_;
    uat::UatSystem &uat_;
    uat::VmaTableBase &table_;
    os::Kernel &kernel_;
    check::CheckHooks *checker_ = nullptr;
    prof::Pmu *pmu_ = nullptr;
    PrivCosts costs_;
    bool bypass_ = false;

    std::array<FreeList, uat::kNumSizeClasses> vaLists_;
    std::array<FreeList, uat::kNumSizeClasses> physLists_;
    FreeList pdList_;
    std::vector<PdInfo> pds_;
    unsigned livePds_ = 0;
    /** Per-core stack of suspended domains (ccall/cexit nesting). */
    std::vector<std::vector<uat::PdId>> domainStack_;
    std::array<OpStats, static_cast<unsigned>(PrivOp::NumOps)> stats_{};
    /** Registry mirrors of stats_ (null when metrics not attached). */
    std::array<trace::Counter *,
               static_cast<unsigned>(PrivOp::NumOps)> opCalls_{};
    std::array<trace::Counter *,
               static_cast<unsigned>(PrivOp::NumOps)> opCycles_{};
    sim::Addr privCodeBase_ = 0;
    sim::Addr privDataBase_ = 0;

    /** Scaled instruction-execution latency. */
    sim::Cycles sw(sim::Cycles budget) const;

    /** Ordering fence: wait until a VTE write's shootdown completed. */
    sim::Cycles fence(unsigned core, sim::Addr vte_addr) const;

    /** PD-table cache line of a PD. */
    static sim::Addr pdLineAddr(uat::PdId pd);

    /** Timed pop/push through a free list's per-core magazine. */
    bool listPop(unsigned core, FreeList &list, std::uint64_t &item,
                 sim::Cycles &latency);
    void listPush(unsigned core, FreeList &list, std::uint64_t item,
                  sim::Cycles &latency);

    /** Pop a VA index for a size class; also charges list traffic. */
    bool popVaIndex(unsigned core, unsigned sc, std::uint64_t &index,
                    sim::Cycles &latency);
    void pushVaIndex(unsigned core, unsigned sc, std::uint64_t index,
                     sim::Cycles &latency);

    /** Pop a physical chunk, refilling from the kernel if needed. */
    bool popPhysChunk(unsigned core, unsigned sc, sim::Addr &pa,
                      sim::Cycles &latency);
    void pushPhysChunk(unsigned core, unsigned sc, sim::Addr pa,
                       sim::Cycles &latency);

    void account(PrivOp op, sim::Cycles latency);

    PrivResult mmapInternal(unsigned core, uat::PdId pd,
                            std::uint64_t len, uat::Perm prot, bool priv,
                            bool global, PrivOp op);

    /** Shared policy lookup: the calling PD's entry on a VMA. */
    uat::Vte *vteForPolicy(unsigned core, sim::Addr va, uat::PdId pd,
                           PrivResult &res);

    /**
     * Install or update @p pd's permission on a VMA, spilling to the
     * overflow list when the inline sub-array is full (§4.3).
     */
    void setPerm(unsigned core, uat::Vte &vte, uat::PdId pd,
                 uat::Perm perm, sim::Cycles &latency);

    /** Drop @p pd's permission entry (inline or overflow). */
    bool removePerm(uat::Vte &vte, uat::PdId pd);
};

} // namespace jord::privlib

#endif // JORD_PRIVLIB_PRIVLIB_HH
