#include "privlib/privlib.hh"

#include <algorithm>
#include <iterator>
#include <string>

#include "check/hooks.hh"
#include "prof/pmu.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"

namespace jord::privlib {

using sim::Addr;
using sim::Cycles;
using uat::Fault;
using uat::PdId;
using uat::Perm;
using uat::Vte;

namespace {

/** Synthetic cache lines holding the free-list heads. */
constexpr Addr kFreeListBase = 0x3000'0000'0000ull;
/** Synthetic cache lines holding PD metadata (the PD-config VMA). */
constexpr Addr kPdTableBase = 0x3001'0000'0000ull;

/** How many physical chunks one kernel refill provides per class. */
std::uint64_t
refillChunks(unsigned sc)
{
    std::uint64_t chunk = uat::VaEncoding::classSize(sc);
    std::uint64_t batch = (1ull << 20) / chunk; // ~1 MB batches
    return std::clamp<std::uint64_t>(batch, 1, 64);
}

} // namespace

PrivLib::PrivLib(const sim::MachineConfig &cfg,
                 mem::CoherenceEngine &coherence, uat::UatSystem &uat,
                 uat::VmaTableBase &table, os::Kernel &kernel,
                 check::CheckHooks *checker)
    : cfg_(cfg),
      coherence_(coherence),
      uat_(uat),
      table_(table),
      kernel_(kernel),
      checker_(checker),
      pds_(uat::kMaxPdId + 1),
      domainStack_(cfg.numCores)
{
    uat::VaEncoding encoding;
    const unsigned cores = cfg.numCores;
    constexpr Addr kMagRegion =
        static_cast<Addr>(mem::kMaxCores) * sim::kCacheBlockBytes;
    for (unsigned sc = 0; sc < uat::kNumSizeClasses; ++sc) {
        FreeList &va = vaLists_[sc];
        va.headAddr = kFreeListBase + sc * sim::kCacheBlockBytes;
        va.magazines.resize(cores);
        va.magazineBase = kFreeListBase + 0x10'0000 + sc * kMagRegion;
        va.freshLimit = encoding.indicesPerClass(sc);

        FreeList &phys = physLists_[sc];
        phys.headAddr =
            kFreeListBase + 0x1000 + sc * sim::kCacheBlockBytes;
        phys.magazines.resize(cores);
        phys.magazineBase =
            kFreeListBase + 0x90'0000 + sc * kMagRegion;
    }
    // PD ids hand out 1..kMaxPdId; the root PD (0) is never recycled.
    pdList_.headAddr = kFreeListBase + 0x2000;
    pdList_.magazines.resize(cores);
    pdList_.magazineBase = kFreeListBase + 0x110'0000;
    pdList_.nextFresh = 1;
    pdList_.freshLimit = uat::kMaxPdId + 1;

    pds_[kRootPd].valid = true;
    pds_[kRootPd].creator = kRootPd;
    livePds_ = 1;

    // Bootstrap (the OS does this before handing control to user code,
    // §4.4): create PrivLib's privileged code and data VMAs and register
    // the uatg call gates at its entry points.
    PrivResult code = mmapInternal(0, kRootPd, 64 << 10, Perm::rx(),
                                   true, true, PrivOp::Mmap);
    PrivResult data = mmapInternal(0, kRootPd, 256 << 10, Perm::rw(),
                                   true, true, PrivOp::Mmap);
    if (!code.ok || !data.ok)
        sim::panic("PrivLib bootstrap failed");
    privCodeBase_ = code.value;
    privDataBase_ = data.value;
    for (unsigned entry = 0; entry < 16; ++entry)
        uat_.addGate(privCodeBase_ + entry * 16);
    resetStats();
}

Cycles
PrivLib::sw(Cycles budget) const
{
    return static_cast<Cycles>(static_cast<double>(budget) *
                               cfg_.swLatencyScale());
}

Cycles
PrivLib::fence(unsigned core, Addr vte_addr) const
{
    // The mutating core must observe shootdown completion before the
    // operation may return (e.g., before recycling freed memory).
    unsigned home = coherence_.mesh().homeSlice(
        sim::blockAlign(vte_addr), core);
    Cycles lat = coherence_.mesh().roundTrip(core, home,
                                             noc::MsgKind::Control) +
                 cfg_.llcHitCycles;
    // Pure mesh math (no coherence access), so the cycles are not
    // already in any stall bucket: the wait is shootdown time.
    if (pmu_)
        pmu_->charge(core, prof::PmuBucket::Shootdown, lat);
    return lat;
}

Addr
PrivLib::pdLineAddr(PdId pd)
{
    return kPdTableBase + static_cast<Addr>(pd) * sim::kCacheBlockBytes;
}

void
PrivLib::account(PrivOp op, Cycles latency)
{
    OpStats &entry = stats_[static_cast<unsigned>(op)];
    ++entry.count;
    entry.cycles += latency;
    unsigned idx = static_cast<unsigned>(op);
    if (opCalls_[idx])
        opCalls_[idx]->add();
    if (opCycles_[idx])
        opCycles_[idx]->add(latency);
}

void
PrivLib::attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix)
{
    static constexpr const char *kOpNames[] = {
        "mmap", "munmap", "mprotect", "pmove", "pcopy",
        "cget", "cput",   "ccall",    "center", "cexit",
    };
    static_assert(std::size(kOpNames) ==
                  static_cast<unsigned>(PrivOp::NumOps));
    for (unsigned op = 0; op < static_cast<unsigned>(PrivOp::NumOps);
         ++op) {
        std::string base = prefix + "privlib." + kOpNames[op];
        opCalls_[op] = &registry.counter(base + ".calls");
        opCycles_[op] = &registry.counter(base + ".cycles");
    }
}

void
PrivLib::resetStats()
{
    for (auto &entry : stats_)
        entry = OpStats{};
}

std::uint64_t
PrivLib::vmaManagementCycles() const
{
    return stats(PrivOp::Mmap).cycles + stats(PrivOp::Munmap).cycles +
           stats(PrivOp::Mprotect).cycles + stats(PrivOp::Pmove).cycles +
           stats(PrivOp::Pcopy).cycles;
}

std::uint64_t
PrivLib::pdManagementCycles() const
{
    return stats(PrivOp::Cget).cycles + stats(PrivOp::Cput).cycles +
           stats(PrivOp::Ccall).cycles + stats(PrivOp::Center).cycles +
           stats(PrivOp::Cexit).cycles;
}

PdId
PrivLib::currentPd(unsigned core) const
{
    return uat_.csrFile(core).ucid;
}

bool
PrivLib::pdValid(PdId pd) const
{
    return pd <= uat::kMaxPdId && pds_[pd].valid;
}

// --- Free lists ---------------------------------------------------------

bool
PrivLib::listPop(unsigned core, FreeList &list, std::uint64_t &item,
                 Cycles &latency)
{
    auto &mag = list.magazines[core];
    latency += coherence_
                   .atomic(core, list.magazineBase +
                                     core * sim::kCacheBlockBytes)
                   .latency;
    if (mag.empty()) {
        // Magazine refill: the only access to the shared head.
        latency += coherence_.atomic(core, list.headAddr).latency;
        while (mag.size() < kMagazineBatch && !list.shared.empty()) {
            mag.push_back(list.shared.back());
            list.shared.pop_back();
        }
        while (mag.size() < kMagazineBatch &&
               list.nextFresh < list.freshLimit) {
            mag.push_back(list.nextFresh++);
        }
        if (mag.empty())
            return false;
    }
    item = mag.back();
    mag.pop_back();
    return true;
}

void
PrivLib::listPush(unsigned core, FreeList &list, std::uint64_t item,
                  Cycles &latency)
{
    auto &mag = list.magazines[core];
    latency += coherence_
                   .atomic(core, list.magazineBase +
                                     core * sim::kCacheBlockBytes)
                   .latency;
    mag.push_back(item);
    if (mag.size() > 2 * kMagazineBatch) {
        // Flush half the magazine back to the shared list.
        latency += coherence_.atomic(core, list.headAddr).latency;
        for (unsigned i = 0; i < kMagazineBatch; ++i) {
            list.shared.push_back(mag.back());
            mag.pop_back();
        }
    }
}

bool
PrivLib::popVaIndex(unsigned core, unsigned sc, std::uint64_t &index,
                    Cycles &latency)
{
    return listPop(core, vaLists_[sc], index, latency);
}

void
PrivLib::pushVaIndex(unsigned core, unsigned sc, std::uint64_t index,
                     Cycles &latency)
{
    listPush(core, vaLists_[sc], index, latency);
}

bool
PrivLib::popPhysChunk(unsigned core, unsigned sc, Addr &pa,
                      Cycles &latency)
{
    FreeList &list = physLists_[sc];
    std::uint64_t item = 0;
    if (listPop(core, list, item, latency)) {
        pa = item;
        return true;
    }
    // Refill from the OS reservation via uat_config (§4.4).
    std::uint64_t chunk = uat::VaEncoding::classSize(sc);
    std::uint64_t batch = refillChunks(sc);
    os::SyscallResult sys = kernel_.uatConfigReserve(chunk * batch);
    latency += sys.latency;
    if (!sys.ok)
        return false;
    for (std::uint64_t i = 0; i < batch; ++i)
        list.shared.push_back(sys.addr + i * chunk);
    if (!listPop(core, list, item, latency))
        return false;
    pa = item;
    return true;
}

void
PrivLib::pushPhysChunk(unsigned core, unsigned sc, Addr pa,
                       Cycles &latency)
{
    listPush(core, physLists_[sc], pa, latency);
}

// --- VMA management -------------------------------------------------------

PrivResult
PrivLib::mmap(unsigned core, std::uint64_t len, Perm prot)
{
    return mmapInternal(core, currentPd(core), len, prot, false, false,
                        PrivOp::Mmap);
}

PrivResult
PrivLib::mmapFor(unsigned core, PdId pd, std::uint64_t len, Perm prot,
                 bool priv, bool global)
{
    PrivResult res;
    if (currentPd(core) != kRootPd) {
        // Only the trusted runtime may place VMAs into foreign PDs.
        res.fault = Fault::NoPermission;
        res.latency = costs_.gateEntry;
        account(PrivOp::Mmap, res.latency);
        return res;
    }
    return mmapInternal(core, pd, len, prot, priv, global, PrivOp::Mmap);
}

PrivResult
PrivLib::mmapInternal(unsigned core, PdId pd, std::uint64_t len,
                      Perm prot, bool priv, bool global, PrivOp op)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.mmapSw);

    auto sc = uat::VaEncoding::classForSize(len);
    if (len == 0 || !sc || !pdValid(pd)) {
        res.fault = Fault::NoPermission;
        account(op, res.latency);
        return res;
    }

    std::uint64_t index = 0;
    Addr pa = 0;
    if (!popVaIndex(core, *sc, index, res.latency) ||
        !popPhysChunk(core, *sc, pa, res.latency)) {
        res.fault = Fault::NotMapped; // resources exhausted
        account(op, res.latency);
        return res;
    }

    uat::VaEncoding encoding;
    Addr vma_base = encoding.encode(*sc, index);

    uat::TableUpdate upd = table_.noteInsert(vma_base);
    if (!upd.ok) {
        pushVaIndex(core, *sc, index, res.latency);
        pushPhysChunk(core, *sc, pa, res.latency);
        res.fault = Fault::NotMapped;
        account(op, res.latency);
        return res;
    }
    for (Addr block : upd.readAddrs)
        res.latency += coherence_.read(core, block).latency;
    for (Addr block : upd.writeAddrs)
        res.latency += coherence_.write(core, block).latency;

    Vte *vte = table_.vteFor(vma_base);
    if (!vte)
        sim::panic("VTE slot missing after insert");
    *vte = Vte{};
    vte->bound = len;
    vte->setOffs(static_cast<std::int64_t>(pa) -
                 static_cast<std::int64_t>(vma_base));
    bool make_global = global || bypass_;
    Perm global_perm = bypass_ ? Perm::rwx() : prot;
    vte->setAttr(true, make_global, priv, make_global ? global_perm
                                                      : Perm::none());
    if (!make_global) {
        *vte->freeSub() = uat::SubEntry::make(pd, prot);
        ++pds_[pd].refs;
    }

    res.latency += uat_.vteWrite(core, table_.vteAddrOf(vma_base));
    res.ok = true;
    res.value = vma_base;
    account(op, res.latency);
    if (checker_)
        checker_->onVmaMapped(core, pd, vma_base, len, prot,
                              table_.vteAddrOf(vma_base), *vte);
    return res;
}

void
PrivLib::setPerm(unsigned core, Vte &vte, PdId pd, Perm perm,
                 Cycles &latency)
{
    if (uat::SubEntry *inline_sub = vte.findSub(pd)) {
        *inline_sub = uat::SubEntry::make(pd, perm);
        return;
    }
    if (auto *extra = const_cast<std::vector<uat::SubEntry> *>(
            table_.overflowListIfAny(vte))) {
        for (auto &entry : *extra) {
            if (entry.valid() && entry.pd() == pd) {
                entry = uat::SubEntry::make(pd, perm);
                return;
            }
        }
    }
    if (uat::SubEntry *slot = vte.freeSub()) {
        *slot = uat::SubEntry::make(pd, perm);
        ++pds_[pd].refs;
        return;
    }
    // Rare case: more than kSubArrayEntries sharers spill into the
    // complete list behind the ptr field (§4.3).
    table_.overflowList(vte).push_back(uat::SubEntry::make(pd, perm));
    ++pds_[pd].refs;
    latency += coherence_
                   .write(core, 0x3800'0000'0000ull +
                                    vte.ptr * sim::kCacheBlockBytes)
                   .latency;
}

bool
PrivLib::removePerm(Vte &vte, PdId pd)
{
    if (uat::SubEntry *inline_sub = vte.findSub(pd)) {
        inline_sub->clear();
        --pds_[pd].refs;
        return true;
    }
    if (auto *extra = const_cast<std::vector<uat::SubEntry> *>(
            table_.overflowListIfAny(vte))) {
        for (auto &entry : *extra) {
            if (entry.valid() && entry.pd() == pd) {
                entry.clear();
                --pds_[pd].refs;
                return true;
            }
        }
    }
    return false;
}

uat::Vte *
PrivLib::vteForPolicy(unsigned /* core */, Addr va, PdId pd,
                      PrivResult &res)
{
    uat::VaEncoding encoding;
    auto base = encoding.vmaBase(va);
    if (!base || *base != va) {
        // Operations name the VMA by its base address.
        res.fault = Fault::NotMapped;
        return nullptr;
    }
    Vte *vte = table_.vteFor(va);
    if (!vte || !vte->valid()) {
        res.fault = Fault::NotMapped;
        return nullptr;
    }
    if (vte->privileged() && pd != kRootPd) {
        res.fault = Fault::PrivilegedAccess;
        return nullptr;
    }
    if (pd != kRootPd && !vte->global() && !table_.permFor(*vte, pd)) {
        res.fault = Fault::NoPermission;
        return nullptr;
    }
    return vte;
}

PrivResult
PrivLib::munmap(unsigned core, Addr va, std::uint64_t len)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.munmapSw);
    PdId pd = currentPd(core);

    Vte *vte = vteForPolicy(core, va, pd, res);
    if (!vte) {
        account(PrivOp::Munmap, res.latency);
        return res;
    }
    if (len != vte->bound) {
        res.fault = Fault::OutOfBound;
        account(PrivOp::Munmap, res.latency);
        return res;
    }

    uat::VaEncoding encoding;
    auto decoded = encoding.decode(va);
    unsigned sc = decoded->sizeClass;
    Addr pa = static_cast<Addr>(static_cast<std::int64_t>(va) +
                                vte->offs());
    Addr vte_addr = table_.vteAddrOf(va);

    // Drop the sharer refcounts before clearing the entry.
    for (const auto &sub : vte->sub)
        if (sub.valid())
            --pds_[sub.pd()].refs;
    if (const auto *extra = table_.overflowListIfAny(*vte))
        for (const auto &sub : *extra)
            if (sub.valid())
                --pds_[sub.pd()].refs;
    table_.clearOverflow(*vte);
    *vte = Vte{}; // invalidate

    res.latency += uat_.vteWrite(core, vte_addr); // shoots down VLBs
    res.latency += fence(core, vte_addr);

    uat::TableUpdate upd = table_.noteRemove(va);
    for (Addr block : upd.readAddrs)
        res.latency += coherence_.read(core, block).latency;
    for (Addr block : upd.writeAddrs)
        res.latency += coherence_.write(core, block).latency;

    pushVaIndex(core, sc, decoded->index, res.latency);
    pushPhysChunk(core, sc, pa, res.latency);

    res.ok = true;
    account(PrivOp::Munmap, res.latency);
    if (checker_)
        checker_->onVmaUnmapped(core, va);
    return res;
}

PrivResult
PrivLib::mprotect(unsigned core, Addr va, std::uint64_t len, Perm prot)
{
    PrivResult res;
    if (bypass_) {
        res.ok = true;
        res.latency = costs_.bypass;
        account(PrivOp::Mprotect, res.latency);
        return res;
    }
    res.latency = costs_.gateEntry + sw(costs_.mprotectSw);
    PdId pd = currentPd(core);

    Vte *vte = vteForPolicy(core, va, pd, res);
    if (!vte) {
        account(PrivOp::Mprotect, res.latency);
        return res;
    }

    uat::VaEncoding encoding;
    auto decoded = encoding.decode(va);
    std::uint64_t chunk = uat::VaEncoding::classSize(decoded->sizeClass);
    if (len == 0 || len > chunk) {
        res.fault = Fault::OutOfBound;
        account(PrivOp::Mprotect, res.latency);
        return res;
    }

    // Resize within the chunk (the trailing part of the chunk is
    // reserved exactly for this, §4.1) and update the permission.
    vte->bound = len;
    if (vte->global()) {
        vte->setAttr(true, true, vte->privileged(), prot);
    } else if (uat::SubEntry *sub = vte->findSub(pd)) {
        *sub = uat::SubEntry::make(pd, prot);
    } else if (pd == kRootPd) {
        // Root adjusting a VMA it does not share: update the first
        // sharer (runtime-internal resize path).
        res.fault = Fault::NoPermission;
        account(PrivOp::Mprotect, res.latency);
        return res;
    }

    Addr vte_addr = table_.vteAddrOf(va);
    res.latency += uat_.vteWrite(core, vte_addr);
    res.ok = true;
    account(PrivOp::Mprotect, res.latency);
    if (checker_)
        checker_->onVmaProtected(core, pd, va, len, prot, *vte);
    return res;
}

PrivResult
PrivLib::pmove(unsigned core, Addr va, PdId dst, Perm prot)
{
    PrivResult res;
    if (bypass_) {
        res.ok = true;
        res.latency = costs_.bypass;
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    res.latency = costs_.gateEntry + sw(costs_.pmoveSw);
    PdId src = currentPd(core);

    if (!pdValid(dst)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    Vte *vte = vteForPolicy(core, va, src, res);
    if (!vte) {
        account(PrivOp::Pmove, res.latency);
        return res;
    }

    auto held = table_.permFor(*vte, src);
    if (!held || !held->covers(prot)) {
        // Delegation may only hand over permissions the caller holds.
        res.fault = Fault::NoPermission;
        account(PrivOp::Pmove, res.latency);
        return res;
    }

    if (!vte->global())
        removePerm(*vte, src);
    setPerm(core, *vte, dst, prot, res.latency);

    Addr vte_addr = table_.vteAddrOf(va);
    res.latency += uat_.vteWrite(core, vte_addr);
    res.ok = true;
    account(PrivOp::Pmove, res.latency);
    if (checker_)
        checker_->onPermMoved(core, va, src, dst, prot, *vte);
    return res;
}

PrivResult
PrivLib::pmoveBetween(unsigned core, Addr va, PdId src, PdId dst,
                      Perm prot)
{
    PrivResult res;
    if (bypass_) {
        res.ok = true;
        res.latency = costs_.bypass;
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    res.latency = costs_.gateEntry + sw(costs_.pmoveSw);

    if (currentPd(core) != kRootPd || !pdValid(src) || !pdValid(dst)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    Vte *vte = vteForPolicy(core, va, kRootPd, res);
    if (!vte) {
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    auto held = table_.permFor(*vte, src);
    if (!held || !held->covers(prot)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Pmove, res.latency);
        return res;
    }
    if (!vte->global())
        removePerm(*vte, src);
    setPerm(core, *vte, dst, prot, res.latency);
    res.latency += uat_.vteWrite(core, table_.vteAddrOf(va));
    res.ok = true;
    account(PrivOp::Pmove, res.latency);
    if (checker_)
        checker_->onPermMoved(core, va, src, dst, prot, *vte);
    return res;
}

PrivResult
PrivLib::pcopy(unsigned core, Addr va, PdId dst, Perm prot)
{
    PrivResult res;
    if (bypass_) {
        res.ok = true;
        res.latency = costs_.bypass;
        account(PrivOp::Pcopy, res.latency);
        return res;
    }
    res.latency = costs_.gateEntry + sw(costs_.pcopySw);
    PdId src = currentPd(core);

    if (!pdValid(dst)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Pcopy, res.latency);
        return res;
    }
    Vte *vte = vteForPolicy(core, va, src, res);
    if (!vte) {
        account(PrivOp::Pcopy, res.latency);
        return res;
    }

    auto held = table_.permFor(*vte, src);
    if (!held || !held->covers(prot)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Pcopy, res.latency);
        return res;
    }

    setPerm(core, *vte, dst, prot, res.latency);

    // A pcopy only *adds* a permission: no cached translation becomes
    // stale, so the VTE write does not carry the T bit and triggers no
    // VLB shootdown.
    Addr vte_addr = table_.vteAddrOf(va);
    res.latency += coherence_.write(core, vte_addr).latency;
    res.ok = true;
    account(PrivOp::Pcopy, res.latency);
    if (checker_)
        checker_->onPermCopied(core, va, src, dst, prot, *vte);
    return res;
}

// --- PD management ---------------------------------------------------------

PrivResult
PrivLib::cget(unsigned core)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.cgetSw);
    std::uint64_t raw = 0;
    if (!listPop(core, pdList_, raw, res.latency)) {
        res.fault = Fault::NoPermission; // PD ids exhausted
        account(PrivOp::Cget, res.latency);
        return res;
    }
    PdId id = static_cast<PdId>(raw);
    pds_[id].valid = true;
    pds_[id].creator = currentPd(core);
    pds_[id].refs = 0;
    ++livePds_;
    res.latency += coherence_.write(core, pdLineAddr(id)).latency;
    res.ok = true;
    res.value = id;
    account(PrivOp::Cget, res.latency);
    if (checker_)
        checker_->onPdCreated(id, pds_[id].creator);
    return res;
}

PrivResult
PrivLib::cput(unsigned core, PdId pd)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.cputSw);
    PdId caller = currentPd(core);

    if (!pdValid(pd) || pd == kRootPd || pd == caller ||
        (caller != kRootPd && pds_[pd].creator != caller)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Cput, res.latency);
        return res;
    }
    if (pds_[pd].refs != 0) {
        // The PD still holds VMA permissions; destroying it would leak
        // them to the next owner of the recycled id.
        res.fault = Fault::NoPermission;
        account(PrivOp::Cput, res.latency);
        return res;
    }

    pds_[pd].valid = false;
    --livePds_;
    res.latency += coherence_.write(core, pdLineAddr(pd)).latency;
    listPush(core, pdList_, pd, res.latency);
    res.ok = true;
    account(PrivOp::Cput, res.latency);
    if (checker_)
        checker_->onPdDestroyed(pd);
    return res;
}

PrivResult
PrivLib::ccall(unsigned core, PdId pd)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.ccallSw) +
                  costs_.switchPipeline;
    PdId caller = currentPd(core);

    if (!pdValid(pd) ||
        (caller != kRootPd && pds_[pd].creator != caller)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Ccall, res.latency);
        return res;
    }

    res.latency += coherence_.read(core, pdLineAddr(pd)).latency;
    domainStack_[core].push_back(caller);
    uat_.csrFile(core).ucid = pd; // privileged CSR write inside PrivLib
    res.latency += 1;
    res.ok = true;
    account(PrivOp::Ccall, res.latency);
    if (checker_)
        checker_->onDomainEnter(core, pd);
    return res;
}

PrivResult
PrivLib::center(unsigned core, PdId pd)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.centerSw) +
                  costs_.switchPipeline;
    PdId caller = currentPd(core);

    if (!pdValid(pd) ||
        (caller != kRootPd && pds_[pd].creator != caller)) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Center, res.latency);
        return res;
    }

    res.latency += coherence_.read(core, pdLineAddr(pd)).latency;
    domainStack_[core].push_back(caller);
    uat_.csrFile(core).ucid = pd;
    res.latency += 1;
    res.ok = true;
    account(PrivOp::Center, res.latency);
    if (checker_)
        checker_->onDomainEnter(core, pd);
    return res;
}

PrivResult
PrivLib::cexit(unsigned core)
{
    PrivResult res;
    res.latency = costs_.gateEntry + sw(costs_.cexitSw) +
                  costs_.switchPipeline;
    if (domainStack_[core].empty()) {
        res.fault = Fault::NoPermission;
        account(PrivOp::Cexit, res.latency);
        return res;
    }
    uat_.csrFile(core).ucid = domainStack_[core].back();
    domainStack_[core].pop_back();
    res.latency += 1;
    res.ok = true;
    account(PrivOp::Cexit, res.latency);
    if (checker_)
        checker_->onDomainExit(core, uat_.csrFile(core).ucid);
    return res;
}

} // namespace jord::privlib
