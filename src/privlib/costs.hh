/**
 * @file
 * Software cycle budgets for PrivLib operations.
 *
 * Each PrivLib call is modelled as: uatg gate entry + mandatory policy
 * checks (instruction execution, scaled by the machine profile's IPC
 * factor) plus the real memory accesses the operation performs (free
 * list atomics, VTE reads/writes, completion fences), which are charged
 * through the coherence engine. The constants below are calibrated so
 * the Table 4 simulator column emerges in the warm single-core case and
 * the FPGA column follows from the IPC penalty alone (§6.2).
 */

#ifndef JORD_PRIVLIB_COSTS_HH
#define JORD_PRIVLIB_COSTS_HH

#include "sim/types.hh"

namespace jord::privlib {

/** Instruction-execution budgets (cycles at the simulator's IPC). */
struct PrivCosts {
    /** uatg gate entry + CFI policy-check prologue, on every call. */
    sim::Cycles gateEntry = 8;

    sim::Cycles mmapSw = 48;     ///< size-class calc, list bookkeeping
    sim::Cycles munmapSw = 45;   ///< teardown bookkeeping
    sim::Cycles mprotectSw = 54; ///< permission recompute
    sim::Cycles pmoveSw = 28;    ///< transfer bookkeeping
    sim::Cycles pcopySw = 26;    ///< duplicate bookkeeping

    sim::Cycles cgetSw = 30;   ///< PD metadata init
    sim::Cycles cputSw = 40;   ///< PD teardown checks
    sim::Cycles ccallSw = 30;  ///< register save + load
    sim::Cycles centerSw = 28; ///< register reload
    sim::Cycles cexitSw = 26;  ///< register save

    /** Pipeline refill after the control transfer of a PD switch. */
    sim::Cycles switchPipeline = 6;

    /** Near-free cost charged when isolation is bypassed (Jord_NI). */
    sim::Cycles bypass = 2;
};

} // namespace jord::privlib

#endif // JORD_PRIVLIB_COSTS_HH
