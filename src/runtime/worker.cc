#include "runtime/worker.hh"

#include <algorithm>
#include <cmath>
#include <string>

#include "prof/pmu.hh"
#include "prof/profiler.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace jord::runtime {

using sim::Addr;
using sim::Cycles;
using sim::Tick;

namespace {
/** Synthetic cache lines for executor request queues. */
constexpr Addr kQueueLineBase = 0x5000'0000'0000ull;
/** Fixed bookkeeping cycles for queue push/pop and notifications. */
constexpr Cycles kQueueOpCycles = 6;
/** Orchestrator bookkeeping per completed request. */
constexpr Cycles kCompletionCycles = 20;

/** Span attribution for a request. */
trace::SpanArgs
spanArgs(const Request &req)
{
    trace::SpanArgs args;
    args.req = req.id;
    args.fn = static_cast<std::int32_t>(req.fn);
    args.measured = req.measured;
    return args;
}
} // namespace

WorkerServer::WorkerServer(WorkerConfig cfg, FunctionRegistry registry)
    : cfg_(std::move(cfg)), registry_(std::move(registry)),
      rng_(cfg_.seed)
{
    const sim::MachineConfig &m = cfg_.machine;
    if (cfg_.numDomains == 0 || cfg_.numDomains > m.numCores)
        sim::fatal("numDomains %u must be in [1, %u cores]",
                   cfg_.numDomains, m.numCores);
    events_.setDomains(cfg_.numDomains);
    mesh_ = std::make_unique<noc::Mesh>(m);
    coherence_ = std::make_unique<mem::CoherenceEngine>(m, *mesh_);

    uat::VaEncoding encoding;
    if (cfg_.system == SystemKind::JordBT)
        table_ = std::make_unique<uat::BTreeVmaTable>(encoding);
    else
        table_ = std::make_unique<uat::PlainListVmaTable>(encoding);

    uat_ = std::make_unique<uat::UatSystem>(m, *coherence_, *table_);
    if (cfg_.check.any()) {
        checker_ = std::make_unique<check::Checker>(cfg_.check,
                                                    encoding);
        checker_->setClock([this] { return events_.curTick(); });
        uat_->setChecker(checker_.get());
    }
    kernel_ = std::make_unique<os::Kernel>(m);
    privlib_ = std::make_unique<privlib::PrivLib>(m, *coherence_, *uat_,
                                                  *table_, *kernel_,
                                                  checker_.get());
    if (cfg_.system == SystemKind::JordNI)
        privlib_->setIsolationBypass(true);

    // --- Core partitioning -------------------------------------------
    unsigned num_orch = std::max(1u, cfg_.numOrchestrators);
    if (num_orch >= m.numCores)
        sim::fatal("no cores left for executors");

    std::vector<bool> is_orch(m.numCores, false);
    orchs_.resize(num_orch);
    for (unsigned o = 0; o < num_orch; ++o) {
        // Spread orchestrators across sockets, then across cores within
        // the socket (the §6.3 per-socket deployment).
        unsigned socket = cfg_.perSocketOrchestrators
                              ? o % m.numSockets
                              : 0;
        unsigned within = cfg_.perSocketOrchestrators
                              ? o / m.numSockets
                              : o;
        unsigned core = socket * m.coresPerSocket() + within;
        orchs_[o].core = core;
        orchs_[o].completionLine =
            kQueueLineBase + 0x10000 + o * sim::kCacheBlockBytes;
        is_orch[core] = true;
    }

    for (unsigned core = 0; core < m.numCores; ++core) {
        if (is_orch[core])
            continue;
        ExecState exec;
        exec.core = core;
        exec.queueLine = kQueueLineBase +
                         execs_.size() * sim::kCacheBlockBytes;
        exec.dirtyFor.assign(num_orch, true);
        // Home orchestrator (receives this executor's internal requests
        // and completions): round-robin within the socket when
        // per-socket orchestrators are enabled.
        unsigned chosen = 0;
        if (cfg_.perSocketOrchestrators && m.numSockets > 1) {
            // Round-robin among the orchestrators of this core's socket.
            unsigned socket = m.socketOf(core);
            std::vector<unsigned> local;
            for (unsigned o = 0; o < num_orch; ++o)
                if (m.socketOf(orchs_[o].core) == socket)
                    local.push_back(o);
            if (local.empty())
                sim::fatal("socket %u has executors but no orchestrator",
                           socket);
            chosen = local[execs_.size() % local.size()];
        } else {
            chosen = static_cast<unsigned>(execs_.size()) % num_orch;
        }
        exec.orch = chosen;
        execs_.push_back(exec);
    }

    // Dispatch sets: every orchestrator balances over all executors of
    // its own socket (the paper's "group of executors in proximity",
    // §3.3/§6.3); JBSQ outstanding counters are shared state.
    for (unsigned o = 0; o < num_orch; ++o) {
        for (unsigned e = 0; e < execs_.size(); ++e) {
            if (!cfg_.perSocketOrchestrators ||
                m.socketOf(orchs_[o].core) ==
                    m.socketOf(execs_[e].core)) {
                orchs_[o].execs.push_back(e);
            }
        }
        if (orchs_[o].execs.empty())
            sim::fatal("orchestrator %u manages no executors", o);
    }

    // --- Deploy functions and runtime code ----------------------------
    unsigned boot_core = orchs_[0].core;
    registry_.deploy(*privlib_, boot_core);
    privlib::PrivResult rt = privlib_->mmapFor(
        boot_core, privlib::PrivLib::kRootPd, 64 << 10, uat::Perm::rx());
    if (!rt.ok)
        sim::fatal("failed to create runtime code VMA");
    runtimeCodeVma_ = rt.value;

    ntcConcurrency_.assign(registry_.size(), 0);
    ntcProvisioned_.assign(registry_.size(),
                           cfg_.provisioning.preProvisioned);

    // --- Failure handling ---------------------------------------------
    std::vector<std::string> fn_names;
    fn_names.reserve(registry_.size());
    for (const DeployedFunction &f : registry_.all())
        fn_names.push_back(f.spec.name);
    injector_.configure(cfg_.faultPlan, fn_names, cfg_.seed);
    if (cfg_.timeoutUs > 0)
        timeoutCycles_ = sim::usToCycles(cfg_.timeoutUs,
                                         cfg_.machine.freqGhz);
}

WorkerServer::~WorkerServer() = default;

// --- Observability ----------------------------------------------------------

void
WorkerServer::setTracer(trace::Tracer *tracer)
{
    tracer_ = tracer;
    uat_->setTracer(tracer);
    if (checker_)
        checker_->setTracer(tracer);
    if (!tracer)
        return;
    tracer->setClock([this] { return events_.curTick(); });
    tracer->setMeta("system", systemName(cfg_.system));
    tracer->setMeta("seed", std::to_string(cfg_.seed));
    for (const OrchState &o : orchs_)
        tracer->setTrackName(o.core, "core " + std::to_string(o.core) +
                                         " (orchestrator)");
    for (const ExecState &e : execs_)
        tracer->setTrackName(e.core, "core " + std::to_string(e.core) +
                                         " (executor)");
}

void
WorkerServer::attachMetrics(trace::MetricsRegistry &registry,
                            const std::string &prefix)
{
    metrics_.externalRequests =
        &registry.counter(prefix + "runtime.requests.external");
    metrics_.completedRequests =
        &registry.counter(prefix + "runtime.requests.completed");
    metrics_.invocations =
        &registry.counter(prefix + "runtime.invocations");
    metrics_.dispatches =
        &registry.counter(prefix + "runtime.dispatch.count");
    metrics_.dispatchScanNs =
        &registry.distribution(prefix + "runtime.dispatch.scan_ns");
    metrics_.serviceNs =
        &registry.distribution(prefix + "runtime.service_ns");
    metrics_.busyExecutors =
        &registry.gauge(prefix + "runtime.executors.busy");
    metrics_.liveInvocations =
        &registry.gauge(prefix + "runtime.invocations.live");
    metrics_.failedRequests =
        &registry.counter(prefix + "runtime.requests.failed");
    metrics_.timedOutRequests =
        &registry.counter(prefix + "runtime.requests.timed_out");
    metrics_.shedRequests =
        &registry.counter(prefix + "runtime.requests.shed");
    metrics_.retries = &registry.counter(prefix + "runtime.retries");
    metrics_.faultsInjected =
        &registry.counter(prefix + "runtime.faults.injected");
    metrics_.abortedInvocations =
        &registry.counter(prefix + "runtime.invocations.aborted");
    metrics_.retryDelayNs =
        &registry.distribution(prefix + "runtime.retry.delay_ns");
    privlib_->attachMetrics(registry, prefix);
    uat_->attachMetrics(registry, prefix);
    if (checker_)
        checker_->attachMetrics(registry, prefix);
}

void
WorkerServer::setPmu(prof::Pmu *pmu)
{
    pmu_ = pmu;
    coherence_->setPmu(pmu);
    uat_->setPmu(pmu);
    privlib_->setPmu(pmu);
}

void
WorkerServer::profSample(std::vector<prof::CoreSample> &cores,
                         prof::GlobalSample &global)
{
    global.livePds = privlib_->numLivePds();
    global.liveArgBufs = static_cast<std::size_t>(liveArgBufs_);
    global.liveInvocations = live_.size();

    for (const OrchState &o : orchs_) {
        prof::CoreSample cs;
        cs.core = o.core;
        cs.orchestrator = true;
        cs.busy = o.dispatching;
        cs.queueDepth = o.external.size() + o.internal.size() +
                        o.completions.size();
        cores.push_back(std::move(cs));
    }
    for (const ExecState &e : execs_) {
        prof::CoreSample cs;
        cs.core = e.core;
        cs.busy = e.busy;
        cs.queueDepth = e.queue.size() + e.resumable.size();
        cs.outstanding = e.outstanding;
        cs.domainDepth = privlib_->domainDepth(e.core);
        cs.vlbIOccupancy = uat_->ivlb(e.core).occupancy();
        cs.vlbICapacity = uat_->ivlb(e.core).capacity();
        cs.vlbDOccupancy = uat_->dvlb(e.core).occupancy();
        cs.vlbDCapacity = uat_->dvlb(e.core).capacity();
        if (e.busy && e.running) {
            auto it = live_.find(e.running);
            if (it != live_.end()) {
                const Invocation *inv = it->second.get();
                cs.pd = inv->pd;
                cs.fn = registry_.at(inv->req.fn).spec.name;
                // Fold the nested-ccall chain root-first by walking
                // parent links up to the external entry function.
                const Invocation *cur = inv;
                while (true) {
                    cs.stack.push_back(
                        registry_.at(cur->req.fn).spec.name);
                    if (!cur->req.internal)
                        break;
                    auto pit = live_.find(cur->req.parent);
                    if (pit == live_.end())
                        break;
                    cur = pit->second.get();
                }
                std::reverse(cs.stack.begin(), cs.stack.end());
            }
        }
        cores.push_back(std::move(cs));
    }
}

void
WorkerServer::traceSpan(const char *name, trace::Category category,
                        unsigned core, Tick start, Cycles dur,
                        const Invocation &inv)
{
    tracer_->complete(name, category, core, start, dur, inv.span,
                      spanArgs(inv.req));
}

void
WorkerServer::noteExecBusy(bool busy)
{
    if (metrics_.busyExecutors)
        metrics_.busyExecutors->add(busy ? 1.0 : -1.0,
                                    events_.curTick());
}

void
WorkerServer::noteLiveInvocations()
{
    if (metrics_.liveInvocations)
        metrics_.liveInvocations->set(
            static_cast<double>(live_.size()), events_.curTick());
}

// --- Load generation -------------------------------------------------------

FunctionId
WorkerServer::sampleEntry()
{
    double pick = rng_.uniform() * mixTotal_;
    double acc = 0;
    for (const auto &[fn, weight] : mix_) {
        acc += weight;
        if (pick < acc)
            return fn;
    }
    return mix_.back().first;
}

void
WorkerServer::scheduleNextArrival()
{
    if (externalLeft_ == 0)
        return;
    --externalLeft_;
    // The next arrival is handled by the current round-robin
    // orchestrator (rrOrch_ advances as each arrival lands), so the
    // event belongs to that orchestrator core's domain.
    events_.scheduleAfterOn(coreDomain(orchs_[rrOrch_].core),
                            arrivals_.nextGapCycles(rng_),
                            [this] { onExternalArrival(); });
}

void
WorkerServer::onExternalArrival()
{
    const FunctionSpec &spec = registry_.at(sampleEntry()).spec;
    Request req;
    req.id = nextRequestId_++;
    req.fn = spec.id;
    req.argBytes = spec.argBytes;
    req.orch = rrOrch_;
    req.measured = generated_ >= warmupRequests_;
    ++generated_;
    rrOrch_ = (rrOrch_ + 1) % orchs_.size();
    if (metrics_.externalRequests)
        metrics_.externalRequests->add();
    if (tracer_) {
        // The request lifecycle span stays open until the orchestrator
        // processes the response; nested invoke spans parent into it.
        req.span = tracer_->begin(spec.name, trace::Category::Request,
                                  orchs_[req.orch].core,
                                  events_.curTick(), 0, spanArgs(req));
    }
    if (timeoutCycles_ > 0) {
        // Deadline timer: one orchestrator-side timer event per
        // external request, spanning all retry attempts.
        req.deadline = events_.curTick() + timeoutCycles_;
        RequestId id = req.id;
        unsigned orch = req.orch;
        deadlineEvents_[id] = events_.scheduleOn(
            coreDomain(orchs_[orch].core), req.deadline,
            [this, orch, id] { onDeadline(orch, id); });
    }
    orchEnqueue(req.orch, std::move(req));
    scheduleNextArrival();
}

// --- Orchestrator -----------------------------------------------------------

void
WorkerServer::orchEnqueue(unsigned orch, Request req)
{
    OrchState &o = orchs_[orch];
    req.arrival = events_.curTick();
    if (req.firstArrival == 0)
        req.firstArrival = req.arrival;
    if (!req.internal) {
        if (req.deadline && req.arrival >= req.deadline) {
            // Expired during retry backoff or in transit: settle it
            // here rather than queueing doomed work.
            Cycles busy = 0;
            if (req.argBuf && cfg_.system != SystemKind::NightCore) {
                privlib::PrivResult un = privlib_->munmap(
                    o.core, req.argBuf, req.argBytes);
                if (!un.ok)
                    sim::panic("expired-request munmap failed: %s",
                               uat::faultName(un.fault));
                busy += un.latency;
                --liveArgBufs_;
                if (checker_)
                    checker_->argBufFreed(req.argBuf);
            }
            recordTerminalFailure(req, Outcome::TimedOut,
                                  events_.curTick() + busy);
            return;
        }
        if (cfg_.shedCap && o.external.size() >= cfg_.shedCap) {
            // Admission control (tentpole): shed from the external
            // queue only — internal requests always enqueue, keeping
            // the §3.3 deadlock-freedom argument intact.
            if (req.argBuf && cfg_.system != SystemKind::NightCore) {
                privlib::PrivResult un = privlib_->munmap(
                    o.core, req.argBuf, req.argBytes);
                if (!un.ok)
                    sim::panic("shed munmap failed: %s",
                               uat::faultName(un.fault));
                --liveArgBufs_;
                if (checker_)
                    checker_->argBufFreed(req.argBuf);
            }
            cancelDeadline(req.id);
            if (result_ && req.measured)
                ++result_->shedRequests;
            if (metrics_.shedRequests)
                metrics_.shedRequests->add();
            if (tracer_ && req.span) {
                tracer_->complete("outcome.shed",
                                  trace::Category::Runtime, o.core,
                                  events_.curTick(), 0, req.span,
                                  spanArgs(req));
                tracer_->end(req.span, events_.curTick());
            }
            return;
        }
    }
    if (req.internal)
        o.internal.push_back(std::move(req));
    else
        o.external.push_back(std::move(req));
    orchDispatchStep(orch);
}

void
WorkerServer::markDirty(ExecState &exec)
{
    std::fill(exec.dirtyFor.begin(), exec.dirtyFor.end(), true);
}

Cycles
WorkerServer::dispatchScan(OrchState &o, unsigned orch_idx,
                           unsigned &chosen)
{
    // RPCValet-style JBSQ: load each managed executor's queue-length
    // line; lines unchanged since the last scan hit in the L1, changed
    // ones pay a coherence round trip, overlapped up to dispatchMlp.
    Cycles lat = 8 + static_cast<Cycles>(o.execs.size()) / 4;
    Cycles miss_total = 0;
    unsigned misses = 0;
    unsigned best = o.execs[o.rr % o.execs.size()];
    for (unsigned i = 0; i < o.execs.size(); ++i) {
        unsigned ei = o.execs[(o.rr + i) % o.execs.size()];
        ExecState &e = execs_[ei];
        if (e.dirtyFor[orch_idx]) {
            miss_total +=
                mesh_->roundTrip(o.core, e.core, noc::MsgKind::Data);
            ++misses;
            e.dirtyFor[orch_idx] = false;
        }
        if (execs_[ei].outstanding < execs_[best].outstanding)
            best = ei;
    }
    o.rr = (o.rr + 1) % o.execs.size();
    if (misses > 0) {
        unsigned overlap = std::max(
            1u, std::min(cfg_.dispatchMlp, misses));
        lat += miss_total / overlap;
    }
    chosen = best;
    return lat;
}

void
WorkerServer::orchDispatchStep(unsigned orch)
{
    OrchState &o = orchs_[orch];
    if (o.dispatching)
        return;

    Cycles busy = 0;
    // Attribution window for this serialized orchestrator stretch: any
    // stall-bucket cycles the memory/UAT hooks charge for o.core while
    // it is open stay in their buckets; the remainder of `busy` closes
    // into Retire. The JBSQ-hold early return discards its busy in the
    // timing model but still closes the window with the scan work — a
    // deliberate, negligible over-attribution (the scan happened).
    prof::PmuWindow pmu_window(pmu_, o.core, busy);
    bool progressed = false;

    if (!o.completions.empty()) {
        // Finish a completed external request: read the response out of
        // the ArgBuf and release it.
        RequestId id = o.completions.front();
        o.completions.pop_front();
        auto it = live_.find(id);
        if (it != live_.end()) {
            Invocation &inv = *it->second;
            busy += kCompletionCycles;
            Outcome outcome = inv.outcome;
            if (outcome == Outcome::Ok && inv.req.deadline &&
                events_.curTick() > inv.req.deadline) {
                // Completed, but after the client gave up.
                outcome = Outcome::TimedOut;
            }
            if (outcome == Outcome::Ok) {
                if (cfg_.system == SystemKind::NightCore) {
                    busy += cfg_.pipeCosts.recvBusy(inv.req.argBytes);
                } else if (inv.req.argBuf) {
                    // The response leaves through the NIC by DMA; the
                    // orchestrator only releases the ArgBuf.
                    privlib::PrivResult res = privlib_->munmap(
                        o.core, inv.req.argBuf, inv.req.argBytes);
                    busy += res.latency;
                    --liveArgBufs_;
                    if (checker_)
                        checker_->argBufFreed(inv.req.argBuf);
                }
                if (inv.req.measured && result_) {
                    double us = sim::cyclesToUs(
                        events_.curTick() + busy - inv.req.firstArrival,
                        cfg_.machine.freqGhz);
                    result_->latencyUs.record(us);
                    ++result_->completedRequests;
                }
                if (tracer_ && inv.req.span)
                    tracer_->end(inv.req.span, events_.curTick() + busy);
                if (metrics_.completedRequests)
                    metrics_.completedRequests->add();
                cancelDeadline(id);
                live_.erase(it);
                noteLiveInvocations();
            } else {
                // Failed attempt: retry with backoff or settle.
                Request req = std::move(inv.req);
                live_.erase(it);
                noteLiveInvocations();
                busy += settleFailedAttempt(std::move(req), outcome,
                                            busy);
            }
        }
        progressed = true;
    } else {
        // Dispatch: internal requests strictly before external ones to
        // guarantee forward progress for nested invocations (§3.3).
        bool internal = !o.internal.empty();
        std::deque<Request> &queue = internal ? o.internal : o.external;
        if (!queue.empty()) {
            Request &req = queue.front();
            Tick base = events_.curTick();

            // External intake: materialise the request's ArgBuf.
            if (!internal && req.argBuf == 0 &&
                cfg_.system != SystemKind::NightCore) {
                Cycles intake_start = busy;
                privlib::PrivResult res = privlib_->mmap(
                    o.core, req.argBytes, uat::Perm::rw());
                if (!res.ok)
                    sim::panic("orchestrator ArgBuf mmap failed: %s",
                               uat::faultName(res.fault));
                req.argBuf = res.value;
                req.producerCore = o.core;
                ++liveArgBufs_;
                if (checker_)
                    checker_->argBufMapped(req.argBuf, req.argBytes,
                                           req.id);
                busy += res.latency;
                busy += touchArgBuf(o.core, req.argBuf, req.argBytes,
                                    true);
                if (tracer_)
                    tracer_->complete("argbuf.intake",
                                      trace::Category::Runtime, o.core,
                                      base + intake_start,
                                      busy - intake_start, req.span,
                                      spanArgs(req));
            }

            unsigned chosen = 0;
            Cycles scan = dispatchScan(o, orch, chosen);
            busy += scan;
            if (pmu_) {
                pmu_->add(o.core, prof::PmuCounter::DispatchScans);
                pmu_->charge(o.core, prof::PmuBucket::DispatchWait,
                             scan);
            }

            if (!internal &&
                execs_[chosen].outstanding >= cfg_.jbsqBound) {
                // JBSQ bound reached: hold external dispatch until an
                // executor frees up (completions will kick us).
                return;
            }

            Request out = std::move(queue.front());
            queue.pop_front();
            out.dispatchCycles = scan + kQueueOpCycles;

            if (cfg_.system == SystemKind::NightCore &&
                injector_.enabled() &&
                injector_.pipeDrop(out.id, out.attempt, out.fn)) {
                // The dispatch pipe write is lost; the orchestrator
                // detects it on the (modelled) pipe error path and
                // fails the attempt without ever reaching an executor.
                Cycles drop = cfg_.pipeCosts.sendBusy(out.argBytes) +
                              cfg_.pipeCosts.recvLatency();
                busy += drop;
                if (result_)
                    ++result_->faultsInjected;
                if (metrics_.faultsInjected)
                    metrics_.faultsInjected->add();
                if (tracer_)
                    tracer_->complete("pipe.drop",
                                      trace::Category::Pipe, o.core,
                                      base + busy - drop, drop,
                                      out.span, spanArgs(out));
                if (out.internal) {
                    // A lost nested call must still unblock the
                    // waiting parent: deliver a failed result instead
                    // of deadlocking its join.
                    RequestId parent = out.parent;
                    events_.scheduleAfterOn(
                        coreDomain(o.core), busy, [this, parent] {
                            auto pit = live_.find(parent);
                            if (pit == live_.end())
                                sim::panic("pipe drop: parent vanished");
                            onChildComplete(*pit->second,
                                            ChildResult{0, 0, 0, true});
                        });
                } else {
                    busy += settleFailedAttempt(std::move(out),
                                                Outcome::Crashed, busy);
                }
                o.dispatching = true;
                events_.scheduleAfterOn(
                    coreDomain(o.core), std::max<Cycles>(busy, 1),
                    [this, orch] {
                        orchs_[orch].dispatching = false;
                        orchDispatchStep(orch);
                    });
                return;
            }

            if (result_ && out.measured && !out.internal) {
                result_->dispatchNs.record(
                    sim::cyclesToNs(scan, cfg_.machine.freqGhz));
            }
            if (metrics_.dispatches)
                metrics_.dispatches->add();
            if (metrics_.dispatchScanNs)
                metrics_.dispatchScanNs->record(
                    static_cast<std::uint64_t>(sim::cyclesToNs(
                        scan, cfg_.machine.freqGhz)));
            if (tracer_) {
                // Mirrors the bd.dispatch charge the invocation will
                // take in its prologue (scan + queue push).
                trace::SpanId parent = out.span;
                if (out.internal) {
                    auto pit = live_.find(out.parent);
                    if (pit != live_.end())
                        parent = pit->second->span;
                }
                tracer_->complete("dispatch",
                                  trace::Category::Dispatch, o.core,
                                  base + busy - scan,
                                  scan + kQueueOpCycles, parent,
                                  spanArgs(out));
            }
            if (cfg_.system == SystemKind::NightCore) {
                busy += cfg_.pipeCosts.sendBusy(out.argBytes);
            }

            ExecState &e = execs_[chosen];
            ++e.outstanding;
            markDirty(e);
            busy += coherence_->write(o.core, e.queueLine).latency;
            busy += kQueueOpCycles;

            Cycles visible =
                busy + mesh_->latency(o.core, e.core,
                                      noc::MsgKind::Control);
            events_.scheduleAfterOn(
                coreDomain(e.core), visible,
                [this, chosen, r = std::move(out)]() mutable {
                    execs_[chosen].queue.push_back(std::move(r));
                    execWake(chosen);
                });
            progressed = true;
        }
    }

    if (!progressed)
        return;
    o.dispatching = true;
    events_.scheduleAfterOn(coreDomain(o.core), std::max<Cycles>(busy, 1),
                            [this, orch] {
                                orchs_[orch].dispatching = false;
                                orchDispatchStep(orch);
                            });
}

// --- Executor ---------------------------------------------------------------

void
WorkerServer::execWake(unsigned exec)
{
    execStep(exec);
}

void
WorkerServer::execStep(unsigned exec)
{
    ExecState &e = execs_[exec];
    if (e.busy)
        return;

    if (!e.resumable.empty()) {
        RequestId id = e.resumable.front();
        e.resumable.pop_front();
        auto it = live_.find(id);
        if (it == live_.end())
            sim::panic("resumable invocation %llu vanished",
                       static_cast<unsigned long long>(id));
        e.busy = true;
        noteExecBusy(true);
        resumeInvocation(exec, *it->second);
        return;
    }
    if (!e.queue.empty()) {
        Request req = std::move(e.queue.front());
        e.queue.pop_front();
        markDirty(e);
        e.busy = true;
        noteExecBusy(true);
        startInvocation(exec, std::move(req));
        return;
    }
}

Cycles
WorkerServer::drawExec(const FunctionSpec &spec)
{
    double cv = std::max(0.01, spec.execCv);
    double sigma2 = std::log(1.0 + cv * cv);
    double mu = std::log(std::max(1e-3, spec.execMeanUs)) - sigma2 / 2;
    double us = rng_.lognormal(mu, std::sqrt(sigma2));
    return sim::usToCycles(us, cfg_.machine.freqGhz);
}

Cycles
WorkerServer::touchArgBuf(unsigned core, Addr va, std::uint64_t bytes,
                          bool write)
{
    if (cfg_.system == SystemKind::NightCore || va == 0)
        return 0;
    Cycles lat = 0;
    Cycles mem_lat = 0;
    unsigned blocks = static_cast<unsigned>(
        std::min<std::uint64_t>((bytes + sim::kCacheBlockBytes - 1) /
                                    sim::kCacheBlockBytes,
                                cfg_.argBlockCap));
    uat::Perm need = write ? uat::Perm(uat::Perm::W) : uat::Perm::r();
    for (unsigned i = 0; i < blocks; ++i) {
        uat::UatAccess acc = uat_->dataAccess(
            core, va + i * sim::kCacheBlockBytes, need);
        if (!acc.ok())
            sim::panic("runtime ArgBuf access fault: %s (va=%llx)",
                       uat::faultName(acc.fault),
                       static_cast<unsigned long long>(va));
        lat += acc.latency + 1;
        mem::Access macc = write ? coherence_->write(core, acc.pa)
                                 : coherence_->read(core, acc.pa);
        mem_lat += macc.latency;
    }
    // Streaming accesses to independent lines overlap in the LSQ/store
    // buffer; memory-level parallelism hides most inter-block latency.
    unsigned mlp = std::min(blocks, 4u);
    if (mlp > 0)
        lat += mem_lat / mlp;
    return lat;
}

Cycles
WorkerServer::invocationPrologue(Invocation &inv, Tick at)
{
    const FunctionSpec &spec = registry_.at(inv.req.fn).spec;
    Addr code_vma = registry_.at(inv.req.fn).codeVma;
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = kQueueOpCycles; // dequeue bookkeeping

    switch (cfg_.system) {
      case SystemKind::Jord:
      case SystemKind::JordBT: {
        // Fig. 4: allocate PD, allocate stack/heap, copy code perm,
        // transfer ArgBuf perm, enter the PD.
        uat::UatAccess gate = uat_->fetch(core, privlib_->privCodeBase());
        busy += gate.latency;
        privlib::PrivResult pd = privlib_->cget(core);
        if (!pd.ok)
            sim::panic("cget failed: %s", uat::faultName(pd.fault));
        inv.pd = static_cast<uat::PdId>(pd.value);
        busy += pd.latency;

        privlib::PrivResult sh = privlib_->mmapFor(
            core, inv.pd, spec.stackHeapBytes, uat::Perm::rw());
        if (!sh.ok)
            sim::panic("stack/heap mmap failed: %s",
                       uat::faultName(sh.fault));
        inv.stackHeapVma = sh.value;
        busy += sh.latency;

        privlib::PrivResult code = privlib_->pcopy(core, code_vma,
                                                   inv.pd,
                                                   uat::Perm::rx());
        if (!code.ok)
            sim::panic("code pcopy failed: %s",
                       uat::faultName(code.fault));
        busy += code.latency;

        if (inv.req.argBuf) {
            // Transfer the ArgBuf permission from its producer's PD
            // into the fresh PD (Fig. 4's "Transfer ArgBuf Perm").
            privlib::PrivResult ab = privlib_->pmoveBetween(
                core, inv.req.argBuf, inv.req.argOwner, inv.pd,
                uat::Perm::rw());
            if (!ab.ok)
                sim::panic("ArgBuf pmove failed: %s",
                           uat::faultName(ab.fault));
            busy += ab.latency;
        }

        privlib::PrivResult cc = privlib_->ccall(core, inv.pd);
        if (!cc.ok)
            sim::panic("ccall failed: %s", uat::faultName(cc.fault));
        busy += cc.latency;
        inv.bd.isolation += busy - kQueueOpCycles;
        if (tracer_)
            traceSpan("pd_setup", trace::Category::Isolation, core,
                      at + kQueueOpCycles, busy - kQueueOpCycles, inv);

        // Enter the function: I-VLB fetch + read the input ArgBuf.
        Cycles comm_start = busy;
        uat::UatAccess fn_fetch = uat_->fetch(core, code_vma);
        if (!fn_fetch.ok())
            sim::panic("function fetch fault: %s",
                       uat::faultName(fn_fetch.fault));
        busy += fn_fetch.latency;
        Cycles comm = touchArgBuf(core, inv.req.argBuf, inv.req.argBytes,
                                  false);
        busy += comm;
        inv.bd.comm += comm + fn_fetch.latency;
        if (tracer_)
            traceSpan("argbuf.read", trace::Category::Comm, core,
                      at + comm_start, busy - comm_start, inv);
        break;
      }
      case SystemKind::JordNI: {
        // No PDs or permission transfers, but PrivLib still manages the
        // memory: the invocation gets its private stack/heap VMA and
        // the ArgBuf stays zero-copy shared memory (§5).
        privlib::PrivResult sh = privlib_->mmap(
            core, spec.stackHeapBytes, uat::Perm::rw());
        if (!sh.ok)
            sim::panic("NI stack/heap mmap failed");
        inv.stackHeapVma = sh.value;
        busy += sh.latency;
        inv.bd.isolation += sh.latency;
        if (tracer_)
            traceSpan("vma_setup", trace::Category::Isolation, core,
                      at + busy - sh.latency, sh.latency, inv);
        Cycles comm_start = busy;
        uat::UatAccess fn_fetch = uat_->fetch(core, code_vma);
        busy += fn_fetch.latency;
        Cycles comm = touchArgBuf(core, inv.req.argBuf, inv.req.argBytes,
                                  false);
        busy += comm;
        inv.bd.comm += comm + fn_fetch.latency;
        if (tracer_)
            traceSpan("argbuf.read", trace::Category::Comm, core,
                      at + comm_start, busy - comm_start, inv);
        break;
      }
      case SystemKind::NightCore: {
        FunctionId fn = inv.req.fn;
        ++ntcConcurrency_[fn];
        if (ntcConcurrency_[fn] > ntcProvisioned_[fn]) {
            // Scale out: prepare another worker for this function.
            ++ntcProvisioned_[fn];
            busy += cfg_.provisioning.provisionCycles;
            if (tracer_)
                traceSpan("provision", trace::Category::Runtime, core,
                          at + busy - cfg_.provisioning.provisionCycles,
                          cfg_.provisioning.provisionCycles, inv);
        }
        Cycles pipe = cfg_.pipeCosts.recvBusy(inv.req.argBytes) +
                      cfg_.pipeCosts.recvLatency();
        busy += pipe;
        inv.bd.pipe += pipe;
        if (tracer_)
            traceSpan("pipe.recv", trace::Category::Pipe, core,
                      at + busy - pipe, pipe, inv);
        break;
      }
    }

    inv.bd.dispatch += inv.req.dispatchCycles;
    return busy;
}

unsigned
WorkerServer::m_socketOfCore(unsigned core) const
{
    return cfg_.machine.socketOf(core);
}

unsigned
WorkerServer::pickOrch(unsigned socket)
{
    for (unsigned i = 0; i < orchs_.size(); ++i) {
        unsigned o = (rrOrch_ + i) % static_cast<unsigned>(orchs_.size());
        if (!cfg_.perSocketOrchestrators ||
            cfg_.machine.socketOf(orchs_[o].core) == socket) {
            rrOrch_ = (o + 1) % static_cast<unsigned>(orchs_.size());
            return o;
        }
    }
    return 0;
}

Cycles
WorkerServer::issueChild(Invocation &inv, const CallSpec &call,
                         Cycles offset, Tick at)
{
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = 0;

    Request child;
    child.id = nextRequestId_++;
    child.fn = call.target;
    child.argBytes = call.argBytes;
    child.internal = true;
    child.parent = inv.req.id;
    child.producerCore = core;
    // Spread nested requests round-robin across the socket's
    // orchestrators so a wide fan-out (Media's ReadPage) does not
    // serialize on one dispatch loop.
    child.orch = pickOrch(m_socketOfCore(core));
    child.measured = inv.req.measured;
    // Children inherit the root request's deadline: once the client's
    // budget is gone, nested work is abandoned at the next boundary.
    child.deadline = inv.req.deadline;

    switch (cfg_.system) {
      case SystemKind::Jord:
      case SystemKind::JordBT: {
        // The function allocates the output ArgBuf in its own PD
        // (Listing 1), populates it, and the runtime hands its
        // permission to the root domain for dispatch.
        uat::UatAccess gate = uat_->fetch(core, privlib_->privCodeBase());
        busy += gate.latency;
        privlib::PrivResult ab = privlib_->mmap(core, call.argBytes,
                                                uat::Perm::rw());
        if (!ab.ok)
            sim::panic("child ArgBuf mmap failed: %s",
                       uat::faultName(ab.fault));
        child.argBuf = ab.value;
        ++liveArgBufs_;
        if (checker_)
            checker_->argBufMapped(child.argBuf, call.argBytes,
                                   child.id);
        busy += ab.latency;
        inv.bd.isolation += ab.latency + gate.latency;
        if (tracer_)
            traceSpan("child_argbuf", trace::Category::Isolation, core,
                      at, ab.latency + gate.latency, inv);

        Cycles comm = touchArgBuf(core, child.argBuf, call.argBytes,
                                  true);
        busy += comm;
        inv.bd.comm += comm;
        if (tracer_)
            traceSpan("argbuf.write", trace::Category::Comm, core,
                      at + busy - comm, comm, inv);
        // The permission stays with this PD; the child's executor
        // transfers it directly into the child's PD at dispatch.
        child.argOwner = inv.pd;

        uat::UatAccess back = uat_->fetch(
            core, registry_.at(inv.req.fn).codeVma);
        busy += back.latency;
        break;
      }
      case SystemKind::JordNI: {
        privlib::PrivResult ab = privlib_->mmap(core, call.argBytes,
                                                uat::Perm::rw());
        if (!ab.ok)
            sim::panic("child ArgBuf mmap failed (NI)");
        child.argBuf = ab.value;
        ++liveArgBufs_;
        if (checker_)
            checker_->argBufMapped(child.argBuf, call.argBytes,
                                   child.id);
        busy += ab.latency;
        inv.bd.isolation += ab.latency;
        if (tracer_)
            traceSpan("child_argbuf", trace::Category::Isolation, core,
                      at, ab.latency, inv);
        Cycles comm = touchArgBuf(core, child.argBuf, call.argBytes,
                                  true);
        busy += comm;
        inv.bd.comm += comm;
        if (tracer_)
            traceSpan("argbuf.write", trace::Category::Comm, core,
                      at + busy - comm, comm, inv);
        break;
      }
      case SystemKind::NightCore: {
        Cycles pipe = cfg_.pipeCosts.sendBusy(call.argBytes);
        busy += pipe;
        inv.bd.pipe += pipe;
        if (tracer_)
            traceSpan("pipe.send", trace::Category::Pipe, core, at,
                      pipe, inv);
        break;
      }
    }

    ++inv.pendingChildren;
    unsigned orch = child.orch;
    Cycles when = offset + busy +
                  mesh_->latency(core, orchs_[orch].core,
                                 noc::MsgKind::Control);
    events_.scheduleAfterOn(coreDomain(orchs_[orch].core), when,
                            [this, orch, c = std::move(child)]() mutable {
                                orchEnqueue(orch, std::move(c));
                            });
    return busy;
}

Cycles
WorkerServer::consumeChildResults(Invocation &inv, Tick at,
                                  bool &child_failed)
{
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = 0;
    Cycles iso_total = 0;
    Cycles comm_total = 0;
    Cycles pipe_total = 0;
    // The children's epilogues already returned each ArgBuf permission
    // to this PD; re-enter the domain, then read + free every response.
    if (isolated() && !inv.childResults.empty()) {
        privlib::PrivResult ce = privlib_->center(core, inv.pd);
        if (!ce.ok)
            sim::panic("center failed: %s", uat::faultName(ce.fault));
        busy += ce.latency;
        inv.bd.isolation += ce.latency;
        iso_total += ce.latency;
    }
    for (ChildResult &result : inv.childResults) {
        if (result.failed)
            child_failed = true;
        switch (cfg_.system) {
          case SystemKind::Jord:
          case SystemKind::JordBT:
          case SystemKind::JordNI: {
            if (!result.failed) {
                // Failed children carried no valid response; skip the
                // read but still release the buffer below.
                Cycles comm = touchArgBuf(core, result.argBuf,
                                          result.argBytes, false);
                busy += comm;
                inv.bd.comm += comm;
                comm_total += comm;
            }
            if (result.argBuf) {
                privlib::PrivResult un = privlib_->munmap(
                    core, result.argBuf, result.argBytes);
                if (!un.ok)
                    sim::panic("result munmap failed: %s",
                               uat::faultName(un.fault));
                busy += un.latency;
                inv.bd.isolation += un.latency;
                iso_total += un.latency;
                --liveArgBufs_;
                if (checker_)
                    checker_->argBufFreed(result.argBuf);
            }
            break;
          }
          case SystemKind::NightCore: {
            if (result.failed)
                break; // nothing arrived on the pipe
            Cycles pipe = cfg_.pipeCosts.recvBusy(result.argBytes);
            busy += pipe;
            inv.bd.pipe += pipe;
            pipe_total += pipe;
            break;
          }
        }
    }
    if (tracer_ && !inv.childResults.empty()) {
        // One composite span per category (center + per-child munmap /
        // reads interleave; the totals are exact, the layout is not).
        if (iso_total)
            traceSpan("join.isolation", trace::Category::Isolation,
                      core, at, iso_total, inv);
        if (comm_total)
            traceSpan("join.read", trace::Category::Comm, core,
                      at + iso_total, comm_total, inv);
        if (pipe_total)
            traceSpan("join.pipe", trace::Category::Pipe, core, at,
                      pipe_total, inv);
    }
    inv.childResults.clear();
    return busy;
}

Cycles
WorkerServer::invocationEpilogue(Invocation &inv, Tick at)
{
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = 0;

    switch (cfg_.system) {
      case SystemKind::Jord:
      case SystemKind::JordBT: {
        // Write the response, hand the ArgBuf back to root, revoke the
        // code permission, leave the PD and tear everything down.
        Cycles comm = touchArgBuf(core, inv.req.argBuf, inv.req.argBytes,
                                  true);
        busy += comm;
        inv.bd.comm += comm;
        if (tracer_)
            traceSpan("argbuf.respond", trace::Category::Comm, core,
                      at, comm, inv);

        uat::UatAccess gate = uat_->fetch(core, privlib_->privCodeBase());
        busy += gate.latency;
        Cycles iso = gate.latency;

        privlib::PrivResult ex = privlib_->cexit(core);
        if (!ex.ok)
            sim::panic("cexit failed: %s", uat::faultName(ex.fault));
        busy += ex.latency;
        iso += ex.latency;

        if (inv.req.argBuf) {
            // Hand the ArgBuf (now holding the response) back to the
            // PD it came from.
            privlib::PrivResult mv = privlib_->pmoveBetween(
                core, inv.req.argBuf, inv.pd, inv.req.argOwner,
                uat::Perm::rw());
            if (!mv.ok)
                sim::panic("epilogue ArgBuf pmove failed: %s",
                           uat::faultName(mv.fault));
            busy += mv.latency;
            iso += mv.latency;
        }
        privlib::PrivResult code = privlib_->pmoveBetween(
            core, registry_.at(inv.req.fn).codeVma, inv.pd,
            privlib::PrivLib::kRootPd, uat::Perm::rx());
        if (!code.ok)
            sim::panic("code revoke failed: %s",
                       uat::faultName(code.fault));
        busy += code.latency;
        iso += code.latency;

        privlib::PrivResult un = privlib_->munmap(
            core, inv.stackHeapVma,
            registry_.at(inv.req.fn).spec.stackHeapBytes);
        if (!un.ok)
            sim::panic("stack/heap munmap failed: %s",
                       uat::faultName(un.fault));
        busy += un.latency;
        iso += un.latency;

        privlib::PrivResult put = privlib_->cput(core, inv.pd);
        if (!put.ok)
            sim::panic("cput failed: %s", uat::faultName(put.fault));
        busy += put.latency;
        iso += put.latency;
        inv.bd.isolation += iso;
        if (tracer_)
            traceSpan("pd_teardown", trace::Category::Isolation, core,
                      at + busy - iso, iso, inv);
        break;
      }
      case SystemKind::JordNI: {
        Cycles comm = touchArgBuf(core, inv.req.argBuf, inv.req.argBytes,
                                  true);
        busy += comm;
        inv.bd.comm += comm;
        if (tracer_)
            traceSpan("argbuf.respond", trace::Category::Comm, core,
                      at, comm, inv);
        privlib::PrivResult un = privlib_->munmap(
            core, inv.stackHeapVma,
            registry_.at(inv.req.fn).spec.stackHeapBytes);
        if (!un.ok)
            sim::panic("NI stack/heap munmap failed");
        busy += un.latency;
        inv.bd.isolation += un.latency;
        if (tracer_)
            traceSpan("vma_teardown", trace::Category::Isolation, core,
                      at + busy - un.latency, un.latency, inv);
        break;
      }
      case SystemKind::NightCore: {
        Cycles pipe = cfg_.pipeCosts.sendBusy(inv.req.argBytes);
        busy += pipe;
        inv.bd.pipe += pipe;
        if (tracer_)
            traceSpan("pipe.respond", trace::Category::Pipe, core, at,
                      pipe, inv);
        break;
      }
    }
    busy += kQueueOpCycles; // completion notification
    return busy;
}

Cycles
WorkerServer::runUntilBlocked(Invocation &inv, Tick at)
{
    const FunctionSpec &spec = registry_.at(inv.req.fn).spec;
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = 0;
    unsigned num_calls = static_cast<unsigned>(spec.calls.size());

    while (inv.nextCall <= num_calls) {
        unsigned i = inv.nextCall;
        if (i == num_calls && inv.pendingChildren > 0) {
            // Final join: wait for every outstanding async child
            // (Listing 1's jord::wait) before the last segment.
            if (isolated()) {
                privlib::PrivResult ex = privlib_->cexit(core);
                if (!ex.ok)
                    sim::panic("join cexit failed: %s",
                               uat::faultName(ex.fault));
                busy += ex.latency;
                inv.bd.isolation += ex.latency;
                if (tracer_)
                    traceSpan("suspend.cexit",
                              trace::Category::Isolation, core,
                              at + busy - ex.latency, ex.latency, inv);
            }
            inv.state = InvState::Suspended;
            inv.resumeThreshold = 0;
            return busy;
        }

        if (inv.crashSeg == static_cast<int>(i) ||
            inv.violationSeg == static_cast<int>(i)) {
            // Injected fault: the function aborts partway through this
            // compute segment instead of finishing it.
            Cycles part = static_cast<Cycles>(
                static_cast<double>(inv.segments[i]) * inv.injectFrac);
            busy += part;
            inv.bd.exec += part;
            if (inv.violationSeg == static_cast<int>(i)) {
                // Drive a *real* out-of-bound ArgBuf access through the
                // UAT so the abort is triggered by the actual hardware
                // permission check, not by fiat.
                uat::UatAccess acc{};
                acc.fault = uat::Fault::None;
                if (inv.req.argBuf)
                    acc = uat_->dataAccess(
                        core, inv.req.argBuf + inv.req.argBytes,
                        uat::Perm(uat::Perm::W));
                if (acc.ok()) {
                    // The rounded-up VMA absorbed the overrun (or
                    // isolation is bypassed): escalate to a privileged
                    // address, which no function may ever touch.
                    acc = uat_->dataAccess(core,
                                           privlib_->privDataBase(),
                                           uat::Perm(uat::Perm::W));
                }
                busy += acc.latency;
                if (acc.ok()) {
                    // Isolation bypassed end to end (Jord_NI with no
                    // privileged VMAs hit): the wild write corrupts
                    // state and the process model treats it as a crash.
                    inv.outcome = Outcome::Crashed;
                } else {
                    inv.fault = acc.fault;
                    inv.outcome = Outcome::Faulted;
                }
            } else {
                inv.outcome = Outcome::Crashed;
            }
            if (result_)
                ++result_->faultsInjected;
            if (metrics_.faultsInjected)
                metrics_.faultsInjected->add();
            if (tracer_)
                traceSpan("fault.inject", trace::Category::Runtime,
                          core, at + busy - part, part, inv);
            if (inv.pendingChildren > 0) {
                // Outstanding children still hold permissions rooted
                // in this PD; wait for them, then reclaim at resume.
                if (isolated()) {
                    privlib::PrivResult ex = privlib_->cexit(core);
                    if (!ex.ok)
                        sim::panic("abort cexit failed: %s",
                                   uat::faultName(ex.fault));
                    busy += ex.latency;
                    inv.bd.isolation += ex.latency;
                }
                inv.abortPending = true;
                inv.state = InvState::Suspended;
                inv.resumeThreshold = 0;
                return busy;
            }
            busy += abortReclaim(inv, at + busy, true);
            inv.state = InvState::Done;
            return busy;
        }

        Cycles seg_start = busy;
        Cycles seg = inv.segments[i];
        busy += seg;
        inv.bd.exec += seg;

        // Touch the private stack/heap once per segment (D-VLB work).
        if (inv.stackHeapVma) {
            const FunctionSpec &fs = spec;
            uat::UatAccess s = uat_->dataAccess(core, inv.stackHeapVma,
                                                uat::Perm(uat::Perm::W));
            uat::UatAccess h = uat_->dataAccess(
                core, inv.stackHeapVma + fs.stackHeapBytes / 2,
                uat::Perm(uat::Perm::W));
            if (!s.ok() || !h.ok())
                sim::panic("stack/heap access fault");
            busy += s.latency + h.latency;
            inv.bd.exec += s.latency + h.latency;
        }
        if (tracer_)
            traceSpan("exec", trace::Category::Exec, core,
                      at + seg_start, busy - seg_start, inv);

        if (i < num_calls) {
            const CallSpec &call = spec.calls[i];
            busy += issueChild(inv, call, busy, at + busy);
            inv.nextCall = i + 1;
            if (call.sync) {
                // jord::call: suspend until this child completes.
                Cycles iso = 0;
                if (isolated()) {
                    privlib::PrivResult ex = privlib_->cexit(core);
                    if (!ex.ok)
                        sim::panic("suspend cexit failed");
                    iso = ex.latency;
                    busy += iso;
                    inv.bd.isolation += iso;
                    if (tracer_)
                        traceSpan("suspend.cexit",
                                  trace::Category::Isolation, core,
                                  at + busy - iso, iso, inv);
                }
                inv.state = InvState::Suspended;
                inv.resumeThreshold = inv.pendingChildren - 1;
                return busy;
            }
        } else {
            inv.nextCall = i + 1;
        }
    }

    busy += invocationEpilogue(inv, at + busy);
    inv.state = InvState::Done;
    return busy;
}

void
WorkerServer::startInvocation(unsigned exec, Request req)
{
    auto owned = std::make_unique<Invocation>();
    Invocation &inv = *owned;
    inv.req = std::move(req);
    inv.exec = exec;
    inv.serviceStart = events_.curTick();
    live_[inv.req.id] = std::move(owned);
    execs_[exec].running = inv.req.id;
    noteLiveInvocations();
    Cycles busy = 0;
    prof::PmuWindow pmu_window(pmu_, coreOfExec(exec), busy);
    if (tracer_) {
        // Parent the invoke span under the request span (external) or
        // the parent's invoke span (nested ccall), building the
        // per-request span tree across the nested call chain.
        trace::SpanId parent = inv.req.span;
        if (inv.req.internal) {
            auto pit = live_.find(inv.req.parent);
            if (pit != live_.end())
                parent = pit->second->span;
        }
        inv.span = tracer_->begin(registry_.at(inv.req.fn).spec.name,
                                  trace::Category::Invoke,
                                  coreOfExec(exec), inv.serviceStart,
                                  parent, spanArgs(inv.req));
    }

    if (inv.req.deadline && events_.curTick() >= inv.req.deadline) {
        // Dead on arrival: the deadline expired while the request sat
        // in the executor queue. Don't waste a PD on it.
        inv.outcome = Outcome::TimedOut;
        inv.state = InvState::Done;
        busy = kQueueOpCycles;
        scheduleExecCompletion(exec, inv.req.id, busy);
        return;
    }

    const FunctionSpec &spec = registry_.at(inv.req.fn).spec;
    Cycles total = drawExec(spec);
    unsigned segs = static_cast<unsigned>(spec.calls.size()) + 1;
    if (spec.segmentWeights.empty()) {
        inv.segments.assign(segs, total / segs);
        inv.segments[0] += total % segs;
    } else {
        if (spec.segmentWeights.size() != segs)
            sim::panic("%s: %zu segment weights for %u segments",
                       spec.name.c_str(), spec.segmentWeights.size(),
                       segs);
        double weight_total = 0;
        for (double weight : spec.segmentWeights)
            weight_total += weight;
        inv.segments.assign(segs, 0);
        Cycles used = 0;
        for (unsigned i = 0; i + 1 < segs; ++i) {
            inv.segments[i] = weight_total > 0
                                  ? static_cast<Cycles>(
                                        static_cast<double>(total) *
                                        spec.segmentWeights[i] /
                                        weight_total)
                                  : 0;
            used += inv.segments[i];
        }
        inv.segments[segs - 1] = total - used;
    }

    if (injector_.enabled()) {
        fault::Decision d = injector_.decide(inv.req.id,
                                             inv.req.attempt,
                                             inv.req.fn, segs);
        if (d.spikeMult > 1.0) {
            for (Cycles &seg : inv.segments)
                seg = static_cast<Cycles>(static_cast<double>(seg) *
                                          d.spikeMult);
        }
        inv.crashSeg = d.crashSegment;
        inv.violationSeg = d.violationSegment;
        inv.injectFrac = d.fraction;
        if (cfg_.system == SystemKind::NightCore &&
            inv.violationSeg >= 0) {
            // No UAT to raise the fault: a wild store in a NightCore
            // worker thread simply crashes it.
            inv.crashSeg = inv.violationSeg;
            inv.violationSeg = -1;
        }
    }

    Tick base = events_.curTick();
    if (checker_)
        checker_->setCoreContext(coreOfExec(exec), inv.req.id,
                                 inv.span);
    busy = invocationPrologue(inv, base);
    inv.prologueDone = true;
    busy += runUntilBlocked(inv, base + busy);
    if (checker_)
        checker_->clearCoreContext(coreOfExec(exec));
    scheduleExecCompletion(exec, inv.req.id, busy);
}

void
WorkerServer::resumeInvocation(unsigned exec, Invocation &inv)
{
    ExecState &e = execs_[exec];
    ++e.outstanding;
    markDirty(e);
    e.running = inv.req.id;
    inv.state = InvState::Running;
    Cycles busy = 0;
    prof::PmuWindow pmu_window(pmu_, coreOfExec(exec), busy);

    Tick base = events_.curTick();
    if (checker_)
        checker_->setCoreContext(coreOfExec(exec), inv.req.id,
                                 inv.span);
    bool child_failed = false;
    busy = consumeChildResults(inv, base, child_failed);

    bool abort = inv.abortPending || inv.timedOut || child_failed ||
                 (inv.req.deadline && base >= inv.req.deadline);
    if (abort) {
        if (inv.outcome == Outcome::Ok)
            inv.outcome = child_failed ? Outcome::ChildFailed
                                       : Outcome::TimedOut;
        if (inv.pendingChildren > 0) {
            // Still-outstanding children hold permissions rooted in
            // this PD; suspend again and reclaim once they drain.
            if (isolated()) {
                unsigned core = coreOfExec(exec);
                privlib::PrivResult ex = privlib_->cexit(core);
                if (!ex.ok)
                    sim::panic("abort cexit failed: %s",
                               uat::faultName(ex.fault));
                busy += ex.latency;
                inv.bd.isolation += ex.latency;
            }
            inv.abortPending = true;
            inv.state = InvState::Suspended;
            inv.resumeThreshold = 0;
        } else {
            busy += abortReclaim(inv, base + busy, true);
            inv.state = InvState::Done;
        }
        if (checker_)
            checker_->clearCoreContext(coreOfExec(exec));
        scheduleExecCompletion(exec, inv.req.id, busy);
        return;
    }

    busy += runUntilBlocked(inv, base + busy);
    if (checker_)
        checker_->clearCoreContext(coreOfExec(exec));
    scheduleExecCompletion(exec, inv.req.id, busy);
}

void
WorkerServer::scheduleExecCompletion(unsigned exec, RequestId id,
                                     Cycles busy)
{
    events_.scheduleAfterOn(
        coreDomain(coreOfExec(exec)), std::max<Cycles>(busy, 1),
        [this, exec, id] {
            ExecState &e = execs_[exec];
            e.busy = false;
            e.running = 0;
            noteExecBusy(false);
            auto it = live_.find(id);
            if (it != live_.end() &&
                it->second->state == InvState::Done) {
                finishInvocation(*it->second);
            } else {
                // Suspended: free the JBSQ slot.
                --e.outstanding;
                markDirty(e);
                orchDispatchStep(execs_[exec].orch);
            }
            execStep(exec);
        });
}

void
WorkerServer::accountInvocation(Invocation &inv)
{
    if (metrics_.serviceNs && inv.req.measured)
        metrics_.serviceNs->record(static_cast<std::uint64_t>(
            sim::cyclesToNs(events_.curTick() - inv.serviceStart,
                            cfg_.machine.freqGhz)));
    if (!result_ || !inv.req.measured)
        return;
    Cycles service = events_.curTick() - inv.serviceStart;
    double us = sim::cyclesToUs(service, cfg_.machine.freqGhz);
    result_->serviceUs.record(us);
    FunctionId fn = inv.req.fn;
    result_->perFunctionServiceUs[fn].record(us);

    Breakdown bd = inv.bd;
    Cycles accounted = bd.exec + bd.isolation + bd.dispatch + bd.comm +
                       bd.pipe;
    bd.queue = service > accounted ? service - accounted : 0;
    if (pmu_)
        pmu_->add(coreOfExec(inv.exec),
                  prof::PmuCounter::QueueWaitCycles, bd.queue);
    result_->perFunctionBreakdown[fn] += bd;
    ++result_->perFunctionCount[fn];
    result_->totals += bd;
    ++result_->invocations;
}

void
WorkerServer::finishInvocation(Invocation &inv)
{
    ExecState &e = execs_[inv.exec];
    --e.outstanding;
    markDirty(e);
    if (cfg_.system == SystemKind::NightCore && inv.prologueDone) {
        // The worker slot frees at actual completion time, not when the
        // epilogue's costs were computed. Aborted-before-start
        // invocations never took a slot.
        --ntcConcurrency_[inv.req.fn];
    }
    if (tracer_ && inv.span)
        tracer_->end(inv.span, events_.curTick());
    if (inv.outcome == Outcome::Ok) {
        if (metrics_.invocations)
            metrics_.invocations->add();
        accountInvocation(inv);
    }

    unsigned core = coreOfExec(inv.exec);
    if (inv.req.internal) {
        ChildResult result{inv.req.argBuf, inv.req.argBytes, core,
                           inv.outcome != Outcome::Ok};
        RequestId parent = inv.req.parent;
        // Completion notification to the parent's executor.
        auto pit = live_.find(parent);
        if (pit == live_.end())
            sim::panic("orphan child completion");
        unsigned parent_core = coreOfExec(pit->second->exec);
        Cycles notify = mesh_->latency(core, parent_core,
                                       noc::MsgKind::Control) +
                        kQueueOpCycles;
        live_.erase(inv.req.id);
        noteLiveInvocations();
        events_.scheduleAfterOn(coreDomain(parent_core), notify,
                                [this, parent, result] {
                                    auto it = live_.find(parent);
                                    if (it == live_.end())
                                        sim::panic("parent vanished before "
                                                   "child completion");
                                    onChildComplete(*it->second, result);
                                });
    } else {
        unsigned orch = inv.req.orch;
        OrchState &o = orchs_[orch];
        Cycles notify = coherence_->write(core, o.completionLine).latency +
                        mesh_->latency(core, o.core,
                                       noc::MsgKind::Control);
        RequestId id = inv.req.id;
        events_.scheduleAfterOn(coreDomain(o.core), notify,
                                [this, orch, id] {
                                    orchs_[orch].completions.push_back(id);
                                    orchDispatchStep(orch);
                                });
    }
    orchDispatchStep(e.orch);
}

void
WorkerServer::onChildComplete(Invocation &parent, ChildResult result)
{
    if (parent.pendingChildren == 0)
        sim::panic("child completion with no pending children");
    --parent.pendingChildren;
    parent.childResults.push_back(result);
    if (parent.state == InvState::Suspended &&
        parent.pendingChildren <= parent.resumeThreshold) {
        parent.state = InvState::Resumable;
        execs_[parent.exec].resumable.push_back(parent.req.id);
        execWake(parent.exec);
    }
}

// --- Failure handling -------------------------------------------------------

Cycles
WorkerServer::retryDelayCycles(unsigned attempt) const
{
    Cycles base = sim::usToCycles(cfg_.retryBackoffUs,
                                  cfg_.machine.freqGhz);
    unsigned shift = attempt > 0 ? attempt - 1 : 0;
    // Cap the exponent so a large budget cannot overflow the delay.
    shift = std::min(shift, 20u);
    return std::max<Cycles>(base, 1) << shift;
}

Cycles
WorkerServer::abortReclaim(Invocation &inv, Tick at, bool in_pd)
{
    if (!inv.prologueDone)
        return 0; // nothing was materialised for this invocation
    unsigned core = coreOfExec(inv.exec);
    Cycles busy = 0;

    switch (cfg_.system) {
      case SystemKind::Jord:
      case SystemKind::JordBT: {
        // Mirror the epilogue without the response write-back: the PD
        // must shed every permission before cput accepts it.
        if (!in_pd) {
            privlib::PrivResult ce = privlib_->center(core, inv.pd);
            if (!ce.ok)
                sim::panic("abort center failed: %s",
                           uat::faultName(ce.fault));
            busy += ce.latency;
        }
        for (ChildResult &r : inv.childResults) {
            if (!r.argBuf)
                continue;
            privlib::PrivResult un = privlib_->munmap(core, r.argBuf,
                                                      r.argBytes);
            if (!un.ok)
                sim::panic("abort result munmap failed: %s",
                           uat::faultName(un.fault));
            busy += un.latency;
            --liveArgBufs_;
            if (checker_)
                checker_->argBufFreed(r.argBuf);
        }
        inv.childResults.clear();

        uat::UatAccess gate = uat_->fetch(core,
                                          privlib_->privCodeBase());
        busy += gate.latency;
        privlib::PrivResult ex = privlib_->cexit(core);
        if (!ex.ok)
            sim::panic("abort cexit failed: %s",
                       uat::faultName(ex.fault));
        busy += ex.latency;

        if (inv.req.argBuf) {
            // The input ArgBuf goes back to its owner (root for
            // external requests — it is reused verbatim on retry).
            privlib::PrivResult mv = privlib_->pmoveBetween(
                core, inv.req.argBuf, inv.pd, inv.req.argOwner,
                uat::Perm::rw());
            if (!mv.ok)
                sim::panic("abort ArgBuf pmove failed: %s",
                           uat::faultName(mv.fault));
            busy += mv.latency;
        }
        privlib::PrivResult code = privlib_->pmoveBetween(
            core, registry_.at(inv.req.fn).codeVma, inv.pd,
            privlib::PrivLib::kRootPd, uat::Perm::rx());
        if (!code.ok)
            sim::panic("abort code revoke failed: %s",
                       uat::faultName(code.fault));
        busy += code.latency;

        privlib::PrivResult un = privlib_->munmap(
            core, inv.stackHeapVma,
            registry_.at(inv.req.fn).spec.stackHeapBytes);
        if (!un.ok)
            sim::panic("abort stack/heap munmap failed: %s",
                       uat::faultName(un.fault));
        busy += un.latency;

        privlib::PrivResult put = privlib_->cput(core, inv.pd);
        if (!put.ok)
            sim::panic("abort cput failed: %s",
                       uat::faultName(put.fault));
        busy += put.latency;
        break;
      }
      case SystemKind::JordNI: {
        for (ChildResult &r : inv.childResults) {
            if (!r.argBuf)
                continue;
            privlib::PrivResult un = privlib_->munmap(core, r.argBuf,
                                                      r.argBytes);
            if (!un.ok)
                sim::panic("abort result munmap failed (NI)");
            busy += un.latency;
            --liveArgBufs_;
            if (checker_)
                checker_->argBufFreed(r.argBuf);
        }
        inv.childResults.clear();
        privlib::PrivResult un = privlib_->munmap(
            core, inv.stackHeapVma,
            registry_.at(inv.req.fn).spec.stackHeapBytes);
        if (!un.ok)
            sim::panic("abort stack/heap munmap failed (NI)");
        busy += un.latency;
        break;
      }
      case SystemKind::NightCore:
        // Process/thread state dies with the worker slot; the slot
        // itself is released in finishInvocation.
        break;
    }

    inv.bd.isolation += busy;
    if (result_ && inv.req.measured)
        ++result_->abortedInvocations;
    if (metrics_.abortedInvocations)
        metrics_.abortedInvocations->add();
    if (tracer_)
        traceSpan("abort.reclaim", trace::Category::Isolation, core,
                  at, busy, inv);
    return busy;
}

void
WorkerServer::cancelDeadline(RequestId id)
{
    auto it = deadlineEvents_.find(id);
    if (it == deadlineEvents_.end())
        return;
    events_.cancel(it->second);
    deadlineEvents_.erase(it);
}

void
WorkerServer::onDeadline(unsigned orch, RequestId id)
{
    deadlineEvents_.erase(id);
    auto it = live_.find(id);
    if (it != live_.end()) {
        // In flight: mark it and let the next scheduling point
        // (segment boundary, resume, completion) abort and reclaim.
        if (it->second->state != InvState::Done)
            it->second->timedOut = true;
        return;
    }
    // Not yet dispatched: if it still sits in the orchestrator's
    // external queue, drop it there. Any other position (executor
    // queue, in transit, retry backoff) is caught lazily by the
    // deadline checks on those paths.
    OrchState &o = orchs_[orch];
    for (auto qit = o.external.begin(); qit != o.external.end();
         ++qit) {
        if (qit->id != id)
            continue;
        Request req = std::move(*qit);
        o.external.erase(qit);
        Cycles busy = 0;
        if (req.argBuf && cfg_.system != SystemKind::NightCore) {
            privlib::PrivResult un = privlib_->munmap(
                o.core, req.argBuf, req.argBytes);
            if (!un.ok)
                sim::panic("deadline munmap failed: %s",
                           uat::faultName(un.fault));
            busy += un.latency;
            --liveArgBufs_;
            if (checker_)
                checker_->argBufFreed(req.argBuf);
        }
        recordTerminalFailure(req, Outcome::TimedOut,
                              events_.curTick() + busy);
        return;
    }
}

Cycles
WorkerServer::settleFailedAttempt(Request req, Outcome outcome,
                                  Cycles busy)
{
    OrchState &o = orchs_[req.orch];
    bool expired = req.deadline && events_.curTick() >= req.deadline;
    if (outcome != Outcome::TimedOut && !expired &&
        req.attempt < cfg_.maxRetries) {
        ++req.attempt;
        Cycles delay = retryDelayCycles(req.attempt);
        double delay_us = sim::cyclesToUs(delay, cfg_.machine.freqGhz);
        if (result_ && req.measured) {
            ++result_->retries;
            result_->retryDelayUs.record(delay_us);
        }
        if (metrics_.retries)
            metrics_.retries->add();
        if (metrics_.retryDelayNs)
            metrics_.retryDelayNs->record(
                static_cast<std::uint64_t>(delay_us * 1000.0));
        if (tracer_ && req.span)
            tracer_->complete("retry", trace::Category::Runtime,
                              o.core, events_.curTick() + busy, delay,
                              req.span, spanArgs(req));
        req.dispatchCycles = 0;
        unsigned target = req.orch;
        events_.scheduleAfterOn(
            coreDomain(orchs_[target].core), busy + delay,
            [this, target, r = std::move(req)]() mutable {
                orchEnqueue(target, std::move(r));
            });
        return 0;
    }

    Cycles extra = 0;
    if (req.argBuf && cfg_.system != SystemKind::NightCore) {
        privlib::PrivResult un = privlib_->munmap(o.core, req.argBuf,
                                                  req.argBytes);
        if (!un.ok)
            sim::panic("terminal-failure munmap failed: %s",
                       uat::faultName(un.fault));
        extra += un.latency;
        --liveArgBufs_;
        if (checker_)
            checker_->argBufFreed(req.argBuf);
    }
    if (expired) {
        // Whatever killed the last attempt, the client saw a timeout.
        outcome = Outcome::TimedOut;
    }
    recordTerminalFailure(req, outcome,
                          events_.curTick() + busy + extra);
    return extra;
}

void
WorkerServer::recordTerminalFailure(const Request &req, Outcome outcome,
                                    Tick done)
{
    cancelDeadline(req.id);
    if (result_ && req.measured) {
        double us = sim::cyclesToUs(done - req.firstArrival,
                                    cfg_.machine.freqGhz);
        if (outcome == Outcome::TimedOut) {
            ++result_->timedOutRequests;
            result_->timedOutUs.record(us);
        } else {
            ++result_->failedRequests;
            result_->failedUs.record(us);
        }
    }
    if (outcome == Outcome::TimedOut) {
        if (metrics_.timedOutRequests)
            metrics_.timedOutRequests->add();
    } else if (metrics_.failedRequests) {
        metrics_.failedRequests->add();
    }
    if (tracer_ && req.span) {
        tracer_->complete(outcome == Outcome::TimedOut
                              ? "outcome.timeout"
                              : "outcome.failed",
                          trace::Category::Runtime,
                          orchs_[req.orch].core, done, 0, req.span,
                          spanArgs(req));
        tracer_->end(req.span, done);
    }
}

void
WorkerServer::verifyQuiescent()
{
    for (const OrchState &o : orchs_) {
        if (!o.external.empty() || !o.internal.empty() ||
            !o.completions.empty())
            sim::panic("run drained with queued work on orchestrator "
                       "core %u", o.core);
    }
    for (const ExecState &e : execs_) {
        if (!e.queue.empty() || !e.resumable.empty() || e.busy ||
            e.outstanding != 0)
            sim::panic("run drained with executor core %u not idle",
                       e.core);
    }
    if (!live_.empty())
        sim::panic("run drained with %zu live invocations",
                   live_.size());
    if (liveArgBufs_ != 0)
        sim::panic("ArgBuf leak: %llu VMAs still mapped",
                   static_cast<unsigned long long>(liveArgBufs_));
    if (!deadlineEvents_.empty())
        sim::panic("stale deadline timers after drain: %zu",
                   deadlineEvents_.size());
    // Only the root PD may remain (PrivLib counts it as live).
    if (isJordFamily() && privlib_->numLivePds() != 1)
        sim::panic("PD leak: %u protection domains still live "
                   "(expected only root)", privlib_->numLivePds());
    if (checker_)
        checker_->onRunEnd();
}

double
WorkerServer::measureDispatchScanNs()
{
    for (auto &e : execs_)
        markDirty(e);
    unsigned chosen = 0;
    Cycles lat = dispatchScan(orchs_[0], 0, chosen);
    return sim::cyclesToNs(lat, cfg_.machine.freqGhz);
}

// --- Run loop ----------------------------------------------------------------

RunResult
WorkerServer::run(double mrps, std::uint64_t num_requests,
                  const EntryMix &mix, double warmup_frac)
{
    if (mix.empty())
        sim::fatal("empty entry mix");
    if (mrps <= 0)
        sim::fatal("offered load must be positive");

    RunResult result;
    result.offeredMrps = mrps;
    result.perFunctionServiceUs.resize(registry_.size());
    result.perFunctionBreakdown.assign(registry_.size(), Breakdown{});
    result.perFunctionCount.assign(registry_.size(), 0);

    mix_ = mix;
    mixTotal_ = 0;
    for (const auto &[fn, weight] : mix_)
        mixTotal_ += weight;

    events_.reset();
    live_.clear();
    liveArgBufs_ = 0;
    deadlineEvents_.clear();
    for (auto &o : orchs_) {
        o.external.clear();
        o.internal.clear();
        o.completions.clear();
        o.dispatching = false;
    }
    for (auto &e : execs_) {
        e.queue.clear();
        e.resumable.clear();
        e.busy = false;
        e.outstanding = 0;
        e.running = 0;
        markDirty(e);
    }

    arrivals_ =
        sim::PoissonArrivals::fromMrps(mrps, cfg_.machine.freqGhz);
    externalLeft_ = num_requests;
    generated_ = 0;
    warmupRequests_ = static_cast<std::uint64_t>(
        static_cast<double>(num_requests) * warmup_frac);
    result_ = &result;
    uat_->shootdownLatency().reset();
    if (pmu_)
        pmu_->reset();

    Tick start = events_.curTick();
    scheduleNextArrival();
    if (profiler_)
        profiler_->arm();
    events_.run();
    // Measure to the last *work* event: a trailing profiler sample
    // (a daemon event) must not stretch the run window.
    Tick end = events_.lastWorkTick();
    if (pmu_)
        pmu_->finalize(end - start);

    // Leak invariant: every abort path must have returned its PD and
    // ArgBufs; a drained run leaves no runtime state behind.
    verifyQuiescent();

    result_ = nullptr;
    double elapsed_us =
        sim::cyclesToUs(end - start, cfg_.machine.freqGhz);
    double measured_frac =
        num_requests
            ? static_cast<double>(num_requests - warmupRequests_) /
                  static_cast<double>(num_requests)
            : 0;
    if (elapsed_us > 0) {
        result.achievedMrps =
            static_cast<double>(result.completedRequests) /
            (elapsed_us * measured_frac + 1e-9);
        const Breakdown &bd = result.totals;
        double busy_us = sim::cyclesToUs(bd.exec + bd.isolation +
                                             bd.comm + bd.pipe,
                                         cfg_.machine.freqGhz);
        result.executorUtilization =
            busy_us / (elapsed_us * measured_frac *
                           static_cast<double>(execs_.size()) +
                       1e-9);
    }
    result.shootdownNs.merge(uat_->shootdownLatency());
    return result;
}

} // namespace jord::runtime
