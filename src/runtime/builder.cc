#include "runtime/builder.hh"

#include <numeric>

#include "sim/logging.hh"

namespace jord::runtime {

// --- FunctionBuilder ---------------------------------------------------------

FunctionBuilder::FunctionBuilder(std::string name)
    : name_(std::move(name))
{
}

FunctionBuilder &
FunctionBuilder::compute(double us)
{
    if (us < 0)
        sim::fatal("%s: negative compute time", name_.c_str());
    segmentUs_.back() += us;
    return *this;
}

FunctionBuilder &
FunctionBuilder::call(const std::string &target, std::uint64_t arg_bytes)
{
    calls_.push_back(PendingCall{target, arg_bytes, true});
    segmentUs_.push_back(0.0);
    return *this;
}

FunctionBuilder &
FunctionBuilder::async(const std::string &target,
                       std::uint64_t arg_bytes)
{
    calls_.push_back(PendingCall{target, arg_bytes, false});
    segmentUs_.push_back(0.0);
    return *this;
}

FunctionBuilder &
FunctionBuilder::execCv(double cv)
{
    cv_ = cv;
    return *this;
}

FunctionBuilder &
FunctionBuilder::stackHeap(std::uint64_t bytes)
{
    stackHeapBytes_ = bytes;
    return *this;
}

FunctionBuilder &
FunctionBuilder::argBytes(std::uint64_t bytes)
{
    argBytes_ = bytes;
    return *this;
}

// --- AppBuilder ---------------------------------------------------------------

FunctionBuilder &
AppBuilder::function(const std::string &name)
{
    auto it = byName_.find(name);
    if (it != byName_.end())
        return functions_[it->second];
    byName_[name] = functions_.size();
    functions_.push_back(FunctionBuilder(name));
    return functions_.back();
}

AppBuilder &
AppBuilder::entry(const std::string &name, double weight)
{
    if (weight <= 0)
        sim::fatal("entry %s has non-positive weight", name.c_str());
    entries_.emplace_back(name, weight);
    return *this;
}

App
AppBuilder::build() const
{
    if (entries_.empty())
        sim::fatal("application has no entry points");

    App app;

    // First pass: register every function so calls can resolve by id.
    std::map<std::string, FunctionId> ids;
    for (const FunctionBuilder &builder : functions_) {
        FunctionSpec spec;
        spec.name = builder.name_;
        spec.execCv = builder.cv_;
        spec.stackHeapBytes = builder.stackHeapBytes_;
        spec.argBytes = builder.argBytes_;
        spec.execMeanUs = std::accumulate(builder.segmentUs_.begin(),
                                          builder.segmentUs_.end(), 0.0);
        if (spec.execMeanUs <= 0)
            sim::fatal("function %s has no compute time",
                       builder.name_.c_str());
        spec.segmentWeights = builder.segmentUs_;
        ids[builder.name_] = app.registry.add(std::move(spec));
    }

    // Second pass: resolve call targets.
    for (const FunctionBuilder &builder : functions_) {
        FunctionSpec &spec =
            app.registry.at(ids.at(builder.name_)).spec;
        for (const auto &pending : builder.calls_) {
            auto it = ids.find(pending.target);
            if (it == ids.end())
                sim::fatal("%s calls unknown function '%s'",
                           builder.name_.c_str(),
                           pending.target.c_str());
            spec.calls.push_back(
                CallSpec{it->second, pending.argBytes, pending.sync});
        }
    }

    // Cycle check: the invocation graph must be a DAG or requests
    // would spawn children forever.
    enum class Mark { White, Grey, Black };
    std::vector<Mark> marks(app.registry.size(), Mark::White);
    std::vector<FunctionId> stack;
    for (std::size_t root = 0; root < app.registry.size(); ++root) {
        if (marks[root] != Mark::White)
            continue;
        stack.push_back(static_cast<FunctionId>(root));
        std::vector<std::size_t> child_pos{0};
        marks[root] = Mark::Grey;
        while (!stack.empty()) {
            FunctionId fn = stack.back();
            const auto &calls = app.registry.at(fn).spec.calls;
            if (child_pos.back() >= calls.size()) {
                marks[fn] = Mark::Black;
                stack.pop_back();
                child_pos.pop_back();
                continue;
            }
            FunctionId next = calls[child_pos.back()++].target;
            if (marks[next] == Mark::Grey)
                sim::fatal("call graph cycle through %s",
                           app.registry.at(next).spec.name.c_str());
            if (marks[next] == Mark::White) {
                marks[next] = Mark::Grey;
                stack.push_back(next);
                child_pos.push_back(0);
            }
        }
    }

    // Entry mix.
    for (const auto &[name, weight] : entries_) {
        auto it = ids.find(name);
        if (it == ids.end())
            sim::fatal("unknown entry point '%s'", name.c_str());
        app.mix.emplace_back(it->second, weight);
    }
    return app;
}

} // namespace jord::runtime
