/**
 * @file
 * Function registry: the deployed functions of a worker server.
 *
 * Registration creates each function's code VMA (owned by the root PD;
 * executors pcopy execute permission into a fresh PD per invocation,
 * Fig. 4) and records the behavioural model used to simulate it.
 */

#ifndef JORD_RUNTIME_REGISTRY_HH
#define JORD_RUNTIME_REGISTRY_HH

#include <optional>
#include <string>
#include <vector>

#include "privlib/privlib.hh"
#include "runtime/types.hh"

namespace jord::runtime {

/** A registered function with its materialised code VMA. */
struct DeployedFunction {
    FunctionSpec spec;
    /** Base VA of the function's code VMA (0 until deployed). */
    sim::Addr codeVma = 0;
};

/**
 * Registry of deployed functions.
 */
class FunctionRegistry
{
  public:
    FunctionRegistry() = default;

    /**
     * Register a function model. Ids must be dense; the first
     * registration gets id 0 unless the spec carries an explicit id
     * equal to the current count.
     * @return the assigned FunctionId.
     */
    FunctionId add(FunctionSpec spec);

    /** Look up by id; panics on out-of-range (internal misuse). */
    const DeployedFunction &at(FunctionId id) const;
    DeployedFunction &at(FunctionId id);

    /** Look up by name. */
    std::optional<FunctionId> findByName(const std::string &name) const;

    std::size_t size() const { return functions_.size(); }

    /**
     * Materialise code VMAs through PrivLib (called once by the worker
     * during startup; @p core is the bootstrapping core).
     */
    void deploy(privlib::PrivLib &privlib, unsigned core);

    const std::vector<DeployedFunction> &all() const { return functions_; }

  private:
    std::vector<DeployedFunction> functions_;
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_REGISTRY_HH
