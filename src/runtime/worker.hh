/**
 * @file
 * WorkerServer: a complete Jord (or baseline) worker server (Fig. 3).
 *
 * Assembles the machine model (mesh, coherence, UAT hardware, PrivLib,
 * kernel), partitions cores into orchestrators and executors, and runs
 * open-loop Poisson workloads through the Fig. 4 invocation flow. The
 * same class models all four evaluated systems (§5): Jord, Jord_NI
 * (isolation bypassed), Jord_BT (B-tree VMA table) and the enhanced
 * NightCore baseline (pipes instead of zero-copy ArgBufs).
 */

#ifndef JORD_RUNTIME_WORKER_HH
#define JORD_RUNTIME_WORKER_HH

#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "baseline/nightcore.hh"
#include "check/check.hh"
#include "fault/fault.hh"
#include "mem/coherence.hh"
#include "noc/mesh.hh"
#include "os/kernel.hh"
#include "privlib/privlib.hh"
#include "prof/pmu.hh"
#include "prof/profiler.hh"
#include "runtime/registry.hh"
#include "runtime/request.hh"
#include "sim/arrivals.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "stats/sampler.hh"
#include "uat/btree_table.hh"
#include "uat/uat_system.hh"

namespace jord::trace {
enum class Category : std::uint8_t;
class Counter;
class Distribution;
class Gauge;
class MetricsRegistry;
class Tracer;
} // namespace jord::trace

namespace jord::runtime {

/** Worker-server configuration. */
struct WorkerConfig {
    sim::MachineConfig machine = sim::MachineConfig::isca25Default();
    SystemKind system = SystemKind::Jord;
    /** Orchestrator threads; the rest of the cores run executors.
     * Nested invocations are dispatched by orchestrators too (§3.3),
     * so communication-heavy workloads need several of them. */
    unsigned numOrchestrators = 4;
    /**
     * With multiple sockets, pin one orchestrator group per socket and
     * dispatch only within it (the §6.3 mitigation). When false a
     * single orchestrator may manage executors across sockets (used to
     * measure the Fig. 14 dispatch curve).
     */
    bool perSocketOrchestrators = true;
    /** JBSQ bound: max outstanding external requests per executor. */
    unsigned jbsqBound = 3;
    /** Memory-level parallelism of the dispatch queue-length scan. */
    unsigned dispatchMlp = 8;
    /** Cap on ArgBuf cache blocks transferred per request (~15 avg). */
    unsigned argBlockCap = 32;
    /**
     * Event-queue domains for intra-run partitioning (issue 10): the
     * machine's tiles are split into this many contiguous ranges and
     * every event is tagged with the domain of the core it runs on.
     * Dispatch stays in global deterministic order, so all simulated
     * output is byte-identical at any value (1 = classic single queue;
     * must not exceed the core count).
     */
    unsigned numDomains = 1;
    std::uint64_t seed = 42;
    baseline::PipeCosts pipeCosts;
    baseline::ProvisioningModel provisioning;

    // --- Failure handling (all disabled by default: with a zero-rate
    // plan, no timeout and no shed cap, runs are byte-identical to a
    // build without this subsystem) ---
    /** Deterministic fault-injection plan (default: inject nothing). */
    fault::FaultPlan faultPlan;
    /** Per-request deadline in µs (0 = no deadline). */
    double timeoutUs = 0;
    /** Retry budget per external request (0 = fail immediately). */
    unsigned maxRetries = 0;
    /** Base retry delay, doubled per attempt (exponential backoff). */
    double retryBackoffUs = 20.0;
    /** Max queued external requests per orchestrator before shedding
     * (0 = never shed). Internal queues are never shed (§3.3). */
    std::size_t shedCap = 0;

    /**
     * JordSan checker families to enable (all disabled by default;
     * with no family enabled no checker is constructed and runs are
     * byte-identical to a build without the subsystem).
     */
    check::CheckConfig check;
};

/** Weighted entry-point mix for external requests. */
using EntryMix = std::vector<std::pair<FunctionId, double>>;

/** Results of one load run. */
struct RunResult {
    double offeredMrps = 0;
    double achievedMrps = 0;
    /** End-to-end request latency (µs), measured window only. */
    stats::Sampler latencyUs;
    /** Per-invocation service time (µs), dequeue -> completion. */
    stats::Sampler serviceUs;
    /** Per-function service-time samplers (µs), by FunctionId. */
    std::vector<stats::Sampler> perFunctionServiceUs;
    /** Per-function overhead breakdowns, summed over invocations. */
    std::vector<Breakdown> perFunctionBreakdown;
    std::vector<std::uint64_t> perFunctionCount;
    /** Aggregate breakdown over all invocations. */
    Breakdown totals;
    std::uint64_t invocations = 0;
    std::uint64_t completedRequests = 0;
    /** Requests that exhausted their retry budget on a crash/fault. */
    std::uint64_t failedRequests = 0;
    /** Requests whose deadline expired (terminal, after retries). */
    std::uint64_t timedOutRequests = 0;
    /** Requests shed at admission by the external-queue cap. */
    std::uint64_t shedRequests = 0;
    /** Retry attempts issued (counts re-dispatches, not requests). */
    std::uint64_t retries = 0;
    /** Invocations aborted (injected fault, timeout, or child failure);
     * not counted in `invocations`, which keeps its meaning of
     * successful invocation executions. */
    std::uint64_t abortedInvocations = 0;
    /** Faults the injector actually fired (crashes + violations). */
    std::uint64_t faultsInjected = 0;
    /** Time-to-failure (µs, arrival -> terminal failure). */
    stats::Sampler failedUs;
    /** Time-to-timeout (µs, arrival -> deadline verdict). */
    stats::Sampler timedOutUs;
    /** Backoff delays of issued retries (µs). */
    stats::Sampler retryDelayUs;
    /** Mean executor busy fraction over the measured window. */
    double executorUtilization = 0;
    /** Dispatch-decision latency samples (ns), Fig. 14. */
    stats::Sampler dispatchNs;
    /** VLB shootdown fan-out latency samples (ns), Fig. 14. */
    stats::Sampler shootdownNs;
};

/**
 * The worker server.
 */
class WorkerServer : public prof::SampleSource
{
  public:
    WorkerServer(WorkerConfig cfg, FunctionRegistry registry);
    ~WorkerServer() override;

    WorkerServer(const WorkerServer &) = delete;
    WorkerServer &operator=(const WorkerServer &) = delete;

    /**
     * Run an open-loop Poisson load.
     *
     * @param mrps Offered load in million requests per second.
     * @param num_requests External requests to generate.
     * @param mix Entry-function mix (weights need not sum to 1).
     * @param warmup_frac Fraction of requests excluded from metrics.
     */
    RunResult run(double mrps, std::uint64_t num_requests,
                  const EntryMix &mix, double warmup_frac = 0.2);

    // --- Component access (tests, benches) ---
    sim::EventQueue &eventQueue() { return events_; }
    mem::CoherenceEngine &coherence() { return *coherence_; }
    uat::UatSystem &uat() { return *uat_; }
    privlib::PrivLib &privlib() { return *privlib_; }
    os::Kernel &kernel() { return *kernel_; }
    FunctionRegistry &registry() { return registry_; }
    const WorkerConfig &config() const { return cfg_; }
    unsigned numExecutors() const
    {
        return static_cast<unsigned>(execs_.size());
    }

    /**
     * Worst-case dispatch-scan latency in ns: orchestrator 0 reads the
     * queue-length line of every executor it manages, all of which have
     * been written since its last scan (the loaded steady state of
     * Fig. 14's dispatch series).
     */
    double measureDispatchScanNs();

    /**
     * Attach (or detach, with nullptr) a span tracer. The tracer's
     * clock is bound to this worker's event queue; request/invocation
     * lifecycle spans and per-category busy spans are emitted while
     * attached. All instrumentation sites are null-checked, so a
     * detached worker pays one predictable branch per site.
     */
    void setTracer(trace::Tracer *tracer);
    trace::Tracer *tracer() const { return tracer_; }

    /** The fault injector resolved from cfg.faultPlan (tests). */
    const fault::FaultInjector &faultInjector() const { return injector_; }

    /**
     * Backoff delay before retry number @p attempt (attempt >= 1):
     * retryBackoffUs doubled per prior attempt, capped to avoid
     * overflow. Exposed so tests can assert the schedule.
     */
    sim::Cycles retryDelayCycles(unsigned attempt) const;

    /** ArgBuf VMAs currently mapped by the runtime (leak checker). */
    std::uint64_t liveArgBufs() const { return liveArgBufs_; }

    /** The JordSan checker (null unless cfg.check enables a family). */
    check::Checker *checker() const { return checker_.get(); }

    /**
     * Register this worker's counters/gauges/distributions (and those
     * of its PrivLib and UAT) into @p registry. The registry must
     * outlive the worker.
     *
     * @param prefix Prepended to every metric name. Multi-server runs
     * (jordsim --cluster N) pass "serverK." so two workers sharing a
     * registry get distinct metrics; with an empty prefix the
     * registry's find-or-create semantics would silently sum them.
     */
    void attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix = "");

    /**
     * Attach (or detach, with nullptr) the simulated PMU; propagated
     * to the coherence engine, UAT and PrivLib. All hook sites are
     * null-checked and charge zero simulated latency, so a detached
     * run is byte-identical.
     */
    void setPmu(prof::Pmu *pmu);
    prof::Pmu *pmu() const { return pmu_; }

    /** Attach a sampling profiler; run() arms it after resetting the
     * event queue so sampling covers the whole run. */
    void setProfiler(prof::Profiler *profiler) { profiler_ = profiler; }

    /** prof::SampleSource: snapshot per-core + global state. */
    void profSample(std::vector<prof::CoreSample> &cores,
                    prof::GlobalSample &global) override;

  private:
    struct ExecState {
        unsigned core = 0;
        unsigned orch = 0;
        std::deque<Request> queue;
        std::deque<RequestId> resumable;
        bool busy = false;
        /** Queue-length line changed since each orchestrator's last
         * scan (per-orchestrator coherence view). */
        std::vector<bool> dirtyFor;
        /** Outstanding = queued + running (JBSQ counter). */
        unsigned outstanding = 0;
        sim::Addr queueLine = 0;
        /** Request the executor is currently working on (0 = none);
         * host-only bookkeeping for profiler stack samples. */
        RequestId running = 0;
    };

    struct OrchState {
        unsigned core = 0;
        std::deque<Request> external;
        std::deque<Request> internal;
        /** Completed external requests awaiting response processing. */
        std::deque<RequestId> completions;
        std::vector<unsigned> execs; ///< executor indices it manages
        bool dispatching = false;
        unsigned rr = 0; ///< tie-break rotation
        sim::Addr completionLine = 0;
    };

    WorkerConfig cfg_;
    FunctionRegistry registry_;
    sim::EventQueue events_;
    sim::Rng rng_;
    std::unique_ptr<noc::Mesh> mesh_;
    std::unique_ptr<mem::CoherenceEngine> coherence_;
    std::unique_ptr<uat::VmaTableBase> table_;
    std::unique_ptr<uat::UatSystem> uat_;
    /** JordSan shadow-model checker (must outlive uat_/privlib_ use,
     * constructed before privlib_ so bootstrap VMAs are observed). */
    std::unique_ptr<check::Checker> checker_;
    std::unique_ptr<os::Kernel> kernel_;
    std::unique_ptr<privlib::PrivLib> privlib_;

    std::vector<OrchState> orchs_;
    std::vector<ExecState> execs_;
    std::unordered_map<RequestId, std::unique_ptr<Invocation>> live_;

    // Failure handling.
    fault::FaultInjector injector_;
    sim::Cycles timeoutCycles_ = 0;
    /** Runtime-mapped ArgBuf VMAs not yet munmapped (leak invariant). */
    std::uint64_t liveArgBufs_ = 0;
    /** Pending deadline-timer events by external request id. */
    std::unordered_map<RequestId, std::uint64_t> deadlineEvents_;

    RequestId nextRequestId_ = 1;
    std::uint64_t externalLeft_ = 0;
    /** Open-loop Poisson gap generator (sim/arrivals.hh); rebuilt by
     * run() from the offered load. */
    sim::PoissonArrivals arrivals_{0};
    EntryMix mix_;
    double mixTotal_ = 0;
    unsigned rrOrch_ = 0;

    // Measurement window control.
    std::uint64_t warmupRequests_ = 0;
    std::uint64_t generated_ = 0;
    sim::Tick windowStart_ = 0;
    RunResult *result_ = nullptr;

    // NightCore provisioning state.
    std::vector<unsigned> ntcConcurrency_;
    std::vector<unsigned> ntcProvisioned_;

    /** Runtime (executor/orchestrator) code VMA for I-VLB behaviour. */
    sim::Addr runtimeCodeVma_ = 0;

    // Optional observability hooks (all null when not attached).
    trace::Tracer *tracer_ = nullptr;
    prof::Pmu *pmu_ = nullptr;
    prof::Profiler *profiler_ = nullptr;
    struct RuntimeMetrics {
        trace::Counter *externalRequests = nullptr;
        trace::Counter *completedRequests = nullptr;
        trace::Counter *invocations = nullptr;
        trace::Counter *dispatches = nullptr;
        trace::Distribution *dispatchScanNs = nullptr;
        trace::Distribution *serviceNs = nullptr;
        trace::Gauge *busyExecutors = nullptr;
        trace::Gauge *liveInvocations = nullptr;
        trace::Counter *failedRequests = nullptr;
        trace::Counter *timedOutRequests = nullptr;
        trace::Counter *shedRequests = nullptr;
        trace::Counter *retries = nullptr;
        trace::Counter *faultsInjected = nullptr;
        trace::Counter *abortedInvocations = nullptr;
        trace::Distribution *retryDelayNs = nullptr;
    };
    RuntimeMetrics metrics_;

    bool isJordFamily() const { return cfg_.system != SystemKind::NightCore; }
    bool isolated() const { return cfg_.system == SystemKind::Jord ||
                                   cfg_.system == SystemKind::JordBT; }

    // --- Load generation ---
    void scheduleNextArrival();
    void onExternalArrival();
    FunctionId sampleEntry();

    // --- Orchestrator ---
    void orchEnqueue(unsigned orch, Request req);
    void orchDispatchStep(unsigned orch);
    sim::Cycles dispatchScan(OrchState &orch, unsigned orch_idx,
                             unsigned &chosen);
    /** Mark an executor's queue-length line dirty for every orch. */
    void markDirty(ExecState &exec);
    /** Next round-robin orchestrator on @p socket. */
    unsigned pickOrch(unsigned socket);
    unsigned m_socketOfCore(unsigned core) const;

    // --- Executor ---
    void execWake(unsigned exec);
    void execStep(unsigned exec);
    void startInvocation(unsigned exec, Request req);
    void resumeInvocation(unsigned exec, Invocation &inv);
    /**
     * Run the invocation from its current point until it suspends or
     * finishes; returns busy cycles consumed. Child submissions are
     * scheduled at their in-run offsets. @p at is the simulated time at
     * which this stretch of work begins (used only for span
     * timestamps; scheduling is unchanged).
     */
    sim::Cycles runUntilBlocked(Invocation &inv, sim::Tick at);
    sim::Cycles invocationPrologue(Invocation &inv, sim::Tick at);
    sim::Cycles invocationEpilogue(Invocation &inv, sim::Tick at);
    sim::Cycles issueChild(Invocation &inv, const CallSpec &call,
                           sim::Cycles offset, sim::Tick at);
    /** @p child_failed is set when any consumed result is a failure. */
    sim::Cycles consumeChildResults(Invocation &inv, sim::Tick at,
                                    bool &child_failed);
    void finishInvocation(Invocation &inv);
    void onChildComplete(Invocation &parent, ChildResult result);
    /** Shared completion callback of start/resumeInvocation. */
    void scheduleExecCompletion(unsigned exec, RequestId id,
                                sim::Cycles busy);

    // --- Failure handling ---
    /**
     * Tear down an aborted invocation's isolation state, mirroring the
     * epilogue without the response write-back: free unconsumed child
     * ArgBufs, return the input ArgBuf to its owner, revoke code, free
     * stack/heap, destroy the PD. @p in_pd says whether the executor is
     * still inside the invocation's PD (abort mid-segment) or back in
     * root (abort at resume). Returns busy cycles.
     */
    sim::Cycles abortReclaim(Invocation &inv, sim::Tick at, bool in_pd);
    /** Deadline timer for external request @p id fired. */
    void onDeadline(unsigned orch, RequestId id);
    void cancelDeadline(RequestId id);
    /**
     * An external request's attempt ended in failure: retry it (with
     * backoff) if budget remains, otherwise record the terminal outcome
     * and release its resources. The invocation must already be removed
     * from live_ by the caller if it was there. @p busy is the caller's
     * accumulated busy offset (retries are scheduled after it); the
     * return value is additional busy cycles spent here (ArgBuf release
     * on a terminal failure).
     */
    sim::Cycles settleFailedAttempt(Request req, Outcome outcome,
                                    sim::Cycles busy);
    /** Terminal failure accounting (measured window + metrics). */
    void recordTerminalFailure(const Request &req, Outcome outcome,
                               sim::Tick done);
    /** Post-run invariant: no live PDs, ArgBufs, queue entries. */
    void verifyQuiescent();

    // --- Shared helpers ---
    sim::Cycles touchArgBuf(unsigned core, sim::Addr va,
                            std::uint64_t bytes, bool write);
    sim::Cycles drawExec(const FunctionSpec &spec);
    void accountInvocation(Invocation &inv);
    unsigned coreOfExec(unsigned exec) const { return execs_[exec].core; }

    /** Event-queue domain owning a core (issue 10 partitioning). */
    unsigned
    coreDomain(unsigned core) const
    {
        return cfg_.machine.domainOf(core, cfg_.numDomains);
    }

    // --- Observability helpers (no-ops when hooks are detached) ---
    /** Emit a closed category span attributed to @p inv. */
    void traceSpan(const char *name, trace::Category category,
                   unsigned core, sim::Tick start, sim::Cycles dur,
                   const Invocation &inv);
    void noteExecBusy(bool busy);
    void noteLiveInvocations();
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_WORKER_HH
