/**
 * @file
 * Requests and invocations: the units of work flowing through a worker.
 *
 * A Request is what sits in orchestrator/executor queues (external from
 * the load generator, internal from nested jord::call/async). An
 * Invocation is the execution state of a dispatched request on its
 * executor: the continuation of §3.4, with its protection domain,
 * private stack/heap VMA, remaining compute segments, and outstanding
 * children.
 */

#ifndef JORD_RUNTIME_REQUEST_HH
#define JORD_RUNTIME_REQUEST_HH

#include <cstdint>
#include <vector>

#include "runtime/types.hh"
#include "uat/fault.hh"
#include "uat/vte.hh"

namespace jord::runtime {

/** How an invocation (or, transitively, a request) ended. */
enum class Outcome : std::uint8_t {
    Ok,          ///< completed normally
    Crashed,     ///< injected crash mid-segment
    Faulted,     ///< hardware fault (UAT permission violation)
    ChildFailed, ///< a nested ccall failed; the failure propagated up
    TimedOut,    ///< deadline expired before completion
};

inline const char *
outcomeName(Outcome o)
{
    switch (o) {
      case Outcome::Ok: return "ok";
      case Outcome::Crashed: return "crashed";
      case Outcome::Faulted: return "faulted";
      case Outcome::ChildFailed: return "child_failed";
      case Outcome::TimedOut: return "timed_out";
    }
    return "?";
}

/** A pending function-invocation request. */
struct Request {
    RequestId id = 0;
    FunctionId fn = 0;
    /** Entered the orchestrator (external) / was submitted (internal). */
    sim::Tick arrival = 0;
    /** First arrival across retries (== arrival on attempt 0); the
     * end-to-end latency of a retried request spans all attempts. */
    sim::Tick firstArrival = 0;
    /** Absolute deadline tick (0 = no deadline configured). */
    sim::Tick deadline = 0;
    /** Retry attempt (0 = first try). */
    unsigned attempt = 0;
    /** Dispatch decision latency charged to this request (Fig. 11). */
    sim::Cycles dispatchCycles = 0;
    bool internal = false;
    /** Parent invocation id for internal requests (0 = external). */
    RequestId parent = 0;
    /** ArgBuf VMA base (0 under NightCore, which uses pipes). */
    sim::Addr argBuf = 0;
    std::uint64_t argBytes = 0;
    /** Core that populated the ArgBuf / wrote the pipe. */
    unsigned producerCore = 0;
    /** PD currently holding the ArgBuf permission (root for external,
     * the parent's PD for nested requests); the ArgBuf is returned to
     * this PD when the invocation completes. */
    uat::PdId argOwner = 0;
    /** Orchestrator that owns this request. */
    unsigned orch = 0;
    /** Counts toward metrics (post-warmup root request). */
    bool measured = false;
    /** Lifecycle span covering arrival -> response (0 = not traced). */
    std::uint32_t span = 0;
};

/** A completed child's response, waiting to be consumed by the parent. */
struct ChildResult {
    sim::Addr argBuf = 0;
    std::uint64_t argBytes = 0;
    unsigned producerCore = 0;
    /** The child did not produce a response (it crashed, faulted or
     * timed out); the ArgBuf (if any) carries no valid data. */
    bool failed = false;
};

/** Why an invocation is not currently running. */
enum class InvState {
    Running,   ///< occupying its executor
    Suspended, ///< cexit'd, waiting for children
    Resumable, ///< children done, waiting for the executor
    Done,
};

/**
 * The continuation of one function invocation (§3.4).
 */
struct Invocation {
    Request req;
    /** Executor (index into the worker's executor array). */
    unsigned exec = 0;
    InvState state = InvState::Running;

    // --- Jord isolation state ---
    uat::PdId pd = 0;
    sim::Addr stackHeapVma = 0;

    // --- Execution progress ---
    /** Compute segments between call points (spec.calls.size() + 1). */
    std::vector<sim::Cycles> segments;
    /** Next call to issue == next segment to run. */
    unsigned nextCall = 0;
    /** Children issued but not yet completed. */
    unsigned pendingChildren = 0;
    /** Resume when pendingChildren <= this threshold. */
    unsigned resumeThreshold = 0;
    /** Completed children whose responses are unread. */
    std::vector<ChildResult> childResults;

    // --- Failure state ---
    Outcome outcome = Outcome::Ok;
    /** Hardware fault behind Outcome::Faulted (None otherwise). */
    uat::Fault fault = uat::Fault::None;
    /** Deadline fired while this invocation was live; abort at the
     * next scheduling point (segment boundary or resume). */
    bool timedOut = false;
    /** Abort decided while children are outstanding; the executor
     * waits for them (they hold ArgBufs in this PD) and reclaims at
     * resume time. */
    bool abortPending = false;
    /** The prologue ran (there is isolation state to reclaim). */
    bool prologueDone = false;
    /** Injected-fault decision for this attempt (-1 = none). */
    int crashSeg = -1;
    int violationSeg = -1;
    /** Fraction of the faulting segment executed before the abort. */
    double injectFrac = 0.5;

    // --- Accounting ---
    sim::Tick serviceStart = 0; ///< dequeued by the executor
    sim::Tick suspendedAt = 0;
    Breakdown bd;
    /** Invoke span covering the service window (0 = not traced). */
    std::uint32_t span = 0;
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_REQUEST_HH
