/**
 * @file
 * Fleet autoscaling: the operational FaaS promise (§1) on top of Jord
 * worker servers.
 *
 * A fleet of identical worker servers sits behind a front-end load
 * balancer that spreads offered load evenly across the active workers.
 * Between epochs a reactive controller compares the fleet's P99
 * against the SLO and scales the active worker count up or down —
 * the "functions as standalone schedulable entities that scale
 * independently" model the paper inherits from FaaS [26].
 *
 * Workers are independent machines, so an epoch is simulated per
 * worker and the samples are merged; there is no cross-worker state.
 */

#ifndef JORD_RUNTIME_AUTOSCALER_HH
#define JORD_RUNTIME_AUTOSCALER_HH

#include <memory>
#include <vector>

#include "runtime/worker.hh"

namespace jord::runtime {

/** Autoscaler policy knobs. */
struct AutoscaleConfig {
    WorkerConfig worker;
    /** P99 target the fleet must hold. */
    double sloUs = 100.0;
    unsigned minWorkers = 1;
    unsigned maxWorkers = 8;
    /** Scale out when P99 exceeds this fraction of the SLO. */
    double scaleOutThreshold = 0.85;
    /** Scale in when P99 falls below this fraction of the SLO. */
    double scaleInThreshold = 0.30;
    /** Epochs after a scale-out during which scale-in is suppressed
     * (hysteresis against flapping). */
    unsigned scaleInCooldownEpochs = 3;
    /** Scale in only if the shrunk fleet would stay below this
     * executor utilization at the current load. */
    double scaleInUtilization = 0.60;
    /** External requests simulated per worker per epoch. */
    std::uint64_t requestsPerEpoch = 5000;
    double warmupFrac = 0.2;
};

/** One epoch's outcome. */
struct EpochStats {
    unsigned epoch = 0;
    double offeredMrps = 0;   ///< fleet-wide offered load
    unsigned activeWorkers = 0;
    double p99Us = 0;
    double meanUs = 0;
    double utilization = 0; ///< mean executor busy fraction
    double achievedMrps = 0;  ///< fleet-wide
    bool metSlo = false;
    int scaleDecision = 0;    ///< +1 out, -1 in, 0 hold (for next epoch)
};

/**
 * The fleet controller.
 */
class Autoscaler
{
  public:
    /**
     * @param cfg Policy and per-worker configuration.
     * @param registry Functions to deploy on every worker.
     */
    Autoscaler(AutoscaleConfig cfg, const FunctionRegistry &registry);
    ~Autoscaler();

    Autoscaler(const Autoscaler &) = delete;
    Autoscaler &operator=(const Autoscaler &) = delete;

    /**
     * Run one epoch at fleet-wide @p offered_mrps with the current
     * active worker count, then apply the scaling decision for the
     * next epoch.
     */
    EpochStats runEpoch(double offered_mrps, const EntryMix &mix);

    /** Drive a whole load trace; returns one EpochStats per entry. */
    std::vector<EpochStats> runTrace(const std::vector<double> &trace,
                                     const EntryMix &mix);

    unsigned activeWorkers() const { return active_; }

  private:
    AutoscaleConfig cfg_;
    std::vector<std::unique_ptr<WorkerServer>> fleet_;
    unsigned active_;
    unsigned epoch_ = 0;
    /** Epoch of the most recent scale-out (for the cooldown). */
    unsigned lastScaleOut_ = 0;
    bool scaledOutOnce_ = false;
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_AUTOSCALER_HH
