/**
 * @file
 * Shared runtime types: function models, requests, system variants.
 */

#ifndef JORD_RUNTIME_TYPES_HH
#define JORD_RUNTIME_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace jord::runtime {

/** Identifies a registered function. */
using FunctionId = std::uint32_t;

/** Identifies one request (external or internal). */
using RequestId = std::uint64_t;

/** Which system is being modelled (§5). */
enum class SystemKind {
    Jord,      ///< plain-list VMA table + full isolation
    JordNI,    ///< isolation bypassed (insecure upper bound)
    JordBT,    ///< B-tree VMA table
    NightCore, ///< enhanced NightCore (threads + JBSQ, pipes)
};

/** Short display name of a system variant. */
inline const char *
systemName(SystemKind kind)
{
    switch (kind) {
      case SystemKind::Jord: return "Jord";
      case SystemKind::JordNI: return "JordNI";
      case SystemKind::JordBT: return "JordBT";
      case SystemKind::NightCore: return "NightCore";
    }
    return "?";
}

/** One nested invocation a function issues. */
struct CallSpec {
    FunctionId target = 0;
    /** Argument + response buffer size in bytes. */
    std::uint64_t argBytes = 512;
    /**
     * Synchronous (jord::call — suspend until the child returns) or
     * asynchronous (jord::async — a cookie waited on before the final
     * segment), Listing 1.
     */
    bool sync = false;
};

/**
 * The model of one function's behaviour: how long its own computation
 * runs, how that computation is split around its nested calls, and how
 * much memory it touches. Execution time is drawn per invocation from a
 * lognormal with the given mean/CV (DeathStarBench-style service-time
 * dispersion).
 */
struct FunctionSpec {
    FunctionId id = 0;
    std::string name;

    /** Mean of the function's own execution time (excluding children). */
    double execMeanUs = 1.0;
    /** Coefficient of variation of the execution time. */
    double execCv = 0.3;

    /** Nested invocations, issued in order at evenly spaced points. */
    std::vector<CallSpec> calls;

    /**
     * Optional relative weights of the compute segments around the
     * call points (size must be calls.size() + 1 when non-empty). An
     * empty vector splits the drawn execution time evenly; the
     * FunctionBuilder fills this from its compute() steps.
     */
    std::vector<double> segmentWeights;

    /** Private stack+heap VMA size (one VMA per invocation, Fig. 4). */
    std::uint64_t stackHeapBytes = 16 << 10;
    /** Code VMA size. */
    std::uint64_t codeBytes = 32 << 10;
    /** Input/response ArgBuf size for external requests to this fn. */
    std::uint64_t argBytes = 512;
};

/** Accumulated per-invocation overhead breakdown (Fig. 11). */
struct Breakdown {
    sim::Cycles exec = 0;      ///< function computation
    sim::Cycles isolation = 0; ///< PrivLib PD + VMA management
    sim::Cycles dispatch = 0;  ///< orchestrator dispatch share
    sim::Cycles comm = 0;      ///< ArgBuf coherence transfers
    sim::Cycles pipe = 0;      ///< NightCore pipe work
    sim::Cycles queue = 0;     ///< waiting in queues / for children

    sim::Cycles
    total() const
    {
        return exec + isolation + dispatch + comm + pipe + queue;
    }

    Breakdown &
    operator+=(const Breakdown &other)
    {
        exec += other.exec;
        isolation += other.isolation;
        dispatch += other.dispatch;
        comm += other.comm;
        pipe += other.pipe;
        queue += other.queue;
        return *this;
    }
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_TYPES_HH
