/**
 * @file
 * Listing 1-style application builder: the user-facing programming
 * model (§3.1).
 *
 * Functions are written as a sequence of steps — compute, synchronous
 * jord::call, asynchronous jord::async — and assembled into an App
 * (function registry + entry mix) that a WorkerServer deploys:
 *
 *     AppBuilder app;
 *     app.function("SrcFunc")
 *         .compute(0.3)          // pre(req->in), populate ArgBufs
 *         .async("Tgt1", 256)    // int c = jord::async(Tgt1, r1)
 *         .call("Tgt2", 512)     // jord::call(Tgt2, r2) — suspends
 *         .compute(0.2);         // post(...) after jord::wait(c)
 *     app.function("Tgt1").compute(0.4);
 *     app.function("Tgt2").compute(0.6);
 *     app.entry("SrcFunc", 1.0);
 *     App built = app.build();
 *
 * Asynchronous children are joined before the final compute step (the
 * implicit jord::wait of the runtime); call() suspends in place.
 */

#ifndef JORD_RUNTIME_BUILDER_HH
#define JORD_RUNTIME_BUILDER_HH

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "runtime/registry.hh"
#include "runtime/worker.hh"

namespace jord::runtime {

/** A fully resolved application ready to deploy. */
struct App {
    FunctionRegistry registry;
    EntryMix mix;
};

class AppBuilder;

/**
 * Fluent description of one function.
 */
class FunctionBuilder
{
  public:
    /** Append a compute step of @p us microseconds (mean). */
    FunctionBuilder &compute(double us);

    /** Synchronous nested invocation (jord::call): suspends here. */
    FunctionBuilder &call(const std::string &target,
                          std::uint64_t arg_bytes = 512);

    /** Asynchronous nested invocation (jord::async). */
    FunctionBuilder &async(const std::string &target,
                           std::uint64_t arg_bytes = 512);

    /** Coefficient of variation of the total compute time. */
    FunctionBuilder &execCv(double cv);

    /** Private stack+heap VMA size per invocation. */
    FunctionBuilder &stackHeap(std::uint64_t bytes);

    /** ArgBuf size for external requests to this function. */
    FunctionBuilder &argBytes(std::uint64_t bytes);

  private:
    friend class AppBuilder;

    struct PendingCall {
        std::string target;
        std::uint64_t argBytes;
        bool sync;
    };

    explicit FunctionBuilder(std::string name);

    std::string name_;
    double cv_ = 0.3;
    std::uint64_t stackHeapBytes_ = 16 << 10;
    std::uint64_t argBytes_ = 512;
    std::vector<double> segmentUs_{0.0};
    std::vector<PendingCall> calls_;
};

/**
 * Collects FunctionBuilders, resolves call targets by name, verifies
 * the call graph is acyclic, and emits the App.
 */
class AppBuilder
{
  public:
    /** Get (or create) the builder for @p name. */
    FunctionBuilder &function(const std::string &name);

    /** Declare an external entry point with a mix weight. */
    AppBuilder &entry(const std::string &name, double weight);

    /**
     * Resolve and build. Fatal on: unknown call targets, an empty
     * entry mix, or cycles in the call graph (which would recurse
     * without bound at run time).
     */
    App build() const;

  private:
    /** Deque: references returned by function() stay valid as more
     * functions are declared. */
    std::deque<FunctionBuilder> functions_;
    std::map<std::string, std::size_t> byName_;
    std::vector<std::pair<std::string, double>> entries_;
};

} // namespace jord::runtime

#endif // JORD_RUNTIME_BUILDER_HH
