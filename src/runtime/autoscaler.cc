#include "runtime/autoscaler.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jord::runtime {

Autoscaler::Autoscaler(AutoscaleConfig cfg,
                       const FunctionRegistry &registry)
    : cfg_(std::move(cfg)), active_(cfg_.minWorkers)
{
    if (cfg_.minWorkers == 0 || cfg_.minWorkers > cfg_.maxWorkers)
        sim::fatal("invalid autoscaler worker bounds [%u, %u]",
                   cfg_.minWorkers, cfg_.maxWorkers);
    fleet_.reserve(cfg_.maxWorkers);
    for (unsigned i = 0; i < cfg_.maxWorkers; ++i) {
        WorkerConfig wc = cfg_.worker;
        wc.seed = cfg_.worker.seed + i * 7919; // decorrelate workers
        fleet_.push_back(
            std::make_unique<WorkerServer>(wc, registry));
    }
}

Autoscaler::~Autoscaler() = default;

EpochStats
Autoscaler::runEpoch(double offered_mrps, const EntryMix &mix)
{
    EpochStats stats;
    stats.epoch = epoch_++;
    stats.offeredMrps = offered_mrps;
    stats.activeWorkers = active_;

    // The front end splits the load evenly across active workers.
    double per_worker = offered_mrps / active_;
    stats::Sampler latency;
    double achieved = 0;
    double util = 0;
    for (unsigned i = 0; i < active_; ++i) {
        RunResult res = fleet_[i]->run(per_worker,
                                       cfg_.requestsPerEpoch, mix,
                                       cfg_.warmupFrac);
        latency.merge(res.latencyUs);
        achieved += res.achievedMrps;
        util += res.executorUtilization;
    }
    stats.utilization = util / active_;
    stats.p99Us = latency.p99();
    stats.meanUs = latency.mean();
    stats.achievedMrps = achieved;
    stats.metSlo = stats.p99Us <= cfg_.sloUs;

    // Reactive scaling decision for the next epoch, with hysteresis:
    // after a scale-out, scale-in is suppressed for a cooldown window
    // so a briefly relieved fleet does not flap.
    bool cooling = scaledOutOnce_ &&
                   stats.epoch < lastScaleOut_ +
                                     cfg_.scaleInCooldownEpochs;
    if (stats.p99Us > cfg_.scaleOutThreshold * cfg_.sloUs &&
        active_ < cfg_.maxWorkers) {
        ++active_;
        stats.scaleDecision = +1;
        lastScaleOut_ = stats.epoch;
        scaledOutOnce_ = true;
    } else if (!cooling &&
               stats.p99Us < cfg_.scaleInThreshold * cfg_.sloUs &&
               active_ > cfg_.minWorkers &&
               stats.utilization * active_ / (active_ - 1) <
                   cfg_.scaleInUtilization) {
        // The shrunk fleet must still have utilization headroom, or
        // the next epoch would immediately blow the SLO again.
        --active_;
        stats.scaleDecision = -1;
    }
    return stats;
}

std::vector<EpochStats>
Autoscaler::runTrace(const std::vector<double> &trace,
                     const EntryMix &mix)
{
    std::vector<EpochStats> out;
    out.reserve(trace.size());
    for (double offered : trace)
        out.push_back(runEpoch(offered, mix));
    return out;
}

} // namespace jord::runtime
