#include "runtime/registry.hh"

#include "sim/logging.hh"

namespace jord::runtime {

FunctionId
FunctionRegistry::add(FunctionSpec spec)
{
    FunctionId id = static_cast<FunctionId>(functions_.size());
    spec.id = id;
    functions_.push_back(DeployedFunction{std::move(spec), 0});
    return id;
}

const DeployedFunction &
FunctionRegistry::at(FunctionId id) const
{
    if (id >= functions_.size())
        sim::panic("unknown function id %u", id);
    return functions_[id];
}

DeployedFunction &
FunctionRegistry::at(FunctionId id)
{
    if (id >= functions_.size())
        sim::panic("unknown function id %u", id);
    return functions_[id];
}

std::optional<FunctionId>
FunctionRegistry::findByName(const std::string &name) const
{
    for (const auto &fn : functions_)
        if (fn.spec.name == name)
            return fn.spec.id;
    return std::nullopt;
}

void
FunctionRegistry::deploy(privlib::PrivLib &privlib, unsigned core)
{
    for (auto &fn : functions_) {
        if (fn.codeVma != 0)
            continue;
        privlib::PrivResult res = privlib.mmapFor(
            core, privlib::PrivLib::kRootPd, fn.spec.codeBytes,
            uat::Perm::rx());
        if (!res.ok)
            sim::fatal("failed to deploy code VMA for %s",
                       fn.spec.name.c_str());
        fn.codeVma = res.value;
    }
}

} // namespace jord::runtime
