/**
 * @file
 * Fixed-size bitmask over cores (up to 256, matching the largest
 * scalability configuration in §6.3). Used for directory sharer lists and
 * VTD sharer tracking.
 */

#ifndef JORD_MEM_CORE_MASK_HH
#define JORD_MEM_CORE_MASK_HH

#include <array>
#include <bit>
#include <cstdint>

namespace jord::mem {

/** Maximum number of cores any configuration may have. */
inline constexpr unsigned kMaxCores = 256;

/**
 * Bitset over core ids with the few operations directories need.
 */
class CoreMask
{
  public:
    constexpr CoreMask() : words_{} {}

    void
    set(unsigned core)
    {
        words_[core / 64] |= 1ull << (core % 64);
    }

    void
    clear(unsigned core)
    {
        words_[core / 64] &= ~(1ull << (core % 64));
    }

    bool
    test(unsigned core) const
    {
        return (words_[core / 64] >> (core % 64)) & 1;
    }

    void
    reset()
    {
        words_ = {};
    }

    bool
    any() const
    {
        for (auto w : words_)
            if (w)
                return true;
        return false;
    }

    bool none() const { return !any(); }

    unsigned
    count() const
    {
        unsigned n = 0;
        for (auto w : words_)
            n += static_cast<unsigned>(std::popcount(w));
        return n;
    }

    /** True iff @p core is the only set bit. */
    bool
    onlyContains(unsigned core) const
    {
        return count() == 1 && test(core);
    }

    CoreMask &
    operator|=(const CoreMask &other)
    {
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] |= other.words_[i];
        return *this;
    }

    CoreMask &
    operator&=(const CoreMask &other)
    {
        for (std::size_t i = 0; i < words_.size(); ++i)
            words_[i] &= other.words_[i];
        return *this;
    }

    bool
    operator==(const CoreMask &other) const
    {
        return words_ == other.words_;
    }

    /** Invoke @p fn for every set core id, in increasing order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (std::size_t i = 0; i < words_.size(); ++i) {
            std::uint64_t w = words_[i];
            while (w) {
                unsigned bit = static_cast<unsigned>(std::countr_zero(w));
                fn(static_cast<unsigned>(i * 64 + bit));
                w &= w - 1;
            }
        }
    }

  private:
    std::array<std::uint64_t, kMaxCores / 64> words_;
};

} // namespace jord::mem

#endif // JORD_MEM_CORE_MASK_HH
