/**
 * @file
 * Tracked-line directory-based MESI coherence engine with timing.
 *
 * The engine models, per cache block actually touched by the simulation,
 * the directory state (MESI), L1 presence per core, LLC presence, and the
 * latency of every access composed from L1/LLC/DRAM latencies and NoC
 * message traversals (Table 2). Bulk application data that never crosses
 * cores is folded into workload execution-time segments and never enters
 * this engine (DESIGN.md §5.3).
 *
 * Jord's single-bit Translation (T) sideband (§4.2) is modelled by the
 * @c tbit parameter on accesses: whenever a T-bit access generates
 * coherence traffic that reaches the home directory, the registered
 * TranslationObserver (the VTD) is notified and may add latency for the
 * VLB-shootdown fan-out it performs.
 */

#ifndef JORD_MEM_COHERENCE_HH
#define JORD_MEM_COHERENCE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "mem/core_mask.hh"
#include "noc/mesh.hh"
#include "sim/machine.hh"
#include "sim/types.hh"

namespace jord::prof {
class Pmu;
}

namespace jord::mem {

/** Directory-visible state of a tracked block. */
enum class CacheState : std::uint8_t {
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** Outcome of one timed memory access. */
struct Access {
    sim::Cycles latency = 0;
    bool l1Hit = false;
    bool llcHit = false;
    /** Coherence messages generated on the NoC (0 for L1 hits). */
    unsigned messages = 0;
};

/**
 * Interface the UAT layer implements to observe T-bit traffic (the VTD).
 */
class TranslationObserver
{
  public:
    virtual ~TranslationObserver() = default;

    /**
     * A T-bit read from @p core for VTE block @p addr reached the home
     * directory: register the core as a translation sharer.
     */
    virtual void translationRead(unsigned core, sim::Addr addr) = 0;

    /**
     * A T-bit write from @p core for VTE block @p addr reached the home
     * directory. @p dir_sharers is the directory's L1 sharer list before
     * invalidation (the VTD falls back to it pessimistically when it has
     * no entry of its own, §4.2).
     *
     * @return Extra latency for the VLB invalidation fan-out beyond the
     * MESI invalidations already accounted for.
     */
    virtual sim::Cycles translationWrite(unsigned core, sim::Addr addr,
                                         const CoreMask &dir_sharers) = 0;

    /**
     * A T-bit write hit dirty in the writer's L1: only a local VLB
     * invalidation is needed, with no coherence traffic (§4.2).
     */
    virtual void translationWriteLocal(unsigned core, sim::Addr addr) = 0;

    /**
     * The directory evicted a block; if the VTD has no entry for it, it
     * must pessimistically treat all L1 sharers as translation sharers
     * (the directory acts as a victim cache for the VTD, §4.2).
     */
    virtual void directoryEvict(sim::Addr addr,
                                const CoreMask &dir_sharers) = 0;
};

/** Aggregate coherence statistics. */
struct CoherenceStats {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t atomics = 0;
    std::uint64_t l1Hits = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t dramFills = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t messages = 0;
    std::uint64_t tbitReads = 0;
    std::uint64_t tbitWrites = 0;

    void
    reset()
    {
        *this = CoherenceStats{};
    }
};

/**
 * The coherence engine. All addresses are block-aligned internally.
 */
class CoherenceEngine
{
  public:
    CoherenceEngine(const sim::MachineConfig &cfg, const noc::Mesh &mesh);

    /** Timed read of one block by @p core. */
    Access read(unsigned core, sim::Addr addr, bool tbit = false);

    /** Timed write of one block by @p core. */
    Access write(unsigned core, sim::Addr addr, bool tbit = false);

    /**
     * Timed atomic read-modify-write (free-list pops/pushes). Write
     * semantics plus the ALU forwarding cycle.
     */
    Access atomic(unsigned core, sim::Addr addr);

    /** Register the VTD (may be null to detach). */
    void
    setTranslationObserver(TranslationObserver *observer)
    {
        observer_ = observer;
    }

    /** Attach the simulated PMU (null to detach). Zero-latency: counter
     * and cycle-attribution hooks never change access timing. */
    void setPmu(prof::Pmu *pmu) { pmu_ = pmu; }

    /** Directory state of a block (Invalid if never touched). */
    CacheState stateOf(sim::Addr addr) const;

    /** True if @p core currently holds the block in its L1. */
    bool cachedIn(unsigned core, sim::Addr addr) const;

    /** Current L1 sharer mask of a block. */
    CoreMask sharersOf(sim::Addr addr) const;

    /**
     * Force-evict the block from @p core's L1 (silent eviction of a clean
     * line, or writeback of a dirty one). Used by tests to reproduce the
     * VTD victim-cache corner case.
     */
    void evictL1(unsigned core, sim::Addr addr);

    /**
     * Evict the block's directory entry entirely (notifies the
     * TranslationObserver, §4.2 victim behaviour).
     */
    void evictDirectory(sim::Addr addr);

    /** Drop all tracked state (keeps stats). */
    void flushAll();

    const CoherenceStats &stats() const { return stats_; }
    void resetStats() { stats_.reset(); }

    const noc::Mesh &mesh() const { return mesh_; }
    const sim::MachineConfig &config() const { return cfg_; }

    /** Latency of an L1 hit. */
    sim::Cycles l1Latency() const { return cfg_.l1HitCycles; }

  private:
    struct Line {
        CacheState state = CacheState::Invalid;
        CoreMask sharers;      ///< cores holding the line in L1
        unsigned owner = 0;    ///< valid when state is Modified/Exclusive
        bool inLlc = false;    ///< block has an on-chip LLC copy
    };

    /** Per-core L1 residency tracking with LRU capacity eviction. */
    struct CoreL1 {
        std::list<sim::Addr> lru; ///< front = most recent
        std::unordered_map<sim::Addr, std::list<sim::Addr>::iterator>
            map;
    };

    const sim::MachineConfig cfg_;
    const noc::Mesh &mesh_;
    TranslationObserver *observer_ = nullptr;
    prof::Pmu *pmu_ = nullptr;
    std::unordered_map<sim::Addr, Line> lines_;
    std::vector<CoreL1> l1s_;
    CoherenceStats stats_;

    Line &lineFor(sim::Addr addr);

    /** PMU bookkeeping for one finished access (no timing effect). */
    void notePmu(unsigned core, const Access &acc, unsigned home);

    /** Record residency of @p addr in @p core's L1; evicts LRU victims
     * beyond the configured capacity. */
    void touchL1(unsigned core, sim::Addr addr);

    /** Remove @p addr from @p core's LRU bookkeeping (invalidation). */
    void dropFromL1(unsigned core, sim::Addr addr);

    /** Max parallel invalidation round-trip from home to all sharers. */
    sim::Cycles invalidateSharers(unsigned home, Line &line,
                                  sim::Addr addr_of_line,
                                  unsigned except, unsigned &messages);
};

} // namespace jord::mem

#endif // JORD_MEM_COHERENCE_HH
