#include "mem/coherence.hh"

#include <algorithm>

#include "prof/pmu.hh"
#include "sim/logging.hh"

namespace jord::mem {

using sim::Addr;
using sim::Cycles;

CoherenceEngine::CoherenceEngine(const sim::MachineConfig &cfg,
                                 const noc::Mesh &mesh)
    : cfg_(cfg), mesh_(mesh), l1s_(cfg.numCores)
{
}

void
CoherenceEngine::touchL1(unsigned core, Addr addr)
{
    CoreL1 &l1 = l1s_[core];
    auto it = l1.map.find(addr);
    if (it != l1.map.end()) {
        l1.lru.splice(l1.lru.begin(), l1.lru, it->second);
        return;
    }
    l1.lru.push_front(addr);
    l1.map[addr] = l1.lru.begin();
    while (l1.map.size() > cfg_.l1Lines) {
        Addr victim = l1.lru.back();
        l1.lru.pop_back();
        l1.map.erase(victim);
        evictL1(core, victim);
    }
}

void
CoherenceEngine::dropFromL1(unsigned core, Addr addr)
{
    CoreL1 &l1 = l1s_[core];
    auto it = l1.map.find(addr);
    if (it == l1.map.end())
        return;
    l1.lru.erase(it->second);
    l1.map.erase(it);
}

CoherenceEngine::Line &
CoherenceEngine::lineFor(Addr addr)
{
    return lines_[sim::blockAlign(addr)];
}

CacheState
CoherenceEngine::stateOf(Addr addr) const
{
    auto it = lines_.find(sim::blockAlign(addr));
    return it == lines_.end() ? CacheState::Invalid : it->second.state;
}

bool
CoherenceEngine::cachedIn(unsigned core, Addr addr) const
{
    auto it = lines_.find(sim::blockAlign(addr));
    return it != lines_.end() && it->second.sharers.test(core);
}

CoreMask
CoherenceEngine::sharersOf(Addr addr) const
{
    auto it = lines_.find(sim::blockAlign(addr));
    return it == lines_.end() ? CoreMask{} : it->second.sharers;
}

Cycles
CoherenceEngine::invalidateSharers(unsigned home, Line &line,
                                   Addr addr_of_line, unsigned except,
                                   unsigned &messages)
{
    Cycles worst = 0;
    line.sharers.forEach([&](unsigned sharer) {
        if (sharer == except)
            return;
        // Invalidate request out + ack back, overlapped across sharers:
        // the shootdown completes when the furthest core acks (§6.3).
        Cycles rt = mesh_.roundTrip(home, sharer, noc::MsgKind::Control);
        worst = std::max(worst, rt);
        messages += 2;
        ++stats_.invalidations;
        dropFromL1(sharer, addr_of_line);
    });
    CoreMask keep;
    if (line.sharers.test(except))
        keep.set(except);
    line.sharers = keep;
    return worst;
}

void
CoherenceEngine::notePmu(unsigned core, const Access &acc, unsigned home)
{
    if (!pmu_)
        return;
    pmu_->add(core, prof::PmuCounter::RetiredOps);
    if (acc.l1Hit) {
        pmu_->add(core, prof::PmuCounter::L1Hits);
        return;
    }
    if (acc.llcHit)
        pmu_->add(core, prof::PmuCounter::LlcHits);
    else
        pmu_->add(core, prof::PmuCounter::DramFills);
    pmu_->add(core, prof::PmuCounter::NocMsgs, acc.messages);
    pmu_->add(core, prof::PmuCounter::NocHops,
              static_cast<std::uint64_t>(mesh_.hops(core, home)) *
                  acc.messages);
    // The cycles beyond the L1 probe stalled on cross-core traffic.
    pmu_->charge(core, prof::PmuBucket::Noc,
                 acc.latency - cfg_.l1HitCycles);
}

Access
CoherenceEngine::read(unsigned core, Addr addr, bool tbit)
{
    addr = sim::blockAlign(addr);
    ++stats_.reads;
    if (tbit)
        ++stats_.tbitReads;
    Line &line = lineFor(addr);
    Access acc;

    if (line.state != CacheState::Invalid && line.sharers.test(core)) {
        // L1 hit in any valid state. Translation reads still register
        // with the VTD: a VLB fill served from the local L1 is a
        // sharer that later shootdowns must reach even after this
        // block leaves the L1 (and with it the directory's list).
        acc.l1Hit = true;
        acc.latency = cfg_.l1HitCycles;
        ++stats_.l1Hits;
        touchL1(core, addr);
        if (tbit && observer_)
            observer_->translationRead(core, addr);
        notePmu(core, acc, core);
        return acc;
    }

    unsigned home = mesh_.homeSlice(addr, core);
    Cycles lat = cfg_.l1HitCycles; // detect the miss
    lat += mesh_.latency(core, home, noc::MsgKind::Control);
    lat += cfg_.llcHitCycles;
    acc.messages = 1;

    if (line.state == CacheState::Modified ||
        line.state == CacheState::Exclusive) {
        // Fetch from the owner; the owner forwards data to the requester
        // and downgrades to Shared (writeback folded into the forward).
        unsigned owner = line.owner;
        lat += mesh_.latency(home, owner, noc::MsgKind::Control);
        lat += mesh_.latency(owner, core, noc::MsgKind::Data);
        acc.messages += 2;
        line.inLlc = true;
        line.state = CacheState::Shared;
        line.sharers.set(core);
        acc.llcHit = true;
        ++stats_.llcHits;
    } else if (line.inLlc || line.state == CacheState::Shared) {
        lat += mesh_.latency(home, core, noc::MsgKind::Data);
        acc.messages += 1;
        acc.llcHit = true;
        ++stats_.llcHits;
        if (line.state == CacheState::Invalid || line.sharers.none()) {
            line.state = CacheState::Exclusive;
            line.owner = core;
        } else {
            line.state = CacheState::Shared;
        }
        line.sharers.set(core);
    } else {
        // Cold: fill from DRAM through the home slice.
        lat += cfg_.dramCycles;
        lat += mesh_.latency(home, core, noc::MsgKind::Data);
        acc.messages += 1;
        ++stats_.dramFills;
        line.inLlc = true;
        line.state = CacheState::Exclusive;
        line.owner = core;
        line.sharers.set(core);
    }

    touchL1(core, addr);

    if (tbit && observer_)
        observer_->translationRead(core, addr);

    acc.latency = lat;
    stats_.messages += acc.messages;
    notePmu(core, acc, home);
    return acc;
}

Access
CoherenceEngine::write(unsigned core, Addr addr, bool tbit)
{
    addr = sim::blockAlign(addr);
    ++stats_.writes;
    if (tbit)
        ++stats_.tbitWrites;
    Line &line = lineFor(addr);
    Access acc;

    bool own_exclusive =
        (line.state == CacheState::Modified ||
         line.state == CacheState::Exclusive) &&
        line.owner == core && line.sharers.test(core);

    if (own_exclusive) {
        // Silent E->M upgrade or plain M hit: no coherence traffic.
        line.state = CacheState::Modified;
        acc.l1Hit = true;
        acc.latency = cfg_.l1HitCycles;
        ++stats_.l1Hits;
        touchL1(core, addr);
        if (tbit && observer_)
            observer_->translationWriteLocal(core, addr);
        notePmu(core, acc, core);
        return acc;
    }

    unsigned home = mesh_.homeSlice(addr, core);
    Cycles lat = cfg_.l1HitCycles;
    lat += mesh_.latency(core, home, noc::MsgKind::Control);
    lat += cfg_.llcHitCycles;
    acc.messages = 1;

    CoreMask prev_sharers = line.sharers;

    if (line.state == CacheState::Modified ||
        line.state == CacheState::Exclusive) {
        // Another core owns it: invalidate-and-forward.
        unsigned owner = line.owner;
        lat += mesh_.latency(home, owner, noc::MsgKind::Control);
        lat += mesh_.latency(owner, core, noc::MsgKind::Data);
        acc.messages += 2;
        ++stats_.invalidations;
        line.sharers.forEach(
            [&](unsigned sharer) { dropFromL1(sharer, addr); });
        line.sharers.reset();
        line.inLlc = true;
        acc.llcHit = true;
        ++stats_.llcHits;
    } else if (line.state == CacheState::Shared) {
        // Upgrade: parallel invalidations to all other sharers; data comes
        // from the LLC if this core was not already a sharer.
        Cycles inval =
            invalidateSharers(home, line, addr, core, acc.messages);
        Cycles data = line.sharers.test(core)
                          ? 0
                          : mesh_.latency(home, core, noc::MsgKind::Data);
        if (data > 0)
            acc.messages += 1;
        lat += std::max(inval, data);
        acc.llcHit = true;
        ++stats_.llcHits;
    } else if (line.inLlc) {
        lat += mesh_.latency(home, core, noc::MsgKind::Data);
        acc.messages += 1;
        acc.llcHit = true;
        ++stats_.llcHits;
    } else {
        lat += cfg_.dramCycles;
        lat += mesh_.latency(home, core, noc::MsgKind::Data);
        acc.messages += 1;
        ++stats_.dramFills;
        line.inLlc = true;
    }

    line.state = CacheState::Modified;
    line.owner = core;
    line.sharers.reset();
    line.sharers.set(core);
    touchL1(core, addr);

    if (tbit && observer_) {
        lat += observer_->translationWrite(core, addr, prev_sharers);
    }

    acc.latency = lat;
    stats_.messages += acc.messages;
    notePmu(core, acc, home);
    return acc;
}

Access
CoherenceEngine::atomic(unsigned core, Addr addr)
{
    ++stats_.atomics;
    Access acc = write(core, addr, false);
    acc.latency += 1; // ALU forwarding for the read-modify-write
    return acc;
}

void
CoherenceEngine::evictL1(unsigned core, Addr addr)
{
    addr = sim::blockAlign(addr);
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return;
    Line &line = it->second;
    if (!line.sharers.test(core))
        return;
    line.sharers.clear(core);
    if ((line.state == CacheState::Modified ||
         line.state == CacheState::Exclusive) &&
        line.owner == core) {
        // Writeback (or clean replacement): LLC now holds the only copy.
        line.state = line.sharers.none() ? CacheState::Invalid
                                         : CacheState::Shared;
        line.inLlc = true;
    } else if (line.sharers.none()) {
        line.state = CacheState::Invalid;
    }
}

void
CoherenceEngine::evictDirectory(Addr addr)
{
    addr = sim::blockAlign(addr);
    auto it = lines_.find(addr);
    if (it == lines_.end())
        return;
    if (observer_)
        observer_->directoryEvict(addr, it->second.sharers);
    lines_.erase(it);
}

void
CoherenceEngine::flushAll()
{
    lines_.clear();
    for (auto &l1 : l1s_) {
        l1.lru.clear();
        l1.map.clear();
    }
}

} // namespace jord::mem
