/**
 * @file
 * Microservice workload models (§5).
 *
 * The paper ports three DeathStarBench applications (Social, Media,
 * Hotel) [25] and Google's OnlineBoutique ("Hipster") [27] to Jord's
 * function paradigm. We do not have the original application binaries,
 * so each workload is modelled as its function graph: per-function
 * execution-time distributions, nested-call fan-out (an average of 3
 * nested invocations per entry function; 12 for Media, and > 100 for
 * Media's ReadPage, §6.1/§6.2), and ArgBuf sizes (~15 cache blocks of
 * communication per request, §6.3). Table 3's eight selected functions
 * (GC, PO, SN, MR, UU, RP, F, CP) are exposed for the Fig. 11
 * breakdown.
 */

#ifndef JORD_WORKLOADS_WORKLOADS_HH
#define JORD_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "runtime/registry.hh"
#include "runtime/worker.hh"

namespace jord::workloads {

/** A complete workload: functions, entry mix, and selected functions. */
struct Workload {
    std::string name;
    runtime::FunctionRegistry registry;
    runtime::EntryMix mix;
    /** Table 3 functions: (abbreviation, FunctionId). */
    std::vector<std::pair<std::string, runtime::FunctionId>> selected;
};

/** OnlineBoutique / "Hipster" (GetCart, PlaceOrder selected). */
Workload makeHipster();

/** DeathStarBench Hotel (SearchNearby, MakeReservation selected). */
Workload makeHotel();

/** DeathStarBench Media (UploadUniqueId, ReadPage selected). */
Workload makeMedia();

/** DeathStarBench Social (Follow, ComposePost selected). */
Workload makeSocial();

/** All four, in the paper's order: Hipster, Hotel, Media, Social. */
std::vector<Workload> makeAll();

/** Look one up by (case-sensitive) name. */
Workload makeByName(const std::string &name);

} // namespace jord::workloads

#endif // JORD_WORKLOADS_WORKLOADS_HH
