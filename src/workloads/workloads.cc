#include "workloads/workloads.hh"

#include "sim/logging.hh"

namespace jord::workloads {

using runtime::CallSpec;
using runtime::FunctionId;
using runtime::FunctionRegistry;
using runtime::FunctionSpec;

namespace {

/** Shorthand for registering a leaf function. */
FunctionId
leaf(FunctionRegistry &reg, const char *name, double exec_us,
     double cv = 0.3)
{
    FunctionSpec spec;
    spec.name = name;
    spec.execMeanUs = exec_us;
    spec.execCv = cv;
    return reg.add(std::move(spec));
}

/** Shorthand for registering a function with nested calls. */
FunctionId
composite(FunctionRegistry &reg, const char *name, double exec_us,
          std::vector<CallSpec> calls, double cv = 0.3)
{
    FunctionSpec spec;
    spec.name = name;
    spec.execMeanUs = exec_us;
    spec.execCv = cv;
    spec.calls = std::move(calls);
    return reg.add(std::move(spec));
}

CallSpec
sync(FunctionId fn, std::uint64_t bytes = 512)
{
    return CallSpec{fn, bytes, true};
}

CallSpec
async(FunctionId fn, std::uint64_t bytes = 512)
{
    return CallSpec{fn, bytes, false};
}

} // namespace

Workload
makeHipster()
{
    Workload w;
    w.name = "Hipster";
    FunctionRegistry &r = w.registry;

    FunctionId currency = leaf(r, "CurrencyConvert", 0.15);
    FunctionId catalog = leaf(r, "ProductCatalog", 0.40);
    FunctionId cart_get = leaf(r, "CartGet", 0.30);
    FunctionId shipping = leaf(r, "ShippingQuote", 0.30);
    FunctionId payment = leaf(r, "PaymentCharge", 0.60);
    FunctionId email = leaf(r, "EmailConfirm", 0.40);
    FunctionId recommend = leaf(r, "Recommend", 0.45);
    FunctionId ad = leaf(r, "AdServe", 0.20);

    FunctionId get_cart = composite(
        r, "GetCart", 0.40, {sync(cart_get, 384), async(currency, 256)});
    FunctionId browse = composite(
        r, "BrowseProduct", 0.30,
        {async(catalog, 512), async(recommend, 384), async(ad, 256)});
    FunctionId checkout = composite(
        r, "Checkout", 0.50,
        {sync(catalog, 512), async(shipping, 384), async(currency, 256)});
    FunctionId place_order = composite(
        r, "PlaceOrder", 0.80,
        {sync(cart_get, 384), sync(payment, 512), async(shipping, 384),
         async(email, 512), async(currency, 256)});

    w.mix = {{get_cart, 0.35},
             {browse, 0.35},
             {checkout, 0.20},
             {place_order, 0.10}};
    w.selected = {{"GC", get_cart}, {"PO", place_order}};
    return w;
}

Workload
makeHotel()
{
    Workload w;
    w.name = "Hotel";
    FunctionRegistry &r = w.registry;

    FunctionId geo = leaf(r, "GeoNearby", 0.50);
    FunctionId rates = leaf(r, "RateLookup", 0.70);
    FunctionId profile = leaf(r, "ProfileGet", 0.80);
    FunctionId reservation = leaf(r, "ReservationCheck", 0.60);
    FunctionId user = leaf(r, "UserAuth", 0.30);
    FunctionId recommend = leaf(r, "RecommendHotel", 0.60);

    FunctionId search_nearby = composite(
        r, "SearchNearby", 1.00,
        {sync(geo, 384), async(rates, 512), async(profile, 768)});
    FunctionId make_reservation = composite(
        r, "MakeReservation", 1.20,
        {sync(user, 256), sync(reservation, 512), async(profile, 768)});
    FunctionId get_recommendation = composite(
        r, "GetRecommendation", 0.80,
        {async(recommend, 512), async(profile, 768)});

    w.mix = {{search_nearby, 0.50},
             {make_reservation, 0.20},
             {get_recommendation, 0.30}};
    w.selected = {{"SN", search_nearby}, {"MR", make_reservation}};
    return w;
}

Workload
makeMedia()
{
    Workload w;
    w.name = "Media";
    FunctionRegistry &r = w.registry;

    // Media functions fan out to many tiny component services: each
    // function invokes an average of 12 nested functions (§6.1), and
    // ReadPage touches more than 100 page components (§6.2).
    FunctionId unique_id = leaf(r, "UniqueIdGen", 0.15);
    FunctionId movie_id = leaf(r, "MovieIdLookup", 0.20);
    FunctionId text = leaf(r, "TextFilter", 0.25);
    FunctionId rating = leaf(r, "RatingStore", 0.20);
    FunctionId review_store = leaf(r, "ReviewStore", 0.25);
    FunctionId user_review = leaf(r, "UserReviewIdx", 0.20);
    FunctionId movie_review = leaf(r, "MovieReviewIdx", 0.20);
    FunctionId page_component = leaf(r, "PageComponent", 0.25);
    FunctionId cast_info = leaf(r, "CastInfo", 0.25);
    FunctionId plot = leaf(r, "PlotFetch", 0.25);

    auto twelve = [&](FunctionId a, FunctionId b, FunctionId c) {
        std::vector<CallSpec> calls;
        for (int i = 0; i < 4; ++i) {
            calls.push_back(async(a, 256));
            calls.push_back(async(b, 256));
            calls.push_back(async(c, 256));
        }
        return calls;
    };

    FunctionId upload_unique = composite(
        r, "UploadUniqueId", 0.30,
        twelve(unique_id, movie_id, user_review));
    FunctionId compose_review = composite(
        r, "ComposeReview", 0.40,
        twelve(text, rating, review_store));
    FunctionId read_reviews = composite(
        r, "ReadReviews", 0.35,
        twelve(movie_review, review_store, user_review));

    std::vector<CallSpec> page_calls;
    for (int i = 0; i < 104; ++i)
        page_calls.push_back(async(page_component, 256));
    page_calls.push_back(async(cast_info, 512));
    page_calls.push_back(async(plot, 512));
    FunctionId read_page =
        composite(r, "ReadPage", 30.0, std::move(page_calls), 0.2);

    // ReadPage's > 100-way fan-out makes it two orders of magnitude
    // heavier than the other entries; it stays rare in the mix (as a
    // full page render would be behind caches) so the P99 reflects the
    // typical 12-fan-out path while Fig. 11 still profiles RP itself.
    w.mix = {{upload_unique, 0.40},
             {compose_review, 0.30},
             {read_reviews, 0.295},
             {read_page, 0.005}};
    w.selected = {{"UU", upload_unique}, {"RP", read_page}};
    return w;
}

Workload
makeSocial()
{
    Workload w;
    w.name = "Social";
    FunctionRegistry &r = w.registry;

    FunctionId user_svc = leaf(r, "UserService", 0.80);
    FunctionId graph = leaf(r, "SocialGraph", 0.70);
    FunctionId unique_id = leaf(r, "UniqueIdGen", 0.50);
    FunctionId text_svc = leaf(r, "TextService", 5.00, 0.4);
    FunctionId media_svc = leaf(r, "MediaService", 4.00, 0.5);
    FunctionId mention = leaf(r, "UserMention", 3.00, 0.4);
    FunctionId post_storage = leaf(r, "PostStorage", 4.00, 0.4);

    FunctionId follow = composite(r, "Follow", 1.00,
                                  {sync(user_svc, 384),
                                   async(graph, 384)});
    FunctionId compose_post = composite(
        r, "ComposePost", 60.0,
        {sync(text_svc, 1024), async(media_svc, 1024),
         async(mention, 512), async(unique_id, 256)},
        0.25);
    FunctionId home_timeline = composite(
        r, "ReadHomeTimeline", 8.0,
        {sync(post_storage, 1024), async(graph, 512)}, 0.4);
    FunctionId user_timeline = composite(
        r, "ReadUserTimeline", 6.0, {sync(post_storage, 1024)}, 0.4);

    w.mix = {{home_timeline, 0.35},
             {user_timeline, 0.20},
             {follow, 0.20},
             {compose_post, 0.25}};
    w.selected = {{"F", follow}, {"CP", compose_post}};
    return w;
}

std::vector<Workload>
makeAll()
{
    std::vector<Workload> all;
    all.push_back(makeHipster());
    all.push_back(makeHotel());
    all.push_back(makeMedia());
    all.push_back(makeSocial());
    return all;
}

Workload
makeByName(const std::string &name)
{
    if (name == "Hipster")
        return makeHipster();
    if (name == "Hotel")
        return makeHotel();
    if (name == "Media")
        return makeMedia();
    if (name == "Social")
        return makeSocial();
    sim::fatal("unknown workload '%s'", name.c_str());
}

} // namespace jord::workloads
