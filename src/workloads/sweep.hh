/**
 * @file
 * Load-sweep harness: the measurement methodology of §5.
 *
 * Throughput under a 99th-percentile latency SLO is the paper's primary
 * metric, with the SLO set to 10x the minimal-load service time on
 * Jord_NI. This helper measures that SLO, sweeps offered load for a
 * system variant, and reports the P99-vs-load series of Fig. 9 together
 * with the achieved throughput under SLO.
 *
 * Sweep points are independent runs: each owns its WorkerServer (and
 * with it machine, event queue, RNG, samplers), so a sweep fans its
 * points across a par::ThreadPool when one is configured. Points
 * commit into pre-sized, index-addressed slots and the
 * order-dependent aggregates are recomputed afterwards by
 * finalizeSweep(), so results are byte-identical to a serial sweep
 * regardless of the thread count.
 */

#ifndef JORD_WORKLOADS_SWEEP_HH
#define JORD_WORKLOADS_SWEEP_HH

#include <map>
#include <string>
#include <vector>

#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace jord::par {
class ThreadPool;
} // namespace jord::par

namespace jord::workloads {

/** One point of a load sweep. */
struct SweepPoint {
    double offeredMrps = 0;
    double achievedMrps = 0;
    double p99Us = 0;
    double meanUs = 0;
    bool meetsSlo = false;
};

/** A full sweep for one (workload, system) pair. */
struct SweepResult {
    runtime::SystemKind system;
    double sloUs = 0;
    std::vector<SweepPoint> points;
    /** Highest achieved throughput whose P99 met the SLO. */
    double throughputUnderSlo = 0;
};

/** Sweep configuration. */
struct SweepConfig {
    runtime::WorkerConfig worker;
    /** External requests per load point. */
    std::uint64_t requestsPerPoint = 20000;
    double warmupFrac = 0.2;
    /** Load used to measure the minimal-load service time (MRPS). */
    double minimalLoadMrps = 0.01;
    /** SLO multiplier over the Jord_NI minimal-load service time. */
    double sloMultiplier = 10.0;
    /**
     * Host-parallel engine: load points fan across this pool (null =
     * serial). Output is byte-identical either way (DESIGN.md §9).
     */
    par::ThreadPool *pool = nullptr;
};

/**
 * Measure the SLO for a workload: sloMultiplier x the mean request
 * latency on Jord_NI under minimal load (§5).
 */
double measureSloUs(const Workload &workload, const SweepConfig &cfg);

/**
 * Sweep the given offered loads for one system variant.
 *
 * @param slo_us Pass the value from measureSloUs (shared across the
 * systems being compared).
 */
SweepResult sweepLoad(const Workload &workload,
                      runtime::SystemKind system,
                      const std::vector<double> &loads_mrps,
                      double slo_us, const SweepConfig &cfg);

/**
 * Recompute the order-dependent aggregates of a sweep from its points
 * in index order: the monotone SLO-knee detection (once a load misses
 * the SLO, a higher load passing again is P99 sampling noise, not
 * recovery) and throughputUnderSlo. Called by sweepLoad after the
 * points are committed; exposed so slot-at-a-time fills — in any
 * order — can be finalized identically (regression-tested).
 */
void finalizeSweep(SweepResult &result);

/** Geometrically spaced loads in [lo, hi] (inclusive), n points. */
std::vector<double> loadSeries(double lo, double hi, unsigned n);

// --- Seed sweeps ---------------------------------------------------------

/** Configuration for a per-seed sweep of one (workload, system, load)
 * combination: `jordsim --seed-sweep A..B`. */
struct SeedSweepConfig {
    /** Base configuration; its seed field is overridden per run. */
    runtime::WorkerConfig worker;
    /** Inclusive seed range. */
    std::uint64_t seedLo = 1;
    std::uint64_t seedHi = 1;
    double mrps = 1.0;
    std::uint64_t requests = 20000;
    double warmupFrac = 0.2;
    /** Seeds fan across this pool (null = serial). */
    par::ThreadPool *pool = nullptr;
};

/**
 * Run seeds seedLo..seedHi (inclusive); result i belongs to seed
 * seedLo + i. Each seed's run owns a private WorkerServer, so runs
 * are independent and the vector is byte-identical across thread
 * counts.
 */
std::vector<runtime::RunResult> runSeedSweep(const Workload &workload,
                                             const SeedSweepConfig &cfg);

/**
 * Merged per-seed CSV (header plus one row per seed), byte-stable:
 * the CI determinism gate compares this output across --jobs values.
 */
std::string seedSweepCsv(const std::string &workload_name,
                         const std::string &system_name,
                         const SeedSweepConfig &cfg,
                         const std::vector<runtime::RunResult> &runs);

/**
 * Flat "seed.<N>.<metric>" map of the headline per-seed metrics, for
 * prof::writeFlatJson / jordprof diffing.
 */
std::map<std::string, double>
seedSweepJson(const SeedSweepConfig &cfg,
              const std::vector<runtime::RunResult> &runs);

} // namespace jord::workloads

#endif // JORD_WORKLOADS_SWEEP_HH
