/**
 * @file
 * Load-sweep harness: the measurement methodology of §5.
 *
 * Throughput under a 99th-percentile latency SLO is the paper's primary
 * metric, with the SLO set to 10x the minimal-load service time on
 * Jord_NI. This helper measures that SLO, sweeps offered load for a
 * system variant, and reports the P99-vs-load series of Fig. 9 together
 * with the achieved throughput under SLO.
 */

#ifndef JORD_WORKLOADS_SWEEP_HH
#define JORD_WORKLOADS_SWEEP_HH

#include <vector>

#include "runtime/worker.hh"
#include "workloads/workloads.hh"

namespace jord::workloads {

/** One point of a load sweep. */
struct SweepPoint {
    double offeredMrps = 0;
    double achievedMrps = 0;
    double p99Us = 0;
    double meanUs = 0;
    bool meetsSlo = false;
};

/** A full sweep for one (workload, system) pair. */
struct SweepResult {
    runtime::SystemKind system;
    double sloUs = 0;
    std::vector<SweepPoint> points;
    /** Highest achieved throughput whose P99 met the SLO. */
    double throughputUnderSlo = 0;
};

/** Sweep configuration. */
struct SweepConfig {
    runtime::WorkerConfig worker;
    /** External requests per load point. */
    std::uint64_t requestsPerPoint = 20000;
    double warmupFrac = 0.2;
    /** Load used to measure the minimal-load service time (MRPS). */
    double minimalLoadMrps = 0.01;
    /** SLO multiplier over the Jord_NI minimal-load service time. */
    double sloMultiplier = 10.0;
};

/**
 * Measure the SLO for a workload: sloMultiplier x the mean request
 * latency on Jord_NI under minimal load (§5).
 */
double measureSloUs(const Workload &workload, const SweepConfig &cfg);

/**
 * Sweep the given offered loads for one system variant.
 *
 * @param slo_us Pass the value from measureSloUs (shared across the
 * systems being compared).
 */
SweepResult sweepLoad(const Workload &workload,
                      runtime::SystemKind system,
                      const std::vector<double> &loads_mrps,
                      double slo_us, const SweepConfig &cfg);

/** Geometrically spaced loads in [lo, hi] (inclusive), n points. */
std::vector<double> loadSeries(double lo, double hi, unsigned n);

} // namespace jord::workloads

#endif // JORD_WORKLOADS_SWEEP_HH
