#include "workloads/sweep.hh"

#include <cmath>
#include <cstdio>

#include "par/par.hh"
#include "sim/logging.hh"

namespace jord::workloads {

using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

double
measureSloUs(const Workload &workload, const SweepConfig &cfg)
{
    WorkerConfig wc = cfg.worker;
    wc.system = SystemKind::JordNI;
    WorkerServer worker(wc, workload.registry);
    std::uint64_t requests =
        std::max<std::uint64_t>(2000, cfg.requestsPerPoint / 10);
    RunResult res = worker.run(cfg.minimalLoadMrps, requests,
                               workload.mix, cfg.warmupFrac);
    if (res.latencyUs.empty())
        sim::fatal("SLO measurement produced no samples");
    return cfg.sloMultiplier * res.latencyUs.mean();
}

void
finalizeSweep(SweepResult &out)
{
    out.throughputUnderSlo = 0;
    // Knee detection is monotone: once a load misses the SLO, a
    // higher load passing again is P99 sampling noise, not recovery.
    bool failed_before = false;
    for (const SweepPoint &point : out.points) {
        if (point.meetsSlo && !failed_before)
            out.throughputUnderSlo =
                std::max(out.throughputUnderSlo, point.achievedMrps);
        if (!point.meetsSlo)
            failed_before = true;
    }
}

SweepResult
sweepLoad(const Workload &workload, SystemKind system,
          const std::vector<double> &loads_mrps, double slo_us,
          const SweepConfig &cfg)
{
    SweepResult out;
    out.system = system;
    out.sloUs = slo_us;

    // Every point is an independent run committing to its own slot;
    // the order-dependent knee detection runs afterwards over the
    // in-order series, so any completion order yields the same result.
    out.points = par::orderedMap<SweepPoint>(
        cfg.pool, loads_mrps.size(), [&](std::size_t i) {
            double load = loads_mrps[i];
            WorkerConfig wc = cfg.worker;
            wc.system = system;
            WorkerServer worker(wc, workload.registry);
            RunResult res = worker.run(load, cfg.requestsPerPoint,
                                       workload.mix, cfg.warmupFrac);
            SweepPoint point;
            point.offeredMrps = load;
            point.achievedMrps = res.achievedMrps;
            point.p99Us = res.latencyUs.p99();
            point.meanUs = res.latencyUs.mean();
            point.meetsSlo = point.p99Us <= slo_us &&
                             res.completedRequests > 0;
            return point;
        });
    finalizeSweep(out);
    return out;
}

std::vector<double>
loadSeries(double lo, double hi, unsigned n)
{
    std::vector<double> loads;
    if (n == 0)
        return loads;
    if (n == 1) {
        loads.push_back(hi);
        return loads;
    }
    double ratio = std::pow(hi / lo, 1.0 / (n - 1));
    double load = lo;
    for (unsigned i = 0; i < n; ++i) {
        loads.push_back(load);
        load *= ratio;
    }
    loads.back() = hi;
    return loads;
}

// --- Seed sweeps ---------------------------------------------------------

std::vector<RunResult>
runSeedSweep(const Workload &workload, const SeedSweepConfig &cfg)
{
    if (cfg.seedHi < cfg.seedLo)
        sim::fatal("seed sweep range %llu..%llu is empty",
                   static_cast<unsigned long long>(cfg.seedLo),
                   static_cast<unsigned long long>(cfg.seedHi));
    std::size_t n =
        static_cast<std::size_t>(cfg.seedHi - cfg.seedLo + 1);
    return par::orderedMap<RunResult>(
        cfg.pool, n, [&](std::size_t i) {
            WorkerConfig wc = cfg.worker;
            wc.seed = cfg.seedLo + i;
            WorkerServer worker(wc, workload.registry);
            return worker.run(cfg.mrps, cfg.requests, workload.mix,
                              cfg.warmupFrac);
        });
}

std::string
seedSweepCsv(const std::string &workload_name,
             const std::string &system_name, const SeedSweepConfig &cfg,
             const std::vector<RunResult> &runs)
{
    std::string out =
        "seed,workload,system,offered_mrps,achieved_mrps,mean_us,"
        "p50_us,p99_us,invocations,completed,failed,timedout,shed,"
        "retries\n";
    char line[512];
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunResult &res = runs[i];
        std::snprintf(
            line, sizeof(line),
            "%llu,%s,%s,%.4f,%.4f,%.4f,%.4f,%.4f,%llu,%llu,%llu,"
            "%llu,%llu,%llu\n",
            static_cast<unsigned long long>(cfg.seedLo + i),
            workload_name.c_str(), system_name.c_str(), cfg.mrps,
            res.achievedMrps, res.latencyUs.mean(),
            res.latencyUs.p50(), res.latencyUs.p99(),
            static_cast<unsigned long long>(res.invocations),
            static_cast<unsigned long long>(res.completedRequests),
            static_cast<unsigned long long>(res.failedRequests),
            static_cast<unsigned long long>(res.timedOutRequests),
            static_cast<unsigned long long>(res.shedRequests),
            static_cast<unsigned long long>(res.retries));
        out += line;
    }
    return out;
}

std::map<std::string, double>
seedSweepJson(const SeedSweepConfig &cfg,
              const std::vector<RunResult> &runs)
{
    std::map<std::string, double> out;
    for (std::size_t i = 0; i < runs.size(); ++i) {
        const RunResult &res = runs[i];
        std::string prefix =
            "seed." + std::to_string(cfg.seedLo + i) + ".";
        out[prefix + "achieved_mrps"] = res.achievedMrps;
        out[prefix + "mean_us"] = res.latencyUs.mean();
        out[prefix + "p50_us"] = res.latencyUs.p50();
        out[prefix + "p99_us"] = res.latencyUs.p99();
        out[prefix + "completed"] =
            static_cast<double>(res.completedRequests);
        out[prefix + "invocations"] =
            static_cast<double>(res.invocations);
    }
    return out;
}

} // namespace jord::workloads
