#include "workloads/sweep.hh"

#include <cmath>

#include "sim/logging.hh"

namespace jord::workloads {

using runtime::RunResult;
using runtime::SystemKind;
using runtime::WorkerConfig;
using runtime::WorkerServer;

double
measureSloUs(const Workload &workload, const SweepConfig &cfg)
{
    WorkerConfig wc = cfg.worker;
    wc.system = SystemKind::JordNI;
    WorkerServer worker(wc, workload.registry);
    std::uint64_t requests =
        std::max<std::uint64_t>(2000, cfg.requestsPerPoint / 10);
    RunResult res = worker.run(cfg.minimalLoadMrps, requests,
                               workload.mix, cfg.warmupFrac);
    if (res.latencyUs.empty())
        sim::fatal("SLO measurement produced no samples");
    return cfg.sloMultiplier * res.latencyUs.mean();
}

SweepResult
sweepLoad(const Workload &workload, SystemKind system,
          const std::vector<double> &loads_mrps, double slo_us,
          const SweepConfig &cfg)
{
    SweepResult out;
    out.system = system;
    out.sloUs = slo_us;

    bool failed_before = false;
    for (double load : loads_mrps) {
        WorkerConfig wc = cfg.worker;
        wc.system = system;
        WorkerServer worker(wc, workload.registry);
        RunResult res = worker.run(load, cfg.requestsPerPoint,
                                   workload.mix, cfg.warmupFrac);
        SweepPoint point;
        point.offeredMrps = load;
        point.achievedMrps = res.achievedMrps;
        point.p99Us = res.latencyUs.p99();
        point.meanUs = res.latencyUs.mean();
        point.meetsSlo = point.p99Us <= slo_us &&
                         res.completedRequests > 0;
        // Knee detection is monotone: once a load misses the SLO, a
        // higher load passing again is P99 sampling noise, not recovery.
        if (point.meetsSlo && !failed_before)
            out.throughputUnderSlo =
                std::max(out.throughputUnderSlo, point.achievedMrps);
        if (!point.meetsSlo)
            failed_before = true;
        out.points.push_back(point);
    }
    return out;
}

std::vector<double>
loadSeries(double lo, double hi, unsigned n)
{
    std::vector<double> loads;
    if (n == 0)
        return loads;
    if (n == 1) {
        loads.push_back(hi);
        return loads;
    }
    double ratio = std::pow(hi / lo, 1.0 / (n - 1));
    double load = lo;
    for (unsigned i = 0; i < n; ++i) {
        loads.push_back(load);
        load *= ratio;
    }
    loads.back() = hi;
    return loads;
}

} // namespace jord::workloads
