/**
 * @file
 * OS support model (§4.4).
 *
 * Jord needs the OS only for bootstrap and refill: reserving the UAT
 * virtual region, loading PrivLib and the initial privileged VMAs,
 * handing reserved physical memory chunks to PrivLib through the
 * uat_config syscall, and saving/restoring the UAT CSRs on context
 * switch. Everything else happens at user level.
 */

#ifndef JORD_OS_KERNEL_HH
#define JORD_OS_KERNEL_HH

#include <cstdint>

#include "sim/machine.hh"
#include "sim/types.hh"
#include "uat/csr.hh"

namespace jord::os {

/** Result of a modelled syscall. */
struct SyscallResult {
    bool ok = false;
    sim::Addr addr = 0;
    std::uint64_t len = 0;
    sim::Cycles latency = 0;
};

/**
 * The kernel model: physical memory reservation and uat_config.
 */
class Kernel
{
  public:
    /**
     * @param cfg Machine configuration.
     * @param reserved_bytes Physical memory set aside for Jord at boot;
     * the OS pins it so it can never be swapped (§4.1).
     */
    explicit Kernel(const sim::MachineConfig &cfg,
                    std::uint64_t reserved_bytes = 8ull << 30);

    /**
     * uat_config(UAT_RESERVE): hand PrivLib a pinned physical chunk of
     * at least @p bytes. Fails when the reservation is exhausted.
     */
    SyscallResult uatConfigReserve(std::uint64_t bytes);

    /** Syscall entry/exit cost (trap + return). */
    sim::Cycles syscallCycles() const { return syscallCycles_; }

    /**
     * Cost of saving/restoring the uatp/uatc/ucid CSRs as part of an OS
     * context switch (three CSR reads + writes).
     */
    sim::Cycles csrContextSwitchCycles() const { return 12; }

    /** Save a core's UAT CSRs into a process context block. */
    void saveContext(const uat::UatCsrFile &csrs, uat::UatCsrFile &ctx) const
    {
        ctx = csrs;
    }

    /** Restore a process context block into a core's UAT CSRs. */
    void restoreContext(const uat::UatCsrFile &ctx,
                        uat::UatCsrFile &csrs) const
    {
        csrs = ctx;
    }

    /** Physical bytes still available for reservation. */
    std::uint64_t remainingBytes() const;

    /** Total syscalls served (for tests/stats). */
    std::uint64_t numSyscalls() const { return numSyscalls_; }

  private:
    std::uint64_t reservedBytes_;
    sim::Addr nextPa_;
    sim::Addr endPa_;
    sim::Cycles syscallCycles_;
    std::uint64_t numSyscalls_ = 0;
};

} // namespace jord::os

#endif // JORD_OS_KERNEL_HH
