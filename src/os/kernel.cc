#include "os/kernel.hh"

namespace jord::os {

namespace {
/** Physical range the boot firmware sets aside for Jord. */
constexpr sim::Addr kReservedPaBase = 0x0800'0000'0000ull;
} // namespace

Kernel::Kernel(const sim::MachineConfig &cfg, std::uint64_t reserved_bytes)
    : reservedBytes_(reserved_bytes),
      nextPa_(kReservedPaBase),
      endPa_(kReservedPaBase + reserved_bytes),
      syscallCycles_(sim::nsToCycles(250.0, cfg.freqGhz))
{
}

SyscallResult
Kernel::uatConfigReserve(std::uint64_t bytes)
{
    SyscallResult res;
    res.latency = syscallCycles_;
    ++numSyscalls_;
    // Chunks are cache-block aligned so VTE offsets stay block-aligned.
    std::uint64_t aligned =
        (bytes + sim::kCacheBlockBytes - 1) & ~(sim::kCacheBlockBytes - 1);
    if (nextPa_ + aligned > endPa_)
        return res; // reservation exhausted
    res.ok = true;
    res.addr = nextPa_;
    res.len = aligned;
    nextPa_ += aligned;
    return res;
}

std::uint64_t
Kernel::remainingBytes() const
{
    return endPa_ - nextPa_;
}

} // namespace jord::os
