#include "stats/table.hh"

#include <algorithm>
#include <cstdint>

#include "sim/logging.hh"

namespace jord::stats {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size())
        sim::panic("table row has %zu cells, expected %zu",
                   cells.size(), headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double value, const char *fmt)
{
    // strprintf expects a literal-checked format; this narrow wrapper is
    // only ever called with numeric formats.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wformat-nonliteral"
    char buf[64];
    std::snprintf(buf, sizeof(buf), fmt, value);
#pragma GCC diagnostic pop
    return buf;
}

std::string
Table::cell(std::uint64_t value)
{
    return sim::strprintf("%llu", static_cast<unsigned long long>(value));
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto render_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line += std::string(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                line += "  ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        line += '\n';
        return line;
    };

    std::string out = render_row(headers_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(total, '-') + '\n';
    for (const auto &row : rows_)
        out += render_row(row);
    return out;
}

std::string
Table::renderCsv() const
{
    auto join = [](const std::vector<std::string> &row) {
        std::string line;
        for (std::size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            if (c + 1 < row.size())
                line += ',';
        }
        line += '\n';
        return line;
    };
    std::string out = join(headers_);
    for (const auto &row : rows_)
        out += join(row);
    return out;
}

} // namespace jord::stats
