#include "stats/histogram.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "sim/logging.hh"

namespace jord::stats {

Histogram::Histogram(std::uint64_t max_value, unsigned sub_buckets)
    : subBuckets_(sub_buckets), maxValue_(max_value)
{
    if (sub_buckets < 2 || (sub_buckets & (sub_buckets - 1)) != 0)
        sim::fatal("histogram sub_buckets must be a power of two >= 2");
    subBucketShift_ = static_cast<unsigned>(std::countr_zero(sub_buckets));
    // Values < sub_buckets map 1:1; above that, each power-of-two range
    // contributes sub_buckets/2 additional buckets.
    unsigned ranges = 64 - subBucketShift_;
    buckets_.assign(subBuckets_ + ranges * (subBuckets_ / 2), 0);
}

std::size_t
Histogram::bucketIndex(std::uint64_t value) const
{
    if (value < subBuckets_)
        return static_cast<std::size_t>(value);
    unsigned msb = 63 - static_cast<unsigned>(std::countl_zero(value));
    unsigned range = msb - subBucketShift_ + 1;
    std::uint64_t sub = (value >> (msb - subBucketShift_ + 1)) &
                        (subBuckets_ / 2 - 1);
    return subBuckets_ + (range - 1) * (subBuckets_ / 2) +
           static_cast<std::size_t>(sub);
}

std::uint64_t
Histogram::bucketLowerBound(std::size_t index) const
{
    if (index < subBuckets_)
        return index;
    std::size_t rel = index - subBuckets_;
    unsigned range = static_cast<unsigned>(rel / (subBuckets_ / 2)) + 1;
    std::uint64_t sub = rel % (subBuckets_ / 2);
    std::uint64_t base = 1ull << (subBucketShift_ + range - 1);
    std::uint64_t step = base / (subBuckets_ / 2);
    return base + sub * step;
}

void
Histogram::record(std::uint64_t value)
{
    recordN(value, 1);
}

void
Histogram::recordN(std::uint64_t value, std::uint64_t weight)
{
    if (weight == 0)
        return;
    value = std::min(value, maxValue_);
    std::size_t idx = bucketIndex(value);
    if (idx >= buckets_.size())
        idx = buckets_.size() - 1;
    buckets_[idx] += weight;
    if (count_ == 0) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }
    count_ += weight;
    sum_ += static_cast<double>(value) * static_cast<double>(weight);
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

std::uint64_t
Histogram::percentile(double p) const
{
    if (p < 0.0 || p > 100.0)
        sim::panic("percentile out of range: %f", p);
    if (count_ == 0)
        return 0;
    // p=0 and p=100 are the observed extremes by definition; the
    // bucket scan below would return the lower bound of the extreme's
    // bucket, which can undercut the recorded value.
    if (p == 0.0)
        return min_;
    if (p == 100.0)
        return max_;
    std::uint64_t target = static_cast<std::uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count_)));
    target = std::max<std::uint64_t>(target, 1);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
        seen += buckets_[i];
        // Clamp to the observed range: a bucket's lower bound can lie
        // below min_ (single sample 100 lands in the [96,104) bucket,
        // whose bound 96 was never recorded).
        if (seen >= target)
            return std::clamp(bucketLowerBound(i), min_, max_);
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() != buckets_.size() ||
        other.subBuckets_ != subBuckets_) {
        sim::panic("merging histograms with different geometry");
    }
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    if (other.count_) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

void
Histogram::reset()
{
    std::fill(buckets_.begin(), buckets_.end(), 0);
    count_ = 0;
    min_ = max_ = 0;
    sum_ = 0.0;
}

std::string
Histogram::render(unsigned rows) const
{
    if (count_ == 0)
        return "<empty histogram>\n";
    // Split [min, max] into `rows` log-spaced rows and print bars.
    std::string out;
    double lo = static_cast<double>(std::max<std::uint64_t>(min_, 1));
    double hi = static_cast<double>(std::max<std::uint64_t>(max_, 1));
    double ratio = std::pow(hi / lo, 1.0 / rows);
    std::uint64_t prev_count = 0;
    double edge = lo;
    for (unsigned r = 0; r < rows; ++r) {
        double next = (r + 1 == rows) ? hi + 1 : edge * ratio;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < buckets_.size(); ++i) {
            if (static_cast<double>(bucketLowerBound(i)) < next)
                cum += buckets_[i];
        }
        std::uint64_t in_row = cum - prev_count;
        prev_count = cum;
        unsigned bar = static_cast<unsigned>(
            50.0 * static_cast<double>(in_row) /
            static_cast<double>(count_));
        out += sim::strprintf("%12.0f | %-50s %llu\n", edge,
                              std::string(bar, '#').c_str(),
                              static_cast<unsigned long long>(in_row));
        edge = next;
    }
    return out;
}

} // namespace jord::stats
