/**
 * @file
 * Aligned ASCII table printer used by the benchmark harnesses to emit the
 * same rows/series the paper's tables and figures report.
 */

#ifndef JORD_STATS_TABLE_HH
#define JORD_STATS_TABLE_HH

#include <string>
#include <vector>

namespace jord::stats {

/**
 * Collects rows of string cells and renders them with aligned columns.
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append one row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: printf-format a double cell. */
    static std::string cell(double value, const char *fmt = "%.2f");

    /** Convenience: integer cell. */
    static std::string cell(std::uint64_t value);

    /** Render the table with a header separator line. */
    std::string render() const;

    /** Render as comma-separated values (for plotting scripts). */
    std::string renderCsv() const;

    std::size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace jord::stats

#endif // JORD_STATS_TABLE_HH
