#include "stats/sampler.hh"

#include <algorithm>
#include <cmath>

#include "sim/logging.hh"

namespace jord::stats {

Sampler::Sampler(std::size_t reservoir_cap)
    : reservoirCap_(reservoir_cap), rngState_(0x853c49e6748fea9bull)
{
}

std::uint64_t
Sampler::nextRand() const
{
    // splitmix64 step; const-cast free by keeping state mutable-equivalent
    // via the caller (record() is non-const; cdf/percentile never draw).
    auto *self = const_cast<Sampler *>(this);
    std::uint64_t z = (self->rngState_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
Sampler::record(double value)
{
    ++count_;
    sum_ += value;
    double delta = value - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (value - mean_);
    if (count_ == 1) {
        min_ = max_ = value;
    } else {
        min_ = std::min(min_, value);
        max_ = std::max(max_, value);
    }

    if (reservoirCap_ == 0 || samples_.size() < reservoirCap_) {
        samples_.push_back(value);
    } else {
        // Vitter's algorithm R.
        std::uint64_t slot = nextRand() % count_;
        if (slot < reservoirCap_)
            samples_[slot] = value;
    }
    sortedValid_ = false;
}

double
Sampler::min() const
{
    return count_ ? min_ : 0.0;
}

double
Sampler::max() const
{
    return count_ ? max_ : 0.0;
}

double
Sampler::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Sampler::stddev() const
{
    if (count_ < 2)
        return 0.0;
    return std::sqrt(m2_ / static_cast<double>(count_ - 1));
}

void
Sampler::ensureSorted() const
{
    if (sortedValid_)
        return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sortedValid_ = true;
}

double
Sampler::percentile(double p) const
{
    if (samples_.empty())
        return 0.0;
    if (p < 0.0 || p > 100.0)
        sim::panic("percentile out of range: %f", p);
    ensureSorted();
    if (sorted_.size() == 1)
        return sorted_[0];
    double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
    std::size_t lo = static_cast<std::size_t>(rank);
    std::size_t hi = std::min(lo + 1, sorted_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return sorted_[lo] + frac * (sorted_[hi] - sorted_[lo]);
}

std::vector<std::pair<double, double>>
Sampler::cdf(std::size_t points) const
{
    std::vector<std::pair<double, double>> out;
    if (samples_.empty() || points == 0)
        return out;
    ensureSorted();
    out.reserve(points);
    for (std::size_t i = 0; i < points; ++i) {
        double frac = static_cast<double>(i + 1) /
                      static_cast<double>(points);
        std::size_t idx = static_cast<std::size_t>(
            frac * static_cast<double>(sorted_.size() - 1));
        out.emplace_back(sorted_[idx], frac);
    }
    return out;
}

void
Sampler::reset()
{
    samples_.clear();
    sorted_.clear();
    sortedValid_ = false;
    count_ = 0;
    sum_ = m2_ = mean_ = min_ = max_ = 0.0;
}

void
Sampler::merge(const Sampler &other)
{
    for (double v : other.samples_)
        record(v);
}

} // namespace jord::stats
