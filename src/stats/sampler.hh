/**
 * @file
 * Exact latency sampler with percentile and CDF extraction.
 *
 * Stores every recorded sample (optionally capped with uniform reservoir
 * sampling) and computes exact order statistics on demand. The evaluation
 * uses P99 latency as the primary metric (§5), so percentile fidelity
 * matters more than memory footprint at the scales we simulate.
 */

#ifndef JORD_STATS_SAMPLER_HH
#define JORD_STATS_SAMPLER_HH

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace jord::stats {

/**
 * Collects double-valued samples and answers order-statistic queries.
 */
class Sampler
{
  public:
    /**
     * @param reservoir_cap If non-zero, keep at most this many samples via
     * uniform reservoir sampling (deterministic, seeded internally).
     */
    explicit Sampler(std::size_t reservoir_cap = 0);

    /** Record one sample. */
    void record(double value);

    /** Number of samples recorded (including any evicted by reservoir). */
    std::uint64_t count() const { return count_; }

    /** True if no samples have been recorded. */
    bool empty() const { return count_ == 0; }

    double min() const;
    double max() const;
    double mean() const;
    /** Sample standard deviation (Welford). */
    double stddev() const;

    /**
     * Exact percentile via linear interpolation between closest ranks.
     * @param p Percentile in [0, 100].
     */
    double percentile(double p) const;

    /** Shorthand for the paper's headline metric. */
    double p99() const { return percentile(99.0); }

    double p50() const { return percentile(50.0); }

    /**
     * Extract @p points CDF points as (value, cumulative fraction) pairs,
     * evenly spaced in rank. Used to regenerate Fig. 10.
     */
    std::vector<std::pair<double, double>> cdf(std::size_t points) const;

    /** Discard all samples. */
    void reset();

    /** Merge another sampler's retained samples into this one. */
    void merge(const Sampler &other);

  private:
    std::vector<double> samples_;
    std::size_t reservoirCap_;
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double m2_ = 0.0; // Welford accumulator
    double mean_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
    std::uint64_t rngState_;

    mutable std::vector<double> sorted_;
    mutable bool sortedValid_ = false;

    void ensureSorted() const;
    std::uint64_t nextRand() const;
};

} // namespace jord::stats

#endif // JORD_STATS_SAMPLER_HH
