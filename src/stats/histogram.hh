/**
 * @file
 * Fixed-memory log-linear histogram for latency distributions.
 *
 * Buckets are arranged HDR-style: each power-of-two range is split into a
 * fixed number of linear sub-buckets, giving bounded relative error with a
 * few KB of memory regardless of sample count. Used where the exact
 * Sampler would be too heavy (per-operation hardware latencies).
 */

#ifndef JORD_STATS_HISTOGRAM_HH
#define JORD_STATS_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace jord::stats {

/**
 * Log-linear histogram over non-negative integer values.
 */
class Histogram
{
  public:
    /**
     * @param max_value Largest value that must be representable.
     * @param sub_buckets Linear sub-buckets per power-of-two range;
     * relative quantile error is bounded by 1/sub_buckets.
     */
    explicit Histogram(std::uint64_t max_value = (1ull << 40),
                       unsigned sub_buckets = 32);

    /** Record one value (clamped to the configured maximum). */
    void record(std::uint64_t value);

    /** Record @p weight occurrences of @p value. */
    void recordN(std::uint64_t value, std::uint64_t weight);

    std::uint64_t count() const { return count_; }
    bool empty() const { return count_ == 0; }

    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return count_ ? max_ : 0; }
    double mean() const;

    /** Approximate percentile; @p p in [0, 100]. */
    std::uint64_t percentile(double p) const;

    std::uint64_t p50() const { return percentile(50.0); }
    std::uint64_t p99() const { return percentile(99.0); }

    /** Merge another histogram with identical geometry. */
    void merge(const Histogram &other);

    /** Discard all samples. */
    void reset();

    /** Multi-line ASCII rendering for debugging. */
    std::string render(unsigned rows = 16) const;

  private:
    unsigned subBuckets_;
    unsigned subBucketShift_;
    std::uint64_t maxValue_;
    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_ = 0;
    std::uint64_t min_ = 0;
    std::uint64_t max_ = 0;
    double sum_ = 0.0;

    std::size_t bucketIndex(std::uint64_t value) const;
    std::uint64_t bucketLowerBound(std::size_t index) const;
};

} // namespace jord::stats

#endif // JORD_STATS_HISTOGRAM_HH
