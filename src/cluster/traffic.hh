/**
 * @file
 * Open-loop traffic models for fleet-scale simulation.
 *
 * A TrafficSource turns a shape description — constant-rate Poisson,
 * a diurnal curve, a flash crowd, or a multi-tenant mix with
 * per-tenant SLOs — into one merged, seeded arrival stream tagged
 * with (tenant, session). Every tenant is an independent
 * sim::ModulatedPoissonArrivals process (Lewis-Shedler thinning over
 * the shared sim/arrivals.hh machinery) with its own split-off Rng,
 * so the merged stream is a pure function of (config, seed): streams
 * merge by arrival tick with ties broken by tenant id, and
 * same-seed runs are byte-identical.
 *
 * Rates are open-loop: arrivals model independent users (the paper's
 * "millions of users" deployment target), so the generator never
 * reacts to fleet state — overload shows up as queueing and shedding,
 * never as back-pressure on the source.
 */

#ifndef JORD_CLUSTER_TRAFFIC_HH
#define JORD_CLUSTER_TRAFFIC_HH

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/arrivals.hh"
#include "sim/rng.hh"
#include "sim/types.hh"

namespace jord::cluster {

/** Traffic shapes (jordsim --traffic, bench/fig_cluster). */
enum class TrafficShape {
    Constant, ///< homogeneous Poisson at the base rate
    Diurnal,  ///< sinusoidal rate: base * (1 + amp * sin(2pi t/T))
    Flash,    ///< base rate with a flash-crowd burst window
    Mix,      ///< multi-tenant mix (per-tenant shapes and SLOs)
};

const char *trafficShapeName(TrafficShape shape);

/** One tenant of a multi-tenant mix. */
struct TenantSpec {
    std::string name = "all";
    /** Share of the fleet base rate (weights need not sum to 1). */
    double weight = 1.0;
    /** Per-tenant SLO as a multiple of the fleet SLO. */
    double sloMultiplier = 1.0;
    /** This tenant's own rate shape (Mix tenants differ; for the
     * non-Mix shapes the single implicit tenant carries the shape). */
    TrafficShape shape = TrafficShape::Constant;
    /** Distinct sessions generating this tenant's requests (session
     * ids feed the LB's locality/affinity policy). */
    std::uint32_t sessions = 4096;
};

/** Traffic model configuration. */
struct TrafficConfig {
    TrafficShape shape = TrafficShape::Constant;
    /** Fleet-wide base offered load in MRPS. */
    double mrps = 1.0;
    /** Arrivals are generated for this much simulated time. */
    double durationUs = 20000.0;

    // --- Diurnal parameters ---
    /** Rate swings in [base*(1-amp), base*(1+amp)]. */
    double diurnalAmplitude = 0.6;
    double diurnalPeriodUs = 10000.0;

    // --- Flash-crowd parameters ---
    /** Rate multiplier inside the burst window. */
    double flashFactor = 8.0;
    /** Burst window as fractions of the duration. */
    double flashStartFrac = 0.45;
    double flashEndFrac = 0.60;

    /** Tenants; filled by finalize() when empty (one implicit tenant
     * for the scalar shapes, the default three-tenant mix for Mix). */
    std::vector<TenantSpec> tenants;

    /**
     * Parse a `--traffic` spec: a shape name optionally followed by
     * `:key=value[,key=value...]` overrides (amp, period_ms, factor,
     * start, end). Fatal on an unknown shape or key. The returned
     * config still needs mrps/durationUs and finalize().
     */
    static TrafficConfig parse(const std::string &spec);

    /** Populate default tenants for the shape (idempotent). */
    void finalize();
};

/** One arrival of the merged stream. */
struct Arrival {
    sim::Tick tick = 0;
    std::uint32_t tenant = 0;
    /** Session id (already namespaced per tenant). */
    std::uint64_t session = 0;
};

/**
 * The merged, seeded arrival stream over all tenants.
 */
class TrafficSource
{
  public:
    TrafficSource(const TrafficConfig &cfg, std::uint64_t seed,
                  double freq_ghz = sim::kDefaultFreqGhz);

    /** Next arrival in tick order, or nullopt past the duration. */
    std::optional<Arrival> next();

    std::size_t numTenants() const { return streams_.size(); }
    const TenantSpec &tenant(std::size_t i) const;

    /** End of the generation window in ticks. */
    sim::Tick durationTicks() const { return durationTicks_; }

  private:
    struct Stream {
        TenantSpec spec;
        sim::Rng rng;
        sim::ModulatedPoissonArrivals process;
        /** Tick of this tenant's pending arrival (kTickMax = done). */
        sim::Tick pending = 0;
    };

    void advance(Stream &stream);

    std::vector<Stream> streams_;
    sim::Tick durationTicks_ = 0;
};

} // namespace jord::cluster

#endif // JORD_CLUSTER_TRAFFIC_HH
