/**
 * @file
 * Calibrated per-server model for the fleet simulation.
 *
 * The cluster simulator does not timestep N full machine models in one
 * event loop — that would couple their RNG/event streams and break the
 * per-job determinism contract (DESIGN.md §9). Instead it runs the
 * *real* WorkerServer twice per configuration in a calibration phase
 * (fanned across the host pool like any other sweep):
 *
 *  1. a low-load run captures the end-to-end latency distribution as
 *     an inverse-CDF quantile table, and
 *  2. a saturation run captures the server's capacity in MRPS.
 *
 * The fleet phase then models each server as an M/G/K queue whose K
 * comes from Little's law over the calibrated capacity and mean
 * latency, and whose service times are inverse-CDF draws from the
 * calibrated table. Calibration is a pure function of (workload,
 * WorkerConfig), so fleet results inherit the simulator's fidelity —
 * Jord vs NightCore, shed caps, fault plans — while the fleet loop
 * stays a single deterministic DES.
 */

#ifndef JORD_CLUSTER_SERVER_HH
#define JORD_CLUSTER_SERVER_HH

#include <cstdint>
#include <vector>

#include "runtime/worker.hh"
#include "sim/rng.hh"
#include "workloads/workloads.hh"

namespace jord::par {
class ThreadPool;
} // namespace jord::par

namespace jord::cluster {

/** Calibrated behaviour of one worker-server configuration. */
struct ServerModel {
    /**
     * Low-load end-to-end latency CDF as (latency µs, cumulative
     * fraction) pairs, ascending; drawServiceUs interpolates it.
     */
    std::vector<std::pair<double, double>> latencyQuantilesUs;
    double meanLatencyUs = 0;
    /** Saturation throughput of one server (MRPS). */
    double capacityMrps = 0;
    /**
     * Requests one server works on concurrently: Little's law over
     * (capacityMrps, meanLatencyUs), floored at 1. This is the K of
     * the per-server M/G/K queue.
     */
    std::uint32_t concurrency = 1;
    unsigned numExecutors = 0;

    /** Inverse-CDF service-time draw (one uniform draw). */
    double drawServiceUs(sim::Rng &rng) const;
};

/** Calibration knobs. */
struct CalibrationConfig {
    /** External requests per calibration run. */
    std::uint64_t requests = 20000;
    double warmupFrac = 0.2;
    /** Load for the latency-distribution run (MRPS). */
    double lowLoadMrps = 0.05;
    /** Offered load for the saturation run (MRPS); far beyond any
     * single server's capacity so achieved == capacity. */
    double saturationMrps = 50.0;
    /** Quantile-table resolution. */
    std::size_t cdfPoints = 64;
};

/**
 * Calibrate one server configuration: both runs own a private
 * WorkerServer and fan across @p pool (null = serial); the result is
 * byte-identical either way.
 */
ServerModel calibrateServer(const workloads::Workload &workload,
                            const runtime::WorkerConfig &worker,
                            const CalibrationConfig &cal,
                            par::ThreadPool *pool);

} // namespace jord::cluster

#endif // JORD_CLUSTER_SERVER_HH
