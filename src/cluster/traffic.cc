#include "cluster/traffic.hh"

#include <cmath>
#include <cstdlib>

#include "sim/logging.hh"

namespace jord::cluster {

const char *
trafficShapeName(TrafficShape shape)
{
    switch (shape) {
      case TrafficShape::Constant: return "constant";
      case TrafficShape::Diurnal: return "diurnal";
      case TrafficShape::Flash: return "flash";
      case TrafficShape::Mix: return "mix";
    }
    return "?";
}

namespace {

TrafficShape
parseShape(const std::string &name)
{
    if (name == "constant")
        return TrafficShape::Constant;
    if (name == "diurnal")
        return TrafficShape::Diurnal;
    if (name == "flash")
        return TrafficShape::Flash;
    if (name == "mix")
        return TrafficShape::Mix;
    sim::fatal("unknown traffic shape '%s' "
               "(constant|diurnal|flash|mix)",
               name.c_str());
}

/**
 * Rate profile of one tenant: a multiplier on its base rate as a
 * function of simulated µs, plus the peak the thinning loop needs.
 * The mix's "bursty" tenant reuses the flash profile; the scalar
 * shapes are carried by the single implicit tenant.
 */
struct Profile {
    sim::RateFn rate;
    double peak = 1.0;
};

Profile
makeProfile(const TrafficConfig &cfg, TrafficShape shape)
{
    switch (shape) {
      case TrafficShape::Constant:
      case TrafficShape::Mix: // per-tenant shapes are resolved before here
        return {[](double) { return 1.0; }, 1.0};
      case TrafficShape::Diurnal: {
          double amp = cfg.diurnalAmplitude;
          double period = cfg.diurnalPeriodUs;
          if (amp < 0 || amp >= 1)
              sim::fatal("diurnal amplitude must be in [0, 1), got %g",
                         amp);
          return {[amp, period](double us) {
                      return 1.0 +
                             amp * std::sin(2.0 * M_PI * us / period);
                  },
                  1.0 + amp};
      }
      case TrafficShape::Flash: {
          double lo = cfg.flashStartFrac * cfg.durationUs;
          double hi = cfg.flashEndFrac * cfg.durationUs;
          double factor = cfg.flashFactor;
          if (factor < 1.0)
              sim::fatal("flash factor must be >= 1, got %g", factor);
          return {[lo, hi, factor](double us) {
                      return us >= lo && us < hi ? factor : 1.0;
                  },
                  factor};
      }
    }
    sim::fatal("unreachable traffic shape");
}

} // namespace

TrafficConfig
TrafficConfig::parse(const std::string &spec)
{
    TrafficConfig cfg;
    std::string name = spec;
    std::string params;
    if (std::size_t colon = spec.find(':'); colon != std::string::npos) {
        name = spec.substr(0, colon);
        params = spec.substr(colon + 1);
    }
    cfg.shape = parseShape(name);
    while (!params.empty()) {
        std::string clause;
        if (std::size_t comma = params.find(',');
            comma != std::string::npos) {
            clause = params.substr(0, comma);
            params = params.substr(comma + 1);
        } else {
            clause = params;
            params.clear();
        }
        std::size_t eq = clause.find('=');
        if (eq == std::string::npos)
            sim::fatal("traffic parameter '%s' is not key=value",
                       clause.c_str());
        std::string key = clause.substr(0, eq);
        double value = std::strtod(clause.c_str() + eq + 1, nullptr);
        if (key == "amp")
            cfg.diurnalAmplitude = value;
        else if (key == "period_ms")
            cfg.diurnalPeriodUs = value * 1000.0;
        else if (key == "factor")
            cfg.flashFactor = value;
        else if (key == "start")
            cfg.flashStartFrac = value;
        else if (key == "end")
            cfg.flashEndFrac = value;
        else
            sim::fatal("unknown traffic parameter '%s' "
                       "(amp, period_ms, factor, start, end)",
                       key.c_str());
    }
    return cfg;
}

void
TrafficConfig::finalize()
{
    if (!tenants.empty())
        return;
    if (shape != TrafficShape::Mix) {
        TenantSpec all;
        all.name = "all";
        all.shape = shape;
        tenants.push_back(all);
        return;
    }
    // The default multi-tenant mix: a latency-sensitive interactive
    // service, a throughput-oriented batch tenant riding a diurnal
    // curve, and a small bursty tenant that flash-crowds.
    TenantSpec interactive;
    interactive.name = "interactive";
    interactive.weight = 0.6;
    interactive.sloMultiplier = 1.0;
    interactive.shape = TrafficShape::Constant;
    TenantSpec batch;
    batch.name = "batch";
    batch.weight = 0.3;
    batch.sloMultiplier = 5.0;
    batch.shape = TrafficShape::Diurnal;
    TenantSpec bursty;
    bursty.name = "bursty";
    bursty.weight = 0.1;
    bursty.sloMultiplier = 2.0;
    bursty.shape = TrafficShape::Flash;
    tenants = {interactive, batch, bursty};
}

TrafficSource::TrafficSource(const TrafficConfig &cfg,
                             std::uint64_t seed, double freq_ghz)
{
    TrafficConfig resolved = cfg;
    resolved.finalize();
    if (resolved.mrps <= 0)
        sim::fatal("traffic rate must be positive, got %g MRPS",
                   resolved.mrps);
    if (resolved.durationUs <= 0)
        sim::fatal("traffic duration must be positive, got %g us",
                   resolved.durationUs);
    durationTicks_ = sim::usToCycles(resolved.durationUs, freq_ghz);

    double total_weight = 0;
    for (const TenantSpec &tenant : resolved.tenants)
        total_weight += tenant.weight;
    if (total_weight <= 0)
        sim::fatal("tenant weights sum to %g", total_weight);

    // One independent seeded stream per tenant; the master Rng only
    // splits children, so adding a tenant never perturbs the others.
    sim::Rng master(seed ^ 0x636c757374657221ull);
    streams_.reserve(resolved.tenants.size());
    for (const TenantSpec &tenant : resolved.tenants) {
        Profile profile = makeProfile(resolved, tenant.shape);
        double share = tenant.weight / total_weight;
        double gap =
            sim::meanGapCycles(resolved.mrps * share, freq_ghz);
        Stream stream{tenant, master.split(),
                      sim::ModulatedPoissonArrivals(
                          gap, profile.peak, profile.rate, freq_ghz),
                      0};
        streams_.push_back(std::move(stream));
        advance(streams_.back());
    }
}

const TenantSpec &
TrafficSource::tenant(std::size_t i) const
{
    if (i >= streams_.size())
        sim::panic("tenant index %zu out of range (%zu tenants)", i,
                   streams_.size());
    return streams_[i].spec;
}

void
TrafficSource::advance(Stream &stream)
{
    if (stream.pending == sim::kTickMax)
        return;
    sim::Tick next =
        stream.process.nextArrivalTick(stream.rng, stream.pending);
    stream.pending = next > durationTicks_ ? sim::kTickMax : next;
}

std::optional<Arrival>
TrafficSource::next()
{
    // Merge by pending tick; ties break by tenant id, so the merged
    // order is independent of container iteration quirks.
    std::size_t best = streams_.size();
    for (std::size_t i = 0; i < streams_.size(); ++i) {
        if (streams_[i].pending == sim::kTickMax)
            continue;
        if (best == streams_.size() ||
            streams_[i].pending < streams_[best].pending)
            best = i;
    }
    if (best == streams_.size())
        return std::nullopt;

    Stream &stream = streams_[best];
    Arrival arrival;
    arrival.tick = stream.pending;
    arrival.tenant = static_cast<std::uint32_t>(best);
    arrival.session =
        (static_cast<std::uint64_t>(best) << 32) |
        stream.rng.uniformInt(
            static_cast<std::uint64_t>(stream.spec.sessions));
    advance(stream);
    return arrival;
}

} // namespace jord::cluster
