#include "cluster/server.hh"

#include <algorithm>
#include <cmath>

#include "par/par.hh"
#include "sim/logging.hh"

namespace jord::cluster {

double
ServerModel::drawServiceUs(sim::Rng &rng) const
{
    if (latencyQuantilesUs.empty())
        sim::panic("drawServiceUs on an uncalibrated ServerModel");
    double u = rng.uniform();
    // Linear interpolation along the calibrated CDF; below the first
    // knot the draw clamps to the minimum observed latency.
    const auto &q = latencyQuantilesUs;
    if (u <= q.front().second)
        return q.front().first;
    for (std::size_t i = 1; i < q.size(); ++i) {
        if (u <= q[i].second) {
            double span = q[i].second - q[i - 1].second;
            double frac =
                span > 0 ? (u - q[i - 1].second) / span : 1.0;
            return q[i - 1].first +
                   frac * (q[i].first - q[i - 1].first);
        }
    }
    return q.back().first;
}

ServerModel
calibrateServer(const workloads::Workload &workload,
                const runtime::WorkerConfig &worker,
                const CalibrationConfig &cal, par::ThreadPool *pool)
{
    // Two independent runs, each owning its WorkerServer; fan them
    // like sweep points (DESIGN.md §9).
    struct CalRun {
        runtime::RunResult result;
        unsigned numExecutors = 0;
    };
    const double loads[2] = {cal.lowLoadMrps, cal.saturationMrps};
    std::vector<CalRun> runs = par::orderedMap<CalRun>(
        pool, std::size_t{2},
        [&](std::size_t i) {
            runtime::WorkerServer server(worker, workload.registry);
            CalRun run;
            run.result = server.run(loads[i], cal.requests,
                                    workload.mix, cal.warmupFrac);
            run.numExecutors = server.numExecutors();
            return run;
        });

    const runtime::RunResult &low = runs[0].result;
    const runtime::RunResult &sat = runs[1].result;
    if (low.latencyUs.empty())
        sim::fatal("calibration low-load run completed no requests "
                   "(%g MRPS, %llu requests)",
                   cal.lowLoadMrps,
                   static_cast<unsigned long long>(cal.requests));

    ServerModel model;
    model.latencyQuantilesUs = low.latencyUs.cdf(cal.cdfPoints);
    model.meanLatencyUs = low.latencyUs.mean();
    model.capacityMrps = sat.achievedMrps;
    if (model.capacityMrps <= 0)
        sim::fatal("calibration saturation run achieved no throughput");
    // Little's law: L = lambda * W, with lambda in requests/µs.
    double little = model.capacityMrps * model.meanLatencyUs;
    model.concurrency = static_cast<std::uint32_t>(
        std::max(1.0, std::round(little)));
    model.numExecutors = runs[0].numExecutors;
    return model;
}

} // namespace jord::cluster
