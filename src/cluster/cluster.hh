/**
 * @file
 * Fleet-scale simulation: N worker servers behind a front-end LB.
 *
 * ClusterSim is a serial discrete-event simulation of a fleet of
 * calibrated worker servers (cluster/server.hh) behind a load
 * balancer (cluster/lb.hh), driven by an open-loop traffic model
 * (cluster/traffic.hh) and managed by a function-placement /
 * autoscaling controller. Each server is an M/G/K queue with a warm
 * PD pool per tenant: requests that find no warm slot pay a cold
 * start, completions keep slots warm for a keep-alive window, and the
 * controller prewarms pools and scales the active server set on queue
 * occupancy or SLO burn with hysteresis (distinct high/low
 * thresholds plus a cooldown).
 *
 * The fleet can also run under chaos: the fault plan's `cluster:`
 * clause (fault/fault.hh) injects server crashes (warm pools lost,
 * restart pays a Groundhog-style snapshot-restore cost per re-warmed
 * slot), gray degradation windows, and LB<->server link drops and
 * delays. ResilienceConfig enables the mechanisms that react:
 * heartbeat health checking, LB outlier ejection, hedged requests,
 * a fleet-wide retry budget, and per-(server,tenant) circuit
 * breakers. Every request resolves as exactly one of completed, shed,
 * or failed, so `generated == completed + shed + failed` holds under
 * any fault plan (the chaos bench's conservation gate).
 *
 * Determinism: one ClusterSim run is a pure function of
 * (ClusterConfig, ServerModel). All randomness flows through three
 * seeded streams (traffic, LB dispatch, service draws) plus the fault
 * plan's pure-hash decisions, every event tie fires in schedule order
 * (sim::EventQueue), and the calibration feeding the ServerModel fans
 * across the host pool under the DESIGN.md §9 contract — so fleet
 * results are byte-identical at any --jobs and across same-seed runs,
 * and a zero-rate fault plan leaves them bit-for-bit unchanged.
 */

#ifndef JORD_CLUSTER_CLUSTER_HH
#define JORD_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/lb.hh"
#include "cluster/server.hh"
#include "cluster/traffic.hh"
#include "fault/fault.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "stats/sampler.hh"

namespace jord::trace {
class MetricsRegistry;
} // namespace jord::trace

namespace jord::obs {
class FleetObserver;
struct ServerSnapshot;
} // namespace jord::obs

namespace jord::cluster {

/** Autoscaling-controller policy (hysteresis via distinct high/low
 * thresholds plus a cooldown of control intervals). */
struct AutoscalePolicy {
    bool enabled = false;
    unsigned minServers = 1;
    /** 0 = the cluster's numServers. */
    unsigned maxServers = 0;
    double controlIntervalUs = 500.0;
    /** Scale out when fleet queue occupancy (outstanding / fleet
     * concurrency) exceeds this... */
    double queueHigh = 0.75;
    /** ...and scale in only when it falls below this. */
    double queueLow = 0.25;
    /** Scale out when the fraction of the last interval's completions
     * that missed their SLO exceeds this (SLO-burn trigger). */
    double sloBurnHigh = 0.5;
    /** Control intervals to wait after any scaling action. */
    unsigned cooldownIntervals = 4;
};

/** Warm PD-pool / cold-start model (per server, per tenant). */
struct ColdStartPolicy {
    /** Extra service time when no warm PD slot is available. */
    double coldStartUs = 200.0;
    /** How long a slot stays warm after its last use. */
    double keepAliveUs = 5000.0;
    /** Slots the controller prewarms per (server, tenant) at every
     * control tick (0 = no prewarming; pools then only grow through
     * completions). */
    unsigned prewarm = 4;
};

/**
 * Fault-tolerance mechanisms (all off by default; with every field at
 * its default the simulation is byte-identical to a fault-free run).
 */
struct ResilienceConfig {
    /** Hedge: dispatch a second copy of a still-outstanding request to
     * a distinct server after this delay; first completion wins, the
     * loser is cancelled (0 = off). */
    double hedgeUs = 0;
    /** Hedges are capped at this fraction of generated primaries.
     * Without the cap hedging is bistable: any transient that pushes
     * latency past hedgeUs (a cold-start burst, a crash backlog) makes
     * every request hedge, and the doubled load keeps latency above
     * the trigger forever. */
    double hedgeBudgetFrac = 0.1;
    /** LB outlier ejection: at every control tick, eject active
     * servers whose interval P99 exceeds ejectMult x the fleet median.
     * Re-admission after probationIntervals ticks, doubling with each
     * consecutive re-ejection so a persistently slow server spends
     * vanishing time in the fleet. */
    bool outlierEject = false;
    double ejectMult = 3.0;
    unsigned probationIntervals = 4;
    /** Minimum interval completions before a server's P99 counts. */
    unsigned ejectMinSamples = 16;
    /** Fleet-wide retry budget: failed requests are retried only while
     * total retries stay under this fraction of generated primaries,
     * so a retry storm cannot amplify overload (0 = retries off). */
    double retryBudgetFrac = 0;
    /** Attempts per request beyond the first dispatch. */
    unsigned retryMax = 3;
    /** Heartbeat health checking: the LB stops routing to a server
     * after missedHeartbeats consecutive missed beats and re-admits it
     * on the first beat after restart. Without it the LB keeps
     * dispatching to dead servers and loses those requests. */
    bool healthCheck = false;
    double heartbeatUs = 500.0;
    unsigned missedHeartbeats = 3;
    /** Per-(server,tenant) circuit breaker: breakerThreshold
     * consecutive failures open the breaker for breakerCooldownUs;
     * arrivals routed to an open breaker are shed at admission. */
    bool breaker = false;
    unsigned breakerThreshold = 8;
    double breakerCooldownUs = 2000.0;

    bool
    any() const
    {
        return hedgeUs > 0 || outlierEject || retryBudgetFrac > 0 ||
               healthCheck || breaker;
    }
};

/** Fleet configuration. */
struct ClusterConfig {
    /** Per-server configuration; calibration runs the real simulator
     * on it (cluster/server.hh). */
    runtime::WorkerConfig worker;
    CalibrationConfig calibration;
    unsigned numServers = 4;
    LbPolicy lb = LbPolicy::Random2;
    TrafficConfig traffic;
    AutoscalePolicy autoscale;
    ColdStartPolicy coldStart;
    ResilienceConfig resilience;
    /** Only the plan's `cluster:` clause and seed are read here;
     * function-scope clauses are worker-only. */
    fault::FaultPlan faultPlan;
    /** Per-server outstanding-request cap: arrivals dispatched to a
     * server already holding this many are shed at admission, the
     * fleet-level mirror of WorkerConfig::shedCap (0 = never shed). */
    std::uint32_t serverQueueCap = 0;
    /** Fleet SLO in µs; 0 derives the §5 rule from calibration
     * (10x the low-load mean latency). Tenants scale it by their
     * sloMultiplier. */
    double sloUs = 0;
    /** Leading fraction of the duration excluded from measurement. */
    double warmupFrac = 0.1;
    /**
     * Event-queue domains (issue 10): servers are split into this many
     * contiguous ranges and every per-server event is tagged with its
     * owner's domain (arrivals, LB and control-plane events stay in
     * domain 0). Dispatch keeps the global deterministic order, so
     * results are byte-identical at any value; must not exceed the
     * fleet's maximum server count.
     */
    unsigned numDomains = 1;
    std::uint64_t seed = 42;
};

/** Per-server results. */
struct ServerStats {
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    std::uint64_t coldStarts = 0;
    double p99Us = 0;
    /** Powered-on simulated time (cost contribution). */
    double activeSeconds = 0;
};

/** Per-tenant results (measured window). */
struct TenantStats {
    std::string name;
    double sloUs = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t failed = 0;
    double p99Us = 0;
    /** Fraction of completions that met this tenant's SLO. */
    double sloAttainment = 0;
};

/** One autoscaler action (or the initial state at t = 0). */
struct ScaleEvent {
    double atUs = 0;
    unsigned activeServers = 0;
};

/** Results of one fleet run. */
struct ClusterResult {
    double offeredMrps = 0;
    double achievedMrps = 0;
    /** Completions that met their tenant SLO, per measured µs. */
    double goodputMrps = 0;
    double meanUs = 0;
    double p50Us = 0;
    double p99Us = 0;
    /** Integrated powered-on server time (the cost metric). */
    double costServerSeconds = 0;
    double sloUs = 0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    /** Requests lost to crashes or link drops and not recovered by a
     * hedge or retry (generated == completed + shed + failed). */
    std::uint64_t failed = 0;
    std::uint64_t coldStarts = 0;
    std::uint64_t retries = 0;
    std::uint64_t hedges = 0;
    /** Completions where the hedge copy beat the primary. */
    std::uint64_t hedgeWins = 0;
    std::uint64_t crashes = 0;
    std::uint64_t restarts = 0;
    std::uint64_t ejections = 0;
    std::uint64_t breakerOpens = 0;
    /** Arrivals shed because their (server,tenant) breaker was open
     * (included in `shed`). */
    std::uint64_t breakerShed = 0;
    /** First crash to the fleet being fully up with outstanding back
     * at its pre-crash level: 0 = no crash, -1 = never recovered. */
    double timeToRecoverUs = 0;
    /** In-window requests that missed their SLO or failed, as a
     * fraction of in-window arrivals. */
    double sloBurn = 0;
    std::vector<ServerStats> servers;
    std::vector<TenantStats> tenants;
    /** Initial state plus every autoscaler action, in time order. */
    std::vector<ScaleEvent> scaleEvents;
    unsigned finalActiveServers = 0;
};

/**
 * The fleet simulator. One instance runs once.
 */
class ClusterSim
{
  public:
    ClusterSim(const ClusterConfig &cfg, const ServerModel &model);

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    /**
     * Attach the observability plane (must happen before run()). Null
     * by default; every instrumentation site is one pointer test, so
     * an unobserved run is byte-identical to a build without the
     * plane.
     */
    void setObserver(obs::FleetObserver *obs) { obs_ = obs; }

    /** The fleet's event queue (bench instrumentation: events/sec). */
    sim::EventQueue &eventQueue() { return events_; }

    ClusterResult run();

  private:
    /** Lifecycle of one dispatched copy of a request. */
    enum CopyState : std::uint8_t {
        CopyNone = 0, ///< never dispatched
        CopyQueued,   ///< in a server's admission queue
        CopyInFlight, ///< link-delayed, not yet at the server
        CopyRunning,  ///< executing; completion event pending
        CopyLost,     ///< lost (crash / link drop); detection pending
        CopyDead,     ///< resolved: completed, cancelled, or failed
    };

    struct Copy {
        std::uint32_t server = 0;
        /** Pending event handle (completion, delayed enqueue, or
         * failure detection — depending on state). */
        std::uint64_t ev = 0;
        std::uint8_t state = CopyNone;
    };

    /** Per-request state, kept while any event or queue entry still
     * references the id (refs counts those) and freed after. */
    struct ReqState {
        sim::Tick arrival = 0;
        std::uint32_t tenant = 0;
        std::uint64_t session = 0;
        std::uint8_t attempt = 0;
        bool done = false;
        std::uint64_t hedgeEv = 0;
        int refs = 0;
        Copy copies[2];
    };

    struct QEntry {
        std::uint64_t id;
        std::uint8_t copy;
    };

    struct Server {
        /** Receiving traffic (in the LB's active set). */
        bool inFleet = false;
        /** Accruing cost; a draining server is powered on but out of
         * the fleet until its last request completes. */
        bool poweredOn = false;
        /** Crashed and not yet restarted. */
        bool down = false;
        /** Ejected by the LB outlier detector (on probation). */
        bool ejected = false;
        std::uint32_t running = 0;
        std::deque<QEntry> queue;
        /** (id << 1 | copy) keys of the running copies, in start
         * order, so a crash kills them deterministically. */
        std::vector<std::uint64_t> runningCopies;
        /** Per-tenant warm PD-slot expiry ticks (ascending). */
        std::vector<std::deque<sim::Tick>> warm;
        stats::Histogram latencyNs;
        /** Interval latencies for outlier ejection (reset per control
         * tick; only recorded when ejection is enabled). */
        stats::Sampler intervalUs;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t failed = 0;
        std::uint64_t coldStarts = 0;
        unsigned missedBeats = 0;
        unsigned probation = 0;
        /** Consecutive ejections without a clean interval between
         * them; drives the probation backoff. */
        unsigned ejectStreak = 0;
        sim::Tick poweredOnAt = 0;
        std::uint64_t poweredTicks = 0;
    };

    struct Breaker {
        unsigned fails = 0;
        sim::Tick openUntil = 0;
    };

    static constexpr sim::Tick kNoTick = ~static_cast<sim::Tick>(0);

    static std::uint64_t
    copyKey(std::uint64_t id, unsigned copy)
    {
        return id << 1 | copy;
    }

    void pumpArrival();
    void onArrival(const Arrival &arrival);
    void dispatchCopy(std::uint64_t id, unsigned copy,
                      std::uint32_t s);
    void enqueueCopy(std::uint64_t id, unsigned copy, std::uint32_t s);
    void tryStart(std::uint32_t s);
    void copyCompleted(std::uint64_t id, unsigned copy);
    void copyFailed(std::uint64_t id, unsigned copy);
    void resolveLoser(std::uint64_t id, unsigned copy);
    void hedgeFire(std::uint64_t id);
    void scheduleFaultEvents();
    void crashServer(std::uint32_t s);
    void restartServer(std::uint32_t s);
    void heartbeatTick();
    void outlierTick();
    void checkRecovered();
    void maybeFree(std::uint64_t id);
    double grayFactor(std::uint32_t s) const;
    const std::vector<std::uint32_t> &routable();
    bool breakerOpen(std::uint32_t s, std::uint32_t tenant) const;
    void breakerResult(std::uint32_t s, std::uint32_t tenant, bool ok);
    void controlTick();
    /** Telemetry window boundary: snapshot the fleet, flush, and
     * reschedule while work remains. */
    void obsTick();
    /** Instantaneous per-server queue/running/warm-slot state for the
     * observer (non-mutating: expired warm slots are counted out, not
     * popped). */
    void obsSnapshot(std::vector<obs::ServerSnapshot> &snap) const;
    void accrueOccupancy();
    void powerOn(std::uint32_t s);
    void beginDrain(std::uint32_t s);
    void powerOff(std::uint32_t s);
    void recordScaleEvent();
    bool inWindow(sim::Tick arrival) const
    {
        return arrival >= warmupTicks_;
    }

    const ClusterConfig &cfg_;
    const ServerModel &model_;
    const ResilienceConfig &res_;
    double freqGhz_;
    double sloUs_ = 0;
    sim::Tick warmupTicks_ = 0;
    sim::Tick keepAliveTicks_ = 0;
    sim::Tick windowTicks_ = 0;
    sim::Tick failDetectTicks_ = 0;
    sim::Tick hedgeTicks_ = 0;
    sim::Tick breakerCooldownTicks_ = 0;
    /** The LB view is filtered (health / ejection) only when a
     * mechanism that feeds it is on; otherwise it aliases active_. */
    bool useView_ = false;

    sim::EventQueue events_;

    /** Event-queue domain owning a server (issue 10 partitioning). */
    unsigned
    serverDomain(std::uint32_t server) const
    {
        if (cfg_.numDomains <= 1)
            return 0;
        return static_cast<unsigned>(server) * cfg_.numDomains /
               maxServers_;
    }

    TrafficSource source_;
    LoadBalancer lb_;
    sim::Rng lbRng_;
    sim::Rng serviceRng_;
    fault::ClusterFaultInjector injector_;
    obs::FleetObserver *obs_ = nullptr;

    std::vector<Server> servers_;
    /** Fleet membership for the LB, ascending server ids. */
    std::vector<std::uint32_t> active_;
    /** Per-server outstanding (queued + running), LB's load view. */
    std::vector<std::uint32_t> outstanding_;
    /** LB health view (heartbeat detector); 1 = routable. */
    std::vector<char> healthy_;
    std::vector<std::uint32_t> viewScratch_;
    std::vector<std::uint32_t> hedgeScratch_;
    std::uint32_t totalOutstanding_ = 0;
    bool arrivalsDone_ = false;

    /** Live request table (never iterated; keyed lookups only). */
    std::unordered_map<std::uint64_t, ReqState> table_;
    std::unordered_map<std::uint64_t, Breaker> breakers_;
    std::uint64_t nextReqId_ = 0;

    // Autoscaler state. Occupancy is time-integrated over the control
    // interval (outstanding-requests x ticks), not sampled at the
    // tick: an instantaneous sample near a threshold flaps on Poisson
    // noise, the interval average does not.
    unsigned maxServers_ = 0;
    unsigned cooldown_ = 0;
    std::uint64_t intervalCompleted_ = 0;
    std::uint64_t intervalSloMiss_ = 0;
    std::uint64_t outstandingIntegral_ = 0;
    sim::Tick lastOccupancyUpdate_ = 0;
    sim::Tick intervalStart_ = 0;

    // Chaos accounting.
    std::uint64_t failed_ = 0;
    std::uint64_t failedWindow_ = 0;
    std::uint64_t retries_ = 0;
    std::uint64_t hedges_ = 0;
    std::uint64_t hedgeWins_ = 0;
    std::uint64_t crashes_ = 0;
    std::uint64_t restarts_ = 0;
    std::uint64_t ejections_ = 0;
    std::uint64_t breakerOpens_ = 0;
    std::uint64_t breakerShed_ = 0;
    unsigned downCount_ = 0;
    sim::Tick firstCrashTick_ = kNoTick;
    sim::Tick ttrTicks_ = kNoTick;
    std::uint32_t outstandingAtCrash_ = 0;

    // Measured-window accumulators.
    std::uint64_t generated_ = 0;
    std::uint64_t generatedWindow_ = 0;
    std::uint64_t completedWindow_ = 0;
    std::uint64_t sloOkWindow_ = 0;
    std::vector<stats::Sampler> tenantLatencyUs_;
    std::vector<std::uint64_t> tenantCompleted_;
    std::vector<std::uint64_t> tenantShed_;
    std::vector<std::uint64_t> tenantFailed_;
    std::vector<std::uint64_t> tenantSloOk_;

    ClusterResult result_;
};

/**
 * Convenience wrapper: calibrate the server model (fanning the
 * calibration runs across @p pool; null = serial) and run the fleet.
 */
ClusterResult runCluster(const workloads::Workload &workload,
                         const ClusterConfig &cfg,
                         par::ThreadPool *pool,
                         obs::FleetObserver *obs = nullptr);

/**
 * Register a finished fleet run's statistics into @p registry. Every
 * name carries a `cluster.server<k>.` / `cluster.tenant.<name>.`
 * prefix, so N servers sharing one registry stay distinguishable
 * (the registry's find-or-create lookup would otherwise silently sum
 * same-named metrics).
 */
void attachClusterMetrics(const ClusterResult &result,
                          trace::MetricsRegistry &registry);

} // namespace jord::cluster

#endif // JORD_CLUSTER_CLUSTER_HH
