/**
 * @file
 * Fleet-scale simulation: N worker servers behind a front-end LB.
 *
 * ClusterSim is a serial discrete-event simulation of a fleet of
 * calibrated worker servers (cluster/server.hh) behind a load
 * balancer (cluster/lb.hh), driven by an open-loop traffic model
 * (cluster/traffic.hh) and managed by a function-placement /
 * autoscaling controller. Each server is an M/G/K queue with a warm
 * PD pool per tenant: requests that find no warm slot pay a cold
 * start, completions keep slots warm for a keep-alive window, and the
 * controller prewarms pools and scales the active server set on queue
 * occupancy or SLO burn with hysteresis (distinct high/low
 * thresholds plus a cooldown).
 *
 * Determinism: one ClusterSim run is a pure function of
 * (ClusterConfig, ServerModel). All randomness flows through three
 * seeded streams (traffic, LB dispatch, service draws), every event
 * tie fires in schedule order (sim::EventQueue), and the calibration
 * feeding the ServerModel fans across the host pool under the
 * DESIGN.md §9 contract — so fleet results are byte-identical at any
 * --jobs and across same-seed runs.
 */

#ifndef JORD_CLUSTER_CLUSTER_HH
#define JORD_CLUSTER_CLUSTER_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "cluster/lb.hh"
#include "cluster/server.hh"
#include "cluster/traffic.hh"
#include "sim/event_queue.hh"
#include "stats/histogram.hh"
#include "stats/sampler.hh"

namespace jord::trace {
class MetricsRegistry;
} // namespace jord::trace

namespace jord::cluster {

/** Autoscaling-controller policy (hysteresis via distinct high/low
 * thresholds plus a cooldown of control intervals). */
struct AutoscalePolicy {
    bool enabled = false;
    unsigned minServers = 1;
    /** 0 = the cluster's numServers. */
    unsigned maxServers = 0;
    double controlIntervalUs = 500.0;
    /** Scale out when fleet queue occupancy (outstanding / fleet
     * concurrency) exceeds this... */
    double queueHigh = 0.75;
    /** ...and scale in only when it falls below this. */
    double queueLow = 0.25;
    /** Scale out when the fraction of the last interval's completions
     * that missed their SLO exceeds this (SLO-burn trigger). */
    double sloBurnHigh = 0.5;
    /** Control intervals to wait after any scaling action. */
    unsigned cooldownIntervals = 4;
};

/** Warm PD-pool / cold-start model (per server, per tenant). */
struct ColdStartPolicy {
    /** Extra service time when no warm PD slot is available. */
    double coldStartUs = 200.0;
    /** How long a slot stays warm after its last use. */
    double keepAliveUs = 5000.0;
    /** Slots the controller prewarms per (server, tenant) at every
     * control tick (0 = no prewarming; pools then only grow through
     * completions). */
    unsigned prewarm = 4;
};

/** Fleet configuration. */
struct ClusterConfig {
    /** Per-server configuration; calibration runs the real simulator
     * on it (cluster/server.hh). */
    runtime::WorkerConfig worker;
    CalibrationConfig calibration;
    unsigned numServers = 4;
    LbPolicy lb = LbPolicy::Random2;
    TrafficConfig traffic;
    AutoscalePolicy autoscale;
    ColdStartPolicy coldStart;
    /** Per-server outstanding-request cap: arrivals dispatched to a
     * server already holding this many are shed at admission, the
     * fleet-level mirror of WorkerConfig::shedCap (0 = never shed). */
    std::uint32_t serverQueueCap = 0;
    /** Fleet SLO in µs; 0 derives the §5 rule from calibration
     * (10x the low-load mean latency). Tenants scale it by their
     * sloMultiplier. */
    double sloUs = 0;
    /** Leading fraction of the duration excluded from measurement. */
    double warmupFrac = 0.1;
    std::uint64_t seed = 42;
};

/** Per-server results. */
struct ServerStats {
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t coldStarts = 0;
    double p99Us = 0;
    /** Powered-on simulated time (cost contribution). */
    double activeSeconds = 0;
};

/** Per-tenant results (measured window). */
struct TenantStats {
    std::string name;
    double sloUs = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    double p99Us = 0;
    /** Fraction of completions that met this tenant's SLO. */
    double sloAttainment = 0;
};

/** One autoscaler action (or the initial state at t = 0). */
struct ScaleEvent {
    double atUs = 0;
    unsigned activeServers = 0;
};

/** Results of one fleet run. */
struct ClusterResult {
    double offeredMrps = 0;
    double achievedMrps = 0;
    /** Completions that met their tenant SLO, per measured µs. */
    double goodputMrps = 0;
    double meanUs = 0;
    double p50Us = 0;
    double p99Us = 0;
    /** Integrated powered-on server time (the cost metric). */
    double costServerSeconds = 0;
    double sloUs = 0;
    std::uint64_t generated = 0;
    std::uint64_t completed = 0;
    std::uint64_t shed = 0;
    std::uint64_t coldStarts = 0;
    std::vector<ServerStats> servers;
    std::vector<TenantStats> tenants;
    /** Initial state plus every autoscaler action, in time order. */
    std::vector<ScaleEvent> scaleEvents;
    unsigned finalActiveServers = 0;
};

/**
 * The fleet simulator. One instance runs once.
 */
class ClusterSim
{
  public:
    ClusterSim(const ClusterConfig &cfg, const ServerModel &model);

    ClusterSim(const ClusterSim &) = delete;
    ClusterSim &operator=(const ClusterSim &) = delete;

    ClusterResult run();

  private:
    struct Pending {
        sim::Tick arrival = 0;
        std::uint32_t tenant = 0;
    };

    struct Server {
        /** Receiving traffic (in the LB's active set). */
        bool inFleet = false;
        /** Accruing cost; a draining server is powered on but out of
         * the fleet until its last request completes. */
        bool poweredOn = false;
        std::uint32_t running = 0;
        std::deque<Pending> queue;
        /** Per-tenant warm PD-slot expiry ticks (ascending). */
        std::vector<std::deque<sim::Tick>> warm;
        stats::Histogram latencyNs;
        std::uint64_t completed = 0;
        std::uint64_t shed = 0;
        std::uint64_t coldStarts = 0;
        sim::Tick poweredOnAt = 0;
        std::uint64_t poweredTicks = 0;
    };

    void pumpArrival();
    void onArrival(const Arrival &arrival);
    void tryStart(std::uint32_t s);
    void onCompletion(std::uint32_t s, Pending req);
    void controlTick();
    void accrueOccupancy();
    void powerOn(std::uint32_t s);
    void beginDrain(std::uint32_t s);
    void powerOff(std::uint32_t s);
    void recordScaleEvent();
    bool inWindow(sim::Tick arrival) const
    {
        return arrival >= warmupTicks_;
    }

    const ClusterConfig &cfg_;
    const ServerModel &model_;
    double freqGhz_;
    double sloUs_ = 0;
    sim::Tick warmupTicks_ = 0;
    sim::Tick keepAliveTicks_ = 0;

    sim::EventQueue events_;
    TrafficSource source_;
    LoadBalancer lb_;
    sim::Rng lbRng_;
    sim::Rng serviceRng_;

    std::vector<Server> servers_;
    /** Fleet membership for the LB, ascending server ids. */
    std::vector<std::uint32_t> active_;
    /** Per-server outstanding (queued + running), LB's load view. */
    std::vector<std::uint32_t> outstanding_;
    std::uint32_t totalOutstanding_ = 0;
    bool arrivalsDone_ = false;

    // Autoscaler state. Occupancy is time-integrated over the control
    // interval (outstanding-requests x ticks), not sampled at the
    // tick: an instantaneous sample near a threshold flaps on Poisson
    // noise, the interval average does not.
    unsigned maxServers_ = 0;
    unsigned cooldown_ = 0;
    std::uint64_t intervalCompleted_ = 0;
    std::uint64_t intervalSloMiss_ = 0;
    std::uint64_t outstandingIntegral_ = 0;
    sim::Tick lastOccupancyUpdate_ = 0;
    sim::Tick intervalStart_ = 0;

    // Measured-window accumulators.
    std::uint64_t generated_ = 0;
    std::uint64_t generatedWindow_ = 0;
    std::uint64_t completedWindow_ = 0;
    std::uint64_t sloOkWindow_ = 0;
    std::vector<stats::Sampler> tenantLatencyUs_;
    std::vector<std::uint64_t> tenantCompleted_;
    std::vector<std::uint64_t> tenantShed_;
    std::vector<std::uint64_t> tenantSloOk_;

    ClusterResult result_;
};

/**
 * Convenience wrapper: calibrate the server model (fanning the
 * calibration runs across @p pool; null = serial) and run the fleet.
 */
ClusterResult runCluster(const workloads::Workload &workload,
                         const ClusterConfig &cfg,
                         par::ThreadPool *pool);

/**
 * Register a finished fleet run's statistics into @p registry. Every
 * name carries a `cluster.server<k>.` / `cluster.tenant.<name>.`
 * prefix, so N servers sharing one registry stay distinguishable
 * (the registry's find-or-create lookup would otherwise silently sum
 * same-named metrics).
 */
void attachClusterMetrics(const ClusterResult &result,
                          trace::MetricsRegistry &registry);

} // namespace jord::cluster

#endif // JORD_CLUSTER_CLUSTER_HH
