#include "cluster/lb.hh"

#include "sim/logging.hh"

namespace jord::cluster {

const char *
lbPolicyName(LbPolicy policy)
{
    switch (policy) {
      case LbPolicy::Random: return "random";
      case LbPolicy::Random2: return "random2";
      case LbPolicy::Jsq: return "jsq";
      case LbPolicy::RoundRobin: return "rr";
      case LbPolicy::Affinity: return "affinity";
    }
    return "?";
}

LbPolicy
parseLbPolicy(const std::string &name)
{
    if (name == "random")
        return LbPolicy::Random;
    if (name == "random2")
        return LbPolicy::Random2;
    if (name == "jsq")
        return LbPolicy::Jsq;
    if (name == "rr")
        return LbPolicy::RoundRobin;
    if (name == "affinity")
        return LbPolicy::Affinity;
    sim::fatal("unknown LB policy '%s' "
               "(random|random2|jsq|rr|affinity)",
               name.c_str());
}

std::uint32_t
LoadBalancer::pickRandom2(const std::vector<std::uint32_t> &active,
                          const std::vector<std::uint32_t> &outstanding,
                          sim::Rng &rng)
{
    std::size_t n = active.size();
    if (n == 1)
        return active[0];
    // Two *distinct* positions: draw i from n, j from the remaining
    // n-1 and shift past i. Distinctness is what makes the d=2 bound
    // hold; sampling with replacement would sometimes compare a
    // server against itself.
    std::size_t i = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(n)));
    std::size_t j = static_cast<std::size_t>(
        rng.uniformInt(static_cast<std::uint64_t>(n - 1)));
    if (j >= i)
        ++j;
    std::uint32_t a = active[i];
    std::uint32_t b = active[j];
    if (outstanding[a] != outstanding[b])
        return outstanding[a] < outstanding[b] ? a : b;
    return a < b ? a : b;
}

std::uint32_t
LoadBalancer::pick(const std::vector<std::uint32_t> &active,
                   const std::vector<std::uint32_t> &outstanding,
                   std::uint64_t session, sim::Rng &rng)
{
    if (active.empty())
        sim::panic("LoadBalancer::pick with no active servers");
    switch (policy_) {
      case LbPolicy::Random:
        return active[static_cast<std::size_t>(rng.uniformInt(
            static_cast<std::uint64_t>(active.size())))];
      case LbPolicy::Random2:
        return pickRandom2(active, outstanding, rng);
      case LbPolicy::Jsq: {
          std::uint32_t best = active[0];
          for (std::uint32_t server : active)
              if (outstanding[server] < outstanding[best])
                  best = server; // strict < => lowest-index tie-break
          return best;
      }
      case LbPolicy::RoundRobin:
        return active[static_cast<std::size_t>(rrCursor_++ %
                                               active.size())];
      case LbPolicy::Affinity: {
          // Locality first: a session's home server keeps its warm PD
          // pool and caches hot. Spill with power-of-two-choices once
          // the home queue is deep enough that locality stops paying.
          std::uint32_t home = active[static_cast<std::size_t>(
              session % active.size())];
          if (affinitySpillDepth_ == 0 ||
              outstanding[home] < affinitySpillDepth_)
              return home;
          return pickRandom2(active, outstanding, rng);
      }
    }
    sim::panic("unreachable LB policy");
}

} // namespace jord::cluster
