/**
 * @file
 * Front-end load balancer: pluggable request-dispatch policies.
 *
 * The balancer is pure policy: given the set of active servers, their
 * outstanding-request counts, and the arrival's session id, pick a
 * server index. All randomness flows through the caller's Rng, and
 * every tie breaks on the lower server index, so dispatch decisions
 * are a deterministic function of (policy, seed, cluster history).
 */

#ifndef JORD_CLUSTER_LB_HH
#define JORD_CLUSTER_LB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/rng.hh"

namespace jord::cluster {

/** Dispatch policies (jordsim --lb). */
enum class LbPolicy {
    Random,     ///< uniform random over active servers
    Random2,    ///< power-of-two-choices: two distinct draws, less loaded
    Jsq,        ///< join-shortest-queue over all active servers
    RoundRobin, ///< cycle through active servers
    Affinity,   ///< session-hash locality with spill on overload
};

const char *lbPolicyName(LbPolicy policy);

/** Parse a `--lb` policy name; fatal on an unknown one. */
LbPolicy parseLbPolicy(const std::string &name);

/**
 * The front-end balancer. Stateless apart from the round-robin cursor;
 * the per-server outstanding counts are the caller's (the cluster sim
 * increments on dispatch and decrements on completion or shed).
 */
class LoadBalancer
{
  public:
    explicit LoadBalancer(LbPolicy policy) : policy_(policy) {}

    LbPolicy policy() const { return policy_; }

    /**
     * Pick a server for one arrival.
     *
     * @param active Indices of currently active servers (autoscaling
     * shrinks/grows this set), in ascending order.
     * @param outstanding Per-server outstanding requests, indexed by
     * server id (not by position in @p active).
     * @param session The arrival's session id (Affinity only).
     * @param rng Dispatch randomness (Random/Random2 and Affinity
     * spill); unused draws are never consumed, keeping policies'
     * draw sequences independent.
     * @return A server id out of @p active.
     */
    std::uint32_t pick(const std::vector<std::uint32_t> &active,
                       const std::vector<std::uint32_t> &outstanding,
                       std::uint64_t session, sim::Rng &rng);

    /**
     * Outstanding count at which Affinity abandons the home server and
     * spills via power-of-two-choices (0 disables spilling).
     */
    void setAffinitySpillDepth(std::uint32_t depth)
    {
        affinitySpillDepth_ = depth;
    }

  private:
    std::uint32_t pickRandom2(const std::vector<std::uint32_t> &active,
                              const std::vector<std::uint32_t> &outstanding,
                              sim::Rng &rng);

    LbPolicy policy_;
    std::uint64_t rrCursor_ = 0;
    std::uint32_t affinitySpillDepth_ = 16;
};

} // namespace jord::cluster

#endif // JORD_CLUSTER_LB_HH
