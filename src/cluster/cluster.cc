#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "obs/obs.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"

namespace jord::cluster {

ClusterSim::ClusterSim(const ClusterConfig &cfg,
                       const ServerModel &model)
    : cfg_(cfg), model_(model), res_(cfg.resilience),
      freqGhz_(cfg.worker.machine.freqGhz),
      source_(cfg.traffic, cfg.seed, cfg.worker.machine.freqGhz),
      lb_(cfg.lb),
      // Independent streams so dispatch draws never perturb service
      // draws (and vice versa) as policies change.
      lbRng_(cfg.seed ^ 0x6c6f616462616cull),
      serviceRng_(cfg.seed ^ 0x73657276696365ull)
{
    if (cfg_.numServers == 0)
        sim::fatal("--cluster needs at least one server");
    maxServers_ = cfg_.numServers;
    if (cfg_.autoscale.enabled) {
        if (cfg_.autoscale.minServers == 0)
            sim::fatal("autoscale minServers must be >= 1");
        maxServers_ = std::max(cfg_.numServers,
                               cfg_.autoscale.maxServers == 0
                                   ? cfg_.numServers
                                   : cfg_.autoscale.maxServers);
        if (cfg_.autoscale.minServers > maxServers_)
            sim::fatal("autoscale minServers %u > maxServers %u",
                       cfg_.autoscale.minServers, maxServers_);
    }
    if (cfg_.numDomains == 0 || cfg_.numDomains > maxServers_)
        sim::fatal("numDomains %u must be in [1, %u servers]",
                   cfg_.numDomains, maxServers_);
    events_.setDomains(cfg_.numDomains);
    sloUs_ = cfg_.sloUs > 0 ? cfg_.sloUs : 10.0 * model_.meanLatencyUs;
    warmupTicks_ = static_cast<sim::Tick>(
        static_cast<double>(source_.durationTicks()) *
        cfg_.warmupFrac);
    keepAliveTicks_ =
        sim::usToCycles(cfg_.coldStart.keepAliveUs, freqGhz_);

    injector_.configure(cfg_.faultPlan, cfg_.seed);
    if (injector_.enabled()) {
        const fault::ClusterFaultRates &rates = injector_.rates();
        if (rates.grayServer >= 0 &&
            static_cast<unsigned>(rates.grayServer) >= maxServers_)
            sim::fatal("fault plan: gray_server %d out of range "
                       "(fleet has %u servers)",
                       rates.grayServer, maxServers_);
        windowTicks_ =
            sim::usToCycles(rates.windowMs * 1000.0, freqGhz_);
    }
    // The LB writes off a lost request when it blows through the
    // fleet SLO: the simplest deterministic failure detector.
    failDetectTicks_ = sim::usToCycles(sloUs_, freqGhz_);
    if (res_.hedgeUs > 0)
        hedgeTicks_ = sim::usToCycles(res_.hedgeUs, freqGhz_);
    breakerCooldownTicks_ =
        sim::usToCycles(res_.breakerCooldownUs, freqGhz_);
    useView_ = res_.healthCheck || res_.outlierEject;

    servers_.resize(maxServers_);
    outstanding_.assign(maxServers_, 0);
    healthy_.assign(maxServers_, 1);
    for (Server &server : servers_) {
        server.warm.resize(source_.numTenants());
        server.latencyNs = stats::Histogram(1ull << 40, 64);
    }
    tenantLatencyUs_.resize(source_.numTenants());
    tenantCompleted_.assign(source_.numTenants(), 0);
    tenantShed_.assign(source_.numTenants(), 0);
    tenantFailed_.assign(source_.numTenants(), 0);
    tenantSloOk_.assign(source_.numTenants(), 0);
}

void
ClusterSim::powerOn(std::uint32_t s)
{
    Server &server = servers_[s];
    server.poweredOn = true;
    server.poweredOnAt = events_.curTick();
    // A fresh server boots with prewarmed PD pools (the controller
    // placed the function there before routing traffic to it).
    for (auto &pool : server.warm)
        while (pool.size() < cfg_.coldStart.prewarm)
            pool.push_back(events_.curTick() + keepAliveTicks_);
}

void
ClusterSim::powerOff(std::uint32_t s)
{
    Server &server = servers_[s];
    server.poweredTicks += events_.curTick() - server.poweredOnAt;
    server.poweredOn = false;
}

void
ClusterSim::beginDrain(std::uint32_t s)
{
    servers_[s].inFleet = false;
    active_.erase(std::find(active_.begin(), active_.end(), s));
    if (outstanding_[s] == 0)
        powerOff(s);
}

void
ClusterSim::recordScaleEvent()
{
    ScaleEvent event;
    event.atUs = sim::cyclesToUs(events_.curTick(), freqGhz_);
    event.activeServers = static_cast<unsigned>(active_.size());
    result_.scaleEvents.push_back(event);
}

void
ClusterSim::pumpArrival()
{
    std::optional<Arrival> arrival = source_.next();
    if (!arrival) {
        arrivalsDone_ = true;
        return;
    }
    events_.schedule(arrival->tick, [this, a = *arrival] {
        onArrival(a);
        pumpArrival();
    });
}

const std::vector<std::uint32_t> &
ClusterSim::routable()
{
    if (!useView_)
        return active_;
    viewScratch_.clear();
    for (std::uint32_t s : active_)
        if (healthy_[s] && !servers_[s].ejected)
            viewScratch_.push_back(s);
    // Fail open: when the detector has excluded everything, routing
    // to the full fleet beats routing to nothing.
    if (viewScratch_.empty())
        return active_;
    return viewScratch_;
}

bool
ClusterSim::breakerOpen(std::uint32_t s, std::uint32_t tenant) const
{
    auto it =
        breakers_.find(static_cast<std::uint64_t>(s) << 32 | tenant);
    return it != breakers_.end() &&
           it->second.openUntil > events_.curTick();
}

void
ClusterSim::breakerResult(std::uint32_t s, std::uint32_t tenant,
                          bool ok)
{
    Breaker &breaker =
        breakers_[static_cast<std::uint64_t>(s) << 32 | tenant];
    if (ok) {
        breaker.fails = 0;
        return;
    }
    if (++breaker.fails >= res_.breakerThreshold) {
        breaker.fails = 0;
        breaker.openUntil = events_.curTick() + breakerCooldownTicks_;
        ++breakerOpens_;
    }
}

void
ClusterSim::onArrival(const Arrival &arrival)
{
    ++generated_;
    if (inWindow(arrival.tick))
        ++generatedWindow_;
    std::uint32_t s =
        lb_.pick(routable(), outstanding_, arrival.session, lbRng_);
    Server &server = servers_[s];
    bool breaker_open =
        res_.breaker && breakerOpen(s, arrival.tenant);
    if (breaker_open || (cfg_.serverQueueCap != 0 &&
                         outstanding_[s] >= cfg_.serverQueueCap)) {
        // Admission control: the fleet-level mirror of the worker's
        // orchestrator shed cap — overload (or an open breaker)
        // becomes shed requests, never unbounded queues.
        ++server.shed;
        if (breaker_open)
            ++breakerShed_;
        if (inWindow(arrival.tick))
            ++tenantShed_[arrival.tenant];
        if (obs_)
            obs_->onShed(arrival.tick, arrival.tenant, s,
                         breaker_open);
        return;
    }
    std::uint64_t id = nextReqId_++;
    ReqState &req = table_[id];
    req.arrival = arrival.tick;
    req.tenant = arrival.tenant;
    req.session = arrival.session;
    if (obs_)
        obs_->onArrival(arrival.tick, id, arrival.tenant, s,
                        inWindow(arrival.tick));
    dispatchCopy(id, 0, s);
    if (hedgeTicks_ > 0) {
        req.hedgeEv = events_.scheduleAfter(
            hedgeTicks_, [this, id] { hedgeFire(id); });
        ++req.refs;
    }
}

void
ClusterSim::dispatchCopy(std::uint64_t id, unsigned copy,
                         std::uint32_t s)
{
    ReqState &req = table_.find(id)->second;
    Copy &c = req.copies[copy];
    c.server = s;
    accrueOccupancy();
    ++outstanding_[s];
    ++totalOutstanding_;
    if (obs_)
        obs_->onOutstanding(events_.curTick(), s, outstanding_[s]);
    if (injector_.enabled()) {
        unsigned attempt = req.attempt;
        if (servers_[s].down ||
            injector_.linkDrop(id, attempt, copy)) {
            // The dispatch message is lost (dead server or dropped
            // link); the LB only learns at the failure-detection
            // timeout, so the copy holds its outstanding slot until
            // then.
            if (obs_ && !servers_[s].down)
                obs_->onLinkDrop(events_.curTick(), id, s);
            c.state = CopyLost;
            c.ev = events_.scheduleAfter(
                failDetectTicks_,
                [this, id, copy] { copyFailed(id, copy); });
            ++req.refs;
            return;
        }
        if (injector_.linkDelay(id, attempt, copy)) {
            if (obs_)
                obs_->onLinkDelay(events_.curTick(), id, s);
            c.state = CopyInFlight;
            c.ev = events_.scheduleAfterOn(
                serverDomain(s),
                sim::usToCycles(injector_.rates().linkDelayUs,
                                freqGhz_),
                [this, id, copy, s] {
                    ReqState &r = table_.find(id)->second;
                    --r.refs;
                    if (r.copies[copy].state == CopyInFlight)
                        enqueueCopy(id, copy, s);
                    else
                        maybeFree(id);
                });
            ++req.refs;
            return;
        }
    }
    enqueueCopy(id, copy, s);
}

void
ClusterSim::enqueueCopy(std::uint64_t id, unsigned copy,
                        std::uint32_t s)
{
    ReqState &req = table_.find(id)->second;
    Copy &c = req.copies[copy];
    if (servers_[s].down) {
        // A link-delayed message landing on a box that crashed while
        // it was in flight.
        c.state = CopyLost;
        c.ev = events_.scheduleAfter(
            failDetectTicks_,
            [this, id, copy] { copyFailed(id, copy); });
        ++req.refs;
        return;
    }
    c.state = CopyQueued;
    servers_[s].queue.push_back(
        QEntry{id, static_cast<std::uint8_t>(copy)});
    ++req.refs;
    if (obs_)
        obs_->onQueue(events_.curTick(), id, copy, s);
    tryStart(s);
}

double
ClusterSim::grayFactor(std::uint32_t s) const
{
    if (!injector_.enabled())
        return 1.0;
    std::uint64_t window =
        windowTicks_ ? events_.curTick() / windowTicks_ : 0;
    return injector_.grayWindow(s, window)
               ? injector_.rates().grayMult
               : 1.0;
}

void
ClusterSim::tryStart(std::uint32_t s)
{
    Server &server = servers_[s];
    sim::Tick now = events_.curTick();
    while (server.running < model_.concurrency &&
           !server.queue.empty()) {
        QEntry entry = server.queue.front();
        server.queue.pop_front();
        ReqState &req = table_.find(entry.id)->second;
        Copy &c = req.copies[entry.copy];
        --req.refs;
        if (c.state != CopyQueued) {
            // A cancelled hedge loser; its outstanding slot was
            // already released when it lost.
            maybeFree(entry.id);
            continue;
        }
        auto &pool = server.warm[req.tenant];
        while (!pool.empty() && pool.front() < now)
            pool.pop_front();
        double cold_us = 0;
        if (!pool.empty())
            pool.pop_front();
        else {
            cold_us = cfg_.coldStart.coldStartUs;
            ++server.coldStarts;
        }
        double service_us =
            model_.drawServiceUs(serviceRng_) * grayFactor(s) +
            cold_us;
        ++server.running;
        c.state = CopyRunning;
        if (obs_)
            obs_->onStart(now, entry.id, entry.copy, s, req.tenant,
                          cold_us > 0);
        c.ev = events_.scheduleAfterOn(
            serverDomain(s), sim::usToCycles(service_us, freqGhz_),
            [this, id = entry.id, copy = entry.copy] {
                copyCompleted(id, copy);
            });
        ++req.refs;
        server.runningCopies.push_back(copyKey(entry.id, entry.copy));
    }
}

void
ClusterSim::copyCompleted(std::uint64_t id, unsigned copy)
{
    ReqState &req = table_.find(id)->second;
    Copy &c = req.copies[copy];
    std::uint32_t s = c.server;
    Server &server = servers_[s];
    sim::Tick now = events_.curTick();
    --req.refs;
    c.state = CopyDead;
    server.runningCopies.erase(std::find(server.runningCopies.begin(),
                                         server.runningCopies.end(),
                                         copyKey(id, copy)));
    accrueOccupancy();
    --server.running;
    --outstanding_[s];
    --totalOutstanding_;
    if (obs_)
        obs_->onOutstanding(now, s, outstanding_[s]);
    ++server.completed;
    req.done = true;
    if (copy == 1)
        ++hedgeWins_;

    double latency_us =
        sim::cyclesToUs(now - req.arrival, freqGhz_);
    double tenant_slo =
        sloUs_ * source_.tenant(req.tenant).sloMultiplier;
    ++intervalCompleted_;
    if (latency_us > tenant_slo)
        ++intervalSloMiss_;
    // Outlier detection samples only first-attempt primary
    // completions: their arrival-to-completion time is this server's
    // own queue + service path. A hedge win or retry would attribute
    // time the request spent stuck on a *different* server to this
    // one, masking the true outlier from the detector.
    if (res_.outlierEject && copy == 0 && req.attempt == 0)
        server.intervalUs.record(latency_us);
    if (res_.breaker)
        breakerResult(s, req.tenant, true);
    if (inWindow(req.arrival)) {
        server.latencyNs.record(static_cast<std::uint64_t>(
            sim::cyclesToNs(now - req.arrival, freqGhz_)));
        tenantLatencyUs_[req.tenant].record(latency_us);
        ++tenantCompleted_[req.tenant];
        ++completedWindow_;
        if (latency_us <= tenant_slo) {
            ++tenantSloOk_[req.tenant];
            ++sloOkWindow_;
        }
    }
    // The finished PD stays warm for the keep-alive window.
    server.warm[req.tenant].push_back(now + keepAliveTicks_);

    if (req.hedgeEv) {
        if (events_.cancel(req.hedgeEv))
            --req.refs;
        req.hedgeEv = 0;
    }
    resolveLoser(id, 1 - copy);
    if (obs_)
        obs_->onComplete(now, id, copy, s, req.tenant,
                         static_cast<std::uint64_t>(sim::cyclesToNs(
                             now - req.arrival, freqGhz_)),
                         latency_us > tenant_slo);

    tryStart(s);
    if (!server.inFleet && outstanding_[s] == 0 && server.poweredOn)
        powerOff(s);
    checkRecovered();
    maybeFree(id);
}

void
ClusterSim::resolveLoser(std::uint64_t id, unsigned copy)
{
    ReqState &req = table_.find(id)->second;
    Copy &c = req.copies[copy];
    // A primary that lost to its hedge is outlier evidence against the
    // server that held it: the request sat there at least until the
    // hedge finished elsewhere. Without this right-censored sample a
    // slow server's worst completions are exactly the ones hedging
    // cancels, and the detector starves below ejectMinSamples.
    if (res_.outlierEject && copy == 0 && req.attempt == 0 &&
        (c.state == CopyQueued || c.state == CopyRunning))
        servers_[c.server].intervalUs.record(sim::cyclesToUs(
            events_.curTick() - req.arrival, freqGhz_));
    switch (c.state) {
    case CopyQueued:
        // The entry stays in its server's queue; tryStart skips it.
        // Its outstanding slot frees now (the LB cancelled it).
        c.state = CopyDead;
        accrueOccupancy();
        --outstanding_[c.server];
        --totalOutstanding_;
        if (obs_) {
            obs_->onOutstanding(events_.curTick(), c.server,
                                outstanding_[c.server]);
            obs_->onHedgeLoser(events_.curTick(), id, copy, c.server);
        }
        break;
    case CopyInFlight:
        if (events_.cancel(c.ev))
            --req.refs;
        c.state = CopyDead;
        accrueOccupancy();
        --outstanding_[c.server];
        --totalOutstanding_;
        if (obs_) {
            obs_->onOutstanding(events_.curTick(), c.server,
                                outstanding_[c.server]);
            obs_->onHedgeLoser(events_.curTick(), id, copy, c.server);
        }
        break;
    case CopyRunning: {
        // Cancellation frees the executor mid-request: the winning
        // copy's completion both cancels the loser's completion event
        // and releases its concurrency slot. The loser's PD survives
        // the cancel, so the warm slot it consumed at start goes back
        // to the pool — without this, every hedge win leaks one slot
        // and the fleet bleeds cold starts.
        Server &loser = servers_[c.server];
        if (events_.cancel(c.ev))
            --req.refs;
        loser.runningCopies.erase(
            std::find(loser.runningCopies.begin(),
                      loser.runningCopies.end(), copyKey(id, copy)));
        c.state = CopyDead;
        accrueOccupancy();
        --loser.running;
        --outstanding_[c.server];
        --totalOutstanding_;
        if (obs_) {
            obs_->onOutstanding(events_.curTick(), c.server,
                                outstanding_[c.server]);
            obs_->onHedgeLoser(events_.curTick(), id, copy, c.server);
        }
        loser.warm[req.tenant].push_back(events_.curTick() +
                                         keepAliveTicks_);
        tryStart(c.server);
        break;
    }
    case CopyLost:
        // Nothing to cancel: the detection timeout still fires and
        // releases the slot then.
        break;
    default:
        break;
    }
}

void
ClusterSim::copyFailed(std::uint64_t id, unsigned copy)
{
    ReqState &req = table_.find(id)->second;
    Copy &c = req.copies[copy];
    std::uint32_t s = c.server;
    --req.refs;
    c.state = CopyDead;
    accrueOccupancy();
    --outstanding_[s];
    --totalOutstanding_;
    if (obs_)
        obs_->onOutstanding(events_.curTick(), s, outstanding_[s]);
    if (req.done) {
        // The hedge twin already completed; this was only the LB
        // noticing the lost copy and releasing its slot.
        checkRecovered();
        maybeFree(id);
        return;
    }
    if (res_.breaker)
        breakerResult(s, req.tenant, false);
    const Copy &other = req.copies[1 - copy];
    if (other.state == CopyQueued || other.state == CopyInFlight ||
        other.state == CopyRunning || other.state == CopyLost) {
        // The twin can still win (or will fail on its own timer).
        maybeFree(id);
        return;
    }
    // Retry under the fleet-wide budget, or write the request off.
    bool retry =
        res_.retryBudgetFrac > 0 && req.attempt < res_.retryMax &&
        static_cast<double>(retries_ + 1) <=
            res_.retryBudgetFrac * static_cast<double>(generated_);
    if (retry) {
        std::uint32_t t = lb_.pick(routable(), outstanding_,
                                   req.session, lbRng_);
        if ((res_.breaker && breakerOpen(t, req.tenant)) ||
            (cfg_.serverQueueCap != 0 &&
             outstanding_[t] >= cfg_.serverQueueCap)) {
            retry = false; // nowhere left to send it
        } else {
            ++retries_;
            ++req.attempt;
            if (obs_)
                obs_->onRetry(events_.curTick(), id, req.attempt, t);
            req.copies[0] = Copy{};
            dispatchCopy(id, 0, t);
            checkRecovered();
            return;
        }
    }
    req.done = true;
    ++failed_;
    ++servers_[s].failed;
    ++tenantFailed_[req.tenant];
    if (inWindow(req.arrival))
        ++failedWindow_;
    if (obs_)
        obs_->onFailed(events_.curTick(), id, req.tenant, s);
    checkRecovered();
    maybeFree(id);
}

void
ClusterSim::hedgeFire(std::uint64_t id)
{
    ReqState &req = table_.find(id)->second;
    --req.refs;
    req.hedgeEv = 0;
    // Hedge only the original attempt: a retry already got a second
    // chance out of the retry budget.
    if (req.done || req.attempt > 0) {
        maybeFree(id);
        return;
    }
    if (res_.hedgeBudgetFrac > 0 &&
        static_cast<double>(hedges_ + 1) >
            res_.hedgeBudgetFrac * static_cast<double>(generated_)) {
        maybeFree(id);
        return;
    }
    std::uint32_t primary = req.copies[0].server;
    const std::vector<std::uint32_t> &base = routable();
    sim::Tick now = events_.curTick();
    hedgeScratch_.clear();
    for (std::uint32_t s : base) {
        if (s == primary)
            continue;
        // Warm targets only: a cold-started hedge pays coldStartUs,
        // which dwarfs the SLO — it can never beat the primary it is
        // meant to rescue, and its executor time is pure added load.
        // Expiries are ascending, so the back entry tells us whether
        // any slot is still warm without mutating the pool.
        const auto &pool = servers_[s].warm[req.tenant];
        if (!pool.empty() && pool.back() >= now)
            hedgeScratch_.push_back(s);
    }
    if (hedgeScratch_.empty()) {
        maybeFree(id);
        return;
    }
    std::uint32_t s = lb_.pick(hedgeScratch_, outstanding_,
                               req.session, lbRng_);
    if ((cfg_.serverQueueCap != 0 &&
         outstanding_[s] >= cfg_.serverQueueCap) ||
        (res_.breaker && breakerOpen(s, req.tenant))) {
        // Hedges are best-effort: a full or broken target means no
        // second copy, never a shed.
        maybeFree(id);
        return;
    }
    ++hedges_;
    if (obs_)
        obs_->onHedge(now, id, s);
    dispatchCopy(id, 1, s);
}

void
ClusterSim::scheduleFaultEvents()
{
    if (!injector_.enabled())
        return;
    const fault::ClusterFaultRates &rates = injector_.rates();
    if (rates.serverCrash > 0 && windowTicks_ > 0) {
        std::uint64_t windows =
            source_.durationTicks() / windowTicks_;
        for (std::uint64_t w = 0; w < windows; ++w)
            for (std::uint32_t s = 0; s < maxServers_; ++s)
                if (injector_.crashes(s, w)) {
                    double frac = injector_.crashOffset(s, w);
                    events_.scheduleOn(
                        serverDomain(s),
                        w * windowTicks_ +
                            static_cast<sim::Tick>(
                                frac * static_cast<double>(
                                           windowTicks_)),
                        [this, s] { crashServer(s); });
                }
    }
    if (rates.crashAtMs >= 0) {
        sim::Tick at =
            sim::usToCycles(rates.crashAtMs * 1000.0, freqGhz_);
        auto count = static_cast<std::uint32_t>(
            std::ceil(rates.crashFrac *
                      static_cast<double>(cfg_.numServers)));
        count = std::min(count, cfg_.numServers);
        for (std::uint32_t s = 0; s < count; ++s)
            events_.scheduleOn(serverDomain(s), at,
                               [this, s] { crashServer(s); });
    }
}

void
ClusterSim::crashServer(std::uint32_t s)
{
    Server &server = servers_[s];
    if (!server.poweredOn || server.down)
        return;
    ++crashes_;
    if (obs_)
        obs_->onCrash(events_.curTick(), s);
    if (firstCrashTick_ == kNoTick) {
        firstCrashTick_ = events_.curTick();
        outstandingAtCrash_ = totalOutstanding_;
    }
    server.down = true;
    ++downCount_;
    // The crash destroys all warm PD state and kills every queued and
    // running request on the box; the LB only learns per request at
    // the failure-detection timeout (or, with health checking on, the
    // heartbeat detector stops routing there sooner).
    for (auto &pool : server.warm)
        pool.clear();
    while (!server.queue.empty()) {
        QEntry entry = server.queue.front();
        server.queue.pop_front();
        ReqState &req = table_.find(entry.id)->second;
        Copy &c = req.copies[entry.copy];
        --req.refs;
        if (c.state == CopyQueued && !req.done) {
            c.state = CopyLost;
            c.ev = events_.scheduleAfter(
                failDetectTicks_,
                [this, id = entry.id, copy = entry.copy] {
                    copyFailed(id, copy);
                });
            ++req.refs;
        } else {
            maybeFree(entry.id);
        }
    }
    for (std::uint64_t key : server.runningCopies) {
        std::uint64_t id = key >> 1;
        auto copy = static_cast<unsigned>(key & 1);
        ReqState &req = table_.find(id)->second;
        Copy &c = req.copies[copy];
        if (events_.cancel(c.ev))
            --req.refs;
        c.state = CopyLost;
        c.ev = events_.scheduleAfter(
            failDetectTicks_,
            [this, id, copy] { copyFailed(id, copy); });
        ++req.refs;
    }
    server.runningCopies.clear();
    server.running = 0;
    // Groundhog-style recovery: a base reboot plus a snapshot-restore
    // cost per warm slot the restarted server re-prewarms, so the
    // richer the pool state the crash destroyed, the longer the
    // outage.
    double recover_us =
        injector_.rates().restartMs * 1000.0 +
        injector_.rates().recoverUsPerSlot *
            static_cast<double>(cfg_.coldStart.prewarm) *
            static_cast<double>(source_.numTenants());
    events_.scheduleAfterOn(serverDomain(s),
                            sim::usToCycles(recover_us, freqGhz_),
                            [this, s] { restartServer(s); });
}

void
ClusterSim::restartServer(std::uint32_t s)
{
    Server &server = servers_[s];
    server.down = false;
    --downCount_;
    ++restarts_;
    if (obs_)
        obs_->onRestart(events_.curTick(), s);
    server.missedBeats = 0;
    // The snapshot restore we just paid for brings the pools back.
    if (server.poweredOn)
        for (auto &pool : server.warm)
            while (pool.size() < cfg_.coldStart.prewarm)
                pool.push_back(events_.curTick() + keepAliveTicks_);
    checkRecovered();
}

void
ClusterSim::heartbeatTick()
{
    for (std::uint32_t s = 0; s < maxServers_; ++s) {
        Server &server = servers_[s];
        if (server.down) {
            if (server.missedBeats < res_.missedHeartbeats)
                ++server.missedBeats;
            if (server.missedBeats >= res_.missedHeartbeats)
                healthy_[s] = 0;
        } else {
            server.missedBeats = 0;
            healthy_[s] = 1;
        }
    }
    if (!arrivalsDone_ || totalOutstanding_ > 0)
        events_.scheduleAfter(
            sim::usToCycles(res_.heartbeatUs, freqGhz_),
            [this] { heartbeatTick(); });
}

void
ClusterSim::outlierTick()
{
    // Interval P99s of the active servers with enough samples; eject
    // any above ejectMult x the fleet median, re-admit after
    // probation (a still-gray server just gets re-ejected).
    std::vector<double> p99s;
    for (std::uint32_t s : active_) {
        Server &server = servers_[s];
        if (server.ejected) {
            if (server.probation > 0 && --server.probation == 0)
                server.ejected = false;
            continue;
        }
        if (!server.down &&
            server.intervalUs.count() >= res_.ejectMinSamples)
            p99s.push_back(server.intervalUs.p99());
    }
    if (p99s.size() >= 2) {
        std::vector<double> sorted = p99s;
        std::sort(sorted.begin(), sorted.end());
        double median = sorted[(sorted.size() - 1) / 2];
        for (std::uint32_t s : active_) {
            Server &server = servers_[s];
            if (server.ejected || server.down ||
                server.intervalUs.count() < res_.ejectMinSamples)
                continue;
            if (server.intervalUs.p99() > res_.ejectMult * median) {
                // Probation backs off exponentially with consecutive
                // re-ejections: a persistently gray server would
                // otherwise re-pollute the fleet for a full detection
                // interval on every re-admission.
                server.ejected = true;
                server.probation = res_.probationIntervals
                                   << std::min(server.ejectStreak, 6u);
                ++server.ejectStreak;
                ++ejections_;
            } else {
                server.ejectStreak = 0;
            }
        }
    }
    for (Server &server : servers_)
        server.intervalUs.reset();
}

void
ClusterSim::checkRecovered()
{
    if (firstCrashTick_ != kNoTick && ttrTicks_ == kNoTick &&
        downCount_ == 0 && totalOutstanding_ <= outstandingAtCrash_)
        ttrTicks_ = events_.curTick() - firstCrashTick_;
}

void
ClusterSim::maybeFree(std::uint64_t id)
{
    auto it = table_.find(id);
    if (it != table_.end() && it->second.refs == 0)
        table_.erase(it);
}

void
ClusterSim::obsSnapshot(std::vector<obs::ServerSnapshot> &snap) const
{
    sim::Tick now = events_.curTick();
    snap.clear();
    snap.reserve(maxServers_);
    for (std::uint32_t s = 0; s < maxServers_; ++s) {
        const Server &server = servers_[s];
        obs::ServerSnapshot entry;
        entry.queued =
            static_cast<std::uint32_t>(server.queue.size());
        entry.running = server.running;
        // Expiries are ascending; count the live tail without
        // mutating the pools.
        for (const auto &pool : server.warm)
            entry.warmSlots += static_cast<std::uint64_t>(
                pool.end() -
                std::lower_bound(pool.begin(), pool.end(), now));
        snap.push_back(entry);
    }
}

void
ClusterSim::obsTick()
{
    std::vector<obs::ServerSnapshot> snap;
    obsSnapshot(snap);
    obs_->flushWindow(events_.curTick(), snap);
    if (!arrivalsDone_ || totalOutstanding_ > 0)
        events_.scheduleAfter(obs_->windowTicks(),
                              [this] { obsTick(); });
}

void
ClusterSim::accrueOccupancy()
{
    sim::Tick now = events_.curTick();
    outstandingIntegral_ +=
        static_cast<std::uint64_t>(totalOutstanding_) *
        (now - lastOccupancyUpdate_);
    lastOccupancyUpdate_ = now;
}

void
ClusterSim::controlTick()
{
    sim::Tick now = events_.curTick();
    accrueOccupancy();
    if (cfg_.autoscale.enabled) {
        double interval_ticks =
            static_cast<double>(now - intervalStart_);
        double avg_outstanding =
            interval_ticks > 0
                ? static_cast<double>(outstandingIntegral_) /
                      interval_ticks
                : 0.0;
        double fleet_conc = static_cast<double>(active_.size()) *
                            static_cast<double>(model_.concurrency);
        double occupancy =
            fleet_conc > 0 ? avg_outstanding / fleet_conc : 0.0;
        double burn = intervalCompleted_
                          ? static_cast<double>(intervalSloMiss_) /
                                static_cast<double>(intervalCompleted_)
                          : 0.0;
        if (cooldown_ > 0) {
            --cooldown_;
        } else if ((occupancy > cfg_.autoscale.queueHigh ||
                    burn > cfg_.autoscale.sloBurnHigh) &&
                   active_.size() < maxServers_) {
            // Scale out: reuse the lowest-index parked server (a
            // draining one is re-enlisted without a power cycle).
            // A crashed server is not a capacity candidate.
            for (std::uint32_t s = 0; s < maxServers_; ++s) {
                if (servers_[s].inFleet || servers_[s].down)
                    continue;
                if (!servers_[s].poweredOn)
                    powerOn(s);
                servers_[s].inFleet = true;
                active_.insert(std::lower_bound(active_.begin(),
                                                active_.end(), s),
                               s);
                break;
            }
            cooldown_ = cfg_.autoscale.cooldownIntervals;
            recordScaleEvent();
        } else if (occupancy < cfg_.autoscale.queueLow &&
                   burn <= cfg_.autoscale.sloBurnHigh &&
                   active_.size() > cfg_.autoscale.minServers) {
            // Scale in: drain the highest-index active server; it
            // powers off once its outstanding requests finish.
            beginDrain(active_.back());
            cooldown_ = cfg_.autoscale.cooldownIntervals;
            recordScaleEvent();
        }
    }
    intervalCompleted_ = 0;
    intervalSloMiss_ = 0;
    outstandingIntegral_ = 0;
    intervalStart_ = now;

    if (res_.outlierEject)
        outlierTick();

    // PD-pool scaling: replenish each active server's warm pools to
    // the prewarm target so steady traffic rarely cold-starts. A
    // crashed server's pools stay empty until its restart restores
    // them.
    if (cfg_.coldStart.prewarm > 0) {
        for (std::uint32_t s : active_) {
            if (servers_[s].down)
                continue;
            for (auto &pool : servers_[s].warm) {
                while (!pool.empty() && pool.front() < now)
                    pool.pop_front();
                while (pool.size() < cfg_.coldStart.prewarm)
                    pool.push_back(now + keepAliveTicks_);
            }
        }
    }

    if (!arrivalsDone_ || totalOutstanding_ > 0)
        events_.scheduleAfter(
            sim::usToCycles(cfg_.autoscale.controlIntervalUs,
                            freqGhz_),
            [this] { controlTick(); });
}

ClusterResult
ClusterSim::run()
{
    unsigned initial = cfg_.numServers;
    if (cfg_.autoscale.enabled)
        initial = std::clamp(initial, cfg_.autoscale.minServers,
                             maxServers_);
    for (std::uint32_t s = 0; s < initial; ++s) {
        powerOn(s);
        servers_[s].inFleet = true;
        active_.push_back(s);
    }
    recordScaleEvent();

    pumpArrival();
    if (cfg_.autoscale.enabled || cfg_.coldStart.prewarm > 0 ||
        res_.outlierEject)
        events_.scheduleAfter(
            sim::usToCycles(cfg_.autoscale.controlIntervalUs,
                            freqGhz_),
            [this] { controlTick(); });
    if (res_.healthCheck)
        events_.scheduleAfter(
            sim::usToCycles(res_.heartbeatUs, freqGhz_),
            [this] { heartbeatTick(); });
    scheduleFaultEvents();
    if (obs_) {
        if (obs_->config().windowed())
            events_.scheduleAfter(obs_->windowTicks(),
                                  [this] { obsTick(); });
        // Gray ground truth is a pure replay of the injector's hash
        // decisions, so it can be enumerated up front.
        if (injector_.enabled() && windowTicks_ > 0) {
            std::uint64_t windows =
                source_.durationTicks() / windowTicks_ + 1;
            for (const fault::GrayIncident &gray :
                 injector_.grayIncidents(maxServers_, windows))
                obs_->onGrayRun(gray.beginWindow * windowTicks_,
                                gray.endWindow * windowTicks_,
                                gray.server);
        } else if (injector_.enabled() &&
                   injector_.rates().grayServer >= 0) {
            obs_->onGrayRun(0, source_.durationTicks(),
                            static_cast<std::uint32_t>(
                                injector_.rates().grayServer));
        }
    }
    events_.run();

    sim::Tick end = events_.curTick();
    if (obs_) {
        std::vector<obs::ServerSnapshot> snap;
        obsSnapshot(snap);
        obs_->finalize(end, snap);
    }
    for (std::uint32_t s = 0; s < maxServers_; ++s)
        if (servers_[s].poweredOn) {
            servers_[s].poweredTicks += end - servers_[s].poweredOnAt;
            servers_[s].poweredOnAt = end;
        }

    double window_us = sim::cyclesToUs(
        source_.durationTicks() - warmupTicks_, freqGhz_);
    result_.sloUs = sloUs_;
    result_.generated = generated_;
    result_.offeredMrps =
        static_cast<double>(generatedWindow_) / window_us;
    result_.achievedMrps =
        static_cast<double>(completedWindow_) / window_us;
    result_.goodputMrps =
        static_cast<double>(sloOkWindow_) / window_us;

    // Fleet-wide latency: merge the per-server histograms (identical
    // geometry by construction).
    stats::Histogram fleet(1ull << 40, 64);
    for (const Server &server : servers_) {
        fleet.merge(server.latencyNs);
        result_.completed += server.completed;
        result_.shed += server.shed;
        result_.coldStarts += server.coldStarts;
    }
    if (!fleet.empty()) {
        result_.meanUs = fleet.mean() / 1000.0;
        result_.p50Us =
            static_cast<double>(fleet.p50()) / 1000.0;
        result_.p99Us =
            static_cast<double>(fleet.p99()) / 1000.0;
    }

    result_.failed = failed_;
    result_.retries = retries_;
    result_.hedges = hedges_;
    result_.hedgeWins = hedgeWins_;
    result_.crashes = crashes_;
    result_.restarts = restarts_;
    result_.ejections = ejections_;
    result_.breakerOpens = breakerOpens_;
    result_.breakerShed = breakerShed_;
    if (crashes_ == 0)
        result_.timeToRecoverUs = 0;
    else if (ttrTicks_ != kNoTick)
        result_.timeToRecoverUs =
            sim::cyclesToUs(ttrTicks_, freqGhz_);
    else
        result_.timeToRecoverUs = -1;
    if (generatedWindow_ > 0)
        result_.sloBurn =
            static_cast<double>(completedWindow_ - sloOkWindow_ +
                                failedWindow_) /
            static_cast<double>(generatedWindow_);

    double ticks_per_second = freqGhz_ * 1e9;
    for (std::uint32_t s = 0; s < maxServers_; ++s) {
        const Server &server = servers_[s];
        ServerStats stats;
        stats.completed = server.completed;
        stats.shed = server.shed;
        stats.failed = server.failed;
        stats.coldStarts = server.coldStarts;
        if (!server.latencyNs.empty())
            stats.p99Us =
                static_cast<double>(server.latencyNs.p99()) / 1000.0;
        stats.activeSeconds =
            static_cast<double>(server.poweredTicks) /
            ticks_per_second;
        result_.costServerSeconds += stats.activeSeconds;
        result_.servers.push_back(stats);
    }

    for (std::size_t t = 0; t < source_.numTenants(); ++t) {
        const TenantSpec &spec = source_.tenant(t);
        TenantStats stats;
        stats.name = spec.name;
        stats.sloUs = sloUs_ * spec.sloMultiplier;
        stats.completed = tenantCompleted_[t];
        stats.shed = tenantShed_[t];
        stats.failed = tenantFailed_[t];
        if (!tenantLatencyUs_[t].empty())
            stats.p99Us = tenantLatencyUs_[t].p99();
        if (tenantCompleted_[t] > 0)
            stats.sloAttainment =
                static_cast<double>(tenantSloOk_[t]) /
                static_cast<double>(tenantCompleted_[t]);
        result_.tenants.push_back(stats);
    }

    result_.finalActiveServers = static_cast<unsigned>(active_.size());
    return result_;
}

ClusterResult
runCluster(const workloads::Workload &workload,
           const ClusterConfig &cfg, par::ThreadPool *pool,
           obs::FleetObserver *obs)
{
    ServerModel model =
        calibrateServer(workload, cfg.worker, cfg.calibration, pool);
    ClusterSim sim(cfg, model);
    if (obs)
        sim.setObserver(obs);
    return sim.run();
}

void
attachClusterMetrics(const ClusterResult &result,
                     trace::MetricsRegistry &registry)
{
    registry.counter("cluster.generated").add(result.generated);
    registry.counter("cluster.completed").add(result.completed);
    registry.counter("cluster.shed").add(result.shed);
    registry.counter("cluster.cold_starts").add(result.coldStarts);
    registry.gauge("cluster.goodput_mrps").set(result.goodputMrps, 0);
    registry.gauge("cluster.p99_us").set(result.p99Us, 0);
    registry.gauge("cluster.cost_server_s")
        .set(result.costServerSeconds, 0);
    // Chaos metrics only appear when chaos (or a mechanism) actually
    // produced activity, so fault-free runs keep their metric set —
    // and their output bytes — unchanged.
    if (result.failed || result.retries || result.hedges ||
        result.crashes || result.restarts || result.ejections ||
        result.breakerOpens) {
        registry.counter("cluster.failed").add(result.failed);
        registry.counter("cluster.retries").add(result.retries);
        registry.counter("cluster.hedges").add(result.hedges);
        registry.counter("cluster.hedge_wins").add(result.hedgeWins);
        registry.counter("cluster.crashes").add(result.crashes);
        registry.counter("cluster.restarts").add(result.restarts);
        registry.counter("cluster.ejections").add(result.ejections);
        registry.counter("cluster.breaker_opens")
            .add(result.breakerOpens);
        registry.counter("cluster.breaker_shed")
            .add(result.breakerShed);
        registry.gauge("cluster.ttr_us")
            .set(result.timeToRecoverUs, 0);
        registry.gauge("cluster.slo_burn").set(result.sloBurn, 0);
    }
    for (std::size_t s = 0; s < result.servers.size(); ++s) {
        const ServerStats &server = result.servers[s];
        std::string prefix =
            "cluster.server" + std::to_string(s) + ".";
        registry.counter(prefix + "completed").add(server.completed);
        registry.counter(prefix + "shed").add(server.shed);
        if (server.failed)
            registry.counter(prefix + "failed").add(server.failed);
        registry.counter(prefix + "cold_starts")
            .add(server.coldStarts);
        registry.gauge(prefix + "p99_us").set(server.p99Us, 0);
        registry.gauge(prefix + "active_s")
            .set(server.activeSeconds, 0);
    }
    for (const TenantStats &tenant : result.tenants) {
        std::string prefix = "cluster.tenant." + tenant.name + ".";
        registry.counter(prefix + "completed").add(tenant.completed);
        registry.counter(prefix + "shed").add(tenant.shed);
        if (tenant.failed)
            registry.counter(prefix + "failed").add(tenant.failed);
        registry.gauge(prefix + "p99_us").set(tenant.p99Us, 0);
        registry.gauge(prefix + "slo_attainment")
            .set(tenant.sloAttainment, 0);
    }
}

} // namespace jord::cluster
