#include "cluster/cluster.hh"

#include <algorithm>
#include <cmath>
#include <optional>

#include "sim/logging.hh"
#include "trace/metrics.hh"

namespace jord::cluster {

ClusterSim::ClusterSim(const ClusterConfig &cfg,
                       const ServerModel &model)
    : cfg_(cfg), model_(model),
      freqGhz_(cfg.worker.machine.freqGhz),
      source_(cfg.traffic, cfg.seed, cfg.worker.machine.freqGhz),
      lb_(cfg.lb),
      // Independent streams so dispatch draws never perturb service
      // draws (and vice versa) as policies change.
      lbRng_(cfg.seed ^ 0x6c6f616462616cull),
      serviceRng_(cfg.seed ^ 0x73657276696365ull)
{
    if (cfg_.numServers == 0)
        sim::fatal("--cluster needs at least one server");
    maxServers_ = cfg_.numServers;
    if (cfg_.autoscale.enabled) {
        if (cfg_.autoscale.minServers == 0)
            sim::fatal("autoscale minServers must be >= 1");
        maxServers_ = std::max(cfg_.numServers,
                               cfg_.autoscale.maxServers == 0
                                   ? cfg_.numServers
                                   : cfg_.autoscale.maxServers);
        if (cfg_.autoscale.minServers > maxServers_)
            sim::fatal("autoscale minServers %u > maxServers %u",
                       cfg_.autoscale.minServers, maxServers_);
    }
    sloUs_ = cfg_.sloUs > 0 ? cfg_.sloUs : 10.0 * model_.meanLatencyUs;
    warmupTicks_ = static_cast<sim::Tick>(
        static_cast<double>(source_.durationTicks()) *
        cfg_.warmupFrac);
    keepAliveTicks_ =
        sim::usToCycles(cfg_.coldStart.keepAliveUs, freqGhz_);

    servers_.resize(maxServers_);
    outstanding_.assign(maxServers_, 0);
    for (Server &server : servers_) {
        server.warm.resize(source_.numTenants());
        server.latencyNs = stats::Histogram(1ull << 40, 64);
    }
    tenantLatencyUs_.resize(source_.numTenants());
    tenantCompleted_.assign(source_.numTenants(), 0);
    tenantShed_.assign(source_.numTenants(), 0);
    tenantSloOk_.assign(source_.numTenants(), 0);
}

void
ClusterSim::powerOn(std::uint32_t s)
{
    Server &server = servers_[s];
    server.poweredOn = true;
    server.poweredOnAt = events_.curTick();
    // A fresh server boots with prewarmed PD pools (the controller
    // placed the function there before routing traffic to it).
    for (auto &pool : server.warm)
        while (pool.size() < cfg_.coldStart.prewarm)
            pool.push_back(events_.curTick() + keepAliveTicks_);
}

void
ClusterSim::powerOff(std::uint32_t s)
{
    Server &server = servers_[s];
    server.poweredTicks += events_.curTick() - server.poweredOnAt;
    server.poweredOn = false;
}

void
ClusterSim::beginDrain(std::uint32_t s)
{
    servers_[s].inFleet = false;
    active_.erase(std::find(active_.begin(), active_.end(), s));
    if (outstanding_[s] == 0)
        powerOff(s);
}

void
ClusterSim::recordScaleEvent()
{
    ScaleEvent event;
    event.atUs = sim::cyclesToUs(events_.curTick(), freqGhz_);
    event.activeServers = static_cast<unsigned>(active_.size());
    result_.scaleEvents.push_back(event);
}

void
ClusterSim::pumpArrival()
{
    std::optional<Arrival> arrival = source_.next();
    if (!arrival) {
        arrivalsDone_ = true;
        return;
    }
    events_.schedule(arrival->tick, [this, a = *arrival] {
        onArrival(a);
        pumpArrival();
    });
}

void
ClusterSim::onArrival(const Arrival &arrival)
{
    ++generated_;
    if (inWindow(arrival.tick))
        ++generatedWindow_;
    std::uint32_t s =
        lb_.pick(active_, outstanding_, arrival.session, lbRng_);
    Server &server = servers_[s];
    if (cfg_.serverQueueCap != 0 &&
        outstanding_[s] >= cfg_.serverQueueCap) {
        // Admission control: the fleet-level mirror of the worker's
        // orchestrator shed cap — overload becomes shed requests,
        // never unbounded queues.
        ++server.shed;
        if (inWindow(arrival.tick))
            ++tenantShed_[arrival.tenant];
        return;
    }
    accrueOccupancy();
    ++outstanding_[s];
    ++totalOutstanding_;
    server.queue.push_back(Pending{arrival.tick, arrival.tenant});
    tryStart(s);
}

void
ClusterSim::tryStart(std::uint32_t s)
{
    Server &server = servers_[s];
    sim::Tick now = events_.curTick();
    while (server.running < model_.concurrency &&
           !server.queue.empty()) {
        Pending req = server.queue.front();
        server.queue.pop_front();
        auto &pool = server.warm[req.tenant];
        while (!pool.empty() && pool.front() < now)
            pool.pop_front();
        double cold_us = 0;
        if (!pool.empty())
            pool.pop_front();
        else {
            cold_us = cfg_.coldStart.coldStartUs;
            ++server.coldStarts;
        }
        double service_us = model_.drawServiceUs(serviceRng_) + cold_us;
        ++server.running;
        events_.scheduleAfter(
            sim::usToCycles(service_us, freqGhz_),
            [this, s, req] { onCompletion(s, req); });
    }
}

void
ClusterSim::onCompletion(std::uint32_t s, Pending req)
{
    Server &server = servers_[s];
    sim::Tick now = events_.curTick();
    accrueOccupancy();
    --server.running;
    --outstanding_[s];
    --totalOutstanding_;
    ++server.completed;

    double latency_us =
        sim::cyclesToUs(now - req.arrival, freqGhz_);
    double tenant_slo =
        sloUs_ * source_.tenant(req.tenant).sloMultiplier;
    ++intervalCompleted_;
    if (latency_us > tenant_slo)
        ++intervalSloMiss_;
    if (inWindow(req.arrival)) {
        server.latencyNs.record(static_cast<std::uint64_t>(
            sim::cyclesToNs(now - req.arrival, freqGhz_)));
        tenantLatencyUs_[req.tenant].record(latency_us);
        ++tenantCompleted_[req.tenant];
        ++completedWindow_;
        if (latency_us <= tenant_slo) {
            ++tenantSloOk_[req.tenant];
            ++sloOkWindow_;
        }
    }
    // The finished PD stays warm for the keep-alive window.
    server.warm[req.tenant].push_back(now + keepAliveTicks_);

    tryStart(s);
    if (!server.inFleet && outstanding_[s] == 0 && server.poweredOn)
        powerOff(s);
}

void
ClusterSim::accrueOccupancy()
{
    sim::Tick now = events_.curTick();
    outstandingIntegral_ +=
        static_cast<std::uint64_t>(totalOutstanding_) *
        (now - lastOccupancyUpdate_);
    lastOccupancyUpdate_ = now;
}

void
ClusterSim::controlTick()
{
    sim::Tick now = events_.curTick();
    accrueOccupancy();
    if (cfg_.autoscale.enabled) {
        double interval_ticks =
            static_cast<double>(now - intervalStart_);
        double avg_outstanding =
            interval_ticks > 0
                ? static_cast<double>(outstandingIntegral_) /
                      interval_ticks
                : 0.0;
        double fleet_conc = static_cast<double>(active_.size()) *
                            static_cast<double>(model_.concurrency);
        double occupancy =
            fleet_conc > 0 ? avg_outstanding / fleet_conc : 0.0;
        double burn = intervalCompleted_
                          ? static_cast<double>(intervalSloMiss_) /
                                static_cast<double>(intervalCompleted_)
                          : 0.0;
        if (cooldown_ > 0) {
            --cooldown_;
        } else if ((occupancy > cfg_.autoscale.queueHigh ||
                    burn > cfg_.autoscale.sloBurnHigh) &&
                   active_.size() < maxServers_) {
            // Scale out: reuse the lowest-index parked server (a
            // draining one is re-enlisted without a power cycle).
            for (std::uint32_t s = 0; s < maxServers_; ++s) {
                if (servers_[s].inFleet)
                    continue;
                if (!servers_[s].poweredOn)
                    powerOn(s);
                servers_[s].inFleet = true;
                active_.insert(std::lower_bound(active_.begin(),
                                                active_.end(), s),
                               s);
                break;
            }
            cooldown_ = cfg_.autoscale.cooldownIntervals;
            recordScaleEvent();
        } else if (occupancy < cfg_.autoscale.queueLow &&
                   burn <= cfg_.autoscale.sloBurnHigh &&
                   active_.size() > cfg_.autoscale.minServers) {
            // Scale in: drain the highest-index active server; it
            // powers off once its outstanding requests finish.
            beginDrain(active_.back());
            cooldown_ = cfg_.autoscale.cooldownIntervals;
            recordScaleEvent();
        }
    }
    intervalCompleted_ = 0;
    intervalSloMiss_ = 0;
    outstandingIntegral_ = 0;
    intervalStart_ = now;

    // PD-pool scaling: replenish each active server's warm pools to
    // the prewarm target so steady traffic rarely cold-starts.
    if (cfg_.coldStart.prewarm > 0) {
        for (std::uint32_t s : active_) {
            for (auto &pool : servers_[s].warm) {
                while (!pool.empty() && pool.front() < now)
                    pool.pop_front();
                while (pool.size() < cfg_.coldStart.prewarm)
                    pool.push_back(now + keepAliveTicks_);
            }
        }
    }

    if (!arrivalsDone_ || totalOutstanding_ > 0)
        events_.scheduleAfter(
            sim::usToCycles(cfg_.autoscale.controlIntervalUs,
                            freqGhz_),
            [this] { controlTick(); });
}

ClusterResult
ClusterSim::run()
{
    unsigned initial = cfg_.numServers;
    if (cfg_.autoscale.enabled)
        initial = std::clamp(initial, cfg_.autoscale.minServers,
                             maxServers_);
    for (std::uint32_t s = 0; s < initial; ++s) {
        powerOn(s);
        servers_[s].inFleet = true;
        active_.push_back(s);
    }
    recordScaleEvent();

    pumpArrival();
    if (cfg_.autoscale.enabled || cfg_.coldStart.prewarm > 0)
        events_.scheduleAfter(
            sim::usToCycles(cfg_.autoscale.controlIntervalUs,
                            freqGhz_),
            [this] { controlTick(); });
    events_.run();

    sim::Tick end = events_.curTick();
    for (std::uint32_t s = 0; s < maxServers_; ++s)
        if (servers_[s].poweredOn) {
            servers_[s].poweredTicks += end - servers_[s].poweredOnAt;
            servers_[s].poweredOnAt = end;
        }

    double window_us = sim::cyclesToUs(
        source_.durationTicks() - warmupTicks_, freqGhz_);
    result_.sloUs = sloUs_;
    result_.generated = generated_;
    result_.offeredMrps =
        static_cast<double>(generatedWindow_) / window_us;
    result_.achievedMrps =
        static_cast<double>(completedWindow_) / window_us;
    result_.goodputMrps =
        static_cast<double>(sloOkWindow_) / window_us;

    // Fleet-wide latency: merge the per-server histograms (identical
    // geometry by construction).
    stats::Histogram fleet(1ull << 40, 64);
    for (const Server &server : servers_) {
        fleet.merge(server.latencyNs);
        result_.completed += server.completed;
        result_.shed += server.shed;
        result_.coldStarts += server.coldStarts;
    }
    if (!fleet.empty()) {
        result_.meanUs = fleet.mean() / 1000.0;
        result_.p50Us =
            static_cast<double>(fleet.p50()) / 1000.0;
        result_.p99Us =
            static_cast<double>(fleet.p99()) / 1000.0;
    }

    double ticks_per_second = freqGhz_ * 1e9;
    for (std::uint32_t s = 0; s < maxServers_; ++s) {
        const Server &server = servers_[s];
        ServerStats stats;
        stats.completed = server.completed;
        stats.shed = server.shed;
        stats.coldStarts = server.coldStarts;
        if (!server.latencyNs.empty())
            stats.p99Us =
                static_cast<double>(server.latencyNs.p99()) / 1000.0;
        stats.activeSeconds =
            static_cast<double>(server.poweredTicks) /
            ticks_per_second;
        result_.costServerSeconds += stats.activeSeconds;
        result_.servers.push_back(stats);
    }

    for (std::size_t t = 0; t < source_.numTenants(); ++t) {
        const TenantSpec &spec = source_.tenant(t);
        TenantStats stats;
        stats.name = spec.name;
        stats.sloUs = sloUs_ * spec.sloMultiplier;
        stats.completed = tenantCompleted_[t];
        stats.shed = tenantShed_[t];
        if (!tenantLatencyUs_[t].empty())
            stats.p99Us = tenantLatencyUs_[t].p99();
        if (tenantCompleted_[t] > 0)
            stats.sloAttainment =
                static_cast<double>(tenantSloOk_[t]) /
                static_cast<double>(tenantCompleted_[t]);
        result_.tenants.push_back(stats);
    }

    result_.finalActiveServers = static_cast<unsigned>(active_.size());
    return result_;
}

ClusterResult
runCluster(const workloads::Workload &workload,
           const ClusterConfig &cfg, par::ThreadPool *pool)
{
    ServerModel model =
        calibrateServer(workload, cfg.worker, cfg.calibration, pool);
    ClusterSim sim(cfg, model);
    return sim.run();
}

void
attachClusterMetrics(const ClusterResult &result,
                     trace::MetricsRegistry &registry)
{
    registry.counter("cluster.generated").add(result.generated);
    registry.counter("cluster.completed").add(result.completed);
    registry.counter("cluster.shed").add(result.shed);
    registry.counter("cluster.cold_starts").add(result.coldStarts);
    registry.gauge("cluster.goodput_mrps").set(result.goodputMrps, 0);
    registry.gauge("cluster.p99_us").set(result.p99Us, 0);
    registry.gauge("cluster.cost_server_s")
        .set(result.costServerSeconds, 0);
    for (std::size_t s = 0; s < result.servers.size(); ++s) {
        const ServerStats &server = result.servers[s];
        std::string prefix =
            "cluster.server" + std::to_string(s) + ".";
        registry.counter(prefix + "completed").add(server.completed);
        registry.counter(prefix + "shed").add(server.shed);
        registry.counter(prefix + "cold_starts")
            .add(server.coldStarts);
        registry.gauge(prefix + "p99_us").set(server.p99Us, 0);
        registry.gauge(prefix + "active_s")
            .set(server.activeSeconds, 0);
    }
    for (const TenantStats &tenant : result.tenants) {
        std::string prefix = "cluster.tenant." + tenant.name + ".";
        registry.counter(prefix + "completed").add(tenant.completed);
        registry.counter(prefix + "shed").add(tenant.shed);
        registry.gauge(prefix + "p99_us").set(tenant.p99Us, 0);
        registry.gauge(prefix + "slo_attainment")
            .set(tenant.sloAttainment, 0);
    }
}

} // namespace jord::cluster
