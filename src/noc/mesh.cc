#include "noc/mesh.hh"

#include <algorithm>
#include <cstdlib>

#include "sim/logging.hh"

namespace jord::noc {

Mesh::Mesh(const sim::MachineConfig &cfg) : cfg_(cfg)
{
    tilesPerSocket_ = cfg.meshCols * cfg.meshRows;
    if (tilesPerSocket_ * cfg.numSockets != cfg.numCores) {
        sim::fatal("mesh %ux%u x %u sockets does not cover %u cores",
                   cfg.meshCols, cfg.meshRows, cfg.numSockets,
                   cfg.numCores);
    }
}

Coord
Mesh::coordOf(unsigned tile) const
{
    unsigned local = tile % tilesPerSocket_;
    return Coord{local % cfg_.meshCols, local / cfg_.meshCols};
}

unsigned
Mesh::hops(unsigned tile_a, unsigned tile_b) const
{
    Coord a = coordOf(tile_a);
    Coord b = coordOf(tile_b);
    return static_cast<unsigned>(
        std::abs(static_cast<int>(a.col) - static_cast<int>(b.col)) +
        std::abs(static_cast<int>(a.row) - static_cast<int>(b.row)));
}

unsigned
Mesh::flits(MsgKind kind) const
{
    if (kind == MsgKind::Control)
        return 1;
    return 1 + (sim::kCacheBlockBytes + cfg_.linkBytes - 1) /
                   cfg_.linkBytes;
}

sim::Cycles
Mesh::latency(unsigned src, unsigned dst, MsgKind kind) const
{
    // Serialization: the tail flit arrives (flits - 1) cycles after the
    // head under wormhole routing with one flit/cycle links.
    sim::Cycles serialize = flits(kind) - 1;
    if (!crossSocket(src, dst)) {
        if (src == dst)
            return serialize; // local slice: no hops
        return hops(src, dst) * cfg_.hopCycles + serialize;
    }
    // Cross-socket: route to the local edge router (column 0), traverse
    // the socket link, then route from the remote edge to the target.
    Coord src_c = coordOf(src);
    Coord dst_c = coordOf(dst);
    unsigned edge_hops = src_c.col + dst_c.col +
        static_cast<unsigned>(
            std::abs(static_cast<int>(src_c.row) -
                     static_cast<int>(dst_c.row)));
    return edge_hops * cfg_.hopCycles + cfg_.interSocketCycles + serialize;
}

sim::Cycles
Mesh::roundTrip(unsigned src, unsigned dst, MsgKind kind) const
{
    return latency(src, dst, MsgKind::Control) + latency(dst, src, kind);
}

double
Mesh::avgLatencyFrom(unsigned src, MsgKind kind) const
{
    double total = 0.0;
    for (unsigned t = 0; t < numTiles(); ++t)
        total += static_cast<double>(latency(src, t, kind));
    return total / static_cast<double>(numTiles());
}

sim::Tick
Mesh::minCrossDomainLookahead(unsigned domains) const
{
    if (domains <= 1)
        return sim::kTickMax;
    sim::Tick best = sim::kTickMax;
    for (unsigned src = 0; src < numTiles(); ++src) {
        for (unsigned dst = 0; dst < numTiles(); ++dst) {
            if (cfg_.domainOf(src, domains) == cfg_.domainOf(dst, domains))
                continue;
            best = std::min<sim::Tick>(best,
                                       latency(src, dst, MsgKind::Control));
        }
    }
    return best;
}

unsigned
Mesh::homeSlice(sim::Addr block_addr, unsigned from_tile) const
{
    // Mix the block index so consecutive blocks spread across slices.
    sim::Addr block = block_addr / sim::kCacheBlockBytes;
    block ^= block >> 17;
    block *= 0xff51afd7ed558ccdull;
    block ^= block >> 33;
    unsigned socket = cfg_.socketOf(from_tile);
    return socket * tilesPerSocket_ +
           static_cast<unsigned>(block % tilesPerSocket_);
}

} // namespace jord::noc
