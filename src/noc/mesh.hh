/**
 * @file
 * 2D-mesh network-on-chip latency model.
 *
 * The modelled machine (Table 2) has one core + one LLC slice per mesh
 * tile, 16 B links and 3 cycles/hop with XY dimension-ordered routing.
 * Multi-socket machines replicate the mesh per socket and add a fixed
 * inter-socket latency (260 ns, following AMD Zen5 Turin, §5) for any
 * message crossing the socket boundary.
 *
 * The model is contention-free: the evaluation's coherence-bound effects
 * come from message counts and distances, not link congestion.
 */

#ifndef JORD_NOC_MESH_HH
#define JORD_NOC_MESH_HH

#include <cstdint>

#include "sim/machine.hh"
#include "sim/types.hh"

namespace jord::noc {

/** What is being carried: a control flit or a full cache block. */
enum class MsgKind {
    Control, ///< single-flit request/ack/invalidate
    Data,    ///< cache-block payload (64 B = 4 flits on 16 B links)
};

/** Tile coordinate inside one socket's mesh. */
struct Coord {
    unsigned col;
    unsigned row;
};

/**
 * Latency oracle for the on-chip (and cross-socket) interconnect.
 *
 * Tiles are identified by global core id: core i sits on tile i and hosts
 * LLC slice i. For multi-socket configs, core ids are split evenly across
 * sockets and each socket has its own private mesh.
 */
class Mesh
{
  public:
    explicit Mesh(const sim::MachineConfig &cfg);

    /** Tiles per socket. */
    unsigned tilesPerSocket() const { return tilesPerSocket_; }

    /** Total tiles (== total cores == total LLC slices). */
    unsigned numTiles() const { return cfg_.numCores; }

    /** Coordinate of a tile within its socket's mesh. */
    Coord coordOf(unsigned tile) const;

    /** Manhattan hop count between two tiles on the same socket. */
    unsigned hops(unsigned tile_a, unsigned tile_b) const;

    /**
     * One-way message latency from tile @p src to tile @p dst.
     *
     * Same-socket: hops * hopCycles plus serialization of extra flits.
     * Cross-socket: each tile routes to its socket edge, then pays the
     * inter-socket link latency.
     */
    sim::Cycles latency(unsigned src, unsigned dst, MsgKind kind) const;

    /** Round-trip: request out, response back (response carries @p kind). */
    sim::Cycles roundTrip(unsigned src, unsigned dst, MsgKind kind) const;

    /** Average one-way control latency from @p src to all tiles. */
    double avgLatencyFrom(unsigned src, MsgKind kind) const;

    /**
     * Home LLC slice for a physical block address (static address
     * interleaving across all slices of the socket that owns @p from —
     * the LLC is per-socket, so homes are chosen in the requester's
     * socket).
     */
    unsigned homeSlice(sim::Addr block_addr, unsigned from_tile) const;

    /** Flits needed for a message kind. */
    unsigned flits(MsgKind kind) const;

    /**
     * Minimum one-way control-message latency between any two tiles in
     * *different* domains under MachineConfig::domainOf partitioning.
     * This is the conservative lookahead for epoch-parallel execution:
     * no event running in one domain can affect another domain sooner
     * than this many cycles in the future. Returns kTickMax when
     * @p domains <= 1 (no cross-domain pairs: unbounded lookahead).
     */
    sim::Tick minCrossDomainLookahead(unsigned domains) const;

    /** True if the two tiles live on different sockets. */
    bool
    crossSocket(unsigned a, unsigned b) const
    {
        return cfg_.socketOf(a) != cfg_.socketOf(b);
    }

    const sim::MachineConfig &config() const { return cfg_; }

  private:
    sim::MachineConfig cfg_;
    unsigned tilesPerSocket_;
};

} // namespace jord::noc

#endif // JORD_NOC_MESH_HH
