/**
 * @file
 * Enhanced-NightCore baseline model (§5).
 *
 * NightCore [35] uses provisioned containers and optimizes intra-server
 * communication with OS pipes and SysV shared memory. The paper enhances
 * it to its upper bound: launchers and workers run as plain threads in a
 * single address space with thread pinning and the same JBSQ dispatch as
 * Jord, so its performance "is primarily limited by OS pipes".
 *
 * This header models exactly that limit: per-message pipe costs (syscall
 * work that burns CPU on both endpoints, data copies, and a scheduler
 * wake-up that adds latency but not load) and the 0.8 ms worker
 * provisioning cost NightCore pays when a function's concurrency grows
 * beyond what is provisioned (§6.2).
 */

#ifndef JORD_BASELINE_NIGHTCORE_HH
#define JORD_BASELINE_NIGHTCORE_HH

#include <cstdint>

#include "sim/types.hh"

namespace jord::baseline {

/** Cost model for one pipe message between two pinned threads. */
struct PipeCosts {
    /** write(2): syscall entry/exit + pipe-buffer copy-in setup. */
    sim::Cycles writeSyscall = sim::nsToCycles(350.0);
    /** read(2): syscall entry/exit + copy-out setup. */
    sim::Cycles readSyscall = sim::nsToCycles(350.0);
    /** Futex/scheduler wake-up of the blocked reader. */
    sim::Cycles wakeupLatency = sim::nsToCycles(800.0);
    /** Copy throughput through the pipe buffer (per byte, per side). */
    double copyCyclesPerByte = 0.25;

    /** Busy cycles the sender burns to push @p bytes. */
    sim::Cycles
    sendBusy(std::uint64_t bytes) const
    {
        return writeSyscall +
               static_cast<sim::Cycles>(copyCyclesPerByte *
                                        static_cast<double>(bytes));
    }

    /** Busy cycles the receiver burns to pull @p bytes. */
    sim::Cycles
    recvBusy(std::uint64_t bytes) const
    {
        return readSyscall +
               static_cast<sim::Cycles>(copyCyclesPerByte *
                                        static_cast<double>(bytes));
    }

    /** Extra latency before the receiver starts running. */
    sim::Cycles recvLatency() const { return wakeupLatency; }
};

/** Worker-pool provisioning model. */
struct ProvisioningModel {
    /** Preparing a worker process for a function (NightCore, §6.2). */
    sim::Cycles provisionCycles = sim::usToCycles(800.0);
    /**
     * Workers provisioned per function before the run starts. The §6.1
     * comparison is at steady state, so the default is generous; lower
     * it to study cold-start behaviour (0.8 ms per provisioning).
     */
    unsigned preProvisioned = 64;
};

} // namespace jord::baseline

#endif // JORD_BASELINE_NIGHTCORE_HH
