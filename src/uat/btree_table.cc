#include "uat/btree_table.hh"

#include <algorithm>

#include "sim/logging.hh"

namespace jord::uat {

using sim::Addr;

/**
 * B+tree node. Internal nodes store keys[i] = smallest key in
 * children[i+1]'s subtree; leaves store (key, vteIdx) pairs.
 */
struct BTreeVmaTable::Node {
    bool leaf = true;
    std::vector<Addr> keys;
    std::vector<std::unique_ptr<Node>> children; // internal only
    std::vector<std::uint32_t> values;           // leaf only
    Addr nodeAddr = 0;
};

BTreeVmaTable::BTreeVmaTable(const VaEncoding &encoding)
    : encoding_(encoding), nextNodeAddr_(kBtreeNodeBase)
{
    root_ = std::make_unique<Node>();
    root_->nodeAddr = nextNodeAddr_;
    nextNodeAddr_ += sim::kCacheBlockBytes;
}

BTreeVmaTable::~BTreeVmaTable() = default;

bool
BTreeVmaTable::contains(Addr addr) const
{
    return (addr >= kBtreeNodeBase && addr < nextNodeAddr_) ||
           (addr >= kBtreeVteBase &&
            addr < kBtreeVteBase +
                       vtePool_.size() * sim::kCacheBlockBytes);
}

std::uint32_t
BTreeVmaTable::allocVte()
{
    if (!vteFree_.empty()) {
        std::uint32_t idx = vteFree_.back();
        vteFree_.pop_back();
        vtePool_[idx] = Vte{};
        return idx;
    }
    vtePool_.emplace_back();
    return static_cast<std::uint32_t>(vtePool_.size() - 1);
}

void
BTreeVmaTable::freeVte(std::uint32_t idx)
{
    vtePool_[idx] = Vte{};
    vteFree_.push_back(idx);
}

BTreeVmaTable::Node *
BTreeVmaTable::findLeaf(Addr key, std::vector<Addr> *path) const
{
    Node *node = root_.get();
    while (true) {
        if (path)
            path->push_back(node->nodeAddr);
        if (node->leaf)
            return node;
        // First child whose subtree may contain the key.
        unsigned pos = static_cast<unsigned>(
            std::upper_bound(node->keys.begin(), node->keys.end(), key) -
            node->keys.begin());
        node = node->children[pos].get();
    }
}

TableWalk
BTreeVmaTable::walk(Addr va) const
{
    TableWalk out;
    auto base = encoding_.vmaBase(va);
    if (!base)
        return out;
    Node *leaf = findLeaf(*base, &out.readAddrs);
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(),
                               *base);
    if (it == leaf->keys.end() || *it != *base) {
        // Key absent: the walker learns the VA is unmapped only after
        // the full traversal; report the path but no VTE.
        return out;
    }
    std::uint32_t idx =
        leaf->values[static_cast<unsigned>(it - leaf->keys.begin())];
    out.vteAddr = kBtreeVteBase + idx * sim::kCacheBlockBytes;
    out.readAddrs.push_back(out.vteAddr);
    out.vte = &vtePool_[idx];
    out.vmaBase = *base;
    return out;
}

Vte *
BTreeVmaTable::vteFor(Addr vma_base)
{
    TableWalk w = walk(vma_base);
    return w.vte ? const_cast<Vte *>(w.vte) : nullptr;
}

Addr
BTreeVmaTable::vteAddrOf(Addr vma_base) const
{
    return walk(vma_base).vteAddr;
}

void
BTreeVmaTable::splitChild(Node *parent, unsigned child_pos,
                          TableUpdate &upd)
{
    Node *child = parent->children[child_pos].get();
    auto sibling = std::make_unique<Node>();
    sibling->leaf = child->leaf;
    sibling->nodeAddr = nextNodeAddr_;
    nextNodeAddr_ += sim::kCacheBlockBytes;

    unsigned mid = kBtreeOrder / 2;
    Addr up_key;
    if (child->leaf) {
        up_key = child->keys[mid];
        sibling->keys.assign(child->keys.begin() + mid,
                             child->keys.end());
        sibling->values.assign(child->values.begin() + mid,
                               child->values.end());
        child->keys.resize(mid);
        child->values.resize(mid);
    } else {
        up_key = child->keys[mid];
        sibling->keys.assign(child->keys.begin() + mid + 1,
                             child->keys.end());
        for (unsigned i = mid + 1; i < child->children.size(); ++i)
            sibling->children.push_back(std::move(child->children[i]));
        child->keys.resize(mid);
        child->children.resize(mid + 1);
    }

    parent->keys.insert(parent->keys.begin() + child_pos, up_key);
    parent->children.insert(parent->children.begin() + child_pos + 1,
                            std::move(sibling));
    upd.writeAddrs.push_back(child->nodeAddr);
    upd.writeAddrs.push_back(
        parent->children[child_pos + 1]->nodeAddr);
    upd.writeAddrs.push_back(parent->nodeAddr);
}

void
BTreeVmaTable::insertIntoLeaf(Node *leaf, Addr key,
                              std::uint32_t vte_idx, TableUpdate &upd)
{
    auto it = std::lower_bound(leaf->keys.begin(), leaf->keys.end(), key);
    unsigned pos = static_cast<unsigned>(it - leaf->keys.begin());
    leaf->keys.insert(it, key);
    leaf->values.insert(leaf->values.begin() + pos, vte_idx);
    upd.writeAddrs.push_back(leaf->nodeAddr);
}

TableUpdate
BTreeVmaTable::noteInsert(Addr vma_base)
{
    TableUpdate upd;
    // Root split first if full (preemptive split insertion).
    if (root_->keys.size() >= kBtreeOrder) {
        auto new_root = std::make_unique<Node>();
        new_root->leaf = false;
        new_root->nodeAddr = nextNodeAddr_;
        nextNodeAddr_ += sim::kCacheBlockBytes;
        new_root->children.push_back(std::move(root_));
        root_ = std::move(new_root);
        splitChild(root_.get(), 0, upd);
    }

    Node *node = root_.get();
    while (!node->leaf) {
        upd.readAddrs.push_back(node->nodeAddr);
        unsigned pos = static_cast<unsigned>(
            std::upper_bound(node->keys.begin(), node->keys.end(),
                             vma_base) -
            node->keys.begin());
        Node *child = node->children[pos].get();
        if (child->keys.size() >= kBtreeOrder) {
            splitChild(node, pos, upd);
            if (vma_base >= node->keys[pos])
                ++pos;
            child = node->children[pos].get();
        }
        node = child;
    }
    upd.readAddrs.push_back(node->nodeAddr);

    auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                               vma_base);
    if (it != node->keys.end() && *it == vma_base)
        return upd; // duplicate: caller misuse, report !ok

    insertIntoLeaf(node, vma_base, allocVte(), upd);
    ++numValid_;
    upd.ok = true;
    return upd;
}

void
BTreeVmaTable::rebalanceChild(Node *parent, unsigned child_pos,
                              TableUpdate &upd)
{
    const unsigned min_fill = kBtreeMinFill;
    Node *child = parent->children[child_pos].get();
    Node *left = child_pos > 0 ? parent->children[child_pos - 1].get()
                               : nullptr;
    Node *right = child_pos + 1 < parent->children.size()
                      ? parent->children[child_pos + 1].get()
                      : nullptr;

    if (left && left->keys.size() > min_fill) {
        // Borrow from the left sibling.
        if (child->leaf) {
            child->keys.insert(child->keys.begin(), left->keys.back());
            child->values.insert(child->values.begin(),
                                 left->values.back());
            left->keys.pop_back();
            left->values.pop_back();
            parent->keys[child_pos - 1] = child->keys.front();
        } else {
            child->keys.insert(child->keys.begin(),
                               parent->keys[child_pos - 1]);
            parent->keys[child_pos - 1] = left->keys.back();
            left->keys.pop_back();
            child->children.insert(child->children.begin(),
                                   std::move(left->children.back()));
            left->children.pop_back();
        }
        upd.writeAddrs.push_back(left->nodeAddr);
        upd.writeAddrs.push_back(child->nodeAddr);
        upd.writeAddrs.push_back(parent->nodeAddr);
        return;
    }
    if (right && right->keys.size() > min_fill) {
        // Borrow from the right sibling.
        if (child->leaf) {
            child->keys.push_back(right->keys.front());
            child->values.push_back(right->values.front());
            right->keys.erase(right->keys.begin());
            right->values.erase(right->values.begin());
            parent->keys[child_pos] = right->keys.front();
        } else {
            child->keys.push_back(parent->keys[child_pos]);
            parent->keys[child_pos] = right->keys.front();
            right->keys.erase(right->keys.begin());
            child->children.push_back(std::move(right->children.front()));
            right->children.erase(right->children.begin());
        }
        upd.writeAddrs.push_back(right->nodeAddr);
        upd.writeAddrs.push_back(child->nodeAddr);
        upd.writeAddrs.push_back(parent->nodeAddr);
        return;
    }

    // Merge with a sibling.
    unsigned left_pos = left ? child_pos - 1 : child_pos;
    Node *a = parent->children[left_pos].get();
    Node *b = parent->children[left_pos + 1].get();
    if (a->leaf) {
        a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
        a->values.insert(a->values.end(), b->values.begin(),
                         b->values.end());
    } else {
        a->keys.push_back(parent->keys[left_pos]);
        a->keys.insert(a->keys.end(), b->keys.begin(), b->keys.end());
        for (auto &grand : b->children)
            a->children.push_back(std::move(grand));
    }
    upd.writeAddrs.push_back(a->nodeAddr);
    upd.writeAddrs.push_back(parent->nodeAddr);
    parent->keys.erase(parent->keys.begin() + left_pos);
    parent->children.erase(parent->children.begin() + left_pos + 1);
}

bool
BTreeVmaTable::removeKey(Node *node, Addr key, TableUpdate &upd)
{
    upd.readAddrs.push_back(node->nodeAddr);
    if (node->leaf) {
        auto it = std::lower_bound(node->keys.begin(), node->keys.end(),
                                   key);
        if (it == node->keys.end() || *it != key)
            return false;
        unsigned pos = static_cast<unsigned>(it - node->keys.begin());
        freeVte(node->values[pos]);
        node->keys.erase(it);
        node->values.erase(node->values.begin() + pos);
        upd.writeAddrs.push_back(node->nodeAddr);
        return true;
    }

    unsigned pos = static_cast<unsigned>(
        std::upper_bound(node->keys.begin(), node->keys.end(), key) -
        node->keys.begin());
    Node *child = node->children[pos].get();
    bool removed = removeKey(child, key, upd);
    if (removed && child->keys.size() < kBtreeMinFill)
        rebalanceChild(node, pos, upd);
    return removed;
}

TableUpdate
BTreeVmaTable::noteRemove(Addr vma_base)
{
    TableUpdate upd;
    if (!removeKey(root_.get(), vma_base, upd))
        return upd;
    // Shrink the root when it collapses to a single child.
    if (!root_->leaf && root_->children.size() == 1)
        root_ = std::move(root_->children[0]);
    --numValid_;
    upd.ok = true;
    return upd;
}

unsigned
BTreeVmaTable::height() const
{
    unsigned h = 1;
    const Node *node = root_.get();
    while (!node->leaf) {
        node = node->children[0].get();
        ++h;
    }
    return h;
}

int
BTreeVmaTable::leafDepth(const Node *node) const
{
    int d = 0;
    while (!node->leaf) {
        node = node->children[0].get();
        ++d;
    }
    return d;
}

bool
BTreeVmaTable::checkNode(const Node *node, Addr lo, Addr hi, bool is_root,
                         int leaf_depth, int depth) const
{
    if (!std::is_sorted(node->keys.begin(), node->keys.end()))
        return false;
    for (Addr key : node->keys)
        if (key < lo || key >= hi)
            return false;
    if (!is_root && node->keys.size() < kBtreeMinFill &&
        !(node->leaf && numValid_ < kBtreeMinFill)) {
        return false;
    }
    if (node->leaf) {
        if (depth != leaf_depth)
            return false;
        return node->values.size() == node->keys.size();
    }
    if (node->children.size() != node->keys.size() + 1)
        return false;
    for (unsigned i = 0; i < node->children.size(); ++i) {
        Addr child_lo = i == 0 ? lo : node->keys[i - 1];
        Addr child_hi = i == node->keys.size() ? hi : node->keys[i];
        if (!checkNode(node->children[i].get(), child_lo, child_hi,
                       false, leaf_depth, depth + 1)) {
            return false;
        }
    }
    return true;
}

bool
BTreeVmaTable::checkInvariants() const
{
    return checkNode(root_.get(), 0, ~0ull, true, leafDepth(root_.get()),
                     0);
}

} // namespace jord::uat
