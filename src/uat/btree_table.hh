/**
 * @file
 * B-tree VMA table: the Jord_BT ablation (Fig. 13).
 *
 * A B+tree keyed by VMA base address, with one 64-byte block per node
 * (order 8). Lookups traverse root-to-leaf and then the VTE block, so
 * the VLB miss penalty grows from one block access (~2 ns) to a node
 * path (~20 ns); inserts and removes split/merge nodes, which is where
 * the paper's "+167% PrivLib VMA-management time" comes from.
 */

#ifndef JORD_UAT_BTREE_TABLE_HH
#define JORD_UAT_BTREE_TABLE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "uat/vma_table.hh"

namespace jord::uat {

/** Max keys per B+tree node (fits a 64 B block with 8 B keys). */
inline constexpr unsigned kBtreeOrder = 8;

/** Minimum keys in a non-root node. An internal split of a full node
 * yields floor((order - 1) / 2) keys on the right, so the fill floor is
 * order/2 - 1. */
inline constexpr unsigned kBtreeMinFill = kBtreeOrder / 2 - 1;

/** Region where B-tree nodes live. */
inline constexpr sim::Addr kBtreeNodeBase = 0x2100'0000'0000ull;
/** Region where B-tree VTE payloads live. */
inline constexpr sim::Addr kBtreeVteBase = 0x2200'0000'0000ull;

/**
 * B+tree organisation of the VMA table.
 */
class BTreeVmaTable : public VmaTableBase
{
  public:
    explicit BTreeVmaTable(const VaEncoding &encoding);
    ~BTreeVmaTable() override;

    sim::Addr baseAddr() const override { return kBtreeNodeBase; }
    bool contains(sim::Addr addr) const override;
    TableWalk walk(sim::Addr va) const override;
    Vte *vteFor(sim::Addr vma_base) override;
    sim::Addr vteAddrOf(sim::Addr vma_base) const override;
    TableUpdate noteInsert(sim::Addr vma_base) override;
    TableUpdate noteRemove(sim::Addr vma_base) override;
    std::uint64_t numValid() const override { return numValid_; }

    /** Tree height (leaf depth + 1); exposed for tests. */
    unsigned height() const;

    /** Verify B+tree invariants (key order, fill factors); for tests. */
    bool checkInvariants() const;

    const VaEncoding &encoding() const { return encoding_; }

  private:
    struct Node;

    VaEncoding encoding_;
    std::unique_ptr<Node> root_;
    std::uint64_t numValid_ = 0;
    sim::Addr nextNodeAddr_;

    /** VTE payload pool with free-slot recycling. */
    std::vector<Vte> vtePool_;
    std::vector<std::uint32_t> vteFree_;

    std::uint32_t allocVte();
    void freeVte(std::uint32_t idx);

    Node *findLeaf(sim::Addr key, std::vector<sim::Addr> *path) const;
    void insertIntoLeaf(Node *leaf, sim::Addr key, std::uint32_t vte_idx,
                        TableUpdate &upd);
    void splitChild(Node *parent, unsigned child_pos, TableUpdate &upd);
    bool removeKey(Node *node, sim::Addr key, TableUpdate &upd);
    void rebalanceChild(Node *parent, unsigned child_pos,
                        TableUpdate &upd);
    bool checkNode(const Node *node, sim::Addr lo, sim::Addr hi,
                   bool is_root, int leaf_depth, int depth) const;
    int leafDepth(const Node *node) const;
};

} // namespace jord::uat

#endif // JORD_UAT_BTREE_TABLE_HH
