/**
 * @file
 * Virtual lookaside buffer (VLB): a fully associative range TLB caching
 * VMA translations (§4.1), tagged with the VTE address for coherence
 * matching (§4.2) and the PD id the cached permission belongs to.
 */

#ifndef JORD_UAT_VLB_HH
#define JORD_UAT_VLB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "sim/types.hh"
#include "uat/vte.hh"

namespace jord::uat {

/** One cached range translation. */
struct VlbEntry {
    bool valid = false;
    /** Tag used to match T-bit invalidation messages (§4.2). */
    sim::Addr vteAddr = 0;
    sim::Addr base = 0;       ///< VMA base VA
    std::uint64_t bound = 0;  ///< VMA length in bytes
    std::int64_t offs = 0;    ///< PA = VA + offs
    Perm perm;                ///< resolved permission for pd
    bool pbit = false;        ///< privileged VMA
    bool global = false;      ///< valid for every PD
    PdId pd = 0;              ///< owning PD (ignored when global)
    std::uint64_t lastUse = 0;
};

/** VLB statistics. */
struct VlbStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t shootdowns = 0;

    double
    hitRate() const
    {
        std::uint64_t total = hits + misses;
        return total ? static_cast<double>(hits) /
                           static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * Fully associative, LRU-replaced range VLB.
 */
class Vlb
{
  public:
    explicit Vlb(unsigned entries);

    /**
     * Look up @p va under protection domain @p pd.
     * Hits require the VA to fall in [base, base+bound) and the entry to
     * be global or tagged with @p pd.
     */
    std::optional<VlbEntry> lookup(sim::Addr va, PdId pd);

    /** Install a translation (LRU replacement). */
    void insert(const VlbEntry &entry);

    /** Invalidate all entries tagged with @p vte_addr (shootdown). */
    unsigned invalidateVte(sim::Addr vte_addr);

    /** Invalidate everything. */
    void invalidateAll();

    /** Probe without LRU update; for tests. */
    bool holdsVte(sim::Addr vte_addr) const;

    unsigned capacity() const { return static_cast<unsigned>(entries_.size()); }
    unsigned occupancy() const;

    const VlbStats &stats() const { return stats_; }
    void resetStats() { stats_ = VlbStats{}; }

  private:
    std::vector<VlbEntry> entries_;
    std::uint64_t useClock_ = 0;
    VlbStats stats_;
};

} // namespace jord::uat

#endif // JORD_UAT_VLB_HH
