#include "uat/vlb.hh"

#include "sim/logging.hh"

namespace jord::uat {

using sim::Addr;

Vlb::Vlb(unsigned entries)
{
    if (entries == 0)
        sim::fatal("VLB must have at least one entry");
    entries_.assign(entries, VlbEntry{});
}

std::optional<VlbEntry>
Vlb::lookup(Addr va, PdId pd)
{
    for (auto &entry : entries_) {
        if (!entry.valid)
            continue;
        if (va < entry.base || va - entry.base >= entry.bound)
            continue;
        if (!entry.global && entry.pd != pd)
            continue;
        entry.lastUse = ++useClock_;
        ++stats_.hits;
        return entry;
    }
    ++stats_.misses;
    return std::nullopt;
}

void
Vlb::insert(const VlbEntry &entry)
{
    VlbEntry *victim = nullptr;
    for (auto &slot : entries_) {
        // Replace in place any existing entry the new fill supersedes:
        // same VTE with overlapping lookup visibility (same PD, or
        // either entry global). Requiring identical {PD, G} here left
        // a stale duplicate behind when a permission change flipped
        // the G bit between two fills of the same VTE.
        if (slot.valid && slot.vteAddr == entry.vteAddr &&
            (slot.global || entry.global || slot.pd == entry.pd)) {
            victim = &slot;
            break;
        }
        if (!slot.valid) {
            if (!victim || victim->valid)
                victim = &slot;
            continue;
        }
        if (!victim || (victim->valid && slot.lastUse < victim->lastUse))
            victim = &slot;
    }
    if (victim->valid && victim->vteAddr != entry.vteAddr)
        ++stats_.evictions;
    *victim = entry;
    victim->valid = true;
    victim->lastUse = ++useClock_;
}

unsigned
Vlb::invalidateVte(Addr vte_addr)
{
    unsigned n = 0;
    for (auto &entry : entries_) {
        if (entry.valid && entry.vteAddr == vte_addr) {
            entry.valid = false;
            ++n;
        }
    }
    stats_.shootdowns += n;
    return n;
}

void
Vlb::invalidateAll()
{
    for (auto &entry : entries_)
        entry.valid = false;
}

bool
Vlb::holdsVte(Addr vte_addr) const
{
    for (const auto &entry : entries_)
        if (entry.valid && entry.vteAddr == vte_addr)
            return true;
    return false;
}

unsigned
Vlb::occupancy() const
{
    unsigned n = 0;
    for (const auto &entry : entries_)
        if (entry.valid)
            ++n;
    return n;
}

} // namespace jord::uat
