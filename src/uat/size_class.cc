#include "uat/size_class.hh"

#include <bit>

#include "sim/logging.hh"

namespace jord::uat {

using sim::Addr;

VaEncoding::VaEncoding(std::uint64_t table_capacity)
    : tableCapacity_(table_capacity)
{
    if (table_capacity < kNumSizeClasses)
        sim::fatal("VMA table capacity %llu below one VTE per class",
                   static_cast<unsigned long long>(table_capacity));
}

std::optional<unsigned>
VaEncoding::classForSize(std::uint64_t bytes)
{
    if (bytes == 0)
        return std::nullopt;
    std::uint64_t rounded = std::bit_ceil(bytes);
    unsigned shift = static_cast<unsigned>(std::countr_zero(rounded));
    unsigned sc = shift <= kMinClassShift ? 0 : shift - kMinClassShift;
    if (sc >= kNumSizeClasses)
        return std::nullopt;
    return sc;
}

Addr
VaEncoding::encode(unsigned sc, std::uint64_t index) const
{
    if (sc >= kNumSizeClasses)
        sim::panic("size class %u out of range", sc);
    if (index >= indicesPerClass(sc))
        sim::panic("VMA index %llu exceeds class-%u capacity %llu",
                   static_cast<unsigned long long>(index), sc,
                   static_cast<unsigned long long>(
                       indicesPerClass(sc)));
    unsigned offset_bits = kMinClassShift + sc;
    Addr va = kTopPattern << kTopShift;
    va |= static_cast<Addr>(sc) << kClassShift;
    va |= index << offset_bits;
    return va;
}

std::optional<DecodedVa>
VaEncoding::decode(Addr va) const
{
    if (!inUatRegion(va))
        return std::nullopt;
    unsigned sc = static_cast<unsigned>((va >> kClassShift) & kClassMask);
    if (sc >= kNumSizeClasses)
        return std::nullopt;
    unsigned offset_bits = kMinClassShift + sc;
    std::uint64_t body = va & ((1ull << kClassShift) - 1);
    DecodedVa decoded;
    decoded.sizeClass = sc;
    decoded.index = body >> offset_bits;
    decoded.offset = body & ((1ull << offset_bits) - 1);
    if (decoded.index >= indicesPerClass(sc))
        return std::nullopt;
    return decoded;
}

std::optional<Addr>
VaEncoding::vmaBase(Addr va) const
{
    auto decoded = decode(va);
    if (!decoded)
        return std::nullopt;
    return encode(decoded->sizeClass, decoded->index);
}

} // namespace jord::uat
