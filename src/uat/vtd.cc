#include "uat/vtd.hh"

#include "sim/logging.hh"
#include "sim/types.hh"

namespace jord::uat {

using sim::Addr;

Vtd::Vtd(const sim::MachineConfig &cfg, const noc::Mesh &mesh)
    : cfg_(cfg), mesh_(mesh)
{
    std::uint64_t total = static_cast<std::uint64_t>(cfg.vtdSets) *
                          cfg.vtdWays * cfg.numCores;
    entries_.assign(total, Entry{});
}

std::size_t
Vtd::setBase(Addr vte_addr) const
{
    Addr block = sim::blockAlign(vte_addr);
    unsigned slice = mesh_.homeSlice(block, 0) % cfg_.numCores;
    std::uint64_t set = (block / sim::kCacheBlockBytes) % cfg_.vtdSets;
    return (static_cast<std::size_t>(slice) * cfg_.vtdSets + set) *
           cfg_.vtdWays;
}

Vtd::Entry *
Vtd::find(Addr vte_addr)
{
    Addr tag = sim::blockAlign(vte_addr);
    std::size_t base = setBase(vte_addr);
    for (unsigned way = 0; way < cfg_.vtdWays; ++way) {
        Entry &entry = entries_[base + way];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

const Vtd::Entry *
Vtd::find(Addr vte_addr) const
{
    return const_cast<Vtd *>(this)->find(vte_addr);
}

Vtd::Entry &
Vtd::victimIn(Addr vte_addr, std::optional<Evicted> &out)
{
    std::size_t base = setBase(vte_addr);
    Entry *victim = nullptr;
    for (unsigned way = 0; way < cfg_.vtdWays; ++way) {
        Entry &entry = entries_[base + way];
        if (!entry.valid)
            return entry;
        if (!victim || entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    ++stats_.evictions;
    if (victim->sharers.any())
        out = Evicted{victim->tag, victim->sharers};
    victim->valid = false;
    victim->sharers.reset();
    return *victim;
}

std::optional<Vtd::Evicted>
Vtd::addSharer(Addr vte_addr, unsigned core)
{
    ++stats_.reads;
    if (Entry *entry = find(vte_addr)) {
        entry->sharers.set(core);
        entry->lastUse = ++useClock_;
        return std::nullopt;
    }
    std::optional<Evicted> evicted;
    Entry &entry = victimIn(vte_addr, evicted);
    entry.valid = true;
    entry.tag = sim::blockAlign(vte_addr);
    entry.sharers.reset();
    entry.sharers.set(core);
    entry.lastUse = ++useClock_;
    return evicted;
}

std::optional<mem::CoreMask>
Vtd::sharers(Addr vte_addr) const
{
    const Entry *entry = find(vte_addr);
    if (!entry)
        return std::nullopt;
    return entry->sharers;
}

void
Vtd::remove(Addr vte_addr)
{
    if (Entry *entry = find(vte_addr)) {
        entry->valid = false;
        entry->sharers.reset();
    }
}

std::optional<Vtd::Evicted>
Vtd::installPessimistic(Addr vte_addr, const mem::CoreMask &sharers)
{
    if (find(vte_addr) != nullptr)
        return std::nullopt; // already tracked precisely
    if (sharers.none())
        return std::nullopt;
    ++stats_.victims;
    std::optional<Evicted> evicted;
    Entry &entry = victimIn(vte_addr, evicted);
    entry.valid = true;
    entry.tag = sim::blockAlign(vte_addr);
    entry.sharers = sharers;
    entry.lastUse = ++useClock_;
    return evicted;
}

} // namespace jord::uat
