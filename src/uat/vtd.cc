#include "uat/vtd.hh"

#include "sim/logging.hh"
#include "sim/types.hh"

namespace jord::uat {

using sim::Addr;

Vtd::Vtd(const sim::MachineConfig &cfg, const noc::Mesh &mesh)
    : cfg_(cfg), mesh_(mesh)
{
    std::uint64_t total = static_cast<std::uint64_t>(cfg.vtdSets) *
                          cfg.vtdWays * cfg.numCores;
    entries_.assign(total, Entry{});
}

std::size_t
Vtd::setBase(Addr vte_addr) const
{
    Addr block = sim::blockAlign(vte_addr);
    unsigned slice = mesh_.homeSlice(block, 0) % cfg_.numCores;
    std::uint64_t set = (block / sim::kCacheBlockBytes) % cfg_.vtdSets;
    return (static_cast<std::size_t>(slice) * cfg_.vtdSets + set) *
           cfg_.vtdWays;
}

Vtd::Entry *
Vtd::find(Addr vte_addr)
{
    Addr tag = sim::blockAlign(vte_addr);
    std::size_t base = setBase(vte_addr);
    for (unsigned way = 0; way < cfg_.vtdWays; ++way) {
        Entry &entry = entries_[base + way];
        if (entry.valid && entry.tag == tag)
            return &entry;
    }
    return nullptr;
}

const Vtd::Entry *
Vtd::find(Addr vte_addr) const
{
    return const_cast<Vtd *>(this)->find(vte_addr);
}

Vtd::Entry &
Vtd::victimIn(Addr vte_addr)
{
    std::size_t base = setBase(vte_addr);
    Entry *victim = nullptr;
    for (unsigned way = 0; way < cfg_.vtdWays; ++way) {
        Entry &entry = entries_[base + way];
        if (!entry.valid)
            return entry;
        if (!victim || entry.lastUse < victim->lastUse)
            victim = &entry;
    }
    ++stats_.evictions;
    victim->valid = false;
    victim->sharers.reset();
    return *victim;
}

void
Vtd::addSharer(Addr vte_addr, unsigned core)
{
    ++stats_.reads;
    if (Entry *entry = find(vte_addr)) {
        entry->sharers.set(core);
        entry->lastUse = ++useClock_;
        return;
    }
    Entry &entry = victimIn(vte_addr);
    entry.valid = true;
    entry.tag = sim::blockAlign(vte_addr);
    entry.sharers.reset();
    entry.sharers.set(core);
    entry.lastUse = ++useClock_;
}

std::optional<mem::CoreMask>
Vtd::sharers(Addr vte_addr) const
{
    const Entry *entry = find(vte_addr);
    if (!entry)
        return std::nullopt;
    return entry->sharers;
}

void
Vtd::remove(Addr vte_addr)
{
    if (Entry *entry = find(vte_addr)) {
        entry->valid = false;
        entry->sharers.reset();
    }
}

void
Vtd::installPessimistic(Addr vte_addr, const mem::CoreMask &sharers)
{
    if (find(vte_addr) != nullptr)
        return; // already tracked precisely
    if (sharers.none())
        return;
    ++stats_.victims;
    Entry &entry = victimIn(vte_addr);
    entry.valid = true;
    entry.tag = sim::blockAlign(vte_addr);
    entry.sharers = sharers;
    entry.lastUse = ++useClock_;
}

} // namespace jord::uat
