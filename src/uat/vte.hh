/**
 * @file
 * VMA table entry (VTE) layout — Fig. 8.
 *
 * Each VTE spans one 64-byte cache block to avoid false sharing:
 *
 *     [511:192] sub-array: 20 x 16-bit {valid, perm, PD id} entries
 *     [191:128] ptr: overflow pointer for VMAs with > 20 sharing PDs
 *     [127: 64] offs | attr: translation offset and attribute bits
 *     [ 63:  0] bound: byte length of the VMA (the requested size)
 *
 * The Global (G) bit makes the VMA visible to every PD with the attr
 * permissions; the Privilege (P) bit restricts explicit accesses to code
 * that itself runs under a privileged VMA (§4.3).
 */

#ifndef JORD_UAT_VTE_HH
#define JORD_UAT_VTE_HH

#include <array>
#include <cstdint>
#include <optional>

#include "sim/types.hh"

namespace jord::uat {

/** Protection-domain identifier. 12 bits in the sub-array encoding. */
using PdId = std::uint16_t;

/** The PD id space representable in a sub-array entry. */
inline constexpr PdId kMaxPdId = 0xfff;

/** Number of inline sub-array entries per VTE (§4.3). */
inline constexpr unsigned kSubArrayEntries = 20;

/** VMA access permissions as a bit set. */
struct Perm {
    std::uint8_t bits = 0;

    static constexpr std::uint8_t R = 1;
    static constexpr std::uint8_t W = 2;
    static constexpr std::uint8_t X = 4;

    constexpr Perm() = default;
    constexpr explicit Perm(std::uint8_t b) : bits(b) {}

    static constexpr Perm none() { return Perm(0); }
    static constexpr Perm r() { return Perm(R); }
    static constexpr Perm rw() { return Perm(R | W); }
    static constexpr Perm rx() { return Perm(R | X); }
    static constexpr Perm rwx() { return Perm(R | W | X); }

    constexpr bool
    covers(Perm need) const
    {
        return (bits & need.bits) == need.bits;
    }

    constexpr bool operator==(const Perm &) const = default;
};

/** One 16-bit sub-array slot: {valid:1, perm:3, pd:12}. */
struct SubEntry {
    std::uint16_t raw = 0;

    bool valid() const { return raw >> 15; }
    Perm perm() const { return Perm((raw >> 12) & 0x7); }
    PdId pd() const { return raw & 0xfff; }

    static SubEntry
    make(PdId pd, Perm perm)
    {
        SubEntry e;
        e.raw = static_cast<std::uint16_t>(
            0x8000u | (static_cast<unsigned>(perm.bits & 0x7) << 12) |
            (pd & 0xfff));
        return e;
    }

    void clear() { raw = 0; }
};

/** Attribute bits packed next to the translation offset. */
struct VteAttr {
    static constexpr std::uint64_t kValid = 1ull << 0;
    static constexpr std::uint64_t kGlobal = 1ull << 1;
    static constexpr std::uint64_t kPriv = 1ull << 2;
    /** Global-permission bits occupy [5:3] when G is set. */
    static constexpr unsigned kPermShift = 3;
};

/**
 * The 64-byte VMA table entry.
 */
struct Vte {
    std::uint64_t bound = 0;    ///< byte length of the VMA
    std::uint64_t offsAttr = 0; ///< translation offset [63:12] | attr [11:0]
    std::uint64_t ptr = 0;      ///< overflow-list id + 1, or 0 if none
    std::array<SubEntry, kSubArrayEntries> sub{};

    bool valid() const { return offsAttr & VteAttr::kValid; }
    bool global() const { return offsAttr & VteAttr::kGlobal; }
    bool privileged() const { return offsAttr & VteAttr::kPriv; }

    /** Translation offset: PA = VA + offs (range translation). */
    std::int64_t
    offs() const
    {
        // Stored as a signed 52-bit value in [63:12].
        return static_cast<std::int64_t>(offsAttr) >> 12;
    }

    Perm
    globalPerm() const
    {
        return Perm((offsAttr >> VteAttr::kPermShift) & 0x7);
    }

    void
    setOffs(std::int64_t offs)
    {
        offsAttr = (offsAttr & 0xfffull) |
                   (static_cast<std::uint64_t>(offs) << 12);
    }

    void
    setAttr(bool valid, bool global, bool priv, Perm global_perm)
    {
        std::uint64_t attr = 0;
        if (valid)
            attr |= VteAttr::kValid;
        if (global)
            attr |= VteAttr::kGlobal;
        if (priv)
            attr |= VteAttr::kPriv;
        attr |= static_cast<std::uint64_t>(global_perm.bits & 0x7)
                << VteAttr::kPermShift;
        offsAttr = (offsAttr & ~0xfffull) | attr;
    }

    /** Find the inline sub-array slot for @p pd; nullptr if absent. */
    SubEntry *findSub(PdId pd);
    const SubEntry *findSub(PdId pd) const;

    /** Find a free inline slot; nullptr if the sub-array is full. */
    SubEntry *freeSub();

    /** Count of valid inline sharers. */
    unsigned numSharers() const;
};

static_assert(sizeof(Vte) == sim::kCacheBlockBytes,
              "a VTE must span exactly one cache block (Fig. 8)");

inline SubEntry *
Vte::findSub(PdId pd)
{
    for (auto &entry : sub)
        if (entry.valid() && entry.pd() == pd)
            return &entry;
    return nullptr;
}

inline const SubEntry *
Vte::findSub(PdId pd) const
{
    return const_cast<Vte *>(this)->findSub(pd);
}

inline SubEntry *
Vte::freeSub()
{
    for (auto &entry : sub)
        if (!entry.valid())
            return &entry;
    return nullptr;
}

inline unsigned
Vte::numSharers() const
{
    unsigned n = 0;
    for (const auto &entry : sub)
        if (entry.valid())
            ++n;
    return n;
}

} // namespace jord::uat

#endif // JORD_UAT_VTE_HH
