/**
 * @file
 * Jord's user-level control and status registers (§4.1, §4.3).
 *
 * uatp holds the VMA table base and the enable bit; uatc describes the
 * VA encoding scheme; ucid names the protection domain the core is
 * currently executing in. All three are writable only by code running
 * with the P bit set — the decoder marks other writers illegal.
 */

#ifndef JORD_UAT_CSR_HH
#define JORD_UAT_CSR_HH

#include <cstdint>

#include "sim/types.hh"
#include "uat/vte.hh"

namespace jord::uat {

/** Which UAT CSR an instruction names. */
enum class UatCsr {
    Uatp, ///< User Address Translation and Protection
    Uatc, ///< User Address Translation Configuration
    Ucid, ///< User Continuation ID
};

/**
 * Per-core (per-hart) UAT CSR file. Saved/restored by the OS as part of
 * the process context (§4.4).
 */
struct UatCsrFile {
    /** VMA table base address; bit 0 is the enable flag. */
    std::uint64_t uatp = 0;
    /** Encoding descriptor (opaque to hardware outside the VTW). */
    std::uint64_t uatc = 0;
    /** Currently executing continuation/PD. */
    PdId ucid = 0;

    bool enabled() const { return uatp & 1; }

    sim::Addr
    tableBase() const
    {
        return uatp & ~0xfffull;
    }

    void
    setUatp(sim::Addr table_base, bool enable)
    {
        uatp = (table_base & ~0xfffull) | (enable ? 1 : 0);
    }
};

} // namespace jord::uat

#endif // JORD_UAT_CSR_HH
