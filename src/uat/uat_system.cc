#include "uat/uat_system.hh"

#include <algorithm>

#include "check/hooks.hh"
#include "prof/pmu.hh"
#include "sim/logging.hh"
#include "trace/metrics.hh"
#include "trace/trace.hh"

namespace jord::uat {

using sim::Addr;
using sim::Cycles;

UatSystem::UatSystem(const sim::MachineConfig &cfg,
                     mem::CoherenceEngine &coherence, VmaTableBase &table)
    : cfg_(cfg),
      coherence_(coherence),
      table_(table),
      vtd_(cfg, coherence.mesh()),
      csrs_(cfg.numCores),
      pbit_(cfg.numCores, false)
{
    ivlbs_.reserve(cfg.numCores);
    dvlbs_.reserve(cfg.numCores);
    for (unsigned core = 0; core < cfg.numCores; ++core) {
        ivlbs_.push_back(std::make_unique<Vlb>(cfg.ivlbEntries));
        dvlbs_.push_back(std::make_unique<Vlb>(cfg.dvlbEntries));
        csrs_[core].setUatp(table.baseAddr(), true);
    }
    coherence.setTranslationObserver(this);
}

UatSystem::~UatSystem()
{
    coherence_.setTranslationObserver(nullptr);
}

void
UatSystem::attachMetrics(trace::MetricsRegistry &registry,
                         const std::string &prefix)
{
    vlbHits_ = &registry.counter(prefix + "uat.vlb.hits");
    vlbMisses_ = &registry.counter(prefix + "uat.vlb.misses");
    vtwFaults_ = &registry.counter(prefix + "uat.vtw.faults");
    shootdowns_ = &registry.counter(prefix + "uat.vtd.shootdowns");
    shootdownsPessimistic_ =
        &registry.counter(prefix + "uat.vtd.shootdowns_pessimistic");
    vtwWalkNs_ = &registry.distribution(prefix + "uat.vtw.walk_ns");
    shootdownNs_ =
        &registry.distribution(prefix + "uat.vtd.shootdown_ns");
}

UatSystem::WalkOutcome
UatSystem::vtwWalk(unsigned core, Addr va, PdId pd, Vlb &target)
{
    WalkOutcome out;
    out.latency = kVtwOverheadCycles;

    TableWalk walk = table_.walk(va);
    out.depth = static_cast<unsigned>(walk.readAddrs.size());
    for (Addr block : walk.readAddrs)
        out.latency += coherence_.read(core, block, true).latency;

    if (!walk.vte || !walk.vte->valid()) {
        out.fault = walk.vteAddr == 0 && walk.readAddrs.empty()
                        ? Fault::NotUatVa
                        : Fault::NotMapped;
        return out;
    }

    const Vte &vte = *walk.vte;
    auto perm = table_.permFor(vte, pd);
    if (!perm) {
        out.fault = Fault::NoPermission;
        return out;
    }

    out.entry.valid = true;
    out.entry.vteAddr = walk.vteAddr;
    out.entry.base = walk.vmaBase;
    out.entry.bound = vte.bound;
    out.entry.offs = vte.offs();
    out.entry.perm = *perm;
    out.entry.pbit = vte.privileged();
    out.entry.global = vte.global();
    out.entry.pd = pd;
    target.insert(out.entry);
    if (checker_)
        checker_->onVlbFill(core, &target == ivlbs_[core].get(),
                            out.entry);
    return out;
}

UatAccess
UatSystem::resolve(unsigned core, Addr va, Perm need, Vlb &vlb)
{
    UatAccess acc;
    const UatCsrFile &csr = csrs_[core];
    if (!csr.enabled() || !VaEncoding::inUatRegion(va)) {
        acc.fault = Fault::NotUatVa;
        return acc;
    }

    PdId pd = csr.ucid;
    bool is_ivlb = &vlb == ivlbs_[core].get();
    if (pmu_)
        pmu_->add(core, prof::PmuCounter::RetiredOps);
    VlbEntry entry;
    if (auto hit = vlb.lookup(va, pd)) {
        entry = *hit;
        acc.vlbHit = true;
        // VLB probe overlaps the L1 access: no extra latency.
        if (vlbHits_)
            vlbHits_->add();
        if (pmu_)
            pmu_->add(core, is_ivlb ? prof::PmuCounter::VlbIHits
                                    : prof::PmuCounter::VlbDHits);
        if (checker_)
            checker_->onVlbUse(core, is_ivlb, entry.vteAddr, pd);
    } else {
        if (vlbMisses_)
            vlbMisses_->add();
        if (pmu_)
            pmu_->add(core, is_ivlb ? prof::PmuCounter::VlbIMisses
                                    : prof::PmuCounter::VlbDMisses);
        // The walk's table-block reads charge their NoC stall cycles to
        // the Noc bucket as they happen; snapshot it so those cycles
        // can be reclassified as VTW-walk time, with the remainder of
        // the walk latency (overhead + L1-hit reads) charged as
        // VLB-miss stall. The miss's attributed total is exactly
        // walk.latency.
        std::uint64_t noc_before =
            pmu_ ? pmu_->bucket(core, prof::PmuBucket::Noc) : 0;
        WalkOutcome walk = vtwWalk(core, va, pd, vlb);
        acc.latency += walk.latency;
        if (pmu_) {
            pmu_->add(core, prof::PmuCounter::VtwWalks);
            pmu_->add(core, prof::PmuCounter::VtwWalkDepth, walk.depth);
            std::uint64_t moved =
                pmu_->bucket(core, prof::PmuBucket::Noc) - noc_before;
            pmu_->reclassify(core, prof::PmuBucket::Noc,
                             prof::PmuBucket::VtwWalk, moved);
            pmu_->charge(core, prof::PmuBucket::VlbMissStall,
                         walk.latency - moved);
        }
        if (tracer_)
            tracer_->complete("vtw_walk", trace::Category::Hw, core,
                              tracer_->now(), walk.latency);
        if (vtwWalkNs_)
            vtwWalkNs_->record(static_cast<std::uint64_t>(
                sim::cyclesToNs(walk.latency, cfg_.freqGhz)));
        if (walk.fault != Fault::None) {
            if (vtwFaults_)
                vtwFaults_->add();
            acc.fault = walk.fault;
            return acc;
        }
        entry = walk.entry;
    }

    if (va - entry.base >= entry.bound) {
        // Inside the size-class chunk but past the VMA's bound.
        acc.fault = Fault::OutOfBound;
        return acc;
    }
    if (entry.pbit && !pbit_[core] && !need.covers(Perm(Perm::X))) {
        // Explicit load/store to a privileged VMA from unprivileged code.
        acc.fault = Fault::PrivilegedAccess;
        return acc;
    }
    if (!entry.perm.covers(need)) {
        acc.fault = Fault::NoPermission;
        return acc;
    }
    acc.pa = static_cast<Addr>(static_cast<std::int64_t>(va) +
                               entry.offs);
    acc.pbit = entry.pbit;
    return acc;
}

UatAccess
UatSystem::dataAccess(unsigned core, Addr va, Perm need)
{
    UatAccess acc = resolve(core, va, need, *dvlbs_[core]);
    if (checker_)
        checker_->onAccess(core, va, need, csrs_[core].ucid,
                           pbit_[core], false, csrs_[core].enabled(),
                           acc.fault);
    return acc;
}

UatAccess
UatSystem::fetch(unsigned core, Addr va)
{
    bool was_priv = pbit_[core];
    UatAccess acc = resolve(core, va, Perm(Perm::X), *ivlbs_[core]);
    if (acc.ok()) {
        if (!was_priv && acc.pbit && !isGate(va)) {
            // 0 -> 1 transition of the P bit must land on a uatg gate.
            acc.fault = Fault::BadGate;
        } else {
            pbit_[core] = acc.pbit;
        }
    }
    if (checker_)
        checker_->onAccess(core, va, Perm(Perm::X), csrs_[core].ucid,
                           was_priv, true, csrs_[core].enabled(),
                           acc.fault);
    return acc;
}

void
UatSystem::addGate(Addr va)
{
    gates_.insert(va);
    if (checker_)
        checker_->onGateAdded(va);
}

bool
UatSystem::isGate(Addr va) const
{
    return gates_.count(va) != 0;
}

Fault
UatSystem::writeCsr(unsigned core, UatCsr which, std::uint64_t value)
{
    if (!pbit_[core])
        return Fault::IllegalCsr;
    switch (which) {
      case UatCsr::Uatp:
        csrs_[core].uatp = value;
        break;
      case UatCsr::Uatc:
        csrs_[core].uatc = value;
        break;
      case UatCsr::Ucid:
        if (value > kMaxPdId)
            return Fault::IllegalCsr;
        csrs_[core].ucid = static_cast<PdId>(value);
        break;
    }
    return Fault::None;
}

Fault
UatSystem::readCsr(unsigned core, UatCsr which, std::uint64_t &value) const
{
    if (!pbit_[core])
        return Fault::IllegalCsr;
    switch (which) {
      case UatCsr::Uatp:
        value = csrs_[core].uatp;
        break;
      case UatCsr::Uatc:
        value = csrs_[core].uatc;
        break;
      case UatCsr::Ucid:
        value = csrs_[core].ucid;
        break;
    }
    return Fault::None;
}

Cycles
UatSystem::vteRead(unsigned core, Addr vte_addr)
{
    return coherence_.read(core, vte_addr, true).latency;
}

Cycles
UatSystem::vteWrite(unsigned core, Addr vte_addr)
{
    return coherence_.write(core, vte_addr, true).latency;
}

// --- TranslationObserver ------------------------------------------------

void
UatSystem::translationRead(unsigned core, Addr addr)
{
    if (pmu_)
        pmu_->add(core, prof::PmuCounter::VtdLookups);
    if (auto evicted = vtd_.addSharer(addr, core))
        backInvalidate(*evicted);
}

Cycles
UatSystem::translationWrite(unsigned core, Addr addr,
                            const mem::CoreMask &dir)
{
    vtd_.mutableStats().writes++;
    if (pmu_)
        pmu_->add(core, prof::PmuCounter::VtdLookups);
    // Fan out to the union of both sharer trackers: the VTD covers
    // cores whose VTE block left their L1 after the fill, the
    // coherence directory covers cores whose fill hit in their own L1
    // and therefore never registered with the VTD. Either alone can
    // miss a live VLB holder.
    mem::CoreMask targets = dir;
    if (auto tracked = vtd_.sharers(addr)) {
        targets |= *tracked;
    } else {
        vtd_.mutableStats().pessimistic++;
        if (shootdownsPessimistic_)
            shootdownsPessimistic_->add();
    }
    vtd_.remove(addr);

    unsigned home = coherence_.mesh().homeSlice(addr, core);
    Cycles full_worst = 0; // total shootdown completion time
    std::vector<unsigned> notified;
    targets.forEach([&](unsigned sharer) {
        if (static_cast<int>(sharer) == debugSkipShootdownCore_)
            return; // negative-test knob: drop this fan-out leg
        ivlbs_[sharer]->invalidateVte(addr);
        dvlbs_[sharer]->invalidateVte(addr);
        if (checker_)
            notified.push_back(sharer);
        if (sharer == core)
            return;
        Cycles rt = coherence_.mesh().roundTrip(home, sharer,
                                                noc::MsgKind::Control);
        full_worst = std::max(full_worst, rt);
    });
    // The writer's own VLBs are refreshed locally as well.
    if (static_cast<int>(core) != debugSkipShootdownCore_) {
        ivlbs_[core]->invalidateVte(addr);
        dvlbs_[core]->invalidateVte(addr);
        if (checker_ && std::find(notified.begin(), notified.end(),
                                  core) == notified.end())
            notified.push_back(core);
    }
    if (checker_)
        checker_->onShootdown(addr, core, notified);

    // The invalidation fan-out proceeds in hardware, parallel to the
    // writer (§4.2/§6.3: the shootdown completes when the furthest core
    // acks, but the writing core's store completes at the home). Code
    // that must observe completion (e.g. munmap before memory reuse)
    // issues an explicit fence; the fan-out latency itself is what
    // Fig. 14's "VLB shootdown" series reports. Writer-local refreshes
    // are not shootdowns and are not sampled.
    if (full_worst > 0) {
        shootdownLatency_.record(
            sim::cyclesToNs(full_worst, cfg_.freqGhz));
        if (shootdowns_)
            shootdowns_->add();
        if (pmu_)
            pmu_->add(core, prof::PmuCounter::VtdShootdowns);
        if (shootdownNs_)
            shootdownNs_->record(static_cast<std::uint64_t>(
                sim::cyclesToNs(full_worst, cfg_.freqGhz)));
        if (tracer_)
            tracer_->complete("vlb_shootdown", trace::Category::Hw,
                              core, tracer_->now(), full_worst);
    }
    return 0;
}

void
UatSystem::translationWriteLocal(unsigned core, Addr addr)
{
    // Dirty hit in the writer's L1. Exclusive block ownership does NOT
    // imply no remote VLB holders: a non-T write to the same VTE (a
    // pcopy permission grant) acquires exclusivity without flushing
    // anyone's VLB. The VTD still tracks every fill, so consult it and
    // fan out to any remote sharers; only a genuinely private
    // translation takes the cheap local-only path.
    vtd_.mutableStats().writes++;
    if (pmu_)
        pmu_->add(core, prof::PmuCounter::VtdLookups);
    bool remote_fanout = false;
    std::vector<unsigned> notified;
    if (auto tracked = vtd_.sharers(addr)) {
        tracked->forEach([&](unsigned sharer) {
            if (static_cast<int>(sharer) == debugSkipShootdownCore_)
                return;
            ivlbs_[sharer]->invalidateVte(addr);
            dvlbs_[sharer]->invalidateVte(addr);
            if (sharer != core)
                remote_fanout = true;
            if (checker_)
                notified.push_back(sharer);
        });
        vtd_.remove(addr);
    }
    if (pmu_ && remote_fanout)
        pmu_->add(core, prof::PmuCounter::VtdShootdowns);
    if (static_cast<int>(core) != debugSkipShootdownCore_) {
        ivlbs_[core]->invalidateVte(addr);
        dvlbs_[core]->invalidateVte(addr);
        if (checker_ && std::find(notified.begin(), notified.end(),
                                  core) == notified.end())
            notified.push_back(core);
    }
    if (checker_)
        checker_->onShootdown(addr, core, notified);
}

void
UatSystem::directoryEvict(Addr addr, const mem::CoreMask &dir)
{
    if (auto evicted = vtd_.installPessimistic(addr, dir))
        backInvalidate(*evicted);
}

void
UatSystem::backInvalidate(const Vtd::Evicted &evicted)
{
    // A VTD capacity eviction loses the victim translation's sharer
    // list; flush those cores' VLB copies eagerly so no holder survives
    // untracked (inclusive-directory back-invalidation). The fan-out
    // runs in hardware off the critical path; no latency is charged.
    // There is no initiating core: count on the PMU's uncore row.
    if (pmu_)
        pmu_->addUncore(prof::PmuCounter::VtdBackInvals);
    std::vector<unsigned> flushed;
    evicted.sharers.forEach([&](unsigned sharer) {
        ivlbs_[sharer]->invalidateVte(evicted.tag);
        dvlbs_[sharer]->invalidateVte(evicted.tag);
        if (checker_)
            flushed.push_back(sharer);
    });
    if (checker_)
        checker_->onBackInvalidate(evicted.tag, flushed);
}

} // namespace jord::uat
