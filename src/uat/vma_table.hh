/**
 * @file
 * VMA table: the translation structure the VTW traverses (§4.1).
 *
 * Two implementations share one interface so Jord_BT (Fig. 13) is a
 * configuration, not a fork:
 *
 *  - PlainListVmaTable: the paper's design. The VTE slot is a pure
 *    function of the VA (size-class encoding), so a walk touches exactly
 *    one cache block and software and hardware share the same list.
 *  - BTreeVmaTable (btree_table.hh): a classic B-tree keyed by VMA base
 *    address, as in Midgard-style designs [28, 37]; walks touch a node
 *    path and mutations may split/merge nodes.
 *
 * The table is *functional*: it stores real VTEs that the permission
 * checks read. Timing comes from the block addresses each operation
 * reports, which callers charge to the coherence engine with the T bit.
 */

#ifndef JORD_UAT_VMA_TABLE_HH
#define JORD_UAT_VMA_TABLE_HH

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sim/types.hh"
#include "uat/size_class.hh"
#include "uat/vte.hh"

namespace jord::uat {

/** Where the VMA table lives in the (privileged) address space. */
inline constexpr sim::Addr kVmaTableBase = 0x2000'0000'0000ull;

/** Result of locating the VTE for a VA. */
struct TableWalk {
    /** Block addresses the walker reads, in order (structure + VTE). */
    std::vector<sim::Addr> readAddrs;
    /** Address of the VTE block; 0 if the VA has no slot. */
    sim::Addr vteAddr = 0;
    /** The VTE (may be invalid); nullptr if the VA has no slot. */
    const Vte *vte = nullptr;
    /** Base VA of the VMA the slot describes. */
    sim::Addr vmaBase = 0;
};

/** Result of a mutating table operation. */
struct TableUpdate {
    /** Blocks written (VTE itself plus any split/merged nodes). */
    std::vector<sim::Addr> writeAddrs;
    /** Blocks read to locate the position. */
    std::vector<sim::Addr> readAddrs;
    bool ok = false;
};

/**
 * Common interface of VMA-table organisations.
 */
class VmaTableBase
{
  public:
    virtual ~VmaTableBase() = default;

    /** Base address of the table region (uatp contents). */
    virtual sim::Addr baseAddr() const = 0;

    /** True if @p addr falls inside the table region (T-bit detection). */
    virtual bool contains(sim::Addr addr) const = 0;

    /** Locate the VTE for @p va (hardware walk). */
    virtual TableWalk walk(sim::Addr va) const = 0;

    /** Mutable VTE handle for @p vma_base; nullptr if no slot. */
    virtual Vte *vteFor(sim::Addr vma_base) = 0;

    /** VTE block address for @p vma_base (0 if no slot). */
    virtual sim::Addr vteAddrOf(sim::Addr vma_base) const = 0;

    /**
     * Record that a VMA now lives at @p vma_base (B-tree inserts a key;
     * the plain list is a no-op beyond the VTE write itself).
     */
    virtual TableUpdate noteInsert(sim::Addr vma_base) = 0;

    /** Record that the VMA at @p vma_base was destroyed. */
    virtual TableUpdate noteRemove(sim::Addr vma_base) = 0;

    /** Live (valid) VMA count. */
    virtual std::uint64_t numValid() const = 0;

    /** Overflow sharer list support for VMAs with > 20 PDs (§4.3). */
    std::vector<SubEntry> &overflowList(const Vte &vte);
    const std::vector<SubEntry> *overflowListIfAny(const Vte &vte) const;
    /** Drop the overflow list attached to @p vte, if any. */
    void clearOverflow(Vte &vte);

    /**
     * Find the effective permission of @p pd in @p vte, consulting the
     * inline sub-array, the G bit, and the overflow list.
     */
    std::optional<Perm> permFor(const Vte &vte, PdId pd) const;

  protected:
    std::unordered_map<std::uint64_t, std::vector<SubEntry>> overflow_;
    std::uint64_t nextOverflowId_ = 1;
};

/**
 * The paper's plain-list table: one preallocated VTE slot per
 * (size class, index) pair, interleaved evenly.
 */
class PlainListVmaTable : public VmaTableBase
{
  public:
    explicit PlainListVmaTable(const VaEncoding &encoding);

    sim::Addr baseAddr() const override { return kVmaTableBase; }
    bool contains(sim::Addr addr) const override;
    TableWalk walk(sim::Addr va) const override;
    Vte *vteFor(sim::Addr vma_base) override;
    sim::Addr vteAddrOf(sim::Addr vma_base) const override;
    TableUpdate noteInsert(sim::Addr vma_base) override;
    TableUpdate noteRemove(sim::Addr vma_base) override;
    std::uint64_t numValid() const override { return numValid_; }

    const VaEncoding &encoding() const { return encoding_; }

  private:
    VaEncoding encoding_;
    std::vector<Vte> slots_;
    std::uint64_t numValid_ = 0;

    std::optional<std::uint64_t> slotFor(sim::Addr va) const;
};

} // namespace jord::uat

#endif // JORD_UAT_VMA_TABLE_HH
