/**
 * @file
 * UatSystem: the per-core UAT hardware frontend (Fig. 5).
 *
 * Owns the per-core I/D VLBs and CSR files, the VTW walk logic, the VTD,
 * and the protection checks (P bit, uatg call gates, CSR privilege). It
 * plugs into the coherence engine as the TranslationObserver so that
 * T-bit traffic drives hardware VLB shootdowns (Fig. 7).
 */

#ifndef JORD_UAT_UAT_SYSTEM_HH
#define JORD_UAT_UAT_SYSTEM_HH

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "mem/coherence.hh"
#include "stats/sampler.hh"
#include "uat/csr.hh"
#include "uat/fault.hh"
#include "uat/vlb.hh"
#include "uat/vma_table.hh"
#include "uat/vtd.hh"

namespace jord::check {
class CheckHooks;
} // namespace jord::check

namespace jord::prof {
class Pmu;
} // namespace jord::prof

namespace jord::trace {
class Counter;
class Distribution;
class MetricsRegistry;
class Tracer;
} // namespace jord::trace

namespace jord::uat {

/** Extra VTW cycles beyond the table-block accesses (address
 * computation, permission check, VLB install). Calibrated so a VLB miss
 * whose traversal hits the L1D costs ~2 ns (Table 4, §6.2). */
inline constexpr sim::Cycles kVtwOverheadCycles = 6;

/** Outcome of a timed UAT access. */
struct UatAccess {
    sim::Cycles latency = 0;
    Fault fault = Fault::None;
    bool vlbHit = false;
    sim::Addr pa = 0;
    bool pbit = false; ///< the VMA covering the access is privileged

    bool ok() const { return fault == Fault::None; }
};

/**
 * The assembled UAT hardware.
 */
class UatSystem : public mem::TranslationObserver
{
  public:
    /**
     * @param cfg Machine configuration (VLB/VTD sizes).
     * @param coherence Engine to charge table accesses to; this object
     * registers itself as the engine's TranslationObserver.
     * @param table The VMA table organisation (plain list or B-tree).
     */
    UatSystem(const sim::MachineConfig &cfg,
              mem::CoherenceEngine &coherence, VmaTableBase &table);
    ~UatSystem() override;

    UatSystem(const UatSystem &) = delete;
    UatSystem &operator=(const UatSystem &) = delete;

    // --- Untrusted access path -------------------------------------

    /**
     * Timed load/store by @p core at @p va requiring @p need.
     * Permission is resolved against the core's current ucid. The
     * privileged-VMA rule (§4.3) uses the core's current P-bit state.
     */
    UatAccess dataAccess(unsigned core, sim::Addr va, Perm need);

    /**
     * Timed instruction fetch: resolves execute permission, then applies
     * the uatg call-gate rule on non-privileged -> privileged
     * transitions and updates the core's P-bit state.
     */
    UatAccess fetch(unsigned core, sim::Addr va);

    // --- Gates and privilege ----------------------------------------

    /** Register a uatg call-gate address (a PrivLib entry point). */
    void addGate(sim::Addr va);
    bool isGate(sim::Addr va) const;

    /** Current decoder P-bit state of a core. */
    bool privileged(unsigned core) const { return pbit_[core]; }

    /**
     * Trusted-software shortcut used by the OS model at bootstrap and by
     * tests: force the core's P-bit state without a fetch.
     */
    void forcePrivileged(unsigned core, bool priv) { pbit_[core] = priv; }

    // --- CSRs --------------------------------------------------------

    /** CSR write; requires the core to be executing privileged code. */
    Fault writeCsr(unsigned core, UatCsr which, std::uint64_t value);

    /** CSR read; same privilege requirement. */
    Fault readCsr(unsigned core, UatCsr which,
                  std::uint64_t &value) const;

    /** Backdoor for the OS context switch (§4.4) and PrivLib. */
    UatCsrFile &csrFile(unsigned core) { return csrs_[core]; }
    const UatCsrFile &csrFile(unsigned core) const { return csrs_[core]; }

    // --- Timed VTE accesses for PrivLib ------------------------------

    /** Timed VTE block read with the T bit set. */
    sim::Cycles vteRead(unsigned core, sim::Addr vte_addr);

    /** Timed VTE block write with the T bit set (may shoot down VLBs). */
    sim::Cycles vteWrite(unsigned core, sim::Addr vte_addr);

    // --- Components ----------------------------------------------------

    Vlb &ivlb(unsigned core) { return *ivlbs_[core]; }
    Vlb &dvlb(unsigned core) { return *dvlbs_[core]; }
    Vtd &vtd() { return vtd_; }
    VmaTableBase &table() { return table_; }
    mem::CoherenceEngine &coherence() { return coherence_; }

    /** Per-shootdown fan-out latency samples (Fig. 14 series). */
    stats::Sampler &shootdownLatency() { return shootdownLatency_; }

    // --- Observability -------------------------------------------------

    /** Attach (or detach, with nullptr) a span tracer; VTW walks and
     * VLB shootdowns are emitted as hardware spans while attached. */
    void setTracer(trace::Tracer *tracer) { tracer_ = tracer; }

    /** Register VLB/VTW/VTD counters into @p registry (must outlive
     * this object). */
    void attachMetrics(trace::MetricsRegistry &registry,
                       const std::string &prefix = "");

    /** Attach (or detach, with nullptr) a JordSan checker; accesses,
     * VLB fills/hits, and shootdown fan-outs are reported while
     * attached. Hooks never charge latency. */
    void setChecker(check::CheckHooks *checker) { checker_ = checker; }

    /** Attach the simulated PMU (null to detach); VLB hits/misses,
     * walks, and VTD events are counted at zero simulated latency. */
    void setPmu(prof::Pmu *pmu) { pmu_ = pmu; }

    /**
     * Negative-test knob: skip the shootdown invalidation of one core
     * (-1 = off). Simulates a broken VTD fan-out so tests can prove
     * the VLB-coherence oracle catches it.
     */
    void debugSkipShootdownCore(int core)
    {
        debugSkipShootdownCore_ = core;
    }

    // --- TranslationObserver ------------------------------------------

    void translationRead(unsigned core, sim::Addr addr) override;
    sim::Cycles translationWrite(unsigned core, sim::Addr addr,
                                 const mem::CoreMask &dir) override;
    void translationWriteLocal(unsigned core, sim::Addr addr) override;
    void directoryEvict(sim::Addr addr,
                        const mem::CoreMask &dir) override;

  private:
    /** Flush a VTD eviction victim's sharers from their VLBs. */
    void backInvalidate(const Vtd::Evicted &evicted);

    const sim::MachineConfig &cfg_;
    mem::CoherenceEngine &coherence_;
    VmaTableBase &table_;
    Vtd vtd_;
    std::vector<std::unique_ptr<Vlb>> ivlbs_;
    std::vector<std::unique_ptr<Vlb>> dvlbs_;
    std::vector<UatCsrFile> csrs_;
    std::vector<bool> pbit_;
    std::unordered_set<sim::Addr> gates_;
    stats::Sampler shootdownLatency_;

    // Optional observability hooks (all null when not attached).
    check::CheckHooks *checker_ = nullptr;
    int debugSkipShootdownCore_ = -1;
    trace::Tracer *tracer_ = nullptr;
    trace::Counter *vlbHits_ = nullptr;
    trace::Counter *vlbMisses_ = nullptr;
    trace::Counter *vtwFaults_ = nullptr;
    trace::Counter *shootdowns_ = nullptr;
    trace::Counter *shootdownsPessimistic_ = nullptr;
    trace::Distribution *vtwWalkNs_ = nullptr;
    trace::Distribution *shootdownNs_ = nullptr;
    prof::Pmu *pmu_ = nullptr;

    struct WalkOutcome {
        sim::Cycles latency = 0;
        Fault fault = Fault::None;
        VlbEntry entry;
        unsigned depth = 0; ///< table blocks touched by the walk
    };

    /** VTW traversal on a VLB miss; installs into @p target on success. */
    WalkOutcome vtwWalk(unsigned core, sim::Addr va, PdId pd,
                        Vlb &target);

    UatAccess resolve(unsigned core, sim::Addr va, Perm need, Vlb &vlb);
};

} // namespace jord::uat

#endif // JORD_UAT_UAT_SYSTEM_HH
