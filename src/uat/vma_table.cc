#include "uat/vma_table.hh"

#include "sim/logging.hh"

namespace jord::uat {

using sim::Addr;

// --- VmaTableBase: overflow sharer lists -----------------------------

std::vector<SubEntry> &
VmaTableBase::overflowList(const Vte &vte)
{
    auto *mutable_vte = const_cast<Vte *>(&vte);
    if (mutable_vte->ptr == 0)
        mutable_vte->ptr = nextOverflowId_++;
    return overflow_[mutable_vte->ptr];
}

const std::vector<SubEntry> *
VmaTableBase::overflowListIfAny(const Vte &vte) const
{
    if (vte.ptr == 0)
        return nullptr;
    auto it = overflow_.find(vte.ptr);
    return it == overflow_.end() ? nullptr : &it->second;
}

void
VmaTableBase::clearOverflow(Vte &vte)
{
    if (vte.ptr != 0) {
        overflow_.erase(vte.ptr);
        vte.ptr = 0;
    }
}

std::optional<Perm>
VmaTableBase::permFor(const Vte &vte, PdId pd) const
{
    if (!vte.valid())
        return std::nullopt;
    if (vte.global())
        return vte.globalPerm();
    if (const SubEntry *entry = vte.findSub(pd))
        return entry->perm();
    if (const auto *extra = overflowListIfAny(vte)) {
        for (const auto &entry : *extra)
            if (entry.valid() && entry.pd() == pd)
                return entry.perm();
    }
    return std::nullopt;
}

// --- PlainListVmaTable ------------------------------------------------

PlainListVmaTable::PlainListVmaTable(const VaEncoding &encoding)
    : encoding_(encoding)
{
    slots_.assign(encoding_.tableCapacity(), Vte{});
}

bool
PlainListVmaTable::contains(Addr addr) const
{
    return addr >= kVmaTableBase &&
           addr < kVmaTableBase +
                      slots_.size() * sim::kCacheBlockBytes;
}

std::optional<std::uint64_t>
PlainListVmaTable::slotFor(Addr va) const
{
    auto decoded = encoding_.decode(va);
    if (!decoded)
        return std::nullopt;
    std::uint64_t slot = encoding_.slotOf(decoded->sizeClass,
                                          decoded->index);
    if (slot >= slots_.size())
        return std::nullopt;
    return slot;
}

TableWalk
PlainListVmaTable::walk(Addr va) const
{
    TableWalk out;
    auto slot = slotFor(va);
    if (!slot)
        return out;
    out.vteAddr = kVmaTableBase + *slot * sim::kCacheBlockBytes;
    out.readAddrs.push_back(out.vteAddr);
    out.vte = &slots_[*slot];
    auto decoded = encoding_.decode(va);
    out.vmaBase = encoding_.encode(decoded->sizeClass, decoded->index);
    return out;
}

Vte *
PlainListVmaTable::vteFor(Addr vma_base)
{
    auto slot = slotFor(vma_base);
    if (!slot)
        return nullptr;
    return &slots_[*slot];
}

Addr
PlainListVmaTable::vteAddrOf(Addr vma_base) const
{
    auto slot = slotFor(vma_base);
    return slot ? kVmaTableBase + *slot * sim::kCacheBlockBytes : 0;
}

TableUpdate
PlainListVmaTable::noteInsert(Addr vma_base)
{
    // Plain list: the slot preexists; the VTE write itself (charged by
    // the caller) is the whole update.
    TableUpdate upd;
    upd.ok = slotFor(vma_base).has_value();
    if (upd.ok)
        ++numValid_;
    return upd;
}

TableUpdate
PlainListVmaTable::noteRemove(Addr vma_base)
{
    TableUpdate upd;
    upd.ok = slotFor(vma_base).has_value();
    if (upd.ok && numValid_ > 0)
        --numValid_;
    return upd;
}

} // namespace jord::uat
