/**
 * @file
 * Size-class-embedded virtual-address encoding (Fig. 6).
 *
 * Jord statically partitions the reserved virtual address range among
 * size classes by embedding the size-class id in the VA. This makes the
 * VMA table a *plain list*: the address of the VMA table entry (VTE) for
 * a VA is a pure function of the VA, so both hardware (VTW) and software
 * (PrivLib) locate it without any pointer chasing:
 *
 *     A_VTE = A_base + f(SC_vma, Index_vma) * sizeof(VTE)
 *
 * with f(sc, idx) = idx * numClasses + sc (even interleaving, §4.1).
 *
 * Layout (48-bit Sv48-style VA):
 *
 *     [47:46] Top pattern (0b01 selects the UAT region)
 *     [45:41] size class id (5 bits; 26 classes -> the paper's 5-bit
 *             ASLR entropy reduction)
 *     [40: 7+k] index within the class (class k has chunk size 2^(7+k))
 *     [6+k : 0] offset within the VMA
 *
 * Size classes are all powers of two from 128 B (class 0) to 4 GB
 * (class 25), matching §4.1.
 */

#ifndef JORD_UAT_SIZE_CLASS_HH
#define JORD_UAT_SIZE_CLASS_HH

#include <cstdint>
#include <optional>

#include "sim/types.hh"

namespace jord::uat {

/** Number of size classes (powers of two, 128 B .. 4 GB). */
inline constexpr unsigned kNumSizeClasses = 26;

/** log2 of the smallest class's chunk size. */
inline constexpr unsigned kMinClassShift = 7; // 128 B

/** Top-pattern selector bits: VA[47:44] == 0b0101 selects the UAT
 * region (0x5000'0000'0000 .. 0x5fff'ffff'ffff), disjoint from the
 * conventional mmap (0x7f..) and text/heap (low) ranges. */
inline constexpr unsigned kTopShift = 44;
inline constexpr std::uint64_t kTopPattern = 0b0101;
inline constexpr std::uint64_t kTopMask = 0xf;

/** Size-class field position. */
inline constexpr unsigned kClassShift = 39;
inline constexpr std::uint64_t kClassMask = 0x1f;

/** Decoded pieces of a UAT virtual address. */
struct DecodedVa {
    unsigned sizeClass;   ///< class id in [0, kNumSizeClasses)
    std::uint64_t index;  ///< VMA index within the class
    std::uint64_t offset; ///< byte offset inside the VMA chunk
};

/**
 * The VA-encoding configuration held in the uatc CSR (§4.1).
 */
class VaEncoding
{
  public:
    /**
     * @param table_capacity Total number of VTEs the VMA table holds
     * (64 MB / 64 B = 1 Mi by default); bounds per-class indices.
     */
    explicit VaEncoding(std::uint64_t table_capacity = (64ull << 20) / 64);

    /** Chunk size in bytes of class @p sc. */
    static std::uint64_t
    classSize(unsigned sc)
    {
        return 1ull << (kMinClassShift + sc);
    }

    /** Smallest class whose chunk holds @p bytes; nullopt if too big. */
    static std::optional<unsigned> classForSize(std::uint64_t bytes);

    /** True if @p va carries the UAT top pattern. */
    static bool
    inUatRegion(sim::Addr va)
    {
        return ((va >> kTopShift) & kTopMask) == kTopPattern;
    }

    /**
     * Number of VMAs class @p sc can hold: bounded by its share of the
     * VMA table and by the width of its index field (large classes
     * have wide offsets, so fewer index bits, Fig. 6).
     */
    std::uint64_t
    indicesPerClass(unsigned sc) const
    {
        unsigned offset_bits = kMinClassShift + sc;
        std::uint64_t field = 1ull << (kClassShift - offset_bits);
        std::uint64_t share = tableCapacity_ / kNumSizeClasses;
        return field < share ? field : share;
    }

    std::uint64_t tableCapacity() const { return tableCapacity_; }

    /**
     * Compose the base VA of (class, index). Panics if out of range
     * (callers validate against indicesPerClass()).
     */
    sim::Addr encode(unsigned sc, std::uint64_t index) const;

    /** Decompose a VA; nullopt if it is outside the UAT region. */
    std::optional<DecodedVa> decode(sim::Addr va) const;

    /**
     * Plain-list slot of (class, index): the interleaving function f.
     * Slot * sizeof(VTE) added to the table base gives the VTE address.
     */
    std::uint64_t
    slotOf(unsigned sc, std::uint64_t index) const
    {
        return index * kNumSizeClasses + sc;
    }

    /** Inverse of slotOf. */
    DecodedVa
    slotToClassIndex(std::uint64_t slot) const
    {
        return DecodedVa{static_cast<unsigned>(slot % kNumSizeClasses),
                         slot / kNumSizeClasses, 0};
    }

    /** Base VA (offset zeroed) of the VMA containing @p va. */
    std::optional<sim::Addr> vmaBase(sim::Addr va) const;

  private:
    std::uint64_t tableCapacity_;
};

} // namespace jord::uat

#endif // JORD_UAT_SIZE_CLASS_HH
