/**
 * @file
 * Hardware fault kinds raised by the UAT access path (§3.1, §4.3).
 */

#ifndef JORD_UAT_FAULT_HH
#define JORD_UAT_FAULT_HH

namespace jord::uat {

/** Why an access was refused. */
enum class Fault {
    None,             ///< access permitted
    NotUatVa,         ///< VA outside the UAT region (page-table path)
    NotMapped,        ///< no valid VMA covers the VA
    OutOfBound,       ///< inside the chunk but beyond the VMA's bound
    NoPermission,     ///< VMA mapped but PD lacks the needed permission
    PrivilegedAccess, ///< P-bit VMA touched by non-privileged code
    BadGate,          ///< privileged entry not through a uatg gate
    IllegalCsr,       ///< uatp/uatc/ucid access without the P bit
};

/** Human-readable fault name. */
inline const char *
faultName(Fault fault)
{
    switch (fault) {
      case Fault::None: return "none";
      case Fault::NotUatVa: return "not-uat-va";
      case Fault::NotMapped: return "not-mapped";
      case Fault::OutOfBound: return "out-of-bound";
      case Fault::NoPermission: return "no-permission";
      case Fault::PrivilegedAccess: return "privileged-access";
      case Fault::BadGate: return "bad-gate";
      case Fault::IllegalCsr: return "illegal-csr";
    }
    return "unknown";
}

} // namespace jord::uat

#endif // JORD_UAT_FAULT_HH
