/**
 * @file
 * Virtual translation directory (VTD) — §4.2, Fig. 7.
 *
 * A set-associative structure co-located with each LLC slice that tracks
 * which cores' VLBs cache each translation, using the VTE address as a
 * proxy (one VTE per VMA in the plain-list design). T-bit reads register
 * sharers; T-bit writes read out the sharer list and fan out VLB
 * invalidations. When the VTD has no entry it falls back pessimistically
 * to the coherence directory's sharer list, and the directory acts as a
 * victim cache: on directory eviction an untracked translation's sharers
 * are installed into the VTD.
 */

#ifndef JORD_UAT_VTD_HH
#define JORD_UAT_VTD_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/core_mask.hh"
#include "noc/mesh.hh"
#include "sim/machine.hh"

namespace jord::uat {

/** VTD statistics. */
struct VtdStats {
    std::uint64_t reads = 0;      ///< sharer registrations
    std::uint64_t writes = 0;     ///< shootdown fan-outs
    std::uint64_t evictions = 0;  ///< capacity evictions
    std::uint64_t pessimistic = 0;///< writes served from directory sharers
    std::uint64_t victims = 0;    ///< directory-evict installs
};

/**
 * The VTD. Entries are distributed across slices by the VTE address's
 * home slice, each slice holding cfg.vtdSets x cfg.vtdWays entries.
 */
class Vtd
{
  public:
    Vtd(const sim::MachineConfig &cfg, const noc::Mesh &mesh);

    /** Register @p core as a sharer of translation @p vte_addr. */
    void addSharer(sim::Addr vte_addr, unsigned core);

    /** Current sharer list, or nullopt if untracked. */
    std::optional<mem::CoreMask> sharers(sim::Addr vte_addr) const;

    /** Drop the entry for @p vte_addr (after a shootdown). */
    void remove(sim::Addr vte_addr);

    /**
     * Victim-cache install: the coherence directory evicted this block;
     * adopt its sharer list if we are not already tracking it.
     */
    void installPessimistic(sim::Addr vte_addr,
                            const mem::CoreMask &sharers);

    const VtdStats &stats() const { return stats_; }
    void resetStats() { stats_ = VtdStats{}; }
    VtdStats &mutableStats() { return stats_; }

    /** Total capacity in entries across all slices. */
    std::uint64_t capacity() const { return entries_.size(); }

  private:
    struct Entry {
        bool valid = false;
        sim::Addr tag = 0;
        mem::CoreMask sharers;
        std::uint64_t lastUse = 0;
    };

    const sim::MachineConfig &cfg_;
    const noc::Mesh &mesh_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    VtdStats stats_;

    /** First entry index of the set @p vte_addr maps to. */
    std::size_t setBase(sim::Addr vte_addr) const;
    Entry *find(sim::Addr vte_addr);
    const Entry *find(sim::Addr vte_addr) const;
    Entry &victimIn(sim::Addr vte_addr);
};

} // namespace jord::uat

#endif // JORD_UAT_VTD_HH
