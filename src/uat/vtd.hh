/**
 * @file
 * Virtual translation directory (VTD) — §4.2, Fig. 7.
 *
 * A set-associative structure co-located with each LLC slice that tracks
 * which cores' VLBs cache each translation, using the VTE address as a
 * proxy (one VTE per VMA in the plain-list design). T-bit reads register
 * sharers; T-bit writes read out the sharer list and fan out VLB
 * invalidations to it (unioned with the coherence directory's block
 * sharers, which cover cores whose fills hit in their own L1 and thus
 * never reached the VTD). The directory acts as a victim cache: on
 * directory eviction an untracked translation's sharers are installed
 * into the VTD. A VTD capacity eviction surfaces the victim's sharer
 * list to the caller, which must back-invalidate those cores' VLBs —
 * otherwise their entries would be invisible to later shootdowns.
 */

#ifndef JORD_UAT_VTD_HH
#define JORD_UAT_VTD_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "mem/core_mask.hh"
#include "noc/mesh.hh"
#include "sim/machine.hh"

namespace jord::uat {

/** VTD statistics. */
struct VtdStats {
    std::uint64_t reads = 0;      ///< sharer registrations
    std::uint64_t writes = 0;     ///< shootdown fan-outs
    std::uint64_t evictions = 0;  ///< capacity evictions
    std::uint64_t pessimistic = 0;///< writes served from directory sharers
    std::uint64_t victims = 0;    ///< directory-evict installs
};

/**
 * The VTD. Entries are distributed across slices by the VTE address's
 * home slice, each slice holding cfg.vtdSets x cfg.vtdWays entries.
 */
class Vtd
{
  public:
    Vtd(const sim::MachineConfig &cfg, const noc::Mesh &mesh);

    /** A valid entry displaced by a capacity eviction. */
    struct Evicted {
        sim::Addr tag = 0;
        mem::CoreMask sharers;
    };

    /**
     * Register @p core as a sharer of translation @p vte_addr. If the
     * insert evicts a tracked translation, its identity and sharers
     * are returned so the caller can back-invalidate their VLBs.
     */
    std::optional<Evicted> addSharer(sim::Addr vte_addr, unsigned core);

    /** Current sharer list, or nullopt if untracked. */
    std::optional<mem::CoreMask> sharers(sim::Addr vte_addr) const;

    /** Drop the entry for @p vte_addr (after a shootdown). */
    void remove(sim::Addr vte_addr);

    /**
     * Victim-cache install: the coherence directory evicted this block;
     * adopt its sharer list if we are not already tracking it. As with
     * addSharer, a displaced tracked translation is returned.
     */
    std::optional<Evicted> installPessimistic(
        sim::Addr vte_addr, const mem::CoreMask &sharers);

    const VtdStats &stats() const { return stats_; }
    void resetStats() { stats_ = VtdStats{}; }
    VtdStats &mutableStats() { return stats_; }

    /** Total capacity in entries across all slices. */
    std::uint64_t capacity() const { return entries_.size(); }

  private:
    struct Entry {
        bool valid = false;
        sim::Addr tag = 0;
        mem::CoreMask sharers;
        std::uint64_t lastUse = 0;
    };

    const sim::MachineConfig &cfg_;
    const noc::Mesh &mesh_;
    std::vector<Entry> entries_;
    std::uint64_t useClock_ = 0;
    VtdStats stats_;

    /** First entry index of the set @p vte_addr maps to. */
    std::size_t setBase(sim::Addr vte_addr) const;
    Entry *find(sim::Addr vte_addr);
    const Entry *find(sim::Addr vte_addr) const;
    Entry &victimIn(sim::Addr vte_addr, std::optional<Evicted> &out);
};

} // namespace jord::uat

#endif // JORD_UAT_VTD_HH
