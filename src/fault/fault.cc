#include "fault/fault.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace jord::fault {

namespace {

/** splitmix64 finalizer — the workhorse of the stateless hash chain. */
std::uint64_t
smix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Top 53 bits of @p x as a uniform double in [0, 1). */
double
toUnit(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double
parseProb(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        sim::fatal("fault plan: bad value '%s' for key '%s'",
                   val.c_str(), key.c_str());
    if (key != "spikex" && (v < 0.0 || v > 1.0))
        sim::fatal("fault plan: '%s=%s' out of [0,1]",
                   key.c_str(), val.c_str());
    if (key == "spikex" && v < 1.0)
        sim::fatal("fault plan: spikex must be >= 1 (got %s)",
                   val.c_str());
    return v;
}

void
applyKey(FaultRates &r, const std::string &key, const std::string &val)
{
    if (key == "crash")
        r.crash = parseProb(key, val);
    else if (key == "perm")
        r.argbufViolation = parseProb(key, val);
    else if (key == "spike")
        r.spike = parseProb(key, val);
    else if (key == "spikex")
        r.spikeMult = parseProb(key, val);
    else if (key == "drop")
        r.pipeDrop = parseProb(key, val);
    else
        sim::fatal("fault plan: unknown key '%s' "
                   "(expected crash/perm/spike/spikex/drop/seed)",
                   key.c_str());
}

/** Strictly-parsed double for the cluster clause's non-probability
 * keys (durations, multipliers, ids). */
double
parseNum(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        sim::fatal("fault plan: bad value '%s' for key 'cluster:%s'",
                   val.c_str(), key.c_str());
    return v;
}

double
parseClusterProb(const std::string &key, const std::string &val)
{
    double v = parseNum(key, val);
    if (v < 0.0 || v > 1.0)
        sim::fatal("fault plan: 'cluster:%s=%s' out of [0,1]",
                   key.c_str(), val.c_str());
    return v;
}

void
applyClusterKey(ClusterFaultRates &r, const std::string &key,
                const std::string &val)
{
    if (key == "crash")
        r.serverCrash = parseClusterProb(key, val);
    else if (key == "restart_ms") {
        r.restartMs = parseNum(key, val);
        if (r.restartMs < 0)
            sim::fatal("fault plan: cluster:restart_ms must be >= 0 "
                       "(got %s)", val.c_str());
    } else if (key == "recover_us") {
        r.recoverUsPerSlot = parseNum(key, val);
        if (r.recoverUsPerSlot < 0)
            sim::fatal("fault plan: cluster:recover_us must be >= 0 "
                       "(got %s)", val.c_str());
    } else if (key == "gray")
        r.gray = parseClusterProb(key, val);
    else if (key == "grayx") {
        r.grayMult = parseNum(key, val);
        if (r.grayMult < 1.0)
            sim::fatal("fault plan: cluster:grayx must be >= 1 "
                       "(got %s)", val.c_str());
    } else if (key == "window_ms") {
        r.windowMs = parseNum(key, val);
        if (r.windowMs <= 0)
            sim::fatal("fault plan: cluster:window_ms must be > 0 "
                       "(got %s)", val.c_str());
    } else if (key == "drop")
        r.linkDrop = parseClusterProb(key, val);
    else if (key == "delay")
        r.linkDelay = parseClusterProb(key, val);
    else if (key == "delay_us") {
        r.linkDelayUs = parseNum(key, val);
        if (r.linkDelayUs < 0)
            sim::fatal("fault plan: cluster:delay_us must be >= 0 "
                       "(got %s)", val.c_str());
    } else if (key == "gray_server")
        r.grayServer = static_cast<int>(parseNum(key, val));
    else if (key == "crash_at_ms")
        r.crashAtMs = parseNum(key, val);
    else if (key == "crash_frac")
        r.crashFrac = parseClusterProb(key, val);
    else
        sim::fatal("fault plan: unknown cluster key '%s' (expected "
                   "crash/restart_ms/recover_us/gray/grayx/window_ms/"
                   "drop/delay/delay_us/gray_server/crash_at_ms/"
                   "crash_frac)",
                   key.c_str());
}

void
describeRates(std::ostringstream &os, const FaultRates &r)
{
    bool first = true;
    auto emit = [&](const char *k, double v) {
        if (!first)
            os << ",";
        first = false;
        os << k << "=" << v;
    };
    if (r.crash > 0)
        emit("crash", r.crash);
    if (r.argbufViolation > 0)
        emit("perm", r.argbufViolation);
    if (r.spike > 0) {
        emit("spike", r.spike);
        emit("spikex", r.spikeMult);
    }
    if (r.pipeDrop > 0)
        emit("drop", r.pipeDrop);
    if (first)
        os << "none";
}

} // namespace

bool
FaultPlan::enabled() const
{
    if (defaults.any())
        return true;
    for (const auto &[name, rates] : byFunction)
        if (rates.any())
            return true;
    return false;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream clauses(spec);
    std::string clause;
    bool first = true;
    bool seen_cluster = false;
    while (std::getline(clauses, clause, ';')) {
        if (clause.empty())
            continue;
        std::string scope;
        std::string body = clause;
        auto colon = clause.find(':');
        if (colon != std::string::npos) {
            scope = clause.substr(0, colon);
            body = clause.substr(colon + 1);
            if (scope.empty())
                sim::fatal("fault plan: empty function name in '%s'",
                           clause.c_str());
        }
        // The reserved `cluster` scope holds fleet-level events; no
        // deployed function can shadow it.
        bool is_cluster = scope == "cluster";
        if (is_cluster && seen_cluster)
            sim::fatal("fault plan: duplicate cluster clause ('%s')",
                       clause.c_str());
        seen_cluster |= is_cluster;
        FaultRates rates = scope.empty() ? plan.defaults : FaultRates{};
        std::stringstream pairs(body);
        std::string pair;
        while (std::getline(pairs, pair, ',')) {
            if (pair.empty())
                continue;
            auto eq = pair.find('=');
            if (eq == std::string::npos)
                sim::fatal("fault plan: expected key=value, got '%s'",
                           pair.c_str());
            std::string key = pair.substr(0, eq);
            std::string val = pair.substr(eq + 1);
            if (key == "seed") {
                if (!scope.empty())
                    sim::fatal("fault plan: seed is global, not valid "
                               "in clause '%s'", clause.c_str());
                plan.seed = std::strtoull(val.c_str(), nullptr, 10);
                continue;
            }
            if (is_cluster)
                applyClusterKey(plan.cluster, key, val);
            else
                applyKey(rates, key, val);
        }
        if (is_cluster) {
            // nothing else to commit: applyClusterKey wrote in place
        } else if (scope.empty()) {
            if (!first && colon == std::string::npos)
                sim::fatal("fault plan: only the first clause may be "
                           "unscoped ('%s')", clause.c_str());
            plan.defaults = rates;
        } else {
            for (const auto &[name, existing] : plan.byFunction)
                if (name == scope)
                    sim::fatal("fault plan: duplicate clause for "
                               "function '%s' (merge the overrides "
                               "into one clause)", scope.c_str());
            plan.byFunction.emplace_back(scope, rates);
        }
        first = false;
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    describeRates(os, defaults);
    for (const auto &[name, rates] : byFunction) {
        os << ";" << name << ":";
        describeRates(os, rates);
    }
    if (cluster.any()) {
        os << ";cluster:";
        bool first = true;
        auto emit = [&](const char *k, double v) {
            if (!first)
                os << ",";
            first = false;
            os << k << "=" << v;
        };
        if (cluster.serverCrash > 0)
            emit("crash", cluster.serverCrash);
        if (cluster.gray > 0) {
            emit("gray", cluster.gray);
            emit("grayx", cluster.grayMult);
        }
        if (cluster.grayServer >= 0) {
            emit("gray_server", cluster.grayServer);
            emit("grayx", cluster.grayMult);
        }
        if (cluster.linkDrop > 0)
            emit("drop", cluster.linkDrop);
        if (cluster.linkDelay > 0) {
            emit("delay", cluster.linkDelay);
            emit("delay_us", cluster.linkDelayUs);
        }
        if (cluster.crashAtMs >= 0) {
            emit("crash_at_ms", cluster.crashAtMs);
            emit("crash_frac", cluster.crashFrac);
        }
    }
    if (seed)
        os << " seed=" << seed;
    return os.str();
}

void
FaultInjector::configure(const FaultPlan &plan,
                         const std::vector<std::string> &fn_names,
                         std::uint64_t fallback_seed)
{
    seed_ = plan.seed ? plan.seed
                      : smix(fallback_seed ^ 0x9d2c5680a5b85eedull);
    rates_.assign(fn_names.size(), plan.defaults);
    for (const auto &[name, rates] : plan.byFunction) {
        bool found = false;
        for (std::size_t i = 0; i < fn_names.size(); ++i) {
            if (fn_names[i] == name) {
                rates_[i] = rates;
                found = true;
            }
        }
        if (!found)
            sim::fatal("fault plan: no deployed function named '%s'",
                       name.c_str());
    }
    enabled_ = plan.enabled();
}

std::uint64_t
FaultInjector::mix(std::uint64_t req_id, unsigned attempt,
                   unsigned site) const
{
    std::uint64_t h = smix(seed_ ^ smix(req_id));
    h = smix(h ^ (static_cast<std::uint64_t>(attempt) << 32 | site));
    return h;
}

double
FaultInjector::u(std::uint64_t req_id, unsigned attempt,
                 unsigned site) const
{
    return toUnit(mix(req_id, attempt, site));
}

Decision
FaultInjector::decide(std::uint64_t req_id, unsigned attempt,
                      std::uint32_t fn, unsigned num_segments) const
{
    Decision d;
    if (!enabled_ || fn >= rates_.size() || num_segments == 0)
        return d;
    const FaultRates &r = rates_[fn];
    if (!r.any())
        return d;

    // Sites: 0 = fate draw, 1 = segment pick, 2 = fraction, 3 = spike.
    double fate = u(req_id, attempt, 0);
    int seg = -1;
    if (fate < r.crash + r.argbufViolation) {
        seg = static_cast<int>(u(req_id, attempt, 1) * num_segments);
        if (seg >= static_cast<int>(num_segments))
            seg = static_cast<int>(num_segments) - 1;
        // Abort 5%..95% of the way through the chosen segment.
        d.fraction = 0.05 + 0.90 * u(req_id, attempt, 2);
    }
    if (fate < r.crash)
        d.crashSegment = seg;
    else if (fate < r.crash + r.argbufViolation)
        d.violationSegment = seg;
    if (r.spike > 0 && u(req_id, attempt, 3) < r.spike)
        d.spikeMult = r.spikeMult;
    return d;
}

bool
FaultInjector::pipeDrop(std::uint64_t req_id, unsigned attempt,
                        std::uint32_t fn) const
{
    if (!enabled_ || fn >= rates_.size())
        return false;
    const FaultRates &r = rates_[fn];
    // Site 4 keeps the drop draw independent of the fate draw.
    return r.pipeDrop > 0 && u(req_id, attempt, 4) < r.pipeDrop;
}

void
ClusterFaultInjector::configure(const FaultPlan &plan,
                                std::uint64_t fallback_seed)
{
    // A distinct mixing constant keeps the fleet hash stream
    // independent of the worker injector's even when both derive from
    // the same fallback seed.
    std::uint64_t base = plan.seed ? plan.seed : fallback_seed;
    seed_ = smix(base ^ 0x6368616f732121ull);
    rates_ = plan.cluster;
    enabled_ = rates_.any();
}

double
ClusterFaultInjector::u(std::uint64_t a, std::uint64_t b,
                        unsigned site) const
{
    std::uint64_t h = smix(seed_ ^ smix(a));
    h = smix(h ^ (b << 8 | site));
    return toUnit(h);
}

bool
ClusterFaultInjector::crashes(std::uint32_t server,
                              std::uint64_t window) const
{
    return enabled_ && rates_.serverCrash > 0 &&
           u(server, window, 0) < rates_.serverCrash;
}

double
ClusterFaultInjector::crashOffset(std::uint32_t server,
                                  std::uint64_t window) const
{
    return u(server, window, 1);
}

bool
ClusterFaultInjector::grayWindow(std::uint32_t server,
                                 std::uint64_t window) const
{
    if (!enabled_)
        return false;
    if (rates_.grayServer >= 0 &&
        server == static_cast<std::uint32_t>(rates_.grayServer))
        return true;
    return rates_.gray > 0 && u(server, window, 2) < rates_.gray;
}

std::vector<GrayIncident>
ClusterFaultInjector::grayIncidents(std::uint32_t num_servers,
                                    std::uint64_t num_windows) const
{
    std::vector<GrayIncident> runs;
    if (!enabled_ || (rates_.gray <= 0 && rates_.grayServer < 0))
        return runs;
    for (std::uint32_t s = 0; s < num_servers; ++s) {
        bool open = false;
        std::uint64_t begin = 0;
        for (std::uint64_t w = 0; w < num_windows; ++w) {
            bool gray = grayWindow(s, w);
            if (gray && !open) {
                open = true;
                begin = w;
            } else if (!gray && open) {
                open = false;
                runs.push_back(GrayIncident{s, begin, w});
            }
        }
        if (open)
            runs.push_back(GrayIncident{s, begin, num_windows});
    }
    return runs;
}

bool
ClusterFaultInjector::linkDrop(std::uint64_t req_id, unsigned attempt,
                               unsigned copy) const
{
    return enabled_ && rates_.linkDrop > 0 &&
           u(req_id, (static_cast<std::uint64_t>(attempt) << 2) | copy,
             3) < rates_.linkDrop;
}

bool
ClusterFaultInjector::linkDelay(std::uint64_t req_id, unsigned attempt,
                                unsigned copy) const
{
    return enabled_ && rates_.linkDelay > 0 &&
           u(req_id, (static_cast<std::uint64_t>(attempt) << 2) | copy,
             4) < rates_.linkDelay;
}

} // namespace jord::fault
