#include "fault/fault.hh"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "sim/logging.hh"

namespace jord::fault {

namespace {

/** splitmix64 finalizer — the workhorse of the stateless hash chain. */
std::uint64_t
smix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Top 53 bits of @p x as a uniform double in [0, 1). */
double
toUnit(std::uint64_t x)
{
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double
parseProb(const std::string &key, const std::string &val)
{
    char *end = nullptr;
    double v = std::strtod(val.c_str(), &end);
    if (end == val.c_str() || *end != '\0')
        sim::fatal("fault plan: bad value '%s' for key '%s'",
                   val.c_str(), key.c_str());
    if (key != "spikex" && (v < 0.0 || v > 1.0))
        sim::fatal("fault plan: '%s=%s' out of [0,1]",
                   key.c_str(), val.c_str());
    if (key == "spikex" && v < 1.0)
        sim::fatal("fault plan: spikex must be >= 1 (got %s)",
                   val.c_str());
    return v;
}

void
applyKey(FaultRates &r, const std::string &key, const std::string &val)
{
    if (key == "crash")
        r.crash = parseProb(key, val);
    else if (key == "perm")
        r.argbufViolation = parseProb(key, val);
    else if (key == "spike")
        r.spike = parseProb(key, val);
    else if (key == "spikex")
        r.spikeMult = parseProb(key, val);
    else if (key == "drop")
        r.pipeDrop = parseProb(key, val);
    else
        sim::fatal("fault plan: unknown key '%s' "
                   "(expected crash/perm/spike/spikex/drop/seed)",
                   key.c_str());
}

void
describeRates(std::ostringstream &os, const FaultRates &r)
{
    bool first = true;
    auto emit = [&](const char *k, double v) {
        if (!first)
            os << ",";
        first = false;
        os << k << "=" << v;
    };
    if (r.crash > 0)
        emit("crash", r.crash);
    if (r.argbufViolation > 0)
        emit("perm", r.argbufViolation);
    if (r.spike > 0) {
        emit("spike", r.spike);
        emit("spikex", r.spikeMult);
    }
    if (r.pipeDrop > 0)
        emit("drop", r.pipeDrop);
    if (first)
        os << "none";
}

} // namespace

bool
FaultPlan::enabled() const
{
    if (defaults.any())
        return true;
    for (const auto &[name, rates] : byFunction)
        if (rates.any())
            return true;
    return false;
}

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::stringstream clauses(spec);
    std::string clause;
    bool first = true;
    while (std::getline(clauses, clause, ';')) {
        if (clause.empty())
            continue;
        std::string scope;
        std::string body = clause;
        auto colon = clause.find(':');
        if (colon != std::string::npos) {
            scope = clause.substr(0, colon);
            body = clause.substr(colon + 1);
            if (scope.empty())
                sim::fatal("fault plan: empty function name in '%s'",
                           clause.c_str());
        }
        FaultRates rates = scope.empty() ? plan.defaults : FaultRates{};
        std::stringstream pairs(body);
        std::string pair;
        while (std::getline(pairs, pair, ',')) {
            if (pair.empty())
                continue;
            auto eq = pair.find('=');
            if (eq == std::string::npos)
                sim::fatal("fault plan: expected key=value, got '%s'",
                           pair.c_str());
            std::string key = pair.substr(0, eq);
            std::string val = pair.substr(eq + 1);
            if (key == "seed") {
                if (!scope.empty())
                    sim::fatal("fault plan: seed is global, not valid "
                               "in clause '%s'", clause.c_str());
                plan.seed = std::strtoull(val.c_str(), nullptr, 10);
                continue;
            }
            applyKey(rates, key, val);
        }
        if (scope.empty()) {
            if (!first && colon == std::string::npos)
                sim::fatal("fault plan: only the first clause may be "
                           "unscoped ('%s')", clause.c_str());
            plan.defaults = rates;
        } else {
            plan.byFunction.emplace_back(scope, rates);
        }
        first = false;
    }
    return plan;
}

std::string
FaultPlan::describe() const
{
    std::ostringstream os;
    describeRates(os, defaults);
    for (const auto &[name, rates] : byFunction) {
        os << ";" << name << ":";
        describeRates(os, rates);
    }
    if (seed)
        os << " seed=" << seed;
    return os.str();
}

void
FaultInjector::configure(const FaultPlan &plan,
                         const std::vector<std::string> &fn_names,
                         std::uint64_t fallback_seed)
{
    seed_ = plan.seed ? plan.seed
                      : smix(fallback_seed ^ 0x9d2c5680a5b85eedull);
    rates_.assign(fn_names.size(), plan.defaults);
    for (const auto &[name, rates] : plan.byFunction) {
        bool found = false;
        for (std::size_t i = 0; i < fn_names.size(); ++i) {
            if (fn_names[i] == name) {
                rates_[i] = rates;
                found = true;
            }
        }
        if (!found)
            sim::fatal("fault plan: no deployed function named '%s'",
                       name.c_str());
    }
    enabled_ = plan.enabled();
}

std::uint64_t
FaultInjector::mix(std::uint64_t req_id, unsigned attempt,
                   unsigned site) const
{
    std::uint64_t h = smix(seed_ ^ smix(req_id));
    h = smix(h ^ (static_cast<std::uint64_t>(attempt) << 32 | site));
    return h;
}

double
FaultInjector::u(std::uint64_t req_id, unsigned attempt,
                 unsigned site) const
{
    return toUnit(mix(req_id, attempt, site));
}

Decision
FaultInjector::decide(std::uint64_t req_id, unsigned attempt,
                      std::uint32_t fn, unsigned num_segments) const
{
    Decision d;
    if (!enabled_ || fn >= rates_.size() || num_segments == 0)
        return d;
    const FaultRates &r = rates_[fn];
    if (!r.any())
        return d;

    // Sites: 0 = fate draw, 1 = segment pick, 2 = fraction, 3 = spike.
    double fate = u(req_id, attempt, 0);
    int seg = -1;
    if (fate < r.crash + r.argbufViolation) {
        seg = static_cast<int>(u(req_id, attempt, 1) * num_segments);
        if (seg >= static_cast<int>(num_segments))
            seg = static_cast<int>(num_segments) - 1;
        // Abort 5%..95% of the way through the chosen segment.
        d.fraction = 0.05 + 0.90 * u(req_id, attempt, 2);
    }
    if (fate < r.crash)
        d.crashSegment = seg;
    else if (fate < r.crash + r.argbufViolation)
        d.violationSegment = seg;
    if (r.spike > 0 && u(req_id, attempt, 3) < r.spike)
        d.spikeMult = r.spikeMult;
    return d;
}

bool
FaultInjector::pipeDrop(std::uint64_t req_id, unsigned attempt,
                        std::uint32_t fn) const
{
    if (!enabled_ || fn >= rates_.size())
        return false;
    const FaultRates &r = rates_[fn];
    // Site 4 keeps the drop draw independent of the fate draw.
    return r.pipeDrop > 0 && u(req_id, attempt, 4) < r.pipeDrop;
}

} // namespace jord::fault
