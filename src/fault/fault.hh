/**
 * @file
 * Deterministic fault injection for the simulated runtime.
 *
 * A FaultPlan describes *what* can go wrong — per-function crash
 * probability, ArgBuf permission-violation injections, latency-spike
 * (straggler) multipliers, and NightCore pipe drops. A FaultInjector is
 * the plan resolved against a worker's function registry; it answers
 * "does this attempt of this request fail, and where?".
 *
 * Every decision is a pure hash of (plan seed, request id, attempt,
 * site), never a draw from the simulation's RNG streams. Two
 * consequences the tests rely on:
 *
 *  - same-seed runs replay the exact same injections byte-identically,
 *    independent of event interleaving or how much randomness the
 *    workload itself consumes; and
 *  - a zero-rate plan is perfectly invisible: it consumes no RNG state,
 *    schedules no events, and leaves every existing run bit-for-bit
 *    unchanged.
 */

#ifndef JORD_FAULT_FAULT_HH
#define JORD_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jord::fault {

/** Injection rates for one function (all probabilities in [0, 1]). */
struct FaultRates {
    /** Invocation aborts partway through a compute segment. */
    double crash = 0;
    /**
     * The function touches memory beyond its ArgBuf bound; the UAT
     * raises a real hardware fault that the runtime must turn into an
     * abort (on NightCore this degenerates to a crash — a wild store
     * kills the process).
     */
    double argbufViolation = 0;
    /** Execution time multiplied by spikeMult (straggler model). */
    double spike = 0;
    /** NightCore only: the dispatch pipe write is lost. */
    double pipeDrop = 0;
    /** Multiplier applied to execution segments on a spike. */
    double spikeMult = 8.0;

    bool
    any() const
    {
        return crash > 0 || argbufViolation > 0 || spike > 0 ||
               pipeDrop > 0;
    }
};

/**
 * A fault plan: default rates plus per-function (by name) overrides.
 */
struct FaultPlan {
    /** Injection seed; 0 means "derive from the worker's seed". */
    std::uint64_t seed = 0;
    FaultRates defaults;
    /** Function-name -> rates overrides (resolved at worker setup). */
    std::vector<std::pair<std::string, FaultRates>> byFunction;

    bool enabled() const;

    /**
     * Parse a plan spec. Grammar (clauses separated by ';', the first
     * clause is global, later ones may be scoped to a function name):
     *
     *     crash=0.01,perm=0.002,spike=0.05,spikex=12,drop=0.01,seed=7
     *     crash=0.01;ReadPage:crash=0.2,drop=0.1
     *
     * Keys: crash, perm (ArgBuf violation), spike, spikex (multiplier),
     * drop, seed (global clause only). Exits via sim::fatal on a
     * malformed spec.
     */
    static FaultPlan parse(const std::string &spec);

    /** One-line human-readable summary ("crash=0.01 spike=0.05x8"). */
    std::string describe() const;
};

/** What the injector decided for one invocation attempt. */
struct Decision {
    /** Compute segment that crashes (-1 = none). */
    int crashSegment = -1;
    /** Compute segment that raises the ArgBuf violation (-1 = none). */
    int violationSegment = -1;
    /** Fraction of the faulting segment executed before the abort. */
    double fraction = 0.5;
    /** Execution-time multiplier (1.0 = no spike). */
    double spikeMult = 1.0;

    bool
    any() const
    {
        return crashSegment >= 0 || violationSegment >= 0 ||
               spikeMult > 1.0;
    }
};

/**
 * A FaultPlan resolved against a function registry.
 */
class FaultInjector
{
  public:
    /** Disabled injector: enabled() is false, decisions are empty. */
    FaultInjector() = default;

    /**
     * Resolve @p plan against the deployed function names (indexed by
     * FunctionId). Unknown override names exit via sim::fatal.
     * @p fallback_seed is used when the plan's seed is 0.
     */
    void configure(const FaultPlan &plan,
                   const std::vector<std::string> &fn_names,
                   std::uint64_t fallback_seed);

    bool enabled() const { return enabled_; }

    /**
     * Decide the fate of one attempt. At most one of crash/violation
     * triggers; a spike may combine with either (a straggler can still
     * crash).
     */
    Decision decide(std::uint64_t req_id, unsigned attempt,
                    std::uint32_t fn, unsigned num_segments) const;

    /** NightCore pipe drop for this attempt's dispatch message? */
    bool pipeDrop(std::uint64_t req_id, unsigned attempt,
                  std::uint32_t fn) const;

    const FaultRates &
    ratesFor(std::uint32_t fn) const
    {
        return rates_[fn];
    }

  private:
    bool enabled_ = false;
    std::uint64_t seed_ = 0;
    std::vector<FaultRates> rates_;

    /** Uniform [0,1) from the decision-site hash. */
    double u(std::uint64_t req_id, unsigned attempt,
             unsigned site) const;
    std::uint64_t mix(std::uint64_t req_id, unsigned attempt,
                      unsigned site) const;
};

} // namespace jord::fault

#endif // JORD_FAULT_FAULT_HH
