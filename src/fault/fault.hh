/**
 * @file
 * Deterministic fault injection for the simulated runtime.
 *
 * A FaultPlan describes *what* can go wrong — per-function crash
 * probability, ArgBuf permission-violation injections, latency-spike
 * (straggler) multipliers, and NightCore pipe drops. A FaultInjector is
 * the plan resolved against a worker's function registry; it answers
 * "does this attempt of this request fail, and where?".
 *
 * The plan's `cluster:` clause scales the same machinery to the fleet
 * (src/cluster): whole-server crashes with a Groundhog-style
 * snapshot-restore recovery cost per warm slot, gray (slow-but-alive)
 * degradation windows, and LB<->server link drops/delays. A
 * ClusterFaultInjector answers "does server S crash or run gray in
 * hazard window W?" and "is this dispatch's link message lost or
 * delayed?".
 *
 * Every decision is a pure hash of (plan seed, request id, attempt,
 * site) — or, for fleet events, (plan seed, server, window, site) —
 * never a draw from the simulation's RNG streams. Two consequences the
 * tests rely on:
 *
 *  - same-seed runs replay the exact same injections byte-identically,
 *    independent of event interleaving or how much randomness the
 *    workload itself consumes; and
 *  - a zero-rate plan is perfectly invisible: it consumes no RNG state,
 *    schedules no events, and leaves every existing run bit-for-bit
 *    unchanged.
 */

#ifndef JORD_FAULT_FAULT_HH
#define JORD_FAULT_FAULT_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace jord::fault {

/** Injection rates for one function (all probabilities in [0, 1]). */
struct FaultRates {
    /** Invocation aborts partway through a compute segment. */
    double crash = 0;
    /**
     * The function touches memory beyond its ArgBuf bound; the UAT
     * raises a real hardware fault that the runtime must turn into an
     * abort (on NightCore this degenerates to a crash — a wild store
     * kills the process).
     */
    double argbufViolation = 0;
    /** Execution time multiplied by spikeMult (straggler model). */
    double spike = 0;
    /** NightCore only: the dispatch pipe write is lost. */
    double pipeDrop = 0;
    /** Multiplier applied to execution segments on a spike. */
    double spikeMult = 8.0;

    bool
    any() const
    {
        return crash > 0 || argbufViolation > 0 || spike > 0 ||
               pipeDrop > 0;
    }
};

/**
 * Fleet-scope injection rates (the plan's `cluster:` clause). Hazard
 * rates are per (server, window) Bernoulli draws over fixed windows of
 * @ref windowMs; link rates are per dispatched request copy.
 */
struct ClusterFaultRates {
    /** A server crashes in a hazard window with this probability. */
    double serverCrash = 0;
    /** Base reboot time after a crash, before pool recovery. */
    double restartMs = 5.0;
    /**
     * Groundhog-style snapshot-restore cost per warm PD slot: a
     * restarted server pays this for every slot it re-prewarms, so
     * recovery time grows with the pool state the crash destroyed.
     */
    double recoverUsPerSlot = 50.0;
    /** A server runs gray (slow-but-alive) in a hazard window with
     * this probability. */
    double gray = 0;
    /** Service-time multiplier while a server is gray. */
    double grayMult = 4.0;
    /** Hazard-window size for the crash/gray draws. */
    double windowMs = 1.0;
    /** LB->server dispatch message lost with this probability. */
    double linkDrop = 0;
    /** LB->server dispatch message delayed with this probability. */
    double linkDelay = 0;
    /** The added delay for a delayed dispatch. */
    double linkDelayUs = 200.0;
    /** Scripted gray: this server id is gray for the whole run
     * (-1 = none). Gives controlled one-gray-server experiments. */
    int grayServer = -1;
    /** Scripted mass crash: at crashAtMs, the first
     * ceil(crashFrac * fleet) servers crash simultaneously
     * (crashAtMs < 0 = none). Models a correlated failure taking out
     * a capacity fraction in one instant. */
    double crashAtMs = -1.0;
    double crashFrac = 0.5;

    bool
    any() const
    {
        return serverCrash > 0 || gray > 0 || linkDrop > 0 ||
               linkDelay > 0 || grayServer >= 0 || crashAtMs >= 0;
    }
};

/**
 * A fault plan: default rates plus per-function (by name) overrides,
 * plus fleet-scope rates for --cluster runs.
 */
struct FaultPlan {
    /** Injection seed; 0 means "derive from the worker's seed". */
    std::uint64_t seed = 0;
    FaultRates defaults;
    /** Function-name -> rates overrides (resolved at worker setup). */
    std::vector<std::pair<std::string, FaultRates>> byFunction;
    /** Fleet-scope events (only read by src/cluster). */
    ClusterFaultRates cluster;

    bool enabled() const;

    /**
     * Parse a plan spec. Grammar (clauses separated by ';', the first
     * clause is global, later ones may be scoped to a function name or
     * to the reserved `cluster` scope):
     *
     *     crash=0.01,perm=0.002,spike=0.05,spikex=12,drop=0.01,seed=7
     *     crash=0.01;ReadPage:crash=0.2,drop=0.1
     *     cluster:crash=0.02,gray=0.05,grayx=4,window_ms=1
     *
     * Function-clause keys: crash, perm (ArgBuf violation), spike,
     * spikex (multiplier), drop, seed (global clause only).
     * Cluster-clause keys: crash, restart_ms, recover_us, gray, grayx,
     * window_ms, drop, delay, delay_us, gray_server, crash_at_ms,
     * crash_frac. Exits via sim::fatal with a pinpointed message on a
     * malformed spec (unknown key, out-of-range rate, duplicate
     * function clause).
     */
    static FaultPlan parse(const std::string &spec);

    /** One-line human-readable summary ("crash=0.01 spike=0.05x8"). */
    std::string describe() const;
};

/** What the injector decided for one invocation attempt. */
struct Decision {
    /** Compute segment that crashes (-1 = none). */
    int crashSegment = -1;
    /** Compute segment that raises the ArgBuf violation (-1 = none). */
    int violationSegment = -1;
    /** Fraction of the faulting segment executed before the abort. */
    double fraction = 0.5;
    /** Execution-time multiplier (1.0 = no spike). */
    double spikeMult = 1.0;

    bool
    any() const
    {
        return crashSegment >= 0 || violationSegment >= 0 ||
               spikeMult > 1.0;
    }
};

/**
 * A FaultPlan resolved against a function registry.
 */
class FaultInjector
{
  public:
    /** Disabled injector: enabled() is false, decisions are empty. */
    FaultInjector() = default;

    /**
     * Resolve @p plan against the deployed function names (indexed by
     * FunctionId). Unknown override names exit via sim::fatal.
     * @p fallback_seed is used when the plan's seed is 0.
     */
    void configure(const FaultPlan &plan,
                   const std::vector<std::string> &fn_names,
                   std::uint64_t fallback_seed);

    bool enabled() const { return enabled_; }

    /**
     * Decide the fate of one attempt. At most one of crash/violation
     * triggers; a spike may combine with either (a straggler can still
     * crash).
     */
    Decision decide(std::uint64_t req_id, unsigned attempt,
                    std::uint32_t fn, unsigned num_segments) const;

    /** NightCore pipe drop for this attempt's dispatch message? */
    bool pipeDrop(std::uint64_t req_id, unsigned attempt,
                  std::uint32_t fn) const;

    const FaultRates &
    ratesFor(std::uint32_t fn) const
    {
        return rates_[fn];
    }

  private:
    bool enabled_ = false;
    std::uint64_t seed_ = 0;
    std::vector<FaultRates> rates_;

    /** Uniform [0,1) from the decision-site hash. */
    double u(std::uint64_t req_id, unsigned attempt,
             unsigned site) const;
    std::uint64_t mix(std::uint64_t req_id, unsigned attempt,
                      unsigned site) const;
};

/** One contiguous gray run: @ref server is gray for every hazard
 * window in [beginWindow, endWindow). A scripted gray_server shows up
 * as one run spanning the whole horizon. */
struct GrayIncident {
    std::uint32_t server = 0;
    std::uint64_t beginWindow = 0;
    std::uint64_t endWindow = 0;
};

/**
 * The plan's fleet-scope rates resolved for one cluster run. Like
 * FaultInjector, every answer is a pure hash — (seed, server, hazard
 * window, site) for server events, (seed, request id, attempt, site)
 * for link events — so fleet chaos replays byte-identically across
 * same-seed runs and is invisible at zero rates.
 */
class ClusterFaultInjector
{
  public:
    /** Disabled injector: enabled() is false, nothing ever fails. */
    ClusterFaultInjector() = default;

    /** @p fallback_seed is used when the plan's seed is 0. */
    void configure(const FaultPlan &plan, std::uint64_t fallback_seed);

    bool enabled() const { return enabled_; }
    const ClusterFaultRates &rates() const { return rates_; }

    /** Does @p server crash in hazard window @p window? (Scripted
     * mass crashes are handled by the caller via rates().crashAtMs;
     * this is only the stochastic hazard.) */
    bool crashes(std::uint32_t server, std::uint64_t window) const;

    /** Fraction of the window elapsed before the crash fires. */
    double crashOffset(std::uint32_t server,
                       std::uint64_t window) const;

    /** Is @p server gray (service times x grayMult) in @p window? */
    bool grayWindow(std::uint32_t server, std::uint64_t window) const;

    /** Is this dispatch copy's LB->server message lost? */
    bool linkDrop(std::uint64_t req_id, unsigned attempt,
                  unsigned copy) const;

    /** Is this dispatch copy's LB->server message delayed? */
    bool linkDelay(std::uint64_t req_id, unsigned attempt,
                   unsigned copy) const;

    /**
     * Enumerate every gray run the plan fires over the first
     * @p num_windows hazard windows: a pure replay of grayWindow()
     * with adjacent gray windows on one server merged, ordered by
     * (server, beginWindow). This is exactly the ground truth the
     * observability plane logs as gray incidents.
     */
    std::vector<GrayIncident>
    grayIncidents(std::uint32_t num_servers,
                  std::uint64_t num_windows) const;

  private:
    bool enabled_ = false;
    std::uint64_t seed_ = 0;
    ClusterFaultRates rates_;

    double u(std::uint64_t a, std::uint64_t b, unsigned site) const;
};

} // namespace jord::fault

#endif // JORD_FAULT_FAULT_HH
