#include "prof/profiler.hh"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "sim/logging.hh"

namespace jord::prof {

Profiler::Profiler(sim::EventQueue &events, SampleSource &source,
                   const Config &cfg)
    : events_(events), source_(source), cfg_(cfg)
{
    if (cfg_.hz <= 0.0)
        sim::panic("Profiler: sample rate must be positive");
    double cycles = cfg_.freqGhz * 1e9 / cfg_.hz;
    period_ = std::max<sim::Cycles>(
        1, static_cast<sim::Cycles>(std::llround(cycles)));
    ring_.reserve(std::min<std::size_t>(cfg_.ringCap, 4096));
}

void
Profiler::arm()
{
    // Daemon events never advance lastWorkTick(), so sampling cannot
    // stretch the run's measured window past its last real event.
    events_.scheduleDaemonAfter(period_, [this] { fire(); });
}

void
Profiler::fire()
{
    // Our own event has been popped; if nothing else remains the run's
    // last real event already executed — record nothing (the tail
    // would be a pure-idle sample) and let the queue drain.
    if (events_.empty())
        return;
    record();
    events_.scheduleDaemonAfter(period_, [this] { fire(); });
}

void
Profiler::record()
{
    ++samples_;
    coreScratch_.clear();
    GlobalSample global;
    source_.profSample(coreScratch_, global);

    TimePoint pt;
    pt.tick = events_.curTick();
    pt.liveInvocations = global.liveInvocations;
    pt.livePds = global.livePds;
    pt.liveArgBufs = global.liveArgBufs;

    for (const CoreSample &cs : coreScratch_) {
        pt.queueDepth += cs.queueDepth;
        pt.vlbIOccupancy += cs.vlbIOccupancy;
        pt.vlbDOccupancy += cs.vlbDOccupancy;
        if (!cs.busy)
            continue;
        ++pt.busyCores;
        std::string key;
        if (cs.orchestrator) {
            key = "orchestrator";
        } else if (cs.stack.empty()) {
            key = "runtime";
        } else {
            for (const std::string &frame : cs.stack) {
                if (!key.empty())
                    key += ';';
                key += frame;
            }
        }
        folded_[key] += period_;
    }

    if (ring_.size() < cfg_.ringCap) {
        ring_.push_back(pt);
    } else {
        ring_[ringHead_] = pt;
        ringHead_ = (ringHead_ + 1) % cfg_.ringCap;
        ++dropped_;
    }
}

void
Profiler::writeFolded(std::ostream &out) const
{
    for (const auto &[stack, cycles] : folded_)
        out << stack << ' ' << cycles << '\n';
}

void
Profiler::writeTimeSeriesCsv(std::ostream &out) const
{
    out << "tick,busy_cores,live_invocations,live_pds,live_argbufs,"
           "queue_depth,vlb_i_occupancy,vlb_d_occupancy\n";
    // ringHead_ points at the oldest entry once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        const TimePoint &pt = ring_[(ringHead_ + i) % ring_.size()];
        out << pt.tick << ',' << pt.busyCores << ','
            << pt.liveInvocations << ',' << pt.livePds << ','
            << pt.liveArgBufs << ',' << pt.queueDepth << ','
            << pt.vlbIOccupancy << ',' << pt.vlbDOccupancy << '\n';
    }
}

} // namespace jord::prof
