/**
 * @file
 * Simulated per-core performance-monitoring unit (PMU).
 *
 * The PMU carries two kinds of state, both incremented at zero
 * simulated latency from null-guarded hook sites in uat/mem/privlib/
 * runtime:
 *
 *  - named event counters (VLB i/d hits and misses, VTW walks and walk
 *    depth, VTD lookups/shootdowns/back-invalidations, NoC messages and
 *    hops, L1/LLC/DRAM coherence events, queue-wait cycles, ...);
 *  - top-down cycle buckets that decompose each core's time into
 *    retire / VLB-miss stall / VTW walk / shootdown / NoC /
 *    dispatch-wait / idle.
 *
 * Bucket charges are only accepted inside an *attribution window* the
 * runtime opens around each busy stretch of a core. The window closes
 * with the stretch's total busy cycles; whatever the hooks did not
 * attribute to a stall bucket is charged to Retire. This makes the
 * per-core invariant
 *
 *     Retire + stalls == sum of busy cycles
 *
 * hold by construction, and finalize() turns the remainder of the run
 * into Idle so the buckets of each core sum to the run's total ticks.
 */

#ifndef JORD_PROF_PMU_HH
#define JORD_PROF_PMU_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "sim/types.hh"

namespace jord::prof {

/** Named PMU event counters. */
enum class PmuCounter : unsigned {
    RetiredOps,      ///< modelled operations retired (UAT + memory)
    VlbIHits,        ///< instruction-VLB hits
    VlbIMisses,      ///< instruction-VLB misses
    VlbDHits,        ///< data-VLB hits
    VlbDMisses,      ///< data-VLB misses
    VtwWalks,        ///< VTW table walks started
    VtwWalkDepth,    ///< table blocks touched across all walks
    VtdLookups,      ///< VTD sharer-tracker lookups
    VtdShootdowns,   ///< shootdowns that fanned out to a remote core
    VtdBackInvals,   ///< VTD capacity-eviction back-invalidations
    NocMsgs,         ///< coherence messages placed on the NoC
    NocHops,         ///< mesh hops traversed by those messages
    L1Hits,          ///< L1 cache hits
    LlcHits,         ///< LLC hits (including owner forwards)
    DramFills,       ///< misses filled from DRAM
    QueueWaitCycles, ///< invocation cycles waiting in queues/joins
    DispatchScans,   ///< orchestrator JBSQ queue-length scans
    NumCounters,
};

/** Top-down cycle-attribution buckets (§6-style decomposition). */
enum class PmuBucket : unsigned {
    Retire,       ///< useful work (compute segments, runtime code)
    VlbMissStall, ///< VLB-miss handling outside the walk's memory reads
    VtwWalk,      ///< memory traffic of VTW table walks
    Shootdown,    ///< waiting on VLB shootdown completion (fences)
    Noc,          ///< stalled on cross-core coherence traffic
    DispatchWait, ///< orchestrator dispatch-decision scans
    Idle,         ///< no work on the core
    NumBuckets,
};

const char *pmuCounterName(PmuCounter counter);
const char *pmuBucketName(PmuBucket bucket);

/**
 * The simulated PMU: per-core counters plus one uncore counter row for
 * events with no initiating core (VTD back-invalidations).
 */
class Pmu
{
  public:
    static constexpr unsigned kNumCounters =
        static_cast<unsigned>(PmuCounter::NumCounters);
    static constexpr unsigned kNumBuckets =
        static_cast<unsigned>(PmuBucket::NumBuckets);

    explicit Pmu(unsigned num_cores);

    unsigned numCores() const
    {
        return static_cast<unsigned>(counters_.size());
    }

    // --- Event counters (always accepted) ---------------------------

    void
    add(unsigned core, PmuCounter counter, std::uint64_t n = 1)
    {
        counters_[core][static_cast<unsigned>(counter)] += n;
    }

    /** Count an event with no initiating core (uncore row). */
    void
    addUncore(PmuCounter counter, std::uint64_t n = 1)
    {
        uncore_[static_cast<unsigned>(counter)] += n;
    }

    std::uint64_t
    counter(unsigned core, PmuCounter counter) const
    {
        return counters_[core][static_cast<unsigned>(counter)];
    }

    std::uint64_t
    uncoreCounter(PmuCounter counter) const
    {
        return uncore_[static_cast<unsigned>(counter)];
    }

    /** Sum of a counter over all cores plus the uncore row. */
    std::uint64_t totalCounter(PmuCounter counter) const;

    // --- Top-down cycle buckets -------------------------------------

    /**
     * Open the attribution window of a busy stretch on @p core and
     * return the attributed-cycle watermark to pass to endWindow().
     */
    std::uint64_t
    beginWindow(unsigned core)
    {
        windowOpen_[core] = true;
        return attributed_[core];
    }

    /**
     * Close the window: the stretch consumed @p busy cycles in total;
     * whatever the hooks attributed beyond @p watermark stays in its
     * stall bucket and the remainder is charged to Retire.
     */
    void endWindow(unsigned core, sim::Cycles busy,
                   std::uint64_t watermark);

    /** Charge stall cycles; dropped when no window is open on @p core
     * (work outside any busy stretch is not attributed). */
    void
    charge(unsigned core, PmuBucket bucket, sim::Cycles cycles)
    {
        if (!windowOpen_[core] || cycles == 0)
            return;
        buckets_[core][static_cast<unsigned>(bucket)] += cycles;
        attributed_[core] += cycles;
    }

    /** Move up to @p cycles already charged to @p from into @p to
     * (e.g. walk memory reads first land in Noc, then get
     * reclassified as VtwWalk). Attributed totals are unchanged. */
    void reclassify(unsigned core, PmuBucket from, PmuBucket to,
                    sim::Cycles cycles);

    std::uint64_t
    bucket(unsigned core, PmuBucket bucket) const
    {
        return buckets_[core][static_cast<unsigned>(bucket)];
    }

    /**
     * End-of-run: charge each core's unaccounted remainder of
     * @p total_ticks to Idle. Cores whose attributed work already
     * exceeds the total (possible only through off-model charges) are
     * clamped to zero idle and counted in clampedCores().
     */
    void finalize(sim::Tick total_ticks);

    sim::Tick totalTicks() const { return totalTicks_; }
    unsigned clampedCores() const { return clampedCores_; }

    // --- Export -------------------------------------------------------

    /** Per-core counter CSV: core,counter,value (plus uncore/total). */
    void writeCountersCsv(std::ostream &out) const;

    /** Per-core top-down CSV: core,bucket...,total. */
    void writeTopDownCsv(std::ostream &out) const;

    void reset();

  private:
    std::vector<std::array<std::uint64_t, kNumCounters>> counters_;
    std::array<std::uint64_t, kNumCounters> uncore_{};
    std::vector<std::array<std::uint64_t, kNumBuckets>> buckets_;
    /** Cycles charged to any stall bucket (not Retire/Idle), per core. */
    std::vector<std::uint64_t> attributed_;
    std::vector<bool> windowOpen_;
    sim::Tick totalTicks_ = 0;
    unsigned clampedCores_ = 0;
};

/**
 * RAII window guard: opens an attribution window on construction and
 * closes it with the current value of a caller-owned busy accumulator.
 * Null PMU means every operation is a no-op.
 */
class PmuWindow
{
  public:
    PmuWindow(Pmu *pmu, unsigned core, const sim::Cycles &busy)
        : pmu_(pmu), core_(core), busy_(busy),
          watermark_(pmu ? pmu->beginWindow(core) : 0)
    {
    }

    ~PmuWindow()
    {
        if (pmu_)
            pmu_->endWindow(core_, busy_, watermark_);
    }

    PmuWindow(const PmuWindow &) = delete;
    PmuWindow &operator=(const PmuWindow &) = delete;

  private:
    Pmu *pmu_;
    unsigned core_;
    const sim::Cycles &busy_;
    std::uint64_t watermark_;
};

} // namespace jord::prof

#endif // JORD_PROF_PMU_HH
