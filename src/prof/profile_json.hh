/**
 * @file
 * Deterministic flat JSON for profile/bench summaries.
 *
 * The profile exporter, the bench targets and tools/jordprof exchange
 * flat string->number maps.  Writing them through one helper (sorted
 * keys, fixed %.10g formatting, no locale dependence) makes same-seed
 * runs byte-identical and lets jordprof diff files from either source.
 */

#ifndef JORD_PROF_PROFILE_JSON_HH
#define JORD_PROF_PROFILE_JSON_HH

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <ostream>
#include <string>

namespace jord::prof {

/** Write a flat {"key": number, ...} object with sorted keys. */
inline void
writeFlatJson(std::ostream &out, const std::map<std::string, double> &kv)
{
    out << "{\n";
    bool first = true;
    for (const auto &[key, value] : kv) {
        if (!first)
            out << ",\n";
        first = false;
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.10g", value);
        out << "  \"" << key << "\": " << buf;
    }
    out << "\n}\n";
}

/**
 * Parse a flat {"key": number, ...} object produced by writeFlatJson
 * (or any JSON object whose values are all plain numbers).  Returns
 * false on malformed input; nested structures are rejected.
 */
inline bool
parseFlatJson(const std::string &text, std::map<std::string, double> &kv)
{
    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };
    skipWs();
    if (i >= text.size() || text[i] != '{')
        return false;
    ++i;
    skipWs();
    if (i < text.size() && text[i] == '}')
        return true;
    while (true) {
        skipWs();
        if (i >= text.size() || text[i] != '"')
            return false;
        std::size_t end = text.find('"', i + 1);
        if (end == std::string::npos)
            return false;
        std::string key = text.substr(i + 1, end - i - 1);
        i = end + 1;
        skipWs();
        if (i >= text.size() || text[i] != ':')
            return false;
        ++i;
        skipWs();
        char *num_end = nullptr;
        double value = std::strtod(text.c_str() + i, &num_end);
        if (num_end == text.c_str() + i)
            return false;
        kv[key] = value;
        i = static_cast<std::size_t>(num_end - text.c_str());
        skipWs();
        if (i >= text.size())
            return false;
        if (text[i] == ',') {
            ++i;
            continue;
        }
        if (text[i] == '}')
            return true;
        return false;
    }
}

} // namespace jord::prof

#endif // JORD_PROF_PROFILE_JSON_HH
