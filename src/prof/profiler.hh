/**
 * @file
 * Sampling profiler driven by periodic event-queue events.
 *
 * Every sample period the profiler pulls a snapshot of per-core state
 * (running PD/function, the nested-ccall stack, queue depths, VLB
 * occupancy) and global gauges (live PDs, ArgBufs, invocations) from a
 * SampleSource — implemented by the runtime's WorkerServer — and folds
 * busy cores' call stacks into a flamegraph-ready folded-stack map
 * weighted by the sample period in cycles. Gauge snapshots land in a
 * bounded ring buffer exported as a time-series CSV.
 *
 * Sampling mutates no simulation state and draws no random numbers, so
 * attaching the profiler leaves the simulated run byte-identical.
 * The self-rescheduling sample event stops rescheduling once the event
 * queue holds no other work, so it never keeps the run alive.
 */

#ifndef JORD_PROF_PROFILER_HH
#define JORD_PROF_PROFILER_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/types.hh"

namespace jord::prof {

/** One core's state at a sample point. */
struct CoreSample
{
    unsigned core = 0;
    bool orchestrator = false;
    bool busy = false;
    std::uint64_t pd = 0;
    std::string fn;
    /** Folded ccall stack, root caller first; empty when idle. */
    std::vector<std::string> stack;
    std::size_t queueDepth = 0;
    std::size_t outstanding = 0;
    unsigned domainDepth = 0;
    std::size_t vlbIOccupancy = 0;
    std::size_t vlbICapacity = 0;
    std::size_t vlbDOccupancy = 0;
    std::size_t vlbDCapacity = 0;
};

/** System-wide gauges at a sample point. */
struct GlobalSample
{
    std::size_t livePds = 0;
    std::size_t liveArgBufs = 0;
    std::size_t liveInvocations = 0;
};

/** Implemented by the runtime: fill in the current snapshot. */
class SampleSource
{
  public:
    virtual ~SampleSource() = default;
    virtual void profSample(std::vector<CoreSample> &cores,
                            GlobalSample &global) = 0;
};

/** One ring-buffer entry of the sampled gauge time series. */
struct TimePoint
{
    sim::Tick tick = 0;
    unsigned busyCores = 0;
    std::size_t liveInvocations = 0;
    std::size_t livePds = 0;
    std::size_t liveArgBufs = 0;
    std::size_t queueDepth = 0;
    std::size_t vlbIOccupancy = 0;
    std::size_t vlbDOccupancy = 0;
};

class Profiler
{
  public:
    struct Config
    {
        double hz = 100000.0;    ///< samples per simulated second
        double freqGhz = 4.0;    ///< core clock, converts hz to cycles
        std::size_t ringCap = 1 << 16; ///< time-series ring capacity
    };

    Profiler(sim::EventQueue &events, SampleSource &source,
             const Config &cfg);

    /** Schedule the first sample; call after the run's first events
     * are queued (an empty queue would stop sampling immediately). */
    void arm();

    sim::Cycles periodCycles() const { return period_; }
    std::uint64_t samples() const { return samples_; }

    /** Folded stacks: "root;callee;leaf" -> sampled cycles. */
    const std::map<std::string, std::uint64_t> &folded() const
    {
        return folded_;
    }

    /** Flamegraph folded-stack format, one "stack weight" per line. */
    void writeFolded(std::ostream &out) const;

    /** Time-series CSV of the (ring-buffered) gauge samples. */
    void writeTimeSeriesCsv(std::ostream &out) const;

  private:
    void fire();
    void record();

    sim::EventQueue &events_;
    SampleSource &source_;
    Config cfg_;
    sim::Cycles period_;
    std::uint64_t samples_ = 0;
    std::uint64_t dropped_ = 0;

    std::map<std::string, std::uint64_t> folded_;
    std::vector<TimePoint> ring_;
    std::size_t ringHead_ = 0;

    // Scratch buffers reused across samples.
    std::vector<CoreSample> coreScratch_;
};

} // namespace jord::prof

#endif // JORD_PROF_PROFILER_HH
