#include "prof/pmu.hh"

#include <algorithm>
#include <ostream>

#include "sim/logging.hh"

namespace jord::prof {

namespace {

constexpr const char *kCounterNames[Pmu::kNumCounters] = {
    "retired_ops",     "vlb_i_hits",       "vlb_i_misses",
    "vlb_d_hits",      "vlb_d_misses",     "vtw_walks",
    "vtw_walk_depth",  "vtd_lookups",      "vtd_shootdowns",
    "vtd_back_invals", "noc_msgs",         "noc_hops",
    "l1_hits",         "llc_hits",         "dram_fills",
    "queue_wait_cycles", "dispatch_scans",
};

constexpr const char *kBucketNames[Pmu::kNumBuckets] = {
    "retire",    "vlb_miss_stall", "vtw_walk",      "shootdown",
    "noc",       "dispatch_wait",  "idle",
};

} // namespace

const char *
pmuCounterName(PmuCounter counter)
{
    return kCounterNames[static_cast<unsigned>(counter)];
}

const char *
pmuBucketName(PmuBucket bucket)
{
    return kBucketNames[static_cast<unsigned>(bucket)];
}

Pmu::Pmu(unsigned num_cores)
    : counters_(num_cores), buckets_(num_cores), attributed_(num_cores, 0),
      windowOpen_(num_cores, false)
{
    for (auto &row : counters_)
        row.fill(0);
    for (auto &row : buckets_)
        row.fill(0);
}

std::uint64_t
Pmu::totalCounter(PmuCounter counter) const
{
    std::uint64_t total = uncore_[static_cast<unsigned>(counter)];
    for (const auto &row : counters_)
        total += row[static_cast<unsigned>(counter)];
    return total;
}

void
Pmu::endWindow(unsigned core, sim::Cycles busy, std::uint64_t watermark)
{
    windowOpen_[core] = false;
    std::uint64_t delta = attributed_[core] - watermark;
    if (busy > delta) {
        buckets_[core][static_cast<unsigned>(PmuBucket::Retire)] +=
            busy - delta;
    }
    // delta > busy would mean hooks attributed more stall cycles than
    // the stretch charged; the window protocol keeps per-access charges
    // <= the access latency, so the stretch total bounds delta.
}

void
Pmu::reclassify(unsigned core, PmuBucket from, PmuBucket to,
                sim::Cycles cycles)
{
    auto &row = buckets_[core];
    std::uint64_t moved =
        std::min<std::uint64_t>(cycles, row[static_cast<unsigned>(from)]);
    row[static_cast<unsigned>(from)] -= moved;
    row[static_cast<unsigned>(to)] += moved;
}

void
Pmu::finalize(sim::Tick total_ticks)
{
    totalTicks_ = total_ticks;
    clampedCores_ = 0;
    for (auto &row : buckets_) {
        std::uint64_t accounted = 0;
        for (unsigned b = 0; b < kNumBuckets; ++b) {
            if (b != static_cast<unsigned>(PmuBucket::Idle))
                accounted += row[b];
        }
        if (accounted <= total_ticks) {
            row[static_cast<unsigned>(PmuBucket::Idle)] =
                total_ticks - accounted;
        } else {
            row[static_cast<unsigned>(PmuBucket::Idle)] = 0;
            ++clampedCores_;
        }
    }
}

void
Pmu::writeCountersCsv(std::ostream &out) const
{
    out << "core,counter,value\n";
    for (unsigned core = 0; core < numCores(); ++core) {
        for (unsigned c = 0; c < kNumCounters; ++c) {
            out << core << ',' << kCounterNames[c] << ','
                << counters_[core][c] << '\n';
        }
    }
    for (unsigned c = 0; c < kNumCounters; ++c)
        out << "uncore," << kCounterNames[c] << ',' << uncore_[c] << '\n';
    for (unsigned c = 0; c < kNumCounters; ++c) {
        out << "total," << kCounterNames[c] << ','
            << totalCounter(static_cast<PmuCounter>(c)) << '\n';
    }
}

void
Pmu::writeTopDownCsv(std::ostream &out) const
{
    out << "core";
    for (unsigned b = 0; b < kNumBuckets; ++b)
        out << ',' << kBucketNames[b];
    out << ",total\n";
    std::array<std::uint64_t, kNumBuckets> sums{};
    for (unsigned core = 0; core < numCores(); ++core) {
        out << core;
        std::uint64_t total = 0;
        for (unsigned b = 0; b < kNumBuckets; ++b) {
            out << ',' << buckets_[core][b];
            total += buckets_[core][b];
            sums[b] += buckets_[core][b];
        }
        out << ',' << total << '\n';
    }
    out << "all";
    std::uint64_t grand = 0;
    for (unsigned b = 0; b < kNumBuckets; ++b) {
        out << ',' << sums[b];
        grand += sums[b];
    }
    out << ',' << grand << '\n';
}

void
Pmu::reset()
{
    for (auto &row : counters_)
        row.fill(0);
    uncore_.fill(0);
    for (auto &row : buckets_)
        row.fill(0);
    std::fill(attributed_.begin(), attributed_.end(), 0);
    std::fill(windowOpen_.begin(), windowOpen_.end(), false);
    totalTicks_ = 0;
    clampedCores_ = 0;
}

} // namespace jord::prof
