#include "par/domains.hh"

#include <algorithm>
#include <utility>

#include "sim/logging.hh"

namespace jord::par {

namespace {

/** floor + lookahead, saturating at kTickMax. */
sim::Tick
saturatingAdd(sim::Tick base, sim::Tick delta)
{
    if (delta >= sim::kTickMax - base)
        return sim::kTickMax;
    return base + delta;
}

/** Min-heap comparator for newborn runnables. */
struct NewbornGreater {
    template <typename N>
    bool
    operator()(const N &a, const N &b) const
    {
        return b.before(a);
    }
};

} // namespace

DomainEngine::DomainEngine(const Config &cfg, ThreadPool *pool)
    : cfg_(cfg), pool_(pool)
{
    if (cfg_.domains == 0)
        sim::panic("DomainEngine: need at least one domain");
    if (cfg_.domains > 1 && cfg_.lookahead == 0)
        sim::panic("DomainEngine: multi-domain execution needs a "
                   "positive lookahead");
    domains_.resize(cfg_.domains);
}

sim::Tick
DomainEngine::Context::lookahead() const
{
    return eng_.cfg_.lookahead;
}

void
DomainEngine::schedule(unsigned domain, sim::Tick when, DomainFn fn)
{
    if (domain >= domains_.size())
        sim::panic("DomainEngine: domain %u out of range (have %zu)",
                   domain, domains_.size());
    domains_[domain].queue.push(
        Pending{when, seedSeq(), false, std::move(fn)});
}

void
DomainEngine::scheduleDaemon(unsigned domain, sim::Tick when, DomainFn fn)
{
    if (domain >= domains_.size())
        sim::panic("DomainEngine: domain %u out of range (have %zu)",
                   domain, domains_.size());
    domains_[domain].queue.push(
        Pending{when, seedSeq(), true, std::move(fn)});
}

void
DomainEngine::Context::schedule(unsigned domain, sim::Tick when,
                                DomainFn fn)
{
    DomainState &ds = eng_.domains_[domain_];
    if (when < now_)
        sim::panic("DomainEngine: scheduling event in the past "
                   "(when=%llu now=%llu)",
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(now_));
    if (domain >= eng_.domains_.size())
        sim::panic("DomainEngine: domain %u out of range (have %zu)",
                   domain, eng_.domains_.size());
    if (domain != domain_ &&
        when < saturatingAdd(now_, eng_.cfg_.lookahead))
        sim::panic("DomainEngine: cross-domain schedule %u -> %u at "
                   "when=%llu violates lookahead %llu (now=%llu)",
                   domain_, domain,
                   static_cast<unsigned long long>(when),
                   static_cast<unsigned long long>(eng_.cfg_.lookahead),
                   static_cast<unsigned long long>(now_));
    std::size_t birth = ds.births.size();
    ds.births.push_back(Birth{domain, when, false, std::move(fn), 0,
                              false, 0});
    LogEntry &cur = ds.log[ds.log.size() - 1];
    cur.children.push_back(birth);
    if (domain == domain_ && when < ds.epochHorizon) {
        ds.runnable.push_back(Newborn{when, ds.dispatchPos - 1,
                                      cur.children.size() - 1, birth});
        std::push_heap(ds.runnable.begin(), ds.runnable.end(),
                       NewbornGreater{});
    }
}

void
DomainEngine::Context::scheduleDaemon(unsigned domain, sim::Tick when,
                                      DomainFn fn)
{
    schedule(domain, when, std::move(fn));
    eng_.domains_[domain_].births.back().daemon = true;
}

void
DomainEngine::runEpoch(unsigned domain, sim::Tick horizon)
{
    DomainState &ds = domains_[domain];
    ds.log.clear();
    ds.births.clear();
    ds.runnable.clear();
    ds.dispatched = 0;
    ds.sawAny = false;
    ds.sawWork = false;
    ds.epochHorizon = horizon;
    Context ctx(*this, domain);

    while (true) {
        const Pending *pending = ds.queue.peek();
        bool have_pending = pending != nullptr && pending->when < horizon;
        bool have_newborn = !ds.runnable.empty();
        // Assigned events win ties: their seqs predate any newborn's.
        bool take_pending =
            have_pending &&
            (!have_newborn || pending->when <= ds.runnable.front().when);

        if (take_pending) {
            Pending ev = ds.queue.pop();
            ds.log.push_back(
                LogEntry{ev.when, ev.seq, true, ev.daemon, {}});
            ctx.now_ = ev.when;
            ++ds.dispatchPos;
            ++ds.dispatched;
            ds.sawAny = true;
            ds.maxWhen = ev.when;
            if (!ev.daemon) {
                ds.sawWork = true;
                ds.maxWorkWhen = ev.when;
            }
            ev.fn(ctx);
        } else if (have_newborn) {
            std::pop_heap(ds.runnable.begin(), ds.runnable.end(),
                          NewbornGreater{});
            Newborn nb = ds.runnable.back();
            ds.runnable.pop_back();
            Birth &b = ds.births[nb.birth];
            b.executed = true;
            b.logIndex = ds.log.size();
            ds.log.push_back(LogEntry{b.when, 0, false, b.daemon, {}});
            ctx.now_ = b.when;
            ++ds.dispatchPos;
            ++ds.dispatched;
            ds.sawAny = true;
            ds.maxWhen = b.when;
            if (!b.daemon) {
                ds.sawWork = true;
                ds.maxWorkWhen = b.when;
            }
            b.fn(ctx);
        } else {
            break;
        }
    }
}

void
DomainEngine::barrier()
{
    // Replay the epoch's dispatches in global canonical order (K-way
    // merge of the per-domain logs by (when, seq)) and hand each
    // visited event's children their seqs in schedule-call order —
    // exactly when the serial reference would have assigned them. A
    // front entry always has its seq materialized by the time it can
    // win the merge: its parent precedes it in the same log.
    std::vector<std::size_t> front(domains_.size(), 0);
    while (true) {
        int best = -1;
        for (std::size_t d = 0; d < domains_.size(); ++d) {
            if (front[d] >= domains_[d].log.size())
                continue;
            const LogEntry &e = domains_[d].log[front[d]];
            if (!e.hasSeq)
                sim::panic("DomainEngine: unnumbered log entry at "
                           "merge front (internal error)");
            if (best < 0)
                best = static_cast<int>(d);
            else {
                const LogEntry &o =
                    domains_[static_cast<std::size_t>(best)]
                        .log[front[static_cast<std::size_t>(best)]];
                if (e.when < o.when ||
                    (e.when == o.when && e.seq < o.seq))
                    best = static_cast<int>(d);
            }
        }
        if (best < 0)
            break;
        DomainState &ds = domains_[static_cast<std::size_t>(best)];
        const LogEntry &entry =
            ds.log[front[static_cast<std::size_t>(best)]++];
        for (std::size_t bi : entry.children) {
            Birth &b = ds.births[bi];
            std::uint64_t seq = seedSeq();
            if (b.executed) {
                LogEntry &child = ds.log[b.logIndex];
                child.seq = seq;
                child.hasSeq = true;
            } else {
                b.seq = seq;
            }
        }
    }

    // Commit the surviving (unexecuted) births to their target
    // domains' sub-queues, and fold in this epoch's counters.
    for (DomainState &ds : domains_) {
        for (Birth &b : ds.births) {
            if (b.executed)
                continue;
            domains_[b.targetDomain].queue.push(
                Pending{b.when, b.seq, b.daemon, std::move(b.fn)});
        }
        numDispatched_ += ds.dispatched;
        if (ds.sawAny && ds.maxWhen > curTick_)
            curTick_ = ds.maxWhen;
        if (ds.sawWork && ds.maxWorkWhen > lastWorkTick_)
            lastWorkTick_ = ds.maxWorkWhen;
    }
}

sim::Tick
DomainEngine::run()
{
    while (true) {
        sim::Tick floor = sim::kTickMax;
        bool any = false;
        for (DomainState &ds : domains_) {
            const Pending *p = ds.queue.peek();
            if (p != nullptr && (!any || p->when < floor)) {
                floor = p->when;
                any = true;
            }
        }
        if (!any)
            break;
        sim::Tick horizon = saturatingAdd(floor, cfg_.lookahead);
        ++numEpochs_;
        TaskGroup group(pool_ != nullptr && pool_->numThreads() > 1
                            ? pool_
                            : nullptr);
        for (unsigned d = 0; d < domains_.size(); ++d)
            group.run([this, d, horizon] { runEpoch(d, horizon); });
        group.wait();
        barrier();
    }
    return curTick_;
}

} // namespace jord::par
