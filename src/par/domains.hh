/**
 * @file
 * Conservative intra-run parallel discrete-event engine.
 *
 * The machine's tiles are partitioned into K *domains*, each with its
 * own calendar sub-queue, executing in bounded-lookahead epochs:
 *
 *   1. epoch floor = the globally earliest pending event;
 *   2. horizon = floor + lookahead, where the lookahead is the
 *      minimum cross-domain NoC hop latency
 *      (noc::Mesh::minCrossDomainLookahead) — no event can affect
 *      another domain sooner than that;
 *   3. every domain executes its events with when < horizon in
 *      parallel (TaskGroup fork-join over the host thread pool);
 *   4. at the epoch barrier, events scheduled during the epoch are
 *      committed to their target domains' queues in canonical order.
 *
 * Byte-identity with the serial EventQueue (DESIGN.md §14): the serial
 * reference dispatches by (when, seq) where seq is schedule-call
 * order. Schedule-call order is itself determined by dispatch order —
 * an event's children get consecutive seqs at the moment their parent
 * runs. The barrier exploits this: it replays the epoch's per-domain
 * execution logs as a K-way merge in (when, seq) order — exactly the
 * serial dispatch order — assigning each visited event's children
 * their seqs in call order. A child always acquires its seq before
 * the merge can compare it (its parent is earlier in the same
 * domain's log), so the assignment is total and equals the serial
 * numbering. Within an epoch a domain orders seq-less newborns by
 * (when, parent dispatch index, child index), which coincides with
 * the eventual seq order; cross-domain newborns always land at or
 * beyond the horizon (when >= now + lookahead >= floor + lookahead),
 * so they never execute in the epoch that bore them and always pass
 * through the barrier numbering.
 *
 * The contract the client must honour (panic otherwise): a callback
 * running in domain d may touch only domain-d state, and may schedule
 * into another domain only at `when >= now() + lookahead`. Same-domain
 * schedules may target any `when >= now()`.
 *
 * With a null/single-thread pool the epochs execute inline in domain
 * order — the same code path, which is what the byte-identity tests
 * compare against K=1 and against the serial EventQueue.
 */

#ifndef JORD_PAR_DOMAINS_HH
#define JORD_PAR_DOMAINS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "par/par.hh"
#include "sim/calendar_queue.hh"
#include "sim/types.hh"

namespace jord::par {

/**
 * K-domain epoch-parallel event engine.
 *
 * Unlike sim::EventQueue (which this engine deliberately mirrors:
 * schedule/scheduleDaemon, curTick/lastWorkTick/numDispatched), event
 * callbacks receive a Context so schedules made *during* the run can
 * be logged, validated against the lookahead contract, and committed
 * at the epoch barrier.
 */
class DomainEngine
{
  public:
    class Context;
    /** Event callback; may schedule further events via the context. */
    using DomainFn = std::function<void(Context &)>;

    struct Config {
        /** Number of domains (K >= 1). */
        unsigned domains = 1;
        /**
         * Conservative lookahead in ticks: the minimum time for one
         * domain to affect another (min cross-domain NoC latency).
         * kTickMax means "no cross-domain coupling" (e.g. K == 1).
         */
        sim::Tick lookahead = sim::kTickMax;
    };

    /** Per-event execution context handed to callbacks. */
    class Context
    {
      public:
        /** Tick of the event being dispatched. */
        sim::Tick now() const { return now_; }

        /** Domain the current event belongs to. */
        unsigned domain() const { return domain_; }

        /** Engine-wide lookahead (for clients computing delays). */
        sim::Tick lookahead() const;

        /**
         * Schedule an event into @p domain at absolute tick @p when.
         * Cross-domain targets must satisfy when >= now + lookahead;
         * same-domain targets only when >= now.
         */
        void schedule(unsigned domain, sim::Tick when, DomainFn fn);

        void
        scheduleAfter(unsigned domain, sim::Cycles delay, DomainFn fn)
        {
            schedule(domain, now_ + delay, std::move(fn));
        }

        /** Daemon variant: does not advance lastWorkTick(). */
        void scheduleDaemon(unsigned domain, sim::Tick when, DomainFn fn);

      private:
        friend class DomainEngine;
        Context(DomainEngine &eng, unsigned domain)
            : eng_(eng), domain_(domain)
        {
        }

        DomainEngine &eng_;
        unsigned domain_;
        sim::Tick now_ = 0;
    };

    /**
     * @param cfg Domain count and lookahead.
     * @param pool Host thread pool; null (or single-threaded) runs
     *     every epoch inline in domain order.
     */
    DomainEngine(const Config &cfg, ThreadPool *pool);

    /** Pre-run seeding (serial phase): schedule an initial event. */
    void schedule(unsigned domain, sim::Tick when, DomainFn fn);

    /** Pre-run seeding of a daemon event. */
    void scheduleDaemon(unsigned domain, sim::Tick when, DomainFn fn);

    /** Run epochs until every domain drains. @return final tick. */
    sim::Tick run();

    /** Tick of the last dispatched event (monotone across epochs). */
    sim::Tick curTick() const { return curTick_; }

    /** Tick of the last dispatched non-daemon event. */
    sim::Tick lastWorkTick() const { return lastWorkTick_; }

    /** Total events dispatched. */
    std::uint64_t numDispatched() const { return numDispatched_; }

    /** Epoch barriers executed (1 epoch may cover many ticks). */
    std::uint64_t numEpochs() const { return numEpochs_; }

    unsigned
    numDomains() const
    {
        return static_cast<unsigned>(domains_.size());
    }

  private:
    /** One schedule() call made while an epoch was executing. */
    struct Birth {
        unsigned targetDomain = 0;
        sim::Tick when = 0;
        bool daemon = false;
        DomainFn fn;
        /** Canonical seq, assigned at the barrier (or on same-epoch
         * execution, directly during the merge walk). */
        std::uint64_t seq = 0;
        /** Ran inside the epoch that scheduled it (same-domain,
         * when < horizon): seq assignment patches the log entry. */
        bool executed = false;
        std::size_t logIndex = 0;
    };

    /** One dispatched event, in domain-local execution order. */
    struct LogEntry {
        sim::Tick when = 0;
        std::uint64_t seq = 0;
        bool hasSeq = false;
        bool daemon = false;
        /** Children in schedule-call order (indices into births). */
        std::vector<std::size_t> children;
    };

    /** A pending event with an already-assigned canonical seq. */
    struct Pending {
        sim::Tick when = 0;
        std::uint64_t seq = 0;
        bool daemon = false;
        DomainFn fn;
    };

    /** Seq-less newborn runnable within the current epoch; ordered by
     * (when, parent dispatch index, child index), which equals the
     * canonical seq order it will be assigned at the barrier. */
    struct Newborn {
        sim::Tick when = 0;
        std::uint64_t parentPos = 0;
        std::uint64_t childIdx = 0;
        std::size_t birth = 0;

        bool
        before(const Newborn &other) const
        {
            if (when != other.when)
                return when < other.when;
            if (parentPos != other.parentPos)
                return parentPos < other.parentPos;
            return childIdx < other.childIdx;
        }
    };

    struct DomainState {
        sim::BasicCalendarQueue<Pending> queue;
        /** Monotone per-domain dispatch counter (newborn ordering). */
        std::uint64_t dispatchPos = 0;
        /** This epoch's execution log, in local dispatch order. */
        std::vector<LogEntry> log;
        /** Schedule calls made by this domain during the epoch
         * (deque: Birth addresses must survive growth). */
        std::deque<Birth> births;
        /** Min-heap of same-domain newborns runnable this epoch. */
        std::vector<Newborn> runnable;
        /** Exclusive tick bound of the epoch being executed. */
        sim::Tick epochHorizon = 0;
        std::uint64_t dispatched = 0;
        sim::Tick maxWhen = 0;
        sim::Tick maxWorkWhen = 0;
        bool sawWork = false;
        bool sawAny = false;
    };

    void runEpoch(unsigned domain, sim::Tick horizon);
    void barrier();
    std::uint64_t seedSeq() { return nextSeq_++; }

    Config cfg_;
    ThreadPool *pool_;
    std::vector<DomainState> domains_;
    std::uint64_t nextSeq_ = 0;
    std::uint64_t numDispatched_ = 0;
    std::uint64_t numEpochs_ = 0;
    sim::Tick curTick_ = 0;
    sim::Tick lastWorkTick_ = 0;
};

} // namespace jord::par

#endif // JORD_PAR_DOMAINS_HH
