#include "par/par.hh"

#include <chrono>
#include <cstdlib>
#include <set>

#include "sim/env.hh"
#include "sim/logging.hh"

namespace jord::par {

unsigned
resolveJobs(unsigned requested)
{
    if (requested != 0)
        return requested;
    unsigned hw = std::thread::hardware_concurrency();
    return hw != 0 ? hw : 1;
}

unsigned
defaultJobs()
{
    if (const char *env = sim::env::get("JORD_JOBS"))
        return resolveJobs(static_cast<unsigned>(
            std::strtoul(env, nullptr, 10)));
    return 1;
}

// --- ThreadPool ----------------------------------------------------------

ThreadPool::ThreadPool(unsigned num_threads)
{
    unsigned n = num_threads == 0 ? 1 : num_threads;
    queues_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<WorkerQueue>());
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lk(sleepMu_);
        stop_.store(true);
    }
    sleepCv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
    // Drain tasks that were submitted but never waited on (the workers
    // drain before exiting too; this covers a submit racing shutdown).
    while (runOne()) {
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    std::size_t slot = rr_.fetch_add(1) % queues_.size();
    {
        std::lock_guard<std::mutex> lk(queues_[slot]->mu);
        queues_[slot]->tasks.push_back(std::move(task));
    }
    queued_.fetch_add(1);
    {
        // Empty critical section: pairs with the predicate check under
        // sleepMu_ so a worker between "predicate false" and "sleep"
        // cannot miss this notification.
        std::lock_guard<std::mutex> lk(sleepMu_);
    }
    sleepCv_.notify_one();
}

bool
ThreadPool::popFrom(unsigned queue, bool back, std::function<void()> &out)
{
    WorkerQueue &q = *queues_[queue];
    std::lock_guard<std::mutex> lk(q.mu);
    if (q.tasks.empty())
        return false;
    if (back) {
        out = std::move(q.tasks.back());
        q.tasks.pop_back();
    } else {
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
    }
    queued_.fetch_sub(1);
    return true;
}

bool
ThreadPool::tryRun(unsigned self)
{
    std::function<void()> task;
    // Own queue first (front: rough submission order), then steal from
    // the siblings' opposite end.
    bool found = popFrom(self, /*back=*/false, task);
    for (unsigned i = 1; !found && i < queues_.size(); ++i)
        found = popFrom((self + i) % queues_.size(), /*back=*/true,
                        task);
    if (!found)
        return false;
    task();
    tasksRun_.fetch_add(1);
    return true;
}

bool
ThreadPool::runOne()
{
    // External threads (and waiters) scan from queue 0; any runnable
    // task will do.
    std::function<void()> task;
    bool found = false;
    for (unsigned i = 0; !found && i < queues_.size(); ++i)
        found = popFrom(i, /*back=*/true, task);
    if (!found)
        return false;
    task();
    tasksRun_.fetch_add(1);
    return true;
}

void
ThreadPool::workerLoop(unsigned self)
{
    for (;;) {
        if (tryRun(self))
            continue;
        std::unique_lock<std::mutex> lk(sleepMu_);
        sleepCv_.wait(lk, [this] {
            return stop_.load() || queued_.load() > 0;
        });
        if (stop_.load() && queued_.load() == 0)
            return;
    }
}

// --- TaskGroup -----------------------------------------------------------

TaskGroup::~TaskGroup()
{
    // Jobs reference this group; block until they all finished. An
    // exception surfacing here has nowhere to go — call wait()
    // explicitly to observe it.
    std::unique_lock<std::mutex> lk(mu_);
    while (done_ != submitted_) {
        lk.unlock();
        if (!pool_ || !pool_->runOne())
            std::this_thread::yield();
        lk.lock();
        if (done_ != submitted_)
            cv_.wait_for(lk, std::chrono::microseconds(200));
    }
}

void
TaskGroup::recordError(std::size_t index, std::exception_ptr error)
{
    // Deterministic propagation: keep the lowest submission index.
    if (!error_ || index < errorIndex_) {
        error_ = std::move(error);
        errorIndex_ = index;
    }
}

void
TaskGroup::finish(std::size_t index, std::exception_ptr error)
{
    std::lock_guard<std::mutex> lk(mu_);
    if (error)
        recordError(index, std::move(error));
    ++done_;
    cv_.notify_all();
}

void
TaskGroup::run(std::function<void()> fn)
{
    std::size_t index = submitted_++;
    if (!pool_) {
        // Serial: execute inline, in submission order — the same code
        // path the parallel case runs, minus the scheduling.
        try {
            fn();
        } catch (...) {
            recordError(index, std::current_exception());
        }
        ++done_;
        return;
    }
    pool_->submit([this, index, fn = std::move(fn)] {
        std::exception_ptr error;
        try {
            fn();
        } catch (...) {
            error = std::current_exception();
        }
        finish(index, error);
    });
}

void
TaskGroup::wait()
{
    std::unique_lock<std::mutex> lk(mu_);
    while (done_ != submitted_) {
        lk.unlock();
        // Help the pool while blocked: nested submissions always make
        // progress because every waiter is also a worker.
        bool ran = pool_ && pool_->runOne();
        lk.lock();
        if (!ran && done_ != submitted_)
            cv_.wait_for(lk, std::chrono::microseconds(200));
    }
    if (error_) {
        std::exception_ptr error = error_;
        error_ = nullptr;
        std::rethrow_exception(error);
    }
}

// --- JobGraph ------------------------------------------------------------

JobGraph::NodeId
JobGraph::add(std::function<void()> fn)
{
    nodes_.push_back(Node{std::move(fn), {}, 0});
    return nodes_.size() - 1;
}

void
JobGraph::precede(NodeId before, NodeId after)
{
    if (before >= nodes_.size() || after >= nodes_.size())
        sim::panic("JobGraph::precede: node out of range (%zu -> %zu, "
                   "%zu nodes)",
                   before, after, nodes_.size());
    if (before == after)
        sim::panic("JobGraph::precede: self-edge on node %zu", before);
    nodes_[before].successors.push_back(after);
    ++nodes_[after].numPredecessors;
}

void
JobGraph::checkAcyclic() const
{
    std::vector<unsigned> pending(nodes_.size());
    std::vector<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        pending[id] = nodes_[id].numPredecessors;
        if (pending[id] == 0)
            ready.push_back(id);
    }
    std::size_t visited = 0;
    while (!ready.empty()) {
        NodeId id = ready.back();
        ready.pop_back();
        ++visited;
        for (NodeId succ : nodes_[id].successors)
            if (--pending[succ] == 0)
                ready.push_back(succ);
    }
    if (visited != nodes_.size())
        sim::panic("JobGraph: dependency cycle (%zu of %zu nodes "
                   "reachable)",
                   visited, nodes_.size());
}

void
JobGraph::runSerial()
{
    // Kahn's algorithm, lowest id first among ready nodes: the
    // deterministic reference order the parallel schedule must be
    // output-equivalent to.
    std::vector<unsigned> pending(nodes_.size());
    std::set<NodeId> ready;
    for (NodeId id = 0; id < nodes_.size(); ++id) {
        pending[id] = nodes_[id].numPredecessors;
        if (pending[id] == 0)
            ready.insert(id);
    }
    std::exception_ptr error;
    NodeId error_id = 0;
    while (!ready.empty()) {
        NodeId id = *ready.begin();
        ready.erase(ready.begin());
        try {
            nodes_[id].fn();
        } catch (...) {
            if (!error || id < error_id) {
                error = std::current_exception();
                error_id = id;
            }
        }
        for (NodeId succ : nodes_[id].successors)
            if (--pending[succ] == 0)
                ready.insert(succ);
    }
    if (error)
        std::rethrow_exception(error);
}

void
JobGraph::runParallel(ThreadPool &pool)
{
    struct RunState {
        std::vector<std::atomic<unsigned>> pending;
        std::mutex mu;
        std::condition_variable cv;
        std::size_t done = 0;
        std::exception_ptr error;
        NodeId errorId = 0;
        explicit RunState(std::size_t n) : pending(n) {}
    };
    RunState state(nodes_.size());
    for (NodeId id = 0; id < nodes_.size(); ++id)
        state.pending[id].store(nodes_[id].numPredecessors);

    // submitNode is self-referential (completions schedule successors),
    // so it lives behind a function pointer captured by reference.
    std::function<void(NodeId)> submitNode = [&](NodeId id) {
        pool.submit([&, id] {
            std::exception_ptr error;
            try {
                nodes_[id].fn();
            } catch (...) {
                error = std::current_exception();
            }
            for (NodeId succ : nodes_[id].successors)
                if (state.pending[succ].fetch_sub(1) == 1)
                    submitNode(succ);
            std::lock_guard<std::mutex> lk(state.mu);
            if (error &&
                (!state.error || id < state.errorId)) {
                state.error = error;
                state.errorId = id;
            }
            ++state.done;
            state.cv.notify_all();
        });
    };
    for (NodeId id = 0; id < nodes_.size(); ++id)
        if (nodes_[id].numPredecessors == 0)
            submitNode(id);

    std::unique_lock<std::mutex> lk(state.mu);
    while (state.done != nodes_.size()) {
        lk.unlock();
        bool ran = pool.runOne();
        lk.lock();
        if (!ran && state.done != nodes_.size())
            state.cv.wait_for(lk, std::chrono::microseconds(200));
    }
    if (state.error)
        std::rethrow_exception(state.error);
}

void
JobGraph::run(ThreadPool *pool)
{
    checkAcyclic();
    if (pool && pool->numThreads() > 1)
        runParallel(*pool);
    else
        runSerial();
}

} // namespace jord::par
