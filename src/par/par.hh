/**
 * @file
 * Host-parallel run engine: a small work-stealing thread pool plus a
 * job-graph scheduler (taskflow-inspired, no external dependencies)
 * for fanning independent simulation runs — sweep points, seeds,
 * (workload, system) pairs, fault-matrix configs — across host cores.
 *
 * Determinism contract (DESIGN.md §9): jobs must be independent. Each
 * job owns its Machine/EventQueue/Rng/trace/metrics/PMU instances and
 * touches no shared mutable state; a job's only output is the value it
 * commits to its own submission-indexed slot. Results are consumed in
 * submission order after the fork-join region, so everything derived
 * from them (CSV, JSON, tables, traces) is byte-identical regardless
 * of the thread count — including the serial single-thread case.
 *
 * Exceptions propagate deterministically too: when several jobs throw,
 * the surviving exception is the one from the *lowest submission
 * index*, not the temporally first, so failure output does not depend
 * on scheduling either. A failure does not cancel the remaining jobs
 * (they are independent by contract), matching serial semantics where
 * the error is raised only at the join point.
 *
 * Nested fork-join is deadlock-free: a thread blocked in wait() helps
 * execute pending pool tasks, so submissions from inside jobs (e.g. a
 * per-workload sweep job fanning its own load points) always make
 * progress even when every pool thread is inside a wait.
 */

#ifndef JORD_PAR_PAR_HH
#define JORD_PAR_PAR_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace jord::par {

/** Resolve a --jobs value: 0 means "all host cores" (at least 1). */
unsigned resolveJobs(unsigned requested);

/**
 * Default --jobs value: the JORD_JOBS environment variable (0 = all
 * host cores) when set, otherwise 1 (serial — parallelism is opt-in
 * so existing scripts keep their exact behaviour and timing).
 */
unsigned defaultJobs();

/**
 * A work-stealing thread pool. Each worker owns a task deque; it pops
 * work from the front of its own deque and steals from the back of a
 * sibling's when empty. Tasks are coarse (whole simulation runs), so
 * the queues are mutex-protected — contention is negligible next to
 * the milliseconds-to-seconds a task runs for.
 *
 * Destruction drains every submitted task before returning (join
 * semantics); prefer waiting through TaskGroup/orderedMap/JobGraph so
 * exceptions are observed.
 */
class ThreadPool
{
  public:
    /** Spawn @p num_threads workers (clamped to at least 1). */
    explicit ThreadPool(unsigned num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned numThreads() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    /** Enqueue a task (round-robin across the worker deques). */
    void submit(std::function<void()> task);

    /**
     * Run one pending task on the calling thread, if any is runnable.
     * Waiters call this in a loop to help drain the pool — this is
     * what makes nested submission deadlock-free.
     * @return false when no task was runnable.
     */
    bool runOne();

    /** Tasks submitted over the pool's lifetime (tests, stats). */
    std::uint64_t tasksRun() const { return tasksRun_.load(); }

  private:
    struct WorkerQueue {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(unsigned self);
    /** Pop from own front, else steal from a sibling's back. */
    bool tryRun(unsigned self);
    bool popFrom(unsigned queue, bool back,
                 std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> threads_;
    std::mutex sleepMu_;
    std::condition_variable sleepCv_;
    std::atomic<bool> stop_{false};
    /** Tasks sitting in queues (not yet popped). */
    std::atomic<std::size_t> queued_{0};
    std::atomic<std::size_t> rr_{0};
    std::atomic<std::uint64_t> tasksRun_{0};
};

/**
 * A fork-join region: run() submits jobs, wait() blocks (helping the
 * pool) until all of them finished, then rethrows the lowest-index
 * exception if any job failed.
 *
 * With a null pool the jobs execute inline, in submission order, on
 * the calling thread — the serial path runs the exact same code the
 * parallel path does, which is what the byte-identity contract rests
 * on. The group must outlive its jobs: wait() (or the destructor,
 * which waits but drops any exception) must run before destruction.
 */
class TaskGroup
{
  public:
    /** @p pool may be null: jobs then run inline at run(). */
    explicit TaskGroup(ThreadPool *pool) : pool_(pool) {}
    ~TaskGroup();

    TaskGroup(const TaskGroup &) = delete;
    TaskGroup &operator=(const TaskGroup &) = delete;

    /** Submit the next job (its submission index is implicit). */
    void run(std::function<void()> fn);

    /** Join: help the pool until every job finished; rethrow the
     * lowest-submission-index exception if any. */
    void wait();

  private:
    void finish(std::size_t index, std::exception_ptr error);
    void recordError(std::size_t index, std::exception_ptr error);

    ThreadPool *pool_;
    std::size_t submitted_ = 0;
    std::mutex mu_;
    std::condition_variable cv_;
    std::size_t done_ = 0;
    std::size_t errorIndex_ = 0;
    std::exception_ptr error_;
};

/**
 * Run fn(0) .. fn(n-1) across the pool and return the results in
 * submission (index) order — the workhorse for sweep points, seeds
 * and bench configurations. T must be default-constructible and
 * movable. Serial (pool == null or single-threaded pool) and parallel
 * executions return byte-identical vectors for independent jobs.
 */
template <typename T, typename Fn>
std::vector<T>
orderedMap(ThreadPool *pool, std::size_t n, Fn fn)
{
    std::vector<T> out(n);
    TaskGroup group(pool && pool->numThreads() > 1 ? pool : nullptr);
    for (std::size_t i = 0; i < n; ++i)
        group.run([&out, &fn, i] { out[i] = fn(i); });
    group.wait();
    return out;
}

/**
 * A static task graph: nodes are jobs, edges are happens-before
 * constraints (e.g. "measure the SLO for this workload" precedes
 * every sweep of that workload). run() executes every node exactly
 * once respecting the edges.
 *
 * Serial execution (null pool) is the deterministic reference order:
 * Kahn's algorithm breaking ties by lowest node id, i.e. submission
 * order among ready nodes. Parallel execution may interleave
 * arbitrarily — nodes therefore commit results to their own slots
 * like any other job. Cycles are detected up front and panic.
 */
class JobGraph
{
  public:
    using NodeId = std::size_t;

    /** Add a node; returns its id (dense, in submission order). */
    NodeId add(std::function<void()> fn);

    /** Require @p before to finish before @p after starts. */
    void precede(NodeId before, NodeId after);

    /**
     * Run the whole graph (blocking). Rethrows the lowest-id node
     * exception after all nodes ran; a failed node does not cancel
     * its successors (jobs are independent by contract — dependents
     * must tolerate a missing-result slot if they can run at all).
     * The graph can be run again (topology is reusable).
     */
    void run(ThreadPool *pool);

    std::size_t size() const { return nodes_.size(); }

  private:
    struct Node {
        std::function<void()> fn;
        std::vector<NodeId> successors;
        unsigned numPredecessors = 0;
    };

    void runSerial();
    void runParallel(ThreadPool &pool);
    /** Panics with the offending node id on a dependency cycle. */
    void checkAcyclic() const;

    std::vector<Node> nodes_;
};

} // namespace jord::par

#endif // JORD_PAR_PAR_HH
