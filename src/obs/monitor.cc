#include "obs/monitor.hh"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>

#include "sim/logging.hh"

namespace jord::obs {

namespace {

/** Split one CSV line (no quoting in our artifacts). */
std::vector<std::string>
splitCsv(const std::string &line)
{
    std::vector<std::string> fields;
    std::size_t start = 0;
    while (true) {
        std::size_t comma = line.find(',', start);
        if (comma == std::string::npos) {
            fields.push_back(line.substr(start));
            return fields;
        }
        fields.push_back(line.substr(start, comma - start));
        start = comma + 1;
    }
}

double
toDouble(const std::string &field)
{
    return field.empty() ? 0.0 : std::strtod(field.c_str(), nullptr);
}

std::uint64_t
toU64(const std::string &field)
{
    return field.empty()
               ? 0
               : std::strtoull(field.c_str(), nullptr, 10);
}

/** [a0, a1) overlaps [b0, b1]? */
bool
overlaps(double a0, double a1, double b0, double b1)
{
    return a0 <= b1 && a1 > b0;
}

} // namespace

std::vector<MonWindow>
parseWindowsCsv(std::istream &in, const std::string &what)
{
    std::string line;
    if (!std::getline(in, line) ||
        line.rfind("window,start_us,end_us,server,tenant,", 0) != 0)
        sim::fatal("%s: not a jordsim obs windows CSV (bad header)",
                   what.c_str());
    std::vector<MonWindow> rows;
    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsv(line);
        if (f.size() != 16)
            sim::fatal("%s:%zu: expected 16 fields, got %zu",
                       what.c_str(), lineno, f.size());
        MonWindow row;
        row.window = toU64(f[0]);
        row.startUs = toDouble(f[1]);
        row.endUs = toDouble(f[2]);
        row.server = static_cast<int>(toU64(f[3]));
        row.tenant = f[4];
        row.arrivals = toU64(f[5]);
        row.completions = toU64(f[6]);
        row.shed = toU64(f[7]);
        row.failed = toU64(f[8]);
        row.sloMiss = toU64(f[9]);
        row.coldStarts = toU64(f[10]);
        row.warmSlots = toU64(f[11]);
        row.queueDepth = toDouble(f[12]);
        row.occupancy = toDouble(f[13]);
        row.p50Us = toDouble(f[14]);
        row.p99Us = toDouble(f[15]);
        rows.push_back(std::move(row));
    }
    return rows;
}

std::vector<MonEvent>
parseEventsCsv(std::istream &in, const std::string &what)
{
    std::string line;
    if (!std::getline(in, line) ||
        line.rfind("time_us,end_us,kind,server,tenant,value", 0) != 0)
        sim::fatal("%s: not a jordsim obs events CSV (bad header)",
                   what.c_str());
    std::vector<MonEvent> events;
    std::size_t lineno = 1;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        std::vector<std::string> f = splitCsv(line);
        if (f.size() != 6)
            sim::fatal("%s:%zu: expected 6 fields, got %zu",
                       what.c_str(), lineno, f.size());
        MonEvent event;
        event.timeUs = toDouble(f[0]);
        event.endUs = toDouble(f[1]);
        event.kind = f[2];
        event.server = f[3].empty()
                           ? -1
                           : static_cast<int>(toU64(f[3]));
        event.tenant = f[4];
        event.value = toDouble(f[5]);
        events.push_back(std::move(event));
    }
    return events;
}

MonReport
buildReport(const std::vector<MonEvent> &events,
            const std::vector<MonWindow> &windows, double slack_us)
{
    MonReport report;

    // 1. Group ground-truth incident events into incidents: sorted
    // by start, merge while intervals overlap (a mass crash at one
    // tick becomes one incident spanning its servers).
    std::vector<MonEvent> faults;
    for (const MonEvent &event : events)
        if (event.incident())
            faults.push_back(event);
    std::stable_sort(faults.begin(), faults.end(),
                     [](const MonEvent &a, const MonEvent &b) {
                         if (a.timeUs != b.timeUs)
                             return a.timeUs < b.timeUs;
                         if (a.endUs != b.endUs)
                             return a.endUs < b.endUs;
                         return a.server < b.server;
                     });
    std::vector<std::set<std::string>> kinds;
    std::vector<std::set<int>> servers;
    for (const MonEvent &fault : faults) {
        if (!report.incidents.empty() &&
            fault.timeUs <= report.incidents.back().endUs) {
            MonIncident &incident = report.incidents.back();
            incident.endUs = std::max(incident.endUs, fault.endUs);
            kinds.back().insert(fault.kind);
            if (fault.server >= 0)
                servers.back().insert(fault.server);
            continue;
        }
        MonIncident incident;
        incident.startUs = fault.timeUs;
        incident.endUs = fault.endUs;
        report.incidents.push_back(incident);
        kinds.push_back({fault.kind});
        servers.push_back(fault.server >= 0
                              ? std::set<int>{fault.server}
                              : std::set<int>{});
    }
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
        MonIncident &incident = report.incidents[i];
        for (const std::string &kind : kinds[i]) {
            if (!incident.kind.empty())
                incident.kind += '+';
            incident.kind += kind;
        }
        incident.servers.assign(servers[i].begin(),
                                servers[i].end());
        incident.ttrUs = incident.endUs - incident.startUs;
        report.maxTtrUs = std::max(report.maxTtrUs, incident.ttrUs);
    }

    // 2. Attribute each alert to the earliest incident whose
    // [start, end + slack] covers it.
    std::vector<std::set<std::string>> tenants(
        report.incidents.size());
    for (const MonEvent &event : events) {
        if (!event.alertRaise())
            continue;
        ++report.alertsTotal;
        bool matched = false;
        for (std::size_t i = 0; i < report.incidents.size(); ++i) {
            MonIncident &incident = report.incidents[i];
            if (event.timeUs >= incident.startUs &&
                event.timeUs <= incident.endUs + slack_us) {
                ++incident.alerts;
                double detect = event.timeUs - incident.startUs;
                if (incident.detectUs < 0 ||
                    detect < incident.detectUs)
                    incident.detectUs = detect;
                if (!event.tenant.empty())
                    tenants[i].insert(event.tenant);
                matched = true;
                break;
            }
        }
        if (!matched)
            ++report.unmatchedAlerts;
    }

    // 3. Attributable burn: telemetry windows overlapping the
    // incident on its servers. Tenant rows with errors name the
    // burning tenants; aggregate rows give the error mass.
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
        MonIncident &incident = report.incidents[i];
        for (const MonWindow &window : windows) {
            if (!overlaps(window.startUs, window.endUs,
                          incident.startUs,
                          incident.endUs + slack_us))
                continue;
            if (!std::binary_search(incident.servers.begin(),
                                    incident.servers.end(),
                                    window.server))
                continue;
            if (window.aggregate()) {
                incident.errorCount += window.errors();
                incident.arrivalCount += window.arrivals;
            } else if (window.errors() > 0) {
                tenants[i].insert(window.tenant);
            }
        }
        if (incident.arrivalCount > 0)
            incident.burn =
                static_cast<double>(incident.errorCount) /
                static_cast<double>(incident.arrivalCount);
        incident.tenants.assign(tenants[i].begin(),
                                tenants[i].end());
        if (incident.detectUs >= 0)
            report.maxDetectUs =
                std::max(report.maxDetectUs, incident.detectUs);
    }

    for (const MonWindow &window : windows) {
        if (!window.aggregate())
            continue;
        report.errorCount += window.errors();
        report.arrivalCount += window.arrivals;
    }
    if (report.arrivalCount > 0)
        report.totalBurn = static_cast<double>(report.errorCount) /
                           static_cast<double>(report.arrivalCount);
    return report;
}

std::string
renderReport(const MonReport &report)
{
    std::ostringstream out;
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "incidents: %zu, alerts: %u (%u unmatched), "
                  "fleet burn: %.4f (%llu/%llu)\n",
                  report.incidents.size(), report.alertsTotal,
                  report.unmatchedAlerts, report.totalBurn,
                  static_cast<unsigned long long>(report.errorCount),
                  static_cast<unsigned long long>(
                      report.arrivalCount));
    out << buf;
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
        const MonIncident &incident = report.incidents[i];
        std::snprintf(buf, sizeof(buf),
                      "incident %zu: %s start=%.3fus ttr=%.3fus ",
                      i, incident.kind.c_str(), incident.startUs,
                      incident.ttrUs);
        out << buf;
        if (incident.detectUs >= 0)
            std::snprintf(buf, sizeof(buf), "detect=%.3fus ",
                          incident.detectUs);
        else
            std::snprintf(buf, sizeof(buf), "detect=never ");
        out << buf << "servers=";
        for (std::size_t s = 0; s < incident.servers.size(); ++s)
            out << (s ? "," : "") << incident.servers[s];
        out << " tenants=";
        for (std::size_t t = 0; t < incident.tenants.size(); ++t)
            out << (t ? "," : "") << incident.tenants[t];
        std::snprintf(buf, sizeof(buf),
                      " alerts=%u burn=%.4f (%llu/%llu)\n",
                      incident.alerts, incident.burn,
                      static_cast<unsigned long long>(
                          incident.errorCount),
                      static_cast<unsigned long long>(
                          incident.arrivalCount));
        out << buf;
    }
    return out.str();
}

std::map<std::string, double>
flatReport(const MonReport &report)
{
    std::map<std::string, double> kv;
    kv["mon.incidents"] =
        static_cast<double>(report.incidents.size());
    kv["mon.alerts"] = report.alertsTotal;
    kv["mon.unmatched_alerts"] = report.unmatchedAlerts;
    kv["mon.max_ttr_us"] = report.maxTtrUs;
    kv["mon.max_detect_us"] = report.maxDetectUs;
    kv["mon.total_burn"] = report.totalBurn;
    for (std::size_t i = 0; i < report.incidents.size(); ++i) {
        const MonIncident &incident = report.incidents[i];
        std::string prefix = "incident" + std::to_string(i) + ".";
        kv[prefix + "start_us"] = incident.startUs;
        kv[prefix + "ttr_us"] = incident.ttrUs;
        kv[prefix + "detect_us"] = incident.detectUs;
        kv[prefix + "burn"] = incident.burn;
        kv[prefix + "servers"] =
            static_cast<double>(incident.servers.size());
        kv[prefix + "alerts"] = incident.alerts;
    }
    return kv;
}

void
writeHeatmapCsv(const std::vector<MonWindow> &windows,
                std::ostream &out)
{
    std::set<int> servers;
    std::uint64_t num_windows = 0;
    std::map<std::pair<int, std::uint64_t>, double> p99;
    for (const MonWindow &window : windows) {
        if (!window.aggregate())
            continue;
        servers.insert(window.server);
        num_windows = std::max(num_windows, window.window + 1);
        p99[{window.server, window.window}] = window.p99Us;
    }
    out << "server";
    for (std::uint64_t w = 0; w < num_windows; ++w)
        out << ",w" << w;
    out << "\n";
    char buf[32];
    for (int server : servers) {
        out << server;
        for (std::uint64_t w = 0; w < num_windows; ++w) {
            auto it = p99.find({server, w});
            std::snprintf(buf, sizeof(buf), ",%.3f",
                          it == p99.end() ? 0.0 : it->second);
            out << buf;
        }
        out << "\n";
    }
}

} // namespace jord::obs
