#include "obs/obs.hh"

#include <algorithm>
#include <cstdio>

#include "sim/logging.hh"

namespace jord::obs {

const char *
eventKindName(EventKind kind)
{
    switch (kind) {
      case EventKind::Crash: return "crash";
      case EventKind::Gray: return "gray";
      case EventKind::LinkDrop: return "link_drop";
      case EventKind::LinkDelay: return "link_delay";
      case EventKind::AlertRaise: return "alert_raise";
      case EventKind::AlertClear: return "alert_clear";
    }
    return "?";
}

FleetObserver::FleetObserver(const ObsConfig &cfg,
                             unsigned num_servers,
                             std::vector<ObsTenant> tenants,
                             unsigned concurrency, double freq_ghz)
    : cfg_(cfg), numServers_(num_servers),
      tenants_(std::move(tenants)), concurrency_(concurrency),
      freqGhz_(freq_ghz)
{
    if (numServers_ == 0)
        sim::fatal("obs: observer needs at least one server");
    if (tenants_.empty())
        sim::fatal("obs: observer needs at least one tenant");
    if (cfg_.windowed()) {
        windowTicks_ = sim::usToCycles(cfg_.intervalUs, freqGhz_);
        if (windowTicks_ == 0)
            sim::fatal("obs: interval %.3f us rounds to zero ticks",
                       cfg_.intervalUs);
        if (cfg_.sloTargetFrac <= 0 || cfg_.sloTargetFrac >= 1)
            sim::fatal("obs: SLO target must be in (0, 1), got %.4f",
                       cfg_.sloTargetFrac);
        if (cfg_.burnFastWindows == 0 ||
            cfg_.burnFastWindows > cfg_.burnSlowWindows)
            sim::fatal("obs: burn windows must satisfy "
                       "1 <= fast (%u) <= slow (%u)",
                       cfg_.burnFastWindows, cfg_.burnSlowWindows);
    }
    cells_.resize(static_cast<std::size_t>(numServers_) *
                  tenants_.size());
    for (Cell &c : cells_)
        c.latNs = stats::Histogram(1ull << 40, 64);
    depth_.resize(numServers_);
    burnRing_.resize(tenants_.size());
    alerting_.assign(tenants_.size(), 0);
    crashOpenAt_.assign(numServers_, kNoTick);

    if (cfg_.trace) {
        tracer_ = std::make_unique<trace::Tracer>(freqGhz_);
        // One labeled process per server so Perfetto renders the
        // fleet timeline as named groups; the LB owns pid/track 0.
        tracer_->setProcessName(0, "jord fleet");
        tracer_->setTrackName(0, "front-end lb");
        for (unsigned s = 0; s < numServers_; ++s) {
            std::string name = "server " + std::to_string(s);
            tracer_->setProcessName(s + 1, name);
            tracer_->setTrackPid(serverTrack(s), s + 1);
            tracer_->setTrackName(serverTrack(s), name);
        }
    }
}

void
FleetObserver::instant(const char *name, unsigned track,
                       sim::Tick now, std::uint64_t req,
                       std::int32_t fn)
{
    trace::SpanArgs args;
    args.req = req;
    args.fn = fn;
    trace::SpanId parent = 0;
    if (auto it = reqs_.find(req); it != reqs_.end())
        parent = it->second.span;
    tracer_->complete(name, trace::Category::Runtime, track, now, 0,
                      parent, args);
}

void
FleetObserver::onArrival(sim::Tick now, std::uint64_t req,
                         std::uint32_t tenant, std::uint32_t server,
                         bool measured)
{
    cell(server, tenant).arrivals.add();
    if (!tracer_)
        return;
    ReqTrace &rt = reqs_[req];
    trace::SpanArgs args;
    args.req = req;
    args.measured = measured;
    rt.span = tracer_->begin("request", trace::Category::Request, 0,
                             now, 0, args);
    tracer_->complete("lb_decision", trace::Category::Dispatch, 0,
                      now, 0, rt.span, args);
}

void
FleetObserver::onShed(sim::Tick now, std::uint32_t tenant,
                      std::uint32_t server, bool breaker)
{
    Cell &c = cell(server, tenant);
    c.arrivals.add();
    c.shed.add();
    if (tracer_ && breaker)
        instant("breaker_shed", serverTrack(server), now, 0,
                static_cast<std::int32_t>(tenant));
}

void
FleetObserver::onQueue(sim::Tick now, std::uint64_t req,
                       unsigned copy, std::uint32_t server)
{
    (void)server;
    if (!tracer_)
        return;
    auto it = reqs_.find(req);
    if (it == reqs_.end())
        return;
    it->second.enq[copy] = now;
    it->second.queued[copy] = true;
}

void
FleetObserver::onStart(sim::Tick now, std::uint64_t req,
                       unsigned copy, std::uint32_t server,
                       std::uint32_t tenant, bool cold)
{
    if (cold)
        cell(server, tenant).coldStarts.add();
    if (!tracer_)
        return;
    auto it = reqs_.find(req);
    if (it == reqs_.end())
        return;
    ReqTrace &rt = it->second;
    trace::SpanArgs args;
    args.req = req;
    if (rt.queued[copy])
        tracer_->complete("queue", trace::Category::Dispatch,
                          serverTrack(server), rt.enq[copy],
                          now - rt.enq[copy], rt.span, args);
    rt.queued[copy] = false;
    rt.running[copy] = true;
    rt.run[copy] = now;
    rt.cold[copy] = cold;
}

void
FleetObserver::onComplete(sim::Tick now, std::uint64_t req,
                          unsigned copy, std::uint32_t server,
                          std::uint32_t tenant,
                          std::uint64_t latency_ns, bool slo_miss)
{
    Cell &c = cell(server, tenant);
    c.completions.add();
    if (slo_miss)
        c.sloMiss.add();
    c.latNs.record(latency_ns);
    if (!tracer_)
        return;
    auto it = reqs_.find(req);
    if (it == reqs_.end())
        return;
    ReqTrace &rt = it->second;
    trace::SpanArgs args;
    args.req = req;
    if (rt.running[copy])
        tracer_->complete(rt.cold[copy] ? "cold_start" : "warm_hit",
                          trace::Category::Exec, serverTrack(server),
                          rt.run[copy], now - rt.run[copy], rt.span,
                          args);
    tracer_->end(rt.span, now);
    reqs_.erase(it);
}

void
FleetObserver::onFailed(sim::Tick now, std::uint64_t req,
                        std::uint32_t tenant, std::uint32_t server)
{
    cell(server, tenant).failed.add();
    if (!tracer_)
        return;
    auto it = reqs_.find(req);
    if (it == reqs_.end())
        return;
    tracer_->end(it->second.span, now);
    reqs_.erase(it);
}

void
FleetObserver::onHedge(sim::Tick now, std::uint64_t req,
                       std::uint32_t server)
{
    if (tracer_)
        instant("hedge_primary", serverTrack(server), now, req);
}

void
FleetObserver::onHedgeLoser(sim::Tick now, std::uint64_t req,
                            unsigned copy, std::uint32_t server)
{
    if (!tracer_)
        return;
    auto it = reqs_.find(req);
    if (it == reqs_.end())
        return;
    ReqTrace &rt = it->second;
    // The loser's span covers whatever progress the copy made:
    // running since its start, else queued since its enqueue.
    sim::Tick start = now;
    if (rt.running[copy])
        start = rt.run[copy];
    else if (rt.queued[copy])
        start = rt.enq[copy];
    rt.running[copy] = rt.queued[copy] = false;
    trace::SpanArgs args;
    args.req = req;
    tracer_->complete("hedge_loser", trace::Category::Runtime,
                      serverTrack(server), start, now - start,
                      rt.span, args);
}

void
FleetObserver::onRetry(sim::Tick now, std::uint64_t req,
                       unsigned attempt, std::uint32_t server)
{
    if (tracer_)
        instant("retry_attempt", serverTrack(server), now, req,
                static_cast<std::int32_t>(attempt));
}

void
FleetObserver::onOutstanding(sim::Tick now, std::uint32_t server,
                             std::uint32_t outstanding)
{
    if (!cfg_.windowed())
        return;
    DepthGauge &g = depth_[server];
    g.integral += static_cast<double>(g.cur) *
                  static_cast<double>(now - g.last);
    g.cur = outstanding;
    g.last = now;
}

void
FleetObserver::onCrash(sim::Tick now, std::uint32_t server)
{
    ++incidents_;
    if (cfg_.windowed())
        crashOpenAt_[server] = now;
    if (tracer_)
        instant("crash", serverTrack(server), now, 0);
}

void
FleetObserver::onRestart(sim::Tick now, std::uint32_t server)
{
    if (cfg_.windowed() && crashOpenAt_[server] != kNoTick) {
        Event event;
        event.startTick = crashOpenAt_[server];
        event.endTick = now;
        event.kind = EventKind::Crash;
        event.server = static_cast<std::int32_t>(server);
        events_.push_back(event);
        crashOpenAt_[server] = kNoTick;
    }
    if (tracer_)
        instant("restart", serverTrack(server), now, 0);
}

void
FleetObserver::onGrayRun(sim::Tick start, sim::Tick end,
                         std::uint32_t server)
{
    if (!cfg_.windowed())
        return;
    ++incidents_;
    Event event;
    event.startTick = start;
    event.endTick = end;
    event.kind = EventKind::Gray;
    event.server = static_cast<std::int32_t>(server);
    events_.push_back(event);
}

void
FleetObserver::onLinkDrop(sim::Tick now, std::uint64_t req,
                          std::uint32_t server)
{
    (void)req;
    if (!cfg_.windowed())
        return;
    ++incidents_;
    Event event;
    event.startTick = event.endTick = now;
    event.kind = EventKind::LinkDrop;
    event.server = static_cast<std::int32_t>(server);
    events_.push_back(event);
}

void
FleetObserver::onLinkDelay(sim::Tick now, std::uint64_t req,
                           std::uint32_t server)
{
    (void)req;
    if (!cfg_.windowed())
        return;
    ++incidents_;
    Event event;
    event.startTick = event.endTick = now;
    event.kind = EventKind::LinkDelay;
    event.server = static_cast<std::int32_t>(server);
    events_.push_back(event);
}

double
FleetObserver::burnRate(const std::deque<BurnSample> &ring,
                        unsigned windows) const
{
    std::uint64_t errors = 0;
    std::uint64_t arrivals = 0;
    std::size_t n = std::min<std::size_t>(windows, ring.size());
    for (std::size_t i = ring.size() - n; i < ring.size(); ++i) {
        errors += ring[i].errors;
        arrivals += ring[i].arrivals;
    }
    if (arrivals == 0)
        return 0;
    double budget = 1.0 - cfg_.sloTargetFrac;
    return (static_cast<double>(errors) /
            static_cast<double>(arrivals)) /
           budget;
}

void
FleetObserver::flushWindow(sim::Tick now,
                           const std::vector<ServerSnapshot> &snap)
{
    if (!cfg_.windowed() || now <= windowStart_)
        return;
    double span = static_cast<double>(now - windowStart_);
    std::size_t nt = tenants_.size();
    // Per-tenant fleet totals this window, feeding the SLO monitor.
    std::vector<std::uint64_t> tErrors(nt, 0), tArrivals(nt, 0);

    for (std::uint32_t s = 0; s < numServers_; ++s) {
        DepthGauge &g = depth_[s];
        g.integral += static_cast<double>(g.cur) *
                      static_cast<double>(now - g.last);
        g.last = now;
        double mean_depth = g.integral / span;
        g.integral = 0;

        WindowRow agg;
        agg.window = window_;
        agg.startTick = windowStart_;
        agg.endTick = now;
        agg.server = s;
        agg.tenant = -1;
        agg.queueDepth = mean_depth;
        agg.occupancy =
            concurrency_ > 0
                ? mean_depth / static_cast<double>(concurrency_)
                : 0;
        agg.warmSlots = s < snap.size() ? snap[s].warmSlots : 0;

        // Interval P50/P99 through Histogram merge of the tenant
        // cells — identical geometry by construction.
        stats::Histogram merged(1ull << 40, 64);
        std::vector<WindowRow> tenant_rows;
        for (std::uint32_t t = 0; t < nt; ++t) {
            Cell &c = cell(s, t);
            WindowRow row;
            row.window = window_;
            row.startTick = windowStart_;
            row.endTick = now;
            row.server = s;
            row.tenant = static_cast<std::int32_t>(t);
            row.arrivals = c.arrivals.intervalReset();
            row.completions = c.completions.intervalReset();
            row.shed = c.shed.intervalReset();
            row.failed = c.failed.intervalReset();
            row.sloMiss = c.sloMiss.intervalReset();
            row.coldStarts = c.coldStarts.intervalReset();
            if (!c.latNs.empty()) {
                row.p50Us =
                    static_cast<double>(c.latNs.p50()) / 1000.0;
                row.p99Us =
                    static_cast<double>(c.latNs.p99()) / 1000.0;
                merged.merge(c.latNs);
            }
            c.latNs.reset();
            agg.arrivals += row.arrivals;
            agg.completions += row.completions;
            agg.shed += row.shed;
            agg.failed += row.failed;
            agg.sloMiss += row.sloMiss;
            agg.coldStarts += row.coldStarts;
            tErrors[t] += row.sloMiss + row.failed + row.shed;
            tArrivals[t] += row.arrivals;
            if (row.arrivals || row.completions || row.shed ||
                row.failed)
                tenant_rows.push_back(row);
        }
        if (!merged.empty()) {
            agg.p50Us = static_cast<double>(merged.p50()) / 1000.0;
            agg.p99Us = static_cast<double>(merged.p99()) / 1000.0;
        }
        rows_.push_back(agg);
        for (const WindowRow &row : tenant_rows)
            rows_.push_back(row);
    }

    // SLO monitor: multi-window burn rates per tenant. The fast
    // window trips quickly, the slow window keeps one noisy interval
    // from paging; the alert needs both above threshold and clears
    // when the fast rate falls back under it.
    for (std::uint32_t t = 0; t < nt; ++t) {
        auto &ring = burnRing_[t];
        ring.push_back(BurnSample{tErrors[t], tArrivals[t]});
        while (ring.size() > cfg_.burnSlowWindows)
            ring.pop_front();
        double fast = burnRate(ring, cfg_.burnFastWindows);
        double slow = burnRate(ring, cfg_.burnSlowWindows);
        if (!alerting_[t] && fast > cfg_.burnThreshold &&
            slow > cfg_.burnThreshold) {
            alerting_[t] = 1;
            ++alertsRaised_;
            Event event;
            event.startTick = event.endTick = now;
            event.kind = EventKind::AlertRaise;
            event.tenant = static_cast<std::int32_t>(t);
            event.value = fast;
            events_.push_back(event);
            if (tracer_)
                instant("alert_raise", 0, now, 0,
                        static_cast<std::int32_t>(t));
        } else if (alerting_[t] && fast <= cfg_.burnThreshold) {
            alerting_[t] = 0;
            ++alertsCleared_;
            Event event;
            event.startTick = event.endTick = now;
            event.kind = EventKind::AlertClear;
            event.tenant = static_cast<std::int32_t>(t);
            event.value = fast;
            events_.push_back(event);
            if (tracer_)
                instant("alert_clear", 0, now, 0,
                        static_cast<std::int32_t>(t));
        }
    }

    ++window_;
    windowStart_ = now;
}

void
FleetObserver::finalize(sim::Tick end,
                        const std::vector<ServerSnapshot> &snap)
{
    if (!cfg_.windowed())
        return;
    flushWindow(end, snap);
    // A crash still open at end of run: the incident's end is the end
    // of the run (the fleet never recovered inside the horizon).
    for (std::uint32_t s = 0; s < numServers_; ++s) {
        if (crashOpenAt_[s] == kNoTick)
            continue;
        Event event;
        event.startTick = crashOpenAt_[s];
        event.endTick = end;
        event.kind = EventKind::Crash;
        event.server = static_cast<std::int32_t>(s);
        events_.push_back(event);
        crashOpenAt_[s] = kNoTick;
    }
}

void
FleetObserver::writeWindowsCsv(std::ostream &out) const
{
    out << "window,start_us,end_us,server,tenant,arrivals,"
           "completions,shed,failed,slo_miss,cold_starts,warm_slots,"
           "queue_depth,occupancy,p50_us,p99_us\n";
    char buf[160];
    for (const WindowRow &row : rows_) {
        bool agg = row.tenant < 0;
        const std::string &tenant =
            agg ? std::string("*")
                : tenants_[static_cast<std::size_t>(row.tenant)].name;
        std::snprintf(buf, sizeof(buf), "%llu,%.3f,%.3f,%u,",
                      static_cast<unsigned long long>(row.window),
                      sim::cyclesToUs(row.startTick, freqGhz_),
                      sim::cyclesToUs(row.endTick, freqGhz_),
                      row.server);
        out << buf << tenant;
        std::snprintf(buf, sizeof(buf),
                      ",%llu,%llu,%llu,%llu,%llu,%llu",
                      static_cast<unsigned long long>(row.arrivals),
                      static_cast<unsigned long long>(
                          row.completions),
                      static_cast<unsigned long long>(row.shed),
                      static_cast<unsigned long long>(row.failed),
                      static_cast<unsigned long long>(row.sloMiss),
                      static_cast<unsigned long long>(
                          row.coldStarts));
        out << buf;
        if (agg) {
            std::snprintf(buf, sizeof(buf), ",%llu,%.4f,%.4f",
                          static_cast<unsigned long long>(
                              row.warmSlots),
                          row.queueDepth, row.occupancy);
            out << buf;
        } else {
            out << ",,,";
        }
        std::snprintf(buf, sizeof(buf), ",%.3f,%.3f\n", row.p50Us,
                      row.p99Us);
        out << buf;
    }
}

void
FleetObserver::writeEventsCsv(std::ostream &out) const
{
    std::vector<Event> sorted = events_;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const Event &a, const Event &b) {
                         if (a.startTick != b.startTick)
                             return a.startTick < b.startTick;
                         if (a.kind != b.kind)
                             return static_cast<unsigned>(a.kind) <
                                    static_cast<unsigned>(b.kind);
                         if (a.server != b.server)
                             return a.server < b.server;
                         return a.tenant < b.tenant;
                     });
    out << "time_us,end_us,kind,server,tenant,value\n";
    char buf[128];
    for (const Event &event : sorted) {
        std::snprintf(buf, sizeof(buf), "%.3f,%.3f,",
                      sim::cyclesToUs(event.startTick, freqGhz_),
                      sim::cyclesToUs(event.endTick, freqGhz_));
        out << buf << eventKindName(event.kind) << ",";
        if (event.server >= 0)
            out << event.server;
        out << ",";
        if (event.tenant >= 0)
            out << tenants_[static_cast<std::size_t>(event.tenant)]
                       .name;
        std::snprintf(buf, sizeof(buf), ",%.4f\n", event.value);
        out << buf;
    }
}

void
FleetObserver::attachMetrics(trace::MetricsRegistry &registry) const
{
    registry.counter("obs.windows").add(window_);
    registry.counter("obs.events").add(events_.size());
    registry.counter("obs.incidents").add(incidents_);
    registry.counter("obs.alerts_raised").add(alertsRaised_);
    registry.counter("obs.alerts_cleared").add(alertsCleared_);
}

} // namespace jord::obs
